(** Initial materialization: the paper's worked examples evaluated from
    scratch (Examples 1.1, 4.2, 6.1, 6.2). *)

open Util

(* Example 1.1: link = {(a,b),(b,c),(b,e),(a,d),(d,c)}; hop = {(a,c),(a,e)},
   with hop(a,c) having two derivations. *)
let example_1_1 () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).
      |}
  in
  check_rel "hop with counts" (rel_of_pairs "ac 2; ae") (rel db "hop")

(* Example 4.2: link = {ab,ad,dc,bc,ch,fg}; hop = {ac 2, dh, bh};
   tri_hop = {ah 2}. *)
let example_4_2 () =
  let db =
    db_of_source ~semantics:Database.Set_semantics
      {|
        hop(X, Y) :- link(X, Z) & link(Z, Y).
        tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).
        link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
      |}
  in
  check_rel "hop" (rel_of_pairs "ac 2; dh; bh") (rel db "hop");
  (* Under set semantics with the Section 5.1 convention, tri_hop counts
     assume hop tuples count once: ah has 2 derivations via hop(a,c)×1? No —
     via hop(a,c) (count 1 as a set) then link(c,h): one derivation; and no
     other.  The paper states tri_hop = {ah 2} under duplicate counting of
     hop's two derivations; under the set convention the count is 1. *)
  check_rel ~counted:false "tri_hop as set" (rel_of_pairs "ah") (rel db "tri_hop")

let example_4_2_duplicates () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z) & link(Z, Y).
        tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).
        link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
      |}
  in
  (* Full duplicate semantics: tri_hop(a,h) really has 2 derivations. *)
  check_rel "tri_hop with counts" (rel_of_pairs "ah 2") (rel db "tri_hop")

(* Example 6.1: negation.  only_tri_hop = {ak 2}. *)
let example_6_1 () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
        only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).
        link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d).
        link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).
      |}
  in
  check_rel "hop" (rel_of_pairs "ac; ad 2; ah; bd; bk; gk") (rel db "hop");
  check_rel "tri_hop" (rel_of_pairs "ad; ak 2") (rel db "tri_hop");
  check_rel "only_tri_hop" (rel_of_pairs "ak 2") (rel db "only_tri_hop")

(* Example 6.2: min-cost aggregation. *)
let example_6_2 () =
  let db =
    db_of_source
      {|
        hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
        min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
        link(a,b,1). link(b,c,2). link(b,e,5). link(a,d,4). link(d,c,1).
      |}
  in
  let expect =
    Relation.of_list 3
      [
        (Tuple.of_list Value.[ str "a"; str "c"; int 3 ], 1);
        (Tuple.of_list Value.[ str "a"; str "e"; int 6 ], 1);
      ]
  in
  check_rel ~counted:false "min_cost_hop" expect (rel db "min_cost_hop")

(* Recursion: transitive closure over a small cyclic graph. *)
let transitive_closure () =
  let db =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,a). link(c,d).
      |}
  in
  let expect =
    rel_of_pairs
      "aa; ab; ac; ad; ba; bb; bc; bd; ca; cb; cc; cd"
  in
  check_rel ~counted:false "path" expect (rel db "path")

(* Same-generation: a classic nonlinear recursive program. *)
let same_generation () =
  let db =
    db_of_source
      {|
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        up(a,e). up(b,e). up(c,f). up(d,f).
        flat(e,f).
        down(e,a). down(e,b). down(f,c). down(f,d).
      |}
  in
  let expect = rel_of_pairs "ef; ac; ad; bc; bd" in
  check_rel ~counted:false "sg" expect (rel db "sg")

(* Comparisons and arithmetic binders. *)
let comparisons () =
  let db =
    db_of_source
      {|
        expensive(X, Y) :- link(X, Y, C), C > 3.
        scaled(X, Y, S) :- link(X, Y, C), S = C * 10.
        link(a,b,1). link(b,c,5). link(c,d,4).
      |}
  in
  check_rel ~counted:false "expensive" (rel_of_pairs "bc; cd") (rel db "expensive");
  let expect =
    Relation.of_list 3
      [
        (Tuple.of_list Value.[ str "a"; str "b"; int 10 ], 1);
        (Tuple.of_list Value.[ str "b"; str "c"; int 50 ], 1);
        (Tuple.of_list Value.[ str "c"; str "d"; int 40 ], 1);
      ]
  in
  check_rel ~counted:false "scaled" expect (rel db "scaled")

(* Union: multiple rules for one predicate accumulate counts. *)
let union_counts () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        reach(X, Y) :- link(X, Y).
        reach(X, Y) :- wire(X, Y).
        link(a,b). wire(a,b). wire(c,d).
      |}
  in
  check_rel "reach counts" (rel_of_pairs "ab 2; cd") (rel db "reach")

(* Duplicate semantics on base facts: loading the same fact twice yields
   count 2 under duplicates, count 1 under sets. *)
let base_duplicates () =
  let src = {|
      copy(X, Y) :- link(X, Y).
      link(a,b). link(a,b).
    |} in
  let dup = db_of_source ~semantics:Database.Duplicate_semantics src in
  check_rel "dup base" (rel_of_pairs "ab 2") (rel dup "link");
  check_rel "dup copy" (rel_of_pairs "ab 2") (rel dup "copy");
  let set = db_of_source ~semantics:Database.Set_semantics src in
  check_rel "set base" (rel_of_pairs "ab") (rel set "link");
  check_rel "set copy" (rel_of_pairs "ab") (rel set "copy")

(* Zero-ary predicates. *)
let zero_ary () =
  let db =
    db_of_source {|
      alarm :- link(X, Y), X = Y.
      link(a,a). link(a,b).
    |}
  in
  Alcotest.(check int) "alarm derived" 1 (Relation.cardinal (rel db "alarm"))

(* Stratified negation across three strata. *)
let stratified_negation () =
  let db =
    db_of_source
      {|
        reach(X) :- source(X).
        reach(Y) :- reach(X), link(X, Y).
        unreachable(X) :- node(X), not reach(X).
        source(a).
        node(a). node(b). node(c). node(d).
        link(a,b). link(b,c).
      |}
  in
  let expect = Relation.of_tuples 1 [ Tuple.of_strs [ "d" ] ] in
  check_rel ~counted:false "unreachable" expect (rel db "unreachable")

let count_and_sum () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        degree(X, N) :- groupby(link(X, Y), [X], N = count()).
        weight(X, W) :- groupby(link2(X, Y, C), [X], W = sum(C)).
        link(a,b). link(a,c). link(b,c).
        link2(a,b,10). link2(a,c,5). link2(b,c,1).
      |}
  in
  let expect_deg =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "a"; int 2 ], 1);
        (Tuple.of_list Value.[ str "b"; int 1 ], 1);
      ]
  in
  check_rel ~counted:false "degree" expect_deg (rel db "degree");
  let expect_w =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "a"; int 15 ], 1);
        (Tuple.of_list Value.[ str "b"; int 1 ], 1);
      ]
  in
  check_rel ~counted:false "weight" expect_w (rel db "weight")

let suite =
  [
    quick "example 1.1 (hop counts)" example_1_1;
    quick "example 4.2 (hop, tri_hop)" example_4_2;
    quick "example 4.2 under duplicates" example_4_2_duplicates;
    quick "example 6.1 (negation)" example_6_1;
    quick "example 6.2 (min-cost aggregation)" example_6_2;
    quick "transitive closure" transitive_closure;
    quick "same generation" same_generation;
    quick "comparisons and binders" comparisons;
    quick "union accumulates counts" union_counts;
    quick "base duplicates" base_duplicates;
    quick "zero-ary heads" zero_ary;
    quick "stratified negation" stratified_negation;
    quick "count and sum aggregates" count_and_sum;
  ]
