(** Remaining micro-coverage: printing, dependency-graph queries, stats,
    view semantics corners. *)

open Util
module Depgraph = Ivm_datalog.Depgraph
module Pretty = Ivm_datalog.Pretty
module Stats = Ivm_eval.Stats

let value_quoting () =
  Alcotest.(check string) "leading digit id is quoted" "\"9lives\""
    (Value.to_string (Value.str "9lives"));
  Alcotest.(check string) "empty string quoted" "\"\""
    (Value.to_string (Value.str ""));
  Alcotest.(check string) "uppercase quoted" "\"Var\""
    (Value.to_string (Value.str "Var"));
  Alcotest.(check string) "underscore ok" "a_b" (Value.to_string (Value.str "a_b"));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.bool true))

let statement_printing () =
  let statements =
    Parser.parse_program
      {|
        p(X) :- q(X, "A b"), X > 1.
        q(a, "A b").
        n :- p(a).
      |}
  in
  (* printing every statement re-parses to the same statement list *)
  let printed =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Pretty.pp_statement) statements)
  in
  let reparsed = Parser.parse_program printed in
  Alcotest.(check int) "same statement count" (List.length statements)
    (List.length reparsed);
  Alcotest.(check bool) "structurally equal" true (statements = reparsed)

let depgraph_queries () =
  let program =
    Program.make
      (Parser.parse_rules
         {|
           odd(X, Y) :- link(X, Y).
           odd(X, Y) :- even(X, Z), link(Z, Y).
           even(X, Y) :- odd(X, Z), link(Z, Y).
           top(X) :- odd(X, X).
         |})
  in
  let g = Program.graph program in
  Alcotest.(check (list string)) "scc members" [ "even"; "odd" ]
    (List.sort compare (Depgraph.scc_members g "odd"));
  Alcotest.(check (list string)) "stratum 0" [ "link" ] (Depgraph.preds_at g 0);
  Alcotest.(check bool) "scc ids topological" true
    (Depgraph.scc_id g "link" < Depgraph.scc_id g "odd"
    && Depgraph.scc_id g "odd" < Depgraph.scc_id g "top");
  Alcotest.(check int) "three sccs + base" 3 (Depgraph.scc_count g);
  Alcotest.(check int) "rsn of a rule" (Program.stratum program "top")
    (Program.rsn program (List.nth (Program.rules program) 3))

let stats_measure () =
  Stats.reset ();
  let db = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b). link(b,c).
  |} in
  ignore db;
  let (), work = Stats.measure (fun () -> ()) in
  Alcotest.(check int) "measure isolates" 0 work.Stats.snap_derivations;
  Alcotest.(check bool) "evaluation counted work" true (Stats.derivations () > 0);
  let s = Format.asprintf "%a" Stats.pp_snapshot (Stats.snapshot ()) in
  Alcotest.(check bool) "snapshot prints" true (String.length s > 10)

let view_holds_vs_mem () =
  let base = Relation.create 2 in
  let delta = rel_of_pairs "ab -1" in
  let v = Relation_view.Overlay { base; delta } in
  let t = Tuple.of_strs [ "a"; "b" ] in
  Alcotest.(check bool) "mem sees nonzero" true (Relation_view.mem v t);
  Alcotest.(check bool) "holds requires positive" false (Relation_view.holds v t);
  Alcotest.(check int) "cardinal estimate" 1 (Relation_view.cardinal_estimate v)

let database_agree_and_pp () =
  let db = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b). link(b,c).
  |} in
  let db2 = Database.copy db in
  Alcotest.(check bool) "copies agree" true (Database.agree db db2);
  Relation.add (Database.relation db2 "link") (Tuple.of_strs [ "x"; "y" ]) 1;
  Alcotest.(check bool) "diverged" false (Database.agree db db2);
  Alcotest.(check bool) "restricted preds still agree" true
    (Database.agree ~preds:[ "hop" ] db db2);
  let s = Format.asprintf "%a" Database.pp db in
  Alcotest.(check bool) "pp prints relations" true
    (String.length s > 10)

let changes_pp_empty () =
  Alcotest.(check string) "empty change set prints nothing" ""
    (Ivm.Changes.to_string []);
  Alcotest.(check bool) "merge of empties empty" true
    (Ivm.Changes.is_empty (Ivm.Changes.merge [] []))

let query_pp_forms () =
  let d = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b). link(b,c).
  |} in
  let s = Format.asprintf "%a" Ivm_eval.Query.pp (Ivm_eval.Query.run_text d "link(a, b)") in
  Alcotest.(check string) "boolean true form" "true" (String.trim s);
  let s =
    Format.asprintf "%a" Ivm_eval.Query.pp (Ivm_eval.Query.run_text d "hop(a, X)")
  in
  Alcotest.(check bool) "columns header" true
    (String.length s >= 1 && s.[0] = 'X')

let suite =
  [
    quick "value quoting rules" value_quoting;
    quick "statement printing round trip" statement_printing;
    quick "depgraph queries" depgraph_queries;
    quick "stats measure and printing" stats_measure;
    quick "view holds vs mem on negative counts" view_holds_vs_mem;
    quick "database agree and printing" database_agree_and_pp;
    quick "empty change sets print empty" changes_pp_empty;
    quick "query printing forms" query_pp_forms;
  ]
