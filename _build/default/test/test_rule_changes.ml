(** View maintenance under rule insertions and deletions (Section 7). *)

open Util
module Vm = Ivm.View_manager
module Parser = Ivm_datalog.Parser

let check_audit vm = Alcotest.(check (result unit string)) "audit" (Ok ()) (Vm.audit vm)

(* Adding a second rule to a nonrecursive view (counting-managed). *)
let add_rule_nonrecursive () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~algorithm:Vm.Counting
      {|
        reach(X, Y) :- link(X, Y).
        link(a,b). link(b,c). wire(b,d). wire(a,b).
      |}
      ~extra_base:[ ("wire", 2) ]
  in
  Vm.add_rule_text vm "reach(X, Y) :- wire(X, Y).";
  check_rel "reach has both" (rel_of_pairs "ab 2; bc; bd") (Vm.relation vm "reach");
  check_audit vm

(* Removing it again restores the original view. *)
let remove_rule_nonrecursive () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~algorithm:Vm.Counting
      {|
        reach(X, Y) :- link(X, Y).
        reach(X, Y) :- wire(X, Y).
        link(a,b). link(b,c). wire(b,d). wire(a,b).
      |}
  in
  Vm.remove_rule_text vm "reach(X, Y) :- wire(X, Y).";
  check_rel "reach from link only" (rel_of_pairs "ab; bc") (Vm.relation vm "reach");
  check_audit vm

(* Adding the recursive rule to a base-case-only path view: the whole
   closure must appear. *)
let add_recursive_rule () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        path(X, Y) :- link(X, Y).
        link(a,b). link(b,c). link(c,d).
      |}
  in
  Vm.add_rule_text vm "path(X, Y) :- path(X, Z), link(Z, Y).";
  check_rel ~counted:false "closure appears"
    (rel_of_pairs "ab; bc; cd; ac; bd; ad")
    (Vm.relation vm "path");
  check_audit vm

(* Removing the recursive rule of a closure: only base edges remain. *)
let remove_recursive_rule () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,d).
      |}
  in
  Vm.remove_rule_text vm "path(X, Y) :- path(X, Z), link(Z, Y).";
  check_rel ~counted:false "base edges only" (rel_of_pairs "ab; bc; cd")
    (Vm.relation vm "path");
  check_audit vm

(* Removing a rule whose derivations overlap with the remaining rule:
   rederivation must keep shared tuples. *)
let remove_rule_with_overlap () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        reach(X, Y) :- link(X, Y).
        reach(X, Y) :- wire(X, Y).
        link(a,b). wire(a,b). wire(c,d).
      |}
  in
  Vm.remove_rule_text vm "reach(X, Y) :- wire(X, Y).";
  check_rel ~counted:false "shared tuple survives" (rel_of_pairs "ab")
    (Vm.relation vm "reach");
  check_audit vm

(* Removing the last rule of a predicate empties it. *)
let remove_last_rule () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  Vm.remove_rule_text vm "hop(X, Y) :- link(X, Z), link(Z, Y).";
  Alcotest.(check int) "hop empty" 0 (Relation.cardinal (Vm.relation vm "hop"))

(* A new rule on top of an existing view (new predicate). *)
let add_dependent_view () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  Vm.add_rule_text vm "closure_size(N) :- groupby(path(X, Y), [], N = count()).";
  let expect = Relation.of_tuples 1 [ Tuple.of_list [ Value.int 3 ] ] in
  check_rel ~counted:false "closure_size" expect (Vm.relation vm "closure_size");
  (* and maintenance keeps flowing through the new rule *)
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "c"; "d" ] ]);
  let expect = Relation.of_tuples 1 [ Tuple.of_list [ Value.int 6 ] ] in
  check_rel ~counted:false "closure_size after insert" expect
    (Vm.relation vm "closure_size");
  check_audit vm

(* Unknown rule removal is reported. *)
let remove_unknown_rule () =
  let vm = Vm.of_source {| hop(X, Y) :- link(X, Z), link(Z, Y). link(a,b). |} in
  try
    Vm.remove_rule_text vm "hop(X, Y) :- link(Y, X).";
    Alcotest.fail "expected Unknown_rule"
  with Ivm.Rule_changes.Unknown_rule _ -> ()

(* Adding a rule whose head is a populated base relation is refused. *)
let refuse_base_head () =
  let vm = Vm.of_source {| hop(X, Y) :- link(X, Z), link(Z, Y). link(a,b). |} in
  try
    Vm.add_rule_text vm "link(X, Y) :- hop(X, Y).";
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    quick "add rule (nonrecursive, counting)" add_rule_nonrecursive;
    quick "remove rule (nonrecursive, counting)" remove_rule_nonrecursive;
    quick "add recursive rule (DRed)" add_recursive_rule;
    quick "remove recursive rule (DRed)" remove_recursive_rule;
    quick "remove rule with overlapping derivations" remove_rule_with_overlap;
    quick "remove last rule empties the view" remove_last_rule;
    quick "add dependent aggregate view" add_dependent_view;
    quick "remove unknown rule fails" remove_unknown_rule;
    quick "refuse rule over populated base relation" refuse_base_head;
  ]
