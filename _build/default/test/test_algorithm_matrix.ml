(** The algorithm matrix: on their shared domain, all maintenance
    algorithms and recomputation agree — the paper's two algorithms are
    interchangeable where both apply (§7: counting is preferred
    nonrecursively, DRed recursively, but both are correct on both). *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Rc = Ivm.Recursive_counting
module Recompute = Ivm_baselines.Recompute
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen

(* a nonrecursive program with negation and aggregation — every algorithm
   can maintain it (set semantics for comparability) *)
let src =
  {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
    only_tri(X, Y) :- tri_hop(X, Y), not hop(X, Y).
    fanout(X, N) :- groupby(link(X, Y), [X], N = count()).
  |}

let mk semantics seed =
  let rng = Prng.create seed in
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link"
    (Graph_gen.tuples (Graph_gen.random rng ~nodes:25 ~edges:80));
  Seminaive.evaluate db;
  (db, rng)

let agree_as_sets dbs =
  let (first_name, first), rest =
    match dbs with x :: rest -> (x, rest) | [] -> assert false
  in
  List.iter
    (fun (name, db) ->
      List.iter
        (fun p ->
          if
            not
              (Relation.equal_sets
                 (Database.relation first p)
                 (Database.relation db p))
          then
            Alcotest.failf "%s vs %s on %s: %s <> %s" first_name name p
              (Relation.to_string (Database.relation first p))
              (Relation.to_string (Database.relation db p)))
        (Program.derived_preds (Database.program first)))
    rest

let matrix_nonrecursive () =
  (* same victim streams via same seeds *)
  let seed = 99 in
  let db_cnt, rng_cnt = mk Database.Set_semantics seed in
  let db_dred, rng_dred = mk Database.Set_semantics seed in
  let db_rc, rng_rc = mk Database.Duplicate_semantics seed in
  let db_re, rng_re = mk Database.Set_semantics seed in
  for _ = 1 to 4 do
    let step db rng maintain =
      let changes =
        Changes.merge
          (Update_gen.deletions rng db "link" 3)
          (Update_gen.edge_insertions rng db "link" ~nodes:25 3)
      in
      maintain db changes
    in
    step db_cnt rng_cnt (fun db c -> ignore (Counting.maintain db c));
    step db_dred rng_dred (fun db c -> ignore (Dred.maintain db c));
    step db_rc rng_rc (fun db c -> ignore (Rc.maintain db c));
    step db_re rng_re (fun db c -> Recompute.maintain db c)
  done;
  agree_as_sets
    [
      ("counting", db_cnt); ("dred", db_dred); ("recursive-counting", db_rc);
      ("recompute", db_re);
    ]

(* counting's duplicate counts equal recursive counting's on nonrecursive
   programs — they implement the same Theorem 4.1 semantics *)
let counting_equals_rc_counts () =
  let seed = 7 in
  let db_cnt, rng_cnt = mk Database.Duplicate_semantics seed in
  let db_rc, rng_rc = mk Database.Duplicate_semantics seed in
  for _ = 1 to 4 do
    let changes rng db =
      Changes.merge
        (Update_gen.deletions rng db "link" 2)
        (Update_gen.edge_insertions rng db "link" ~nodes:25 2)
    in
    ignore (Counting.maintain db_cnt (changes rng_cnt db_cnt));
    ignore (Rc.maintain db_rc (changes rng_rc db_rc))
  done;
  List.iter
    (fun p ->
      if
        not
          (Relation.equal_counted
             (Database.relation db_cnt p)
             (Database.relation db_rc p))
      then
        Alcotest.failf "%s: counting %s <> rc %s" p
          (Relation.to_string (Database.relation db_cnt p))
          (Relation.to_string (Database.relation db_rc p)))
    (Program.derived_preds (Database.program db_cnt))

(* affected-view pruning: changes to a base relation no view reads yield
   an empty report and touch nothing *)
let unaffected_views_skipped () =
  let db =
    db_of_source ~extra_base:[ ("noise", 2) ]
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  Ivm_eval.Stats.reset ();
  let report =
    Counting.maintain db
      (Changes.insertions (Database.program db) "noise" [ Tuple.of_strs [ "x"; "y" ] ])
  in
  Alcotest.(check int) "no view deltas" 0 (List.length report.Counting.view_deltas);
  Alcotest.(check int) "no rule applications" 0 (Ivm_eval.Stats.rule_applications ());
  Alcotest.(check bool)
    "noise stored" true
    (Relation.mem (rel db "noise") (Tuple.of_strs [ "x"; "y" ]))

let suite =
  [
    quick "all algorithms agree on nonrecursive programs" matrix_nonrecursive;
    quick "counting == recursive counting on counts" counting_equals_rc_counts;
    quick "unaffected views are skipped entirely" unaffected_views_skipped;
  ]
