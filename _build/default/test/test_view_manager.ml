(** The View_manager front door: algorithm selection, the update API, and
    the audit. *)

open Util
module Vm = Ivm.View_manager

let tc_source =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b). link(b,c).
  |}

let hop_source = {|
  hop(X, Y) :- link(X, Z), link(Z, Y).
  link(a,b). link(b,c).
|}

let auto_resolution () =
  let vm = Vm.of_source ~algorithm:Vm.Auto hop_source in
  Alcotest.(check bool) "nonrecursive → counting" true (Vm.resolve vm = Vm.Counting);
  let vm = Vm.of_source ~algorithm:Vm.Auto tc_source in
  Alcotest.(check bool) "recursive → dred" true (Vm.resolve vm = Vm.Dred)

let algorithm_names () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Vm.algorithm_name a) true
        (Vm.algorithm_of_string (Vm.algorithm_name a) = Some a))
    [ Vm.Counting; Vm.Dred; Vm.Recursive_counting; Vm.Recompute; Vm.Auto ];
  Alcotest.(check bool) "unknown" true (Vm.algorithm_of_string "nope" = None)

let all_algorithms_agree () =
  (* the same update stream through every applicable algorithm ends in the
     same sets *)
  let run algorithm semantics =
    let vm = Vm.of_source ~algorithm ~semantics tc_source in
    ignore (Vm.insert vm "link" [ Tuple.of_strs [ "c"; "d" ] ]);
    ignore (Vm.delete vm "link" [ Tuple.of_strs [ "b"; "c" ] ]);
    ignore
      (Vm.update vm "link" ~old_tuple:(Tuple.of_strs [ "a"; "b" ])
         ~new_tuple:(Tuple.of_strs [ "a"; "c" ]));
    Vm.relation vm "path"
  in
  let reference = run Vm.Recompute Database.Set_semantics in
  List.iter
    (fun (name, algorithm, semantics) ->
      let r = run algorithm semantics in
      if not (Relation.equal_sets reference r) then
        Alcotest.failf "%s: %s <> %s" name (Relation.to_string r)
          (Relation.to_string reference))
    [
      ("dred", Vm.Dred, Database.Set_semantics);
      ("auto", Vm.Auto, Database.Set_semantics);
      ("recursive-counting", Vm.Recursive_counting, Database.Duplicate_semantics);
    ]

let apply_reports_deltas () =
  let vm = Vm.of_source ~semantics:Database.Duplicate_semantics hop_source in
  let deltas = Vm.insert vm "link" [ Tuple.of_strs [ "c"; "d" ] ] in
  match List.assoc_opt "hop" deltas with
  | Some d -> check_rel "Δhop" (rel_of_pairs "bd") d
  | None -> Alcotest.fail "expected a hop delta"

let audit_detects_corruption () =
  let vm = Vm.of_source hop_source in
  Alcotest.(check (result unit string)) "clean" (Ok ()) (Vm.audit vm);
  (* corrupt the materialization behind the manager's back *)
  Relation.add (Vm.relation vm "hop") (Tuple.of_strs [ "z"; "z" ]) 1;
  match Vm.audit vm with
  | Ok () -> Alcotest.fail "audit missed the corruption"
  | Error msg ->
    Alcotest.(check bool) "names the view" true
      (String.length msg > 0
      && String.sub msg 0 3 = "hop")

let recompute_mode_works () =
  let vm = Vm.of_source ~algorithm:Vm.Recompute hop_source in
  let deltas = Vm.insert vm "link" [ Tuple.of_strs [ "c"; "d" ] ] in
  Alcotest.(check int) "no deltas reported" 0 (List.length deltas);
  Alcotest.(check bool)
    "view still right" true
    (Relation.mem (Vm.relation vm "hop") (Tuple.of_strs [ "b"; "d" ]))

let extra_base_relations () =
  let vm =
    Vm.of_source ~extra_base:[ ("wire", 2) ]
      {|
        conn(X, Y) :- link(X, Y).
        conn(X, Y) :- wire(X, Y).
        link(a,b).
      |}
  in
  ignore (Vm.insert vm "wire" [ Tuple.of_strs [ "b"; "c" ] ]);
  check_rel ~counted:false "both sources" (rel_of_pairs "ab; bc")
    (Vm.relation vm "conn")

let empty_program () =
  let vm = Vm.of_source "" in
  Alcotest.(check (result unit string)) "empty audit" (Ok ()) (Vm.audit vm)

let suite =
  [
    quick "auto resolves per the paper's recommendation" auto_resolution;
    quick "algorithm name round trip" algorithm_names;
    quick "all algorithms agree on final state" all_algorithms_agree;
    quick "apply reports per-view deltas" apply_reports_deltas;
    quick "audit detects corruption" audit_detects_corruption;
    quick "recompute mode" recompute_mode_works;
    quick "extra base relations" extra_base_relations;
    quick "empty program" empty_program;
  ]
