(** Baselines: recomputation, PF, and the Blakeley SPJ special case. *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Recompute = Ivm_baselines.Recompute
module Pf = Ivm_baselines.Pf
module Blakeley = Ivm_baselines.Blakeley
module Stats = Ivm_eval.Stats

let tc_source =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b). link(b,c). link(c,d). link(a,c). link(d,e).
  |}

(* PF reaches the same final state as DRed. *)
let pf_agrees_with_dred () =
  let changes db =
    Changes.of_list (Database.program db)
      [
        ( "link",
          [
            (Tuple.of_strs [ "b"; "c" ], -1);
            (Tuple.of_strs [ "c"; "d" ], -1);
            (Tuple.of_strs [ "b"; "e" ], 1);
          ] );
      ]
  in
  let db_pf = db_of_source tc_source in
  let db_dred = db_of_source tc_source in
  ignore (Pf.maintain db_pf (changes db_pf));
  ignore (Ivm.Dred.maintain db_dred (changes db_dred));
  check_rel ~counted:false "path agrees" (rel db_dred "path") (rel db_pf "path")

(* PF fragments: one propagation pass per changed tuple; on a layered DAG
   with overlapping derivations it rederives tuples again and again, doing
   strictly more work than DRed's single batch (the paper's Section 2
   complaint). *)
let pf_fragments () =
  let mk_db () =
    let rng = Ivm_workload.Prng.create 42 in
    let edges =
      Ivm_workload.Graph_gen.layered_dag rng ~layers:5 ~width:4 ~out_degree:3
    in
    let rules =
      Ivm_datalog.Parser.parse_rules Ivm_workload.Programs.transitive_closure
    in
    let program = Program.make rules in
    let db = Database.create program in
    Database.load db "link" (Ivm_workload.Graph_gen.tuples edges);
    Seminaive.evaluate db;
    db
  in
  (* delete several layer-0 edges: their downstream paths overlap *)
  let pick db =
    let stored = Database.relation db "link" in
    let all = Relation.fold (fun tup _ acc -> tup :: acc) stored [] in
    let sorted = List.sort Tuple.compare all in
    List.filteri (fun i _ -> i < 6) sorted
  in
  let db_pf = mk_db () in
  let del_pf = Changes.deletions (Database.program db_pf) "link" (pick db_pf) in
  Stats.reset ();
  let stats = Pf.maintain db_pf del_pf in
  let pf_work = Stats.derivations () in
  Alcotest.(check int) "one pass per tuple" 6 stats.Pf.passes;
  let db_dred = mk_db () in
  let del_dred = Changes.deletions (Database.program db_dred) "link" (pick db_dred) in
  Stats.reset ();
  ignore (Ivm.Dred.maintain db_dred del_dred);
  let dred_work = Stats.derivations () in
  check_rel ~counted:false "same final state" (rel db_dred "path") (rel db_pf "path");
  Alcotest.(check bool)
    (Printf.sprintf "PF does more work (pf=%d dred=%d)" pf_work dred_work)
    true
    (pf_work > dred_work)

(* Per-predicate granularity also agrees. *)
let pf_per_predicate () =
  let db = db_of_source tc_source in
  let changes =
    Changes.of_list (Database.program db)
      [ ("link", [ (Tuple.of_strs [ "d"; "e" ], -1) ]) ]
  in
  let stats = Pf.maintain ~granularity:Pf.Per_predicate db changes in
  Alcotest.(check int) "single pass" 1 stats.Pf.passes;
  Alcotest.(check bool)
    "edge deleted" false
    (Relation.mem (rel db "path") (Tuple.of_strs [ "d"; "e" ]))

(* Recompute agrees with counting on nonrecursive views. *)
let recompute_agrees () =
  let src =
    {|
      hop(X, Y) :- link(X, Z), link(Z, Y).
      tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
      link(a,b). link(b,c). link(c,d).
    |}
  in
  let changes db =
    Changes.of_list (Database.program db)
      [
        ( "link",
          [ (Tuple.of_strs [ "a"; "b" ], -1); (Tuple.of_strs [ "b"; "e" ], 1) ]
        );
      ]
  in
  let db_inc = db_of_source ~semantics:Database.Set_semantics src in
  let db_re = db_of_source ~semantics:Database.Set_semantics src in
  ignore (Counting.maintain db_inc (changes db_inc));
  Recompute.maintain db_re (changes db_re);
  List.iter
    (fun p -> check_rel (p ^ " matches") (rel db_re p) (rel db_inc p))
    [ "hop"; "tri_hop" ]

(* Blakeley accepts SPJ views and matches counting. *)
let blakeley_spj () =
  let src =
    {|
      hop(X, Y) :- link(X, Z), link(Z, Y).
      cheap(X, Y) :- toll(X, Y, C), C < 5.
      link(a,b). link(b,c). toll(a,b,3). toll(b,c,9).
    |}
  in
  let db = db_of_source ~semantics:Database.Duplicate_semantics src in
  let changes =
    Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "c"; "a" ] ]
  in
  let report = Blakeley.maintain db changes in
  Alcotest.(check bool)
    "hop delta computed" true
    (List.mem_assoc "hop" report.Counting.view_deltas)

(* Blakeley rejects views over views, unions, negation and aggregation. *)
let blakeley_rejections () =
  let reject src =
    let db = db_of_source ~semantics:Database.Duplicate_semantics src in
    let changes =
      Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "x"; "y" ] ]
    in
    try
      ignore (Blakeley.maintain db changes);
      Alcotest.fail "expected Not_spj"
    with Blakeley.Not_spj _ -> ()
  in
  reject
    {|
      hop(X, Y) :- link(X, Z), link(Z, Y).
      tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
      link(a,b).
    |};
  reject
    {|
      r(X, Y) :- link(X, Y).
      r(X, Y) :- wire(X, Y).
      link(a,b). wire(c,d).
    |};
  reject
    {|
      lonely(X, Y) :- link(X, Y), not wire(X, Y).
      link(a,b). wire(a,c).
    |};
  reject
    {|
      deg(X, N) :- groupby(link(X, Y), [X], N = count()).
      link(a,b).
    |}

let suite =
  [
    quick "PF agrees with DRed" pf_agrees_with_dred;
    quick "PF fragments computation" pf_fragments;
    quick "PF per-predicate granularity" pf_per_predicate;
    quick "recompute agrees with counting" recompute_agrees;
    quick "Blakeley handles SPJ" blakeley_spj;
    quick "Blakeley rejects non-SPJ" blakeley_rejections;
  ]
