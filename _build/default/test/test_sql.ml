(** The SQL front end: Example 1.1 as written in the paper, plus the rest
    of the supported surface. *)

open Util
module Sql = Ivm_sql.Sql_translate
module Vm = Ivm.View_manager

(* Example 1.1, verbatim shape: CREATE VIEW hop AS SELECT r1.s, r2.d FROM
   link r1, link r2 WHERE r1.d = r2.s. *)
let example_1_1_sql () =
  let vm =
    Sql.view_manager ~semantics:Database.Duplicate_semantics
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW hop(s, d) AS
          SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
        INSERT INTO link VALUES (a,b), (b,c), (b,e), (a,d), (d,c);
      |}
  in
  check_rel "hop via SQL" (rel_of_pairs "ac 2; ae") (Vm.relation vm "hop");
  (* and it maintains incrementally: the paper's deletion of link(a,b) *)
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "b" ] ]);
  check_rel "hop after deletion" (rel_of_pairs "ac") (Vm.relation vm "hop")

let where_constants_and_filters () =
  let vm =
    Sql.view_manager
      {|
        CREATE TABLE toll(src, dst, cost);
        CREATE VIEW from_a(dst) AS
          SELECT t.dst FROM toll t WHERE t.src = 'a' AND t.cost < 5;
        INSERT INTO toll VALUES (a,b,3), (a,c,9), (b,c,2);
      |}
  in
  let expect = Relation.of_tuples 1 [ Tuple.of_strs [ "b" ] ] in
  check_rel ~counted:false "constant + filter" expect (Vm.relation vm "from_a")

let union_views () =
  let vm =
    Sql.view_manager
      {|
        CREATE TABLE road(s, d);
        CREATE TABLE rail(s, d);
        CREATE VIEW connected(s, d) AS
          SELECT r.s, r.d FROM road r
          UNION
          SELECT t.s, t.d FROM rail t;
        INSERT INTO road VALUES (a,b);
        INSERT INTO rail VALUES (b,c);
      |}
  in
  check_rel ~counted:false "union" (rel_of_pairs "ab; bc")
    (Vm.relation vm "connected")

let group_by_aggregate () =
  let vm =
    Sql.view_manager
      {|
        CREATE TABLE link(s, d, c);
        CREATE VIEW hop(s, d, c) AS
          SELECT r1.s, r2.d, r1.c + r2.c FROM link r1, link r2
          WHERE r1.d = r2.s;
        CREATE VIEW min_cost_hop(s, d, m) AS
          SELECT h.s, h.d, MIN(h.c) FROM hop h GROUP BY h.s, h.d;
        INSERT INTO link VALUES (a,b,1), (b,c,2), (b,e,5), (a,d,4), (d,c,1);
      |}
  in
  let expect =
    Relation.of_list 3
      [
        (Tuple.of_list Value.[ str "a"; str "c"; int 3 ], 1);
        (Tuple.of_list Value.[ str "a"; str "e"; int 6 ], 1);
      ]
  in
  check_rel ~counted:false "min_cost_hop via SQL" expect
    (Vm.relation vm "min_cost_hop");
  (* incremental maintenance through the SQL-defined aggregate *)
  ignore
    (Vm.insert vm "link"
       [
         Tuple.of_list Value.[ str "a"; str "f"; int 1 ];
         Tuple.of_list Value.[ str "f"; str "c"; int 1 ];
       ]);
  Alcotest.(check bool)
    "min updated" true
    (Relation.mem
       (Vm.relation vm "min_cost_hop")
       (Tuple.of_list Value.[ str "a"; str "c"; int 2 ]))

let count_star () =
  let vm =
    Sql.view_manager ~semantics:Database.Duplicate_semantics
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW degree(s, n) AS
          SELECT l.s, COUNT(*) FROM link l GROUP BY l.s;
        INSERT INTO link VALUES (a,b), (a,c), (b,c);
      |}
  in
  let expect =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "a"; int 2 ], 1);
        (Tuple.of_list Value.[ str "b"; int 1 ], 1);
      ]
  in
  check_rel ~counted:false "degree" expect (Vm.relation vm "degree")

let not_exists () =
  let vm =
    Sql.view_manager ~semantics:Database.Duplicate_semantics
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW hop(s, d) AS
          SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
        CREATE VIEW strict_hop(s, d) AS
          SELECT h.s, h.d FROM hop h
          WHERE NOT EXISTS (SELECT * FROM link l
                            WHERE l.s = h.s AND l.d = h.d);
        INSERT INTO link VALUES (a,b), (b,c), (a,c);
      |}
  in
  (* hop = {ac}; link(a,c) exists, so strict_hop is empty *)
  Alcotest.(check int)
    "strict_hop empty" 0
    (Relation.cardinal (Vm.relation vm "strict_hop"));
  (* delete the direct edge: (a,c) is now a strict hop; note the deletion
     also removes hop tuples via r1/r2 — recompute expectation via audit *)
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "c" ] ]);
  Alcotest.(check bool)
    "strict_hop(a,c)" true
    (Relation.mem (Vm.relation vm "strict_hop") (Tuple.of_strs [ "a"; "c" ]));
  Alcotest.(check (result unit string)) "audit" (Ok ()) (Vm.audit vm)

let view_over_view () =
  let vm =
    Sql.view_manager
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW hop(s, d) AS
          SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
        CREATE VIEW tri_hop(s, d) AS
          SELECT h.s, l.d FROM hop h, link l WHERE h.d = l.s;
        INSERT INTO link VALUES (a,b), (a,d), (d,c), (b,c), (c,h), (f,g);
      |}
  in
  check_rel ~counted:false "tri_hop via SQL" (rel_of_pairs "ah")
    (Vm.relation vm "tri_hop")

let translation_errors () =
  let fails src =
    try
      ignore (Sql.translate src);
      Alcotest.fail "expected Translate_error"
    with Sql.Translate_error _ -> ()
  in
  fails {| CREATE VIEW v(a) AS SELECT t.x FROM missing t; |};
  fails
    {|
      CREATE TABLE t(x, y);
      CREATE VIEW v(a) AS SELECT t.z FROM t t;
    |};
  fails
    {|
      CREATE TABLE t(x, y);
      CREATE VIEW v(a, b) AS SELECT q.x, MIN(q.y) FROM t q;
    |}

let unsatisfiable_where () =
  let vm =
    Sql.view_manager
      {|
        CREATE TABLE t(x, y);
        CREATE VIEW v(x) AS SELECT q.x FROM t q WHERE q.y = 1 AND q.y = 2;
        INSERT INTO t VALUES (a, 1), (b, 2);
      |}
  in
  Alcotest.(check int) "empty view" 0 (Relation.cardinal (Vm.relation vm "v"))

let suite =
  [
    quick "example 1.1 in SQL" example_1_1_sql;
    quick "constants and filters" where_constants_and_filters;
    quick "UNION" union_views;
    quick "GROUP BY aggregate" group_by_aggregate;
    quick "COUNT(*)" count_star;
    quick "NOT EXISTS" not_exists;
    quick "view over view" view_over_view;
    quick "translation errors" translation_errors;
    quick "unsatisfiable WHERE" unsatisfiable_where;
  ]
