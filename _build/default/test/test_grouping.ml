(** GROUPBY evaluation (Section 6.2) at the unit level: full computation,
    per-group values, affected keys, and Algorithm 6.1's delta. *)

open Util
module Compile = Ivm_eval.Compile
module Grouping = Ivm_eval.Grouping

let spec_of src =
  let rule = Parser.parse_rule src in
  match rule.Ast.body with
  | [ Ast.Lagg agg ] -> Compile.compile_agg_spec agg
  | _ -> failwith "expected one groupby literal"

let min_spec = spec_of "v(S, D, M) :- groupby(u(S, D, C), [S, D], M = min(C))."
let sum_spec = spec_of "v(S, T) :- groupby(u(S, D, C), [S], T = sum(C))."
let count_spec = spec_of "v(C) :- groupby(u(S, D, X), [], C = count())."

let tup3 s d c = Tuple.of_list Value.[ str s; str d; int c ]

let u_rel entries = Relation.of_list 3 (List.map (fun (t, c) -> (t, c)) entries)

let base =
  u_rel
    [ (tup3 "a" "b" 3, 1); (tup3 "a" "b" 5, 2); (tup3 "a" "c" 9, 1);
      (tup3 "d" "e" 1, 1) ]

let compute_min () =
  let t = Grouping.compute (Relation_view.concrete base) min_spec in
  let expect =
    Relation.of_list 3
      [
        (tup3 "a" "b" 3, 1); (tup3 "a" "c" 9, 1); (tup3 "d" "e" 1, 1);
      ]
  in
  check_rel ~counted:false "min per pair" expect t

let compute_sum_multiplicity () =
  (* duplicate semantics: count-2 tuple contributes twice to SUM *)
  let t = Grouping.compute (Relation_view.concrete base) sum_spec in
  let expect =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "a"; int 22 ], 1);
        (Tuple.of_list Value.[ str "d"; int 1 ], 1);
      ]
  in
  check_rel ~counted:false "sum with multiplicities" expect t;
  (* set semantics: once each *)
  let t = Grouping.compute ~mult:Ivm_eval.Rule_eval.set_count
      (Relation_view.concrete base) sum_spec in
  let expect =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "a"; int 17 ], 1);
        (Tuple.of_list Value.[ str "d"; int 1 ], 1);
      ]
  in
  check_rel ~counted:false "sum as set" expect t

let empty_group_by () =
  let t = Grouping.compute (Relation_view.concrete base) count_spec in
  (* count() with multiplicities: 1+2+1+1 = 5 *)
  let expect = Relation.of_tuples 1 [ Tuple.of_list [ Value.int 5 ] ] in
  check_rel ~counted:false "global count" expect t;
  (* an empty source yields an empty grouped relation, not count 0 *)
  let t = Grouping.compute (Relation_view.concrete (Relation.create 3)) count_spec in
  Alcotest.(check int) "no groups" 0 (Relation.cardinal t)

let group_value_probes () =
  let v = Grouping.group_value (Relation_view.concrete base) min_spec
      (Tuple.of_strs [ "a"; "b" ]) in
  Alcotest.(check bool) "min(a,b)=3" true (v = Some (Value.int 3));
  let v = Grouping.group_value (Relation_view.concrete base) min_spec
      (Tuple.of_strs [ "z"; "z" ]) in
  Alcotest.(check bool) "absent group" true (v = None)

let affected_keys () =
  let delta =
    Relation.of_list 3 [ (tup3 "a" "b" 3, -1); (tup3 "x" "y" 1, 1) ]
  in
  let keys = Grouping.affected_keys delta min_spec in
  Alcotest.(check int) "two touched groups" 2 (List.length keys)

let algorithm_6_1_delta () =
  let old_u = base in
  let new_u = Relation.copy base in
  (* delete one derivation of the (a,b) minimum → min moves 3 → 5;
     add a new group (x,y) *)
  Relation.add new_u (tup3 "a" "b" 3) (-1);
  Relation.add new_u (tup3 "x" "y" 7) 1;
  let delta_u = Relation.of_list 3 [ (tup3 "a" "b" 3, -1); (tup3 "x" "y" 7, 1) ] in
  let dt =
    Grouping.delta ~old_view:(Relation_view.concrete old_u)
      ~new_view:(Relation_view.concrete new_u) ~delta_u min_spec
  in
  let expect =
    Relation.of_list 3
      [ (tup3 "a" "b" 3, -1); (tup3 "a" "b" 5, 1); (tup3 "x" "y" 7, 1) ]
  in
  check_rel "Δ(T)" expect dt

let unchanged_groups_silent () =
  (* a delta that does not change the group's aggregate yields no ΔT *)
  let old_u = base in
  let new_u = Relation.copy base in
  Relation.add new_u (tup3 "a" "b" 8) 1;
  let delta_u = Relation.of_list 3 [ (tup3 "a" "b" 8, 1) ] in
  let dt =
    Grouping.delta ~old_view:(Relation_view.concrete old_u)
      ~new_view:(Relation_view.concrete new_u) ~delta_u min_spec
  in
  Alcotest.(check int) "silent" 0 (Relation.cardinal dt)

let constants_in_source_pattern () =
  (* grouping over a pattern with a constant: only matching tuples count *)
  let spec = spec_of "v(D, M) :- groupby(u(a, D, C), [D], M = min(C))." in
  let t = Grouping.compute (Relation_view.concrete base) spec in
  let expect =
    Relation.of_list 2
      [
        (Tuple.of_list Value.[ str "b"; int 3 ], 1);
        (Tuple.of_list Value.[ str "c"; int 9 ], 1);
      ]
  in
  check_rel ~counted:false "filtered by constant" expect t

let arithmetic_agg_arg () =
  let spec = spec_of "v(S, M) :- groupby(u(S, D, C), [S], M = max(C * 2))." in
  let t = Grouping.compute (Relation_view.concrete base) spec in
  Alcotest.(check bool) "max of expr" true
    (Relation.mem t (Tuple.of_list Value.[ str "a"; int 18 ]))

let suite =
  [
    quick "compute MIN per group" compute_min;
    quick "SUM respects multiplicities" compute_sum_multiplicity;
    quick "empty group-by list (scalar aggregate)" empty_group_by;
    quick "group_value probes" group_value_probes;
    quick "affected keys" affected_keys;
    quick "Algorithm 6.1 delta" algorithm_6_1_delta;
    quick "unchanged groups are silent" unchanged_groups_silent;
    quick "constants in the source pattern" constants_in_source_pattern;
    quick "arithmetic aggregate argument" arithmetic_agg_arg;
  ]
