(** The live SQL session: DML, ad-hoc SELECTs, and runtime CREATE VIEW
    over maintained views. *)

open Util
module Session = Ivm_sql.Sql_session
module Query = Ivm_eval.Query
module Vm = Ivm.View_manager

let schema =
  {|
    CREATE TABLE link(s, d, c);
    CREATE VIEW hop(s, d, c) AS
      SELECT r1.s, r2.d, r1.c + r2.c FROM link r1, link r2 WHERE r1.d = r2.s;
    INSERT INTO link VALUES (a,b,1), (b,c,2), (c,d,3), (a,c,9);
  |}

let session () = Session.of_script ~semantics:Database.Duplicate_semantics schema

let rows_of = function
  | Session.Rows r -> r
  | _ -> Alcotest.fail "expected rows"

let deltas_of = function
  | Session.Deltas d -> d
  | _ -> Alcotest.fail "expected deltas"

let select_basics () =
  let s = session () in
  let r = rows_of (Session.exec s "SELECT l.s, l.d FROM link l WHERE l.c < 3") in
  Alcotest.(check (list string)) "columns" [ "s"; "d" ] r.Query.columns;
  Alcotest.(check int) "two cheap links" 2 (Relation.cardinal r.Query.rows)

let select_computed () =
  let s = session () in
  let r =
    rows_of (Session.exec s "SELECT l.s, l.c * 10 FROM link l WHERE l.d = 'c'")
  in
  Alcotest.(check bool) "computed column" true
    (Relation.mem r.Query.rows (Tuple.of_list Value.[ str "b"; int 20 ]))

let delete_where () =
  let s = session () in
  let ds = deltas_of (Session.exec s "DELETE FROM link WHERE s = 'a' AND c > 5") in
  (* deleting (a,c,9) kills hop(a,d,12) *)
  (match List.assoc_opt "hop" ds with
  | Some d ->
    Alcotest.(check int) "one hop delta" 1 (Relation.cardinal d);
    Alcotest.(check int) "deletion" (-1)
      (Relation.count d (Tuple.of_list Value.[ str "a"; str "d"; int 12 ]))
  | None -> Alcotest.fail "expected hop delta");
  Alcotest.(check (result unit string)) "audit" (Ok ())
    (Vm.audit (Session.manager s))

let delete_no_match () =
  let s = session () in
  match Session.exec s "DELETE FROM link WHERE c > 100" with
  | Session.Done _ -> ()
  | _ -> Alcotest.fail "expected Done"

let update_set () =
  let s = session () in
  ignore (Session.exec s "UPDATE link SET c = c + 10 WHERE s = 'a'");
  let stored = Vm.relation (Session.manager s) "link" in
  Alcotest.(check bool) "updated" true
    (Relation.mem stored (Tuple.of_list Value.[ str "a"; str "b"; int 11 ]));
  Alcotest.(check bool) "old gone" false
    (Relation.mem stored (Tuple.of_list Value.[ str "a"; str "b"; int 1 ]));
  Alcotest.(check (result unit string)) "audit" (Ok ())
    (Vm.audit (Session.manager s))

let create_view_at_runtime () =
  let s = session () in
  (match Session.exec s "CREATE VIEW cheap(s, d) AS SELECT h.s, h.d FROM hop h WHERE h.c < 4" with
  | Session.Done _ -> ()
  | _ -> Alcotest.fail "expected Done");
  let v = Vm.relation (Session.manager s) "cheap" in
  check_rel ~counted:false "view content" (rel_of_pairs "ac") v;
  (* the new view is now maintained *)
  ignore (Session.exec s "INSERT INTO link VALUES (c, e, 1)");
  let v = Vm.relation (Session.manager s) "cheap" in
  Alcotest.(check bool) "maintained" true (Relation.mem v (Tuple.of_strs [ "b"; "e" ]))

let runtime_view_with_aggregate () =
  let s = session () in
  (match
     Session.exec s
       "CREATE VIEW fanout(s, n) AS SELECT l.s, COUNT(*) FROM link l GROUP BY l.s"
   with
  | Session.Done _ -> ()
  | _ -> Alcotest.fail "expected Done");
  let v = Vm.relation (Session.manager s) "fanout" in
  Alcotest.(check bool) "a has 2" true
    (Relation.mem v (Tuple.of_list Value.[ str "a"; int 2 ]));
  ignore (Session.exec s "DELETE FROM link WHERE s = 'a' AND d = 'c'");
  let v = Vm.relation (Session.manager s) "fanout" in
  Alcotest.(check bool) "a drops to 1" true
    (Relation.mem v (Tuple.of_list Value.[ str "a"; int 1 ]))

let errors () =
  let s = session () in
  let fails stmt =
    try
      ignore (Session.exec s stmt);
      Alcotest.failf "expected Session_error for %s" stmt
    with Session.Session_error _ -> ()
  in
  fails "DELETE FROM hop WHERE s = 'a'";
  (* views are not updatable *)
  fails "UPDATE link SET nope = 1 WHERE s = 'a'";
  fails "CREATE TABLE late(x, y)";
  fails "SELECT l.s, MIN(l.c) FROM link l GROUP BY l.s";
  (* aggregate SELECT must be a view *)
  fails "DELETE FROM missing WHERE s = 'a'"

let multi_statement_script () =
  let s = session () in
  let outcomes =
    Session.exec_script s
      "INSERT INTO link VALUES (x, y, 1); DELETE FROM link WHERE s = 'x';"
  in
  Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
  Alcotest.(check (result unit string)) "audit" (Ok ())
    (Vm.audit (Session.manager s))

let suite =
  [
    quick "SELECT basics" select_basics;
    quick "SELECT computed columns" select_computed;
    quick "DELETE ... WHERE maintains views" delete_where;
    quick "DELETE with no matches" delete_no_match;
    quick "UPDATE ... SET as delete⊎insert" update_set;
    quick "CREATE VIEW at runtime" create_view_at_runtime;
    quick "runtime view with aggregate" runtime_view_with_aggregate;
    quick "session errors" errors;
    quick "multi-statement script" multi_statement_script;
  ]
