(** Change sets: construction, merging, and the Lemma 4.1 normalization. *)

open Util
module Changes = Ivm.Changes

let program_of src = Program.make (Parser.parse_rules src)

let hop = "hop(X, Y) :- link(X, Z), link(Z, Y)."

let construction () =
  let p = program_of hop in
  let c = Changes.insertions p "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  Alcotest.(check int) "one tuple" 1 (Changes.total_tuples c);
  let c = Changes.update p "link" ~old_tuple:(Tuple.of_strs [ "a"; "b" ])
      ~new_tuple:(Tuple.of_strs [ "a"; "c" ]) in
  Alcotest.(check int) "update = 2 tuples" 2 (Changes.total_tuples c);
  Alcotest.(check bool) "not empty" false (Changes.is_empty c);
  Alcotest.(check bool) "empty" true (Changes.is_empty [])

let merge_cancels () =
  let p = program_of hop in
  let a = Changes.insertions p "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  let b = Changes.deletions p "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  Alcotest.(check bool) "cancelled" true (Changes.is_empty (Changes.merge a b))

let merge_distinct_preds () =
  let p = program_of "r(X, Y) :- link(X, Y).\nr(X, Y) :- wire(X, Y)." in
  let a = Changes.insertions p "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  let b = Changes.insertions p "wire" [ Tuple.of_strs [ "c"; "d" ] ] in
  let m = Changes.merge a b in
  Alcotest.(check int) "two preds" 2 (List.length m);
  Alcotest.(check (list string)) "sorted" [ "link"; "wire" ] (List.map fst m)

let set_mode_normalization () =
  let db = db_of_source ~semantics:Database.Set_semantics (hop ^ "\nlink(a,b).") in
  let p = Database.program db in
  (* re-inserting a present tuple is dropped *)
  let n =
    Changes.normalize_base db (Changes.insertions p "link" [ Tuple.of_strs [ "a"; "b" ] ])
  in
  Alcotest.(check bool) "re-insert dropped" true (n = []);
  (* multi-count inserts collapse to 1 *)
  let n =
    Changes.normalize_base db
      (Changes.of_list p [ ("link", [ (Tuple.of_strs [ "x"; "y" ], 5) ]) ])
  in
  (match n with
  | [ (_, d) ] -> Alcotest.(check int) "clamped" 1 (Relation.count d (Tuple.of_strs [ "x"; "y" ]))
  | _ -> Alcotest.fail "expected one entry")

let duplicate_mode_checks () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      (hop ^ "\nlink(a,b). link(a,b).")
  in
  let p = Database.program db in
  (* deleting both copies is fine *)
  let n =
    Changes.normalize_base db
      (Changes.of_list p [ ("link", [ (Tuple.of_strs [ "a"; "b" ], -2) ]) ])
  in
  Alcotest.(check int) "kept" 1 (List.length n);
  (* deleting three copies is not *)
  try
    ignore
      (Changes.normalize_base db
         (Changes.of_list p [ ("link", [ (Tuple.of_strs [ "a"; "b" ], -3) ]) ]));
    Alcotest.fail "expected Invalid_changes"
  with Changes.Invalid_changes _ -> ()

let arity_mismatch () =
  let db = db_of_source (hop ^ "\nlink(a,b).") in
  let delta = Relation.of_tuples 3 [ Tuple.of_strs [ "a"; "b"; "c" ] ] in
  try
    ignore (Changes.normalize_base db [ ("link", delta) ]);
    Alcotest.fail "expected Invalid_changes"
  with Changes.Invalid_changes _ -> ()

let printing () =
  let p = program_of hop in
  let c =
    Changes.of_list p
      [ ("link", [ (Tuple.of_strs [ "a"; "b" ], 1); (Tuple.of_strs [ "c"; "d" ], -2) ]) ]
  in
  Alcotest.(check string) "pp" "Δlink = {a,b; c,d -2}\n" (Changes.to_string c)

let suite =
  [
    quick "construction" construction;
    quick "merge cancels opposites" merge_cancels;
    quick "merge keeps predicates sorted" merge_distinct_preds;
    quick "set-mode normalization" set_mode_normalization;
    quick "duplicate-mode multiplicity checks" duplicate_mode_checks;
    quick "arity mismatch rejected" arity_mismatch;
    quick "printing" printing;
  ]
