(** Per-view DISTINCT semantics inside a duplicate-semantics database —
    §5.1: "it is possible for a query to require set semantics (by using
    the DISTINCT operator)".  A DISTINCT view counts once per true tuple
    for its readers, and only its set transitions cascade. *)

open Util
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Counting = Ivm.Counting

let source =
  {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
    link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
  |}

(* The paper's Example 4.2 data: hop(a,c) has two derivations.  Without
   DISTINCT, tri_hop(a,h) counts 2; with hop DISTINCT, it counts 1. *)
let reader_counts () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics source
  in
  check_rel "plain: tri_hop 2" (rel_of_pairs "ah 2") (Vm.relation vm "tri_hop");
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      ~distinct:[ "hop" ] source
  in
  check_rel "distinct hop: tri_hop 1" (rel_of_pairs "ah") (Vm.relation vm "tri_hop")

(* Example 5.1 replayed through DISTINCT instead of global set semantics:
   deleting link(a,b) leaves hop(a,c) with a derivation, so nothing
   cascades to tri_hop. *)
let cascade_stops_at_distinct () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~distinct:[ "hop" ]
      ~algorithm:Vm.Counting source
  in
  let deltas = Vm.delete vm "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  Alcotest.(check bool)
    "hop delta present" true
    (List.mem_assoc "hop" deltas);
  Alcotest.(check bool)
    "no tri_hop delta" false
    (List.mem_assoc "tri_hop" deltas);
  (* hop's own stored count dropped 2 → 1 but the tuple is still true *)
  Alcotest.(check int)
    "hop(a,c) count" 1
    (Relation.count (Vm.relation vm "hop") (Tuple.of_strs [ "a"; "c" ]))

(* maintenance with DISTINCT equals recomputation with DISTINCT *)
let matches_recompute () =
  let mk () =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~distinct:[ "hop" ]
      ~algorithm:Vm.Counting source
  in
  let vm = mk () in
  ignore
    (Vm.apply vm
       (Changes.of_list (Vm.program vm)
          [
            ( "link",
              [
                (Tuple.of_strs [ "a"; "b" ], -1);
                (Tuple.of_strs [ "d"; "f" ], 1);
                (Tuple.of_strs [ "a"; "f" ], 1);
              ] );
          ]));
  Alcotest.(check (result unit string)) "audit" (Ok ()) (Vm.audit vm)

(* DISTINCT survives rule changes *)
let survives_rule_changes () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~distinct:[ "hop" ]
      ~algorithm:Vm.Counting source
  in
  Vm.add_rule_text vm "wide(X) :- hop(X, Y).";
  Alcotest.(check bool)
    "still distinct" true
    (Database.is_distinct (Vm.database vm) "hop");
  (* hop(a,c) has two derivations but is one distinct tuple: wide(a) = 1 *)
  Alcotest.(check int)
    "wide(a) counts distinct hops" 1
    (Relation.count (Vm.relation vm "wide") (Tuple.of_strs [ "a" ]));
  Alcotest.(check (result unit string)) "audit" (Ok ()) (Vm.audit vm)

(* SQL SELECT DISTINCT marks the view *)
let sql_distinct () =
  let vm =
    Ivm_sql.Sql_translate.view_manager ~semantics:Database.Duplicate_semantics
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW hop(s, d) AS
          SELECT DISTINCT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
        CREATE VIEW tri_hop(s, d) AS
          SELECT h.s, l.d FROM hop h, link l WHERE h.d = l.s;
        INSERT INTO link VALUES (a,b), (a,d), (d,c), (b,c), (c,h), (f,g);
      |}
  in
  Alcotest.(check bool)
    "marked distinct" true
    (Database.is_distinct (Vm.database vm) "hop");
  check_rel "tri_hop counts hop once" (rel_of_pairs "ah") (Vm.relation vm "tri_hop");
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "b" ] ]);
  Alcotest.(check (result unit string)) "audit after delete" (Ok ()) (Vm.audit vm)

(* aggregates over a DISTINCT view count each tuple once *)
let aggregate_over_distinct () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics ~distinct:[ "hop" ]
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        fanout(X, N) :- groupby(hop(X, Y), [X], N = count()).
        link(a,b). link(a,d). link(d,c). link(b,c).
      |}
  in
  (* hop(a,·) = {c (2 ways)} → distinct count 1 *)
  Alcotest.(check bool)
    "count over distinct" true
    (Relation.mem (Vm.relation vm "fanout") (Tuple.of_list Value.[ str "a"; int 1 ]))

(* marking a base relation is rejected *)
let base_rejected () =
  let db = db_of_source ~semantics:Database.Duplicate_semantics source in
  try
    Database.mark_distinct db "link";
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    quick "readers see DISTINCT tuples once" reader_counts;
    quick "cascade stops at the DISTINCT view (Ex 5.1)" cascade_stops_at_distinct;
    quick "incremental == recompute with DISTINCT" matches_recompute;
    quick "DISTINCT survives rule changes" survives_rule_changes;
    quick "SQL SELECT DISTINCT" sql_distinct;
    quick "aggregates over DISTINCT views" aggregate_over_distinct;
    quick "DISTINCT on base relations rejected" base_rejected;
  ]
