(** Unit tests for the Datalog front end: lexer/parser, stratification,
    safety. *)

open Util
module Ast = Ivm_datalog.Ast
module Lexer = Ivm_datalog.Lexer
module Pretty = Ivm_datalog.Pretty
module Depgraph = Ivm_datalog.Depgraph
module Safety = Ivm_datalog.Safety

(* ---------------- parser ---------------- *)

let parse_rule_shapes () =
  let r = Parser.parse_rule "hop(X, Y) :- link(X, Z), link(Z, Y)." in
  Alcotest.(check string) "roundtrip" "hop(X, Y) :- link(X, Z), link(Z, Y)."
    (Pretty.rule_to_string r);
  let r = Parser.parse_rule "p(X) :- q(X) & r(X)." in
  Alcotest.(check int) "& conjunction" 2 (List.length r.Ast.body);
  let r = Parser.parse_rule "p(X) :- q(X), not r(X)." in
  (match r.Ast.body with
  | [ Ast.Lpos _; Ast.Lneg a ] -> Alcotest.(check string) "neg pred" "r" a.Ast.pred
  | _ -> Alcotest.fail "expected neg literal");
  let r = Parser.parse_rule "p(X) :- q(X), !r(X)." in
  (match r.Ast.body with
  | [ _; Ast.Lneg _ ] -> ()
  | _ -> Alcotest.fail "bang negation");
  let r = Parser.parse_rule "p(X, C) :- q(X, A, B), C = A + B * 2." in
  (match r.Ast.body with
  | [ _; Ast.Lcmp (_, Ast.Eq, Ast.Eadd (_, Ast.Emul _)) ] -> ()
  | _ -> Alcotest.fail "precedence")

let parse_aggregates () =
  let r =
    Parser.parse_rule
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C))."
  in
  (match r.Ast.body with
  | [ Ast.Lagg agg ] ->
    Alcotest.(check (list string)) "group vars" [ "S"; "D" ] agg.Ast.agg_group_by;
    Alcotest.(check string) "result" "M" agg.Ast.agg_result;
    Alcotest.(check bool) "fn" true (agg.Ast.agg_fn = Ast.Min)
  | _ -> Alcotest.fail "expected aggregate");
  let r = Parser.parse_rule "n(C) :- groupby(p(X), [], C = count())." in
  (match r.Ast.body with
  | [ Ast.Lagg agg ] -> Alcotest.(check (list string)) "empty group" [] agg.Ast.agg_group_by
  | _ -> Alcotest.fail "expected aggregate")

let parse_facts_and_comments () =
  let statements =
    Parser.parse_program
      {|
        % a comment
        link(a, b).   # another comment
        link(b, -3).
        cost(a, 2.5).
        flag(true).
        name("Hello w").
      |}
  in
  Alcotest.(check int) "five facts" 5 (List.length statements);
  match statements with
  | Ast.Sfact ("link", [ Value.Str "a"; Value.Str "b" ])
    :: Ast.Sfact ("link", [ Value.Str "b"; Value.Int (-3) ])
    :: Ast.Sfact ("cost", [ Value.Str "a"; Value.Float 2.5 ])
    :: Ast.Sfact ("flag", [ Value.Bool true ])
    :: Ast.Sfact ("name", [ Value.Str "Hello w" ]) :: [] -> ()
  | _ -> Alcotest.fail "fact shapes"

let parse_errors () =
  let fails src =
    try
      ignore (Parser.parse_program src);
      Alcotest.failf "expected failure on %S" src
    with Parser.Parse_error _ | Lexer.Lex_error _ -> ()
  in
  fails "p(X) :- q(X)";
  (* missing dot *)
  fails "p(X) : - q(X).";
  fails "p(X) :- q(X,).";
  fails "p(X) :- .";
  fails "p('a).";
  fails "p(X) :- q(X) r(X)."

(* ---------------- stratification ---------------- *)

let mk_graph src =
  let rules = Parser.parse_rules src in
  let program = Program.make rules in
  (rules, program)

let strata_numbers () =
  let _, p =
    mk_graph
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
        only(X, Y) :- tri_hop(X, Y), not hop(X, Y).
      |}
  in
  Alcotest.(check int) "base" 0 (Program.stratum p "link");
  Alcotest.(check int) "hop" 1 (Program.stratum p "hop");
  Alcotest.(check int) "tri_hop" 2 (Program.stratum p "tri_hop");
  Alcotest.(check int) "only" 3 (Program.stratum p "only");
  Alcotest.(check bool) "nonrecursive" true (Program.nonrecursive p)

let strata_recursive () =
  let _, p =
    mk_graph
      {|
        odd(X, Y) :- link(X, Y).
        odd(X, Y) :- even(X, Z), link(Z, Y).
        even(X, Y) :- odd(X, Z), link(Z, Y).
        above(X) :- odd(X, Y), not link(X, Y).
      |}
  in
  Alcotest.(check bool) "odd recursive" true (Program.recursive p "odd");
  Alcotest.(check bool) "even recursive" true (Program.recursive p "even");
  Alcotest.(check int) "same stratum" (Program.stratum p "odd") (Program.stratum p "even");
  Alcotest.(check bool) "above higher" true
    (Program.stratum p "above" > Program.stratum p "odd");
  match Program.recursive_units p with
  | [ [ "even"; "odd" ]; [ "above" ] ] -> ()
  | units ->
    Alcotest.failf "unexpected units %s"
      (String.concat "|" (List.map (String.concat ",") units))

let not_stratifiable () =
  try
    ignore
      (mk_graph {|
          p(X) :- q(X), not r(X).
          r(X) :- p(X).
        |});
    Alcotest.fail "expected Not_stratifiable"
  with Depgraph.Not_stratifiable _ -> ()

let aggregation_in_recursion_rejected () =
  try
    ignore
      (mk_graph
         {|
           total(X, S) :- groupby(total_in(X, Y, C), [X], S = sum(C)).
           total_in(X, Y, C) :- edge(X, Y, C).
           total_in(X, Y, C) :- edge(X, Z, C1), total(Z, C2), C = C1 + C2, same(Z, Y).
         |});
    Alcotest.fail "expected Not_stratifiable"
  with Depgraph.Not_stratifiable _ -> ()

let depends_on () =
  let _, p =
    mk_graph
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        far(X, Y) :- hop(X, Z), hop(Z, Y).
        other(X) :- thing(X).
      |}
  in
  let g = Program.graph p in
  Alcotest.(check bool) "far on link" true (Depgraph.depends_on g ~target:"far" ~on:"link");
  Alcotest.(check bool) "other not on link" false
    (Depgraph.depends_on g ~target:"other" ~on:"link");
  Alcotest.(check (list string))
    "affected views" [ "far"; "hop" ]
    (Program.affected_views p ~changed:[ "link" ])

(* ---------------- safety ---------------- *)

let safety_rejects () =
  let fails src =
    try
      ignore (Program.make (Parser.parse_rules src));
      Alcotest.failf "expected Unsafe for %s" src
    with Safety.Unsafe _ -> ()
  in
  (* unbound head variable *)
  fails "p(X, Y) :- q(X).";
  (* unbound negated variable *)
  fails "p(X) :- q(X), not r(X, Y).";
  (* unbound comparison *)
  fails "p(X) :- q(X), Y < 3.";
  (* arithmetic in body atom *)
  fails "p(X) :- q(X + 1).";
  (* group variable not in source *)
  fails "p(X, M) :- q(X), groupby(r(Y), [X], M = count()).";
  (* result also in source *)
  fails "p(X, M) :- groupby(r(X, M), [X], M = min(M)).";
  (* aggregation local variable escaping *)
  fails "p(X, C, M) :- groupby(r(X, C), [X], M = min(C)), q(C).";
  (* cannot evaluate Y = X + 1 when X unbound *)
  fails "p(Y) :- Y = X + 1."

let safety_accepts () =
  let ok src = ignore (Program.make (Parser.parse_rules src)) in
  ok "p(X, Y) :- q(X), r(Y).";
  ok "p(X) :- q(X, Y), Y = X.";
  ok "p(Z) :- q(X, Y), Z = X + Y.";
  ok "p(X) :- q(X), not r(X).";
  ok "p(X, M) :- groupby(r(X, C), [X], M = min(C)), q(X)."

let arity_clash () =
  try
    ignore (Program.make (Parser.parse_rules "p(X) :- q(X, Y).\nr(X) :- q(X)."));
    Alcotest.fail "expected Program_error"
  with Program.Program_error _ -> ()

let suite =
  [
    quick "parse rule shapes" parse_rule_shapes;
    quick "parse aggregates" parse_aggregates;
    quick "parse facts and comments" parse_facts_and_comments;
    quick "parse errors" parse_errors;
    quick "stratum numbers (Def 3.1)" strata_numbers;
    quick "recursive strata and units" strata_recursive;
    quick "not stratifiable rejected" not_stratifiable;
    quick "aggregation inside recursion rejected" aggregation_in_recursion_rejected;
    quick "dependency queries" depends_on;
    quick "safety rejects unsafe rules" safety_rejects;
    quick "safety accepts safe rules" safety_accepts;
    quick "arity clash rejected" arity_clash;
  ]
