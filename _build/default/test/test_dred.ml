(** DRed (Section 7): recursive view maintenance with deletion,
    rederivation and insertion, checked against recomputation. *)

open Util
module Changes = Ivm.Changes
module Dred = Ivm.Dred

let tc_source =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b). link(b,c). link(c,d). link(a,c).
  |}

let apply_oracle db changes =
  let oracle = Database.copy db in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base oracle changes);
  Seminaive.evaluate oracle;
  oracle

let check_against_oracle db changes =
  let oracle = apply_oracle db changes in
  ignore (Dred.maintain db changes);
  List.iter
    (fun p ->
      if not (Relation.equal_sets (rel db p) (rel oracle p)) then
        Alcotest.failf "%s: DRed %s <> recomputed %s" p
          (Relation.to_string (rel db p))
          (Relation.to_string (rel oracle p)))
    (Program.derived_preds (Database.program db))

(* Deleting link(b,c): path(a,c) survives via the direct edge (a,c) —
   the rederivation step must put it back after the overestimate removes
   it. *)
let rederivation_happens () =
  let db = db_of_source tc_source in
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]
  in
  let report = Dred.maintain db changes in
  Alcotest.(check bool)
    "path(a,c) kept" true
    (Relation.mem (rel db "path") (Tuple.of_strs [ "a"; "c" ]));
  Alcotest.(check bool)
    "path(b,c) gone" false
    (Relation.mem (rel db "path") (Tuple.of_strs [ "b"; "c" ]));
  Alcotest.(check bool)
    "path(b,d) gone" false
    (Relation.mem (rel db "path") (Tuple.of_strs [ "b"; "d" ]));
  (* The overestimate contained more than the real deletions and some
     tuples were rederived. *)
  let over = List.assoc "path" report.Dred.overdeleted in
  let reder = List.assoc "path" report.Dred.rederived in
  Alcotest.(check bool) "overestimate non-trivial" true (over > 2);
  Alcotest.(check bool) "some tuples rederived" true (reder >= 2)

let deletion_tc () =
  let db = db_of_source tc_source in
  check_against_oracle db
    (Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ])

let insertion_tc () =
  let db = db_of_source tc_source in
  check_against_oracle db
    (Changes.insertions (Database.program db) "link"
       [ Tuple.of_strs [ "d"; "e" ]; Tuple.of_strs [ "e"; "a" ] ])

let mixed_tc () =
  let db = db_of_source tc_source in
  check_against_oracle db
    (Changes.of_list (Database.program db)
       [
         ( "link",
           [
             (Tuple.of_strs [ "a"; "b" ], -1);
             (Tuple.of_strs [ "d"; "a" ], 1);
             (Tuple.of_strs [ "c"; "d" ], -1);
           ] );
       ])

(* A cycle: deletions on cyclic graphs are where naive deletion diverges
   from DRed; every tuple depends on every edge transitively. *)
let cycle_deletion () =
  let db =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,a). link(c,d). link(b,e).
      |}
  in
  check_against_oracle db
    (Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "c"; "a" ] ])

(* Breaking the cycle entirely. *)
let cycle_break () =
  let db =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,a).
      |}
  in
  check_against_oracle db
    (Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "a" ] ])

(* Nonlinear recursion (same-generation). *)
let same_generation () =
  let db =
    db_of_source
      {|
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        up(a,e). up(b,e). up(c,f). up(d,f).
        flat(e,f).
        down(e,a). down(e,b). down(f,c). down(f,d).
      |}
  in
  check_against_oracle db
    (Changes.of_list (Database.program db)
       [
         ("flat", [ (Tuple.of_strs [ "e"; "f" ], -1) ]);
         ("flat", [ (Tuple.of_strs [ "e"; "e" ], 1) ]);
       ])

(* Mutual recursion: odd/even path lengths form one SCC with two
   predicates. *)
let mutual_recursion () =
  let db =
    db_of_source
      {|
        odd(X, Y) :- link(X, Y).
        odd(X, Y) :- even(X, Z), link(Z, Y).
        even(X, Y) :- odd(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,d). link(d,e).
      |}
  in
  check_against_oracle db
    (Changes.of_list (Database.program db)
       [
         ( "link",
           [ (Tuple.of_strs [ "b"; "c" ], -1); (Tuple.of_strs [ "b"; "d" ], 1) ]
         );
       ])

(* Negation on top of recursion: unreachable nodes. *)
let negation_over_recursion () =
  let src =
    {|
      reach(X) :- source(X).
      reach(Y) :- reach(X), link(X, Y).
      unreachable(X) :- node(X), not reach(X).
      source(a).
      node(a). node(b). node(c). node(d).
      link(a,b). link(b,c).
    |}
  in
  let db = db_of_source src in
  (* cutting b→c makes c unreachable; adding a→d makes d reachable *)
  check_against_oracle db
    (Changes.of_list (Database.program db)
       [
         ( "link",
           [ (Tuple.of_strs [ "b"; "c" ], -1); (Tuple.of_strs [ "a"; "d" ], 1) ]
         );
       ])

(* Aggregation over recursion: count of reachable nodes per source. *)
let aggregation_over_recursion () =
  let src =
    {|
      path(X, Y) :- link(X, Y).
      path(X, Y) :- path(X, Z), link(Z, Y).
      out_degree(X, N) :- groupby(path(X, Y), [X], N = count()).
      link(a,b). link(b,c). link(c,d).
    |}
  in
  let db = db_of_source src in
  check_against_oracle db
    (Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]);
  (* after: a reaches only b; check the aggregate follows *)
  Alcotest.(check bool)
    "out_degree(a,1)" true
    (Relation.mem (rel db "out_degree") (Tuple.of_list Value.[ str "a"; int 1 ]))

(* DRed on a nonrecursive program agrees with counting/recompute
   (Section 7: "DRed can be used for nonrecursive views also"). *)
let nonrecursive_views () =
  let db =
    db_of_source
      {|
        hop(X, Y) :- link(X, Z) & link(Z, Y).
        tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).
        link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
      |}
  in
  check_against_oracle db
    (Changes.of_list (Database.program db)
       [
         ( "link",
           [
             (Tuple.of_strs [ "a"; "b" ], -1);
             (Tuple.of_strs [ "d"; "f" ], 1);
             (Tuple.of_strs [ "a"; "f" ], 1);
           ] );
       ])

(* Inserting an edge that creates brand-new paths through existing ones. *)
let insertion_bridges () =
  let db =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(c,d).
      |}
  in
  check_against_oracle db
    (Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]);
  Alcotest.(check bool)
    "path(a,d) derived" true
    (Relation.mem (rel db "path") (Tuple.of_strs [ "a"; "d" ]))

let rejects_duplicates () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  Alcotest.check_raises "duplicate semantics rejected"
    Dred.Duplicate_semantics_unsupported (fun () ->
      ignore
        (Dred.maintain db
           (Changes.insertions (Database.program db) "link"
              [ Tuple.of_strs [ "c"; "d" ] ])))

let suite =
  [
    quick "rederivation puts alternative derivations back" rederivation_happens;
    quick "TC deletion vs oracle" deletion_tc;
    quick "TC insertion vs oracle" insertion_tc;
    quick "TC mixed changes vs oracle" mixed_tc;
    quick "cycle deletion vs oracle" cycle_deletion;
    quick "cycle break vs oracle" cycle_break;
    quick "same-generation vs oracle" same_generation;
    quick "mutual recursion vs oracle" mutual_recursion;
    quick "negation over recursion vs oracle" negation_over_recursion;
    quick "aggregation over recursion vs oracle" aggregation_over_recursion;
    quick "nonrecursive views vs oracle" nonrecursive_views;
    quick "insertion bridges components" insertion_bridges;
    quick "rejects duplicate semantics" rejects_duplicates;
  ]
