(** Persistent incremental aggregate indexes ([DAJ91] accumulators): the
    indexed path must agree exactly with the probe-based Algorithm 6.1
    path and with recomputation, across insertions, deletions, group
    birth/death, and both semantics. *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Vm = Ivm.View_manager
module Agg_index = Ivm_eval.Agg_index
module Compile = Ivm_eval.Compile

let agg_spec_of_source src =
  let rule = Ivm_datalog.Parser.parse_rule src in
  match rule.Ivm_datalog.Ast.body with
  | [ Ivm_datalog.Ast.Lagg agg ] -> Compile.compile_agg_spec agg
  | _ -> failwith "expected a single groupby literal"

let min_spec =
  agg_spec_of_source "v(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C))."

let tup3 s d c = Tuple.of_list Value.[ str s; str d; int c ]

(* Build over a relation, then mutate through deltas; grouped relation and
   previews must match a fresh build at every step. *)
let build_and_apply () =
  let u = Relation.create 3 in
  List.iter
    (fun t -> Relation.add u t 1)
    [ tup3 "a" "b" 3; tup3 "a" "b" 5; tup3 "a" "c" 9 ];
  let idx = Agg_index.build (Relation_view.concrete u) min_spec in
  Alcotest.(check int) "two groups" 2 (Agg_index.group_count idx);
  let fresh () =
    Ivm_eval.Grouping.compute (Relation_view.concrete u) min_spec
  in
  check_rel ~counted:false "initial grouped" (fresh ()) (Agg_index.grouped idx);
  (* delete the current minimum of (a,b): min moves 3 → 5 *)
  let delta = Relation.of_list 3 [ (tup3 "a" "b" 3, -1) ] in
  Relation.add u (tup3 "a" "b" 3) (-1);
  let dt = Agg_index.apply_delta idx delta in
  check_rel ~counted:false "grouped after delete" (fresh ()) (Agg_index.grouped idx);
  Alcotest.(check int) "ΔT has −old +new" 2 (Relation.cardinal dt);
  (* kill the whole (a,c) group *)
  let delta = Relation.of_list 3 [ (tup3 "a" "c" 9, -1) ] in
  Relation.add u (tup3 "a" "c" 9) (-1);
  ignore (Agg_index.apply_delta idx delta);
  Alcotest.(check int) "group died" 1 (Agg_index.group_count idx);
  check_rel ~counted:false "grouped after group death" (fresh ())
    (Agg_index.grouped idx);
  (* new group appears *)
  let delta = Relation.of_list 3 [ (tup3 "x" "y" 7, 1) ] in
  Relation.add u (tup3 "x" "y" 7) 1;
  let dt = Agg_index.apply_delta idx delta in
  Alcotest.(check int) "group born" 2 (Agg_index.group_count idx);
  Alcotest.(check int) "ΔT is the new tuple" 1 (Relation.cardinal dt);
  check_rel ~counted:false "grouped after birth" (fresh ()) (Agg_index.grouped idx)

(* preview must not mutate *)
let preview_is_pure () =
  let u = Relation.create 3 in
  List.iter (fun t -> Relation.add u t 1) [ tup3 "a" "b" 3; tup3 "a" "b" 5 ];
  let idx = Agg_index.build (Relation_view.concrete u) min_spec in
  let before = Relation.copy (Agg_index.grouped idx) in
  let delta = Relation.of_list 3 [ (tup3 "a" "b" 3, -1) ] in
  let dt1 = Agg_index.delta_preview idx delta in
  let dt2 = Agg_index.delta_preview idx delta in
  check_rel "previews agree" dt1 dt2;
  check_rel ~counted:false "index unchanged" before (Agg_index.grouped idx)

let aggregation_source =
  {|
    hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
    min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
    total_fanout(S, T) :- groupby(link(S, D, C), [S], T = sum(C)).
    link(a,b,1). link(b,c,2). link(b,e,5). link(a,d,4). link(d,c,1).
  |}

(* counting with the index registered must equal counting without, over a
   stream of updates, in both semantics *)
let indexed_counting_agrees semantics () =
  let mk () = db_of_source ~semantics aggregation_source in
  let db_plain = mk () in
  let db_indexed = mk () in
  let vm_like_register db =
    List.iter
      (fun rule ->
        List.iter
          (fun lit ->
            match lit with
            | Ivm_datalog.Ast.Lagg agg ->
              ignore
                (Database.register_agg_index db (Compile.compile_agg_spec agg))
            | _ -> ())
          rule.Ivm_datalog.Ast.body)
      (Program.rules (Database.program db))
  in
  vm_like_register db_indexed;
  let batches =
    [
      [ (tup3 "a" "f" 1, 1); (tup3 "f" "c" 1, 1) ];
      [ (tup3 "f" "c" 1, -1) ];
      [ (tup3 "b" "c" 2, -1); (tup3 "b" "c" 7, 1) ];
      [ (tup3 "a" "b" 1, -1) ];
      [ (tup3 "z" "z2" 3, 1) ];
    ]
  in
  List.iter
    (fun batch ->
      let ch db = Changes.of_list (Database.program db) [ ("link", batch) ] in
      ignore (Counting.maintain db_plain (ch db_plain));
      ignore (Counting.maintain db_indexed (ch db_indexed));
      List.iter
        (fun p ->
          if not (Relation.equal_counted (rel db_plain p) (rel db_indexed p))
          then
            Alcotest.failf "%s: plain %s <> indexed %s" p
              (Relation.to_string (rel db_plain p))
              (Relation.to_string (rel db_indexed p)))
        (Program.derived_preds (Database.program db_plain)))
    batches

(* View_manager opt-in: audits stay green through updates and rule
   changes. *)
let view_manager_integration () =
  let vm = Vm.of_source ~algorithm:Vm.Counting aggregation_source in
  Vm.enable_incremental_aggregates vm;
  ignore (Vm.insert vm "link" [ tup3 "a" "f" 1; tup3 "f" "c" 1 ]);
  Alcotest.(check (result unit string)) "audit 1" (Ok ()) (Vm.audit vm);
  ignore (Vm.delete vm "link" [ tup3 "f" "c" 1 ]);
  Alcotest.(check (result unit string)) "audit 2" (Ok ()) (Vm.audit vm);
  (* rule change rebuilds the database; indexes must re-register *)
  Vm.add_rule_text vm "cheap(S, D) :- min_cost_hop(S, D, M), M < 4.";
  ignore (Vm.delete vm "link" [ tup3 "a" "b" 1 ]);
  Alcotest.(check (result unit string)) "audit 3" (Ok ()) (Vm.audit vm)

(* DRed consumes set transitions *)
let dred_with_index () =
  let src =
    {|
      path(X, Y) :- link(X, Y).
      path(X, Y) :- path(X, Z), link(Z, Y).
      out_degree(X, N) :- groupby(path(X, Y), [X], N = count()).
      link(a,b). link(b,c). link(c,d). link(a,c).
    |}
  in
  let db = db_of_source src in
  (match
     Program.rules (Database.program db)
     |> List.concat_map (fun r -> r.Ivm_datalog.Ast.body)
     |> List.filter_map (function Ivm_datalog.Ast.Lagg a -> Some a | _ -> None)
   with
  | [ agg ] ->
    ignore (Database.register_agg_index db (Compile.compile_agg_spec agg))
  | _ -> Alcotest.fail "expected one aggregate");
  let oracle = Database.copy db in
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]
  in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base oracle changes);
  Seminaive.evaluate oracle;
  ignore (Dred.maintain db changes);
  check_rel ~counted:false "out_degree matches oracle" (rel oracle "out_degree")
    (rel db "out_degree")

(* a recompute invalidates indexes; subsequent counting still correct *)
let recompute_invalidates () =
  let db = db_of_source aggregation_source in
  List.iter
    (fun rule ->
      List.iter
        (fun lit ->
          match lit with
          | Ivm_datalog.Ast.Lagg agg ->
            ignore (Database.register_agg_index db (Compile.compile_agg_spec agg))
          | _ -> ())
        rule.Ivm_datalog.Ast.body)
    (Program.rules (Database.program db));
  Ivm_baselines.Recompute.maintain db
    (Changes.insertions (Database.program db) "link" [ tup3 "q" "r" 2 ]);
  (* indexes dropped; counting falls back to the probe path and stays exact *)
  ignore
    (Counting.maintain db
       (Changes.insertions (Database.program db) "link" [ tup3 "r" "s" 2 ]));
  let oracle = Database.copy db in
  Seminaive.evaluate oracle;
  List.iter
    (fun p -> check_rel (p ^ " exact") (rel oracle p) (rel db p))
    (Program.derived_preds (Database.program db))

let suite =
  [
    quick "build / apply_delta lifecycle" build_and_apply;
    quick "delta_preview is pure" preview_is_pure;
    quick "indexed counting == plain (set)"
      (indexed_counting_agrees Database.Set_semantics);
    quick "indexed counting == plain (duplicates)"
      (indexed_counting_agrees Database.Duplicate_semantics);
    quick "view manager integration + rule changes" view_manager_integration;
    quick "DRed with registered index" dred_with_index;
    quick "recompute invalidates indexes" recompute_invalidates;
  ]
