(** Recursive counting ([GKM92] extension, Section 8): exact derivation
    counts through recursion on acyclic data, detected divergence on
    cycles. *)

open Util
module Changes = Ivm.Changes
module Rc = Ivm.Recursive_counting

let dag_source =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b). link(b,c). link(a,c). link(c,d).
  |}

let db_counted src =
  let statements = Ivm_datalog.Parser.parse_program src in
  let rules, facts = Ivm_datalog.Parser.split statements in
  let program = Program.make rules in
  let db = Database.create ~semantics:Database.Duplicate_semantics program in
  List.iter (fun (p, vals) -> Database.load db p [ Tuple.of_list vals ]) facts;
  Rc.evaluate db;
  db

(* Derivation counts on a diamond: path(a,c) has 2 derivations (direct and
   via b); path(a,d) has 2 (each a→c derivation extends by c→d). *)
let diamond_counts () =
  let db = db_counted dag_source in
  check_rel "path counts"
    (rel_of_pairs "ab; bc; cd; ac 2; bd; ad 2")
    (rel db "path")

(* Insertion updates counts exactly: adding b→d gives path(a,d) a third
   derivation (a→b→d) ... via path(a,b)&link(b,d) plus existing 2. *)
let insertion_updates_counts () =
  let db = db_counted dag_source in
  let changes =
    Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "b"; "d" ] ]
  in
  ignore (Rc.maintain db changes);
  Alcotest.(check int)
    "path(a,d) count" 3
    (Relation.count (rel db "path") (Tuple.of_strs [ "a"; "d" ]));
  Alcotest.(check int)
    "path(b,d) count" 2
    (Relation.count (rel db "path") (Tuple.of_strs [ "b"; "d" ]))

(* Deletion updates counts exactly and removes zero-count tuples. *)
let deletion_updates_counts () =
  let db = db_counted dag_source in
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "a"; "c" ] ]
  in
  ignore (Rc.maintain db changes);
  Alcotest.(check int)
    "path(a,c) count" 1
    (Relation.count (rel db "path") (Tuple.of_strs [ "a"; "c" ]));
  Alcotest.(check int)
    "path(a,d) count" 1
    (Relation.count (rel db "path") (Tuple.of_strs [ "a"; "d" ]))

(* Incremental equals recompute on a random-ish DAG update mix. *)
let matches_recompute () =
  let db = db_counted dag_source in
  let changes =
    Changes.of_list (Database.program db)
      [
        ( "link",
          [
            (Tuple.of_strs [ "b"; "c" ], -1);
            (Tuple.of_strs [ "b"; "e" ], 1);
            (Tuple.of_strs [ "e"; "d" ], 1);
          ] );
      ]
  in
  let oracle = Database.copy db in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base oracle changes);
  Rc.evaluate oracle;
  ignore (Rc.maintain db changes);
  check_rel "counts match oracle" (rel oracle "path") (rel db "path")

(* Cyclic data: infinitely many derivations — divergence must be raised,
   exactly as Section 8 warns. *)
let cycle_diverges () =
  let raised = ref false in
  (try
     ignore
       (db_counted
          {|
            path(X, Y) :- link(X, Y).
            path(X, Y) :- path(X, Z), link(Z, Y).
            link(a,b). link(b,a).
          |})
   with Rc.Divergence _ -> raised := true);
  Alcotest.(check bool) "divergence detected" true !raised

(* An insertion that creates a cycle on previously acyclic data also
   diverges. *)
let insertion_creates_cycle () =
  let db = db_counted dag_source in
  let raised = ref false in
  (try
     ignore
       (Rc.maintain ~max_rounds:64 db
          (Changes.insertions (Database.program db) "link"
             [ Tuple.of_strs [ "d"; "a" ] ]))
   with Rc.Divergence _ -> raised := true);
  Alcotest.(check bool) "divergence detected" true !raised

(* Set semantics is rejected. *)
let set_semantics_rejected () =
  let db = db_of_source dag_source in
  try
    ignore
      (Rc.maintain db
         (Changes.insertions (Database.program db) "link"
            [ Tuple.of_strs [ "d"; "e" ] ]));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* Mixed program: nonrecursive predicates above the recursion also keep
   exact counts. *)
let counts_above_recursion () =
  let db =
    db_counted
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        two_way(X, Y) :- path(X, Y), path(Y, X).
        link(a,b). link(b,c). link(a,c). link(c,d).
      |}
  in
  Alcotest.(check int) "two_way empty" 0 (Relation.cardinal (rel db "two_way"));
  ignore
    (Rc.maintain ~max_rounds:64 db
       (Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "d"; "e" ] ]));
  Alcotest.(check int)
    "path(a,e) count" 2
    (Relation.count (rel db "path") (Tuple.of_strs [ "a"; "e" ]))

let suite =
  [
    quick "diamond derivation counts" diamond_counts;
    quick "insertion updates counts exactly" insertion_updates_counts;
    quick "deletion updates counts exactly" deletion_updates_counts;
    quick "incremental matches recompute" matches_recompute;
    quick "cycle diverges at evaluation" cycle_diverges;
    quick "insertion creating a cycle diverges" insertion_creates_cycle;
    quick "set semantics rejected" set_semantics_rejected;
    quick "counts above recursion" counts_above_recursion;
  ]
