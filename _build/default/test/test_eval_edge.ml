(** Evaluator edge cases: self joins, repeated variables, constants in
    patterns, arithmetic corner cases, deep strata, empty relations. *)

open Util

let self_join_repeated_vars () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        refl(X) :- link(X, X).
        sym(X, Y) :- link(X, Y), link(Y, X).
        link(a,a). link(a,b). link(b,a). link(c,d).
      |}
  in
  let expect = Relation.of_tuples 1 [ Tuple.of_strs [ "a" ] ] in
  check_rel ~counted:false "reflexive" expect (rel db "refl");
  check_rel ~counted:false "symmetric pairs" (rel_of_pairs "aa; ab; ba")
    (rel db "sym")

let repeated_head_vars () =
  let db =
    db_of_source {|
      diag(X, X) :- node(X).
      node(a). node(b).
    |}
  in
  check_rel ~counted:false "diagonal" (rel_of_pairs "aa; bb") (rel db "diag")

let constants_in_body () =
  let db =
    db_of_source {|
      from_a(Y) :- link(a, Y).
      link(a,b). link(a,c). link(b,d).
    |}
  in
  let expect = Relation.of_tuples 1 [ Tuple.of_strs [ "b" ]; Tuple.of_strs [ "c" ] ] in
  check_rel ~counted:false "probe on constant" expect (rel db "from_a")

let float_arithmetic () =
  let db =
    db_of_source
      {|
        scaled(X, S) :- m(X, V), S = V * 2.5.
        avg_v(A) :- groupby(m(X, V), [], A = avg(V)).
        m(a, 2). m(b, 3.0).
      |}
  in
  Alcotest.(check bool) "int promoted" true
    (Relation.mem (rel db "scaled") (Tuple.of_list Value.[ str "a"; float 5.0 ]));
  Alcotest.(check bool) "avg is float" true
    (Relation.mem (rel db "avg_v") (Tuple.of_list Value.[ float 2.5 ]))

let division_by_zero_surfaces () =
  try
    ignore
      (db_of_source {|
          bad(Y) :- m(X), Y = X / 0.
          m(1).
        |});
    Alcotest.fail "expected Type_error"
  with Value.Type_error _ -> ()

let cross_type_comparisons () =
  let db =
    db_of_source
      {|
        low(X) :- m(X, V), V < 2.5.
        m(a, 2). m(b, 3.0). m(c, 2.4).
      |}
  in
  let expect = Relation.of_tuples 1 [ Tuple.of_strs [ "a" ]; Tuple.of_strs [ "c" ] ] in
  check_rel ~counted:false "int vs float compare" expect (rel db "low")

let deep_strata_chain () =
  (* 8 strata of alternating join/negation *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "v1(X, Y) :- link(X, Y).\n";
  for k = 2 to 8 do
    if k mod 2 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "v%d(X, Y) :- v%d(X, Z), link(Z, Y).\n" k (k - 1))
    else
      Buffer.add_string buf
        (Printf.sprintf "v%d(X, Y) :- v%d(X, Y), not v%d(Y, X).\n" k (k - 1) (k - 1))
  done;
  Buffer.add_string buf "link(a,b). link(b,c). link(c,d). link(d,e). link(e,f).\n";
  Buffer.add_string buf "link(f,g). link(g,h). link(h,i).\n";
  let db = db_of_source (Buffer.contents buf) in
  Alcotest.(check int) "v8 stratum" 8 (Program.stratum (Database.program db) "v8");
  (* maintenance through all 8 strata stays exact *)
  let changes =
    Ivm.Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "d"; "e" ] ]
  in
  let oracle = Database.copy db in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Ivm.Changes.normalize_base oracle changes);
  Seminaive.evaluate oracle;
  ignore (Ivm.Counting.maintain db changes);
  for k = 1 to 8 do
    let p = Printf.sprintf "v%d" k in
    check_rel (p ^ " exact") (rel oracle p) (rel db p)
  done

let empty_base_relations () =
  let db =
    db_of_source ~extra_base:[ ("link", 2) ]
      "hop(X, Y) :- link(X, Z), link(Z, Y)."
  in
  Alcotest.(check int) "empty view" 0 (Relation.cardinal (rel db "hop"));
  (* maintenance on a fully empty database *)
  ignore
    (Ivm.Counting.maintain db
       (Ivm.Changes.insertions (Database.program db) "link"
          [ Tuple.of_strs [ "a"; "b" ]; Tuple.of_strs [ "b"; "c" ] ]));
  check_rel ~counted:false "view appears" (rel_of_pairs "ac") (rel db "hop")

let negation_of_empty () =
  let db =
    db_of_source ~extra_base:[ ("blocked", 2) ]
      {|
        open_link(X, Y) :- link(X, Y), not blocked(X, Y).
        link(a,b). link(b,c).
      |}
  in
  check_rel ~counted:false "nothing blocked" (rel_of_pairs "ab; bc")
    (rel db "open_link")

let duplicate_rules_accumulate () =
  (* the same rule twice doubles every count under duplicate semantics *)
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        r(X, Y) :- link(X, Y).
        r(X, Y) :- link(X, Y).
        link(a,b).
      |}
  in
  check_rel "two derivations" (rel_of_pairs "ab 2") (rel db "r")

let wide_tuples () =
  let db =
    db_of_source
      {|
        wide(A, B, C, D, E, F) :- t(A, B, C), t(D, E, F).
        proj(A, F) :- wide(A, B, C, D, E, F).
        t(1, 2, 3). t(4, 5, 6).
      |}
  in
  Alcotest.(check int) "4 wide tuples" 4 (Relation.cardinal (rel db "wide"));
  Alcotest.(check bool) "projection" true
    (Relation.mem (rel db "proj") (Tuple.of_ints [ 1; 6 ]))

let suite =
  [
    quick "self joins and repeated variables" self_join_repeated_vars;
    quick "repeated head variables" repeated_head_vars;
    quick "constants in body atoms" constants_in_body;
    quick "float arithmetic and AVG" float_arithmetic;
    quick "division by zero surfaces" division_by_zero_surfaces;
    quick "cross-type comparisons" cross_type_comparisons;
    quick "deep strata chain maintained exactly" deep_strata_chain;
    quick "empty base relations" empty_base_relations;
    quick "negation over an empty relation" negation_of_empty;
    quick "duplicate rules accumulate counts" duplicate_rules_accumulate;
    quick "wide tuples and projections" wide_tuples;
  ]
