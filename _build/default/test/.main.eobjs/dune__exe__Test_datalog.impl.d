test/test_datalog.ml: Alcotest Ivm_datalog List Parser Program String Util Value
