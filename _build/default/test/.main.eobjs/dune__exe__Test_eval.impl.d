test/test_eval.ml: Alcotest Database Relation Tuple Util Value
