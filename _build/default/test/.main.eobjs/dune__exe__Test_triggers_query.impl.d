test/test_triggers_query.ml: Alcotest Database Ivm Ivm_datalog Ivm_eval List Program Relation Tuple Util Value
