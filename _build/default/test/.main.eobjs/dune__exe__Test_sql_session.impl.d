test/test_sql_session.ml: Alcotest Database Ivm Ivm_eval Ivm_sql List Relation Tuple Util Value
