test/test_workload.ml: Alcotest Array Database Fun Hashtbl Ivm Ivm_workload List Option Printf Relation Tuple Util Value
