test/test_agg_index.ml: Alcotest Database Ivm Ivm_baselines Ivm_datalog Ivm_eval List Program Relation Relation_view Seminaive Tuple Util Value
