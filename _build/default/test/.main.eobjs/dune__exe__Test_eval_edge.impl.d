test/test_eval_edge.ml: Alcotest Buffer Database Ivm List Printf Program Relation Seminaive Tuple Util Value
