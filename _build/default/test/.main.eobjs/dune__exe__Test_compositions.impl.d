test/test_compositions.ml: Alcotest Array Database Ivm Relation Tuple Util Value
