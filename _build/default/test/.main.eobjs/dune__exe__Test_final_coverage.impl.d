test/test_final_coverage.ml: Alcotest Ast Database Ivm Ivm_baselines Ivm_datalog Ivm_sql List Program Relation String Tuple Util
