test/test_grouping.ml: Alcotest Ast Ivm_eval List Parser Relation Relation_view Tuple Util Value
