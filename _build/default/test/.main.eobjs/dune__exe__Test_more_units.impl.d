test/test_more_units.ml: Alcotest Ast Database Ivm Ivm_datalog Ivm_eval List Parser Printf Program Relation Seminaive String Tuple Util Value
