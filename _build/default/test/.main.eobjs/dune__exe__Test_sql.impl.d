test/test_sql.ml: Alcotest Database Ivm Ivm_sql Relation Tuple Util Value
