test/test_distinct.ml: Alcotest Database Ivm Ivm_sql List Relation Tuple Util Value
