test/test_rule_changes.ml: Alcotest Database Ivm Ivm_datalog Relation Tuple Util Value
