test/test_counting.ml: Alcotest Array Database Ivm List Program Relation Seminaive Tuple Util Value
