test/test_properties.ml: Database Format Ivm Ivm_baselines Ivm_datalog Ivm_eval Ivm_relation Ivm_sql Ivm_workload List Option Printf Program QCheck QCheck_alcotest Relation Seminaive Tuple Util Value
