test/test_baselines.ml: Alcotest Database Ivm Ivm_baselines Ivm_datalog Ivm_eval Ivm_workload List Printf Program Relation Seminaive Tuple Util
