test/util.ml: Alcotest Ivm_datalog Ivm_eval Ivm_relation List String
