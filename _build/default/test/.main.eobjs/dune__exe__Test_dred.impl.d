test/test_dred.ml: Alcotest Database Ivm List Program Relation Seminaive Tuple Util Value
