test/test_view_manager.ml: Alcotest Database Ivm List Relation String Tuple Util
