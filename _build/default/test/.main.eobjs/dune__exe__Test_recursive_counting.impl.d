test/test_recursive_counting.ml: Alcotest Database Ivm Ivm_datalog List Program Relation Tuple Util
