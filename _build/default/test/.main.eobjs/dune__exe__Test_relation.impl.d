test/test_relation.ml: Alcotest List Relation Relation_view Tuple Util Value
