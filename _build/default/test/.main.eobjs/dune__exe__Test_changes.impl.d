test/test_changes.ml: Alcotest Database Ivm List Parser Program Relation Tuple Util
