test/test_algorithm_matrix.ml: Alcotest Database Ivm Ivm_baselines Ivm_eval Ivm_workload List Parser Program Relation Seminaive Tuple Util
