test/test_misc_coverage.ml: Alcotest Database Format Ivm Ivm_datalog Ivm_eval List Parser Program Relation Relation_view String Tuple Util Value
