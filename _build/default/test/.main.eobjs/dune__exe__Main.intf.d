test/main.mli:
