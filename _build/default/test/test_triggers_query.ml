(** Active-database triggers (§1's "a rule may fire when a particular
    tuple is inserted into a view") and ad-hoc queries. *)

open Util
module Vm = Ivm.View_manager
module Triggers = Ivm.Triggers
module Query = Ivm_eval.Query

let hop_source = {|
  hop(X, Y) :- link(X, Z), link(Z, Y).
  link(a,b). link(b,c).
|}

let fires_on_view_change () =
  let vm = Vm.of_source ~semantics:Database.Duplicate_semantics hop_source in
  let tr = Triggers.create vm in
  let fired = ref [] in
  let _s = Triggers.subscribe tr "hop" (fun delta -> fired := Relation.to_sorted_list delta @ !fired) in
  ignore (Triggers.insert tr "link" [ Tuple.of_strs [ "c"; "d" ] ]);
  Alcotest.(check int) "one insertion seen" 1 (List.length !fired);
  (match !fired with
  | [ (t, c) ] ->
    Alcotest.(check bool) "tuple" true (Tuple.equal t (Tuple.of_strs [ "b"; "d" ]));
    Alcotest.(check int) "count" 1 c
  | _ -> Alcotest.fail "unexpected");
  (* a base change that leaves the view alone fires nothing *)
  fired := [];
  ignore (Triggers.insert tr "link" [ Tuple.of_strs [ "z"; "q" ] ]);
  Alcotest.(check int) "silent" 0 (List.length !fired)

let insertion_and_deletion_hooks () =
  let vm = Vm.of_source ~semantics:Database.Duplicate_semantics hop_source in
  let tr = Triggers.create vm in
  let ins = ref 0 and del = ref 0 in
  let _ = Triggers.on_insertion tr "hop" (fun _ c -> ins := !ins + c) in
  let _ = Triggers.on_deletion tr "hop" (fun _ c -> del := !del + c) in
  ignore
    (Triggers.update tr "link" ~old_tuple:(Tuple.of_strs [ "b"; "c" ])
       ~new_tuple:(Tuple.of_strs [ "b"; "d" ]));
  Alcotest.(check int) "one insertion (a,d)" 1 !ins;
  Alcotest.(check int) "one deletion (a,c)" 1 !del

let unsubscribe_works () =
  let vm = Vm.of_source hop_source in
  let tr = Triggers.create vm in
  let n = ref 0 in
  let s = Triggers.subscribe tr "hop" (fun _ -> incr n) in
  ignore (Triggers.insert tr "link" [ Tuple.of_strs [ "c"; "d" ] ]);
  Triggers.unsubscribe tr s;
  ignore (Triggers.delete tr "link" [ Tuple.of_strs [ "c"; "d" ] ]);
  Alcotest.(check int) "fired once" 1 !n;
  Alcotest.(check int) "history has both batches" 2 (List.length (Triggers.history tr))

let unknown_view_rejected () =
  let vm = Vm.of_source hop_source in
  let tr = Triggers.create vm in
  try
    ignore (Triggers.subscribe tr "nope" (fun _ -> ()));
    Alcotest.fail "expected Program_error"
  with Program.Program_error _ -> ()

(* ---------------- queries ---------------- *)

let db () = db_of_source ~semantics:Database.Duplicate_semantics
    {|
      hop(X, Y) :- link(X, Z), link(Z, Y).
      link(a,b). link(b,c). link(b,d). link(a,b2). link(b2,c).
    |}

let simple_query () =
  let r = Query.run_text (db ()) "hop(a, X)" in
  Alcotest.(check (list string)) "columns" [ "X" ] r.Query.columns;
  (* hop(a,c) twice (via b and b2), hop(a,d) once *)
  Alcotest.(check int) "c count 2" 2
    (Relation.count r.Query.rows (Tuple.of_strs [ "c" ]));
  Alcotest.(check int) "d count 1" 1
    (Relation.count r.Query.rows (Tuple.of_strs [ "d" ]))

let join_query () =
  let r = Query.run_text (db ()) "link(a, X), link(X, Y)" in
  Alcotest.(check (list string)) "columns" [ "X"; "Y" ] r.Query.columns;
  Alcotest.(check int) "three rows" 3 (Relation.cardinal r.Query.rows)

let negation_and_comparison_query () =
  let r = Query.run_text (db ()) "link(X, Y), not hop(a, Y), X != b" in
  (* link tuples whose target is not 2-reachable from a and whose source
     is not b: (a,b), (a,b2) *)
  Alcotest.(check int) "two rows" 2 (Relation.cardinal r.Query.rows)

let aggregate_query () =
  let r = Query.run_text (db ()) "groupby(link(X, Y), [X], N = count())" in
  Alcotest.(check (list string)) "columns" [ "X"; "N" ] r.Query.columns;
  Alcotest.(check bool) "b has 2" true
    (Relation.mem r.Query.rows (Tuple.of_list Value.[ str "b"; int 2 ]))

let boolean_query () =
  let d = db () in
  Alcotest.(check bool) "true" true (Query.holds d "link(a, b)");
  Alcotest.(check bool) "false" false (Query.holds d "link(b, a)")

let computed_column () =
  let d =
    db_of_source {|
      m(a, 2). m(b, 5).
      dummy(X) :- m(X, V).
    |}
  in
  let r = Query.run_text d "m(X, V), W = V * 10" in
  Alcotest.(check (list string)) "columns" [ "X"; "V"; "W" ] r.Query.columns;
  Alcotest.(check bool) "computed" true
    (Relation.mem r.Query.rows (Tuple.of_list Value.[ str "b"; int 5; int 50 ]))

let unsafe_query_rejected () =
  try
    ignore (Query.run_text (db ()) "not link(X, Y)");
    Alcotest.fail "expected Unsafe"
  with Ivm_datalog.Safety.Unsafe _ -> ()

let unknown_pred_rejected () =
  try
    ignore (Query.run_text (db ()) "nothere(X)");
    Alcotest.fail "expected Program_error"
  with Program.Program_error _ -> ()

(* triggers compose with DRed: recursive view deltas dispatch too *)
let triggers_with_dred () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  let tr = Ivm.Triggers.create vm in
  let ins = ref 0 and del = ref 0 in
  let _ = Ivm.Triggers.on_insertion tr "path" (fun _ _ -> incr ins) in
  let _ = Ivm.Triggers.on_deletion tr "path" (fun _ _ -> incr del) in
  ignore (Ivm.Triggers.insert tr "link" [ Tuple.of_strs [ "c"; "d" ] ]);
  (* new paths: c→d, b→d, a→d *)
  Alcotest.(check int) "three insertions" 3 !ins;
  ignore (Ivm.Triggers.delete tr "link" [ Tuple.of_strs [ "a"; "b" ] ]);
  (* lost paths: a→b, a→c, a→d *)
  Alcotest.(check int) "three deletions" 3 !del

(* ad-hoc queries over recursive materializations are single joins *)
let query_over_recursion () =
  let d =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,d).
      |}
  in
  let r = Query.run_text d "path(a, X), path(X, d)" in
  (* midpoints strictly between a and d: b and c *)
  Alcotest.(check int) "two midpoints" 2 (Relation.cardinal r.Query.rows)

let suite =
  [
    quick "triggers compose with DRed" triggers_with_dred;
    quick "query over a recursive view" query_over_recursion;
    quick "trigger fires on view change" fires_on_view_change;
    quick "insertion/deletion hooks" insertion_and_deletion_hooks;
    quick "unsubscribe and history" unsubscribe_works;
    quick "unknown view rejected" unknown_view_rejected;
    quick "simple query with counts" simple_query;
    quick "join query" join_query;
    quick "negation + comparison query" negation_and_comparison_query;
    quick "aggregate query" aggregate_query;
    quick "boolean query" boolean_query;
    quick "computed column" computed_column;
    quick "unsafe query rejected" unsafe_query_rejected;
    quick "unknown predicate rejected" unknown_pred_rejected;
  ]
