(** Last-mile coverage: translation internals, PF stats, report fields,
    empty-database behaviour. *)

open Util
module Sql = Ivm_sql.Sql_translate
module Pf = Ivm_baselines.Pf
module Changes = Ivm.Changes
module Dred = Ivm.Dred
module Rc = Ivm.Recursive_counting
module Vm = Ivm.View_manager

let translate_result_shape () =
  let r =
    Sql.translate
      {|
        CREATE TABLE link(s, d);
        CREATE VIEW hop(s, d) AS
          SELECT DISTINCT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
        CREATE VIEW strict(s, d) AS
          SELECT h.s, h.d FROM hop h
          WHERE NOT EXISTS (SELECT * FROM link l
                            WHERE l.s = h.s AND l.d = h.d);
        CREATE VIEW deg(s, n) AS
          SELECT l.s, COUNT(*) FROM link l GROUP BY l.s;
        INSERT INTO link VALUES (a, b);
      |}
  in
  Alcotest.(check (list (pair string (list string))))
    "tables" [ ("link", [ "s"; "d" ]) ] r.Sql.tables;
  Alcotest.(check (list string))
    "views in order" [ "hop"; "strict"; "deg" ]
    (List.map fst r.Sql.views);
  Alcotest.(check (list string)) "distinct views" [ "hop" ] r.Sql.distinct_views;
  Alcotest.(check int) "one fact batch" 1 (List.length r.Sql.facts);
  (* main rules for 3 views + 1 NOT EXISTS aux + 1 GROUP BY aux *)
  Alcotest.(check int) "five rules" 5 (List.length r.Sql.rules);
  let heads = List.map (fun ru -> ru.Ast.head.Ast.pred) r.Sql.rules in
  Alcotest.(check bool) "aux notexists rule" true
    (List.exists (fun h -> String.length h > 15
                           && String.sub h 0 15 = "strict_notexist") heads);
  Alcotest.(check bool) "aux group rule" true
    (List.exists (fun h -> String.length h > 8 && String.sub h 0 9 = "deg_group") heads)

let pf_granularity_stats () =
  let db = db_of_source {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b). link(b,c). link(c,d).
  |} in
  let changes =
    Changes.of_list (Database.program db)
      [
        ( "link",
          [ (Tuple.of_strs [ "a"; "b" ], -1); (Tuple.of_strs [ "b"; "c" ], -1);
            (Tuple.of_strs [ "d"; "e" ], 1) ] );
      ]
  in
  let db2 = Database.copy db in
  let per_tuple = Pf.maintain ~granularity:Pf.Per_tuple db changes in
  let per_pred = Pf.maintain ~granularity:Pf.Per_predicate db2 changes in
  Alcotest.(check int) "3 per-tuple passes" 3 per_tuple.Pf.passes;
  Alcotest.(check int) "1 per-pred pass" 1 per_pred.Pf.passes;
  Alcotest.(check bool) "same final state" true
    (Relation.equal_sets (rel db "path") (rel db2 "path"))

let dred_report_on_insertions () =
  let db = db_of_source {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
    link(a,b).
  |} in
  let report =
    Dred.maintain db
      (Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ])
  in
  Alcotest.(check int) "nothing overdeleted" 0 (List.length report.Dred.overdeleted);
  Alcotest.(check int) "nothing rederived" 0 (List.length report.Dred.rederived);
  match report.Dred.view_deltas with
  | [ ("path", d) ] -> check_rel "Δpath" (rel_of_pairs "bc; ac") d
  | _ -> Alcotest.fail "expected one path delta"

let rc_on_empty_base () =
  let program =
    Program.make
      (Ivm_datalog.Parser.parse_rules
         "path(X, Y) :- link(X, Y).\npath(X, Y) :- path(X, Z), link(Z, Y).")
  in
  let db = Database.create ~semantics:Database.Duplicate_semantics program in
  Rc.evaluate db;
  Alcotest.(check int) "empty" 0 (Relation.cardinal (Database.relation db "path"));
  ignore
    (Rc.maintain db
       (Changes.insertions program "link"
          [ Tuple.of_strs [ "a"; "b" ]; Tuple.of_strs [ "b"; "c" ] ]));
  check_rel ~counted:false "bootstrapped" (rel_of_pairs "ab; bc; ac")
    (Database.relation db "path")

let update_returns_both_sides () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c).
      |}
  in
  let deltas =
    Vm.update vm "link" ~old_tuple:(Tuple.of_strs [ "b"; "c" ])
      ~new_tuple:(Tuple.of_strs [ "b"; "d" ])
  in
  match List.assoc_opt "hop" deltas with
  | Some d -> check_rel "±1 in one delta" (rel_of_pairs "ac -1; ad") d
  | None -> Alcotest.fail "expected hop delta"

let counting_report_base_deltas () =
  let db = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b).
  |} in
  let report =
    Ivm.Counting.maintain db
      (Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ])
  in
  (match report.Ivm.Counting.base_deltas with
  | [ ("link", d) ] -> Alcotest.(check int) "one base tuple" 1 (Relation.cardinal d)
  | _ -> Alcotest.fail "expected link base delta");
  Alcotest.(check (list string)) "changed views" [ "hop" ]
    (Ivm.Counting.changed_views report)

let suite =
  [
    quick "SQL translate result shape" translate_result_shape;
    quick "PF granularity statistics" pf_granularity_stats;
    quick "DRed report on pure insertions" dred_report_on_insertions;
    quick "recursive counting from empty base" rc_on_empty_base;
    quick "update returns deletion and insertion together" update_returns_both_sides;
    quick "counting report fields" counting_report_base_deltas;
  ]
