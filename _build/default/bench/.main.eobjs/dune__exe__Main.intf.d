bench/main.mli:
