bench/harness.ml: Array Filename Ivm Ivm_datalog Ivm_eval Ivm_relation Ivm_workload List Out_channel Printf String Unix
