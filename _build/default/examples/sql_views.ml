(* SQL-defined materialized views, maintained incrementally.

   The paper gives Example 1.1 in SQL; this demo defines the same views
   through the SQL front end — joins, GROUP BY aggregation, and NOT EXISTS
   — and streams updates through the counting algorithm.

   Run with:  dune exec examples/sql_views.exe *)

module Sql = Ivm_sql.Sql_translate
module Vm = Ivm.View_manager
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Relation = Ivm_relation.Relation

let show vm name =
  Format.printf "  %s = %a@." name Relation.pp (Vm.relation vm name)

let () =
  let vm =
    Sql.view_manager ~semantics:Ivm_eval.Database.Duplicate_semantics
      {|
        CREATE TABLE link(s, d, c);

        -- Example 1.1, with costs (Example 6.2)
        CREATE VIEW hop(s, d, c) AS
          SELECT r1.s, r2.d, r1.c + r2.c
          FROM link r1, link r2
          WHERE r1.d = r2.s;

        CREATE VIEW min_cost_hop(s, d, m) AS
          SELECT h.s, h.d, MIN(h.c) FROM hop h GROUP BY h.s, h.d;

        -- nodes with expensive fan-out: total cost of outgoing links
        CREATE VIEW fanout_cost(s, total) AS
          SELECT l.s, SUM(l.c) FROM link l GROUP BY l.s;

        -- pairs reachable in two hops but with no direct link (NOT EXISTS)
        CREATE VIEW indirect_only(s, d) AS
          SELECT h.s, h.d FROM hop h
          WHERE NOT EXISTS (SELECT * FROM link l
                            WHERE l.s = h.s AND l.d = h.d);

        INSERT INTO link VALUES
          (a, b, 1), (b, c, 2), (b, e, 5), (a, d, 4), (d, c, 1), (a, c, 9);
      |}
  in
  Format.printf "SQL-defined views, materialized:@.";
  List.iter (show vm) [ "hop"; "min_cost_hop"; "fanout_cost"; "indirect_only" ];

  (* stream a few updates *)
  let t s d c = Tuple.of_list Value.[ str s; str d; int c ] in
  Format.printf "@.DELETE link(a,b,1); INSERT link(a,f,1), link(f,c,1):@.";
  ignore (Vm.delete vm "link" [ t "a" "b" 1 ]);
  ignore (Vm.insert vm "link" [ t "a" "f" 1; t "f" "c" 1 ]);
  List.iter (show vm) [ "min_cost_hop"; "fanout_cost"; "indirect_only" ];

  Format.printf "@.DELETE the direct link(a,c,9) — (a,c) becomes indirect-only:@.";
  ignore (Vm.delete vm "link" [ t "a" "c" 9 ]);
  List.iter (show vm) [ "indirect_only"; "fanout_cost" ];

  match Vm.audit vm with
  | Ok () -> Format.printf "@.audit: views are exact@."
  | Error msg -> Format.printf "@.audit FAILED:@.%s@." msg
