(* Integrity constraint maintenance — the first application the paper's
   introduction lists for materialized views: express each constraint as a
   view of its *violations* and keep it incrementally maintained; the
   constraint holds exactly when the view is empty, and every update tells
   you precisely which violations it introduced or repaired (the returned
   view deltas), without re-checking the whole database.

   The schema: employees with departments and salaries; departments with
   managers and budgets.

   Constraints:
     C1 (foreign key)  every employee's department exists;
     C2 (domain)       salaries are positive;
     C3 (hierarchy)    no manager earns less than an employee they manage;
     C4 (aggregate)    a department's total salary must not exceed its
                       budget — an aggregate constraint, the kind the
                       paper's counting algorithm is first to handle.

   Run with:  dune exec examples/integrity_constraints.exe *)

module Vm = Ivm.View_manager
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Relation = Ivm_relation.Relation

let emp name dept salary = Tuple.of_list Value.[ str name; str dept; int salary ]
let dept name mgr budget = Tuple.of_list Value.[ str name; str mgr; int budget ]

let show_violations vm =
  List.iter
    (fun v ->
      let r = Vm.relation vm v in
      if Relation.is_empty r then Format.printf "  %-18s ok@." v
      else Format.printf "  %-18s VIOLATED %a@." v Relation.pp r)
    [ "c1_no_such_dept"; "c2_bad_salary"; "c3_underpaid_boss"; "c4_over_budget" ]

let () =
  let vm =
    Vm.of_source ~semantics:Ivm_eval.Database.Duplicate_semantics
      ~algorithm:Vm.Counting
      {|
        % C1: employee's department must exist
        c1_no_such_dept(E, D) :- employee(E, D, S), not is_dept(D).
        is_dept(D) :- department(D, M, B).

        % C2: positive salaries
        c2_bad_salary(E, S) :- employee(E, D, S), S <= 0.

        % C3: managers earn at least as much as their reports
        c3_underpaid_boss(M, E) :-
          employee(E, D, S), department(D, M, B),
          employee(M, D2, MS), MS < S.

        % C4: departmental payroll within budget
        payroll(D, T) :- groupby(employee(E, D, S), [D], T = sum(S)).
        c4_over_budget(D, T, B) :-
          payroll(D, T), department(D, M, B), T > B.
      |}
      ~extra_base:[ ("employee", 3); ("department", 3) ]
  in
  ignore
    (Vm.insert vm "department" [ dept "eng" "ada" 300; dept "ops" "bob" 120 ]);
  ignore
    (Vm.insert vm "employee"
       [
         emp "ada" "eng" 120; emp "joe" "eng" 90; emp "eve" "eng" 80;
         emp "bob" "ops" 70; emp "kim" "ops" 40;
       ]);
  Format.printf "Initial state:@.";
  show_violations vm;

  (* A raise for joe: C3 fires (joe now out-earns ada) and C4 fires (eng
     payroll 120+130+80 = 330 > 300).  The deltas pinpoint both. *)
  Format.printf "@.Giving joe a raise to 130:@.";
  let deltas =
    Vm.update vm "employee" ~old_tuple:(emp "joe" "eng" 90)
      ~new_tuple:(emp "joe" "eng" 130)
  in
  List.iter
    (fun (view, delta) ->
      if String.length view > 1 && view.[0] = 'c' then
        Format.printf "  Δ%s = %a@." view Relation.pp delta)
    deltas;
  show_violations vm;

  (* Repair: raise the budget and ada's salary; violations retract
     incrementally. *)
  Format.printf "@.Repair: eng budget to 400, ada to 140:@.";
  ignore
    (Vm.update vm "department" ~old_tuple:(dept "eng" "ada" 300)
       ~new_tuple:(dept "eng" "ada" 400));
  ignore
    (Vm.update vm "employee" ~old_tuple:(emp "ada" "eng" 120)
       ~new_tuple:(emp "ada" "eng" 140));
  show_violations vm;

  (* A dangling foreign key. *)
  Format.printf "@.Hiring into a department that does not exist:@.";
  ignore (Vm.insert vm "employee" [ emp "zoe" "design" 95 ]);
  show_violations vm;

  (* Creating the department repairs C1 — note C4 is checked for the new
     department too, automatically. *)
  Format.printf "@.Creating the design department (budget 90 — too small):@.";
  ignore (Vm.insert vm "department" [ dept "design" "zoe" 90 ]);
  show_violations vm;

  match Vm.audit vm with
  | Ok () -> Format.printf "@.audit: constraint views are exact@."
  | Error msg -> Format.printf "@.audit FAILED:@.%s@." msg
