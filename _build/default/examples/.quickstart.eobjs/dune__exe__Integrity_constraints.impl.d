examples/integrity_constraints.ml: Format Ivm Ivm_eval Ivm_relation List String
