examples/network_monitor.ml: Array Format Ivm Ivm_datalog Ivm_eval Ivm_relation Ivm_workload List Unix
