examples/quickstart.mli:
