examples/sql_views.mli:
