examples/integrity_constraints.mli:
