examples/sql_views.ml: Format Ivm Ivm_eval Ivm_relation Ivm_sql List
