examples/quickstart.ml: Format Ivm Ivm_eval Ivm_relation List
