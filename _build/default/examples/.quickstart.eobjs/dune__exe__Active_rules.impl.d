examples/active_rules.ml: Array Format Ivm Ivm_eval Ivm_relation List
