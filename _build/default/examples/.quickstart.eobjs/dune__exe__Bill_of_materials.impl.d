examples/bill_of_materials.ml: Format Ivm Ivm_datalog Ivm_relation
