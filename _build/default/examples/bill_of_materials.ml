(* Bill of materials — recursive containment with aggregation, maintained
   by DRed (Section 7).

   contains(P, Q, N): assembly P directly uses N units of part Q.
   uses(P, Q):        P transitively contains Q (recursive view).
   direct_cost(P, T): total direct component cost of P (SUM aggregate).

   The demo edits the product structure — swapping a subassembly, deleting
   a shared part — and shows DRed's delete/rederive keeping `uses` exact
   (shared subparts survive when another route still contains them).  It
   ends by *changing the view definition itself*: a new rule is added at
   run time and maintained incrementally.

   Run with:  dune exec examples/bill_of_materials.exe *)

module Vm = Ivm.View_manager
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Relation = Ivm_relation.Relation

let part p q n = Tuple.of_list Value.[ str p; str q; int n ]
let price q c = Tuple.of_list Value.[ str q; int c ]

let show vm name =
  Format.printf "  %s = %a@." name Relation.pp (Vm.relation vm name)

let () =
  let vm =
    Vm.create ~algorithm:Vm.Dred
      ~facts:
        [
          ( "contains",
            [
              part "car" "engine" 1;
              part "car" "wheel" 4;
              part "engine" "piston" 6;
              part "engine" "bolt" 40;
              part "wheel" "bolt" 5;
              part "wheel" "tire" 1;
            ] );
          ( "base_price",
            [ price "piston" 30; price "bolt" 1; price "tire" 80;
              price "engine" 900; price "wheel" 120 ] );
        ]
      (Ivm_datalog.Parser.parse_rules
         {|
           uses(P, Q) :- contains(P, Q, N).
           uses(P, Q) :- uses(P, R), contains(R, Q, N).
           line_cost(P, Q, N * C) :- contains(P, Q, N), base_price(Q, C).
           direct_cost(P, T) :- groupby(line_cost(P, Q, C), [P], T = sum(C)).
         |})
  in
  Format.printf "Initial bill of materials:@.";
  show vm "uses";
  show vm "direct_cost";

  (* Swap the engine for an electric motor: delete the containment edge.
     DRed overestimates (everything the car used via the engine), then
     rederives what survives: bolts are still reachable through wheels. *)
  Format.printf "@.Replacing the engine with a motor...@.";
  ignore (Vm.delete vm "contains" [ part "car" "engine" 1 ]);
  ignore
    (Vm.apply vm
       (Ivm.Changes.of_list (Vm.program vm)
          [
            ( "contains",
              [ (part "car" "motor" 1, 1); (part "motor" "bolt" 12, 1) ] );
            ("base_price", [ (price "motor" 1400, 1) ]);
          ]));
  show vm "uses";
  show vm "direct_cost";
  Format.printf "  note: uses(car, bolt) survived — wheels still need bolts@.";

  (* View redefinition at run time: track how many distinct part kinds an
     assembly pulls in. *)
  Format.printf "@.Adding a new view rule at run time...@.";
  Vm.add_rule_text vm "part_kinds(P, K) :- groupby(uses(P, Q), [P], K = count()).";
  show vm "part_kinds";

  (* And remove the recursive rule: uses collapses to direct containment,
     incrementally. *)
  Format.printf "@.Removing the recursive rule (uses becomes direct-only):@.";
  Vm.remove_rule_text vm "uses(P, Q) :- uses(P, R), contains(R, Q, N).";
  show vm "uses";
  show vm "part_kinds";

  match Vm.audit vm with
  | Ok () -> Format.printf "@.audit: views are exact@."
  | Error msg -> Format.printf "@.audit FAILED:@.%s@." msg
