(* Quickstart: define a view, materialize it, and keep it incrementally
   maintained while the base data changes.

   Run with:  dune exec examples/quickstart.exe *)

module Vm = Ivm.View_manager
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation

let show vm name =
  Format.printf "  %s = %a@." name Relation.pp (Vm.relation vm name)

let () =
  (* The paper's Example 1.1: hop(c,d) holds when c reaches d in exactly
     two links.  Facts can be given inline with the rules. *)
  let vm =
    Vm.of_source ~semantics:Ivm_eval.Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).

        link(a, b). link(b, c). link(b, e). link(a, d). link(d, c).
      |}
  in
  Format.printf "Initial state (hop(a,c) has two derivations):@.";
  show vm "link";
  show vm "hop";

  (* Delete link(a,b): the counting algorithm knows hop(a,c) has another
     derivation (via d) and deletes only hop(a,e). *)
  let deleted = Vm.delete vm "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  Format.printf "@.After deleting link(a,b):@.";
  List.iter
    (fun (view, delta) -> Format.printf "  Δ%s = %a@." view Relation.pp delta)
    deleted;
  show vm "hop";

  (* Insertions work the same way. *)
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "e"; "a" ] ]);
  Format.printf "@.After inserting link(e,a):@.";
  show vm "hop";

  (* The manager can audit itself against recomputation. *)
  match Vm.audit vm with
  | Ok () -> Format.printf "@.audit: incremental state matches recomputation@."
  | Error msg -> Format.printf "@.audit FAILED:@.%s@." msg
