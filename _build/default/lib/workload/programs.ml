(** The paper's canned view definitions, ready to instantiate over
    generated graphs. *)

(** Example 1.1 / 4.1: two-link connectivity. *)
let hop = {|
  hop(X, Y) :- link(X, Z), link(Z, Y).
|}

(** Example 4.2: a second stratum over [hop]. *)
let hop_tri_hop =
  {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
  |}

(** Example 6.1: negation — pairs connected in three links but not two. *)
let only_tri_hop =
  {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
    only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).
  |}

(** Example 6.2: costed links and the MIN-cost aggregate view. *)
let min_cost_hop =
  {|
    hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
    min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
  |}

(** Transitive closure — the canonical recursive view (Section 7). *)
let transitive_closure =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- path(X, Z), link(Z, Y).
|}

(** Right-linear variant (cf. Dong & Topor's chain views, Section 2). *)
let transitive_closure_right =
  {|
    path(X, Y) :- link(X, Y).
    path(X, Y) :- link(X, Z), path(Z, Y).
|}

(** Same-generation: nonlinear recursion. *)
let same_generation =
  {|
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
|}

(** A deep nonrecursive chain of views: stratum k reaches 2^k links.
    Used by bench E4 to show the set-semantics optimization stopping
    propagation at a low stratum. *)
let view_chain depth =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "reach1(X, Y) :- link(X, Y).\n";
  for k = 2 to depth do
    Buffer.add_string buf
      (Printf.sprintf "reach%d(X, Y) :- reach%d(X, Z), reach%d(Z, Y).\n" k (k - 1)
         (k - 1))
  done;
  Buffer.contents buf

(** Bill of materials: parts contain subparts in given quantities;
    [uses] is the recursive containment; [part_cost] aggregates the direct
    component cost per assembly. *)
let bill_of_materials =
  {|
    uses(P, Q) :- contains(P, Q, N).
    uses(P, Q) :- uses(P, R), contains(R, Q, N).
    direct_cost(P, T) :- groupby(line_cost(P, Q, C), [P], T = sum(C)).
    line_cost(P, Q, N * C) :- contains(P, Q, N), base_price(Q, C).
  |}
