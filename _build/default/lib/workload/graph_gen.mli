(** Graph generators for the [link] relation of the paper's examples.
    Nodes are integers; edges are 2-tuples or costed 3-tuples. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple

type edge = int * int

val node : int -> Value.t
val edge_tuple : edge -> Tuple.t
val tuples : edge list -> Tuple.t list

(** 3-column tuples with uniform integer costs in [1, max_cost]. *)
val costed_tuples : Prng.t -> max_cost:int -> edge list -> Tuple.t list

(** Up to [edges] distinct uniform edges over [nodes] nodes, no self
    loops.  @raise Invalid_argument when [nodes < 2]. *)
val random : Prng.t -> nodes:int -> edges:int -> edge list

(** Nodes in layers, every node with [out_degree] edges into the next
    layer (deduplicated): acyclic, with many alternative derivations.
    Node ids: layer ℓ, slot s ↦ ℓ·width + s. *)
val layered_dag : Prng.t -> layers:int -> width:int -> out_degree:int -> edge list

(** A path graph 0 → 1 → … → n−1. *)
val chain : int -> edge list

(** A single directed cycle over n nodes. *)
val cycle : int -> edge list

(** Preferential attachment (Barabási–Albert style): heavy-tailed
    fan-outs, a few hubs dominating view sizes.
    @raise Invalid_argument when [nodes < 2]. *)
val scale_free : Prng.t -> nodes:int -> attach:int -> edge list

(** 2-D lattice with right and down edges; node (r,c) ↦ r·cols + c. *)
val grid : rows:int -> cols:int -> edge list
