lib/workload/graph_gen.mli: Ivm_relation Prng
