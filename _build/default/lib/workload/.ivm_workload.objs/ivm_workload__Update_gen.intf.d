lib/workload/update_gen.mli: Ivm Ivm_eval Ivm_relation Prng
