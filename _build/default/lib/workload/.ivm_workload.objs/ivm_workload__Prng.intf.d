lib/workload/prng.mli:
