lib/workload/graph_gen.ml: Array Ivm_relation List Prng
