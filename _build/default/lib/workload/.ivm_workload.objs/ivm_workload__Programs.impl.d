lib/workload/programs.ml: Buffer Printf
