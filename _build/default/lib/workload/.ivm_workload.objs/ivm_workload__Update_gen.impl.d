lib/workload/update_gen.ml: Array Ivm Ivm_datalog Ivm_eval Ivm_relation Prng
