(** A validated Datalog program: rules plus derived metadata — predicate
    arities, base/derived split, dependency graph, stratum numbers, and the
    rule stratum numbers (RSN) that drive Algorithm 4.1 and DRed. *)

open Ast

exception Program_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Program_error s)) fmt

type pred_info = {
  name : string;
  arity : int;
  is_base : bool;
  stratum : int;
  recursive : bool;
  defining_rules : rule list;  (** rules with this predicate in the head *)
}

type t = {
  rules : rule list;
  graph : Depgraph.t;
  preds : (string, pred_info) Hashtbl.t;
  max_stratum : int;
}

let pred_arities rules extra_base =
  let arities : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let note pred arity ctx =
    match Hashtbl.find_opt arities pred with
    | None -> Hashtbl.replace arities pred arity
    | Some a when a = arity -> ()
    | Some a ->
      fail "predicate %s used with arities %d and %d (%s)" pred a arity ctx
  in
  List.iter
    (fun r ->
      let ctx = Pretty.rule_to_string r in
      note r.head.pred (List.length r.head.args) ctx;
      List.iter
        (fun lit ->
          match lit with
          | Lpos a | Lneg a -> note a.pred (List.length a.args) ctx
          | Lagg agg ->
            note agg.agg_source.pred (List.length agg.agg_source.args) ctx
          | Lcmp _ -> ())
        r.body)
    rules;
  List.iter (fun (p, a) -> note p a "declared base relation") extra_base;
  arities

(** Build and validate a program.

    [extra_base] declares base relations (name, arity) that should exist
    even if no rule or fact mentions them.  Base relations are exactly the
    predicates with no defining rule.
    @raise Program_error on arity clashes or a base relation in a head
    position conflict; @raise Safety.Unsafe on unsafe rules;
    @raise Depgraph.Not_stratifiable when negation/aggregation occurs inside
    recursion. *)
let make ?(extra_base : (string * int) list = []) (rules : rule list) : t =
  Safety.check_program rules;
  let arities = pred_arities rules extra_base in
  let names = Hashtbl.fold (fun p _ acc -> p :: acc) arities [] in
  let graph = Depgraph.make rules names in
  let by_head : (string, rule list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_head r.head.pred) in
      Hashtbl.replace by_head r.head.pred (prev @ [ r ]))
    rules;
  let preds = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name arity ->
      let defining_rules =
        Option.value ~default:[] (Hashtbl.find_opt by_head name)
      in
      Hashtbl.replace preds name
        {
          name;
          arity;
          is_base = defining_rules = [];
          stratum = Depgraph.stratum graph name;
          recursive = Depgraph.recursive graph name;
          defining_rules;
        })
    arities;
  { rules; graph; preds; max_stratum = Depgraph.max_stratum graph }

(** Parse source text (rules only) and build the program. *)
let of_source ?extra_base src = make ?extra_base (Parser.parse_rules src)

let pred_info t name =
  match Hashtbl.find_opt t.preds name with
  | Some i -> i
  | None -> fail "unknown predicate %s" name

let mem_pred t name = Hashtbl.mem t.preds name
let arity t name = (pred_info t name).arity
let is_base t name = (pred_info t name).is_base
let is_derived t name = not (is_base t name)
let stratum t name = (pred_info t name).stratum
let recursive t name = (pred_info t name).recursive
let rules_for t name = (pred_info t name).defining_rules
let rsn t (r : rule) = stratum t r.head.pred
let rules t = t.rules
let graph t = t.graph
let max_stratum t = t.max_stratum

let fold_preds f t init = Hashtbl.fold (fun _ info acc -> f info acc) t.preds init

let base_preds t =
  fold_preds (fun i acc -> if i.is_base then i.name :: acc else acc) t []
  |> List.sort String.compare

let derived_preds t =
  fold_preds (fun i acc -> if i.is_base then acc else i.name :: acc) t []
  |> List.sort String.compare

(** Derived predicates ordered by (stratum, name): the order in which both
    initial evaluation and the maintenance algorithms visit them. *)
let derived_in_stratum_order t =
  derived_preds t
  |> List.map (fun p -> (stratum t p, p))
  |> List.sort compare
  |> List.map snd

(** Derived predicates of stratum [k]. *)
let derived_at t k = List.filter (fun p -> stratum t p = k) (derived_preds t)

(** True when no derived predicate is recursive — the domain of the
    counting algorithm (Section 4). *)
let nonrecursive t = not (fold_preds (fun i acc -> acc || i.recursive) t false)

(** Partition derived predicates into maintenance units, in dependency
    order: each unit is one SCC of mutually recursive predicates (a
    singleton for nonrecursive ones).  DRed processes units in this order
    ("stratum by stratum", Section 7). *)
let recursive_units t =
  let g = t.graph in
  let units = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let s = Depgraph.scc_id g p in
      let prev = Option.value ~default:[] (Hashtbl.find_opt units s) in
      Hashtbl.replace units s (p :: prev))
    (derived_preds t);
  Hashtbl.fold (fun s members acc -> (s, List.sort String.compare members) :: acc) units []
  |> List.sort compare
  |> List.map snd

(** All derived predicates that transitively depend on any of [changed]. *)
let affected_views t ~changed =
  List.filter
    (fun p ->
      List.exists (fun q -> mem_pred t q && Depgraph.depends_on t.graph ~target:p ~on:q) changed)
    (derived_preds t)

let pp ppf t = Pretty.pp_program ppf t.rules
