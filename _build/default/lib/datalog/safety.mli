(** Safety (range restriction), Section 6.1 of the paper: variables of
    negated subgoals must occur in positive subgoals of the same rule —
    plus the usual bottom-up conditions: body-atom arguments are terms;
    head, comparison and negated variables are bound by positive subgoals,
    aggregate outputs, or equalities over bound variables; GROUPBY
    literals are well-formed and their local variables do not escape. *)

exception Unsafe of string

(** @raise Unsafe with a message naming the rule and the offence. *)
val check_rule : Ast.rule -> unit

val check_program : Ast.rule list -> unit
