(** Predicate dependency graph, strongly connected components, and stratum
    numbers (Definition 3.1 of the paper).

    Nodes are predicate names.  There is an edge [q → p] when [q] occurs in
    the body of a rule defining [p]; the edge is {e negative} when the
    occurrence is under negation or inside a GROUPBY subgoal (both are
    non-monotonic, Section 6).  A program is stratifiable iff no negative
    edge connects two predicates of the same strongly connected component.

    Stratum numbers follow the paper's convention: base predicates get
    stratum 0, and every derived predicate gets a stratum strictly greater
    than all predicates it depends on (outside its own SCC).  The rule
    stratum number RSN(r) is the stratum of the head predicate. *)

open Ast

exception Not_stratifiable of string

type edge_sign = Positive | Negative

type t = {
  preds : string array;  (** all predicate names, deterministic order *)
  index : (string, int) Hashtbl.t;
  succs : (int * edge_sign) list array;  (** dependency → dependent *)
  preds_of : (int * edge_sign) list array;  (** dependent → dependencies *)
  scc_of : int array;  (** node → SCC id; SCC ids are in topological order
                           (dependencies have smaller ids) *)
  sccs : int list array;  (** SCC id → member nodes *)
  stratum : int array;  (** node → stratum number *)
}

let literal_deps lit =
  match lit with
  | Lpos a -> Some (a.pred, Positive)
  | Lneg a -> Some (a.pred, Negative)
  | Lagg agg -> Some (agg.agg_source.pred, Negative)
  | Lcmp _ -> None

(* Tarjan's strongly connected components.  Returns SCCs in topological
   order of the condensation, dependencies first. *)
let tarjan n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan pops a component only after all components reachable from it
     have been popped.  Edges run dependency → dependent, so dependents pop
     first; consing therefore leaves dependencies at the head: [!sccs] is in
     topological order with dependencies before dependents. *)
  !sccs

(** Build the graph for a rule set.  [pred_names] must include every
    predicate (heads, bodies and declared-but-unused base relations). *)
let make (rules : rule list) (pred_names : string list) : t =
  let preds = Array.of_list (List.sort_uniq String.compare pred_names) in
  let n = Array.length preds in
  let index = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace index p i) preds;
  let id p =
    match Hashtbl.find_opt index p with
    | Some i -> i
    | None -> invalid_arg ("Depgraph.make: unknown predicate " ^ p)
  in
  let succs = Array.make n [] and preds_of = Array.make n [] in
  let add_edge q p sign =
    let qi = id q and pi = id p in
    if not (List.mem (pi, sign) succs.(qi)) then begin
      succs.(qi) <- (pi, sign) :: succs.(qi);
      preds_of.(pi) <- (qi, sign) :: preds_of.(pi)
    end
  in
  List.iter
    (fun r ->
      List.iter
        (fun lit ->
          match literal_deps lit with
          | Some (q, sign) -> add_edge q r.head.pred sign
          | None -> ())
        r.body)
    rules;
  let scc_list = tarjan n succs in
  let n_sccs = List.length scc_list in
  let sccs = Array.make n_sccs [] in
  let scc_of = Array.make n (-1) in
  List.iteri
    (fun i members ->
      sccs.(i) <- members;
      List.iter (fun v -> scc_of.(v) <- i) members)
    scc_list;
  (* Stratifiability: no negative edge inside an SCC. *)
  Array.iteri
    (fun v edges ->
      List.iter
        (fun (w, sign) ->
          if sign = Negative && scc_of.(v) = scc_of.(w) then
            raise
              (Not_stratifiable
                 (Printf.sprintf
                    "predicate %s depends negatively on %s within a recursive \
                     component; the program is not stratifiable"
                    preds.(w) preds.(v))))
        edges)
    succs;
  (* Stratum numbers: longest path in the condensation.  Heads of rules are
     derived; a predicate with no defining rule is base (stratum 0). *)
  let has_rule = Array.make n false in
  List.iter (fun r -> has_rule.(id r.head.pred) <- true) rules;
  let scc_stratum = Array.make n_sccs 0 in
  for s = 0 to n_sccs - 1 do
    let derived = List.exists (fun v -> has_rule.(v)) sccs.(s) in
    let max_dep =
      List.fold_left
        (fun acc v ->
          List.fold_left
            (fun acc (w, _) ->
              let ws = scc_of.(w) in
              if ws = s then acc else max acc scc_stratum.(ws))
            acc preds_of.(v))
        (-1) sccs.(s)
    in
    scc_stratum.(s) <- (if derived then max 1 (max_dep + 1) else 0)
  done;
  let stratum = Array.init n (fun v -> scc_stratum.(scc_of.(v))) in
  { preds; index; succs; preds_of; scc_of; sccs; stratum }

let pred_id g p =
  match Hashtbl.find_opt g.index p with
  | Some i -> i
  | None -> invalid_arg ("Depgraph: unknown predicate " ^ p)

let stratum g p = g.stratum.(pred_id g p)

(** A predicate is recursive when its SCC has several members or it has a
    self-loop. *)
let recursive g p =
  let v = pred_id g p in
  let s = g.scc_of.(v) in
  (match g.sccs.(s) with [ _ ] -> false | _ -> true)
  || List.exists (fun (w, _) -> w = v) g.succs.(v)

(** Members of [p]'s SCC (including [p]). *)
let scc_members g p =
  List.map (fun v -> g.preds.(v)) g.sccs.(g.scc_of.(pred_id g p))

let max_stratum g = Array.fold_left max 0 g.stratum

(** All predicates at the given stratum, sorted. *)
let preds_at g k =
  Array.to_list g.preds
  |> List.filter (fun p -> stratum g p = k)

(** SCC ids in topological order restricted to derived components. *)
let scc_count g = Array.length g.sccs
let scc_id g p = g.scc_of.(pred_id g p)
let scc_preds g s = List.map (fun v -> g.preds.(v)) g.sccs.(s)

(** Does [p] (transitively) depend on [q]?  Used to find the views affected
    by a base-relation change. *)
let depends_on g ~target:p ~on:q =
  let n = Array.length g.preds in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun (w, _) -> dfs w) g.succs.(v)
    end
  in
  dfs (pred_id g q);
  seen.(pred_id g p)
