(** Printing of programs in the concrete syntax accepted by {!Parser}:
    printing then re-parsing is the identity (covered by the round-trip
    property suite). *)

open Ast

val pp_term : Format.formatter -> term -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_aggregate : Format.formatter -> aggregate -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_statement : Format.formatter -> statement -> unit
val pp_program : Format.formatter -> rule list -> unit
val rule_to_string : rule -> string
val literal_to_string : literal -> string
val atom_to_string : atom -> string
