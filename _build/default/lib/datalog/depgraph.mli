(** Predicate dependency graph, strongly connected components, and stratum
    numbers (Definition 3.1 of the paper).

    Edges run [q → p] when [q] occurs in the body of a rule for [p];
    occurrences under negation or inside GROUPBY are {e negative} (both
    non-monotonic, Section 6).  A program is stratifiable iff no negative
    edge stays within an SCC.  Base predicates get stratum 0; every
    derived predicate sits strictly above everything it depends on outside
    its own SCC. *)

open Ast

exception Not_stratifiable of string

type edge_sign = Positive | Negative

type t

(** Build for a rule set.  [pred_names] must include every predicate. *)
val make : rule list -> string list -> t

(** @raise Invalid_argument on unknown predicates. *)
val pred_id : t -> string -> int

val stratum : t -> string -> int

(** SCC of size > 1, or a self-loop. *)
val recursive : t -> string -> bool

(** Members of the predicate's SCC (itself included). *)
val scc_members : t -> string -> string list

val max_stratum : t -> int

(** Predicates at the given stratum, sorted. *)
val preds_at : t -> int -> string list

val scc_count : t -> int

(** SCC ids are topological: dependencies have smaller ids. *)
val scc_id : t -> string -> int

val scc_preds : t -> int -> string list

(** Does [target] transitively depend on [on]? *)
val depends_on : t -> target:string -> on:string -> bool
