(** A validated Datalog program: rules plus derived metadata — predicate
    arities, base/derived split, dependency graph, and the stratum numbers
    (Definition 3.1) that drive Algorithm 4.1's rule ordering (RSN) and
    DRed's stratum-by-stratum processing. *)

open Ast

exception Program_error of string

type pred_info = {
  name : string;
  arity : int;
  is_base : bool;  (** no defining rule: an edb relation *)
  stratum : int;  (** SN; base predicates have stratum 0 *)
  recursive : bool;  (** in an SCC of size > 1, or self-dependent *)
  defining_rules : rule list;
}

type t

(** Build and validate.  [extra_base] declares base relations (name,
    arity) that exist even if unmentioned.
    @raise Program_error on arity clashes;
    @raise Safety.Unsafe on unsafe rules;
    @raise Depgraph.Not_stratifiable when negation or aggregation occurs
    inside recursion. *)
val make : ?extra_base:(string * int) list -> rule list -> t

(** Parse source text (rules only) and build. *)
val of_source : ?extra_base:(string * int) list -> string -> t

(** @raise Program_error on unknown predicates. *)
val pred_info : t -> string -> pred_info

val mem_pred : t -> string -> bool
val arity : t -> string -> int
val is_base : t -> string -> bool
val is_derived : t -> string -> bool
val stratum : t -> string -> int
val recursive : t -> string -> bool
val rules_for : t -> string -> rule list

(** Rule stratum number: the stratum of the head predicate. *)
val rsn : t -> rule -> int

val rules : t -> rule list
val graph : t -> Depgraph.t
val max_stratum : t -> int
val fold_preds : (pred_info -> 'a -> 'a) -> t -> 'a -> 'a
val base_preds : t -> string list
val derived_preds : t -> string list

(** Derived predicates ordered by (stratum, name) — the visiting order of
    initial evaluation and of the counting algorithm. *)
val derived_in_stratum_order : t -> string list

val derived_at : t -> int -> string list

(** No derived predicate is recursive — the domain of the counting
    algorithm (Section 4). *)
val nonrecursive : t -> bool

(** Maintenance units in dependency order: each unit is one SCC of
    mutually recursive predicates (singletons for nonrecursive ones).
    DRed processes units in this order (Section 7). *)
val recursive_units : t -> string list list

(** Derived predicates transitively depending on any of [changed]. *)
val affected_views : t -> changed:string list -> string list

val pp : Format.formatter -> t -> unit
