(** Printing of programs in the concrete syntax accepted by {!Parser} —
    printing then re-parsing is the identity (tested by the round-trip
    property suite). *)

open Ast
module Value = Ivm_relation.Value

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Value.pp ppf c

(* Precedence levels: 0 = additive, 1 = multiplicative, 2 = atomic. *)
let rec pp_expr_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Eterm t -> pp_term ppf t
  | Eadd (a, b) ->
    paren 0 (fun ppf ->
        Format.fprintf ppf "%a + %a" (pp_expr_prec 0) a (pp_expr_prec 1) b)
  | Esub (a, b) ->
    paren 0 (fun ppf ->
        Format.fprintf ppf "%a - %a" (pp_expr_prec 0) a (pp_expr_prec 1) b)
  | Emul (a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a * %a" (pp_expr_prec 1) a (pp_expr_prec 2) b)
  | Ediv (a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a / %a" (pp_expr_prec 1) a (pp_expr_prec 2) b)
  | Eneg a -> paren 1 (fun ppf -> Format.fprintf ppf "-%a" (pp_expr_prec 2) a)

let pp_expr = pp_expr_prec 0

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp_expr ppf args

let pp_atom ppf (a : atom) =
  if a.args = [] then Format.pp_print_string ppf a.pred
  else Format.fprintf ppf "%s(%a)" a.pred pp_args a.args

let pp_aggregate ppf agg =
  let pp_by ppf by =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      Format.pp_print_string ppf by
  in
  let pp_call ppf () =
    match agg.agg_fn with
    | Count -> Format.fprintf ppf "count()"
    | fn -> Format.fprintf ppf "%s(%a)" (agg_fn_name fn) pp_expr agg.agg_arg
  in
  Format.fprintf ppf "groupby(%a, [%a], %s = %a)" pp_atom agg.agg_source pp_by
    agg.agg_group_by agg.agg_result pp_call ()

let pp_literal ppf = function
  | Lpos a -> pp_atom ppf a
  | Lneg a -> Format.fprintf ppf "not %a" pp_atom a
  | Lagg agg -> pp_aggregate ppf agg
  | Lcmp (a, op, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (cmp_op_name op) pp_expr b

let pp_rule ppf (r : rule) =
  if r.body = [] then Format.fprintf ppf "%a." pp_atom r.head
  else
    Format.fprintf ppf "@[<hov 2>%a :-@ %a.@]" pp_atom r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_literal)
      r.body

let pp_statement ppf = function
  | Srule r -> pp_rule ppf r
  | Sfact (pred, vals) ->
    Format.fprintf ppf "%s(%a)." pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Value.pp)
      vals

let pp_program ppf rules =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.")
    pp_rule ppf rules

let rule_to_string r = Format.asprintf "%a" pp_rule r
let literal_to_string l = Format.asprintf "%a" pp_literal l
let atom_to_string a = Format.asprintf "%a" pp_atom a
