(** Safety (range restriction) checks, Section 6.1: "Negation is safe as
    long as the variables that occur in a negated subgoal also occur in some
    positive subgoal of the same rule."  We additionally check the usual
    Datalog conditions so every rule can be evaluated bottom-up:

    - arguments of body atoms (including grouped subgoals) are variables or
      constants — arithmetic belongs in heads and comparison literals;
    - every head variable is bound by a positive subgoal, an aggregate
      output, or an equality [V = expr] over bound variables;
    - every variable of a negated subgoal or comparison is likewise bound
      (the target of a binding equality excepted);
    - a GROUPBY literal's grouping variables occur in its source atom, its
      result variable does not, and the source's local variables leak
      nowhere else in the rule. *)

open Ast

exception Unsafe of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsafe s)) fmt

let term_of_expr = function Eterm t -> Some t | _ -> None

let atom_terms (a : atom) ~ctx =
  List.map
    (fun e ->
      match term_of_expr e with
      | Some t -> t
      | None ->
        fail "%s: argument of %s must be a variable or constant" ctx a.pred)
    a.args

(** Variables a literal {e provides} once its prerequisites are met, and the
    variables it {e requires} already bound.  [Lcmp] equalities can provide
    their lone unbound side. *)
let check_rule (r : rule) =
  let ctx = Pretty.rule_to_string r in
  (* body atoms are term-only *)
  List.iter
    (fun lit ->
      match lit with
      | Lpos a | Lneg a -> ignore (atom_terms a ~ctx)
      | Lagg agg -> ignore (atom_terms agg.agg_source ~ctx)
      | Lcmp _ -> ())
    r.body;
  (* aggregate literal well-formedness *)
  List.iter
    (fun lit ->
      match lit with
      | Lagg agg ->
        let src_vars = atom_vars agg.agg_source in
        List.iter
          (fun v ->
            if not (Sset.mem v src_vars) then
              fail "%s: grouping variable %s does not occur in the grouped atom"
                ctx v)
          agg.agg_group_by;
        if Sset.mem agg.agg_result src_vars then
          fail "%s: aggregate result %s also occurs in the grouped atom" ctx
            agg.agg_result;
        if List.mem agg.agg_result agg.agg_group_by then
          fail "%s: aggregate result %s is also a grouping variable" ctx
            agg.agg_result;
        if not (Sset.subset (expr_vars agg.agg_arg) src_vars) then
          fail "%s: aggregated expression uses variables outside the grouped atom"
            ctx;
        (* locals must not escape *)
        let locals = Sset.remove agg.agg_result (aggregate_local_vars agg) in
        let elsewhere =
          List.fold_left
            (fun acc l -> if l == lit then acc else Sset.union acc (literal_vars l))
            (atom_vars r.head) r.body
        in
        let escaped = Sset.inter locals elsewhere in
        if not (Sset.is_empty escaped) then
          fail "%s: variable %s is local to the aggregation but used elsewhere"
            ctx (Sset.choose escaped)
      | Lpos _ | Lneg _ | Lcmp _ -> ())
    r.body;
  (* binding fixpoint *)
  let bound = ref Sset.empty in
  let bind vs = bound := Sset.union vs !bound in
  let is_bound e = Sset.subset (expr_vars e) !bound in
  let progress = ref true in
  let consumed = Array.make (List.length r.body) false in
  while !progress do
    progress := false;
    List.iteri
      (fun i lit ->
        if not consumed.(i) then
          match lit with
          | Lpos a ->
            bind (atom_vars a);
            consumed.(i) <- true;
            progress := true
          | Lagg agg ->
            bind (aggregate_vars agg);
            consumed.(i) <- true;
            progress := true
          | Lcmp (Eterm (Var v), Eq, e) when (not (Sset.mem v !bound)) && is_bound e ->
            bind (Sset.singleton v);
            consumed.(i) <- true;
            progress := true
          | Lcmp (e, Eq, Eterm (Var v)) when (not (Sset.mem v !bound)) && is_bound e ->
            bind (Sset.singleton v);
            consumed.(i) <- true;
            progress := true
          | Lneg _ | Lcmp _ -> ())
      r.body
  done;
  let require what vs =
    let missing = Sset.diff vs !bound in
    if not (Sset.is_empty missing) then
      fail "%s: %s variable %s is not bound by any positive subgoal" ctx what
        (Sset.choose missing)
  in
  require "head" (atom_vars r.head);
  List.iteri
    (fun i lit ->
      match lit with
      | Lneg a -> require "negated" (atom_vars a)
      | Lcmp (a, _, b) when not consumed.(i) ->
        require "comparison" (Sset.union (expr_vars a) (expr_vars b))
      | Lpos _ | Lagg _ | Lcmp _ -> ())
    r.body

let check_program rules = List.iter check_rule rules
