(** Recursive-descent parser for the Datalog dialect (see {!Lexer} for the
    lexical conventions).

    {v
      statement := atom ( ":-" literal (("," | "&") literal)* )? "."
      literal   := ("not" | "!") atom
                 | "groupby" "(" atom "," "[" vars "]" "," VAR "=" aggcall ")"
                 | atom
                 | expr cmp expr
      aggcall   := ("min"|"max"|"sum"|"avg") "(" expr ")" | "count" "(" ")"
      cmp       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    v}

    A bodyless statement whose arguments are all ground is a fact. *)

exception Parse_error of string

(** Parse program text into statements.
    @raise Parse_error / {!Lexer.Lex_error} on malformed input. *)
val parse_program : string -> Ast.statement list

(** Split statements into rules and facts, preserving order. *)
val split : Ast.statement list -> Ast.rule list * (string * Ivm_relation.Value.t list) list

(** Rules-only source text.  @raise Parse_error if it contains facts. *)
val parse_rules : string -> Ast.rule list

(** Exactly one rule. *)
val parse_rule : string -> Ast.rule

(** A bare conjunction of body literals — an ad-hoc query like
    ["hop(a, X), link(X, Y), Y != a"] (trailing '.' optional). *)
val parse_body : string -> Ast.literal list
