lib/datalog/parser.ml: Array Ast Ivm_relation Lexer List Option Printf
