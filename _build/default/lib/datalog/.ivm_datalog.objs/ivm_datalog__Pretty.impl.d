lib/datalog/pretty.ml: Ast Format Ivm_relation
