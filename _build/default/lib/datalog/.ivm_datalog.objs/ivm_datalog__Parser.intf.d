lib/datalog/parser.mli: Ast Ivm_relation
