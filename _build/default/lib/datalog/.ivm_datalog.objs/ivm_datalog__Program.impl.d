lib/datalog/program.ml: Ast Depgraph Format Hashtbl List Option Parser Pretty Safety String
