lib/datalog/ast.ml: Ivm_relation List Set Stdlib String
