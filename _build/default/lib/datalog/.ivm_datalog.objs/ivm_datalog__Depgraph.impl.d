lib/datalog/depgraph.ml: Array Ast Hashtbl List Printf String
