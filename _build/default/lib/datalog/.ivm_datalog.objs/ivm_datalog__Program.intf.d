lib/datalog/program.mli: Ast Depgraph Format
