lib/datalog/safety.ml: Array Ast Format List Pretty Sset
