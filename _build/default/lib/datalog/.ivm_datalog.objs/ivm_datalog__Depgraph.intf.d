lib/datalog/depgraph.mli: Ast
