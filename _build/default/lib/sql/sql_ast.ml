(** Abstract syntax for the SQL subset: enough to write Example 1.1's

    {v
      CREATE VIEW hop(s, d) AS
        SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
    v}

    plus UNION, GROUP BY with one aggregate, NOT EXISTS subqueries,
    arithmetic, and table/fact declarations. *)

module Value = Ivm_relation.Value

type col_ref = { table : string option; column : string }

type sexpr =
  | Scol of col_ref
  | Sconst of Value.t
  | Sadd of sexpr * sexpr
  | Ssub of sexpr * sexpr
  | Smul of sexpr * sexpr
  | Sdiv of sexpr * sexpr
  | Sneg of sexpr

type agg_fn = Ivm_datalog.Ast.agg_fn

type select_item =
  | Plain of sexpr
  | Agg of agg_fn * sexpr option  (** SQL's COUNT-star carries no argument *)

type cmp_op = Ivm_datalog.Ast.cmp_op

type cond =
  | Cmp of sexpr * cmp_op * sexpr
  | Not_exists of subquery
  | And of cond * cond

and subquery = {
  sub_table : string;
  sub_alias : string;
  sub_where : cond option;
}

type select = {
  distinct : bool;
  items : select_item list;
  from : (string * string) list;  (** (table, alias) *)
  where : cond option;
  group_by : col_ref list;
}

type query = Select of select | Union of query * query

type statement =
  | Create_table of string * string list  (** name, column names *)
  | Create_view of string * string list option * query
      (** name, optional column names, body *)
  | Insert of string * Value.t list list  (** INSERT INTO t VALUES (...), (...) *)
  | Delete of string * cond option  (** DELETE FROM t [WHERE …] *)
  | Update of string * (string * sexpr) list * cond option
      (** UPDATE t SET col = e, … [WHERE …] *)
  | Select_stmt of select  (** a top-level ad-hoc query *)
