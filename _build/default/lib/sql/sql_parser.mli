(** Recursive-descent parser for the SQL subset (see {!Sql_lexer} for
    lexical conventions).

    Statements (';'-terminated): [CREATE TABLE t(cols)],
    [CREATE VIEW v [(cols)] AS query], [INSERT INTO t VALUES (…), …],
    [DELETE FROM t [WHERE cond]], [UPDATE t SET col = e, … [WHERE cond]],
    and top-level [SELECT]s.  Queries are SELECT [DISTINCT] items FROM
    tables [WHERE conjunction] [GROUP BY cols], chained with UNION;
    conditions are comparisons and [NOT EXISTS (SELECT … FROM t [WHERE])]
    subqueries. *)

exception Parse_error of string

(** Parse a script of ';'-terminated statements.
    @raise Parse_error / {!Sql_lexer.Lex_error} on malformed input. *)
val parse_script : string -> Sql_ast.statement list
