(** A live SQL session over an incrementally maintained database: DML
    becomes change sets through the maintenance algorithm, runtime
    [CREATE VIEW] goes through rule insertion (Section 7's view
    redefinition), ad-hoc [SELECT]s run against the materializations. *)

module Relation = Ivm_relation.Relation
module Vm = Ivm.View_manager
module Query = Ivm_eval.Query

exception Session_error of string

type t

type outcome =
  | Done of string  (** a human-readable confirmation *)
  | Deltas of (string * Relation.t) list  (** per-view changes of a DML *)
  | Rows of Query.result  (** a SELECT's answers *)

(** Build from a schema script (CREATE TABLE / CREATE VIEW / INSERT). *)
val of_script :
  ?semantics:Ivm_eval.Database.semantics ->
  ?algorithm:Vm.algorithm ->
  string ->
  t

val manager : t -> Vm.t

(** Execute one statement (trailing ';' optional):
    [INSERT INTO … VALUES …], [DELETE FROM … WHERE …],
    [UPDATE … SET … WHERE …], [SELECT …], [CREATE VIEW …].
    @raise Session_error on semantic errors (DML on views, unknown
    columns, CREATE TABLE after setup, aggregate ad-hoc SELECTs);
    @raise Sql_parser.Parse_error on syntax errors. *)
val exec : t -> string -> outcome

(** Execute a multi-statement script; outcomes in order. *)
val exec_script : t -> string -> outcome list

val pp_outcome : Format.formatter -> outcome -> unit
