(** Lexer for the SQL subset.  Keywords are case-insensitive; identifiers
    are lower-cased (standard SQL folding).  [--] comments run to end of
    line; strings use single quotes. *)

exception Lex_error of string

type token =
  | KW of string  (** upper-cased keyword: SELECT, FROM, … *)
  | IDENT of string  (** lower-cased identifier *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "NOT"; "EXISTS"; "GROUP";
    "BY"; "UNION"; "CREATE"; "VIEW"; "TABLE"; "AS"; "INSERT"; "INTO";
    "VALUES"; "MIN"; "MAX"; "SUM"; "COUNT"; "AVG"; "DELETE"; "UPDATE"; "SET";
  ]

let token_to_string = function
  | KW s -> s
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let fail i msg =
    raise (Lex_error (Printf.sprintf "offset %d: %s" i msg))
  in
  let rec go i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' | '\n' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | '.' -> emit DOT; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '=' -> emit EQ; go (i + 1)
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit LE; go (i + 2) end
        else if i + 1 < n && src.[i + 1] = '>' then begin emit NEQ; go (i + 2) end
        else begin emit LT; go (i + 1) end
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit GE; go (i + 2) end
        else begin emit GT; go (i + 1) end
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ; go (i + 2)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then fail i "unterminated string"
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go j
      | c when is_digit c ->
        let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
        let j = digits i in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = digits (j + 1) in
          emit (FLOAT (float_of_string (String.sub src i (k - i))));
          go k
        end
        else begin
          emit (INT (int_of_string (String.sub src i (j - i))));
          go j
        end
      | c when is_ident_start c ->
        let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
        let j = word i in
        let s = String.sub src i (j - i) in
        let up = String.uppercase_ascii s in
        if List.mem up keywords then emit (KW up)
        else emit (IDENT (String.lowercase_ascii s));
        go j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !toks
