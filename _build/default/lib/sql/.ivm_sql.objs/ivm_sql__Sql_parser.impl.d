lib/sql/sql_parser.ml: Array Ivm_datalog Ivm_relation List Option Printf Sql_ast Sql_lexer
