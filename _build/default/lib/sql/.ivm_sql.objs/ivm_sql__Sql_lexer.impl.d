lib/sql/sql_lexer.ml: Buffer List Printf String
