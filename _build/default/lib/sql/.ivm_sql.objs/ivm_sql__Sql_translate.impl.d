lib/sql/sql_translate.ml: Array Format Hashtbl Ivm Ivm_datalog Ivm_relation List Printf Sql_ast Sql_parser
