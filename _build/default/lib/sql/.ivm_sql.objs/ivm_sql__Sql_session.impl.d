lib/sql/sql_session.ml: Array Format Hashtbl Ivm Ivm_eval Ivm_relation List Printf Sql_ast Sql_parser Sql_translate String
