lib/sql/sql_ast.ml: Ivm_datalog Ivm_relation
