lib/sql/sql_session.mli: Format Ivm Ivm_eval Ivm_relation
