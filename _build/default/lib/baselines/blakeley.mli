(** Blakeley–Larson–Tompa [BLT86] — per the paper's §2, "a special case of
    the counting algorithm applied to select-project-join expressions":
    a guard admitting only SPJ views over base relations (single rule, no
    negation/aggregation/UNION/view-over-view), delegating to
    {!Ivm.Counting}. *)

module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Changes = Ivm.Changes
module Counting = Ivm.Counting

exception Not_spj of string

(** @raise Not_spj when any view falls outside [BLT86]'s domain. *)
val check_spj : Program.t -> unit

(** @raise Not_spj outside the SPJ class; otherwise exactly
    {!Counting.maintain}. *)
val maintain : Database.t -> Changes.t -> Counting.report
