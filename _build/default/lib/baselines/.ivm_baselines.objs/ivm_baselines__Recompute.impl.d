lib/baselines/recompute.ml: Ivm Ivm_datalog Ivm_eval Ivm_relation List
