lib/baselines/blakeley.mli: Ivm Ivm_datalog Ivm_eval
