lib/baselines/pf.ml: Ivm Ivm_eval Ivm_relation List
