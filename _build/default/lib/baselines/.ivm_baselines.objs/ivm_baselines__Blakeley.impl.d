lib/baselines/blakeley.ml: Format Ivm Ivm_datalog Ivm_eval List
