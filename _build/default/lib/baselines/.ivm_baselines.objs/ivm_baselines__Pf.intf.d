lib/baselines/pf.mli: Ivm Ivm_eval
