lib/baselines/recompute.mli: Ivm Ivm_eval
