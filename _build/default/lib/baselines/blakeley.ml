(** The Blakeley–Larson–Tompa algorithm [BLT86], which the paper identifies
    as "a special case of the counting algorithm applied to
    select-project-join expressions (no negation, aggregation, or
    recursion)" (Section 2).

    We implement it as exactly that: a guard that admits only SPJ view
    definitions — each view defined by a single rule whose body is a
    conjunction of positive atoms over {e base} relations plus selection
    comparisons — delegating the actual maintenance to
    {!Ivm.Counting}.  Views over views, UNION (multiple rules), negation
    and GROUPBY are rejected, which is the historical comparison the paper
    draws: the counting algorithm strictly generalizes [BLT86]. *)

module Ast = Ivm_datalog.Ast
module Pretty = Ivm_datalog.Pretty
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Changes = Ivm.Changes
module Counting = Ivm.Counting

exception Not_spj of string

let fail fmt = Format.kasprintf (fun s -> raise (Not_spj s)) fmt

(** Check that every view of [program] is a select-project-join over base
    relations.  @raise Not_spj otherwise. *)
let check_spj (program : Program.t) : unit =
  List.iter
    (fun p ->
      match Program.rules_for program p with
      | [ rule ] ->
        List.iter
          (fun lit ->
            match lit with
            | Ast.Lpos a ->
              if Program.is_derived program a.pred then
                fail "view %s joins view %s: [BLT86] handles only views over \
                      base relations" p a.pred
            | Ast.Lcmp _ -> ()
            | Ast.Lneg _ ->
              fail "view %s uses negation, beyond select-project-join" p
            | Ast.Lagg _ ->
              fail "view %s uses aggregation, beyond select-project-join" p)
          rule.body
      | rules ->
        fail "view %s has %d rules (UNION): [BLT86] handles a single \
              select-project-join expression" p (List.length rules))
    (Program.derived_preds program)

(** Maintain an SPJ view database; behaviour and counts are identical to
    the counting algorithm on this restricted class.
    @raise Not_spj when the program falls outside [BLT86]'s domain. *)
let maintain (db : Database.t) (changes : Changes.t) : Counting.report =
  check_spj (Database.program db);
  Counting.maintain db changes
