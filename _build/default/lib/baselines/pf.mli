(** The Propagation/Filtration algorithm of Harrison & Dietrich [HD92],
    reconstructed from the paper's §2 characterization: changes are
    propagated in minimal fragments — per base predicate, or per tuple —
    each fragment paying a full deletion/rederivation pass, so shared
    downstream derivations are rederived "again and again".  Reuses the
    (correct) delete-and-rederive machinery per fragment, so the final
    state equals DRed's; bench E6 compares the work. *)

module Database = Ivm_eval.Database
module Changes = Ivm.Changes

type granularity =
  | Per_predicate  (** one propagation pass per changed base predicate *)
  | Per_tuple  (** one pass per changed tuple — "each small change" *)

type stats = {
  passes : int;
  overdeleted : int;  (** Σ sizes of per-pass deletion overestimates *)
  rederived : int;  (** Σ tuples rederived across passes *)
}

(** Apply [changes] with fragmented propagation (default {!Per_tuple}).
    Set semantics only. *)
val maintain : ?granularity:granularity -> Database.t -> Changes.t -> stats
