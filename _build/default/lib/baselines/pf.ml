(** The Propagation/Filtration (PF) algorithm of Harrison & Dietrich
    [HD92], reconstructed from the paper's Section 2 characterization:

    "Where applicable, the PF (Propagation/Filtration) algorithm computes
    changes in one derived predicate due to changes in one base predicate,
    iterating over all derived and base predicates to complete the view
    maintenance.  An attempt to recompute the deleted tuples is made for
    each small change in each derived relation.  ...  The PF algorithm thus
    fragments computation, can rederive changed and deleted tuples again
    and again, and can be worse than our rederivation algorithm by an
    order of magnitude."

    We realize exactly that fragmentation: the change set is split into
    minimal batches — per base predicate, and at [Per_tuple] granularity
    per individual tuple — and each batch is propagated through {e all}
    derived predicates, stratum by stratum, with a deletion/rederivation
    pass per batch.  Each pass reuses the (correct) delete-and-rederive
    machinery, so PF computes the same final state as DRed while paying
    the repeated rederivations the paper describes; benches E6 compares
    the derivation counts. *)

module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database
module Changes = Ivm.Changes
module Dred = Ivm.Dred

type granularity =
  | Per_predicate  (** one propagation pass per changed base predicate *)
  | Per_tuple
      (** one pass per changed tuple — the "each small change" reading *)

type stats = {
  passes : int;  (** propagation passes performed *)
  overdeleted : int;  (** Σ sizes of per-pass deletion overestimates *)
  rederived : int;  (** Σ tuples rederived across passes *)
}

(** Apply [changes] with PF-style fragmented propagation.  Set semantics
    only (it is a deletion/rederivation algorithm, like DRed). *)
let maintain ?(granularity = Per_tuple) (db : Database.t) (changes : Changes.t) :
    stats =
  let normalized = Changes.normalize_base db changes in
  let batches =
    match granularity with
    | Per_predicate -> List.map (fun (pred, delta) -> [ (pred, delta) ]) normalized
    | Per_tuple ->
      List.concat_map
        (fun (pred, delta) ->
          (* deletions first, then insertions, one tuple per batch *)
          let deletions =
            Relation.fold
              (fun tup c acc ->
                if c < 0 then
                  [ (pred, Relation.of_list (Relation.arity delta) [ (tup, c) ]) ]
                  :: acc
                else acc)
              delta []
          in
          let insertions =
            Relation.fold
              (fun tup c acc ->
                if c > 0 then
                  [ (pred, Relation.of_list (Relation.arity delta) [ (tup, c) ]) ]
                  :: acc
                else acc)
              delta []
          in
          deletions @ insertions)
        normalized
  in
  List.fold_left
    (fun acc batch ->
      let report = Dred.maintain db batch in
      {
        passes = acc.passes + 1;
        overdeleted =
          acc.overdeleted
          + List.fold_left (fun s (_, n) -> s + n) 0 report.Dred.overdeleted;
        rederived =
          acc.rederived
          + List.fold_left (fun s (_, n) -> s + n) 0 report.Dred.rederived;
      })
    { passes = 0; overdeleted = 0; rederived = 0 }
    batches
