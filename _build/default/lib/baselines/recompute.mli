(** Full recomputation — the baseline the paper's introduction argues
    against ("recomputing the view from scratch is too wasteful in most
    cases", §1), except past the inertia crossover (bench E9). *)

module Database = Ivm_eval.Database
module Changes = Ivm.Changes

(** Apply the base changes, then rebuild every materialized view from
    scratch (recursive programs under duplicate semantics go through
    {!Ivm.Recursive_counting}).  Registered aggregate indexes over the
    changed relations are invalidated. *)
val maintain : Database.t -> Changes.t -> unit
