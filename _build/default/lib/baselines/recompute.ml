(** Full recomputation — the baseline the paper's introduction argues
    against: "Recomputing the view from scratch is too wasteful in most
    cases" (Section 1), though not always — if an entire base relation is
    deleted, recomputation can win (the "heuristic of inertia" crossover,
    exercised by bench E9). *)

module Relation = Ivm_relation.Relation
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Seminaive = Ivm_eval.Seminaive
module Changes = Ivm.Changes

(** Apply the base changes, then rebuild every materialized view from
    scratch with the evaluator appropriate to the database's semantics
    (recursive programs under duplicate semantics go through
    {!Ivm.Recursive_counting}). *)
let maintain (db : Database.t) (changes : Changes.t) : unit =
  List.iter
    (fun (pred, delta) ->
      (* the base relation changes outside delta-tracked maintenance *)
      Database.invalidate_agg_indexes db pred;
      let stored = Database.relation db pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base db changes);
  let program = Database.program db in
  if
    Database.semantics db = Database.Duplicate_semantics
    && not (Program.nonrecursive program)
  then Ivm.Recursive_counting.evaluate db
  else Seminaive.evaluate db
