(** Database tuples: immutable arrays of {!Value.t}.

    Treat tuples as immutable once inserted into a relation — the storage
    layer hashes them, and mutating a stored tuple corrupts the index. *)

type t = Value.t array

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_list : Value.t list -> t
val to_list : t -> Value.t list

(** [of_ints [1;2]] builds an all-integer tuple; [of_strs ["a";"b"]] an
    all-symbol tuple — the common cases in tests mirroring the paper's
    examples ([link = {ab, mn}]). *)

val of_ints : int list -> t
val of_strs : string list -> t

(** [project cols t] extracts the listed column positions, in order. *)
val project : int list -> t -> t

(** Prints as [(a, b, 3)]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
