lib/relation/relation_view.ml: Relation
