lib/relation/tuple.ml: Array Format Int List Value
