lib/relation/value.ml: Bool Float Format Hashtbl Int String
