lib/relation/relation.mli: Format Tuple
