lib/relation/relation.ml: Array Format Hashtbl List Printf Tuple Value
