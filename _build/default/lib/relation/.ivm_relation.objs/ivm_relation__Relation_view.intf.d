lib/relation/relation_view.mli: Relation Tuple
