type t =
  | Concrete of Relation.t
  | Overlay of { base : Relation.t; delta : Relation.t }

let concrete r = Concrete r

let overlay base delta =
  if Relation.is_empty delta then Concrete base else Overlay { base; delta }

let arity = function
  | Concrete r -> Relation.arity r
  | Overlay { base; _ } -> Relation.arity base

let count v t =
  match v with
  | Concrete r -> Relation.count r t
  | Overlay { base; delta } -> Relation.count base t + Relation.count delta t

let mem v t = count v t <> 0
let holds v t = count v t > 0

let iter f = function
  | Concrete r -> Relation.iter f r
  | Overlay { base; delta } ->
    Relation.iter
      (fun t c ->
        let c = c + Relation.count delta t in
        if c <> 0 then f t c)
      base;
    Relation.iter (fun t c -> if not (Relation.mem base t) && c <> 0 then f t c) delta

let fold f v init =
  let acc = ref init in
  iter (fun t c -> acc := f t c !acc) v;
  !acc

let probe v cols key f =
  match v with
  | Concrete r -> Relation.probe r cols key f
  | Overlay { base; delta } ->
    Relation.probe base cols key (fun t c ->
        let c = c + Relation.count delta t in
        if c <> 0 then f t c);
    Relation.probe delta cols key (fun t c ->
        if not (Relation.mem base t) && c <> 0 then f t c)

let cardinal_estimate = function
  | Concrete r -> Relation.cardinal r
  | Overlay { base; delta } -> Relation.cardinal base + Relation.cardinal delta

let force v =
  match v with
  | Concrete r -> Relation.copy r
  | Overlay { base; delta } ->
    let out = Relation.copy base in
    Relation.union_into ~into:out delta;
    out
