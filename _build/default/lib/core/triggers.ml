(** Active-database triggers over maintained views — the application the
    paper's introduction singles out: "active databases (a rule may fire
    when a particular tuple is inserted into a view)" [SPAM91, RS93].

    A {!t} wraps a {!View_manager}; subscribers register per view and
    receive exactly the delta the maintenance algorithm computed for it —
    the incremental algorithms make trigger dispatch free, since the set
    of inserted/deleted view tuples is their output (Theorem 4.1), never
    something to re-derive.

    Subscribers fire after the whole batch has been applied and committed,
    in registration order; a subscriber sees insertions (positive counts)
    and deletions (negative counts) together, as one delta relation. *)

module Relation = Ivm_relation.Relation
module Tuple = Ivm_relation.Tuple

type subscriber = {
  sub_id : int;
  view : string;
  callback : Relation.t -> unit;
}

type t = {
  manager : View_manager.t;
  mutable subscribers : subscriber list;  (** in reverse registration order *)
  mutable next_id : int;
  mutable history : (string * Relation.t) list list;
      (** per apply, newest first — the audit trail of view changes *)
}

type subscription = int

let create (manager : View_manager.t) : t =
  { manager; subscribers = []; next_id = 0; history = [] }

let manager t = t.manager

(** [subscribe t view f] — [f delta] fires after every batch that changes
    [view].  Returns a handle for {!unsubscribe}.
    @raise Ivm_datalog.Program.Program_error on unknown views. *)
let subscribe (t : t) (view : string) (callback : Relation.t -> unit) :
    subscription =
  (* fail fast on unknown predicates *)
  ignore (View_manager.relation t.manager view);
  let sub_id = t.next_id in
  t.next_id <- sub_id + 1;
  t.subscribers <- { sub_id; view; callback } :: t.subscribers;
  sub_id

let unsubscribe (t : t) (id : subscription) : unit =
  t.subscribers <- List.filter (fun s -> s.sub_id <> id) t.subscribers

(** [on_insertion t view f] / [on_deletion t view f] — convenience
    subscriptions firing once per inserted (resp. deleted) tuple. *)
let on_insertion t view f =
  subscribe t view (fun delta ->
      Relation.iter (fun tup c -> if c > 0 then f tup c) delta)

let on_deletion t view f =
  subscribe t view (fun delta ->
      Relation.iter (fun tup c -> if c < 0 then f tup (-c)) delta)

let dispatch t (deltas : (string * Relation.t) list) =
  t.history <- deltas :: t.history;
  List.iter
    (fun s ->
      match List.assoc_opt s.view deltas with
      | Some delta when not (Relation.is_empty delta) -> s.callback delta
      | _ -> ())
    (List.rev t.subscribers)

(** Apply a change batch through the manager, then fire subscribers with
    the per-view deltas.  Returns the deltas. *)
let apply (t : t) changes : (string * Relation.t) list =
  let deltas = View_manager.apply t.manager changes in
  dispatch t deltas;
  deltas

let insert t pred tuples =
  apply t (Changes.insertions (View_manager.program t.manager) pred tuples)

let delete t pred tuples =
  apply t (Changes.deletions (View_manager.program t.manager) pred tuples)

let update t pred ~old_tuple ~new_tuple =
  apply t (Changes.update (View_manager.program t.manager) pred ~old_tuple ~new_tuple)

(** The audit trail: per-batch view deltas, newest first. *)
let history t = t.history
