(** Active-database triggers over maintained views — the paper's §1
    application: "a rule may fire when a particular tuple is inserted into
    a view" [SPAM91, RS93].  Subscribers receive exactly the delta the
    maintenance algorithm computed (its natural output, Theorem 4.1), so
    trigger dispatch costs nothing beyond the maintenance itself. *)

module Relation = Ivm_relation.Relation
module Tuple = Ivm_relation.Tuple

type t
type subscription

val create : View_manager.t -> t
val manager : t -> View_manager.t

(** [subscribe t view f] — [f delta] fires after every applied batch that
    changes [view]; insertions carry positive counts, deletions negative.
    Subscribers fire in registration order, after commit.
    @raise Ivm_datalog.Program.Program_error on unknown views. *)
val subscribe : t -> string -> (Relation.t -> unit) -> subscription

val unsubscribe : t -> subscription -> unit

(** Fire once per inserted tuple, with its (positive) multiplicity. *)
val on_insertion : t -> string -> (Tuple.t -> int -> unit) -> subscription

(** Fire once per deleted tuple, with its (positive) multiplicity. *)
val on_deletion : t -> string -> (Tuple.t -> int -> unit) -> subscription

(** Apply a batch through the manager, then fire subscribers. *)
val apply : t -> Changes.t -> (string * Relation.t) list

val insert : t -> string -> Tuple.t list -> (string * Relation.t) list
val delete : t -> string -> Tuple.t list -> (string * Relation.t) list

val update :
  t -> string -> old_tuple:Tuple.t -> new_tuple:Tuple.t ->
  (string * Relation.t) list

(** Per-batch view deltas, newest first. *)
val history : t -> (string * Relation.t) list list
