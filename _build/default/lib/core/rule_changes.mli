(** Maintenance under rule insertions and deletions — the paper's view
    redefinition (Sections 1 and 7) — by reduction to ordinary
    base-relation maintenance through {e guard predicates}: [p :- body] is
    equivalent to [p :- body & g] for a 0-ary base predicate [g] holding
    one fact, so adding a rule is inserting [g()] and removing a rule is
    deleting [g()], handled by whichever maintenance algorithm manages the
    database.  The guard is removed from the program afterwards (a no-op
    on the fixpoint). *)

module Ast = Ivm_datalog.Ast
module Database = Ivm_eval.Database

exception Unknown_rule of string

(** The maintenance algorithm used to propagate the guard flip. *)
type maintainer = Database.t -> Changes.t -> unit

(** [add_rule db ~maintain rule] returns a new database over the extended
    program with every view incrementally maintained.  The input database
    must not be used afterwards (relations are moved).
    @raise Invalid_argument when [rule]'s head is a populated base
    relation. *)
val add_rule : Database.t -> maintain:maintainer -> Ast.rule -> Database.t

(** [remove_rule db ~maintain rule] — [rule] is matched structurally.
    Removing a predicate's last rule leaves it as an empty base relation.
    @raise Unknown_rule when no such rule exists. *)
val remove_rule : Database.t -> maintain:maintainer -> Ast.rule -> Database.t
