lib/core/dred.ml: Array Changes Hashtbl Ivm_datalog Ivm_eval Ivm_relation List Logs Printf String
