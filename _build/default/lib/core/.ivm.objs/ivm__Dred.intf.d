lib/core/dred.mli: Changes Ivm_eval Ivm_relation
