lib/core/rule_changes.ml: Changes Ivm_datalog Ivm_eval Ivm_relation List Printf
