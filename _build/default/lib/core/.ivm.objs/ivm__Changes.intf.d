lib/core/changes.mli: Format Ivm_datalog Ivm_eval Ivm_relation
