lib/core/delta.mli: Hashtbl Ivm_eval Ivm_relation
