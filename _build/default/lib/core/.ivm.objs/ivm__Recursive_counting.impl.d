lib/core/recursive_counting.ml: Array Changes Delta Hashtbl Ivm_datalog Ivm_eval Ivm_relation List Printf
