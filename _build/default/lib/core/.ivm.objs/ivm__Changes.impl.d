lib/core/changes.ml: Format Hashtbl Ivm_datalog Ivm_eval Ivm_relation List String
