lib/core/triggers.ml: Changes Ivm_relation List View_manager
