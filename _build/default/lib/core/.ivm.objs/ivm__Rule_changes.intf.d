lib/core/rule_changes.mli: Changes Ivm_datalog Ivm_eval
