lib/core/view_manager.mli: Changes Format Ivm_datalog Ivm_eval Ivm_relation
