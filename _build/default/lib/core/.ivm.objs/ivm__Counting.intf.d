lib/core/counting.mli: Changes Ivm_eval Ivm_relation
