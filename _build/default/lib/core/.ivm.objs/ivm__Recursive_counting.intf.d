lib/core/recursive_counting.mli: Changes Ivm_eval Ivm_relation
