lib/core/triggers.mli: Changes Ivm_relation View_manager
