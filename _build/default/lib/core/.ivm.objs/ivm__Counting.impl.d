lib/core/counting.ml: Changes Delta Hashtbl Ivm_datalog Ivm_eval Ivm_relation List Logs Printf
