lib/core/delta.ml: Array Hashtbl Ivm_datalog Ivm_eval Ivm_relation List Printf String
