lib/core/view_manager.ml: Changes Counting Dred Ivm_datalog Ivm_eval Ivm_relation List Printf Recursive_counting Rule_changes String
