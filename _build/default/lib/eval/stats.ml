(** Global work counters.

    The paper's optimality and fragmentation claims (Theorem 4.1; the
    PF comparison in Section 2) are about {e how many derivations} an
    algorithm computes, not just wall-clock time.  The evaluator bumps these
    counters so tests and benches can assert on work done.  Counters are
    process-global; reset them around the region you measure. *)

type t = {
  mutable derivations : int;
      (** tuples emitted by rule bodies (one per successful derivation) *)
  mutable tuples_scanned : int;
      (** tuples read while scanning or probing relations *)
  mutable probes : int;  (** index probe operations *)
  mutable rule_applications : int;  (** rule (re-)evaluations started *)
}

let stats = { derivations = 0; tuples_scanned = 0; probes = 0; rule_applications = 0 }

let reset () =
  stats.derivations <- 0;
  stats.tuples_scanned <- 0;
  stats.probes <- 0;
  stats.rule_applications <- 0

let derivations () = stats.derivations
let tuples_scanned () = stats.tuples_scanned
let probes () = stats.probes
let rule_applications () = stats.rule_applications

let add_derivation () = stats.derivations <- stats.derivations + 1
let add_scanned () = stats.tuples_scanned <- stats.tuples_scanned + 1
let add_probe () = stats.probes <- stats.probes + 1
let add_rule_application () = stats.rule_applications <- stats.rule_applications + 1

type snapshot = {
  snap_derivations : int;
  snap_tuples_scanned : int;
  snap_probes : int;
  snap_rule_applications : int;
}

let snapshot () =
  {
    snap_derivations = stats.derivations;
    snap_tuples_scanned = stats.tuples_scanned;
    snap_probes = stats.probes;
    snap_rule_applications = stats.rule_applications;
  }

(** Work done since [earlier]. *)
let since earlier =
  {
    snap_derivations = stats.derivations - earlier.snap_derivations;
    snap_tuples_scanned = stats.tuples_scanned - earlier.snap_tuples_scanned;
    snap_probes = stats.probes - earlier.snap_probes;
    snap_rule_applications = stats.rule_applications - earlier.snap_rule_applications;
  }

let pp_snapshot ppf s =
  Format.fprintf ppf "derivations=%d scanned=%d probes=%d rules=%d"
    s.snap_derivations s.snap_tuples_scanned s.snap_probes
    s.snap_rule_applications

(** Run [f], returning its result and the work it performed. *)
let measure f =
  let before = snapshot () in
  let x = f () in
  (x, since before)
