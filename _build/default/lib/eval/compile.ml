(** Compilation of AST rules into a slot-based form: every variable of a
    rule gets an integer slot, so bindings are arrays rather than string
    maps on the hot path.  GROUPBY subgoals split into

    - an {e aggregate spec} describing how the grouped relation [T] is
      computed from its source relation [U] (with its own local slot space,
      since variables of the source that are not grouping variables are
      local to the aggregation, Section 6.2), and
    - a rule-level pseudo-atom [T(G1, …, Gk, Res)] joined like any other
      subgoal. *)

open Ivm_datalog.Ast
module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple

type slot = int

type cterm = Cvar of slot | Cconst of Value.t

type cexpr =
  | Xterm of cterm
  | Xadd of cexpr * cexpr
  | Xsub of cexpr * cexpr
  | Xmul of cexpr * cexpr
  | Xdiv of cexpr * cexpr
  | Xneg of cexpr

type catom = { cpred : string; cargs : cterm array }

(** How to compute the grouped relation of one GROUPBY literal.  Slots here
    are local to the spec (the source atom's variables), independent of the
    enclosing rule's slots.  The grouped relation has columns
    [group values @ [aggregate value]]. *)
type agg_spec = {
  gsource : catom;  (** pattern matched against tuples of [U] *)
  gnslots : int;
  ggroup : slot array;  (** local slots of the grouping variables, in order *)
  garg : cexpr;  (** aggregated expression, over local slots *)
  gfn : agg_fn;
  gsignature : string;
      (** canonical key: equal specs compute equal grouped relations *)
}

type clit =
  | Catom of catom
  | Cneg of catom
  | Cagg of agg_spec * cterm array
      (** rule-level view of the grouped relation: args are the grouping
          variables then the result variable, as rule slots *)
  | Ccmp of cexpr * cmp_op * cexpr

type t = {
  source : rule;
  head_pred : string;
  nslots : int;
  slot_names : string array;
  chead : cexpr array;
  clits : clit array;
}

(* -------------------------------------------------------------------- *)

let term_of_expr_exn ctx = function
  | Eterm t -> t
  | _ -> invalid_arg (ctx ^ ": body atom arguments must be terms")

module Smap = Map.Make (String)

type slots = { mutable map : slot Smap.t; mutable next : slot }

let fresh_slots () = { map = Smap.empty; next = 0 }

let slot_of slots v =
  match Smap.find_opt v slots.map with
  | Some s -> s
  | None ->
    let s = slots.next in
    slots.next <- s + 1;
    slots.map <- Smap.add v s slots.map;
    s

let compile_term slots = function
  | Var v -> Cvar (slot_of slots v)
  | Const c -> Cconst c

let rec compile_expr slots = function
  | Eterm t -> Xterm (compile_term slots t)
  | Eadd (a, b) -> Xadd (compile_expr slots a, compile_expr slots b)
  | Esub (a, b) -> Xsub (compile_expr slots a, compile_expr slots b)
  | Emul (a, b) -> Xmul (compile_expr slots a, compile_expr slots b)
  | Ediv (a, b) -> Xdiv (compile_expr slots a, compile_expr slots b)
  | Eneg a -> Xneg (compile_expr slots a)

let compile_atom slots (a : atom) =
  {
    cpred = a.pred;
    cargs =
      Array.of_list
        (List.map (fun e -> compile_term slots (term_of_expr_exn a.pred e)) a.args);
  }

(* A canonical signature for an aggregate spec: local slots make it
   independent of the enclosing rule's variable names, so two GROUPBY
   literals over the same source pattern share cached grouped relations. *)
let spec_signature ~source ~group ~arg ~fn =
  let buf = Buffer.create 64 in
  let term = function
    | Cvar s -> Buffer.add_string buf (Printf.sprintf "$%d" s)
    | Cconst c -> Buffer.add_string buf (Value.to_string c)
  in
  let rec expr = function
    | Xterm t -> term t
    | Xadd (a, b) -> Buffer.add_string buf "(+ "; expr a; Buffer.add_char buf ' '; expr b; Buffer.add_char buf ')'
    | Xsub (a, b) -> Buffer.add_string buf "(- "; expr a; Buffer.add_char buf ' '; expr b; Buffer.add_char buf ')'
    | Xmul (a, b) -> Buffer.add_string buf "(* "; expr a; Buffer.add_char buf ' '; expr b; Buffer.add_char buf ')'
    | Xdiv (a, b) -> Buffer.add_string buf "(/ "; expr a; Buffer.add_char buf ' '; expr b; Buffer.add_char buf ')'
    | Xneg a -> Buffer.add_string buf "(~ "; expr a; Buffer.add_char buf ')'
  in
  Buffer.add_string buf (source.cpred ^ "(");
  Array.iter (fun t -> term t; Buffer.add_char buf ',') source.cargs;
  Buffer.add_string buf ")[";
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "$%d," s)) group;
  Buffer.add_string buf ("]" ^ agg_fn_name fn ^ "(");
  expr arg;
  Buffer.add_char buf ')';
  Buffer.contents buf

(** Compile a GROUPBY literal's spec in its own local slot space. *)
let compile_agg_spec (agg : aggregate) : agg_spec =
  let slots = fresh_slots () in
  let gsource = compile_atom slots agg.agg_source in
  let ggroup = Array.of_list (List.map (fun v -> slot_of slots v) agg.agg_group_by) in
  let garg = compile_expr slots agg.agg_arg in
  {
    gsource;
    gnslots = slots.next;
    ggroup;
    garg;
    gfn = agg.agg_fn;
    gsignature = spec_signature ~source:gsource ~group:ggroup ~arg:garg ~fn:agg.agg_fn;
  }

(** Arity of the grouped relation a spec denotes. *)
let spec_arity spec = Array.length spec.ggroup + 1

let compile (r : rule) : t =
  let slots = fresh_slots () in
  (* Body first so that slot order roughly follows binding order. *)
  let clits =
    Array.of_list @@ List.map
      (fun lit ->
        match lit with
        | Lpos a -> Catom (compile_atom slots a)
        | Lneg a -> Cneg (compile_atom slots a)
        | Lagg agg ->
          let spec = compile_agg_spec agg in
          let args =
            Array.of_list
              (List.map
                 (fun v -> Cvar (slot_of slots v))
                 (agg.agg_group_by @ [ agg.agg_result ]))
          in
          Cagg (spec, args)
        | Lcmp (a, op, b) -> Ccmp (compile_expr slots a, op, compile_expr slots b))
      r.body
  in
  let chead = Array.of_list (List.map (compile_expr slots) r.head.args) in
  let slot_names = Array.make slots.next "_" in
  Smap.iter (fun v s -> slot_names.(s) <- v) slots.map;
  {
    source = r;
    head_pred = r.head.pred;
    nslots = slots.next;
    slot_names;
    chead;
    clits;
  }

(** Indices of body literals that denote a relation that can change
    (positive atoms, negated atoms, aggregates) — the candidate delta
    positions of Definition 4.1.  Comparisons never change. *)
let delta_positions t =
  let acc = ref [] in
  Array.iteri
    (fun i lit ->
      match lit with
      | Catom _ | Cneg _ | Cagg _ -> acc := i :: !acc
      | Ccmp _ -> ())
    t.clits;
  List.rev !acc

(** Predicate referenced by a body literal, if any. *)
let lit_pred = function
  | Catom a | Cneg a -> Some a.cpred
  | Cagg (spec, _) -> Some spec.gsource.cpred
  | Ccmp _ -> None
