(** Incrementally maintainable aggregate accumulators, per [DAJ91] as
    cited in Section 6.2 of the paper: COUNT/SUM/AVG keep running sums;
    MIN/MAX keep a multiset of contributing values so deletions never
    force a rescan of the group.  One {!state} holds one group. *)

module Value = Ivm_relation.Value

type state

val create : Ivm_datalog.Ast.agg_fn -> state
val copy : state -> state
val is_empty : state -> bool

(** [update st v mult] adds [mult] occurrences of [v]; negative [mult]
    removes.  @raise Invalid_argument when removing occurrences never
    added (a Lemma 4.1 precondition violation);
    @raise Value.Type_error when summing non-numeric values. *)
val update : state -> Value.t -> int -> unit

(** Current aggregate value; [None] for an empty group. *)
val value : state -> Value.t option

(** One-shot aggregation of [(value, multiplicity)] pairs — the oracle
    used by recomputation and tests. *)
val of_seq : Ivm_datalog.Ast.agg_fn -> (Value.t * int) Seq.t -> state
