lib/eval/compile.ml: Array Buffer Ivm_datalog Ivm_relation List Map Printf String
