lib/eval/compile.mli: Ivm_datalog Ivm_relation
