lib/eval/grouping.ml: Agg Array Compile Hashtbl Ivm_relation List Rule_eval Stats
