lib/eval/grouping.mli: Compile Ivm_relation
