lib/eval/query.ml: Array Ast Compile Database Format Hashtbl Ivm_datalog Ivm_relation List Parser Program Rule_eval Safety Seminaive String
