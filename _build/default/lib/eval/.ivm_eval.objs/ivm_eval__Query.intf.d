lib/eval/query.mli: Database Format Ivm_datalog Ivm_relation
