lib/eval/database.mli: Agg_index Compile Format Ivm_datalog Ivm_relation
