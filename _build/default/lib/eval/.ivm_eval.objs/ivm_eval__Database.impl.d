lib/eval/database.ml: Agg_index Compile Format Hashtbl Ivm_datalog Ivm_relation List Printf Rule_eval String
