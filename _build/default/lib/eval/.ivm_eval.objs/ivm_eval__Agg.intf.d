lib/eval/agg.mli: Ivm_datalog Ivm_relation Seq
