lib/eval/rule_eval.mli: Compile Ivm_datalog Ivm_relation
