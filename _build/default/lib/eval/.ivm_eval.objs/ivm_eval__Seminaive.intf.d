lib/eval/seminaive.mli: Compile Database Ivm_datalog Ivm_relation Rule_eval
