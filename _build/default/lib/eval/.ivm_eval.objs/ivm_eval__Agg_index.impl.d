lib/eval/agg_index.ml: Agg Array Compile Hashtbl Ivm_relation List Rule_eval
