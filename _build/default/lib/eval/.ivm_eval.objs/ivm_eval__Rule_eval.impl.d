lib/eval/rule_eval.ml: Array Compile Ivm_datalog Ivm_relation List Printf Stats
