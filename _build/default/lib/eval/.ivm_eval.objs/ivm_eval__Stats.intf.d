lib/eval/stats.mli: Format
