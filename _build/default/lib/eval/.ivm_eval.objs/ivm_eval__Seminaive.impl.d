lib/eval/seminaive.ml: Array Compile Database Grouping Hashtbl Ivm_datalog Ivm_relation List Printf Rule_eval
