lib/eval/agg.ml: Ivm_datalog Ivm_relation Map Option Seq
