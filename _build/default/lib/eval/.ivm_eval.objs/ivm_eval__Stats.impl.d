lib/eval/stats.ml: Format
