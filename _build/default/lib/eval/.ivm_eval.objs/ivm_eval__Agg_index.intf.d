lib/eval/agg_index.mli: Compile Ivm_relation
