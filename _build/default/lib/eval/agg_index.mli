(** Persistent incremental aggregate indexes — the fully incremental
    reading of Algorithm 6.1 via [DAJ91] accumulators.

    {!Grouping.delta} recomputes each touched group from the stored source
    (cost: the group's size).  An index keeps one {!Agg.state} per group —
    running sums for COUNT/SUM/AVG, a value multiset for MIN/MAX — so a
    touched group costs [O(|Δ| log)] regardless of its size.

    Deltas handed to {!delta_preview}/{!apply_delta} must be in the
    database's propagated regime: full count deltas under duplicate
    semantics, ±1 set transitions under set semantics (what the
    maintenance algorithms propagate); [mult] applies to the initial build
    only. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view

type t

val spec : t -> Compile.agg_spec
val source_pred : t -> string

(** The materialized grouped relation [T] (do not mutate). *)
val grouped : t -> Relation.t

(** Build from the current source relation. *)
val build : ?mult:(int -> int) -> Relation_view.t -> Compile.agg_spec -> t

(** [Δ(T)] for a source delta, without mutating the index (touched states
    are cloned). *)
val delta_preview : t -> Relation.t -> Relation.t

(** Fold a committed source delta into the index; returns [Δ(T)]. *)
val apply_delta : t -> Relation.t -> Relation.t

val group_count : t -> int

(** Deep copy (used by {!Database.copy}). *)
val copy : t -> t
