(** Ad-hoc conjunctive queries over the materialized database — one-shot
    "persistent queries" (§1 of the paper): every view is materialized and
    exact, so a query is a single join over stored relations. *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation

type result = {
  columns : string list;  (** answer variables, first-occurrence order *)
  rows : Relation.t;  (** one tuple per answer, with derivation counts *)
}

(** Variables a bottom-up evaluation of the body binds — the legal answer
    columns. *)
val bound_vars : Ivm_datalog.Ast.literal list -> string list

(** Run a query body against the stored relations.
    @raise Ivm_datalog.Safety.Unsafe on unsafe bodies;
    @raise Ivm_datalog.Program.Program_error on unknown predicates. *)
val run : Database.t -> Ivm_datalog.Ast.literal list -> result

(** Run a full query rule: the head's argument expressions are the output
    columns (projection, computed columns), [columns] their display names.
    @raise Invalid_argument on a column/argument count mismatch. *)
val run_rule : Database.t -> Ivm_datalog.Ast.rule -> columns:string list -> result

(** Parse and run ["hop(a, X), link(X, Y)"]. *)
val run_text : Database.t -> string -> result

(** Boolean (ground) query: has at least one derivation. *)
val holds : Database.t -> string -> bool

val pp : Format.formatter -> result -> unit
