(** The join engine: evaluates one compiled rule body against
    caller-chosen relation views and emits head tuples with derivation
    counts.

    The caller decides, per body literal, what relation stands behind it —
    the whole trick of the paper's rewrites.  A delta rule
    [Δ(p) :- s1ν & … & Δ(si) & … & sn] (Definition 4.1) passes the new
    view before position [i], the delta relation at [i] (the {e seed}),
    and the old view after; initial materialization passes stored
    relations everywhere.

    Counts multiply across subgoals (Section 3); the per-subgoal count
    transform implements the set-semantics clamp of Section 5.1.

    Join order: seed first (the delta is the most restrictive input,
    Section 6.1), then enumerable literals greedily by bound argument
    positions (ties to the smaller relation); negation filters,
    comparisons and equality binders run as soon as their variables are
    bound. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation_view = Ivm_relation.Relation_view

type count_xform = int -> int

val identity_count : count_xform

(** The set-semantics clamp: a true tuple counts once. *)
val set_count : count_xform

type subgoal_input =
  | Enumerate of Relation_view.t * count_xform
      (** join against this relation (positive atoms, grouped relations,
          or a precomputed [Δ(¬Q)] for a negated delta position) *)
  | Filter_absent of Relation_view.t
      (** negated subgoal in a non-delta position: succeeds, with count 1,
          when the bound tuple does not hold in the view *)

exception Plan_error of string

(** Value of a compiled expression under a binding.
    @raise Plan_error on an unbound variable. *)
val expr_value : Value.t option array -> Compile.cexpr -> Value.t

val cmp_holds : Ivm_datalog.Ast.cmp_op -> Value.t -> Value.t -> bool

(** Unify a tuple against an argument pattern, extending [binding] in
    place; newly bound slots are pushed on [undo].  On [false] the caller
    must still {!unwind}. *)
val match_pattern :
  Value.t option array -> Compile.cterm array -> Tuple.t -> int list ref -> bool

val unwind : Value.t option array -> int list -> unit

(** Evaluate the body of a compiled rule, calling [emit head count] once
    per derivation (the caller accumulates with [⊎]).  [seed] is the body
    literal enumerated first — the delta position.  Empty enumerable
    inputs short-circuit the evaluation.
    @raise Plan_error when a literal cannot be planned (unsafe rule or a
    negated literal without input). *)
val eval :
  ?seed:int ->
  inputs:(int -> subgoal_input) ->
  emit:(Tuple.t -> int -> unit) ->
  Compile.t ->
  unit
