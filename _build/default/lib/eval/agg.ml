(** Incrementally maintainable aggregate accumulators, per [DAJ91] as cited
    in Section 6.2: COUNT/SUM/AVG keep running sums; MIN/MAX keep a multiset
    of contributing values so deletions never force a rescan of the group.
    One {!state} holds one group's accumulator. *)

module Value = Ivm_relation.Value
open Ivm_datalog.Ast

module Vmap = Map.Make (Value)

type state = {
  fn : agg_fn;
  mutable n : int;  (** multiplicity-weighted number of contributions *)
  mutable sum_int : int;  (** exact sum of integer contributions *)
  mutable sum_float : float;  (** sum of float contributions *)
  mutable n_float : int;  (** how many contributions were floats *)
  mutable values : int Vmap.t;  (** value multiset, kept for Min/Max only *)
}

let create fn =
  { fn; n = 0; sum_int = 0; sum_float = 0.; n_float = 0; values = Vmap.empty }

let copy s = { s with fn = s.fn }

let is_empty s = s.n = 0


let touch_sum s v mult =
  match v with
  | Value.Int x -> s.sum_int <- s.sum_int + (x * mult)
  | Value.Float x ->
    s.sum_float <- s.sum_float +. (x *. float_of_int mult);
    s.n_float <- s.n_float + mult
  | v -> raise (Value.Type_error ("cannot aggregate over " ^ Value.to_string v))

(** [update s v mult] adds [mult] occurrences of [v] ([mult < 0] removes).
    @raise Invalid_argument when removing occurrences that were never
    added (the caller violated Lemma 4.1's guarantee that deletions are a
    subset of the database). *)
let update s v mult =
  if mult <> 0 then begin
    s.n <- s.n + mult;
    if s.n < 0 then invalid_arg "Agg.update: group multiplicity went negative";
    (match s.fn with
    | Count -> ()
    | Sum | Avg -> touch_sum s v mult
    | Min | Max ->
      let cur = Option.value ~default:0 (Vmap.find_opt v s.values) in
      let c = cur + mult in
      if c < 0 then invalid_arg "Agg.update: value multiplicity went negative";
      s.values <- (if c = 0 then Vmap.remove v s.values else Vmap.add v c s.values))
  end

(** Current aggregate value; [None] when the group is empty (an empty group
    contributes no tuple to the grouped relation). *)
let value s =
  if s.n = 0 then None
  else
    match s.fn with
    | Count -> Some (Value.Int s.n)
    | Sum ->
      Some
        (if s.n_float > 0 then Value.Float (s.sum_float +. float_of_int s.sum_int)
         else Value.Int s.sum_int)
    | Avg ->
      Some (Value.Float ((s.sum_float +. float_of_int s.sum_int) /. float_of_int s.n))
    | Min -> Some (fst (Vmap.min_binding s.values))
    | Max -> Some (fst (Vmap.max_binding s.values))

(** One-shot aggregation of a value sequence (used by full recomputation
    and by tests as the oracle). *)
let of_seq fn seq =
  let s = create fn in
  Seq.iter (fun (v, mult) -> update s v mult) seq;
  s
