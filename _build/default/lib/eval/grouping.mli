(** Evaluation of GROUPBY subgoals (Section 6.2 of the paper).

    A GROUPBY subgoal over a source relation [U] denotes a grouped
    relation [T] with one tuple [y ++ [agg]] per distinct grouping value
    [y] in [U].  {!compute} materializes [T]; {!delta} is Algorithm 6.1:
    given [Δ(U)] it touches only the groups occurring in [Δ(U)],
    recomputing each touched group's aggregate from the old and new [U]
    (index-assisted, so a touched group costs its own size, not [|U|]),
    and emits [(T_y old, −1)] / [(T_y new, +1)] for changed groups. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view

(** Multiplicity regime: a tuple with count [c] contributes [c] times
    under duplicate semantics, once under set semantics. *)
type mult = int -> int

(** The grouped relation [T] over [view], in full. *)
val compute : ?mult:mult -> Relation_view.t -> Compile.agg_spec -> Relation.t

(** Aggregate value of one group; [None] when empty (an empty group
    contributes no tuple to [T]). *)
val group_value :
  ?mult:mult -> Relation_view.t -> Compile.agg_spec -> Tuple.t -> Value.t option

(** Distinct group keys occurring in a source delta. *)
val affected_keys : Relation.t -> Compile.agg_spec -> Tuple.t list

(** Algorithm 6.1: [Δ(T)] from [Δ(U)] and the old/new versions of [U]. *)
val delta :
  ?mult:mult ->
  old_view:Relation_view.t ->
  new_view:Relation_view.t ->
  delta_u:Relation.t ->
  Compile.agg_spec ->
  Relation.t
