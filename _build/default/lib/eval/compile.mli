(** Compilation of AST rules into a slot-based form: every variable gets an
    integer slot so bindings are arrays, not string maps, on the hot path.
    GROUPBY subgoals split into an {!agg_spec} (how the grouped relation is
    computed from its source, in its own local slot space) and a rule-level
    pseudo-atom over the grouping variables and result. *)

module Value = Ivm_relation.Value

type slot = int

type cterm = Cvar of slot | Cconst of Value.t

type cexpr =
  | Xterm of cterm
  | Xadd of cexpr * cexpr
  | Xsub of cexpr * cexpr
  | Xmul of cexpr * cexpr
  | Xdiv of cexpr * cexpr
  | Xneg of cexpr

type catom = { cpred : string; cargs : cterm array }

(** How to compute the grouped relation of one GROUPBY literal.  Slots are
    local to the spec; the grouped relation has columns
    [group values @ [aggregate value]]. *)
type agg_spec = {
  gsource : catom;  (** pattern matched against source tuples *)
  gnslots : int;
  ggroup : slot array;  (** local slots of the grouping variables *)
  garg : cexpr;  (** aggregated expression over local slots *)
  gfn : Ivm_datalog.Ast.agg_fn;
  gsignature : string;
      (** canonical key: equal specs compute equal grouped relations *)
}

type clit =
  | Catom of catom
  | Cneg of catom
  | Cagg of agg_spec * cterm array
      (** rule-level view of the grouped relation: grouping variables then
          the result variable, as rule slots *)
  | Ccmp of cexpr * Ivm_datalog.Ast.cmp_op * cexpr

type t = {
  source : Ivm_datalog.Ast.rule;
  head_pred : string;
  nslots : int;
  slot_names : string array;
  chead : cexpr array;
  clits : clit array;
}

(** Compile a GROUPBY literal's spec in its own local slot space. *)
val compile_agg_spec : Ivm_datalog.Ast.aggregate -> agg_spec

(** Arity of the grouped relation a spec denotes. *)
val spec_arity : agg_spec -> int

val compile : Ivm_datalog.Ast.rule -> t

(** Indices of body literals whose relation can change — the candidate
    delta positions of Definition 4.1 (comparisons never change). *)
val delta_positions : t -> int list

(** Predicate referenced by a body literal, if any. *)
val lit_pred : clit -> string option
