(** Global work counters.

    The paper's optimality and fragmentation claims (Theorem 4.1; the PF
    comparison of Section 2) concern {e how many derivations} an algorithm
    computes, not just wall-clock time.  The evaluator bumps these
    process-global counters; reset them around the region you measure. *)

val reset : unit -> unit

(** Tuples emitted by rule bodies — one per successful derivation. *)
val derivations : unit -> int

(** Tuples read while scanning or probing relations. *)
val tuples_scanned : unit -> int

(** Index probe operations. *)
val probes : unit -> int

(** Rule (re-)evaluations started. *)
val rule_applications : unit -> int

val add_derivation : unit -> unit
val add_scanned : unit -> unit
val add_probe : unit -> unit
val add_rule_application : unit -> unit

type snapshot = {
  snap_derivations : int;
  snap_tuples_scanned : int;
  snap_probes : int;
  snap_rule_applications : int;
}

val snapshot : unit -> snapshot

(** Work done since [earlier]. *)
val since : snapshot -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit

(** Run [f]; return its result and the work it performed. *)
val measure : (unit -> 'a) -> 'a * snapshot
