(** Unit tests for the [ivm_par] domain pool and [parallel_map]:
    ordering, inline fast paths, load-balanced claiming, exception
    propagation, pool reuse after failure, and the domain-count knob. *)

open Util

exception Boom of int

let with_domains d f =
  let prev = Ivm_par.domains () in
  Ivm_par.set_domains d;
  Fun.protect ~finally:(fun () -> Ivm_par.set_domains prev) f

let squares n = Array.init n (fun i -> fun () -> i * i)
let expected n = Array.init n (fun i -> i * i)

let results_in_task_order () =
  with_domains 3 (fun () ->
      Alcotest.(check (array int))
        "100 tasks on 3 domains" (expected 100)
        (Ivm_par.parallel_map (squares 100)))

let inline_paths () =
  with_domains 4 (fun () ->
      Alcotest.(check (array int)) "empty batch" [||] (Ivm_par.parallel_map [||]);
      Alcotest.(check (array int))
        "single task runs inline" (expected 1)
        (Ivm_par.parallel_map (squares 1)));
  with_domains 1 (fun () ->
      Alcotest.(check bool) "domains 1 is sequential" true (Ivm_par.sequential ());
      Alcotest.(check (array int))
        "sequential batch" (expected 50)
        (Ivm_par.parallel_map (squares 50)))

let skewed_tasks () =
  (* wildly uneven task costs still produce per-index results *)
  with_domains 4 (fun () ->
      let tasks =
        Array.init 40 (fun i ->
            fun () ->
              let spin = if i mod 7 = 0 then 10_000 else 10 in
              let acc = ref 0 in
              for k = 1 to spin do acc := !acc + (k mod 3) done;
              ignore !acc;
              i)
      in
      Alcotest.(check (array int))
        "skewed batch keeps indexing" (Array.init 40 Fun.id)
        (Ivm_par.parallel_map tasks))

let exception_propagates () =
  with_domains 4 (fun () ->
      let tasks =
        Array.init 20 (fun i ->
            fun () -> if i = 13 then raise (Boom i) else i)
      in
      (match Ivm_par.parallel_map tasks with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 13 -> ()
      | exception e -> raise e);
      (* the pool drained the batch and stays usable *)
      Alcotest.(check (array int))
        "pool reusable after failure" (expected 30)
        (Ivm_par.parallel_map (squares 30)))

let set_domains_clamps () =
  with_domains 1 (fun () ->
      Ivm_par.set_domains 0;
      Alcotest.(check int) "clamped to 1" 1 (Ivm_par.domains ());
      Ivm_par.set_domains (-3);
      Alcotest.(check int) "negative clamped" 1 (Ivm_par.domains ());
      Ivm_par.set_domains 4;
      Alcotest.(check int) "set to 4" 4 (Ivm_par.domains ());
      Alcotest.(check bool) "not sequential" false (Ivm_par.sequential ()))

let resize_midstream () =
  (* growing and shrinking the pool between batches keeps results right *)
  with_domains 2 (fun () ->
      Alcotest.(check (array int)) "at 2" (expected 25)
        (Ivm_par.parallel_map (squares 25));
      Ivm_par.set_domains 4;
      Alcotest.(check (array int)) "grown to 4" (expected 25)
        (Ivm_par.parallel_map (squares 25));
      Ivm_par.set_domains 1;
      Alcotest.(check (array int)) "shrunk to 1" (expected 25)
        (Ivm_par.parallel_map (squares 25)))

let pool_direct () =
  let pool = Ivm_par.Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Ivm_par.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 3 (Ivm_par.Pool.size pool);
      let hits = Array.make 64 0 in
      Ivm_par.Pool.run_tasks pool ~n:64 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int))
        "every task ran exactly once" (Array.make 64 1) hits);
  (* shutdown is idempotent *)
  Ivm_par.Pool.shutdown pool

let split_merge_roundtrip () =
  (* Par_eval.split partitions; merging the parts restores the relation *)
  let r = Relation.create 2 in
  for i = 0 to 40 do
    Relation.add r [| Value.Int (i mod 13); Value.Int (i mod 7) |] ((i mod 3) + 1)
  done;
  let parts = Ivm_eval.Par_eval.split r ~chunks:4 in
  Alcotest.(check bool) "several parts" true (Array.length parts >= 2);
  let whole = Relation.create 2 in
  Ivm_eval.Par_eval.merge ~into:whole parts;
  check_rel "split ∘ merge = id" r whole

let suite =
  [
    quick "parallel_map keeps task order" results_in_task_order;
    quick "inline fast paths" inline_paths;
    quick "skewed task costs" skewed_tasks;
    quick "exception propagation + reuse" exception_propagates;
    quick "set_domains clamps" set_domains_clamps;
    quick "pool resize between batches" resize_midstream;
    quick "pool direct run_tasks" pool_direct;
    quick "Par_eval split/merge round-trip" split_merge_roundtrip;
  ]
