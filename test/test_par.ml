(** Unit tests for the [ivm_par] domain pool and [parallel_map]:
    ordering, inline fast paths, load-balanced claiming, exception
    propagation, pool reuse after failure, and the domain-count knob. *)

open Util

exception Boom of int

let with_domains d f =
  let prev = Ivm_par.domains () in
  Ivm_par.set_domains d;
  Fun.protect ~finally:(fun () -> Ivm_par.set_domains prev) f

let squares n = Array.init n (fun i -> fun () -> i * i)
let expected n = Array.init n (fun i -> i * i)

let results_in_task_order () =
  with_domains 3 (fun () ->
      Alcotest.(check (array int))
        "100 tasks on 3 domains" (expected 100)
        (Ivm_par.parallel_map (squares 100)))

let inline_paths () =
  with_domains 4 (fun () ->
      Alcotest.(check (array int)) "empty batch" [||] (Ivm_par.parallel_map [||]);
      Alcotest.(check (array int))
        "single task runs inline" (expected 1)
        (Ivm_par.parallel_map (squares 1)));
  with_domains 1 (fun () ->
      Alcotest.(check bool) "domains 1 is sequential" true (Ivm_par.sequential ());
      Alcotest.(check (array int))
        "sequential batch" (expected 50)
        (Ivm_par.parallel_map (squares 50)))

let skewed_tasks () =
  (* wildly uneven task costs still produce per-index results *)
  with_domains 4 (fun () ->
      let tasks =
        Array.init 40 (fun i ->
            fun () ->
              let spin = if i mod 7 = 0 then 10_000 else 10 in
              let acc = ref 0 in
              for k = 1 to spin do acc := !acc + (k mod 3) done;
              ignore !acc;
              i)
      in
      Alcotest.(check (array int))
        "skewed batch keeps indexing" (Array.init 40 Fun.id)
        (Ivm_par.parallel_map tasks))

let exception_propagates () =
  with_domains 4 (fun () ->
      let tasks =
        Array.init 20 (fun i ->
            fun () -> if i = 13 then raise (Boom i) else i)
      in
      (match Ivm_par.parallel_map tasks with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 13 -> ()
      | exception e -> raise e);
      (* the pool drained the batch and stays usable *)
      Alcotest.(check (array int))
        "pool reusable after failure" (expected 30)
        (Ivm_par.parallel_map (squares 30)))

let set_domains_clamps () =
  with_domains 1 (fun () ->
      Ivm_par.set_domains 0;
      Alcotest.(check int) "clamped to 1" 1 (Ivm_par.domains ());
      Ivm_par.set_domains (-3);
      Alcotest.(check int) "negative clamped" 1 (Ivm_par.domains ());
      Ivm_par.set_domains 4;
      Alcotest.(check int) "set to 4" 4 (Ivm_par.domains ());
      Alcotest.(check bool) "not sequential" false (Ivm_par.sequential ()))

let resize_midstream () =
  (* growing and shrinking the pool between batches keeps results right *)
  with_domains 2 (fun () ->
      Alcotest.(check (array int)) "at 2" (expected 25)
        (Ivm_par.parallel_map (squares 25));
      Ivm_par.set_domains 4;
      Alcotest.(check (array int)) "grown to 4" (expected 25)
        (Ivm_par.parallel_map (squares 25));
      Ivm_par.set_domains 1;
      Alcotest.(check (array int)) "shrunk to 1" (expected 25)
        (Ivm_par.parallel_map (squares 25)))

let pool_direct () =
  let pool = Ivm_par.Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Ivm_par.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 3 (Ivm_par.Pool.size pool);
      let hits = Array.make 64 0 in
      Ivm_par.Pool.run_tasks pool ~n:64 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int))
        "every task ran exactly once" (Array.make 64 1) hits);
  (* shutdown is idempotent *)
  Ivm_par.Pool.shutdown pool

let split_merge_roundtrip () =
  (* Par_eval.split partitions; merging the parts restores the relation *)
  let r = Relation.create 2 in
  for i = 0 to 40 do
    Relation.add r (Tuple.of_ints [ i mod 13; i mod 7 ]) ((i mod 3) + 1)
  done;
  let parts = Ivm_eval.Par_eval.split r ~chunks:4 in
  Alcotest.(check bool) "several parts" true (Array.length parts >= 2);
  let whole = Relation.create 2 in
  Ivm_eval.Par_eval.merge ~into:whole parts;
  check_rel "split ∘ merge = id" r whole

(* Regression: DRed rule bodies referencing predicates absent from the
   change set.  Rederivation and insertion thunks build new views for
   every body predicate, so [maintain] must pre-populate a delta slot per
   program predicate — a lazy first touch inside a thunk would be an
   unsynchronized Hashtbl mutation from multiple domains (and once was). *)
let dred_unchanged_preds_parallel () =
  let src =
    {|
      reach(X, Y) :- link(X, Y), allowed(Y).
      reach(X, Y) :- reach(X, Z), link(Z, Y), allowed(Y).
      fallback(X, Y) :- link(X, Y), not allowed(Y).
      allowed(b). allowed(c). allowed(d).
      link(a,b). link(b,c). link(c,d). link(a,c). link(c,e).
    |}
  in
  let check_against_recompute db changes =
    let oracle = Database.copy db in
    List.iter
      (fun (pred, delta) ->
        let stored = Database.relation oracle pred in
        Relation.iter (fun tup c -> Relation.add stored tup c) delta)
      (Ivm.Changes.normalize_base oracle changes);
    Seminaive.evaluate oracle;
    ignore (Ivm.Dred.maintain db changes);
    List.iter
      (fun p ->
        if not (Relation.equal_sets (rel db p) (rel oracle p)) then
          Alcotest.failf "%s: DRed %s <> recomputed %s" p
            (Relation.to_string (rel db p))
            (Relation.to_string (rel oracle p)))
      (Program.derived_preds (Database.program db))
  in
  with_domains 4 (fun () ->
      for _ = 1 to 5 do
        let db = db_of_source src in
        let program = Database.program db in
        check_against_recompute db
          (Ivm.Changes.deletions program "link" [ Tuple.of_strs [ "b"; "c" ] ]);
        check_against_recompute db
          (Ivm.Changes.insertions program "link" [ Tuple.of_strs [ "e"; "d" ] ])
      done)

(* Per-domain work cells lose no increments: identical parallel runs
   count identical work, and [Stats.sync] mirrors the sums into the
   metrics registry. *)
let stats_exact_under_parallel () =
  let module Stats = Ivm_eval.Stats in
  let src =
    {|
      hop(X, Y) :- link(X, Z), link(Z, Y).
      link(a,b). link(b,c). link(c,d). link(b,d). link(d,a).
    |}
  in
  with_domains 4 (fun () ->
      let run () =
        let db = db_of_source src in
        let batch =
          Ivm.Changes.insertions (Database.program db) "link"
            [ Tuple.of_strs [ "d"; "b" ]; Tuple.of_strs [ "a"; "d" ] ]
        in
        Stats.reset ();
        ignore (Ivm.Counting.maintain db batch);
        Stats.snapshot ()
      in
      let a = run () in
      let b = run () in
      Alcotest.(check bool) "work was counted" true (a.Stats.snap_probes > 0);
      Alcotest.(check int) "derivations repeat exactly" a.Stats.snap_derivations
        b.Stats.snap_derivations;
      Alcotest.(check int) "probes repeat exactly" a.Stats.snap_probes
        b.Stats.snap_probes;
      Alcotest.(check int) "scans repeat exactly" a.Stats.snap_tuples_scanned
        b.Stats.snap_tuples_scanned;
      Alcotest.(check int) "rule applications repeat exactly"
        a.Stats.snap_rule_applications b.Stats.snap_rule_applications;
      Stats.sync ();
      Alcotest.(check int) "sync mirrors the registry counter"
        b.Stats.snap_derivations
        (Ivm_obs.Metrics.counter_value
           (Ivm_obs.Metrics.counter "ivm_derivations_total")))

let suite =
  [
    quick "parallel_map keeps task order" results_in_task_order;
    quick "inline fast paths" inline_paths;
    quick "skewed task costs" skewed_tasks;
    quick "exception propagation + reuse" exception_propagates;
    quick "set_domains clamps" set_domains_clamps;
    quick "pool resize between batches" resize_midstream;
    quick "pool direct run_tasks" pool_direct;
    quick "Par_eval split/merge round-trip" split_merge_roundtrip;
    quick "DRed: unchanged body predicates, 4 domains" dred_unchanged_preds_parallel;
    quick "Stats exact + sync under parallel runs" stats_exact_under_parallel;
  ]
