(** Documentation drift tests: the README's shell command reference is
    generated-by-hand but checked-by-machine — its rows must match the
    live `help` output of the built shell, command for command. *)

let read_lines path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

(* Under `dune runtest` the working directory is the build copy of
   test/; under a bare `dune exec test/main.exe` it is the project
   root.  Resolve every artifact against both. *)
let locate candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "none of [%s] exist" (String.concat "; " candidates)

(* ---------------- the shell's help text ---------------- *)

let shell_exe () =
  locate
    [ Filename.concat (Filename.concat ".." "bin") "ivm_shell.exe";
      "_build/default/bin/ivm_shell.exe" ]

let shell_help_lines () =
  let shell_exe = shell_exe () in
  let ic = Unix.open_process_in (Filename.quote_command shell_exe [ "-e"; "help" ]) in
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  let lines = go [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> lines
  | _ -> Alcotest.failf "%s -e help did not exit cleanly" shell_exe

(* A command line of the help text is indented by exactly two spaces and
   separates the command phrase from its description with a run of at
   least two spaces.  Continuation lines are indented deeper and are
   skipped. *)
let is_command_line l =
  String.length l > 2 && l.[0] = ' ' && l.[1] = ' ' && l.[2] <> ' '

let phrase_of_line l =
  let body = String.sub l 2 (String.length l - 2) in
  let n = String.length body in
  let rec split i =
    if i + 1 >= n then body
    else if body.[i] = ' ' && body.[i + 1] = ' ' then String.sub body 0 i
    else split (i + 1)
  in
  String.trim (split 0)

let help_commands () =
  List.filter_map
    (fun l -> if is_command_line l then Some (phrase_of_line l) else None)
    (shell_help_lines ())

(* ---------------- the README's command table ---------------- *)

let readme () = locate [ Filename.concat ".." "README.md"; "README.md" ]
let section_heading = "### Shell command reference"

let readme_commands () =
  let lines = read_lines (readme ()) in
  let rec find = function
    | [] -> Alcotest.failf "README.md has no %S section" section_heading
    | l :: rest -> if String.trim l = section_heading then rest else find rest
  in
  let rec rows acc = function
    | [] -> List.rev acc
    | l :: _ when String.length l > 0 && l.[0] = '#' -> List.rev acc
    | l :: rest ->
      let acc =
        if String.length l > 3 && String.sub l 0 3 = "| `" then
          match String.index_from_opt l 3 '`' with
          | Some close -> String.sub l 3 (close - 3) :: acc
          | None -> Alcotest.failf "unterminated command cell in README row %S" l
        else acc
      in
      rows acc rest
  in
  rows [] (find lines)

(* ---------------- the tests ---------------- *)

let test_command_table_matches_help () =
  let from_help = help_commands () in
  let from_readme = readme_commands () in
  Alcotest.(check bool) "help lists commands" true (List.length from_help > 10);
  Alcotest.(check (list string))
    "README shell command table = shell `help` output (same commands, same order)"
    from_help from_readme

let test_monitor_commands_documented () =
  (* The monitoring/EXPLAIN surface must stay in the shell's help (and
     hence, via the table check above, in the README). *)
  let from_help = help_commands () in
  List.iter
    (fun cmd ->
      Alcotest.(check bool) (Printf.sprintf "help lists %S" cmd) true
        (List.mem cmd from_help))
    [ "explain last"; "explain N"; "provenance on/off/status"; "why FACT.";
      "why not FACT."; "lineage FACT."; "monitor start PORT"; "monitor stop" ];
  (* and the README's observability section documents the endpoints *)
  let text = String.concat "\n" (read_lines (readme ())) in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "README mentions %s" needle) true
      (let nl = String.length needle and tl = String.length text in
       let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
       at 0)
  in
  List.iter has
    [ "--monitor"; "/metrics"; "/healthz"; "/statusz"; "/trace"; "/requestz";
      "/why"; "IVM_ATTRIBUTION"; "IVM_SLOW_BATCH_MS"; "IVM_PROV_MAX_SUPPORTS";
      "IVM_REQTRACE"; "IVM_SLOW_REQUEST_MS"; "--timings" ]

let test_readme_mentions_docs () =
  (* The persistence spec the README and ARCHITECTURE.md point at must
     exist and describe both magic numbers. *)
  let spec =
    locate
      [ Filename.concat (Filename.concat ".." "docs") "PERSISTENCE.md";
        "docs/PERSISTENCE.md" ]
  in
  let text = String.concat "\n" (read_lines spec) in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "PERSISTENCE.md mentions %s" needle) true
      (let nl = String.length needle and tl = String.length text in
       let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
       at 0)
  in
  List.iter has [ "IVMSNAP1"; "IVMWAL01"; "0xEDB88320"; "0xCBF43926" ]

let test_statecheck_vocabulary_documented () =
  (* Every command the statecheck harness can generate prints as shell
     syntax whose help phrase must exist verbatim in `help` (and hence,
     via the table check above, in the README): a failing trace is a
     replayable script only while this holds. *)
  let from_help = help_commands () in
  List.iter
    (fun cmd ->
      Alcotest.(check bool)
        (Printf.sprintf "statecheck command %S documented in help" cmd)
        true (List.mem cmd from_help))
    Ivm_statecheck.Cmd.vocabulary

(* ---------------- the protocol spec (docs/PROTOCOL.md) ---------------- *)

module Protocol = Ivm_serve.Protocol

let protocol_spec () =
  locate
    [ Filename.concat (Filename.concat ".." "docs") "PROTOCOL.md";
      "docs/PROTOCOL.md" ]

(* Lines of one "## N. Title" section of the spec. *)
let spec_section heading =
  let lines = read_lines (protocol_spec ()) in
  let rec find = function
    | [] -> Alcotest.failf "PROTOCOL.md has no %S section" heading
    | l :: rest -> if String.trim l = heading then rest else find rest
  in
  let rec take acc = function
    | [] -> List.rev acc
    | l :: _ when String.length l > 2 && String.sub l 0 3 = "## " -> List.rev acc
    | l :: rest -> take (l :: acc) rest
  in
  take [] (find lines)

(* First two backtick-quoted cells of a markdown table row. *)
let row_cells l =
  if String.length l < 2 || String.sub l 0 2 <> "| " then None
  else
    match String.split_on_char '`' l with
    | _ :: first :: _ :: second :: _ -> Some (first, second)
    | _ -> None

let test_opcode_table_matches_protocol () =
  let from_spec =
    List.filter_map
      (fun l ->
        match row_cells l with
        | Some (code, name) when String.length code > 2 && String.sub code 0 2 = "0x"
          -> Some (int_of_string code, name)
        | _ -> None)
      (spec_section "## 3. Opcodes")
  in
  Alcotest.(check (list (pair int string)))
    "PROTOCOL.md §3 opcode table = Protocol.opcodes (same rows, same order)"
    Protocol.opcodes from_spec

let test_error_table_matches_protocol () =
  let from_spec =
    List.filter_map
      (fun l ->
        match row_cells l with
        | Some (code, name) -> (
          match int_of_string_opt code with
          | Some c -> Some (c, name)
          | None -> None)
        | _ -> None)
      (spec_section "## 6. Error codes")
  in
  let from_code =
    List.filter_map
      (fun c ->
        Option.map
          (fun e -> (c, Protocol.error_code_name e))
          (Protocol.error_code_of_int c))
      (List.init 32 Fun.id)
  in
  Alcotest.(check (list (pair int string)))
    "PROTOCOL.md §6 error table = Protocol error codes" from_code from_spec

(* One sample message per opcode; encoding and re-decoding each proves
   every opcode the spec lists is live in the real codec. *)
let sample_messages : (int * string) list =
  let rel = Ivm_relation.Relation.of_list 1 [] in
  let requests =
    [ Protocol.Hello { version = Protocol.version; token = "t" };
      Protocol.Ping;
      Protocol.Query { body = "p(X)"; trace = "" };
      Protocol.Apply { changes = [ ("p", rel) ]; trace = "" };
      Protocol.Subscribe "v"; Protocol.Status; Protocol.Close ]
  in
  let responses =
    [ Protocol.Hello_ok { version = Protocol.version; seq = 7 };
      Protocol.Pong;
      Protocol.Answer { columns = [ "X" ]; rows = rel };
      Protocol.Applied { seq = 7; deltas = [ ("v", rel) ]; timings = [] };
      Protocol.Sub_ok "v"; Protocol.Status_reply "{}"; Protocol.Bye;
      Protocol.Delta { seq = 7; pred = "v"; delta = rel };
      Protocol.Error { code = Protocol.Internal; message = "m" } ]
  in
  List.map
    (fun r ->
      let payload = Protocol.encode_request r in
      (* decode must succeed and preserve the opcode; semantic equality
         is the serve suite's QCheck property *)
      if
        Protocol.opcode_of_request (Protocol.decode_request payload)
        <> Protocol.opcode_of_request r
      then
        Alcotest.failf "request opcode 0x%02x did not round-trip"
          (Protocol.opcode_of_request r);
      (Protocol.opcode_of_request r, payload))
    requests
  @ List.map
      (fun r ->
        let payload = Protocol.encode_response r in
        if
          Protocol.opcode_of_response (Protocol.decode_response payload)
          <> Protocol.opcode_of_response r
        then
          Alcotest.failf "response opcode 0x%02x did not round-trip"
            (Protocol.opcode_of_response r);
        (Protocol.opcode_of_response r, payload))
      responses

let test_every_spec_opcode_roundtrips () =
  let covered = List.map fst sample_messages in
  List.iter
    (fun (code, name) ->
      Alcotest.(check bool)
        (Printf.sprintf "spec opcode 0x%02x (%s) round-trips through the codec"
           code name)
        true (List.mem code covered))
    Protocol.opcodes;
  (* and the codec has no opcodes the spec forgot *)
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "codec opcode 0x%02x is in the spec table" code)
        true
        (List.mem_assoc code Protocol.opcodes))
    covered

(* The §9 trace-context spec must name every stage the implementation
   can put in a request's chain — a renamed or added stage without a
   spec update fails here. *)
let test_trace_context_section_tracks_stages () =
  let text =
    String.concat "\n"
      (spec_section "## 9. Trace context (optional, backward compatible)")
  in
  let has needle =
    Alcotest.(check bool)
      (Printf.sprintf "PROTOCOL.md §9 mentions stage %s" needle)
      true
      (let nl = String.length needle and tl = String.length text in
       let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
       at 0)
  in
  List.iter has Ivm_obs.Reqtrace.apply_stages;
  List.iter has Ivm_obs.Reqtrace.query_stages;
  has "/requestz"

(* ---------------- the client's command table ---------------- *)

let client_exe () =
  locate
    [ Filename.concat (Filename.concat ".." "bin") "ivm_client.exe";
      "_build/default/bin/ivm_client.exe" ]

(* `help` must work offline — the client only connects on demand. *)
let client_help_commands () =
  let exe = client_exe () in
  let ic = Unix.open_process_in (Filename.quote_command exe [ "-e"; "help" ]) in
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  let lines = go [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 ->
    List.filter_map
      (fun l -> if is_command_line l then Some (phrase_of_line l) else None)
      lines
  | _ -> Alcotest.failf "%s -e help did not exit cleanly (offline)" exe

let client_section_heading = "### Server client commands"

let client_readme_commands () =
  let lines = read_lines (readme ()) in
  let rec find = function
    | [] -> Alcotest.failf "README.md has no %S section" client_section_heading
    | l :: rest -> if String.trim l = client_section_heading then rest else find rest
  in
  let rec rows acc = function
    | [] -> List.rev acc
    | l :: _ when String.length l > 0 && l.[0] = '#' -> List.rev acc
    | l :: rest ->
      let acc =
        if String.length l > 3 && String.sub l 0 3 = "| `" then
          match String.index_from_opt l 3 '`' with
          | Some close -> String.sub l 3 (close - 3) :: acc
          | None -> Alcotest.failf "unterminated command cell in README row %S" l
        else acc
      in
      rows acc rest
  in
  rows [] (find lines)

let test_client_table_matches_help () =
  let from_help = client_help_commands () in
  let from_readme = client_readme_commands () in
  Alcotest.(check bool) "client help lists commands" true
    (List.length from_help >= 8);
  Alcotest.(check (list string))
    "README server-client table = ivm-client `help` output (same commands, \
     same order)"
    from_help from_readme

let suite =
  [
    Alcotest.test_case "shell command table tracks help" `Quick
      test_command_table_matches_help;
    Alcotest.test_case "protocol spec opcode table tracks the codec" `Quick
      test_opcode_table_matches_protocol;
    Alcotest.test_case "protocol spec error table tracks the codec" `Quick
      test_error_table_matches_protocol;
    Alcotest.test_case "every spec opcode round-trips" `Quick
      test_every_spec_opcode_roundtrips;
    Alcotest.test_case "trace-context spec tracks the stage chain" `Quick
      test_trace_context_section_tracks_stages;
    Alcotest.test_case "client command table tracks help" `Quick
      test_client_table_matches_help;
    Alcotest.test_case "statecheck vocabulary tracks help" `Quick
      test_statecheck_vocabulary_documented;
    Alcotest.test_case "monitor + explain commands documented" `Quick
      test_monitor_commands_documented;
    Alcotest.test_case "persistence spec present and specific" `Quick
      test_readme_mentions_docs;
  ]
