(** Documentation drift tests: the README's shell command reference is
    generated-by-hand but checked-by-machine — its rows must match the
    live `help` output of the built shell, command for command. *)

let read_lines path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

(* Under `dune runtest` the working directory is the build copy of
   test/; under a bare `dune exec test/main.exe` it is the project
   root.  Resolve every artifact against both. *)
let locate candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "none of [%s] exist" (String.concat "; " candidates)

(* ---------------- the shell's help text ---------------- *)

let shell_exe () =
  locate
    [ Filename.concat (Filename.concat ".." "bin") "ivm_shell.exe";
      "_build/default/bin/ivm_shell.exe" ]

let shell_help_lines () =
  let shell_exe = shell_exe () in
  let ic = Unix.open_process_in (Filename.quote_command shell_exe [ "-e"; "help" ]) in
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  let lines = go [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> lines
  | _ -> Alcotest.failf "%s -e help did not exit cleanly" shell_exe

(* A command line of the help text is indented by exactly two spaces and
   separates the command phrase from its description with a run of at
   least two spaces.  Continuation lines are indented deeper and are
   skipped. *)
let is_command_line l =
  String.length l > 2 && l.[0] = ' ' && l.[1] = ' ' && l.[2] <> ' '

let phrase_of_line l =
  let body = String.sub l 2 (String.length l - 2) in
  let n = String.length body in
  let rec split i =
    if i + 1 >= n then body
    else if body.[i] = ' ' && body.[i + 1] = ' ' then String.sub body 0 i
    else split (i + 1)
  in
  String.trim (split 0)

let help_commands () =
  List.filter_map
    (fun l -> if is_command_line l then Some (phrase_of_line l) else None)
    (shell_help_lines ())

(* ---------------- the README's command table ---------------- *)

let readme () = locate [ Filename.concat ".." "README.md"; "README.md" ]
let section_heading = "### Shell command reference"

let readme_commands () =
  let lines = read_lines (readme ()) in
  let rec find = function
    | [] -> Alcotest.failf "README.md has no %S section" section_heading
    | l :: rest -> if String.trim l = section_heading then rest else find rest
  in
  let rec rows acc = function
    | [] -> List.rev acc
    | l :: _ when String.length l > 0 && l.[0] = '#' -> List.rev acc
    | l :: rest ->
      let acc =
        if String.length l > 3 && String.sub l 0 3 = "| `" then
          match String.index_from_opt l 3 '`' with
          | Some close -> String.sub l 3 (close - 3) :: acc
          | None -> Alcotest.failf "unterminated command cell in README row %S" l
        else acc
      in
      rows acc rest
  in
  rows [] (find lines)

(* ---------------- the tests ---------------- *)

let test_command_table_matches_help () =
  let from_help = help_commands () in
  let from_readme = readme_commands () in
  Alcotest.(check bool) "help lists commands" true (List.length from_help > 10);
  Alcotest.(check (list string))
    "README shell command table = shell `help` output (same commands, same order)"
    from_help from_readme

let test_monitor_commands_documented () =
  (* The monitoring/EXPLAIN surface must stay in the shell's help (and
     hence, via the table check above, in the README). *)
  let from_help = help_commands () in
  List.iter
    (fun cmd ->
      Alcotest.(check bool) (Printf.sprintf "help lists %S" cmd) true
        (List.mem cmd from_help))
    [ "explain last"; "explain N"; "provenance on/off/status"; "why FACT.";
      "why not FACT."; "lineage FACT."; "monitor start PORT"; "monitor stop" ];
  (* and the README's observability section documents the endpoints *)
  let text = String.concat "\n" (read_lines (readme ())) in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "README mentions %s" needle) true
      (let nl = String.length needle and tl = String.length text in
       let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
       at 0)
  in
  List.iter has
    [ "--monitor"; "/metrics"; "/healthz"; "/statusz"; "/trace"; "/why";
      "IVM_ATTRIBUTION"; "IVM_SLOW_BATCH_MS"; "IVM_PROV_MAX_SUPPORTS" ]

let test_readme_mentions_docs () =
  (* The persistence spec the README and ARCHITECTURE.md point at must
     exist and describe both magic numbers. *)
  let spec =
    locate
      [ Filename.concat (Filename.concat ".." "docs") "PERSISTENCE.md";
        "docs/PERSISTENCE.md" ]
  in
  let text = String.concat "\n" (read_lines spec) in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "PERSISTENCE.md mentions %s" needle) true
      (let nl = String.length needle and tl = String.length text in
       let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
       at 0)
  in
  List.iter has [ "IVMSNAP1"; "IVMWAL01"; "0xEDB88320"; "0xCBF43926" ]

let test_statecheck_vocabulary_documented () =
  (* Every command the statecheck harness can generate prints as shell
     syntax whose help phrase must exist verbatim in `help` (and hence,
     via the table check above, in the README): a failing trace is a
     replayable script only while this holds. *)
  let from_help = help_commands () in
  List.iter
    (fun cmd ->
      Alcotest.(check bool)
        (Printf.sprintf "statecheck command %S documented in help" cmd)
        true (List.mem cmd from_help))
    Ivm_statecheck.Cmd.vocabulary

let suite =
  [
    Alcotest.test_case "shell command table tracks help" `Quick
      test_command_table_matches_help;
    Alcotest.test_case "statecheck vocabulary tracks help" `Quick
      test_statecheck_vocabulary_documented;
    Alcotest.test_case "monitor + explain commands documented" `Quick
      test_monitor_commands_documented;
    Alcotest.test_case "persistence spec present and specific" `Quick
      test_readme_mentions_docs;
  ]
