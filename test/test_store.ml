(** The durable layer ([ivm_store]) and its recovery invariant.

    Units: CRC-32 check values, wire-codec round-trips, snapshot
    save/load identity (including aggregate indexes, distinct views and
    duplicate semantics), WAL append/scan, corruption detection.

    The headline property is fault injection: build a durable manager,
    stream random batches at it, truncate the log at a {e random byte
    offset} (simulating a crash mid-write), recover, and demand the
    recovered state equal a fresh manager that applied exactly the
    batches whose log frames survived — no more, no fewer. *)

open Util
module Crc32 = Ivm_wire.Crc32
module Wire = Ivm_wire.Wire
module Snapshot = Ivm_store.Snapshot
module Wal = Ivm_store.Wal
module Store = Ivm_store.Store
module Vm = Ivm.View_manager
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen
module Programs = Ivm_workload.Programs

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                  *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

(** A fresh scratch directory; removed when [f] returns or raises. *)
let with_dir (f : string -> 'a) : 'a =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivm_store_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* CRC-32 and the wire codec                                            *)
(* ------------------------------------------------------------------ *)

let crc_check_values () =
  Alcotest.(check int32) "empty" 0l (Crc32.digest "");
  (* the standard CRC-32/IEEE check value *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.digest "123456789");
  let s = "incremental view maintenance" in
  Alcotest.(check int32) "incremental = one-shot"
    (Crc32.digest s)
    (Crc32.update (Crc32.update 0l s 0 11) s 11 (String.length s - 11))

let wire_value_roundtrip () =
  let values =
    [ Value.int 0; Value.int (-42); Value.int max_int;
      Value.float 0.1; Value.float (-1e300); Value.float Float.infinity;
      Value.str ""; Value.str "with \"escapes\"\n\000";
      Value.bool true; Value.bool false ]
  in
  let buf = Buffer.create 64 in
  List.iter (Wire.put_value buf) values;
  let r = Wire.reader (Buffer.contents buf) in
  List.iter
    (fun v ->
      let v' = Wire.get_value r in
      if Value.compare v v' <> 0 then
        Alcotest.failf "wire round-trip changed %s to %s" (Value.to_string v)
          (Value.to_string v'))
    values;
  Alcotest.(check int) "no trailing bytes" 0 (Wire.remaining r)

let wire_relation_roundtrip () =
  let rel = rel_of_pairs "ab; ac 3; bc 2" in
  let buf = Buffer.create 64 in
  Wire.put_relation buf rel;
  let r = Wire.reader (Buffer.contents buf) in
  check_rel "relation round-trips with counts" rel (Wire.get_relation r)

let wire_rejects_truncation () =
  let buf = Buffer.create 64 in
  Wire.put_string buf "hello world";
  let s = Buffer.contents buf in
  let r = Wire.reader (String.sub s 0 (String.length s - 3)) in
  match Wire.get_string r with
  | _ -> Alcotest.fail "truncated string decoded"
  | exception Wire.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Snapshot                                                             *)
(* ------------------------------------------------------------------ *)

let snapshot_source =
  {|
    link(a, b). link(b, c). link(c, d). link(a, d).
    hop(X, Y) :- link(X, Z), link(Z, Y).
    out_deg(X, N) :- groupby(link(X, Y), [X], N = count()).
    far(X) :- hop(X, Y), not link(X, Y).
  |}

let snapshot_roundtrip () =
  let db = db_of_source snapshot_source in
  let s = Snapshot.encode ~seq:7 db in
  let db2, seq = Snapshot.decode s in
  Alcotest.(check int) "sequence survives" 7 seq;
  Alcotest.(check bool) "state survives" true (Database.agree db db2);
  (* the snapshot is byte-stable: same state, same bytes *)
  Alcotest.(check string) "deterministic encoding" s (Snapshot.encode ~seq:7 db2)

let snapshot_duplicate_semantics () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        link(a, b). link(a, b). link(b, c).
        hop(X, Y) :- link(X, Z), link(Z, Y).
      |}
  in
  let db2, _ = Snapshot.decode (Snapshot.encode ~seq:0 db) in
  Alcotest.(check bool) "duplicate counts survive" true (Database.agree db db2);
  check_rel "hop multiplicity 2" (rel_of_pairs "ac 2")
    (Database.relation db2 "hop")

let snapshot_agg_indexes () =
  let db = db_of_source snapshot_source in
  List.iter
    (fun rule ->
      List.iter
        (fun lit ->
          match lit with
          | Ast.Lagg agg ->
            ignore
              (Database.register_agg_index db
                 (Ivm_eval.Compile.compile_agg_spec agg))
          | _ -> ())
        rule.Ast.body)
    (Program.rules (Database.program db));
  let db2, _ = Snapshot.decode (Snapshot.encode ~seq:0 db) in
  Alcotest.(check (list string))
    "registered aggregate indexes survive the round-trip"
    (Database.agg_signatures db) (Database.agg_signatures db2)

let snapshot_detects_corruption () =
  with_dir (fun dir ->
      let db = db_of_source snapshot_source in
      let path = Filename.concat dir "snap" in
      ignore (Snapshot.save ~path ~seq:1 db);
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      let broken = Bytes.of_string bytes in
      let mid = Bytes.length broken / 2 in
      Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc broken);
      match Snapshot.load ~path with
      | _ -> Alcotest.fail "corrupt snapshot loaded"
      | exception Snapshot.Corrupt _ -> ())

(* ------------------------------------------------------------------ *)
(* Store protocol                                                       *)
(* ------------------------------------------------------------------ *)

let initialize_twice_refused () =
  with_dir (fun dir ->
      let db = db_of_source snapshot_source in
      let s = Store.initialize ~dir db in
      Store.close s;
      match Store.initialize ~dir db with
      | _ -> Alcotest.fail "re-initialize over an existing store"
      | exception Invalid_argument _ -> ())

let open_missing_refused () =
  with_dir (fun dir ->
      match Store.open_ ~dir:(Filename.concat dir "nowhere") with
      | _ -> Alcotest.fail "opened a non-store"
      | exception Store.Corrupt _ -> ())

(* Crash between [Snapshot.save] and [Wal.reset] during compaction: the
   log still holds records the new snapshot already covers.  Recovery
   must skip them by sequence number instead of replaying them twice. *)
let compaction_crash_skips_covered_records () =
  with_dir (fun dir ->
      let vm = Vm.of_source ~durable:dir snapshot_source in
      ignore (Vm.insert vm "link" (pairs "bd"));
      ignore (Vm.delete vm "link" (pairs "ad"));
      let db = Vm.database vm in
      (* the first half of compaction, then "crash" before the log reset *)
      ignore (Snapshot.save ~path:(Store.snapshot_file dir) ~seq:2 db);
      Vm.close_store vm;
      let vm2, recovery = Vm.open_durable dir in
      Alcotest.(check int) "both records skipped" 2 recovery.Store.skipped_records;
      Alcotest.(check int) "nothing replayed" 0
        (List.length recovery.Store.replayed);
      Alcotest.(check bool) "state agrees" true
        (Database.agree db (Vm.database vm2));
      Vm.close_store vm2)

(* ------------------------------------------------------------------ *)
(* Crash-recovery fault injection                                       *)
(* ------------------------------------------------------------------ *)

let q ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen =
  QCheck.Gen.(map (fun s -> s) (int_range 1 1_000_000))
  |> QCheck.make ~print:(Printf.sprintf "seed=%d")

(** Build a durable manager over a random graph, apply [steps] random
    batches recording where each log frame ends, and return the initial
    tuples, the batches, and the frame end offsets. *)
let durable_run ~dir rng ~nodes ~edges ~steps =
  let tuples = Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges) in
  let vm =
    Vm.create ~durable:dir
      ~facts:[ ("link", tuples) ]
      (Parser.parse_rules Ivm_workload.Programs.hop_tri_hop)
  in
  let batches = ref [] and offsets = ref [] in
  for _ = 1 to steps do
    let changes =
      Update_gen.mixed rng (Vm.database vm) "link" ~nodes
        ~dels:(Prng.int rng 3) ~ins:(Prng.int rng 4)
    in
    ignore (Vm.apply vm changes);
    batches := changes :: !batches;
    let st = Option.get (Vm.store_status vm) in
    offsets := st.Store.wal_bytes :: !offsets
  done;
  Vm.close_store vm;
  (tuples, List.rev !batches, List.rev !offsets)

let oracle ~tuples batches =
  let vm =
    Vm.create
      ~facts:[ ("link", tuples) ]
      (Parser.parse_rules Ivm_workload.Programs.hop_tri_hop)
  in
  List.iter (fun c -> ignore (Vm.apply vm c)) batches;
  vm

let crash_recovery_prop =
  q ~count:40 "truncate log at a random offset, recover = surviving prefix"
    seed_gen
    (fun seed ->
      with_dir (fun dir ->
          let rng = Prng.create seed in
          let nodes = 8 and edges = 14 and steps = 5 in
          let tuples, batches, offsets =
            durable_run ~dir rng ~nodes ~edges ~steps
          in
          let wal = Store.wal_file dir in
          let size = (Unix.stat wal).Unix.st_size in
          (* cut anywhere from just after the header to the full file *)
          let cut = Wal.header_size + Prng.int rng (size - Wal.header_size + 1) in
          Unix.truncate wal cut;
          let survivors =
            List.length (List.filter (fun o -> o <= cut) offsets)
          in
          let vm, recovery = Vm.open_durable dir in
          let expected = oracle ~tuples (List.filteri (fun i _ -> i < survivors) batches) in
          let ok =
            List.length recovery.Store.replayed = survivors
            && Database.agree (Vm.database expected) (Vm.database vm)
          in
          Vm.close_store vm;
          ok))

(* Flipping one byte inside a record must drop that record and everything
   after it (the scan cannot trust frame boundaries past a bad CRC), and
   recovery must land exactly on the preceding prefix. *)
let corruption_recovery_prop =
  q ~count:40 "flip a log byte, recover = prefix before the damage"
    seed_gen
    (fun seed ->
      with_dir (fun dir ->
          let rng = Prng.create seed in
          let nodes = 8 and edges = 14 and steps = 5 in
          let tuples, batches, offsets =
            durable_run ~dir rng ~nodes ~edges ~steps
          in
          let wal = Store.wal_file dir in
          let size = (Unix.stat wal).Unix.st_size in
          let pos = Wal.header_size + Prng.int rng (size - Wal.header_size) in
          let fd = Unix.openfile wal [ Unix.O_RDWR ] 0 in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5A));
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1);
          Unix.close fd;
          (* the flip lands inside the first non-surviving frame: the scan
             stops there, so exactly the frames before it replay *)
          let survivors =
            List.length (List.filter (fun o -> o <= pos) offsets)
          in
          let vm, recovery = Vm.open_durable dir in
          let expected = oracle ~tuples (List.filteri (fun i _ -> i < survivors) batches) in
          let ok =
            List.length recovery.Store.replayed = survivors
            && recovery.Store.damage <> None
            && Database.agree (Vm.database expected) (Vm.database vm)
          in
          Vm.close_store vm;
          ok))

(* ------------------------------------------------------------------ *)
(* End-to-end durability through the manager                            *)
(* ------------------------------------------------------------------ *)

let reopen_after_rule_change () =
  with_dir (fun dir ->
      let vm = Vm.of_source ~durable:dir snapshot_source in
      ignore (Vm.insert vm "link" (pairs "bd"));
      Vm.add_rule_text vm "far2(X, Y) :- hop(X, Z), hop(Z, Y).";
      ignore (Vm.insert vm "link" (pairs "db"));
      Vm.close_store vm;
      let vm2, _ = Vm.open_durable dir in
      Alcotest.(check bool) "rule change + later batches survive" true
        (Database.agree (Vm.database vm) (Vm.database vm2));
      Alcotest.(check bool) "the added view is defined after reopen" true
        (List.mem "far2" (Program.derived_preds (Vm.program vm2)));
      Vm.close_store vm2)

let compact_then_reopen () =
  with_dir (fun dir ->
      let vm = Vm.of_source ~durable:dir snapshot_source in
      ignore (Vm.insert vm "link" (pairs "bd"));
      ignore (Vm.delete vm "link" (pairs "ab"));
      Vm.compact vm;
      let st = Option.get (Vm.store_status vm) in
      Alcotest.(check int) "log empty after compaction" 0 st.Store.wal_records;
      ignore (Vm.insert vm "link" (pairs "ab"));
      Vm.close_store vm;
      let vm2, recovery = Vm.open_durable dir in
      Alcotest.(check int) "only the post-compaction record replays" 1
        (List.length recovery.Store.replayed);
      Alcotest.(check bool) "state agrees" true
        (Database.agree (Vm.database vm) (Vm.database vm2));
      Vm.close_store vm2)

let suite =
  [
    quick "crc32 check values" crc_check_values;
    quick "wire: values round-trip" wire_value_roundtrip;
    quick "wire: relations round-trip" wire_relation_roundtrip;
    quick "wire: truncation detected" wire_rejects_truncation;
    quick "snapshot: round-trip" snapshot_roundtrip;
    quick "snapshot: duplicate semantics" snapshot_duplicate_semantics;
    quick "snapshot: aggregate indexes" snapshot_agg_indexes;
    quick "snapshot: corruption detected" snapshot_detects_corruption;
    quick "store: initialize twice refused" initialize_twice_refused;
    quick "store: open missing refused" open_missing_refused;
    quick "store: compaction crash skips covered records"
      compaction_crash_skips_covered_records;
    quick "manager: rule change survives reopen" reopen_after_rule_change;
    quick "manager: compact then reopen" compact_then_reopen;
    crash_recovery_prop;
    corruption_recovery_prop;
  ]
