(** The counting algorithm (Algorithm 4.1): the paper's worked maintenance
    examples and equivalence with recomputation. *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting

let find_delta report pred =
  match List.assoc_opt pred report.Counting.view_deltas with
  | Some r -> r
  | None -> Relation.create 2

let find_propagated report pred =
  match List.assoc_opt pred report.Counting.propagated_deltas with
  | Some r -> r
  | None -> Relation.create 2

let example_4_2_source =
  {|
    hop(X, Y) :- link(X, Z) & link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).
    link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
  |}

let example_4_2_changes db =
  Changes.of_list
    (Database.program db)
    [
      ( "link",
        [
          (Tuple.of_strs [ "a"; "b" ], -1);
          (Tuple.of_strs [ "d"; "f" ], 1);
          (Tuple.of_strs [ "a"; "f" ], 1);
        ] );
    ]

(* Example 4.2, duplicate semantics: Δ(link) = {ab −1, df, af};
   Δ(hop) = {ac −1, af, ag, dg}; Δ(tri_hop) = {ah −1, ag}. *)
let example_4_2 () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics example_4_2_source
  in
  let report = Counting.maintain db (example_4_2_changes db) in
  check_rel "Δhop" (rel_of_pairs "ac -1; af; ag; dg") (find_delta report "hop");
  check_rel "Δtri_hop" (rel_of_pairs "ah -1; ag") (find_delta report "tri_hop");
  check_rel "hop after" (rel_of_pairs "ac; af; ag; dg; dh; bh") (rel db "hop");
  check_rel "tri_hop after" (rel_of_pairs "ah; ag") (rel db "tri_hop")

(* Example 5.1, set semantics: the optimization of statement (2) propagates
   Δ(hop) = {af, ag, dg} — the tuple (ac −1) does not cascade, so (ah −1)
   is never derived for tri_hop. *)
let example_5_1 () =
  let db = db_of_source ~semantics:Database.Set_semantics example_4_2_source in
  let report = Counting.maintain db (example_4_2_changes db) in
  check_rel "propagated Δhop" (rel_of_pairs "af; ag; dg")
    (find_propagated report "hop");
  check_rel "Δtri_hop" (rel_of_pairs "ag") (find_delta report "tri_hop");
  (* hop(a,c) is still true — it has one remaining derivation. *)
  Alcotest.(check bool)
    "hop(a,c) survives" true
    (Relation.mem (rel db "hop") (Tuple.of_strs [ "a"; "c" ]));
  check_rel ~counted:false "tri_hop after" (rel_of_pairs "ah; ag")
    (rel db "tri_hop")

(* Example 1.1: deleting link(a,b) removes hop(a,e) but keeps hop(a,c). *)
let example_1_1_deletion () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).
      |}
  in
  let changes = Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "a"; "b" ] ] in
  let report = Counting.maintain db changes in
  check_rel "Δhop" (rel_of_pairs "ac -1; ae -1") (find_delta report "hop");
  check_rel "hop after" (rel_of_pairs "ac") (rel db "hop")

(** Oracle: apply the base changes directly and re-evaluate from scratch;
    compare all derived relations. *)
let against_recompute ?(semantics = Database.Set_semantics) src changes_spec () =
  let db = db_of_source ~semantics src in
  let changes = Changes.of_list (Database.program db) changes_spec in
  let oracle = Database.copy db in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base oracle changes);
  Seminaive.evaluate oracle;
  ignore (Counting.maintain db changes);
  List.iter
    (fun p ->
      let eq =
        match semantics with
        | Database.Set_semantics -> Relation.equal_counted
        | Database.Duplicate_semantics -> Relation.equal_counted
      in
      if not (eq (rel db p) (rel oracle p)) then
        Alcotest.failf "%s: incremental %s <> recomputed %s" p
          (Relation.to_string (rel db p))
          (Relation.to_string (rel oracle p)))
    (Program.derived_preds (Database.program db))

let negation_source =
  {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    tri_hop(X, Y) :- hop(X, Z), link(Z, Y).
    only_tri_hop(X, Y) :- tri_hop(X, Y), not hop(X, Y).
    link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d).
    link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).
  |}

(* Inserting link(a,k)? no — make hop(a,k) true by inserting link(k,k)?
   Insert link(a,x),link(x,k): hop(a,k) becomes true, so only_tri_hop(a,k)
   must disappear even though tri_hop(a,k) still holds. *)
let negation_insertion_kills_view () =
  let db = db_of_source ~semantics:Database.Duplicate_semantics negation_source in
  let changes =
    Changes.insertions (Database.program db) "link"
      [ Tuple.of_strs [ "a"; "x" ]; Tuple.of_strs [ "x"; "k" ] ]
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "only_tri_hop(a,k) gone" false
    (Relation.mem (rel db "only_tri_hop") (Tuple.of_strs [ "a"; "k" ]))

let negation_deletion_revives_view () =
  let db = db_of_source ~semantics:Database.Duplicate_semantics negation_source in
  (* hop(a,d) has two derivations (via e and f); tri_hop(a,d) holds via
     hop(a,c)&link(c,d).  Deleting link(a,e) and link(a,f) kills hop(a,d),
     so only_tri_hop(a,d) must appear. *)
  let changes =
    Changes.deletions (Database.program db) "link"
      [ Tuple.of_strs [ "a"; "e" ]; Tuple.of_strs [ "a"; "f" ] ]
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "only_tri_hop(a,d) appears" true
    (Relation.mem (rel db "only_tri_hop") (Tuple.of_strs [ "a"; "d" ]))

let aggregation_source =
  {|
    hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
    min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
    link(a,b,1). link(b,c,2). link(b,e,5). link(a,d,4). link(d,c,1).
  |}

let tup3 s d c = Tuple.of_list Value.[ str s; str d; int c ]

let aggregation_min_updates () =
  let db = db_of_source aggregation_source in
  (* new cheap route a→f→c of cost 2 beats the old min 3 *)
  let changes =
    Changes.insertions (Database.program db) "link"
      [ tup3 "a" "f" 1; tup3 "f" "c" 1 ]
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "min(a,c) = 2" true
    (Relation.mem (rel db "min_cost_hop") (tup3 "a" "c" 2));
  Alcotest.(check bool)
    "old min gone" false
    (Relation.mem (rel db "min_cost_hop") (tup3 "a" "c" 3));
  (* deleting the cheap route restores the old minimum *)
  let changes =
    Changes.deletions (Database.program db) "link" [ tup3 "f" "c" 1 ]
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "min back to 3" true
    (Relation.mem (rel db "min_cost_hop") (tup3 "a" "c" 3))

let aggregation_group_disappears () =
  let db = db_of_source aggregation_source in
  let changes =
    Changes.deletions (Database.program db) "link"
      [ tup3 "b" "e" 5 ]
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "group (a,e) dropped" false
    (Relation.exists (fun t _ -> Value.equal (Tuple.get t 1) (Value.str "e")) (rel db "min_cost_hop"))

(* Counting is optimal (Theorem 4.1): an update that does not change any
   view produces no view deltas and, with set semantics, cascades nothing
   upward. *)
let no_change_no_work () =
  let db = db_of_source ~semantics:Database.Set_semantics example_4_2_source in
  (* hop(a,c) has two derivations; deleting a·b kills one, hop unchanged as
     a set, so tri_hop sees nothing. *)
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "a"; "b" ] ]
  in
  let report = Counting.maintain db changes in
  Alcotest.(check bool)
    "no tri_hop delta" true
    (Relation.is_empty (find_delta report "tri_hop"))

(* Recursive programs are rejected. *)
let rejects_recursion () =
  let db =
    db_of_source
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        link(a,b).
      |}
  in
  let changes =
    Changes.insertions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]
  in
  Alcotest.check_raises "recursive rejected"
    (Counting.Recursive_program
       "predicate path is recursive; the counting algorithm handles \
        nonrecursive views — use DRed for recursive views")
    (fun () -> ignore (Counting.maintain db changes))

(* Invalid changes are rejected. *)
let rejects_bad_deletion () =
  let db = db_of_source ~semantics:Database.Set_semantics example_4_2_source in
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "z"; "z" ] ]
  in
  (try
     ignore (Counting.maintain db changes);
     Alcotest.fail "expected Invalid_changes"
   with Changes.Invalid_changes _ -> ());
  let changes =
    Changes.insertions (Database.program db) "hop" [ Tuple.of_strs [ "z"; "z" ] ]
  in
  try
    ignore (Counting.maintain db changes);
    Alcotest.fail "expected Invalid_changes for derived"
  with Changes.Invalid_changes _ -> ()

(* Updates = deletion ⊎ insertion in a single change set. *)
let update_in_one_step () =
  let db = db_of_source ~semantics:Database.Duplicate_semantics example_4_2_source in
  let program = Database.program db in
  let changes =
    Changes.update program "link"
      ~old_tuple:(Tuple.of_strs [ "d"; "c" ])
      ~new_tuple:(Tuple.of_strs [ "d"; "h" ])
  in
  ignore (Counting.maintain db changes);
  Alcotest.(check bool)
    "hop(a,h) now" true
    (Relation.mem (rel db "hop") (Tuple.of_strs [ "a"; "h" ]));
  Alcotest.(check bool)
    "hop(a,c) reduced" true
    (Relation.count (rel db "hop") (Tuple.of_strs [ "a"; "c" ]) = 1)

let suite =
  [
    quick "example 4.2 delta walkthrough (duplicates)" example_4_2;
    quick "example 5.1 set optimization stops cascade" example_5_1;
    quick "example 1.1 deletion" example_1_1_deletion;
    quick "negation: insertion kills view tuple" negation_insertion_kills_view;
    quick "negation: deletion revives view tuple" negation_deletion_revives_view;
    quick "aggregation: MIN maintained both ways" aggregation_min_updates;
    quick "aggregation: group disappears" aggregation_group_disappears;
    quick "set optimization: no cascade when set unchanged" no_change_no_work;
    quick "rejects recursive programs" rejects_recursion;
    quick "rejects invalid changes" rejects_bad_deletion;
    quick "update as delete+insert" update_in_one_step;
    quick "vs recompute: hop inserts (dup)"
      (against_recompute ~semantics:Database.Duplicate_semantics
         example_4_2_source
         [
           ( "link",
             [ (Tuple.of_strs [ "c"; "a" ], 1); (Tuple.of_strs [ "g"; "a" ], 1) ]
           );
         ]);
    quick "vs recompute: negation mix (dup)"
      (against_recompute ~semantics:Database.Duplicate_semantics negation_source
         [
           ( "link",
             [
               (Tuple.of_strs [ "a"; "b" ], -1);
               (Tuple.of_strs [ "b"; "k" ], 1);
               (Tuple.of_strs [ "h"; "d" ], 1);
             ] );
         ]);
    quick "vs recompute: aggregation mix (set)"
      (against_recompute ~semantics:Database.Set_semantics aggregation_source
         [
           ( "link",
             [
               (tup3 "a" "b" 1, -1);
               (tup3 "b" "f" 2, 1);
               (tup3 "f" "c" 3, 1);
             ] );
         ]);
  ]
