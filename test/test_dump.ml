(** [Database.dump] must produce a re-loadable program: dump → re-parse →
    re-materialize is the identity.  Exercised across GROUPBY, negation
    and duplicate semantics, and — at the value level — across everything
    the printer can meet: floats that need exponents or 17 significant
    digits, strings with escapes or raw control bytes, and symbols that
    collide with keywords ([not], [true], [false]). *)

open Util

(* ------------------------------------------------------------------ *)
(* Value-level round-trips: print one value, re-parse it as a fact      *)
(* argument, demand the same constructor with the same payload.         *)
(* ------------------------------------------------------------------ *)

let reparse_value (v : Value.t) : Value.t =
  let src = Printf.sprintf "p(%s)." (Value.to_string v) in
  match Parser.parse_program src with
  | [ Ast.Sfact ("p", [ v' ]) ] -> v'
  | _ -> Alcotest.failf "%s did not re-parse as a single fact" src

(* Stricter than [Value.equal], which identifies [Int 2] with
   [Float 2.0]: a round-trip must also preserve the kind. *)
let same_rep (a : Value.t) (b : Value.t) : bool =
  match a, b with
  | Value.Int x, Value.Int y -> x = y
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Value.Str x, Value.Str y -> String.equal x y
  | Value.Bool x, Value.Bool y -> x = y
  | _ -> false

let check_value v =
  let v' = reparse_value v in
  if not (same_rep v v') then
    Alcotest.failf "%s re-parsed as %s" (Value.to_string v) (Value.to_string v')

let float_cases () =
  List.iter check_value
    (List.map Value.float
       [ 0.; 2.0; -2.5; 0.1; 0.1 +. 0.2 (* needs 17 digits *); 1. /. 3.;
         Float.pi; 1e15 +. 1.; 1e16; 1e22; 1e-7; 6.02e23; -1.5e300;
         4.9e-324 (* smallest denormal *); max_float; min_float;
         Float.infinity; Float.neg_infinity ])

let int_cases () =
  List.iter check_value
    (List.map Value.int [ 0; 1; -3; 42; max_int; min_int + 1 ])

let string_cases () =
  List.iter check_value
    (List.map Value.str
       [ ""; "plain"; "with space"; "Upper"; "_under"; "123start";
         "tab\there"; "line\nbreak"; "cr\rhere"; "quote\"inside";
         "back\\slash"; "ctrl\001byte"; "not"; "true"; "false"; "nan";
         "semi;colon"; "paren)"; "dot." ])

let bool_cases () =
  List.iter check_value [ Value.bool true; Value.bool false ]

(* Printed floats must re-lex as FLOAT (not as INT followed by garbage):
   the ".0" on integral floats and the exponent forms are load-bearing. *)
let float_lexes_as_float () =
  List.iter
    (fun x ->
      let s = Value.to_string (Value.float (Float.abs x)) in
      match Ivm_datalog.Lexer.tokenize s with
      | [ { tok = Ivm_datalog.Lexer.FLOAT _; _ };
          { tok = Ivm_datalog.Lexer.EOF; _ } ] -> ()
      | _ -> Alcotest.failf "%s does not lex as one float literal" s)
    [ 2.0; 0.5; 1e16; 1e-7; 123456789.0; Float.infinity ]

(* bit-pattern floats cover denormals and extreme exponents *)
let bit_float : Value.t QCheck.Gen.t =
 fun st ->
  let x = Int64.float_of_bits (Random.State.int64 st Int64.max_int) in
  Value.float (if Float.is_nan x then 0. else x)

let random_value_gen : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [ (2, map Value.int int);
        (1, map Value.int (int_range (-1000) 1000));
        (2, bit_float);
        (1, map Value.float (float_range (-1e6) 1e6));
        ( 2,
          map Value.str
            (string_size
               ~gen:(map Char.chr (int_range 0 255))
               (int_range 0 12)) );
        (1, map Value.str string_printable);
        (1, map Value.bool bool) ])

let show_rep = function
  | Value.Int x -> Printf.sprintf "Int %d" x
  | Value.Float x -> Printf.sprintf "Float %h (prints as %s)" x (Value.to_string (Value.float x))
  | Value.Str s -> Printf.sprintf "Str %S" s
  | Value.Bool b -> Printf.sprintf "Bool %b" b

let random_values =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"random values round-trip"
       (QCheck.make random_value_gen ~print:show_rep)
       (fun v -> same_rep v (reparse_value v)))

(* ------------------------------------------------------------------ *)
(* Whole-database round-trips                                           *)
(* ------------------------------------------------------------------ *)

let reload ~semantics (db : Database.t) : Database.t =
  let text = Format.asprintf "%a" Database.dump db in
  let rules, facts = Parser.split (Parser.parse_program text) in
  let db2 = Database.create ~semantics (Program.make rules) in
  List.iter (fun (p, vals) -> Database.load db2 p [ Tuple.of_list vals ]) facts;
  Seminaive.evaluate db2;
  db2

let check_db ?(semantics = Database.Set_semantics) name src =
  let db = db_of_source ~semantics src in
  let db2 = reload ~semantics db in
  Alcotest.(check bool) (name ^ ": dump reloads to the same state") true
    (Database.agree db db2)

let groupby_db () =
  check_db "groupby"
    {|
      link(a, b). link(a, c). link(b, c). link(c, d).
      hop(X, Y) :- link(X, Z), link(Z, Y).
      out_deg(X, N) :- groupby(link(X, Y), [X], N = count()).
      min_succ(X, M) :- groupby(hop(X, Y), [X], M = min(Y)).
    |}

let negation_db () =
  check_db "negation"
    {|
      link(a, b). link(b, c). link(c, a). link(a, d).
      hop(X, Y) :- link(X, Z), link(Z, Y).
      only_hop(X, Y) :- hop(X, Y), not link(X, Y).
    |}

let duplicate_db () =
  check_db ~semantics:Database.Duplicate_semantics "duplicate semantics"
    {|
      link(a, b). link(a, b). link(a, b). link(b, c). link(b, c).
      hop(X, Y) :- link(X, Z), link(Z, Y).
    |}

let adversarial_values_db () =
  (* base facts whose constants all need careful printing *)
  let program =
    Program.make (Parser.parse_rules "seen(X) :- obs(T, X).")
  in
  let db = Database.create ~semantics:Database.Set_semantics program in
  Database.load db "obs"
    [ Tuple.of_list [ Value.int 1; Value.float (0.1 +. 0.2) ];
      Tuple.of_list [ Value.int 2; Value.float 1e16 ];
      Tuple.of_list [ Value.int 3; Value.str "not" ];
      Tuple.of_list [ Value.int 4; Value.str "true" ];
      Tuple.of_list [ Value.int 5; Value.str "line\nbreak\twith \"quotes\"" ];
      Tuple.of_list [ Value.int 6; Value.bool false ];
      Tuple.of_list [ Value.int 7; Value.float Float.infinity ];
      Tuple.of_list [ Value.int (-8); Value.float (-0.5) ] ];
  Seminaive.evaluate db;
  let db2 = reload ~semantics:Database.Set_semantics db in
  Alcotest.(check bool) "adversarial constants reload identically" true
    (Database.agree db db2)

let suite =
  [
    quick "floats round-trip" float_cases;
    quick "ints round-trip" int_cases;
    quick "strings round-trip" string_cases;
    quick "bools round-trip" bool_cases;
    quick "printed floats lex as floats" float_lexes_as_float;
    random_values;
    quick "dump/load: groupby" groupby_db;
    quick "dump/load: negation" negation_db;
    quick "dump/load: duplicate semantics" duplicate_db;
    quick "dump/load: adversarial constants" adversarial_values_db;
  ]
