(** Randomized differential suite: all four maintenance algorithms —
    Counting (Algorithm 4.1), DRed (Section 7), the PF baseline [HD92]
    and full recomputation — driven over generated stratified programs
    (joins, union, negation, comparisons, GROUPBY) and seeded
    insert/delete streams, asserting identical final view states on
    their shared domain:

    - nonrecursive, set semantics: Counting ≡ DRed ≡ PF ≡ Recompute as
      sets;
    - nonrecursive, duplicate semantics: Counting ≡ Recompute with
      counts (DRed and PF are set-semantics algorithms);
    - recursive (transitive closure, both linearizations): DRed ≡ PF ≡
      Recompute as sets (Counting is nonrecursive-only).

    Plus the determinism properties for the multicore path: for every
    algorithm, the exact same scenario replayed at [~domains:4] produces
    a canonical derived-state dump byte-identical to [~domains:1] —
    tuple-for-tuple and count-for-count (the ⊎-merge runs in fixed task
    order, so the domain count must be unobservable). *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Rc = Ivm.Recursive_counting
module Pf = Ivm_baselines.Pf
module Recompute = Ivm_baselines.Recompute
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen
module Programs = Ivm_workload.Programs

let q ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Program generator: random stratified views over a [link] base        *)
(* ------------------------------------------------------------------ *)

(** A random program shape: which optional strata are present.  Always
    includes the [hop] join; negation forces the [tri] stratum it
    negates against. *)
type shape = {
  seed : int;  (** seeds the graph and the update stream *)
  union_hop : bool;  (** a second [hop] rule — union with multiplicities *)
  tri : bool;  (** a deeper join stratum over [hop] *)
  negation : bool;  (** [only_tri(X,Y) :- tri(X,Y), not hop(X,Y)] *)
  cmp : bool;  (** a comparison filter stratum *)
  agg : int;  (** 0 = none, else one GROUPBY view (count/min/max/sum) *)
}

let source_of s =
  let b = Buffer.create 256 in
  Buffer.add_string b "hop(X, Y) :- link(X, Z), link(Z, Y).\n";
  if s.union_hop then Buffer.add_string b "hop(X, Y) :- link(X, Y).\n";
  if s.tri || s.negation then
    Buffer.add_string b "tri(X, Y) :- hop(X, Z), link(Z, Y).\n";
  if s.negation then
    Buffer.add_string b "only_tri(X, Y) :- tri(X, Y), not hop(X, Y).\n";
  if s.cmp then Buffer.add_string b "up_hop(X, Y) :- hop(X, Y), X < Y.\n";
  (match s.agg with
  | 1 ->
    Buffer.add_string b
      "out_deg(X, N) :- groupby(link(X, Y), [X], N = count()).\n"
  | 2 ->
    Buffer.add_string b
      "min_succ(X, M) :- groupby(hop(X, Y), [X], M = min(Y)).\n"
  | 3 ->
    Buffer.add_string b
      "max_succ(X, M) :- groupby(link(X, Y), [X], M = max(Y)).\n"
  | 4 ->
    Buffer.add_string b
      "succ_sum(X, S) :- groupby(hop(X, Y), [X], S = sum(Y)).\n"
  | _ -> ());
  Buffer.contents b

let shape_gen =
  QCheck.Gen.(
    map
      (fun (seed, (u, t, n, c, a)) ->
        { seed; union_hop = u; tri = t; negation = n; cmp = c; agg = a })
      (pair (int_range 1 1_000_000)
         (tup5 bool bool bool bool (int_range 0 4))))

let arb_shape =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "seed=%d\n%s" s.seed (source_of s))
    shape_gen

(* ------------------------------------------------------------------ *)
(* Scenario plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let nodes = 10
let edges = 25
let steps = 3

let build ~semantics ~src graph =
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link" graph;
  Seminaive.evaluate db;
  db

(** Drive the [runners] (name × maintain) in lockstep over one random
    stream: every batch is generated against the first database — all
    databases hold the same base state, so the deletions are valid for
    each — then applied to all of them; [agree] checks the final states. *)
let lockstep ~semantics ~src ~runners ~agree seed =
  let rng = Prng.create seed in
  let graph = Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges) in
  let dbs = List.map (fun (name, run) -> (name, build ~semantics ~src graph, run)) runners in
  let first = match dbs with (_, db, _) :: _ -> db | [] -> assert false in
  for _ = 1 to steps do
    let changes =
      Update_gen.mixed rng first "link" ~nodes
        ~dels:(Prng.int rng 4) ~ins:(Prng.int rng 4)
    in
    List.iter (fun (_, db, run) -> run db changes) dbs
  done;
  agree (List.map (fun (name, db, _) -> (name, db)) dbs)

let agree_as equal dbs =
  let (_, first), rest =
    match dbs with x :: rest -> (x, rest) | [] -> assert false
  in
  List.for_all
    (fun (_, db) ->
      List.for_all
        (fun p -> equal (Database.relation first p) (Database.relation db p))
        (Program.derived_preds (Database.program first)))
    rest

(* ------------------------------------------------------------------ *)
(* Differential properties                                              *)
(* ------------------------------------------------------------------ *)

let four_way_set =
  q ~count:110 "counting == dred == pf == recompute (sets, random programs)"
    arb_shape
    (fun s ->
      lockstep ~semantics:Database.Set_semantics ~src:(source_of s)
        ~runners:
          [
            ("counting", fun db c -> ignore (Counting.maintain db c));
            ("dred", fun db c -> ignore (Dred.maintain db c));
            ("pf", fun db c -> ignore (Pf.maintain db c));
            ("recompute", fun db c -> Recompute.maintain db c);
          ]
        ~agree:(agree_as Relation.equal_sets) s.seed)

let duplicate_counted =
  q ~count:60 "counting == recompute (counts, duplicate semantics)"
    arb_shape
    (fun s ->
      lockstep ~semantics:Database.Duplicate_semantics ~src:(source_of s)
        ~runners:
          [
            ("counting", fun db c -> ignore (Counting.maintain db c));
            ("recompute", fun db c -> Recompute.maintain db c);
          ]
        ~agree:(agree_as Relation.equal_counted) s.seed)

let recursive_set =
  q ~count:60 "dred == pf == recompute (sets, recursive closure)"
    (QCheck.make
       ~print:(fun (seed, right) ->
         Printf.sprintf "seed=%d linearization=%s" seed
           (if right then "right" else "left"))
       QCheck.Gen.(pair (int_range 1 1_000_000) bool))
    (fun (seed, right) ->
      let src =
        if right then Programs.transitive_closure_right
        else Programs.transitive_closure
      in
      lockstep ~semantics:Database.Set_semantics ~src
        ~runners:
          [
            ("dred", fun db c -> ignore (Dred.maintain db c));
            ("pf", fun db c -> ignore (Pf.maintain db c));
            ("recompute", fun db c -> Recompute.maintain db c);
          ]
        ~agree:(agree_as Relation.equal_sets) seed)

(* ------------------------------------------------------------------ *)
(* Determinism: domains 4 ≡ domains 1, canonically dumped               *)
(* ------------------------------------------------------------------ *)

let with_domains d f =
  let prev = Ivm_par.domains () in
  Ivm_par.set_domains d;
  Fun.protect ~finally:(fun () -> Ivm_par.set_domains prev) f

(** Replay the exact same scenario under [domains] and return the
    canonical derived-state dump.  All randomness is re-derived from
    [seed], and update batches are generated from the database's own base
    state (identical across replays), so the two runs see identical
    inputs; byte-equal dumps mean the domain count is unobservable. *)
let replay ~domains ~semantics ~src ~maintain seed =
  with_domains domains (fun () ->
      let rng = Prng.create seed in
      let graph = Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges) in
      let db = build ~semantics ~src graph in
      for _ = 1 to steps do
        let changes =
          Update_gen.mixed rng db "link" ~nodes
            ~dels:(Prng.int rng 4) ~ins:(Prng.int rng 4)
        in
        maintain db changes
      done;
      canonical_dump db)

let deterministic ~semantics ~src ~maintain seed =
  String.equal
    (replay ~domains:1 ~semantics ~src ~maintain seed)
    (replay ~domains:4 ~semantics ~src ~maintain seed)

let arb_seed =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck.Gen.(int_range 1 1_000_000)

let determinism_props =
  [
    q ~count:25 "counting: domains 4 == domains 1" arb_shape (fun s ->
        deterministic ~semantics:Database.Duplicate_semantics
          ~src:(source_of s)
          ~maintain:(fun db c -> ignore (Counting.maintain db c))
          s.seed);
    q ~count:25 "dred: domains 4 == domains 1 (nonrecursive)" arb_shape
      (fun s ->
        deterministic ~semantics:Database.Set_semantics ~src:(source_of s)
          ~maintain:(fun db c -> ignore (Dred.maintain db c))
          s.seed);
    q ~count:20 "dred: domains 4 == domains 1 (recursive)" arb_seed
      (deterministic ~semantics:Database.Set_semantics
         ~src:Programs.transitive_closure
         ~maintain:(fun db c -> ignore (Dred.maintain db c)));
    q ~count:15 "pf: domains 4 == domains 1 (recursive)" arb_seed
      (deterministic ~semantics:Database.Set_semantics
         ~src:Programs.transitive_closure
         ~maintain:(fun db c -> ignore (Pf.maintain db c)));
    q ~count:20 "recompute: domains 4 == domains 1" arb_shape (fun s ->
        deterministic ~semantics:Database.Set_semantics ~src:(source_of s)
          ~maintain:(fun db c -> Recompute.maintain db c)
          s.seed);
    (* Recursive counting needs acyclic data: deletion-only streams over a
       layered DAG, duplicate semantics. *)
    q ~count:15 "recursive counting: domains 4 == domains 1" arb_seed
      (fun seed ->
        let run domains =
          with_domains domains (fun () ->
              let rng = Prng.create seed in
              let program =
                Program.make
                  (Parser.parse_rules Programs.transitive_closure)
              in
              let db =
                Database.create ~semantics:Database.Duplicate_semantics
                  program
              in
              Database.load db "link"
                (Graph_gen.tuples
                   (Graph_gen.layered_dag rng ~layers:5 ~width:4
                      ~out_degree:2));
              Rc.evaluate db;
              for _ = 1 to steps do
                let k = Prng.int rng 3 in
                ignore
                  (Rc.maintain db (Update_gen.deletions rng db "link" k))
              done;
              canonical_dump db)
        in
        String.equal (run 1) (run 4));
  ]

let suite =
  [ four_way_set; duplicate_counted; recursive_set ] @ determinism_props
