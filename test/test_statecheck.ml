(** Model-based lifecycle testing: generated command traces run against
    the real [View_manager] and the naive in-memory model in lockstep
    (see [lib/statecheck]), plus the pinned corpus of minimized traces
    under [test/traces/].

    The property runs [IVM_STATECHECK_TRACES] traces (default 300) of at
    least 25 commands each from a fixed seed, so a CI run is
    deterministic; a failure prints the shrunk trace as a replayable
    shell script. *)

module Cmd = Ivm_statecheck.Cmd
module Gen = Ivm_statecheck.Gen
module Interp = Ivm_statecheck.Interp
module Vm = Ivm.View_manager
module Q = QCheck

let traces_count =
  match Sys.getenv_opt "IVM_STATECHECK_TRACES" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 300)
  | None -> 300

(* ---------------- the lifecycle property ---------------- *)

let lifecycle_prop ?fault ?publish trace =
  match Interp.run_result ?fault ?publish trace with
  | Ok _ -> true
  | Error msg -> Q.Test.fail_report msg

(** Run [count] generated traces from a fixed [seed]; Alcotest-fail with
    the shrunk counterexample (already printed as trace + script by the
    arbitrary's printer) on any divergence. *)
let check_lifecycle ?duplicate ?algorithm ?publish ~count ~seed name =
  let cell =
    Q.Test.make_cell ~count ~name
      (Gen.arbitrary ~min_len:25 ~max_len:40 ?duplicate ?algorithm ())
      (lifecycle_prop ?fault:None ?publish)
  in
  let rand = Random.State.make [| seed |] in
  match Q.TestResult.get_state (Q.Test.check_cell ~rand cell) with
  | Q.TestResult.Success -> ()
  | Q.TestResult.Failed { instances = c :: _ } ->
    Alcotest.failf "%s: real/model divergence; shrunk trace:\n%s\n%s" name
      (Gen.print_trace c.Q.TestResult.instance)
      (String.concat "\n" c.Q.TestResult.msg_l)
  | Q.TestResult.Failed { instances = [] } ->
    Alcotest.failf "%s: failed without a counterexample" name
  | Q.TestResult.Failed_other { msg } -> Alcotest.failf "%s: %s" name msg
  | Q.TestResult.Error { exn; instance; _ } ->
    Alcotest.failf "%s: raised %s on\n%s" name (Printexc.to_string exn)
      (Gen.print_trace instance.Q.TestResult.instance)

let test_lifecycle () =
  check_lifecycle ~count:traces_count ~seed:0xC0FFEE "statecheck lifecycle"

(** Same traces with the snapshot publisher in lockstep: every mutating
    step publishes through [Snap_pub] (incrementally patched when the
    group was tracked, full-copy fallback otherwise) and the published
    snapshot must digest-equal the live database after each publish. *)
let test_lifecycle_publish () =
  check_lifecycle ~publish:true
    ~count:(max 20 (traces_count / 3))
    ~seed:0x5EED "statecheck lifecycle+publish"

(* Fixed-seed smokes pinning each algorithm as the initial one (the main
   property also switches algorithms mid-trace). *)
let algorithm_smokes =
  [
    ("counting", false, Vm.Counting, 101);
    ("dred", false, Vm.Dred, 102);
    ("recursive-counting", true, Vm.Recursive_counting, 103);
    ("recompute", true, Vm.Recompute, 104);
  ]
  |> List.map (fun (name, duplicate, algorithm, seed) ->
         Alcotest.test_case (Printf.sprintf "lifecycle: %s" name) `Quick
           (fun () ->
             check_lifecycle ~duplicate ~algorithm
               ~count:(max 10 (traces_count / 10))
               ~seed
               (Printf.sprintf "statecheck %s" name)))

(* ---------------- the pinned corpus ---------------- *)

let traces_dir () =
  match
    List.find_opt Sys.file_exists
      [ "traces"; Filename.concat "test" "traces" ]
  with
  | Some d -> d
  | None -> Alcotest.fail "test/traces directory not found"

let corpus_files () =
  let dir = traces_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".trace")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

let test_corpus () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (List.length files >= 5);
  List.iter
    (fun file ->
      let trace = Cmd.read_file file in
      match Interp.run_result trace with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok o ->
        (* pinned traces must execute fully: a skipped step means the
           trace no longer exercises what it was minimized to pin *)
        Alcotest.(check int)
          (Printf.sprintf "%s: every step executes" file)
          (List.length trace.Cmd.steps)
          o.Interp.executed)
    files

let test_corpus_round_trips () =
  List.iter
    (fun file ->
      let trace = Cmd.read_file file in
      Alcotest.(check (list string))
        (Printf.sprintf "%s round-trips" file)
        (Cmd.to_lines trace)
        (Cmd.to_lines (Cmd.of_string (Cmd.to_string trace))))
    (corpus_files ())

(* ---------------- printer/parser round-trip ---------------- *)

let test_round_trip () =
  let cell =
    Q.Test.make_cell ~count:200 ~name:"trace round-trip"
      (Gen.arbitrary ~min_len:5 ~max_len:30 ())
      (fun trace ->
        Cmd.to_lines trace = Cmd.to_lines (Cmd.of_lines (Cmd.to_lines trace)))
  in
  match
    Q.TestResult.get_state
      (Q.Test.check_cell ~rand:(Random.State.make [| 11 |]) cell)
  with
  | Q.TestResult.Success -> ()
  | _ -> Alcotest.fail "a generated trace did not round-trip through shell syntax"

(* ---------------- the harness catches and shrinks bugs ---------------- *)

let test_fault_is_caught_and_shrunk () =
  (* Drop a tuple from the real side of every insert-bearing batch: the
     harness must fail, and list-shrinking must cut the trace from 25+
     commands to a near-minimal prefix. *)
  let cell =
    Q.Test.make_cell ~count:20 ~name:"deliberate fault"
      (Gen.arbitrary ~min_len:25 ~max_len:40 ())
      (lifecycle_prop ~fault:(Interp.Drop_every 1))
  in
  match
    Q.TestResult.get_state
      (Q.Test.check_cell ~rand:(Random.State.make [| 7 |]) cell)
  with
  | Q.TestResult.Failed { instances = c :: _ } ->
    let trace = c.Q.TestResult.instance in
    let n = List.length trace.Cmd.steps in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to a minimal trace (%d commands)" n)
      true (n <= 3);
    (* ... and the counterexample is a replayable artifact *)
    let script = Cmd.to_script trace in
    Alcotest.(check bool) "script drives the shell" true
      (let needle = "ivm_shell" in
       let nl = String.length needle and sl = String.length script in
       let rec at i =
         i + nl <= sl && (String.sub script i nl = needle || at (i + 1))
       in
       at 0);
    Alcotest.(check (list string)) "shrunk trace round-trips"
      (Cmd.to_lines trace)
      (Cmd.to_lines (Cmd.of_string (Cmd.to_string trace)))
  | _ -> Alcotest.fail "deliberate fault was not caught by the harness"

let suite =
  [
    Alcotest.test_case "pinned corpus replays real = model" `Quick test_corpus;
    Alcotest.test_case "pinned corpus round-trips" `Quick
      test_corpus_round_trips;
    Alcotest.test_case "generated traces round-trip" `Quick test_round_trip;
    Alcotest.test_case "lifecycle: generated traces, all algorithms" `Slow
      test_lifecycle;
    Alcotest.test_case "lifecycle: publish equivalence (snap_pub)" `Slow
      test_lifecycle_publish;
  ]
  @ algorithm_smokes
  @ [
      Alcotest.test_case "deliberate fault caught and shrunk" `Quick
        test_fault_is_caught_and_shrunk;
    ]
