(** The view server: protocol codec round-trips (QCheck), frame
    hardening, group commit ({!Ivm.View_manager.apply_group}), and
    live-socket behaviour — snapshot-consistent concurrent readers,
    subscriber fan-out, misbehaving-client isolation, and durability of
    every acknowledged batch across a reopen. *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Relation = Ivm_relation.Relation
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Wire = Ivm_wire.Wire
module Frame = Ivm_wire.Frame
module Protocol = Ivm_serve.Protocol
module Server = Ivm_serve.Server
module Snap_pub = Ivm_serve.Snap_pub
module Client = Ivm_serve.Client
module Metrics = Ivm_obs.Metrics
module Reqtrace = Ivm_obs.Reqtrace
module Monitor = Ivm_monitor.Monitor

let quick name f = Alcotest.test_case name `Quick f

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

(* ---------------- generators ---------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range (-1000) 1000);
        map Value.str (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map Value.bool bool;
        map (fun i -> Value.float (float_of_int i /. 8.)) (int_range (-80) 80);
      ])

let relation_gen ~arity =
  QCheck.Gen.(
    let tuple = map Tuple.of_list (list_size (return arity) value_gen) in
    let entry =
      map2 (fun t c -> (t, if c = 0 then 1 else c)) tuple (int_range (-3) 3)
    in
    map (Relation.of_list arity) (list_size (int_range 0 8) entry))

let changes_gen =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (map2
         (fun name rel -> (name, rel))
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))
         (relation_gen ~arity:2)))

let token_gen = QCheck.Gen.(string_size ~gen:printable (int_range 0 12))

(* empty half the time: absence on the wire must round-trip too *)
let trace_gen =
  QCheck.Gen.(
    oneof
      [ return ""; string_size ~gen:(char_range 'a' 'z') (int_range 1 10) ])

let timings_gen =
  QCheck.Gen.(
    list_size (int_range 0 5)
      (map2
         (fun stage ns -> (stage, ns))
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
         (int_range 0 1_000_000_000)))

let request_gen : Protocol.request QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun version token -> Protocol.Hello { version; token })
          (int_range 0 5) token_gen;
        return Protocol.Ping;
        map2 (fun body trace -> Protocol.Query { body; trace }) token_gen
          trace_gen;
        map2
          (fun changes trace -> Protocol.Apply { changes; trace })
          changes_gen trace_gen;
        map (fun s -> Protocol.Subscribe s) token_gen;
        return Protocol.Status;
        return Protocol.Close;
      ])

let error_code_gen =
  QCheck.Gen.oneofl
    Protocol.
      [
        Bad_version; Auth_failed; Bad_request; Query_failed; Invalid_changes;
        Quota_exceeded; Shutting_down; Internal;
      ]

let response_gen : Protocol.response QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun version seq -> Protocol.Hello_ok { version; seq })
          (int_range 0 5) (int_range 0 1_000_000);
        return Protocol.Pong;
        map2
          (fun columns rows -> Protocol.Answer { columns; rows })
          (list_size (int_range 0 3) token_gen)
          (relation_gen ~arity:2);
        map3
          (fun seq deltas timings -> Protocol.Applied { seq; deltas; timings })
          (int_range 0 1_000_000) changes_gen timings_gen;
        map (fun s -> Protocol.Sub_ok s) token_gen;
        map (fun s -> Protocol.Status_reply s) token_gen;
        return Protocol.Bye;
        map3
          (fun seq pred delta -> Protocol.Delta { seq; pred; delta })
          (int_range 0 1_000_000) token_gen (relation_gen ~arity:1);
        map2
          (fun code message -> Protocol.Error { code; message })
          error_code_gen token_gen;
      ])

(* ---------------- semantic equality ---------------- *)

let eq_changes (a : Protocol.changes) (b : Protocol.changes) =
  List.length a = List.length b
  && List.for_all2
       (fun (p, r) (p', r') -> p = p' && Relation.equal_counted r r')
       a b

let eq_request (a : Protocol.request) (b : Protocol.request) =
  match (a, b) with
  | Protocol.Apply x, Protocol.Apply y ->
    eq_changes x.changes y.changes && x.trace = y.trace
  | _ -> a = b

let eq_response (a : Protocol.response) (b : Protocol.response) =
  match (a, b) with
  | Protocol.Answer x, Protocol.Answer y ->
    x.columns = y.columns && Relation.equal_counted x.rows y.rows
  | Protocol.Applied x, Protocol.Applied y ->
    x.seq = y.seq && eq_changes x.deltas y.deltas && x.timings = y.timings
  | Protocol.Delta x, Protocol.Delta y ->
    x.seq = y.seq && x.pred = y.pred && Relation.equal_counted x.delta y.delta
  | _ -> a = b

(* ---------------- codec properties ---------------- *)

let request_arb =
  QCheck.make request_gen ~print:(fun r ->
      Printf.sprintf "request opcode 0x%02x" (Protocol.opcode_of_request r))

let response_arb =
  QCheck.make response_gen ~print:(fun r ->
      Printf.sprintf "response opcode 0x%02x" (Protocol.opcode_of_response r))

let request_roundtrip =
  q "codec: requests round-trip" request_arb (fun req ->
      eq_request req (Protocol.decode_request (Protocol.encode_request req)))

let response_roundtrip =
  q "codec: responses round-trip" response_arb (fun resp ->
      eq_response resp (Protocol.decode_response (Protocol.encode_response resp)))

let frame_roundtrip =
  q "codec: framed messages survive the fd layer" request_arb (fun req ->
      let r, w = Unix.pipe () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        (fun () ->
          Frame.write_fd w (Protocol.encode_request req);
          eq_request req (Protocol.decode_request (Frame.read_fd r))))

(* ---------------- trace context: v1 wire compatibility ---------------- *)

(* The trace context is a trailing optional field: its absence must be
   byte-identical to a pre-trace v1 frame, and a v1 frame (no trailing
   field) must decode with [trace = ""].  Same deal for the [Applied]
   timings. *)
let trace_context_wire_compat () =
  let wire_string s =
    let buf = Buffer.create 16 in
    Wire.put_string buf s;
    Buffer.contents buf
  in
  (* hand-built v1 query frame: opcode byte + body, nothing after *)
  let legacy_query =
    let buf = Buffer.create 16 in
    Wire.put_u8 buf
      (Protocol.opcode_of_request (Protocol.Query { body = ""; trace = "" }));
    Wire.put_string buf "p(X)";
    Buffer.contents buf
  in
  (match Protocol.decode_request legacy_query with
  | Protocol.Query { body = "p(X)"; trace = "" } -> ()
  | _ -> Alcotest.fail "v1 query frame did not decode to trace = \"\"");
  Alcotest.(check string) "empty trace encodes as the v1 bytes" legacy_query
    (Protocol.encode_request (Protocol.Query { body = "p(X)"; trace = "" }));
  (* a traced frame is exactly the v1 frame plus the trailing field *)
  let changes =
    [ ("p", Relation.of_list 1 [ (Tuple.of_list [ Value.str "x" ], 1) ]) ]
  in
  let untraced =
    Protocol.encode_request (Protocol.Apply { changes; trace = "" })
  in
  Alcotest.(check string) "trace context is a trailing field"
    (untraced ^ wire_string "t7")
    (Protocol.encode_request (Protocol.Apply { changes; trace = "t7" }));
  (match Protocol.decode_request untraced with
  | Protocol.Apply { trace = ""; _ } -> ()
  | _ -> Alcotest.fail "v1 apply frame did not decode to trace = \"\"");
  (* Applied timings: absent for v1 clients, trailing when present *)
  let plain =
    Protocol.encode_response
      (Protocol.Applied { seq = 7; deltas = changes; timings = [] })
  in
  let timed =
    Protocol.encode_response
      (Protocol.Applied
         { seq = 7; deltas = changes; timings = [ ("fsync", 123) ] })
  in
  Alcotest.(check bool) "timings only lengthen the frame when present" true
    (String.length plain < String.length timed
    && String.sub timed 0 (String.length plain) = plain);
  match Protocol.decode_response plain with
  | Protocol.Applied { timings = []; _ } -> ()
  | _ -> Alcotest.fail "v1 applied frame did not decode to timings = []"

let trailing_bytes_rejected () =
  let payload = Protocol.encode_request Protocol.Ping ^ "x" in
  match Protocol.decode_request payload with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Wire.Corrupt _ -> ()

let corrupt_frame_rejected () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let frame = Bytes.of_string (Frame.encode (Protocol.encode_request Protocol.Ping)) in
      let last = Bytes.length frame - 1 in
      Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 0x01));
      ignore (Unix.write w frame 0 (Bytes.length frame));
      match Frame.read_fd r with
      | _ -> Alcotest.fail "bit flip not detected"
      | exception Wire.Corrupt _ -> ())

let truncated_frame_is_closed () =
  let r, w = Unix.pipe () in
  (try
     let frame = Frame.encode (Protocol.encode_request Protocol.Status) in
     ignore (Unix.write_substring w frame 0 (String.length frame - 2));
     Unix.close w
   with e ->
     Unix.close r;
     raise e);
  Fun.protect
    ~finally:(fun () -> try Unix.close r with Unix.Unix_error _ -> ())
    (fun () ->
      match Frame.read_fd r with
      | _ -> Alcotest.fail "truncated frame accepted"
      | exception Frame.Closed -> ())

(* ---------------- group commit ---------------- *)

let fsyncs_counter = Metrics.counter "ivm_store_wal_fsyncs_total"

let link a b =
  Tuple.of_list [ Value.str a; Value.str b ]

let hop_src = "hop(X, Y) :- link(X, Z), link(Z, Y).\nlink(a, b). link(b, c).\n"

let group_commit_single_fsync () =
  let dir = tmpdir "ivm_serve_group" in
  let vm = Vm.of_source ~durable:dir hop_src in
  let p = Vm.program vm in
  let batch a b = Changes.of_list p [ ("link", [ (link a b, 1) ]) ] in
  let before = Metrics.counter_value fsyncs_counter in
  let results = Vm.apply_group vm [ batch "c" "d"; batch "d" "e"; batch "e" "f" ] in
  Alcotest.(check int) "one fsync for three batches" 1
    (Metrics.counter_value fsyncs_counter - before);
  Alcotest.(check int) "three results" 3 (List.length results);
  List.iter
    (fun r -> Alcotest.(check bool) "batch ok" true (Result.is_ok r))
    results;
  let st = Option.get (Vm.store_status vm) in
  Alcotest.(check int) "store advanced one seq per batch" 3
    st.Ivm_store.Store.seq;
  Alcotest.(check bool) "audit ok" true (Vm.audit vm = Ok ());
  Vm.close_store vm

let group_commit_isolates_bad_batch () =
  let dir = tmpdir "ivm_serve_groupbad" in
  let vm = Vm.of_source ~durable:dir hop_src in
  let p = Vm.program vm in
  let good a b = Changes.of_list p [ ("link", [ (link a b, 1) ]) ] in
  (* deleting an absent tuple violates the standing assumption — the
     batch must be rejected without poisoning its neighbours *)
  let bad = [ ("link", Relation.of_list 2 [ (link "no" "where", -1) ]) ] in
  let results = Vm.apply_group vm [ good "c" "d"; bad; good "d" "e" ] in
  (match results with
  | [ Ok _; Error _; Ok _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error; Ok]");
  let st = Option.get (Vm.store_status vm) in
  Alcotest.(check int) "only the two good batches were logged" 2
    st.Ivm_store.Store.seq;
  Alcotest.(check bool) "audit ok" true (Vm.audit vm = Ok ());
  (* the rejected batch must also be invisible after recovery *)
  Vm.close_store vm;
  let vm2, _recovery = Vm.open_durable dir in
  Alcotest.(check bool) "recovered audit ok" true (Vm.audit vm2 = Ok ());
  Alcotest.(check bool) "good deltas present" true
    (Relation.mem (Vm.relation vm2 "link") (link "d" "e"));
  Vm.close_store vm2

(* ---------------- live server ---------------- *)

let with_server ?config ?durable src f =
  let vm = Vm.of_source ?durable src in
  let srv = Server.start ?config ~vm ~port:0 () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv vm)

let ab_src = "both(X) :- a(X), b(X).\n"

let sym i = Value.str (Printf.sprintf "v%d" i)

let pair_batch i : Protocol.changes =
  [
    ("a", Relation.of_list 1 [ (Tuple.of_list [ sym i ], 1) ]);
    ("b", Relation.of_list 1 [ (Tuple.of_list [ sym i ], 1) ]);
  ]

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
  at 0

let basic_session () =
  with_server hop_src (fun srv _vm ->
      let c = Client.connect ~port:(Server.port srv) () in
      Client.ping c;
      let cols, rows = Client.query c "hop(a, X)" in
      Alcotest.(check (list string)) "columns" [ "X" ] cols;
      Alcotest.(check int) "hop(a,·) has one answer" 1 (Relation.cardinal rows);
      let seq, deltas =
        Client.apply c [ ("link", Relation.of_list 2 [ (link "c" "d", 1) ]) ]
      in
      Alcotest.(check int) "first commit is seq 1" 1 seq;
      Alcotest.(check bool) "hop delta pushed back" true
        (List.mem_assoc "hop" deltas);
      let json = Client.status c in
      Alcotest.(check bool) "status mentions group_commits" true
        (contains json "group_commits");
      Client.close c)

let snapshot_consistency () =
  with_server ab_src (fun srv _vm ->
      let port = Server.port srv in
      let batches = 60 in
      let writer =
        Domain.spawn (fun () ->
            let c = Client.connect ~port () in
            for i = 1 to batches do
              ignore (Client.apply c (pair_batch i))
            done;
            Client.close c)
      in
      (* concurrent readers: a(X) without b(X) must never be observable —
         each pair lands in one atomic batch, and queries run against the
         atomically-published post-commit snapshot *)
      let readers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let c = Client.connect ~port () in
                let violations = ref 0 in
                for _ = 1 to 150 do
                  let _cols, rows = Client.query c "a(X), !b(X)" in
                  if not (Relation.is_empty rows) then incr violations
                done;
                Client.close c;
                !violations))
      in
      Domain.join writer;
      let violations = List.fold_left (fun n d -> n + Domain.join d) 0 readers in
      Alcotest.(check int) "no reader ever saw a half-applied pair" 0 violations;
      let c = Client.connect ~port () in
      let _cols, rows = Client.query c "both(X)" in
      Alcotest.(check int) "all pairs visible at the end" batches
        (Relation.cardinal rows);
      Client.close c)

let subscriber_receives_deltas () =
  with_server ab_src (fun srv _vm ->
      let port = Server.port srv in
      let sub = Client.connect ~port () in
      Client.subscribe sub "both";
      let w = Client.connect ~port () in
      let seq, _ = Client.apply w (pair_batch 1) in
      (match Client.next_delta ~timeout:5.0 sub with
      | Some (dseq, pred, delta) ->
        Alcotest.(check string) "delta for the subscribed view" "both" pred;
        Alcotest.(check int) "delta carries the commit seq" seq dseq;
        Alcotest.(check int) "one tuple" 1 (Relation.cardinal delta)
      | None -> Alcotest.fail "no delta within 5s");
      Client.close w;
      Client.close sub)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let dead_subscriber_does_not_wedge_writer () =
  with_server ab_src (fun srv _vm ->
      let port = Server.port srv in
      (* a subscriber that vanishes without a Close *)
      let fd = raw_connect port in
      Frame.write_fd fd
        (Protocol.encode_request
           (Protocol.Hello { version = Protocol.version; token = "" }));
      ignore (Frame.read_fd fd);
      Frame.write_fd fd (Protocol.encode_request (Protocol.Subscribe "both"));
      ignore (Frame.read_fd fd);
      Unix.close fd;
      (* the writer must keep committing and acking for everyone else *)
      let c = Client.connect ~port () in
      for i = 1 to 5 do
        let seq, _ = Client.apply c (pair_batch i) in
        Alcotest.(check int) "acks keep flowing" i seq
      done;
      Client.close c)

let handshake_gatekeeping () =
  let config = { Server.default_config with auth_token = Some "s3cret" } in
  with_server ~config ab_src (fun srv _vm ->
      let port = Server.port srv in
      (match Client.connect ~token:"wrong" ~port () with
      | _ -> Alcotest.fail "bad token accepted"
      | exception Client.Server_error (Protocol.Auth_failed, _) -> ());
      (* wrong protocol version, right token *)
      let fd = raw_connect port in
      Frame.write_fd fd
        (Protocol.encode_request (Protocol.Hello { version = 99; token = "s3cret" }));
      (match Protocol.decode_response (Frame.read_fd fd) with
      | Protocol.Error { code = Protocol.Bad_version; _ } -> ()
      | _ -> Alcotest.fail "version 99 not rejected");
      Unix.close fd;
      (* no handshake at all *)
      let fd = raw_connect port in
      Frame.write_fd fd (Protocol.encode_request Protocol.Ping);
      (match Protocol.decode_response (Frame.read_fd fd) with
      | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "unauthenticated ping not rejected");
      Unix.close fd;
      let c = Client.connect ~token:"s3cret" ~port () in
      Client.ping c;
      Client.close c)

let quotas_enforced () =
  let config =
    { Server.default_config with max_sessions = 1; max_batch_tuples = 2 }
  in
  with_server ~config ab_src (fun srv _vm ->
      let port = Server.port srv in
      let c1 = Client.connect ~port () in
      (match Client.connect ~port () with
      | _ -> Alcotest.fail "second session admitted past max_sessions = 1"
      | exception Client.Server_error (Protocol.Quota_exceeded, _) -> ()
      | exception Frame.Closed -> ());
      let big : Protocol.changes =
        [
          ( "a",
            Relation.of_list 1
              (List.init 3 (fun i -> (Tuple.of_list [ sym i ], 1))) );
        ]
      in
      (match Client.apply c1 big with
      | _ -> Alcotest.fail "oversized batch accepted"
      | exception Client.Server_error (Protocol.Quota_exceeded, _) -> ());
      (* the session survives a rejected batch *)
      Client.ping c1;
      (match Client.apply c1 [ ("nosuch", Relation.of_list 1 [ (Tuple.of_list [ sym 1 ], 1) ]) ] with
      | _ -> Alcotest.fail "unknown predicate accepted"
      | exception Client.Server_error (Protocol.Invalid_changes, _) -> ());
      (match Client.query c1 "nosuch(X)" with
      | _ -> Alcotest.fail "query on unknown predicate accepted"
      | exception Client.Server_error (Protocol.Query_failed, _) -> ());
      Client.ping c1;
      Client.close c1)

let acked_batches_survive_reopen () =
  let dir = tmpdir "ivm_serve_reopen" in
  let last_seq = ref 0 in
  with_server ~durable:dir ab_src (fun srv _vm ->
      let c = Client.connect ~port:(Server.port srv) () in
      for i = 1 to 5 do
        let seq, _ = Client.apply c (pair_batch i) in
        last_seq := seq
      done;
      Client.close c);
  (* with_server stopped the server; detach and reopen the store *)
  let vm2, _recovery = Vm.open_durable dir in
  let st = Option.get (Vm.store_status vm2) in
  Alcotest.(check bool) "every acknowledged batch is on disk" true
    (st.Ivm_store.Store.seq >= !last_seq);
  Alcotest.(check int) "all five pairs recovered" 5
    (Relation.cardinal (Vm.relation vm2 "both"));
  Alcotest.(check bool) "recovered audit ok" true (Vm.audit vm2 = Ok ());
  Vm.close_store vm2

(* Tentpole satellite: epoch pinning end-to-end.  A reader holding a
   published snapshot across several group commits keeps reading a
   frozen, consistent database (invariant 13), and the writer is never
   wedged by it — past [publish_max_wait_s] it falls back to a counted
   full copy instead of mutating the pinned buffer. *)
let held_snapshot_stays_consistent () =
  let config =
    { Server.default_config with readers = 1; publish_max_wait_s = 0.01 }
  in
  with_server ~config ab_src (fun srv _vm ->
      let pub = Server.publisher srv in
      let stalled0 = (Snap_pub.stats pub).Snap_pub.full_stalled in
      (* pin the pre-commit snapshot on the only reader cell; the reader
         domain only touches its cell while evaluating a query, so with
         no query in flight the cell is ours to hold *)
      let pinned = Snap_pub.acquire pub ~reader:0 in
      let d0 = Ivm_eval.Database.canonical_digest pinned in
      let c = Client.connect ~port:(Server.port srv) () in
      for i = 1 to 3 do
        ignore (Client.apply c (pair_batch i))
      done;
      (* three group commits later: the pinned snapshot froze *)
      Alcotest.(check string) "pinned snapshot never mutated" d0
        (Ivm_eval.Database.canonical_digest pinned);
      let rows q = (Ivm_eval.Query.run_text pinned q).Ivm_eval.Query.rows in
      Alcotest.(check bool) "no half-applied pair in the pinned view" true
        (Relation.is_empty (rows "a(X), !b(X)"));
      Alcotest.(check int) "pinned view predates every commit" 0
        (Relation.cardinal (rows "both(X)"));
      Alcotest.(check bool) "writer fell back instead of waiting forever" true
        ((Snap_pub.stats pub).Snap_pub.full_stalled > stalled0);
      Snap_pub.release pub ~reader:0;
      (* a fresh query sees all three commits *)
      let _cols, rows' = Client.query c "both(X)" in
      Alcotest.(check int) "all pairs visible after release" 3
        (Relation.cardinal rows');
      Client.close c)

(* ---------------- request tracing ---------------- *)

let http_get port path =
  let fd = raw_connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      Buffer.contents buf)

(* The tentpole's acceptance check: a single traced apply against a
   durable server decomposes into the full stage chain — in the Applied
   reply, in the completed-request ring behind [GET /requestz], and in
   the stage histograms — with exactly one fsync span per committed
   batch (ARCHITECTURE.md invariant 12) and the spans summing to
   (almost all of) the end-to-end latency. *)
let request_tracing_decomposed () =
  let dir = tmpdir "ivm_serve_reqtrace" in
  Reqtrace.reset ();
  let h_apply =
    Metrics.histogram ~labels:[ ("op", "apply") ] "ivm_serve_request_ns"
  in
  let h_fsync =
    Metrics.histogram ~labels:[ ("stage", "fsync") ] "ivm_serve_stage_ns"
  in
  let before_apply = Metrics.histogram_count h_apply in
  let before_fsync = Metrics.histogram_count h_fsync in
  let n = 5 in
  with_server ~durable:dir ab_src (fun srv _vm ->
      let c = Client.connect ~port:(Server.port srv) () in
      for i = 1 to n do
        let _seq, _deltas, timings =
          Client.apply_timed ~trace:(Printf.sprintf "t-%d" i) c (pair_batch i)
        in
        (* the Applied reply echoes every stage the writer saw; the ack
           stage is still in flight when the reply is cut *)
        List.iter
          (fun st ->
            Alcotest.(check bool)
              (st ^ " in Applied timings") true (List.mem_assoc st timings))
          [ "decode"; "queue"; "normalize"; "wal_append"; "maintain";
            "group_wait"; "fsync"; "publish" ]
      done;
      (* close waits for Bye, which the owning reader sends strictly
         after finishing the last ack — the ring is complete here *)
      Client.close c;
      let applies =
        List.filter (fun r -> r.Reqtrace.c_op = "apply") (Reqtrace.recent ())
      in
      Alcotest.(check int) "every traced apply completed into the ring" n
        (List.length applies);
      List.iter
        (fun r ->
          let names =
            List.map (fun (s : Reqtrace.stage) -> s.stage) r.Reqtrace.c_stages
          in
          List.iter
            (fun st ->
              Alcotest.(check bool)
                (st ^ " present in the stage chain")
                true (List.mem st names))
            Reqtrace.apply_stages;
          Alcotest.(check int) "exactly one fsync span (invariant 12)" 1
            (List.length (List.filter (( = ) "fsync") names));
          let sum_ns =
            List.fold_left
              (fun acc (s : Reqtrace.stage) ->
                acc + int_of_float ((s.t1 -. s.t0) *. 1e9))
              0 r.Reqtrace.c_stages
          in
          Alcotest.(check bool) "stages never exceed the end-to-end total"
            true
            (sum_ns <= r.Reqtrace.c_total_ns * 11 / 10);
          Alcotest.(check bool) "stages cover most of the request" true
            (2 * sum_ns >= r.Reqtrace.c_total_ns))
        applies;
      Alcotest.(check int) "one request_ns observation per apply" n
        (Metrics.histogram_count h_apply - before_apply);
      Alcotest.(check int) "one fsync observation per committed batch" n
        (Metrics.histogram_count h_fsync - before_fsync);
      (* and the monitor serves the same ring over HTTP *)
      let mon = Monitor.start ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Monitor.stop mon)
        (fun () ->
          let body = http_get (Monitor.port mon) "/requestz" in
          Alcotest.(check bool) "/requestz lists the traced applies" true
            (contains body "\"t-1\"");
          Alcotest.(check bool) "/requestz carries fsync spans" true
            (contains body "\"fsync\"")))

(* Satellite: bounded subscriber outboxes.  A subscriber that stops
   reading must not pin unbounded delta memory — past [max_outbox]
   pending messages its deltas are dropped (counted) and the session is
   disconnected, while well-behaved sessions keep committing. *)
let outbox_overflow_drops_and_disconnects () =
  let dropped = Metrics.counter "ivm_serve_deltas_dropped_total" in
  let config =
    { Server.default_config with max_outbox = 4; client_timeout_s = 0.5 }
  in
  with_server ~config ab_src (fun srv _vm ->
      let port = Server.port srv in
      (* a subscriber that never reads: tiny receive window, then silence *)
      let sub = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt_int sub Unix.SO_RCVBUF 1;
      Unix.connect sub (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Frame.write_fd sub
        (Protocol.encode_request
           (Protocol.Hello { version = Protocol.version; token = "" }));
      ignore (Frame.read_fd sub);
      Frame.write_fd sub (Protocol.encode_request (Protocol.Subscribe "both"));
      ignore (Frame.read_fd sub);
      let before = Metrics.counter_value dropped in
      (* bulky tuples so deltas overrun the socket buffers quickly *)
      let blob = String.make 4096 'x' in
      let fat i : Protocol.changes =
        let tup j =
          Tuple.of_list [ Value.str (Printf.sprintf "%s-%d-%d" blob i j) ]
        in
        let rel = Relation.of_list 1 (List.init 16 (fun j -> (tup j, 1))) in
        [ ("a", rel); ("b", rel) ]
      in
      let c = Client.connect ~port () in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let i = ref 0 in
      while
        Metrics.counter_value dropped = before
        && Unix.gettimeofday () < deadline
      do
        incr i;
        ignore (Client.apply c (fat !i))
      done;
      Alcotest.(check bool) "overflow counted in deltas_dropped_total" true
        (Metrics.counter_value dropped > before);
      (* the overflowing session is disconnected, not wedged *)
      Unix.setsockopt_float sub Unix.SO_RCVTIMEO 10.0;
      let rec drain_to_eof budget =
        if budget = 0 then Alcotest.fail "subscriber was not disconnected"
        else
          match Frame.read_fd sub with
          | _ -> drain_to_eof (budget - 1)
          | exception Frame.Closed -> ()
          | exception Wire.Corrupt _ -> ()
          | exception Unix.Unix_error _ -> ()
      in
      drain_to_eof 10_000;
      (try Unix.close sub with Unix.Unix_error _ -> ());
      (* the well-behaved session never noticed *)
      Client.ping c;
      ignore (Client.apply c (pair_batch 999_999));
      Client.close c)

let suite =
  [
    request_roundtrip;
    response_roundtrip;
    frame_roundtrip;
    quick "codec: trace context is v1 wire compatible" trace_context_wire_compat;
    quick "codec: trailing bytes rejected" trailing_bytes_rejected;
    quick "frame: bit flip detected by CRC" corrupt_frame_rejected;
    quick "frame: truncation reads as Closed" truncated_frame_is_closed;
    quick "apply_group: one fsync per group" group_commit_single_fsync;
    quick "apply_group: bad batch isolated, log stays clean"
      group_commit_isolates_bad_batch;
    quick "server: hello/ping/query/apply/status" basic_session;
    quick "server: concurrent readers see atomic batches" snapshot_consistency;
    quick "server: subscriber receives per-batch deltas"
      subscriber_receives_deltas;
    quick "server: dead subscriber does not wedge the writer"
      dead_subscriber_does_not_wedge_writer;
    quick "server: version and auth gatekeeping" handshake_gatekeeping;
    quick "server: session and batch quotas" quotas_enforced;
    quick "server: acked batches survive kill and reopen"
      acked_batches_survive_reopen;
    quick "server: held snapshot stays consistent across commits"
      held_snapshot_stays_consistent;
    quick "reqtrace: one apply decomposes into the full stage chain"
      request_tracing_decomposed;
    quick "server: overflowing subscriber outbox is bounded"
      outbox_overflow_drops_and_disconnects;
  ]
