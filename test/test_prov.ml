(** Provenance & lineage ([Ivm_prov]): unit tests over small programs and
    randomized properties over generated stratified programs.

    The properties drive each maintenance algorithm over a seeded
    insert/delete stream with capture on and then check the store against
    the live database:

    - every [why]-tree edge re-validates: the support's rule is in the
      program and {!Ivm_prov.Prov_query.validate_support} accepts it
      against the current relations;
    - leaves are base facts (nonrecursive programs; recursive trees may
      also end at a cycle);
    - [why not] never fires for a present tuple;
    - tuples deleted by maintenance retain no supports.

    Aggregate-free shapes only: a GROUPBY subgoal is deliberately not
    expanded into children (the tree notes it instead), which would void
    the strict leaves-are-base-facts check. *)

open Util
module Prov = Ivm_prov.Prov
module Pq = Ivm_prov.Prov_query
module Json = Ivm_obs.Json
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Rc = Ivm.Recursive_counting
module Pf = Ivm_baselines.Pf
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen
module Programs = Ivm_workload.Programs
module Pretty = Ivm_datalog.Pretty

let q ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Capture is process-global state; every test flips it on for its own
   scenario and restores the disabled default. *)
let with_capture f =
  Prov.reset ();
  Prov.set_enabled true;
  Fun.protect ~finally:(fun () -> Prov.set_enabled false) f

let access_of db = Vm.provenance_access (Vm.of_database db)

let t2 a b = Tuple.of_list [ Value.Str a; Value.Str b ]

(* ------------------------------------------------------------------ *)
(* Unit tests                                                           *)
(* ------------------------------------------------------------------ *)

let hop_src =
  "hop(X, Y) :- link(X, Z), link(Z, Y).\n\
   tri(X) :- hop(X, X).\n\
   link(a, b). link(b, c). link(c, a)."

let test_why_present_tuple () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  let access = Vm.provenance_access vm in
  match Pq.why access "hop" (t2 "a" "c") with
  | Pq.Why_tree { t_kind = Pq.Derived { supports = [ d ]; _ }; _ } ->
    Alcotest.(check string)
      "support rule" "hop(X, Y) :- link(X, Z), link(Z, Y)." d.Pq.d_rule;
    Alcotest.(check int) "two subgoal children" 2 (List.length d.Pq.d_children);
    List.iter
      (fun c ->
        match c.Pq.t_kind with
        | Pq.Base -> ()
        | _ -> Alcotest.fail "hop child should be a base fact")
      d.Pq.d_children
  | _ -> Alcotest.fail "expected a single-support derivation tree"

let test_why_absent_and_unknown () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  let access = Vm.provenance_access vm in
  (match Pq.why access "hop" (t2 "a" "a") with
  | Pq.Why_tree _ -> Alcotest.fail "hop(a,a) holds?"
  | Pq.Why_absent -> ()
  | Pq.Why_unknown_pred -> Alcotest.fail "hop is known");
  match Pq.why access "nope" (t2 "a" "a") with
  | Pq.Why_unknown_pred -> ()
  | _ -> Alcotest.fail "nope should be unknown"

let test_insert_delete_lineage () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  (* c->b closes hop(b,b): batch 1 derives it, batch 2 deletes it *)
  ignore (Vm.insert vm "link" [ t2 "c" "b" ]);
  Alcotest.(check bool)
    "hop(b,b) present" true
    (Relation.mem (Vm.relation vm "hop") (t2 "b" "b"));
  Alcotest.(check bool)
    "hop(b,b) has supports" true
    (Prov.supports_of ~pred:"hop" (t2 "b" "b") <> []);
  ignore (Vm.delete vm "link" [ t2 "c" "b" ]);
  Alcotest.(check bool)
    "supports purged on deletion" true
    (Prov.supports_of ~pred:"hop" (t2 "b" "b") = []);
  match Prov.lineage_of ~pred:"hop" (t2 "b" "b") with
  | Some { Prov.first_derived = Some b1; last_deleted = Some b2; _ } ->
    Alcotest.(check bool) "derived before deleted" true (b1 < b2)
  | _ -> Alcotest.fail "expected full lineage for hop(b,b)"

let test_whynot_reports_failing_subgoal () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  let access = Vm.provenance_access vm in
  (match Pq.whynot access "hop" (t2 "a" "c") with
  | Pq.Whynot_present 1 -> ()
  | _ -> Alcotest.fail "hop(a,c) is present with count 1");
  (match Pq.whynot access "link" (t2 "a" "z") with
  | Pq.Whynot_base -> ()
  | _ -> Alcotest.fail "absent base fact reports Whynot_base");
  match Pq.whynot access "hop" (t2 "b" "b") with
  | Pq.Whynot_failures [ f ] ->
    Alcotest.(check int) "one of two subgoals satisfiable" 1 f.Pq.f_progress;
    Alcotest.(check int) "two body literals" 2 f.Pq.f_total;
    Alcotest.(check bool) "a failing literal is named" true (f.Pq.f_failing <> None)
  | _ -> Alcotest.fail "expected one candidate-rule failure"

let test_rule_change_refreshes_supports () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  Vm.add_rule_text vm "hop(X, Y) :- link(X, Y).";
  let sups = Prov.supports_of ~pred:"hop" (t2 "a" "b") in
  Alcotest.(check bool)
    "direct-rule support exists after addrule" true
    (List.exists (fun s -> s.Prov.rule = "hop(X, Y) :- link(X, Y).") sups);
  Vm.remove_rule_text vm "hop(X, Y) :- link(X, Y).";
  Alcotest.(check bool)
    "support through the removed rule is gone" true
    (List.for_all
       (fun s -> s.Prov.rule <> "hop(X, Y) :- link(X, Y).")
       (Prov.supports_of ~pred:"hop" (t2 "a" "b")));
  let access = Vm.provenance_access vm in
  match Pq.why access "hop" (t2 "a" "c") with
  | Pq.Why_tree { t_kind = Pq.Derived _; _ } -> ()
  | _ -> Alcotest.fail "hop(a,c) should re-validate after rule churn"

let test_support_bound_truncates () =
  with_capture @@ fun () ->
  let prev = Prov.max_supports () in
  Prov.set_max_supports 1;
  Fun.protect ~finally:(fun () -> Prov.set_max_supports prev) @@ fun () ->
  let vm =
    Vm.of_source ~algorithm:Vm.Counting
      "hop(X, Y) :- link(X, Y).\n\
       hop(X, Y) :- back(Y, X).\n\
       link(a, b). back(b, a)."
  in
  Vm.enable_provenance vm;
  Alcotest.(check int)
    "bound keeps one support" 1
    (List.length (Prov.supports_of ~pred:"hop" (t2 "a" "b")));
  Alcotest.(check bool)
    "tuple marked truncated" true
    (Prov.supports_truncated ~pred:"hop" (t2 "a" "b"))

let test_disabled_capture_is_inert () =
  Prov.reset ();
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Alcotest.(check bool) "capture off" false (Vm.provenance_enabled vm);
  ignore (Vm.insert vm "link" [ t2 "c" "b" ]);
  Alcotest.(check int) "nothing recorded" 0 (Prov.tuples_tracked ());
  let access = Vm.provenance_access vm in
  match Pq.why access "hop" (t2 "b" "b") with
  | Pq.Why_tree { t_kind = Pq.Unsupported; _ } -> ()
  | _ -> Alcotest.fail "present tuple without capture reports Unsupported"

let test_explain_json () =
  with_capture @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting hop_src in
  Vm.enable_provenance vm;
  (match Vm.explain_json vm "hop(a, c)" with
  | Ok doc ->
    Alcotest.(check (option string))
      "fact echoed" (Some "hop(a, c)")
      (Option.bind (Json.member "fact" doc) Json.to_string_opt);
    Alcotest.(check bool)
      "why present" true
      (Json.member "why" doc <> None)
  | Error e -> Alcotest.fail ("explain_json: " ^ e));
  (match Vm.explain_json vm "hop(b, b)." with
  | Ok doc -> Alcotest.(check bool) "whynot present" true (Json.member "whynot" doc <> None)
  | Error e -> Alcotest.fail ("explain_json absent: " ^ e));
  (match Vm.explain_json vm "nosuch(1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown predicate must error");
  match Vm.explain_json vm "garbage(((" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse failure must error"

let test_dred_recursive_why () =
  with_capture @@ fun () ->
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      (Programs.transitive_closure ^ "\nlink(a, b). link(b, c). link(c, d).")
  in
  Vm.enable_provenance vm;
  ignore (Vm.insert vm "link" [ t2 "d" "a" ]);
  let access = Vm.provenance_access vm in
  (match Pq.why ~max_depth:32 access "path" (t2 "a" "d") with
  | Pq.Why_tree { t_kind = Pq.Derived _; _ } -> ()
  | _ -> Alcotest.fail "path(a,d) should have a derivation tree");
  ignore (Vm.delete vm "link" [ t2 "b" "c" ]);
  Alcotest.(check bool)
    "path(a,d) deleted" false
    (Relation.mem (Vm.relation vm "path") (t2 "a" "d"));
  Alcotest.(check bool)
    "deleted path tuple keeps no supports" true
    (Prov.supports_of ~pred:"path" (t2 "a" "d") = [])

(* ------------------------------------------------------------------ *)
(* Randomized properties                                                *)
(* ------------------------------------------------------------------ *)

let nodes = 10
let edges = 25
let steps = 3

(* Aggregate-free variant of the differential suite's program shapes. *)
type shape = {
  seed : int;
  union_hop : bool;
  tri : bool;
  negation : bool;
  cmp : bool;
}

let source_of s =
  let b = Buffer.create 256 in
  Buffer.add_string b "hop(X, Y) :- link(X, Z), link(Z, Y).\n";
  if s.union_hop then Buffer.add_string b "hop(X, Y) :- link(X, Y).\n";
  if s.tri || s.negation then
    Buffer.add_string b "tri(X, Y) :- hop(X, Z), link(Z, Y).\n";
  if s.negation then
    Buffer.add_string b "only_tri(X, Y) :- tri(X, Y), not hop(X, Y).\n";
  if s.cmp then Buffer.add_string b "up_hop(X, Y) :- hop(X, Y), X < Y.\n";
  Buffer.contents b

let arb_shape =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "seed=%d\n%s" s.seed (source_of s))
    QCheck.Gen.(
      map
        (fun (seed, (u, t, n, c)) ->
          { seed; union_hop = u; tri = t; negation = n; cmp = c })
        (pair (int_range 1 1_000_000) (tup4 bool bool bool bool)))

let arb_seed =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck.Gen.(int_range 1 1_000_000)

let with_domains d f =
  let prev = Ivm_par.domains () in
  Ivm_par.set_domains d;
  Fun.protect ~finally:(fun () -> Ivm_par.set_domains prev) f

(* Walk a why tree, failing on anything that is not a validated current
   derivation ending in base facts (or, when [allow_cycle], a cycle). *)
let check_tree ~allow_cycle access root =
  let rec walk t =
    match t.Pq.t_kind with
    | Pq.Base ->
      if not (access.Pq.is_base t.Pq.t_pred) then
        failwith (Printf.sprintf "non-base leaf %s" t.Pq.t_pred);
      if not (access.Pq.holds t.Pq.t_pred t.Pq.t_tuple) then
        failwith "base leaf does not hold"
    | Pq.Cycle ->
      if not allow_cycle then failwith "cycle in a nonrecursive tree"
    | Pq.Depth_limit -> failwith "depth limit reached"
    | Pq.Unsupported ->
      failwith
        (Printf.sprintf "present tuple %s has no valid support"
           (Pq.fact_to_string t.Pq.t_pred t.Pq.t_tuple))
    | Pq.Derived { supports; _ } ->
      if supports = [] then failwith "derived node with no supports";
      List.iter
        (fun d ->
          (* the support's rule must be one of the program's own rules —
             never an internal rewrite like DRed's rederivation rules *)
          if
            not
              (List.exists
                 (fun r -> String.equal (Pretty.rule_to_string r) d.Pq.d_rule)
                 (access.Pq.rules_for t.Pq.t_pred))
          then failwith (Printf.sprintf "rule not in program: %s" d.Pq.d_rule);
          (* edge re-validation, independently of the walk itself *)
          let sup =
            {
              Prov.rule = d.Pq.d_rule;
              subgoals =
                Array.of_list
                  (List.map (fun c -> (c.Pq.t_pred, c.Pq.t_tuple)) d.Pq.d_children);
              mult = d.Pq.d_mult;
            }
          in
          if not (Pq.validate_support access t.Pq.t_pred t.Pq.t_tuple sup) then
            failwith
              (Printf.sprintf "support fails validation: %s for %s" d.Pq.d_rule
                 (Pq.fact_to_string t.Pq.t_pred t.Pq.t_tuple));
          List.iter walk d.Pq.d_children)
        supports
  in
  walk root

(** Drive one algorithm over a seeded change stream with capture on, then
    check the whole store against the final database state. *)
let scenario ~semantics ~src ~load ~evaluate ~maintain ~next ~max_depth
    ~allow_cycle seed =
  with_domains 1 @@ fun () ->
  with_capture @@ fun () ->
  let rng = Prng.create seed in
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link" (load rng);
  Prov.set_mode Prov.Add;
  evaluate db;
  let derived = Program.derived_preds program in
  (* every (pred, tuple) ever observed present, to find deletions later *)
  let seen = Hashtbl.create 64 in
  let snapshot () =
    List.iter
      (fun p ->
        Relation.iter
          (fun tup _ -> Hashtbl.replace seen (p, tup) ())
          (Database.relation db p))
      derived
  in
  snapshot ();
  for _ = 1 to steps do
    let changes = next rng db in
    Prov.batch_begin ~algorithm:"property";
    maintain db changes;
    snapshot ()
  done;
  let access = access_of db in
  List.iter
    (fun p ->
      Relation.iter
        (fun tup _ ->
          (match Pq.why ~max_depth ~max_width:16 access p tup with
          | Pq.Why_tree t -> check_tree ~allow_cycle access t
          | Pq.Why_absent | Pq.Why_unknown_pred ->
            failwith "why did not return a tree for a present tuple");
          match Pq.whynot access p tup with
          | Pq.Whynot_present _ -> ()
          | _ ->
            failwith
              (Printf.sprintf "why not fired for present %s"
                 (Pq.fact_to_string p tup)))
        (Database.relation db p))
    derived;
  Hashtbl.iter
    (fun (p, tup) () ->
      if not (Relation.mem (Database.relation db p) tup) then
        if Prov.supports_of ~pred:p tup <> [] then
          failwith
            (Printf.sprintf "deleted tuple %s retains supports"
               (Pq.fact_to_string p tup)))
    seen;
  true

let mixed_stream rng db =
  Update_gen.mixed rng db "link" ~nodes ~dels:(Prng.int rng 4)
    ~ins:(Prng.int rng 4)

let random_graph rng = Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges)

let nonrec_prop ~semantics ~maintain s =
  scenario ~semantics ~src:(source_of s) ~load:random_graph
    ~evaluate:Seminaive.evaluate ~maintain ~next:mixed_stream ~max_depth:8
    ~allow_cycle:false s.seed

let property_tests =
  [
    q ~count:40 "counting: why edges validate, leaves are base (set)" arb_shape
      (nonrec_prop ~semantics:Database.Set_semantics ~maintain:(fun db c ->
           ignore (Counting.maintain db c)));
    q ~count:25 "counting: why edges validate (duplicate counts)" arb_shape
      (nonrec_prop ~semantics:Database.Duplicate_semantics ~maintain:(fun db c ->
           ignore (Counting.maintain db c)));
    q ~count:30 "dred: why edges validate, leaves are base (nonrecursive)"
      arb_shape
      (nonrec_prop ~semantics:Database.Set_semantics ~maintain:(fun db c ->
           ignore (Dred.maintain db c)));
    q ~count:20 "pf: why edges validate, leaves are base (nonrecursive)"
      arb_shape
      (nonrec_prop ~semantics:Database.Set_semantics ~maintain:(fun db c ->
           ignore (Pf.maintain db c)));
    q ~count:20 "dred: why edges validate (recursive closure)" arb_seed
      (fun seed ->
        scenario ~semantics:Database.Set_semantics
          ~src:Programs.transitive_closure ~load:random_graph
          ~evaluate:Seminaive.evaluate
          ~maintain:(fun db c -> ignore (Dred.maintain db c))
          ~next:mixed_stream ~max_depth:64 ~allow_cycle:true seed);
    q ~count:15 "pf: why edges validate (recursive closure)" arb_seed
      (fun seed ->
        scenario ~semantics:Database.Set_semantics
          ~src:Programs.transitive_closure ~load:random_graph
          ~evaluate:Seminaive.evaluate
          ~maintain:(fun db c -> ignore (Pf.maintain db c))
          ~next:mixed_stream ~max_depth:64 ~allow_cycle:true seed);
    (* recursive counting needs acyclic data: layered DAG, deletions only *)
    q ~count:15 "recursive counting: why edges validate (DAG deletions)"
      arb_seed
      (fun seed ->
        scenario ~semantics:Database.Duplicate_semantics
          ~src:Programs.transitive_closure
          ~load:(fun rng ->
            Graph_gen.tuples
              (Graph_gen.layered_dag rng ~layers:5 ~width:4 ~out_degree:2))
          ~evaluate:Rc.evaluate
          ~maintain:(fun db c -> ignore (Rc.maintain db c))
          ~next:(fun rng db ->
            Update_gen.deletions rng db "link" (Prng.int rng 3))
          ~max_depth:64 ~allow_cycle:true seed);
  ]

let suite =
  [
    Alcotest.test_case "why: present tuple tree" `Quick test_why_present_tuple;
    Alcotest.test_case "why: absent / unknown" `Quick test_why_absent_and_unknown;
    Alcotest.test_case "insert/delete lineage" `Quick test_insert_delete_lineage;
    Alcotest.test_case "why not: failing subgoal" `Quick
      test_whynot_reports_failing_subgoal;
    Alcotest.test_case "rule change refreshes supports" `Quick
      test_rule_change_refreshes_supports;
    Alcotest.test_case "support bound truncates" `Quick
      test_support_bound_truncates;
    Alcotest.test_case "disabled capture is inert" `Quick
      test_disabled_capture_is_inert;
    Alcotest.test_case "explain_json" `Quick test_explain_json;
    Alcotest.test_case "dred: recursive why + purge" `Quick
      test_dred_recursive_why;
  ]
  @ property_tests
