(** Shared helpers for the test suites. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Seminaive = Ivm_eval.Seminaive

(** Alcotest testable for relations compared including counts. *)
let relation_counted : Relation.t Alcotest.testable =
  Alcotest.testable Relation.pp Relation.equal_counted

(** Alcotest testable for relations compared as sets. *)
let relation_set : Relation.t Alcotest.testable =
  Alcotest.testable Relation.pp Relation.equal_sets

(** Parse a whole program text (rules and facts), build the database, load
    the facts, and materialize all views. *)
let db_of_source ?(semantics = Database.Set_semantics) ?extra_base src =
  let statements = Parser.parse_program src in
  let rules, facts = Parser.split statements in
  let program = Program.make ?extra_base rules in
  let db = Database.create ~semantics program in
  List.iter (fun (p, vals) -> Database.load db p [ Tuple.of_list vals ]) facts;
  Seminaive.evaluate db;
  db

(** Parse tuples like ["ab; cd"] into 2-character symbol pairs — the
    paper's compact notation [link = {ab, mn}]. *)
let pairs s =
  String.split_on_char ';' s
  |> List.filter_map (fun w ->
         let w = String.trim w in
         if w = "" then None
         else begin
           assert (String.length w = 2);
           Some (Tuple.of_strs [ String.make 1 w.[0]; String.make 1 w.[1] ])
         end)

(** [rel_of_pairs "ab; ac 2"] — pairs with optional counts. *)
let rel_of_pairs s =
  let entries =
    String.split_on_char ';' s
    |> List.filter_map (fun w ->
           let w = String.trim w in
           if w = "" then None
           else
             match String.split_on_char ' ' w with
             | [ p ] ->
               Some (Tuple.of_strs [ String.make 1 p.[0]; String.make 1 p.[1] ], 1)
             | [ p; c ] ->
               Some
                 ( Tuple.of_strs [ String.make 1 p.[0]; String.make 1 p.[1] ],
                   int_of_string c )
             | _ -> failwith ("bad pair spec: " ^ w))
  in
  Relation.of_list 2 entries

let check_rel ?(counted = true) msg expected actual =
  let t = if counted then relation_counted else relation_set in
  Alcotest.check t msg expected actual

(** Relation stored for [pred] in [db]. *)
let rel db pred = Database.relation db pred

(** Canonical dump of a relation: entries sorted by tuple, with counts.
    Iteration-order independent — route any assertion that compares dumped
    relation text through this (or {!Relation.to_string}, which sorts the
    same way) rather than through raw fold/iter order. *)
let sorted_entries (r : Relation.t) : (Tuple.t * int) list =
  Relation.to_sorted_list r

(** Canonical dump of every derived relation of [db] — predicates sorted
    by name, tuples sorted within each relation.  Two databases are in the
    same derived state iff their dumps are byte-identical, whatever the
    internal hash-table order (used by the domains-1-vs-4 determinism
    properties). *)
let canonical_dump (db : Database.t) : string =
  let program = Database.program db in
  String.concat "\n"
    (List.map
       (fun p -> p ^ " = " ^ Relation.to_string (Database.relation db p))
       (List.sort String.compare (Program.derived_preds program)))

let quick name f = Alcotest.test_case name `Quick f
