(** The live monitoring endpoint and per-rule cost attribution.

    Three layers: QCheck properties over the Prometheus text writer
    (escaping round-trips, header/sample structure, histogram
    bucket/sum/count consistency against the registry's own
    accounting), unit tests of the attribution table's batch invariants
    (per-stratum wall sums vs the recorded totals, sequentially at one
    domain), and an HTTP smoke test against a live server on an
    ephemeral port — real sockets, real requests. *)

module Metrics = Ivm_obs.Metrics
module Json = Ivm_obs.Json
module Attribution = Ivm_obs.Attribution
module Prometheus = Ivm_monitor.Prometheus
module Monitor = Ivm_monitor.Monitor
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value

let q ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Unique metric names per registration: the registry is global and
   rejects kind clashes, so every property iteration gets fresh names. *)
let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "monitor_test_%s_%d" prefix !n

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
let is_comment l = String.length l > 0 && l.[0] = '#'

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~needle s =
  let nl = String.length needle and sl = String.length s in
  let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Prometheus writer: escaping                                          *)
(* ------------------------------------------------------------------ *)

(* Label values drawn from the characters the exposition format cares
   about, plus ordinary text. *)
let label_value_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; '\\'; '"'; '\n'; ' '; '{'; '}'; '='; ',' ])
      (0 -- 16))

let label_value_arb =
  QCheck.make ~print:(Printf.sprintf "%S") label_value_gen

(** Inverse of the writer's label-value escaping; raises on an invalid
    escape so the property fails loudly rather than silently matching. *)
let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    (if s.[!i] = '\\' then begin
       if !i + 1 >= String.length s then failwith "dangling backslash";
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c -> failwith (Printf.sprintf "bad escape \\%c" c));
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

(** One labeled counter rendered: the sample stays on a single line and
    the label value round-trips through the escaping. *)
let prop_label_escaping v =
  let name = fresh "esc" in
  let c = Metrics.counter ~labels:[ ("rule", v) ] name in
  Metrics.add c 7;
  let out =
    Prometheus.render_list
      [ { Metrics.name; labels = [ ("rule", v) ]; metric = Metrics.Counter c } ]
  in
  let ls = lines out in
  (* exactly TYPE + one sample: a raw newline in the value would add lines *)
  if List.length ls <> 2 then
    QCheck.Test.fail_reportf "expected 2 lines, got %d:@.%s" (List.length ls) out;
  let sample = List.nth ls 1 in
  let prefix = name ^ "{rule=\"" and suffix = "\"} 7" in
  if not (starts_with ~prefix sample) then
    QCheck.Test.fail_reportf "sample %S lacks prefix %S" sample prefix;
  let slen = String.length sample in
  if String.sub sample (slen - String.length suffix) (String.length suffix) <> suffix
  then QCheck.Test.fail_reportf "sample %S lacks suffix %S" sample suffix;
  let escaped =
    String.sub sample (String.length prefix)
      (slen - String.length prefix - String.length suffix)
  in
  String.equal (unescape_label_value escaped) v

(** Help text: backslash and newline escaped, double quote left alone. *)
let test_help_escaping () =
  let name = fresh "help" in
  let g = Metrics.gauge name ~help:"line1\nline2 \\ \"quoted\"" in
  Metrics.set g 1.0;
  let out =
    Prometheus.render_list
      [ { Metrics.name; labels = []; metric = Metrics.Gauge g } ]
  in
  let help_line = List.hd (lines out) in
  Alcotest.(check string)
    "escaped help line"
    (Printf.sprintf "# HELP %s line1\\nline2 \\\\ \"quoted\"" name)
    help_line

(* ------------------------------------------------------------------ *)
(* Prometheus writer: family structure                                  *)
(* ------------------------------------------------------------------ *)

(** Random mix of families and label sets: every family has exactly one
    TYPE header, the header precedes all its samples, and the family's
    samples are contiguous. *)
let prop_family_structure (kinds : bool list) =
  let base = fresh "fam" in
  let rows =
    List.concat
      (List.mapi
         (fun i as_counter ->
           let name = Printf.sprintf "%s_%d" base (i mod 3) in
           (* colliding names across iterations are deliberate: families
              with several label sets must still render as one block *)
           let labels = [ ("idx", string_of_int i) ] in
           if as_counter then
             match Metrics.counter ~labels name with
             | c -> [ { Metrics.name; labels; metric = Metrics.Counter c } ]
             | exception Invalid_argument _ -> []
           else
             match Metrics.gauge ~labels name with
             | g -> [ { Metrics.name; labels; metric = Metrics.Gauge g } ]
             | exception Invalid_argument _ -> [])
         kinds)
  in
  let out = Prometheus.render_list rows in
  let ls = lines out in
  (* walk the output: record for each family the order of events *)
  let family_of_line l =
    if is_comment l then
      match String.split_on_char ' ' l with
      | "#" :: _ :: name :: _ -> name
      | _ -> Alcotest.failf "malformed comment %S" l
    else
      let stop =
        match String.index_opt l '{' with
        | Some i -> i
        | None -> (match String.index_opt l ' ' with Some i -> i | None -> String.length l)
      in
      String.sub l 0 stop
  in
  let seen_done = Hashtbl.create 8 in
  let current = ref None in
  List.for_all
    (fun l ->
      let fam = family_of_line l in
      (match !current with
      | Some f when f <> fam -> Hashtbl.replace seen_done f ()
      | _ -> ());
      current := Some fam;
      if is_comment l then
        if Hashtbl.mem seen_done fam then false (* header after family closed *)
        else true
      else if Hashtbl.mem seen_done fam then false (* family split apart *)
      else true)
    ls
  &&
  (* every family that produced rows got exactly one TYPE line *)
  let type_lines =
    List.filter (fun l -> starts_with ~prefix:"# TYPE " l) ls
  in
  List.length type_lines
  = List.length
      (List.sort_uniq String.compare
         (List.map (fun (r : Metrics.registered) -> r.name) rows))

(* ------------------------------------------------------------------ *)
(* Prometheus writer: histogram consistency                             *)
(* ------------------------------------------------------------------ *)

let observations_arb =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (1 -- 40) (int_range 0 100000))

(** Rendered histogram vs the registry's own accounting: cumulative
    buckets nondecreasing, [le] bounds increasing, +Inf bucket = _count =
    observation count, _sum = observation sum. *)
let prop_histogram_consistency obs =
  let name = fresh "hist" in
  let h = Metrics.histogram name in
  List.iter (Metrics.observe h) obs;
  let out =
    Prometheus.render_list
      [ { Metrics.name; labels = []; metric = Metrics.Histogram h } ]
  in
  let ls = List.filter (fun l -> not (is_comment l)) (lines out) in
  let value_of l =
    match String.rindex_opt l ' ' with
    | Some i ->
      float_of_string (String.sub l (i + 1) (String.length l - i - 1))
    | None -> Alcotest.failf "malformed sample %S" l
  in
  let bucket_lines, rest =
    List.partition (fun l -> starts_with ~prefix:(name ^ "_bucket{") l) ls
  in
  let le_of l =
    let i = String.index l '"' in
    let j = String.index_from l (i + 1) '"' in
    String.sub l (i + 1) (j - i - 1)
  in
  let finite, inf =
    List.partition (fun l -> le_of l <> "+Inf") bucket_lines
  in
  let sum_line = List.find (fun l -> starts_with ~prefix:(name ^ "_sum ") l) rest in
  let count_line =
    List.find (fun l -> starts_with ~prefix:(name ^ "_count ") l) rest
  in
  let n = List.length obs and total = List.fold_left ( + ) 0 obs in
  (* exactly one +Inf bucket, equal to the count *)
  List.length inf = 1
  && value_of (List.hd inf) = float_of_int n
  && value_of count_line = float_of_int n
  && value_of sum_line = float_of_int total
  (* finite buckets: increasing le, nondecreasing cumulative, last <= n *)
  &&
  let les = List.map (fun l -> int_of_string (le_of l)) finite in
  let cums = List.map value_of finite in
  let rec nondecreasing = function
    | a :: (b :: _ as t) -> a <= b && nondecreasing t
    | _ -> true
  in
  List.sort_uniq compare les = les
  && nondecreasing cums
  && (match List.rev cums with [] -> n = 0 | last :: _ -> last <= float_of_int n)
  (* each le bound really is the registry's inclusive bucket upper *)
  && List.for_all
       (fun le -> Metrics.bucket_upper (Metrics.bucket_of le) = le || le = 0)
       les

(* ------------------------------------------------------------------ *)
(* Attribution: batch invariants                                        *)
(* ------------------------------------------------------------------ *)

let two_strata_src =
  "hop(X,Y) :- link(X,Z), link(Z,Y).\n\
   far(X,Y) :- hop(X,Z), hop(Z,Y).\n\
   link(a,b). link(b,c). link(c,d). link(d,e).\n"

let t2 a b = Tuple.of_list [ Value.Str a; Value.Str b ]

(** One counting batch at one domain: rows present, busy = Σ row walls,
    busy ≤ total (no overlap without parallelism), per-stratum sums
    partition busy, and the slowest rule heads the list. *)
let test_attribution_batch () =
  let prev_domains = Ivm_par.domains () in
  Ivm_par.set_domains 1;
  Fun.protect ~finally:(fun () -> Ivm_par.set_domains prev_domains) @@ fun () ->
  let vm = Vm.of_source ~algorithm:Vm.Counting two_strata_src in
  Ivm_eval.Stats.sync ();
  let stats_before = Ivm_eval.Stats.snapshot () in
  ignore (Vm.apply vm (Changes.insertions (Vm.program vm) "link" [ t2 "e" "f" ]));
  Ivm_eval.Stats.sync ();
  let kernel = Ivm_eval.Stats.since stats_before in
  match Attribution.last () with
  | None -> Alcotest.fail "no batch recorded (attribution disabled?)"
  | Some b ->
    Alcotest.(check string) "algorithm" "counting" b.Attribution.algorithm;
    Alcotest.(check bool) "has rows" true (b.Attribution.rows <> []);
    Alcotest.(check int) "nothing truncated" 0 b.Attribution.truncated;
    let busy =
      List.fold_left (fun a r -> a + r.Attribution.wall_ns) 0 b.Attribution.rows
    in
    Alcotest.(check int) "busy = sum of row walls" busy b.Attribution.busy_wall_ns;
    Alcotest.(check bool) "busy <= total at one domain" true
      (b.Attribution.busy_wall_ns <= b.Attribution.total_wall_ns);
    (* per-stratum sums partition busy and stay within total *)
    let strata = Hashtbl.create 4 in
    List.iter
      (fun r ->
        let s = r.Attribution.stratum in
        Hashtbl.replace strata s
          (r.Attribution.wall_ns
          + try Hashtbl.find strata s with Not_found -> 0))
      b.Attribution.rows;
    let stratum_sum = Hashtbl.fold (fun _ v a -> a + v) strata 0 in
    Alcotest.(check int) "stratum sums partition busy" busy stratum_sum;
    Alcotest.(check bool) "both strata attributed" true (Hashtbl.length strata >= 2);
    (* rows are wall-descending *)
    let rec sorted = function
      | a :: (b :: _ as t) -> a.Attribution.wall_ns >= b.Attribution.wall_ns && sorted t
      | _ -> true
    in
    Alcotest.(check bool) "rows wall-descending" true (sorted b.Attribution.rows);
    (* delta flowed: at least one rule saw input and produced output *)
    Alcotest.(check bool) "some rule consumed delta" true
      (List.exists (fun r -> r.Attribution.din > 0) b.Attribution.rows);
    (* per-rule probe/scan counters partition the kernel's global
       counters for the batch: every probe the compiled plans issue is
       attributed to exactly one rule (no double counting, nothing
       escapes the attributed windows) *)
    let sum f = List.fold_left (fun a r -> a + f r) 0 b.Attribution.rows in
    Alcotest.(check int) "row probes partition kernel probes"
      kernel.Ivm_eval.Stats.snap_probes
      (sum (fun r -> r.Attribution.probes));
    Alcotest.(check int) "row scans partition kernel scans"
      kernel.Ivm_eval.Stats.snap_tuples_scanned
      (sum (fun r -> r.Attribution.scanned));
    (* both join rules consumed delta, so the compiled plans must have
       probed — a kernel that stopped reporting probes would zero these *)
    Alcotest.(check bool) "kernel probed at all" true
      (kernel.Ivm_eval.Stats.snap_probes > 0);
    List.iter
      (fun r ->
        if r.Attribution.din > 0 then
          Alcotest.(check bool)
            ("delta-consuming rule probed: " ^ r.Attribution.rule)
            true
            (r.Attribution.probes > 0);
        (* each derived tuple of these join-only rules came from a
           scanned match *)
        Alcotest.(check bool)
          ("dout bounded by scanned: " ^ r.Attribution.rule)
          true
          (r.Attribution.dout <= r.Attribution.scanned))
      b.Attribution.rows

let test_attribution_disabled () =
  Attribution.set_enabled false;
  Fun.protect ~finally:(fun () -> Attribution.set_enabled true) @@ fun () ->
  let before = Attribution.last () in
  let vm = Vm.of_source ~algorithm:Vm.Counting two_strata_src in
  ignore (Vm.apply vm (Changes.insertions (Vm.program vm) "link" [ t2 "e" "f" ]));
  Alcotest.(check bool) "disabled batches leave no trace" true
    (Attribution.last () == before
    || Attribution.last () = before)

let test_attribution_json_and_pp () =
  let vm = Vm.of_source ~algorithm:Vm.Dred two_strata_src in
  ignore (Vm.apply vm (Changes.deletions (Vm.program vm) "link" [ t2 "b" "c" ]));
  match Attribution.last () with
  | None -> Alcotest.fail "no batch recorded"
  | Some b ->
    let j = Attribution.batch_json b in
    Alcotest.(check (option string))
      "algorithm in json" (Some "dred")
      (Option.bind (Json.member "algorithm" j) Json.to_string_opt);
    (* the JSON document round-trips through the parser *)
    let reparsed = Json.of_string (Json.to_string j) in
    Alcotest.(check bool) "rules is a list" true
      (match Json.member "rules" reparsed with
      | Some (Json.List _) -> true
      | _ -> false);
    let table = Format.asprintf "%a" (fun ppf b -> Attribution.pp_batch ppf b) b in
    Alcotest.(check bool) "pp names a rule" true (contains ~needle:":-" table);
    Alcotest.(check bool) "pp shows the phase column" true
      (contains ~needle:"phase" table)

(* ------------------------------------------------------------------ *)
(* HTTP smoke: a live server on an ephemeral port                       *)
(* ------------------------------------------------------------------ *)

let http_get port path =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close s) @@ fun () ->
  Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" path in
  ignore (Unix.write_substring s req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read s bytes 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf bytes 0 n;
      drain ()
    end
  in
  drain ();
  let raw = Buffer.contents buf in
  (* split status line / body at the header terminator *)
  let sep = "\r\n\r\n" in
  let rec find i =
    if i + 4 > String.length raw then Alcotest.failf "no header end in %S" raw
    else if String.sub raw i 4 = sep then i
    else find (i + 1)
  in
  let hend = find 0 in
  let status =
    match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  (status, String.sub raw (hend + 4) (String.length raw - hend - 4))

let test_http_endpoints () =
  let vm = Vm.of_source ~algorithm:Vm.Counting two_strata_src in
  let vmref = ref vm in
  let srv =
    Monitor.start
      ~config:
        {
          Monitor.status = (fun () -> Vm.status_json !vmref);
          before_metrics = Ivm_eval.Stats.sync;
          explain = Some (fun q -> Vm.explain_json !vmref q);
        }
      ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Monitor.stop srv) @@ fun () ->
  let port = Monitor.port srv in
  (* generate some maintenance so the attribution families exist *)
  ignore (Vm.apply vm (Changes.insertions (Vm.program vm) "link" [ t2 "e" "f" ]));
  let status, body = http_get port "/healthz" in
  Alcotest.(check string) "healthz 200" "HTTP/1.0 200 OK" status;
  let j = Json.of_string body in
  Alcotest.(check (option string)) "healthz ok" (Some "ok")
    (Option.bind (Json.member "status" j) Json.to_string_opt);
  let status, body = http_get port "/metrics" in
  Alcotest.(check string) "metrics 200" "HTTP/1.0 200 OK" status;
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " present") true (contains ~needle:family body))
    [ "# TYPE ivm_derivations_total counter";
      "ivm_rule_wall_ns_total";
      "ivm_last_batch_ns";
      "ivm_batch_latency_ns_bucket" ];
  let status, body = http_get port "/statusz" in
  Alcotest.(check string) "statusz 200" "HTTP/1.0 200 OK" status;
  let j = Json.of_string body in
  Alcotest.(check (option string)) "statusz algorithm" (Some "counting")
    (Option.bind (Json.member "algorithm" j) Json.to_string_opt);
  Alcotest.(check bool) "statusz has last_batch rules" true
    (match Option.bind (Json.member "last_batch" j) (Json.member "rules") with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false);
  let status, body = http_get port "/trace" in
  Alcotest.(check string) "trace 200" "HTTP/1.0 200 OK" status;
  Alcotest.(check bool) "trace is a JSON list" true
    (match Json.of_string body with Json.List _ -> true | _ -> false);
  let status, _ = http_get port "/nope" in
  Alcotest.(check string) "unknown path is 404" "HTTP/1.0 404 Not Found" status

let test_stop_releases_port () =
  let srv = Monitor.start ~port:0 () in
  let port = Monitor.port srv in
  Monitor.stop srv;
  Monitor.stop srv (* idempotent *);
  (* the port is free again: a second server can bind it *)
  let srv2 = Monitor.start ~port () in
  Alcotest.(check int) "rebound same port" port (Monitor.port srv2);
  Monitor.stop srv2

(* ------------------------------------------------------------------ *)

let suite =
  [
    q ~count:200 "prometheus: label values escape and round-trip"
      label_value_arb prop_label_escaping;
    Alcotest.test_case "prometheus: help text escaping" `Quick test_help_escaping;
    q ~count:100 "prometheus: one header per family, samples contiguous"
      QCheck.(make Gen.(list_size (0 -- 12) bool)) prop_family_structure;
    q ~count:100 "prometheus: histogram buckets consistent with registry"
      observations_arb prop_histogram_consistency;
    Alcotest.test_case "attribution: batch invariants at one domain" `Quick
      test_attribution_batch;
    Alcotest.test_case "attribution: disabled records nothing" `Quick
      test_attribution_disabled;
    Alcotest.test_case "attribution: json + explain table" `Quick
      test_attribution_json_and_pp;
    Alcotest.test_case "http: endpoints over a live socket" `Quick
      test_http_endpoints;
    Alcotest.test_case "http: stop joins and releases the port" `Quick
      test_stop_releases_port;
  ]
