(** Property-based suites: the paper's correctness theorems checked against
    the recomputation oracle on randomized data and update streams.

    - Theorem 4.1 (counting computes exactly countν − count) ⇒ after
      maintenance, stored counts equal a from-scratch evaluation;
    - Theorem 7.1 (DRed yields exactly the derivable tuples) ⇒ after
      maintenance, stored sets equal a from-scratch evaluation;
    - algebraic laws of the [⊎] operator of Section 3. *)

open Util
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Programs = Ivm_workload.Programs

let q ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

(** A random edge list over [nodes] labelled nodes plus a random update
    stream: each step deletes up to [d] stored edges and inserts up to [i]
    fresh ones. *)
let scenario_gen ~nodes ~edges ~steps ~dels ~ins =
  QCheck.Gen.(
    map
      (fun seed -> (seed, nodes, edges, steps, dels, ins))
      (int_range 1 1_000_000))
  |> QCheck.make ~print:(fun (seed, _, _, _, _, _) -> Printf.sprintf "seed=%d" seed)

let build_graph_db ?(semantics = Database.Set_semantics) ~src ~pred rng ~nodes
    ~edges =
  let rules = Ivm_datalog.Parser.parse_rules src in
  let program = Program.make rules in
  let db = Database.create ~semantics program in
  Database.load db pred
    (Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges));
  Seminaive.evaluate db;
  db

let random_changes rng db pred ~nodes ~dels ~ins =
  Ivm_workload.Update_gen.mixed rng db pred ~nodes
    ~dels:(Prng.int rng (dels + 1))
    ~ins:(Prng.int rng (ins + 1))

let derived_agree ~counted a b =
  List.for_all
    (fun p ->
      let ra = Database.relation a p and rb = Database.relation b p in
      if counted then Relation.equal_counted ra rb else Relation.equal_sets ra rb)
    (Program.derived_preds (Database.program a))

(** Drive [maintain] and the recompute oracle side by side over a stream of
    random batches, comparing after every step. *)
let soak ~semantics ~src ~pred ~counted ~maintain (seed, nodes, edges, steps, dels, ins)
    =
  let rng = Prng.create seed in
  let db = build_graph_db ~semantics ~src ~pred rng ~nodes ~edges in
  let oracle = Database.copy db in
  let ok = ref true in
  for _ = 1 to steps do
    if !ok then begin
      let changes = random_changes rng db pred ~nodes ~dels ~ins in
      maintain db changes;
      List.iter
        (fun (p, delta) ->
          let stored = Database.relation oracle p in
          Relation.iter (fun tup c -> Relation.add stored tup c) delta)
        (Changes.normalize_base oracle changes);
      Seminaive.evaluate oracle;
      ok := !ok && derived_agree ~counted db oracle
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Counting vs recompute                                                *)
(* ------------------------------------------------------------------ *)

let counting_props =
  [
    q ~count:120 "counting/hop+tri_hop duplicates == recompute"
      (scenario_gen ~nodes:12 ~edges:30 ~steps:4 ~dels:3 ~ins:3)
      (soak ~semantics:Database.Duplicate_semantics ~src:Programs.hop_tri_hop
         ~pred:"link" ~counted:true ~maintain:(fun db c ->
           ignore (Counting.maintain db c)));
    q ~count:120 "counting/hop+tri_hop sets == recompute"
      (scenario_gen ~nodes:12 ~edges:30 ~steps:4 ~dels:3 ~ins:3)
      (soak ~semantics:Database.Set_semantics ~src:Programs.hop_tri_hop
         ~pred:"link" ~counted:true ~maintain:(fun db c ->
           ignore (Counting.maintain db c)));
    q ~count:100 "counting/negation == recompute"
      (scenario_gen ~nodes:10 ~edges:25 ~steps:4 ~dels:3 ~ins:3)
      (soak ~semantics:Database.Duplicate_semantics ~src:Programs.only_tri_hop
         ~pred:"link" ~counted:true ~maintain:(fun db c ->
           ignore (Counting.maintain db c)));
  ]

(* Aggregation needs 3-column costed edges; special-cased scenario. *)
let aggregation_prop =
  q ~count:100 "counting/min-cost aggregation == recompute"
    (scenario_gen ~nodes:10 ~edges:25 ~steps:3 ~dels:3 ~ins:3)
    (fun (seed, nodes, edges, steps, dels, ins) ->
      let rng = Prng.create seed in
      let rules = Ivm_datalog.Parser.parse_rules Programs.min_cost_hop in
      let program = Program.make rules in
      let db = Database.create ~semantics:Database.Set_semantics program in
      Database.load db "link"
        (Graph_gen.costed_tuples rng ~max_cost:9
           (Graph_gen.random rng ~nodes ~edges));
      Seminaive.evaluate db;
      let oracle = Database.copy db in
      let ok = ref true in
      for _ = 1 to steps do
        if !ok then begin
          let deletions =
            Ivm_workload.Update_gen.deletions rng db "link" (Prng.int rng (dels + 1))
          in
          let stored = Database.relation db "link" in
          let rec fresh k acc =
            if k = 0 then acc
            else
              let t =
                Tuple.make
                  [|
                    Value.Int (Prng.int rng nodes);
                    Value.Int (Prng.int rng nodes);
                    Value.Int (1 + Prng.int rng 9);
                  |]
              in
              if Relation.mem stored t then fresh k acc else fresh (k - 1) (t :: acc)
          in
          let insertions =
            Changes.insertions program "link" (fresh (Prng.int rng (ins + 1)) [])
          in
          let changes = Changes.merge deletions insertions in
          ignore (Counting.maintain db changes);
          List.iter
            (fun (p, delta) ->
              let stored = Database.relation oracle p in
              Relation.iter (fun tup c -> Relation.add stored tup c) delta)
            (Changes.normalize_base oracle changes);
          Seminaive.evaluate oracle;
          ok := !ok && derived_agree ~counted:true db oracle
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* DRed vs recompute                                                    *)
(* ------------------------------------------------------------------ *)

let dred_props =
  [
    q ~count:90 "dred/transitive closure == recompute"
      (scenario_gen ~nodes:10 ~edges:20 ~steps:4 ~dels:3 ~ins:3)
      (soak ~semantics:Database.Set_semantics ~src:Programs.transitive_closure
         ~pred:"link" ~counted:false ~maintain:(fun db c ->
           ignore (Dred.maintain db c)));
    q ~count:70 "dred/right-linear closure == recompute"
      (scenario_gen ~nodes:10 ~edges:20 ~steps:3 ~dels:3 ~ins:3)
      (soak ~semantics:Database.Set_semantics
         ~src:Programs.transitive_closure_right ~pred:"link" ~counted:false
         ~maintain:(fun db c -> ignore (Dred.maintain db c)));
    q ~count:70 "dred/negation over recursion == recompute"
      (scenario_gen ~nodes:8 ~edges:14 ~steps:3 ~dels:2 ~ins:2)
      (fun (seed, nodes, edges, steps, dels, ins) ->
        let src =
          {|
            reach(X) :- source(X).
            reach(Y) :- reach(X), link(X, Y).
            dark(X) :- node(X), not reach(X).
          |}
        in
        let rng = Prng.create seed in
        let rules = Ivm_datalog.Parser.parse_rules src in
        let program = Program.make rules in
        let db = Database.create program in
        Database.load db "link"
          (Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges));
        Database.load db "node"
          (List.init nodes (fun i -> Tuple.make [| Value.Int i |]));
        Database.load db "source" [ Tuple.make [| Value.Int 0 |] ];
        Seminaive.evaluate db;
        let oracle = Database.copy db in
        let ok = ref true in
        for _ = 1 to steps do
          if !ok then begin
            let changes = random_changes rng db "link" ~nodes ~dels ~ins in
            ignore (Dred.maintain db changes);
            List.iter
              (fun (p, delta) ->
                let stored = Database.relation oracle p in
                Relation.iter (fun tup c -> Relation.add stored tup c) delta)
              (Changes.normalize_base oracle changes);
            Seminaive.evaluate oracle;
            ok := !ok && derived_agree ~counted:false db oracle
          end
        done;
        !ok);
    q ~count:30 "pf == dred final state"
      (scenario_gen ~nodes:9 ~edges:18 ~steps:2 ~dels:3 ~ins:2)
      (fun (seed, nodes, edges, steps, dels, ins) ->
        let rng = Prng.create seed in
        let mk rng' =
          build_graph_db ~src:Programs.transitive_closure ~pred:"link" rng'
            ~nodes ~edges
        in
        let db_pf = mk (Prng.create seed) in
        let db_dred = mk (Prng.create seed) in
        let ok = ref true in
        for _ = 1 to steps do
          if !ok then begin
            let changes = random_changes rng db_pf "link" ~nodes ~dels ~ins in
            ignore (Ivm_baselines.Pf.maintain db_pf changes);
            ignore (Dred.maintain db_dred changes);
            ok :=
              !ok
              && Relation.equal_sets
                   (Database.relation db_pf "path")
                   (Database.relation db_dred "path")
          end
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* ⊎ algebra (Section 3)                                                *)
(* ------------------------------------------------------------------ *)

let rel_gen =
  QCheck.Gen.(
    map
      (fun entries ->
        Relation.of_list 2
          (List.map
             (fun (a, b, c) ->
               (Tuple.of_ints [ a mod 5; b mod 5 ], (c mod 7) - 3))
             entries))
      (list_size (int_range 0 20) (triple small_nat small_nat small_nat)))

let arb_rel = QCheck.make ~print:Relation.to_string rel_gen

let uplus_props =
  [
    q ~count:200 "⊎ is commutative" (QCheck.pair arb_rel arb_rel)
      (fun (a, b) -> Relation.equal_counted (Relation.union a b) (Relation.union b a));
    q ~count:200 "⊎ is associative" (QCheck.triple arb_rel arb_rel arb_rel)
      (fun (a, b, c) ->
        Relation.equal_counted
          (Relation.union (Relation.union a b) c)
          (Relation.union a (Relation.union b c)));
    q ~count:200 "∅ is the ⊎ identity" arb_rel (fun a ->
        Relation.equal_counted (Relation.union a (Relation.create 2)) a);
    q ~count:200 "r ⊎ (−r) = ∅" arb_rel (fun a ->
        Relation.is_empty (Relation.union a (Relation.negate a)));
    q ~count:200 "counts of ⊎ add pointwise" (QCheck.pair arb_rel arb_rel)
      (fun (a, b) ->
        let u = Relation.union a b in
        let check r =
          not
            (Relation.exists
               (fun t _ -> Relation.count u t <> Relation.count a t + Relation.count b t)
               r)
        in
        check a && check b);
    q ~count:200 "set_delta turns old into new" (QCheck.pair arb_rel arb_rel)
      (fun (old_, new_) ->
        let old_ = Relation.positive_part old_ in
        let new_ = Relation.positive_part new_ in
        let d = Relation.set_delta ~old_ ~new_ in
        Relation.equal_sets (Relation.union (Relation.to_set old_) d)
          (Relation.to_set new_));
  ]

(* ------------------------------------------------------------------ *)
(* Parser round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let rule_gen : Ivm_datalog.Ast.rule QCheck.Gen.t =
  let open QCheck.Gen in
  let open Ivm_datalog.Ast in
  let var = map (fun i -> Printf.sprintf "X%d" i) (int_range 0 3) in
  let term =
    frequency
      [
        (3, map (fun v -> Var v) var);
        (1, map (fun n -> Const (Value.Int n)) (int_range 0 9));
        (1, map (fun s -> Const (Value.Str s)) (oneofl [ "a"; "b"; "c" ]));
      ]
  in
  let pred = oneofl [ "p"; "q"; "r" ] in
  let atom = map2 (fun p ts -> { pred = p; args = List.map (fun t -> Eterm t) ts })
      pred (list_size (int_range 1 3) term) in
  let pos_lit = map (fun a -> Lpos a) atom in
  let neg_lit = map (fun a -> Lneg a) atom in
  let cmp_lit =
    map2
      (fun v n -> Lcmp (Eterm (Var v), Lt, Eterm (Const (Value.Int n))))
      var (int_range 0 9)
  in
  let agg_lit =
    (* groupby(u(X0,..,Xn-1), [X0,..,Xn-2], R = fn(Xn-1)); count() takes no
       argument and parses back with the same placeholder the AST helper
       uses, so round-trip equality holds structurally. *)
    map2
      (fun fn n ->
        let vs = List.init n (fun i -> Printf.sprintf "X%d" i) in
        let by = List.filteri (fun i _ -> i < n - 1) vs in
        let arg =
          match fn with
          | Count -> Eterm (Const (Value.Int 0))
          | _ -> Eterm (Var (List.nth vs (n - 1)))
        in
        Lagg
          {
            agg_source =
              { pred = "u"; args = List.map (fun v -> Eterm (Var v)) vs };
            agg_group_by = by;
            agg_result = "R";
            agg_fn = fn;
            agg_arg = arg;
          })
      (oneofl [ Count; Sum; Min; Max; Avg ])
      (int_range 2 3)
  in
  let body =
    list_size (int_range 1 3)
      (frequency [ (4, pos_lit); (1, neg_lit); (1, cmp_lit); (1, agg_lit) ])
  in
  map2
    (fun b vars ->
      {
        head = { pred = "h"; args = List.map (fun v -> Eterm (Var v)) vars };
        body = b;
      })
    body
    (list_size (int_range 0 2) var)

let roundtrip_prop =
  q ~count:300 "pretty ∘ parse = id on rules"
    (QCheck.make ~print:Ivm_datalog.Pretty.rule_to_string rule_gen)
    (fun rule ->
      let printed = Ivm_datalog.Pretty.rule_to_string rule in
      match Ivm_datalog.Parser.parse_rule printed with
      | parsed -> Ivm_datalog.Ast.equal_rule rule parsed
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Aggregate accumulators vs oracle                                     *)
(* ------------------------------------------------------------------ *)

module Agg = Ivm_eval.Agg

let agg_prop fn name =
  q ~count:200 name
    (QCheck.list_of_size (QCheck.Gen.int_range 0 30)
       (QCheck.pair (QCheck.int_range 0 10) (QCheck.int_range 1 3)))
    (fun ops ->
      (* interpret as a stream of inserts, then remove a random-ish prefix
         again; final state must equal aggregating the surviving multiset *)
      let st = Agg.create fn in
      List.iter (fun (v, m) -> Agg.update st (Value.Int v) m) ops;
      let removed, kept =
        List.partition (fun (v, _) -> v mod 3 = 0) ops
      in
      List.iter (fun (v, m) -> Agg.update st (Value.Int v) (-m)) removed;
      let oracle =
        Agg.of_seq fn
          (List.to_seq (List.map (fun (v, m) -> (Value.Int v, m)) kept))
      in
      Option.equal Value.equal (Agg.value st) (Agg.value oracle))

let agg_props =
  [
    agg_prop Ivm_datalog.Ast.Count "agg/count incremental == oracle";
    agg_prop Ivm_datalog.Ast.Sum "agg/sum incremental == oracle";
    agg_prop Ivm_datalog.Ast.Min "agg/min incremental == oracle";
    agg_prop Ivm_datalog.Ast.Max "agg/max incremental == oracle";
    agg_prop Ivm_datalog.Ast.Avg "agg/avg incremental == oracle";
  ]

(* ------------------------------------------------------------------ *)
(* Cross-subsystem properties                                           *)
(* ------------------------------------------------------------------ *)

(* Recursive counting projected to sets agrees with DRed on DAG update
   streams (Theorem 4.1's counts vs Theorem 7.1's sets). *)
let rc_vs_dred_prop =
  q ~count:30 "recursive counting (as sets) == dred on DAGs"
    (scenario_gen ~nodes:0 ~edges:0 ~steps:3 ~dels:2 ~ins:0)
    (fun (seed, _, _, steps, dels, _) ->
      let mk semantics =
        let rng = Prng.create seed in
        let program =
          Program.make (Ivm_datalog.Parser.parse_rules Programs.transitive_closure)
        in
        let db = Database.create ~semantics program in
        Database.load db "link"
          (Graph_gen.tuples
             (Graph_gen.layered_dag rng ~layers:5 ~width:4 ~out_degree:2));
        (db, rng)
      in
      let db_rc, rng_rc = mk Database.Duplicate_semantics in
      Ivm.Recursive_counting.evaluate db_rc;
      let db_dred, rng_dred = mk Database.Set_semantics in
      Seminaive.evaluate db_dred;
      let ok = ref true in
      for _ = 1 to steps do
        if !ok then begin
          let k = Prng.int rng_rc (dels + 1) in
          let c_rc = Ivm_workload.Update_gen.deletions rng_rc db_rc "link" k in
          let _ = Prng.int rng_dred (dels + 1) in
          let c_dred = Ivm_workload.Update_gen.deletions rng_dred db_dred "link" k in
          (* same seed streams → same victims *)
          ignore (Ivm.Recursive_counting.maintain db_rc c_rc);
          ignore (Dred.maintain db_dred c_dred);
          ok :=
            !ok
            && Relation.equal_sets
                 (Database.relation db_rc "path")
                 (Database.relation db_dred "path")
        end
      done;
      !ok)

(* The SQL translation of Example 1.1 computes the same view as the
   Datalog original, on random data. *)
let sql_equiv_prop =
  q ~count:40 "SQL hop == Datalog hop"
    (scenario_gen ~nodes:10 ~edges:25 ~steps:1 ~dels:0 ~ins:0)
    (fun (seed, nodes, edges, _, _, _) ->
      let rng = Prng.create seed in
      let graph = Graph_gen.random rng ~nodes ~edges in
      let dl =
        let program = Program.make (Ivm_datalog.Parser.parse_rules Programs.hop) in
        let db = Database.create ~semantics:Database.Duplicate_semantics program in
        Database.load db "link" (Graph_gen.tuples graph);
        Seminaive.evaluate db;
        db
      in
      let sql =
        let vm =
          Ivm_sql.Sql_translate.view_manager
            ~semantics:Database.Duplicate_semantics
            {|
              CREATE TABLE link(s, d);
              CREATE VIEW hop(s, d) AS
                SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
            |}
        in
        ignore (Ivm.View_manager.insert vm "link" (Graph_gen.tuples graph));
        vm
      in
      Relation.equal_counted (Database.relation dl "hop")
        (Ivm.View_manager.relation sql "hop"))

(* Database dump → reparse → re-materialize is the identity. *)
let dump_roundtrip_prop =
  q ~count:40 "dump ∘ load = id"
    (scenario_gen ~nodes:8 ~edges:18 ~steps:1 ~dels:0 ~ins:0)
    (fun (seed, nodes, edges, _, _, _) ->
      let rng = Prng.create seed in
      let program =
        Program.make (Ivm_datalog.Parser.parse_rules Programs.hop_tri_hop)
      in
      let db = Database.create ~semantics:Database.Duplicate_semantics program in
      Database.load db "link" (Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges));
      (* duplicate some facts to exercise multiplicity serialization *)
      Database.load db "link"
        (Graph_gen.tuples (Prng.sample rng 3 (Graph_gen.random rng ~nodes ~edges)));
      Seminaive.evaluate db;
      let text = Format.asprintf "%a" Database.dump db in
      let statements = Ivm_datalog.Parser.parse_program text in
      let rules, facts = Ivm_datalog.Parser.split statements in
      let program2 = Program.make rules in
      let db2 = Database.create ~semantics:Database.Duplicate_semantics program2 in
      List.iter
        (fun (p, vals) ->
          Database.load db2 p [ Ivm_relation.Tuple.of_list vals ])
        facts;
      Seminaive.evaluate db2;
      Database.agree db db2)

(* Trigger deltas compose: initial view ⊎ all dispatched deltas = final
   view. *)
let trigger_composition_prop =
  q ~count:40 "view ⊎ Σ trigger deltas = final view"
    (scenario_gen ~nodes:8 ~edges:20 ~steps:4 ~dels:2 ~ins:2)
    (fun (seed, nodes, edges, steps, dels, ins) ->
      let rng = Prng.create seed in
      let vm =
        Ivm.View_manager.create ~semantics:Database.Duplicate_semantics
          ~algorithm:Ivm.View_manager.Counting
          ~facts:[ ("link", Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges)) ]
          (Ivm_datalog.Parser.parse_rules Programs.hop_tri_hop)
      in
      let tr = Ivm.Triggers.create vm in
      let acc = Relation.copy (Ivm.View_manager.relation vm "hop") in
      let _ =
        Ivm.Triggers.subscribe tr "hop" (fun delta -> Relation.union_into ~into:acc delta)
      in
      let db = Ivm.View_manager.database vm in
      for _ = 1 to steps do
        let changes = random_changes rng db "link" ~nodes ~dels ~ins in
        ignore (Ivm.Triggers.apply tr changes)
      done;
      Relation.equal_counted acc (Ivm.View_manager.relation vm "hop"))

(* The parser never crashes: any input either parses or raises its own
   error types. *)
let parser_total_prop =
  q ~count:500 "parser is total (errors, never crashes)"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      match Ivm_datalog.Parser.parse_program s with
      | _ -> true
      | exception Ivm_datalog.Parser.Parse_error _ -> true
      | exception Ivm_datalog.Lexer.Lex_error _ -> true)

let sql_parser_total_prop =
  q ~count:500 "SQL parser is total"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      match Ivm_sql.Sql_parser.parse_script s with
      | _ -> true
      | exception Ivm_sql.Sql_parser.Parse_error _ -> true
      | exception Ivm_sql.Sql_lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Interning and cached tuple hashes (PR 5 kernel pass)                 *)
(* ------------------------------------------------------------------ *)

(* Mixed-kind values, strings drawn from a small alphabet so duplicates
   (and thus interning collisions) are common. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.int (n mod 7)) small_nat;
        map (fun n -> Value.float (float_of_int (n mod 7))) small_nat;
        map
          (fun n -> Value.str (String.make ((n mod 3) + 1) (Char.chr (97 + (n mod 4)))))
          small_nat;
        map Value.bool bool;
      ])

let mixed_tuple_gen =
  QCheck.Gen.(map Tuple.of_list (list_size (int_range 0 5) value_gen))

let arb_mixed_tuple = QCheck.make ~print:Tuple.to_string mixed_tuple_gen

let interning_props =
  [
    q ~count:500 "interning: equal strings share one box"
      QCheck.(string_of_size (QCheck.Gen.int_range 0 12))
      (fun s ->
        (* String.sub forces a distinct heap string with equal contents *)
        Value.str s == Value.str (String.sub s 0 (String.length s)));
    q ~count:500 "interning preserves Value.equal and Value.hash"
      (QCheck.make QCheck.Gen.(pair value_gen value_gen))
      (fun (a, b) ->
        let ia = Value.intern a and ib = Value.intern b in
        Value.equal ia a && Value.hash ia = Value.hash a
        && Value.equal a b = Value.equal ia ib
        && ((not (Value.equal a b)) || Value.hash ia = Value.hash ib));
    q ~count:500 "cached hash: Tuple.equal implies equal Tuple.hash"
      (QCheck.pair arb_mixed_tuple arb_mixed_tuple)
      (fun (a, b) -> (not (Tuple.equal a b)) || Tuple.hash a = Tuple.hash b);
    q ~count:500 "cached hash survives rebuild / map / project / append"
      arb_mixed_tuple
      (fun t ->
        let rebuilt = Tuple.of_list (Tuple.to_list t) in
        let all = Array.init (Tuple.arity t) (fun i -> i) in
        Tuple.equal rebuilt t
        && Tuple.hash rebuilt = Tuple.hash t
        && Tuple.equal (Tuple.map (fun v -> v) t) t
        && Tuple.equal (Tuple.project all t) t
        && Tuple.hash (Tuple.project all t) = Tuple.hash t
        && Tuple.arity (Tuple.append t (Value.int 9)) = Tuple.arity t + 1);
  ]

(* Snapshot/WAL codec round-trip: decoded relations are equal (counts
   included) and every decoded string is the canonical interned box, as if
   it had been freshly parsed — the store and a new session share one
   intern table. *)
let wire_roundtrip_prop =
  let rel_of_tuples ts =
    let ts = List.filter (fun t -> Tuple.arity t = 3) ts in
    Relation.of_tuples 3 ts
  in
  q ~count:300 "wire round-trip interns strings"
    (QCheck.make
       QCheck.Gen.(
         map rel_of_tuples
           (list_size (int_range 0 15)
              (map Tuple.of_list (list_repeat 3 value_gen)))))
    (fun r ->
      let buf = Buffer.create 256 in
      Ivm_wire.Wire.put_relation buf r;
      let decoded =
        Ivm_wire.Wire.get_relation (Ivm_wire.Wire.reader (Buffer.contents buf))
      in
      let interned = ref true in
      Relation.iter
        (fun t _ ->
          Array.iter
            (fun v ->
              match v with
              | Value.Str s -> if not (v == Value.str s) then interned := false
              | _ -> ())
            (Tuple.to_array t))
        decoded;
      Relation.equal_counted decoded r && !interned)

(* Overlay views behave exactly like the forced union. *)
let overlay_semantics_prop =
  q ~count:200 "overlay ≡ materialized union" (QCheck.pair arb_rel arb_rel)
    (fun (base, delta) ->
      let base = Relation.positive_part base in
      let v = Ivm_relation.Relation_view.Overlay { base; delta } in
      let forced = Relation.union base delta in
      let visible_eq =
        Relation.equal_counted (Ivm_relation.Relation_view.force v) forced
      in
      (* counts agree pointwise on tuples of both sides *)
      let count_eq = ref true in
      Relation.iter
        (fun t _ ->
          if Ivm_relation.Relation_view.count v t <> Relation.count forced t then
            count_eq := false)
        base;
      Relation.iter
        (fun t _ ->
          if Ivm_relation.Relation_view.count v t <> Relation.count forced t then
            count_eq := false)
        delta;
      (* probe on column 0 sees the same tuples as a filtered iter *)
      let probed = ref [] in
      Relation.iter
        (fun t _ ->
          Ivm_relation.Relation_view.probe v [| 0 |] (Tuple.project [| 0 |] t)
            (fun u c -> probed := (u, c) :: !probed))
        forced;
      let deduped =
        List.sort_uniq (fun (a, _) (b, _) -> Tuple.compare a b) !probed
      in
      let expected =
        Relation.fold (fun t c acc -> (t, c) :: acc) forced []
        |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
      in
      visible_eq && !count_eq
      && List.length deduped >= List.length expected
         (* every forced tuple was reachable by probing its own key *)
      && List.for_all (fun (t, c) -> Relation.count forced t = c) deduped)

let suite =
  counting_props @ [ aggregation_prop ] @ dred_props @ uplus_props
  @ [ roundtrip_prop ] @ agg_props
  @ [ rc_vs_dred_prop; sql_equiv_prop; dump_roundtrip_prop;
      trigger_composition_prop; parser_total_prop; sql_parser_total_prop;
      overlay_semantics_prop ]
  @ interning_props @ [ wire_roundtrip_prop ]
