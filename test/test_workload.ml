(** Workload generators: determinism and structural guarantees the bench
    harness relies on. *)

open Util
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen
module Changes = Ivm.Changes

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let prng_ranges () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let f = Prng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)
  done

let prng_sample () =
  let rng = Prng.create 9 in
  let xs = List.init 20 Fun.id in
  let s = Prng.sample rng 5 xs in
  Alcotest.(check int) "five" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  Alcotest.(check int) "all when k too big" 20 (List.length (Prng.sample rng 100 xs))

let graph_shapes () =
  let rng = Prng.create 3 in
  let edges = Graph_gen.random rng ~nodes:20 ~edges:50 in
  Alcotest.(check bool) "no self loops" true
    (List.for_all (fun (a, b) -> a <> b) edges);
  Alcotest.(check bool) "dedup" true
    (List.length (List.sort_uniq compare edges) = List.length edges);
  let chain = Graph_gen.chain 5 in
  Alcotest.(check int) "chain edges" 4 (List.length chain);
  let cyc = Graph_gen.cycle 5 in
  Alcotest.(check int) "cycle edges" 5 (List.length cyc);
  let grid = Graph_gen.grid ~rows:3 ~cols:4 in
  (* 3*3 right + 2*4 down *)
  Alcotest.(check int) "grid edges" 17 (List.length grid)

let layered_dag_is_acyclic () =
  let rng = Prng.create 5 in
  let edges = Graph_gen.layered_dag rng ~layers:5 ~width:4 ~out_degree:3 in
  (* every edge goes from layer ℓ to ℓ+1 *)
  Alcotest.(check bool) "forward edges only" true
    (List.for_all (fun (a, b) -> (b / 4) = (a / 4) + 1) edges)

let scale_free_shape () =
  let rng = Prng.create 21 in
  let edges = Graph_gen.scale_free rng ~nodes:200 ~attach:2 in
  Alcotest.(check bool) "enough edges" true (List.length edges > 150);
  Alcotest.(check bool) "no self loops" true
    (List.for_all (fun (a, b) -> a <> b) edges);
  (* heavy tail: some node's degree far exceeds the mean *)
  let deg = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      List.iter
        (fun v ->
          Hashtbl.replace deg v (1 + Option.value ~default:0 (Hashtbl.find_opt deg v)))
        [ a; b ])
    edges;
  let max_deg = Hashtbl.fold (fun _ d acc -> max d acc) deg 0 in
  let mean = 2. *. float_of_int (List.length edges) /. 200. in
  Alcotest.(check bool)
    (Printf.sprintf "hubby (max %d vs mean %.1f)" max_deg mean)
    true
    (float_of_int max_deg > 3. *. mean)

let costed_tuples () =
  let rng = Prng.create 11 in
  let ts = Graph_gen.costed_tuples rng ~max_cost:5 [ (1, 2); (3, 4) ] in
  Alcotest.(check int) "two tuples" 2 (List.length ts);
  List.iter
    (fun t ->
      Alcotest.(check int) "arity 3" 3 (Tuple.arity t);
      match Tuple.get t 2 with
      | Value.Int c -> Alcotest.(check bool) "cost in range" true (c >= 1 && c <= 5)
      | _ -> Alcotest.fail "integer cost expected")
    ts

let update_gen_validity () =
  let db =
    db_of_source
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(b,c). link(c,d).
      |}
  in
  let rng = Prng.create 13 in
  (* deletions pick stored tuples: normalization cannot fail *)
  for _ = 1 to 20 do
    let c = Update_gen.deletions rng db "link" 2 in
    ignore (Changes.normalize_base db c)
  done;
  (* insertions avoid stored duplicates *)
  let c = Update_gen.edge_insertions rng db "link" ~nodes:10 5 in
  let stored = Database.relation db "link" in
  List.iter
    (fun (_, d) ->
      Relation.iter
        (fun t _ ->
          Alcotest.(check bool) "fresh" false (Relation.mem stored t))
        d)
    c

let suite =
  [
    quick "prng is deterministic per seed" prng_deterministic;
    quick "prng ranges" prng_ranges;
    quick "prng sampling" prng_sample;
    quick "graph generator shapes" graph_shapes;
    quick "layered DAG is layered" layered_dag_is_acyclic;
    quick "scale-free generator is hubby" scale_free_shape;
    quick "costed tuples" costed_tuples;
    quick "update generators stay valid" update_gen_validity;
  ]
