let () =
  Alcotest.run "ivm"
    [
      ("relation", Test_relation.suite);
      ("datalog", Test_datalog.suite);
      ("eval", Test_eval.suite);
      ("eval_edge", Test_eval_edge.suite);
      ("counting", Test_counting.suite);
      ("dred", Test_dred.suite);
      ("rule_changes", Test_rule_changes.suite);
      ("recursive_counting", Test_recursive_counting.suite);
      ("baselines", Test_baselines.suite);
      ("sql", Test_sql.suite);
      ("sql_session", Test_sql_session.suite);
      ("agg_index", Test_agg_index.suite);
      ("grouping", Test_grouping.suite);
      ("changes", Test_changes.suite);
      ("view_manager", Test_view_manager.suite);
      ("workload", Test_workload.suite);
      ("triggers_query", Test_triggers_query.suite);
      ("algorithm_matrix", Test_algorithm_matrix.suite);
      ("compositions", Test_compositions.suite);
      ("distinct", Test_distinct.suite);
      ("more_units", Test_more_units.suite);
      ("misc_coverage", Test_misc_coverage.suite);
      ("dump", Test_dump.suite);
      ("store", Test_store.suite);
      ("docs", Test_docs.suite);
      ("final_coverage", Test_final_coverage.suite);
      ("obs", Test_obs.suite);
      ("monitor", Test_monitor.suite);
      ("par", Test_par.suite);
      ("properties", Test_properties.suite);
      ("differential", Test_differential.suite);
      ("prov", Test_prov.suite);
      ("statecheck", Test_statecheck.suite);
      ("serve", Test_serve.suite);
    ]
