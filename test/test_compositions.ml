(** Feature compositions: multiple aggregates in one rule, negation over
    aggregates, aggregates over negation, unions of everything — the
    paper's constructs combined, each maintained and audited. *)

open Util
module Vm = Ivm.View_manager
module Changes = Ivm.Changes

let audit_ok vm = Alcotest.(check (result unit string)) "audit" (Ok ()) (Vm.audit vm)

(* two GROUPBY literals joined in one rule *)
let two_aggregates_one_rule () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        out_deg(X, N) :- groupby(link(X, Y), [X], N = count()).
        balanced(X) :- groupby(link(X, Y), [X], N = count()),
                       groupby(rlink(X, Z), [X], M = count()),
                       N = M.
        rlink(Y, X) :- link(X, Y).
        link(a,b). link(a,c). link(b,a). link(c,a).
      |}
  in
  (* a: out 2, in 2 → balanced; b: out 1, in 1 → balanced; c same *)
  Alcotest.(check int) "all balanced" 3 (Relation.cardinal (Vm.relation vm "balanced"));
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "a"; "d" ] ]);
  (* a now out 3, in 2 → unbalanced; d out 0? d has in 1, out 0 → no
     tuple for d (count groups need at least one tuple) *)
  Alcotest.(check bool) "a unbalanced" false
    (Relation.mem (Vm.relation vm "balanced") (Tuple.of_strs [ "a" ]));
  audit_ok vm

(* negation over an aggregate view *)
let negation_over_aggregate () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        deg(X, N) :- groupby(link(X, Y), [X], N = count()).
        hub(X) :- deg(X, N), N >= 2.
        node(X) :- link(X, Y).
        leaf_only(X) :- node(X), not hub(X).
        link(a,b). link(a,c). link(b,c).
      |}
  in
  Alcotest.(check bool) "b is leaf-only" true
    (Relation.mem (Vm.relation vm "leaf_only") (Tuple.of_strs [ "b" ]));
  (* adding b→d makes b a hub: leaf_only(b) must retract *)
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "b"; "d" ] ]);
  Alcotest.(check bool) "b no longer leaf-only" false
    (Relation.mem (Vm.relation vm "leaf_only") (Tuple.of_strs [ "b" ]));
  audit_ok vm

(* aggregate over a negation view *)
let aggregate_over_negation () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        indirect(X, Y) :- hop(X, Y), not link(X, Y).
        n_indirect(X, N) :- groupby(indirect(X, Y), [X], N = count()).
        link(a,b). link(b,c). link(b,d). link(a,c).
      |}
  in
  (* hop(a,·) = {c, d}; link(a,c) exists → indirect(a,·) = {d} *)
  Alcotest.(check bool) "n_indirect(a,1)" true
    (Relation.mem (Vm.relation vm "n_indirect") (Tuple.of_list Value.[ str "a"; int 1 ]));
  (* deleting the direct a→c makes (a,c) indirect: count rises to 2 *)
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "c" ] ]);
  Alcotest.(check bool) "n_indirect(a,2)" true
    (Relation.mem (Vm.relation vm "n_indirect") (Tuple.of_list Value.[ str "a"; int 2 ]));
  audit_ok vm

(* union of a join branch and an aggregate-filtered branch *)
let union_mixed_branches () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        interesting(X) :- link(X, Y), special(Y).
        interesting(X) :- groupby(link(X, Y), [X], N = count()), N > 2.
        link(a,b). link(a,c). link(a,d). link(b,s).
        special(s).
      |}
  in
  (* a: 3 out-edges → branch 2; b: link(b,s) & special(s) → branch 1 *)
  Alcotest.(check int) "two interesting" 2
    (Relation.cardinal (Vm.relation vm "interesting"));
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "d" ] ]);
  Alcotest.(check bool) "a drops out" false
    (Relation.mem (Vm.relation vm "interesting") (Tuple.of_strs [ "a" ]));
  audit_ok vm

(* DRed with the same compositions over recursion *)
let dred_aggregate_negation_composition () =
  let vm =
    Vm.of_source ~algorithm:Vm.Dred
      {|
        path(X, Y) :- link(X, Y).
        path(X, Y) :- path(X, Z), link(Z, Y).
        reach_count(X, N) :- groupby(path(X, Y), [X], N = count()).
        sink(X) :- node(X), not has_out(X).
        has_out(X) :- link(X, Y).
        node(X) :- link(X, Y).
        node(Y) :- link(X, Y).
        link(a,b). link(b,c). link(c,d).
      |}
  in
  Alcotest.(check bool) "d is a sink" true
    (Relation.mem (Vm.relation vm "sink") (Tuple.of_strs [ "d" ]));
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "d"; "a" ] ]);
  Alcotest.(check bool) "d no longer a sink" false
    (Relation.mem (Vm.relation vm "sink") (Tuple.of_strs [ "d" ]));
  (* the cycle makes everything reach everything: counts = 4 *)
  Alcotest.(check bool) "reach_count(a,4)" true
    (Relation.mem (Vm.relation vm "reach_count") (Tuple.of_list Value.[ str "a"; int 4 ]));
  audit_ok vm

(* a 4-stratum tower: aggregate of a negation of an aggregate *)
let four_stratum_tower () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        deg(X, N) :- groupby(link(X, Y), [X], N = count()).
        node(X) :- link(X, Y).
        node(Y) :- link(X, Y).
        quiet(X) :- node(X), not loud(X).
        loud(X) :- deg(X, N), N >= 2.
        n_quiet(C) :- groupby(quiet(X), [], C = count()).
        link(a,b). link(a,c). link(b,c).
      |}
  in
  (* duplicate semantics throughout: node(b) and node(c) each have two
     derivations, loud = {a}, so quiet = {b·2, c·2} and COUNT sums the
     multiplicities: n_quiet = 4 *)
  Alcotest.(check bool) "n_quiet 4" true
    (Relation.mem (Vm.relation vm "n_quiet") (Tuple.of_list [ Value.int 4 ]));
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "b"; "d" ] ]);
  (* b becomes loud; d appears with one derivation: quiet = {c·2, d·1} *)
  Alcotest.(check bool) "n_quiet 3" true
    (Relation.mem (Vm.relation vm "n_quiet") (Tuple.of_list [ Value.int 3 ]));
  ignore (Vm.delete vm "link" [ Tuple.of_strs [ "a"; "c" ] ]);
  audit_ok vm

(* comparisons against aggregate results flowing into arithmetic heads *)
let arithmetic_over_aggregates () =
  let vm =
    Vm.of_source
      {|
        total(X, T) :- groupby(cost(X, C), [X], T = sum(C)).
        doubled(X, D) :- total(X, T), D = T * 2.
        over(X) :- total(X, T), T > 10.
        cost(a, 4). cost(a, 5). cost(b, 20).
      |}
  in
  Alcotest.(check bool) "doubled" true
    (Relation.mem (Vm.relation vm "doubled") (Tuple.of_list Value.[ str "a"; int 18 ]));
  Alcotest.(check bool) "over(b)" true
    (Relation.mem (Vm.relation vm "over") (Tuple.of_strs [ "b" ]));
  ignore (Vm.insert vm "cost" [ Tuple.of_list Value.[ str "a"; int 7 ] ]);
  Alcotest.(check bool) "over(a) now" true
    (Relation.mem (Vm.relation vm "over") (Tuple.of_strs [ "a" ]));
  Alcotest.(check bool) "doubled updated" true
    (Relation.mem (Vm.relation vm "doubled") (Tuple.of_list Value.[ str "a"; int 32 ]));
  audit_ok vm

(* a GROUPBY literal joined with other subgoals on its group key: deltas
   arriving through either side must maintain the join *)
let aggregate_joined_on_group_key () =
  let vm =
    Vm.of_source ~semantics:Database.Duplicate_semantics
      {|
        watched(X) :- watchlist(X).
        alert(X, N) :- watched(X), groupby(link(X, Y), [X], N = count()), N > 1.
        watchlist(a). watchlist(b).
        link(a,b). link(a,c). link(b,c). link(z,q). link(z,r).
      |}
  in
  (* a: watched, degree 2 → alert; b: degree 1 → no; z: not watched *)
  Alcotest.(check int) "one alert" 1 (Relation.cardinal (Vm.relation vm "alert"));
  (* delta through the aggregate side *)
  ignore (Vm.insert vm "link" [ Tuple.of_strs [ "b"; "d" ] ]);
  Alcotest.(check bool) "b alerts now" true
    (Relation.mem (Vm.relation vm "alert") (Tuple.of_list Value.[ str "b"; int 2 ]));
  (* delta through the guard side *)
  ignore (Vm.insert vm "watchlist" [ Tuple.of_strs [ "z" ] ]);
  Alcotest.(check bool) "z alerts now" true
    (Relation.mem (Vm.relation vm "alert") (Tuple.of_list Value.[ str "z"; int 2 ]));
  ignore (Vm.delete vm "watchlist" [ Tuple.of_strs [ "a" ] ]);
  Alcotest.(check bool) "a retracted" false
    (Relation.exists (fun t _ -> Value.equal (Tuple.get t 0) (Value.str "a"))
       (Vm.relation vm "alert"));
  audit_ok vm

let suite =
  [
    quick "aggregate joined on its group key" aggregate_joined_on_group_key;
    quick "two aggregates in one rule" two_aggregates_one_rule;
    quick "negation over an aggregate" negation_over_aggregate;
    quick "aggregate over a negation" aggregate_over_negation;
    quick "union of mixed branches" union_mixed_branches;
    quick "DRed: aggregates + negation over recursion"
      dred_aggregate_negation_composition;
    quick "four-stratum tower" four_stratum_tower;
    quick "arithmetic over aggregate results" arithmetic_over_aggregates;
  ]
