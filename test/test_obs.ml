(** The observability layer: metrics registry semantics (label identity,
    saturation, log-bucket histograms), span tracing (nesting, ordering,
    Chrome trace parse-back through {!Ivm_obs.Json}), the {!Ivm_eval.Stats}
    shim's snapshot/since contract, and the paper's headline claim as a
    property — Recompute's work strictly dominates Counting's on the
    Example 1.1 workload. *)

open Util
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace
module Json = Ivm_obs.Json
module Stats = Ivm_eval.Stats
module Changes = Ivm.Changes
module Counting = Ivm.Counting
module Recompute = Ivm_baselines.Recompute

let q ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let str k e = Option.bind (Json.member k e) Json.to_string_opt
let num k e = Option.bind (Json.member k e) Json.to_float_opt

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_handle_identity () =
  let a = Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "obs_test_ident" in
  let b = Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "obs_test_ident" in
  Metrics.inc a;
  Metrics.inc b;
  Alcotest.(check bool) "label order canonicalized to one handle" true (a == b);
  Alcotest.(check int) "both bumps hit the same counter" 2 (Metrics.counter_value a);
  let c = Metrics.counter ~labels:[ ("x", "1") ] "obs_test_ident" in
  Alcotest.(check bool) "different labels, different handle" false (a == c)

let test_kind_clash () =
  ignore (Metrics.counter "obs_test_clash");
  Alcotest.check_raises "re-registering as a gauge fails"
    (Invalid_argument "Metrics: obs_test_clash already registered as a counter")
    (fun () -> ignore (Metrics.gauge "obs_test_clash"))

let test_counter_saturation () =
  let c = Metrics.counter "obs_test_saturate" in
  Metrics.add c (max_int - 1);
  Metrics.add c 5;
  Alcotest.(check int) "add saturates at max_int" max_int (Metrics.counter_value c);
  Metrics.inc c;
  Alcotest.(check int) "inc saturates too" max_int (Metrics.counter_value c);
  Metrics.add c (-3);
  Alcotest.(check int) "negative add still works" (max_int - 3)
    (Metrics.counter_value c)

let test_histogram_buckets () =
  Alcotest.(check int) "v<=0 goes to bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "2..3 -> bucket 2" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "4..7 -> bucket 3" 3 (Metrics.bucket_of 7);
  Alcotest.(check int) "bucket 3 upper bound" 7 (Metrics.bucket_upper 3);
  Alcotest.(check int) "2^40 -> bucket 41" 41 (Metrics.bucket_of (1 lsl 40));
  (* 62 on 63-bit native ints: the min-clamp is headroom, not reachable *)
  Alcotest.(check bool) "max_int fits the bucket array" true
    (Metrics.bucket_of max_int < 64);
  Alcotest.(check bool) "max_int's bucket covers it" true
    (Metrics.bucket_upper (Metrics.bucket_of max_int) >= max_int)

let test_histogram_percentiles () =
  let h = Metrics.histogram "obs_test_hist" in
  Alcotest.(check int) "empty percentile is 0" 0 (Metrics.percentile h 0.5);
  List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 106 (Metrics.histogram_sum h);
  Alcotest.(check int) "min" 1 (Metrics.histogram_min h);
  Alcotest.(check int) "max" 100 (Metrics.histogram_max h);
  (* rank 2 of {1,2,3,100} is 2, in bucket [2,3] -> upper bound 3 *)
  Alcotest.(check int) "p50 = containing bucket upper" 3 (Metrics.percentile h 0.5);
  (* rank 4 is 100, in bucket [64,127] -> 127: within 2x of exact *)
  Alcotest.(check int) "p99 within 2x" 127 (Metrics.percentile h 0.99)

let test_reset_keeps_handles () =
  let c = Metrics.counter "obs_test_reset" in
  let h = Metrics.histogram "obs_test_reset_h" in
  Metrics.add c 7;
  Metrics.observe h 9;
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.inc c;
  Metrics.observe h 1;
  Alcotest.(check int) "handle still live after reset" 1 (Metrics.counter_value c);
  Alcotest.(check int) "histogram handle still live" 1 (Metrics.histogram_count h)

let test_registry_json () =
  let g = Metrics.gauge ~labels:[ ("relation", "r") ] "obs_test_json_gauge" in
  Metrics.set g 42.;
  let json = Metrics.to_json () in
  (* round-trip through the emitter and parser *)
  let parsed = Json.of_string (Json.to_string json) in
  match parsed with
  | Json.List entries ->
    let found =
      List.exists
        (fun e ->
          str "name" e = Some "obs_test_json_gauge" && num "value" e = Some 42.)
        entries
    in
    Alcotest.(check bool) "gauge present with value in JSON dump" true found
  | _ -> Alcotest.fail "registry JSON is not a list"

(* ------------------------------------------------------------------ *)
(* Tracer                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_disabled_passthrough () =
  ignore (Trace.disable ());
  Alcotest.(check bool) "disabled by default here" false (Trace.enabled ());
  let r = Trace.span "never-recorded" (fun () -> 17) in
  Alcotest.(check int) "span is transparent when off" 17 r;
  Alcotest.(check (list string)) "nothing recorded" []
    (List.map (fun e -> e.Trace.name) (Trace.ring_events ()))

let test_span_nesting () =
  Trace.enable ~capacity:16 ();
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () -> Trace.instant "tick");
      Trace.span "inner2" (fun () -> ()));
  ignore (Trace.disable ());
  let evs = Trace.ring_events () in
  let names = List.map (fun e -> e.Trace.name) evs in
  (* completion order: instants immediately, spans when they close *)
  Alcotest.(check (list string)) "completion order" [ "tick"; "inner"; "inner2"; "outer" ] names;
  let by_name n = List.find (fun e -> e.Trace.name = n) evs in
  Alcotest.(check int) "outer at depth 0" 0 (by_name "outer").Trace.depth;
  Alcotest.(check int) "inner at depth 1" 1 (by_name "inner").Trace.depth;
  Alcotest.(check int) "instant inside inner at depth 2" 2 (by_name "tick").Trace.depth;
  let outer = by_name "outer" and inner = by_name "inner" in
  Alcotest.(check bool) "outer contains inner (timestamps)" true
    (outer.Trace.ts_us <= inner.Trace.ts_us
    && outer.Trace.ts_us +. outer.Trace.dur_us
       >= inner.Trace.ts_us +. inner.Trace.dur_us)

let test_span_exception () =
  Trace.enable ~capacity:8 ();
  (try Trace.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  ignore (Trace.disable ());
  match Trace.ring_events () with
  | [ ev ] ->
    Alcotest.(check string) "span recorded despite exception" "boom" ev.Trace.name;
    Alcotest.(check bool) "exn attached" true
      (List.mem_assoc "exn" ev.Trace.args)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_trace_file_parse_back () =
  let path = Filename.temp_file "ivm_obs_test" ".json" in
  Trace.enable_file ~capacity:16 path;
  Trace.span "batch" ~args:(fun () -> [ ("algorithm", "counting") ])
    (fun () -> Trace.span "rule" (fun () -> ()));
  (match Trace.disable () with
  | Some p -> Alcotest.(check string) "disable returns the path" path p
  | None -> Alcotest.fail "disable lost the file path");
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | "[" :: _ -> ()
  | _ -> Alcotest.fail "file must open a JSON array");
  let strip_comma l =
    let l = String.trim l in
    if String.length l > 0 && l.[String.length l - 1] = ',' then
      String.sub l 0 (String.length l - 1)
    else l
  in
  let events = List.tl lines |> List.map (fun l -> Json.of_string (strip_comma l)) in
  Alcotest.(check int) "two span events" 2 (List.length events);
  let names = List.map (str "name") events in
  Alcotest.(check bool) "rule completes before batch" true
    (names = [ Some "rule"; Some "batch" ]);
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "complete event" (Some "X") (str "ph" e);
      Alcotest.(check bool) "has a timestamp" true (num "ts" e <> None))
    events;
  let batch = List.nth events 1 in
  Alcotest.(check (option string)) "args thunk captured" (Some "counting")
    (Option.bind (Json.member "args" batch) (str "algorithm"));
  Sys.remove path

let test_ring_wraps () =
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (string_of_int i)
  done;
  ignore (Trace.disable ());
  Alcotest.(check (list string)) "ring keeps newest, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.name) (Trace.ring_events ()));
  Alcotest.(check int) "drops counted" 6 (Trace.dropped ())

(* The serve path emits from reader and writer domains while the monitor
   drains [/trace] and tests toggle tracing — control (enable/disable)
   and emission must serialize on the ring lock.  Hammer all of them at
   once, then check the quiescent accounting still balances. *)
let test_trace_multidomain_stress () =
  ignore (Trace.disable ());
  let stop = Atomic.make false in
  let emitters =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              let name = Printf.sprintf "d%d-%d" d !i in
              Trace.instant name;
              Trace.span_at ~ts:(Unix.gettimeofday ()) ~dur:1e-6 name;
              Trace.flow ~phase:`Step ~id:(d + 1)
                ~ts:(Unix.gettimeofday ()) name
            done))
  in
  (* toggle and drain concurrently with the emitting domains *)
  for _ = 1 to 50 do
    Trace.enable ~capacity:64 ();
    ignore (Trace.drain ());
    ignore (Trace.ring_events ());
    ignore (Trace.disable ())
  done;
  Atomic.set stop true;
  List.iter Domain.join emitters;
  (* quiescent: a fresh ring accounts for every event exactly once *)
  Trace.enable ~capacity:64 ();
  for i = 1 to 1000 do
    Trace.instant (string_of_int i)
  done;
  ignore (Trace.disable ());
  Alcotest.(check int) "ring + drops account for every event" 1000
    (List.length (Trace.ring_events ()) + Trace.dropped ())

(* ------------------------------------------------------------------ *)
(* Stats shim                                                           *)
(* ------------------------------------------------------------------ *)

let test_stats_since_nesting () =
  Stats.reset ();
  let outer_before = Stats.snapshot () in
  Stats.add_derivation ();
  let inner_before = Stats.snapshot () in
  Stats.add_derivation ();
  Stats.add_derivation ();
  let inner = Stats.since inner_before in
  let outer = Stats.since outer_before in
  Alcotest.(check int) "inner region work" 2 inner.Stats.snap_derivations;
  Alcotest.(check int) "outer region includes inner (by design)" 3
    outer.Stats.snap_derivations

let test_stats_since_clamps_across_reset () =
  Stats.reset ();
  Stats.add_probe ();
  Stats.add_probe ();
  let before = Stats.snapshot () in
  Stats.reset ();
  Stats.add_probe ();
  let w = Stats.since before in
  Alcotest.(check int) "stale snapshot clamps at 0, never negative" 0
    w.Stats.snap_probes

(* ------------------------------------------------------------------ *)
(* Property: Recompute work strictly dominates Counting (Example 1.1)   *)
(* ------------------------------------------------------------------ *)

(* hop over a random edge set, plus a fixed component (negative node ids,
   disjoint from the generated domain) whose hop tuple every recomputation
   must re-derive while Counting — touching only the delta (Theorem 4.1) —
   never visits it. *)
let domination_gen =
  QCheck.Gen.(list_size (int_range 0 30) (pair (int_range 0 19) (int_range 0 19)))
  |> QCheck.make ~print:(fun edges ->
         String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges))

let work_of snap =
  snap.Stats.snap_derivations + snap.Stats.snap_tuples_scanned
  + snap.Stats.snap_probes

let test_recompute_dominates edges =
  let program =
    Program.make (Ivm_datalog.Parser.parse_rules Ivm_workload.Programs.hop)
  in
  let db = Database.create ~semantics:Database.Set_semantics program in
  let fixed =
    [ Tuple.of_ints [ -1; -2 ]; Tuple.of_ints [ -2; -3 ] ]
  in
  let generated =
    List.map (fun (a, b) -> Tuple.make [| Value.Int a; Value.Int b |]) edges
  in
  Database.load db "link" (fixed @ generated);
  Seminaive.evaluate db;
  (* insert one edge outside both domains: always a valid change *)
  let batch =
    Changes.insertions program "link" [ Tuple.of_ints [ 1000; 1001 ] ]
  in
  let counting_db = Database.copy db and recompute_db = Database.copy db in
  let before = Stats.snapshot () in
  ignore (Counting.maintain counting_db batch);
  let counting_work = work_of (Stats.since before) in
  let before = Stats.snapshot () in
  Recompute.maintain recompute_db batch;
  let recompute_work = work_of (Stats.since before) in
  if not (Database.agree counting_db recompute_db) then
    QCheck.Test.fail_reportf "algorithms disagree on the maintained state";
  if counting_work >= recompute_work then
    QCheck.Test.fail_reportf
      "counting did %d units of work, recompute only %d — Theorem 4.1's \
       optimality advantage should be strict on this workload"
      counting_work recompute_work;
  true

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "registry: label order canonicalized" `Quick
      test_handle_identity;
    Alcotest.test_case "registry: kind clash rejected" `Quick test_kind_clash;
    Alcotest.test_case "counter: saturates at max_int" `Quick
      test_counter_saturation;
    Alcotest.test_case "histogram: log2 bucketing" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram: percentiles within 2x" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "registry: reset keeps handles live" `Quick
      test_reset_keeps_handles;
    Alcotest.test_case "registry: JSON dump round-trips" `Quick
      test_registry_json;
    Alcotest.test_case "trace: disabled span is transparent" `Quick
      test_span_disabled_passthrough;
    Alcotest.test_case "trace: spans nest by depth and timestamp" `Quick
      test_span_nesting;
    Alcotest.test_case "trace: exception still records the span" `Quick
      test_span_exception;
    Alcotest.test_case "trace: file sink parses back as trace_event" `Quick
      test_trace_file_parse_back;
    Alcotest.test_case "trace: ring buffer wraps, drops counted" `Quick
      test_ring_wraps;
    Alcotest.test_case "trace: multi-domain emit vs toggle vs drain" `Quick
      test_trace_multidomain_stress;
    Alcotest.test_case "stats: nested since attributes to both regions" `Quick
      test_stats_since_nesting;
    Alcotest.test_case "stats: since clamps across reset" `Quick
      test_stats_since_clamps_across_reset;
    q ~count:100 "recompute work strictly dominates counting (Ex 1.1)"
      domination_gen test_recompute_dominates;
  ]
