(** Additional unit coverage: relation internals, lexer/parser corners,
    aggregate accumulators, semi-naive guards, cross-unit DRed cascades. *)

open Util
module Lexer = Ivm_datalog.Lexer
module Agg = Ivm_eval.Agg
module Changes = Ivm.Changes

(* ---------------- relation internals ---------------- *)

let relation_misc () =
  let r = rel_of_pairs "ab 2; cd -1" in
  Alcotest.(check int) "total_count is signed" 1 (Relation.total_count r);
  Alcotest.(check bool) "exists" true (Relation.exists (fun _ c -> c < 0) r);
  Relation.set_count r (Tuple.of_strs [ "a"; "b" ]) 7;
  Alcotest.(check int) "set_count overwrites" 7
    (Relation.count r (Tuple.of_strs [ "a"; "b" ]));
  Relation.remove r (Tuple.of_strs [ "a"; "b" ]);
  Alcotest.(check bool) "remove" false (Relation.mem r (Tuple.of_strs [ "a"; "b" ]));
  Relation.clear r;
  Alcotest.(check bool) "clear" true (Relation.is_empty r)

let relation_index_lifecycle () =
  let r = rel_of_pairs "ab; ac; bc" in
  Relation.ensure_index r [| 1 |];
  Relation.ensure_index r [| 1 |];
  (* idempotent *)
  let hits = ref 0 in
  Relation.probe r [| 1 |] (Tuple.of_strs [ "c" ]) (fun _ _ -> incr hits);
  Alcotest.(check int) "column-1 probe" 2 !hits;
  (* full-tuple probe uses direct lookup *)
  let hit = ref 0 in
  Relation.probe r [| 0; 1 |] (Tuple.of_strs [ "a"; "b" ]) (fun _ c -> hit := c);
  Alcotest.(check int) "membership probe" 1 !hit;
  (* copies carry indexes and stay independent *)
  let r2 = Relation.copy r in
  Relation.add r2 (Tuple.of_strs [ "z"; "c" ]) 1;
  let hits2 = ref 0 in
  Relation.probe r2 [| 1 |] (Tuple.of_strs [ "c" ]) (fun _ _ -> incr hits2);
  Alcotest.(check int) "copy sees its own insert" 3 !hits2;
  let hits1 = ref 0 in
  Relation.probe r [| 1 |] (Tuple.of_strs [ "c" ]) (fun _ _ -> incr hits1);
  Alcotest.(check int) "original untouched" 2 !hits1

let relation_diff_negate () =
  let a = rel_of_pairs "ab 2" and b = rel_of_pairs "ab 2; cd" in
  check_rel "diff" (rel_of_pairs "cd -1") (Relation.diff a b);
  let n = Relation.negate b in
  check_rel "negate" (rel_of_pairs "ab -2; cd -1") n;
  Alcotest.(check bool) "negate cancels" true
    (Relation.is_empty (Relation.union n b))

(* ---------------- lexer / parser corners ---------------- *)

let lexer_tokens () =
  let toks = Lexer.tokenize "p(X) :- q(X, 2.5), X >= 1, X <> 2. % c" in
  let kinds = List.map (fun s -> s.Lexer.tok) toks in
  Alcotest.(check bool) "has float" true (List.mem (Lexer.FLOAT 2.5) kinds);
  Alcotest.(check bool) "has GE" true (List.mem Lexer.GE kinds);
  Alcotest.(check bool) "<> is NEQ" true (List.mem Lexer.NEQ kinds);
  Alcotest.(check bool) "comment skipped" true
    (List.for_all (function Lexer.IDENT "c" -> false | _ -> true) kinds);
  (match List.rev kinds with
  | Lexer.EOF :: _ -> ()
  | _ -> Alcotest.fail "EOF expected")

let lexer_positions () =
  try
    ignore (Lexer.tokenize "p(X) :-\n  q(@).");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error msg ->
    Alcotest.(check bool) "line 2 reported" true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 2")

let parse_body_queries () =
  let lits = Parser.parse_body "hop(a, X), not link(X, b), X != c" in
  Alcotest.(check int) "three literals" 3 (List.length lits);
  let lits = Parser.parse_body "link(X, Y)." in
  Alcotest.(check int) "trailing dot ok" 1 (List.length lits);
  try
    ignore (Parser.parse_body "link(X, Y) link(Y, Z)");
    Alcotest.fail "expected Parse_error"
  with Parser.Parse_error _ -> ()

let pretty_precedence () =
  let roundtrip src =
    let r = Parser.parse_rule src in
    let printed = Ivm_datalog.Pretty.rule_to_string r in
    let r2 = Parser.parse_rule printed in
    Alcotest.(check bool) (Printf.sprintf "%s ↔ %s" src printed) true
      (Ast.equal_rule r r2)
  in
  roundtrip "p(X * (Y + Z)) :- q(X, Y, Z).";
  roundtrip "p((X + Y) * Z) :- q(X, Y, Z).";
  roundtrip "p(X - (Y - Z)) :- q(X, Y, Z).";
  roundtrip "p(-X + Y) :- q(X, Y).";
  roundtrip "p(X / Y / Z) :- q(X, Y, Z)."

(* ---------------- aggregate accumulators ---------------- *)

let agg_invalid_removal () =
  let st = Agg.create Ast.Sum in
  Agg.update st (Value.int 5) 1;
  try
    Agg.update st (Value.int 5) (-2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let agg_min_multiset () =
  let st = Agg.create Ast.Min in
  Agg.update st (Value.int 3) 2;
  Agg.update st (Value.int 5) 1;
  Agg.update st (Value.int 3) (-1);
  Alcotest.(check bool) "min still 3 (one copy left)" true
    (Agg.value st = Some (Value.int 3));
  Agg.update st (Value.int 3) (-1);
  Alcotest.(check bool) "min now 5" true (Agg.value st = Some (Value.int 5));
  Agg.update st (Value.int 5) (-1);
  Alcotest.(check bool) "empty group" true (Agg.value st = None)

let agg_sum_type_error () =
  let st = Agg.create Ast.Sum in
  try
    Agg.update st (Value.str "x") 1;
    Alcotest.fail "expected Type_error"
  with Value.Type_error _ -> ()

let agg_avg_mixed () =
  let st = Agg.create Ast.Avg in
  Agg.update st (Value.int 1) 1;
  Agg.update st (Value.float 2.0) 1;
  Alcotest.(check bool) "avg 1.5" true (Agg.value st = Some (Value.float 1.5))

(* ---------------- semi-naive guards ---------------- *)

let recursive_duplicates_rejected () =
  let program =
    Program.make
      (Parser.parse_rules
         "path(X, Y) :- link(X, Y).\npath(X, Y) :- path(X, Z), link(Z, Y).")
  in
  let db = Database.create ~semantics:Database.Duplicate_semantics program in
  Database.load db "link" [ Tuple.of_strs [ "a"; "b" ] ];
  try
    Seminaive.evaluate db;
    Alcotest.fail "expected Recursive_duplicates"
  with Seminaive.Recursive_duplicates _ -> ()

(* ---------------- counting with duplicate base facts ---------------- *)

let duplicate_base_maintenance () =
  let db =
    db_of_source ~semantics:Database.Duplicate_semantics
      {|
        hop(X, Y) :- link(X, Z), link(Z, Y).
        link(a,b). link(a,b). link(b,c).
      |}
  in
  check_rel "hop(a,c) 2 ways" (rel_of_pairs "ac 2") (rel db "hop");
  (* deleting ONE copy of link(a,b) halves the count *)
  ignore
    (Ivm.Counting.maintain db
       (Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "a"; "b" ] ]));
  check_rel "hop(a,c) 1 way" (rel_of_pairs "ac") (rel db "hop")

let insert_delete_same_batch () =
  let db = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b). link(b,c).
  |} in
  let p = Database.program db in
  let changes =
    Changes.merge
      (Changes.insertions p "link" [ Tuple.of_strs [ "x"; "y" ] ])
      (Changes.deletions p "link" [ Tuple.of_strs [ "x"; "y" ] ])
  in
  let report = Ivm.Counting.maintain db changes in
  Alcotest.(check int) "no view deltas" 0 (List.length report.Ivm.Counting.view_deltas)

let empty_change_set () =
  let db = db_of_source {|
    hop(X, Y) :- link(X, Z), link(Z, Y).
    link(a,b).
  |} in
  let report = Ivm.Counting.maintain db [] in
  Alcotest.(check int) "nothing" 0 (List.length report.Ivm.Counting.view_deltas)

(* ---------------- DRed across stacked recursive units ---------------- *)

let stacked_recursive_units () =
  (* unit 1: path (SCC); unit 2: meta-closure over path endpoints *)
  let src =
    {|
      path(X, Y) :- link(X, Y).
      path(X, Y) :- path(X, Z), link(Z, Y).
      far(X, Y) :- path(X, Y), not link(X, Y).
      reach_far(X, Y) :- far(X, Y).
      reach_far(X, Y) :- reach_far(X, Z), far(Z, Y).
      link(a,b). link(b,c). link(c,d). link(d,e).
    |}
  in
  let db = db_of_source src in
  let changes =
    Changes.deletions (Database.program db) "link" [ Tuple.of_strs [ "b"; "c" ] ]
  in
  let oracle = Database.copy db in
  List.iter
    (fun (pred, delta) ->
      let stored = Database.relation oracle pred in
      Relation.iter (fun tup c -> Relation.add stored tup c) delta)
    (Changes.normalize_base oracle changes);
  Seminaive.evaluate oracle;
  ignore (Ivm.Dred.maintain db changes);
  List.iter
    (fun p ->
      if not (Relation.equal_sets (rel db p) (rel oracle p)) then
        Alcotest.failf "%s: %s <> %s" p
          (Relation.to_string (rel db p))
          (Relation.to_string (rel oracle p)))
    [ "path"; "far"; "reach_far" ]

let suite =
  [
    quick "relation misc operations" relation_misc;
    quick "index lifecycle and copies" relation_index_lifecycle;
    quick "diff and negate" relation_diff_negate;
    quick "lexer token coverage" lexer_tokens;
    quick "lexer error positions" lexer_positions;
    quick "parse_body for queries" parse_body_queries;
    quick "pretty-printer precedence round trips" pretty_precedence;
    quick "aggregate invalid removal" agg_invalid_removal;
    quick "MIN keeps a value multiset" agg_min_multiset;
    quick "SUM over non-numbers fails" agg_sum_type_error;
    quick "AVG over mixed numerics" agg_avg_mixed;
    quick "recursive duplicates rejected by seminaive" recursive_duplicates_rejected;
    quick "duplicate base facts maintained" duplicate_base_maintenance;
    quick "insert+delete in one batch is a no-op" insert_delete_same_batch;
    quick "empty change set" empty_change_set;
    quick "DRed across stacked recursive units" stacked_recursive_units;
  ]
