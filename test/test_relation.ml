(** Unit tests for the counted-relation storage layer: values, tuples,
    the [⊎] operator, indexes, and overlay views. *)

open Util

(* ---------------- Value ---------------- *)

let value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  Alcotest.(check bool)
    "cross numeric equality" true
    (Value.equal (Value.int 2) (Value.float 2.0));
  Alcotest.(check bool)
    "cross numeric order" true
    (Value.compare (Value.int 2) (Value.float 2.5) < 0);
  Alcotest.(check bool)
    "kinds ordered deterministically" true
    (Value.compare (Value.str "a") (Value.bool true) < 0);
  Alcotest.(check int)
    "equal values hash equal" (Value.hash (Value.int 2))
    (Value.hash (Value.float 2.0))

let value_arith () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (Value.int 2) (Value.int 3)) (Value.int 5));
  Alcotest.(check bool)
    "promotion" true
    (Value.equal (Value.add (Value.int 2) (Value.float 0.5)) (Value.float 2.5));
  Alcotest.check_raises "division by zero" (Value.Type_error "division by zero")
    (fun () -> ignore (Value.div (Value.int 1) (Value.int 0)));
  (try
     ignore (Value.add (Value.str "a") (Value.int 1));
     Alcotest.fail "expected Type_error"
   with Value.Type_error _ -> ())

let value_printing () =
  Alcotest.(check string) "symbol bare" "abc" (Value.to_string (Value.str "abc"));
  Alcotest.(check string) "odd string quoted" "\"A b\"" (Value.to_string (Value.str "A b"));
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.float 2.5))

(* ---------------- Tuple ---------------- *)

let tuple_basics () =
  let t = Tuple.of_ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.(check bool) "equal" true (Tuple.equal t (Tuple.of_ints [ 1; 2; 3 ]));
  Alcotest.(check bool)
    "project" true
    (Tuple.equal (Tuple.project [| 2; 0 |] t) (Tuple.of_ints [ 3; 1 ]));
  Alcotest.(check bool)
    "length-first compare" true
    (Tuple.compare (Tuple.of_ints [ 9 ]) (Tuple.of_ints [ 1; 1 ]) < 0);
  Alcotest.(check int)
    "hash consistent with cross-kind equality"
    (Tuple.hash (Tuple.of_list [ Value.int 1 ]))
    (Tuple.hash (Tuple.of_list [ Value.float 1.0 ]))

(* ---------------- Relation ---------------- *)

let rel_counts () =
  let r = Relation.create 2 in
  let ab = Tuple.of_strs [ "a"; "b" ] in
  Relation.add r ab 2;
  Relation.add r ab 3;
  Alcotest.(check int) "accumulates" 5 (Relation.count r ab);
  Relation.add r ab (-5);
  Alcotest.(check bool) "drops at zero" false (Relation.mem r ab);
  Alcotest.(check int) "cardinal" 0 (Relation.cardinal r)

let rel_negative_counts () =
  let r = Relation.create 2 in
  let ab = Tuple.of_strs [ "a"; "b" ] in
  Relation.add r ab (-2);
  Alcotest.(check int) "negative kept (delta)" (-2) (Relation.count r ab);
  check_rel "negative part" (rel_of_pairs "ab 2") (Relation.negative_part r);
  Alcotest.(check int) "positive part empty" 0 (Relation.cardinal (Relation.positive_part r))

let rel_arity_mismatch () =
  let r = Relation.create 2 in
  try
    Relation.add r (Tuple.of_strs [ "a" ]) 1;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let rel_set_ops () =
  let a = rel_of_pairs "ab 2; cd" in
  let b = rel_of_pairs "ab -1; ef 3" in
  check_rel "union" (rel_of_pairs "ab; cd; ef 3") (Relation.union a b);
  check_rel "diff" (rel_of_pairs "ab 3; cd; ef -3") (Relation.diff a b);
  check_rel "to_set" (rel_of_pairs "ab; cd") (Relation.to_set a);
  Alcotest.(check bool)
    "equal_sets ignores counts" true
    (Relation.equal_sets (rel_of_pairs "ab 5; cd") (rel_of_pairs "ab; cd"));
  Alcotest.(check bool)
    "equal_counted sees counts" false
    (Relation.equal_counted (rel_of_pairs "ab 5") (rel_of_pairs "ab"))

let rel_set_delta () =
  let old_ = rel_of_pairs "ab 2; cd" in
  let new_ = rel_of_pairs "ab 1; ef" in
  check_rel "set delta" (rel_of_pairs "cd -1; ef") (Relation.set_delta ~old_ ~new_)

let rel_index_probe () =
  let r = rel_of_pairs "ab; ac; bc; bd 2" in
  Relation.ensure_index r [| 0 |];
  let hits = ref [] in
  Relation.probe r [| 0 |] (Tuple.of_strs [ "b" ]) (fun t c -> hits := (t, c) :: !hits);
  Alcotest.(check int) "two b-edges" 2 (List.length !hits);
  (* index follows subsequent mutation *)
  Relation.add r (Tuple.of_strs [ "b"; "e" ]) 1;
  Relation.add r (Tuple.of_strs [ "b"; "c" ]) (-1);
  let hits = ref 0 in
  Relation.probe r [| 0 |] (Tuple.of_strs [ "b" ]) (fun _ _ -> incr hits);
  Alcotest.(check int) "after updates" 2 !hits;
  (* probe on both columns *)
  let hit = ref 0 in
  Relation.probe r [| 0; 1 |] (Tuple.of_strs [ "b"; "d" ]) (fun _ c -> hit := c);
  Alcotest.(check int) "exact probe sees count" 2 !hit

let rel_printing () =
  Alcotest.(check string)
    "sorted with counts" "{a,b; a,c 2; m,n -1}"
    (Relation.to_string
       (Relation.of_list 2
          [
            (Tuple.of_strs [ "a"; "c" ], 2);
            (Tuple.of_strs [ "m"; "n" ], -1);
            (Tuple.of_strs [ "a"; "b" ], 1);
          ]))

(* ---------------- Relation_view ---------------- *)

let view_overlay () =
  let base = rel_of_pairs "ab 2; cd" in
  let delta = rel_of_pairs "ab -2; ef" in
  let v = Relation_view.overlay base delta in
  Alcotest.(check bool) "ab cancelled" false (Relation_view.mem v (Tuple.of_strs [ "a"; "b" ]));
  Alcotest.(check int) "ef visible" 1 (Relation_view.count v (Tuple.of_strs [ "e"; "f" ]));
  Alcotest.(check int) "cd unchanged" 1 (Relation_view.count v (Tuple.of_strs [ "c"; "d" ]));
  (* iter sees each visible tuple once *)
  let seen = ref [] in
  Relation_view.iter (fun t c -> seen := (Tuple.to_string t, c) :: !seen) v;
  Alcotest.(check int) "two visible tuples" 2 (List.length !seen);
  check_rel "force materializes" (rel_of_pairs "cd; ef") (Relation_view.force v)

let view_overlay_probe () =
  let base = rel_of_pairs "ab; ac; bd" in
  let delta = rel_of_pairs "ab -1; ae" in
  let v = Relation_view.overlay base delta in
  let hits = ref [] in
  Relation_view.probe v [| 0 |] (Tuple.of_strs [ "a" ]) (fun t _ -> hits := t :: !hits);
  let names = List.sort compare (List.map Tuple.to_string !hits) in
  Alcotest.(check (list string)) "a-edges" [ "(a, c)"; "(a, e)" ] names

let view_collapse () =
  let base = rel_of_pairs "ab" in
  match Relation_view.overlay base (Relation.create 2) with
  | Relation_view.Concrete _ -> ()
  | Relation_view.Overlay _ -> Alcotest.fail "empty delta should collapse"

let suite =
  [
    quick "value compare/equal/hash" value_compare;
    quick "value arithmetic" value_arith;
    quick "value printing" value_printing;
    quick "tuple basics" tuple_basics;
    quick "relation count accumulation" rel_counts;
    quick "relation negative counts" rel_negative_counts;
    quick "relation arity mismatch" rel_arity_mismatch;
    quick "relation set operations" rel_set_ops;
    quick "relation set_delta" rel_set_delta;
    quick "relation index probing" rel_index_probe;
    quick "relation printing" rel_printing;
    quick "overlay view semantics" view_overlay;
    quick "overlay view probing" view_overlay_probe;
    quick "overlay collapses when delta empty" view_collapse;
  ]
