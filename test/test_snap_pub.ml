(** The incremental snapshot publisher (lib/serve/snap_pub).

    The load-bearing property: an incrementally patched published
    snapshot is indistinguishable from a fresh [Database.copy] — same
    canonical digest after every publish, across generated traces of
    batch applies, rule changes and algorithm switches, under all four
    maintenance algorithms.  Plus directed tests for the stalled-reader
    full-copy fallback (invariant 13: a pinned snapshot is never
    mutated) and the [Relation.patch] / index-free copy primitives the
    publisher is built on. *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Parser = Ivm_datalog.Parser
module Database = Ivm_eval.Database
module Query = Ivm_eval.Query
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Snap_pub = Ivm_serve.Snap_pub
module Q = QCheck

let seed_src = "hop(X,Y) :- link(X,Z), link(Z,Y)."
let extra_rule = Parser.parse_rule "far(X,Y) :- hop(X,Z), link(Z,Y)."

(* ---------------- primitives the publisher rests on ---------------- *)

let test_patch_guard () =
  let r = Relation.create 2 in
  let t = Tuple.of_ints [ 1; 2 ] in
  Relation.patch r t 3;
  Alcotest.(check int) "patched in" 3 (Relation.count r t);
  Relation.patch r t (-1);
  Alcotest.(check int) "patched down" 2 (Relation.count r t);
  Alcotest.check_raises "below zero rejected"
    (Invalid_argument
       "Relation.patch: count would go negative (2-3) for (1, 2)")
    (fun () -> Relation.patch r t (-3));
  Relation.patch r t (-2);
  Alcotest.(check int) "patched to absence" 0 (Relation.count r t)

let test_copy_without_indexes () =
  let vm = Vm.of_source ~algorithm:Vm.Counting seed_src in
  let changes =
    Changes.insertions (Vm.program vm) "link"
      [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 2; 3 ]; Tuple.of_ints [ 3; 1 ] ]
  in
  ignore (Vm.apply vm changes);
  let db = Vm.database vm in
  let shadow = Database.copy ~with_indexes:false db in
  Alcotest.(check string) "digest-equal to the original"
    (Database.canonical_digest db)
    (Database.canonical_digest shadow);
  (* queries against the index-free copy rebuild indexes on demand *)
  let rows q db = Relation.to_sorted_list (Query.run_text db q).Query.rows in
  Alcotest.(check bool) "query answers match" true
    (rows "hop(X, Y)" db = rows "hop(X, Y)" shadow)

(* ---------------- the publish-equivalence property ---------------- *)

type op =
  | Apply of (bool * int * int) list  (** (insert?, x, y) over link *)
  | Rule_toggle  (** add [extra_rule] if absent, remove it if present *)
  | Algo of Vm.algorithm

type scenario = { duplicate : bool; algo : Vm.algorithm; ops : op list }

let algo_pool duplicate =
  if duplicate then [ Vm.Counting; Vm.Recursive_counting; Vm.Recompute ]
  else [ Vm.Counting; Vm.Dred; Vm.Recompute ]

let gen_scenario =
  let open Q.Gen in
  bool >>= fun duplicate ->
  let algos = algo_pool duplicate in
  oneofl algos >>= fun algo ->
  let gen_entry =
    frequencyl [ (7, true); (3, false) ] >>= fun ins ->
    int_range 0 5 >>= fun x ->
    int_range 0 5 >|= fun y -> (ins, x, y)
  in
  let gen_op =
    frequency
      [
        (7, list_size (int_range 1 8) gen_entry >|= fun es -> Apply es);
        (2, return Rule_toggle);
        (2, oneofl algos >|= fun a -> Algo a);
      ]
  in
  list_size (int_range 3 12) gen_op >|= fun ops -> { duplicate; algo; ops }

let print_scenario s =
  let op = function
    | Apply es ->
      Printf.sprintf "apply[%s]"
        (String.concat ";"
           (List.map
              (fun (ins, x, y) ->
                Printf.sprintf "%c(%d,%d)" (if ins then '+' else '-') x y)
              es))
    | Rule_toggle -> "rule-toggle"
    | Algo a -> "algo:" ^ Vm.algorithm_name a
  in
  Printf.sprintf "{dup=%b; algo=%s; [%s]}" s.duplicate
    (Vm.algorithm_name s.algo)
    (String.concat " " (List.map op s.ops))

(** Run one scenario, publishing after every mutation and requiring the
    published snapshot to digest-equal a fresh [Database.copy] of the
    live database.  Generated deletes are clamped to valid ones against
    a running count map, so every batch is well-formed. *)
let run_scenario (s : scenario) : bool =
  let semantics =
    if s.duplicate then Database.Duplicate_semantics
    else Database.Set_semantics
  in
  let vm = Vm.of_source ~semantics ~algorithm:s.algo seed_src in
  let pub = Snap_pub.create ~readers:2 vm in
  let counts : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let has_extra = ref false in
  let check_pub what =
    let got = Database.canonical_digest (Snap_pub.current pub) in
    let want = Database.canonical_digest (Database.copy (Vm.database vm)) in
    if got <> want then
      Q.Test.fail_reportf "after %s: published %s, fresh copy %s" what got want
  in
  List.iter
    (fun op ->
      match op with
      | Apply entries ->
        let entries =
          List.filter_map
            (fun (ins, x, y) ->
              let c = Option.value ~default:0 (Hashtbl.find_opt counts (x, y)) in
              if ins then begin
                Hashtbl.replace counts (x, y) (c + 1);
                Some (Tuple.of_ints [ x; y ], 1)
              end
              else if c > 0 then begin
                Hashtbl.replace counts (x, y) (c - 1);
                Some (Tuple.of_ints [ x; y ], -1)
              end
              else None)
            entries
        in
        if entries <> [] then begin
          let changes = Changes.of_list (Vm.program vm) [ ("link", entries) ] in
          let track = Changes.collector () in
          (match Vm.apply_group ~track vm [ changes ] with
          | [ Ok _ ] -> ()
          | [ Error e ] -> Q.Test.fail_reportf "apply_group failed: %s" e
          | _ -> assert false);
          ignore (Snap_pub.publish ~track pub : Snap_pub.mode);
          check_pub "apply"
        end
      | Rule_toggle ->
        if !has_extra then Vm.remove_rule vm extra_rule
        else Vm.add_rule vm extra_rule;
        has_extra := not !has_extra;
        (* untracked: the publisher must detect the resnapshot and
           full-copy *)
        ignore (Snap_pub.publish pub : Snap_pub.mode);
        check_pub "rule change"
      | Algo a ->
        Vm.set_algorithm vm a;
        ignore (Snap_pub.publish pub : Snap_pub.mode);
        check_pub "set_algorithm")
    s.ops;
  let st = Snap_pub.stats pub in
  st.Snap_pub.publishes = st.Snap_pub.incremental + st.Snap_pub.full_copies

let test_publish_equivalence () =
  let cell =
    Q.Test.make_cell ~count:220 ~name:"snap_pub publish equivalence"
      (Q.make ~print:print_scenario gen_scenario)
      run_scenario
  in
  match
    Q.TestResult.get_state
      (Q.Test.check_cell ~rand:(Random.State.make [| 0xD1CE |]) cell)
  with
  | Q.TestResult.Success -> ()
  | Q.TestResult.Failed { instances = c :: _ } ->
    Alcotest.failf "publish equivalence failed on %s\n%s"
      (print_scenario c.Q.TestResult.instance)
      (String.concat "\n" c.Q.TestResult.msg_l)
  | Q.TestResult.Failed { instances = [] } ->
    Alcotest.fail "publish equivalence failed without a counterexample"
  | Q.TestResult.Failed_other { msg } -> Alcotest.fail msg
  | Q.TestResult.Error { exn; instance; _ } ->
    Alcotest.failf "publish equivalence raised %s on %s"
      (Printexc.to_string exn)
      (print_scenario instance.Q.TestResult.instance)

(* ---------------- stalled reader: bounded wait, fallback ------------ *)

let test_stalled_reader_fallback () =
  let vm = Vm.of_source ~algorithm:Vm.Counting seed_src in
  let pub = Snap_pub.create ~max_wait_s:0.01 ~readers:1 vm in
  let apply xs =
    let changes =
      Changes.of_list (Vm.program vm)
        [ ("link", List.map (fun (x, y) -> (Tuple.of_ints [ x; y ], 1)) xs) ]
    in
    let track = Changes.collector () in
    (match Vm.apply_group ~track vm [ changes ] with
    | [ Ok _ ] -> ()
    | _ -> Alcotest.fail "apply_group failed");
    Snap_pub.publish ~track pub
  in
  (* a reader pins the initial snapshot and never releases *)
  let pinned = Snap_pub.acquire pub ~reader:0 in
  let d0 = Database.canonical_digest pinned in
  let m1 = apply [ (1, 2) ] in
  Alcotest.(check string) "first publish patches the free spare"
    "incremental" (Snap_pub.mode_name m1);
  (* the retired buffer is now pinned by reader 0: the next publish must
     give up after max_wait_s and full-copy instead of mutating it *)
  let m2 = apply [ (2, 3) ] in
  Alcotest.(check string) "second publish falls back" "full_fallback"
    (Snap_pub.mode_name m2);
  let st = Snap_pub.stats pub in
  Alcotest.(check bool) "stalled fallback counted" true
    (st.Snap_pub.full_stalled >= 1);
  Alcotest.(check int) "reader lag grows" 2 (Snap_pub.reader_lag pub 0);
  (* invariant 13: the snapshot the reader pinned was never mutated *)
  Alcotest.(check string) "pinned snapshot unchanged" d0
    (Database.canonical_digest pinned);
  Snap_pub.release pub ~reader:0;
  Alcotest.(check int) "idle reader has no lag" 0 (Snap_pub.reader_lag pub 0);
  ignore (apply [ (3, 4) ] : Snap_pub.mode);
  Alcotest.(check string) "published tracks live after release"
    (Database.canonical_digest (Vm.database vm))
    (Database.canonical_digest (Snap_pub.current pub))

let suite =
  [
    Alcotest.test_case "Relation.patch guards negative counts" `Quick
      test_patch_guard;
    Alcotest.test_case "copy ~with_indexes:false rebuilds on demand" `Quick
      test_copy_without_indexes;
    Alcotest.test_case "publish equivalence (220 generated traces)" `Quick
      test_publish_equivalence;
    Alcotest.test_case "stalled reader triggers counted full-copy fallback"
      `Quick test_stalled_reader_fallback;
  ]
