(** Bench harness utilities: deterministic workload setup, wall-clock
    timing with warm-up, work counters, and aligned table printing so every
    experiment renders the rows EXPERIMENTS.md records. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Parser = Ivm_datalog.Parser
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Seminaive = Ivm_eval.Seminaive
module Stats = Ivm_eval.Stats
module Changes = Ivm.Changes
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen
module Update_gen = Ivm_workload.Update_gen
module Programs = Ivm_workload.Programs

(* ------------------------------------------------------------------ *)
(* Workload setup                                                       *)
(* ------------------------------------------------------------------ *)

(** Build a database over [src] with [link] loaded from a random graph. *)
let graph_db ?(semantics = Database.Set_semantics) ~src ~seed ~nodes ~edges () =
  let rng = Prng.create seed in
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link" (Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges));
  Seminaive.evaluate db;
  (db, rng)

let costed_graph_db ?(semantics = Database.Set_semantics) ~src ~seed ~nodes
    ~edges ~max_cost () =
  let rng = Prng.create seed in
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link"
    (Graph_gen.costed_tuples rng ~max_cost (Graph_gen.random rng ~nodes ~edges));
  Seminaive.evaluate db;
  (db, rng)

let layered_db ?(semantics = Database.Set_semantics) ~src ~seed ~layers ~width
    ~out_degree () =
  let rng = Prng.create seed in
  let program = Program.make (Parser.parse_rules src) in
  let db = Database.create ~semantics program in
  Database.load db "link"
    (Graph_gen.tuples (Graph_gen.layered_dag rng ~layers ~width ~out_degree));
  Seminaive.evaluate db;
  (db, rng)

(** Warm a database's demand-built indexes by flipping a synthetic edge
    (insert then delete — net zero) through the given maintenance
    algorithm, so copies taken afterwards carry every index the timed
    maintenance will probe.  A live database would have them already. *)
let warm db algorithm =
  let program = Database.program db in
  let arity = Program.arity program "link" in
  let tup =
    Tuple.make
      (Array.init arity (fun i ->
           if i < 2 then Value.Int (-424242 - i) else Value.Int 1))
  in
  let ins = Changes.insertions program "link" [ tup ] in
  let del = Changes.deletions program "link" [ tup ] in
  let maintain c =
    match algorithm with
    | `Counting -> ignore (Ivm.Counting.maintain db c)
    | `Dred -> ignore (Ivm.Dred.maintain db c)
    | `Recursive_counting -> ignore (Ivm.Recursive_counting.maintain db c)
  in
  maintain ins;
  maintain del

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

(** [timed f] — wall-clock seconds and result of one run. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

(** Median wall-clock seconds of [repeat] runs of [setup ∘ op]; setup time
    excluded.  Each run gets a fresh state from [setup]. *)
let median_time ?(repeat = 5) ~setup op =
  let samples =
    List.init repeat (fun _ ->
        let st = setup () in
        fst (timed (fun () -> op st)))
  in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)

(** Run [op] on a fresh state and report (seconds, derivations). *)
let time_and_work ~setup op =
  let st = setup () in
  Stats.reset ();
  let t, _ = timed (fun () -> op st) in
  (t, Stats.derivations ())

(* ------------------------------------------------------------------ *)
(* Table printing                                                       *)
(* ------------------------------------------------------------------ *)

(* Optional CSV sink: when set, every printed table is also written to
   <dir>/<experiment>.csv for plotting. *)
let csv_dir : string option ref = ref None
let current_experiment = ref "experiment"

let print_header title claim =
  (match String.index_opt title ':' with
  | Some i -> current_experiment := String.lowercase_ascii (String.sub title 0 i)
  | None -> current_experiment := "experiment");
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  Printf.printf "paper claim: %s\n\n" claim

let print_table (headers : string list) (rows : string list list) =
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        Printf.printf "%s%s" (if c = 0 then "  " else "  | ")
          (Printf.sprintf "%-*s" (List.nth widths c) cell))
      row;
    print_newline ()
  in
  print_row headers;
  Printf.printf "  %s\n"
    (String.concat "-+-"
       (List.map (fun w -> String.make (w + (2)) '-') widths));
  List.iter print_row rows;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (!current_experiment ^ ".csv") in
    Out_channel.with_open_text path (fun oc ->
        List.iter
          (fun row ->
            output_string oc (String.concat "," (List.map String.trim row));
            output_char oc '\n')
          (headers :: rows));
    Printf.printf "  [csv: %s]\n" path

let fmt_time s =
  if s < 1e-4 then Printf.sprintf "%.1f µs" (s *. 1e6)
  else if s < 0.1 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s

let fmt_ratio r = Printf.sprintf "%.1fx" r

let fmt_int = string_of_int

let fmt_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int n /. (1024. *. 1024.))

(** Summary verdict line printed under each table. *)
let verdict ok msg =
  Printf.printf "\n  %s %s\n" (if ok then "[shape holds]" else "[SHAPE DIVERGES]") msg
