(* Load generator for the view server (EXPERIMENTS.md E18).

   Starts an in-process Ivm_serve.Server on an ephemeral port over a
   durable store, then hammers it with K client domains, each issuing an
   80/20 query/apply mix over real sockets.  Reports per-op p50/p99
   latency, throughput, the group-commit amortization the single-writer
   achieved under concurrency (batches per fsync), the server-side
   per-stage latency decomposition from the ivm_serve_stage_ns
   histograms (E19 — run once with IVM_REQTRACE=0 to measure the
   tracing overhead), and asserts that not one protocol error occurred.

     dune exec bench/serve_load.exe -- --clients 8 --seconds 3 *)

module Vm = Ivm.View_manager
module Server = Ivm_serve.Server
module Client = Ivm_serve.Client
module Relation = Ivm_relation.Relation
module Metrics = Ivm_obs.Metrics
module Reqtrace = Ivm_obs.Reqtrace

let usage = "serve_load [--clients K] [--seconds S] [--readers N] [--dir DIR]"

let clients = ref 8
let seconds = ref 3.0
let readers = ref 2
let dir = ref ""

let rec parse_args = function
  | [] -> ()
  | "--clients" :: k :: rest ->
    clients := int_of_string k;
    parse_args rest
  | "--seconds" :: s :: rest ->
    seconds := float_of_string s;
    parse_args rest
  | "--readers" :: n :: rest ->
    readers := int_of_string n;
    parse_args rest
  | "--dir" :: d :: rest ->
    dir := d;
    parse_args rest
  | x :: _ ->
    Printf.eprintf "unknown argument %s\nusage: %s\n" x usage;
    exit 2

let percentile sorted p =
  if Array.length sorted = 0 then 0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (p *. float_of_int (Array.length sorted))))

let program_source () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "hop(X, Y) :- link(X, Z), link(Z, Y).\n";
  for i = 0 to 99 do
    Buffer.add_string buf (Printf.sprintf "link(s%d, s%d).\n" i ((i + 1) mod 100))
  done;
  Buffer.contents buf

type worker_result = {
  queries : int array;  (** latencies, ns *)
  applies : int array;
  errors : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let fact pred s =
  match Vm.parse_fact (Printf.sprintf "%s(%s)" pred s) with
  | Ok (p, t) -> (p, t)
  | Error msg -> failwith msg

let worker ~port ~id ~deadline () : worker_result =
  let c = Client.connect ~port () in
  let queries = ref [] and applies = ref [] and errors = ref 0 in
  let n = ref 0 in
  (try
     while Unix.gettimeofday () < deadline do
       incr n;
       let t0 = now_ns () in
       (try
          if !n mod 5 = 0 then begin
            (* a private edge pair: deterministic, never collides across
               clients, keeps the hop view growing *)
            let i = !n / 5 in
            let p1, t1 = fact "link" (Printf.sprintf "c%d_%d, m%d_%d" id i id i) in
            let _, t2 = fact "link" (Printf.sprintf "m%d_%d, e%d_%d" id i id i) in
            let delta = Relation.of_list 2 [ (t1, 1); (t2, 1) ] in
            let _seq, _deltas = Client.apply c [ (p1, delta) ] in
            applies := (now_ns () - t0) :: !applies
          end
          else begin
            let _cols, _rows =
              Client.query c (Printf.sprintf "hop(s%d, X)" (!n * 7 mod 100))
            in
            queries := (now_ns () - t0) :: !queries
          end
        with Client.Server_error _ | Client.Unexpected _ -> incr errors)
     done
   with e ->
     incr errors;
     Printf.eprintf "client %d died: %s\n%!" id (Printexc.to_string e));
  Client.close c;
  {
    queries = Array.of_list !queries;
    applies = Array.of_list !applies;
    errors = !errors;
  }

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  let dir =
    if !dir <> "" then !dir
    else begin
      let d = Filename.temp_file "ivm_serve_load" "" in
      Sys.remove d;
      d
    end
  in
  let vm = Vm.of_source ~durable:dir (program_source ()) in
  let config = { Server.default_config with readers = !readers } in
  let srv = Server.start ~config ~vm ~port:0 () in
  let port = Server.port srv in
  Printf.printf "serve_load: %d clients x %.1fs against 127.0.0.1:%d (%d readers, durable %s)\n%!"
    !clients !seconds port !readers dir;
  let deadline = Unix.gettimeofday () +. !seconds in
  let workers =
    List.init !clients (fun id ->
        Domain.spawn (worker ~port ~id ~deadline))
  in
  let results = List.map Domain.join workers in
  let stats = Server.stats srv in
  Server.stop srv;
  let all sel =
    let a = Array.concat (List.map sel results) in
    Array.sort compare a;
    a
  in
  let q = all (fun r -> r.queries) and a = all (fun r -> r.applies) in
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  let ops = Array.length q + Array.length a in
  Printf.printf "ops        : %d (%d queries, %d applies, %.0f ops/s)\n" ops
    (Array.length q) (Array.length a)
    (float_of_int ops /. !seconds);
  Printf.printf "query ns   : p50 %d  p99 %d\n" (percentile q 0.50)
    (percentile q 0.99);
  Printf.printf "apply ns   : p50 %d  p99 %d\n" (percentile a 0.50)
    (percentile a 0.99);
  Printf.printf "group commit: %d batches in %d fsyncs (%.2f batches/fsync)\n"
    stats.Server.committed_batches stats.Server.group_commits
    (if stats.Server.group_commits = 0 then 0.
     else
       float_of_int stats.Server.committed_batches
       /. float_of_int stats.Server.group_commits);
  Printf.printf "deltas pushed: %d, sessions served: %d\n"
    stats.Server.deltas_pushed stats.Server.accepted;
  if Reqtrace.enabled () then begin
    Printf.printf "server stage ns (apply path):\n";
    List.iter
      (fun stage ->
        let h =
          Metrics.histogram ~labels:[ ("stage", stage) ] "ivm_serve_stage_ns"
        in
        let n = Metrics.histogram_count h in
        if n > 0 then
          Printf.printf "  %-10s p50 %9d  p90 %9d  p99 %9d  (n=%d)\n" stage
            (Metrics.percentile h 0.50)
            (Metrics.percentile h 0.90)
            (Metrics.percentile h 0.99)
            n)
      Reqtrace.apply_stages
  end
  else Printf.printf "server stage ns: tracing disabled (IVM_REQTRACE=0)\n";
  Printf.printf "protocol errors: %d\n" (errors + stats.Server.protocol_errors);
  (* the audit closes the loop: concurrent group commits kept views exact *)
  (match Vm.audit vm with
  | Ok () -> Printf.printf "audit: ok, views match recomputation\n"
  | Error msg ->
    Printf.printf "audit: MISMATCH %s\n" msg;
    exit 1);
  if errors + stats.Server.protocol_errors > 0 then exit 1
