(* Load generator for the view server (EXPERIMENTS.md E18).

   Starts an in-process Ivm_serve.Server on an ephemeral port over a
   durable store, then hammers it with K client domains, each issuing an
   80/20 query/apply mix over real sockets.  Reports per-op p50/p99
   latency, throughput, the group-commit amortization the single-writer
   achieved under concurrency (batches per fsync), the server-side
   per-stage latency decomposition from the ivm_serve_stage_ns
   histograms (E19 — run once with IVM_REQTRACE=0 to measure the
   tracing overhead), and asserts that not one protocol error occurred.

     dune exec bench/serve_load.exe -- --clients 8 --seconds 3 *)

module Vm = Ivm.View_manager
module Server = Ivm_serve.Server
module Snap_pub = Ivm_serve.Snap_pub
module Client = Ivm_serve.Client
module Relation = Ivm_relation.Relation
module Metrics = Ivm_obs.Metrics
module Reqtrace = Ivm_obs.Reqtrace
module Json = Ivm_obs.Json

let usage =
  "serve_load [--clients K] [--seconds S] [--readers N] [--dir DIR] [--batch \
   T] [--full-publish] [--hold-snapshot MS] [--json OUT] [--gate BASELINE]"

let clients = ref 8
let seconds = ref 3.0
let readers = ref 2
let dir = ref ""
let batch = ref 2
let full_publish = ref false
let hold_ms = ref 0
let json_out = ref ""
let gate = ref ""

let rec parse_args = function
  | [] -> ()
  | "--clients" :: k :: rest ->
    clients := int_of_string k;
    parse_args rest
  | "--seconds" :: s :: rest ->
    seconds := float_of_string s;
    parse_args rest
  | "--readers" :: n :: rest ->
    readers := int_of_string n;
    parse_args rest
  | "--dir" :: d :: rest ->
    dir := d;
    parse_args rest
  | "--batch" :: t :: rest ->
    batch := max 1 (int_of_string t);
    parse_args rest
  | "--full-publish" :: rest ->
    full_publish := true;
    parse_args rest
  | "--hold-snapshot" :: ms :: rest ->
    hold_ms := int_of_string ms;
    parse_args rest
  | "--json" :: f :: rest ->
    json_out := f;
    parse_args rest
  | "--gate" :: f :: rest ->
    gate := f;
    parse_args rest
  | x :: _ ->
    Printf.eprintf "unknown argument %s\nusage: %s\n" x usage;
    exit 2

let percentile sorted p =
  if Array.length sorted = 0 then 0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (p *. float_of_int (Array.length sorted))))

let program_source () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "hop(X, Y) :- link(X, Z), link(Z, Y).\n";
  for i = 0 to 99 do
    Buffer.add_string buf (Printf.sprintf "link(s%d, s%d).\n" i ((i + 1) mod 100))
  done;
  Buffer.contents buf

type worker_result = {
  queries : int array;  (** latencies, ns *)
  applies : int array;
  errors : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let fact pred s =
  match Vm.parse_fact (Printf.sprintf "%s(%s)" pred s) with
  | Ok (p, t) -> (p, t)
  | Error msg -> failwith msg

let worker ~port ~id ~deadline () : worker_result =
  let c = Client.connect ~port () in
  let queries = ref [] and applies = ref [] and errors = ref 0 in
  let n = ref 0 in
  (try
     while Unix.gettimeofday () < deadline do
       incr n;
       let t0 = now_ns () in
       (try
          if !n mod 5 = 0 then begin
            (* a private edge chain of --batch tuples: deterministic,
               never collides across clients, keeps the hop view
               growing *)
            let i = !n / 5 in
            let node j = Printf.sprintf "c%d_%d_%d" id i j in
            let entries =
              List.init !batch (fun j ->
                  let _, t =
                    fact "link"
                      (Printf.sprintf "%s, %s" (node j) (node (j + 1)))
                  in
                  (t, 1))
            in
            let delta = Relation.of_list 2 entries in
            let _seq, _deltas = Client.apply c [ ("link", delta) ] in
            applies := (now_ns () - t0) :: !applies
          end
          else begin
            let _cols, _rows =
              Client.query c (Printf.sprintf "hop(s%d, X)" (!n * 7 mod 100))
            in
            queries := (now_ns () - t0) :: !queries
          end
        with Client.Server_error _ | Client.Unexpected _ -> incr errors)
     done
   with e ->
     incr errors;
     Printf.eprintf "client %d died: %s\n%!" id (Printexc.to_string e));
  Client.close c;
  {
    queries = Array.of_list !queries;
    applies = Array.of_list !applies;
    errors = !errors;
  }

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  let dir =
    if !dir <> "" then !dir
    else begin
      let d = Filename.temp_file "ivm_serve_load" "" in
      Sys.remove d;
      d
    end
  in
  let vm = Vm.of_source ~durable:dir (program_source ()) in
  let config =
    {
      Server.default_config with
      readers = !readers;
      full_publish = !full_publish;
    }
  in
  let srv = Server.start ~config ~vm ~port:0 () in
  let port = Server.port srv in
  Printf.printf
    "serve_load: %d clients x %.1fs against 127.0.0.1:%d (%d readers, batch \
     %d%s%s, durable %s)\n\
     %!"
    !clients !seconds port !readers !batch
    (if !full_publish then ", full-publish" else "")
    (if !hold_ms > 0 then Printf.sprintf ", hold %dms" !hold_ms else "")
    dir;
  let deadline = Unix.gettimeofday () +. !seconds in
  (* --hold-snapshot: an out-of-band holder pins the published snapshot
     on the server's spare cell for MS at a time, forcing the writer
     through its bounded rotate wait and into full-copy fallbacks *)
  let holder_stop = Atomic.make false in
  let holder =
    if !hold_ms <= 0 then None
    else
      Some
        (Domain.spawn (fun () ->
             let pub = Server.publisher srv in
             let cell = !readers in
             while not (Atomic.get holder_stop) do
               let _db = Snap_pub.acquire pub ~reader:cell in
               Unix.sleepf (float_of_int !hold_ms /. 1000.);
               Snap_pub.release pub ~reader:cell;
               Unix.sleepf 0.001
             done))
  in
  let workers =
    List.init !clients (fun id ->
        Domain.spawn (worker ~port ~id ~deadline))
  in
  let results = List.map Domain.join workers in
  Atomic.set holder_stop true;
  (match holder with Some d -> Domain.join d | None -> ());
  let stats = Server.stats srv in
  let pub_stats = Snap_pub.stats (Server.publisher srv) in
  Server.stop srv;
  let all sel =
    let a = Array.concat (List.map sel results) in
    Array.sort compare a;
    a
  in
  let q = all (fun r -> r.queries) and a = all (fun r -> r.applies) in
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  let ops = Array.length q + Array.length a in
  Printf.printf "ops        : %d (%d queries, %d applies, %.0f ops/s)\n" ops
    (Array.length q) (Array.length a)
    (float_of_int ops /. !seconds);
  Printf.printf "query ns   : p50 %d  p99 %d\n" (percentile q 0.50)
    (percentile q 0.99);
  Printf.printf "apply ns   : p50 %d  p99 %d\n" (percentile a 0.50)
    (percentile a 0.99);
  Printf.printf "group commit: %d batches in %d fsyncs (%.2f batches/fsync)\n"
    stats.Server.committed_batches stats.Server.group_commits
    (if stats.Server.group_commits = 0 then 0.
     else
       float_of_int stats.Server.committed_batches
       /. float_of_int stats.Server.group_commits);
  Printf.printf "deltas pushed: %d, sessions served: %d\n"
    stats.Server.deltas_pushed stats.Server.accepted;
  let stage_p50 stage =
    let h =
      Metrics.histogram ~labels:[ ("stage", stage) ] "ivm_serve_stage_ns"
    in
    if Metrics.histogram_count h = 0 then 0 else Metrics.percentile h 0.50
  in
  let bench_stages =
    Reqtrace.apply_stages @ [ "publish.rotate_wait"; "publish.patch" ]
  in
  if Reqtrace.enabled () then begin
    Printf.printf "server stage ns (apply path):\n";
    List.iter
      (fun stage ->
        let h =
          Metrics.histogram ~labels:[ ("stage", stage) ] "ivm_serve_stage_ns"
        in
        let n = Metrics.histogram_count h in
        if n > 0 then
          Printf.printf "  %-20s p50 %9d  p90 %9d  p99 %9d  (n=%d)\n" stage
            (Metrics.percentile h 0.50)
            (Metrics.percentile h 0.90)
            (Metrics.percentile h 0.99)
            n)
      bench_stages
  end
  else Printf.printf "server stage ns: tracing disabled (IVM_REQTRACE=0)\n";
  Printf.printf
    "publish     : %d total, %d incremental, %d full copies (%d from stalled \
     readers)\n"
    pub_stats.Snap_pub.publishes pub_stats.Snap_pub.incremental
    pub_stats.Snap_pub.full_copies pub_stats.Snap_pub.full_stalled;
  (* the decomposition's headline ratio: how much of the apply path's
     server-side p50 the publish stage takes (what the incremental
     publisher is meant to shrink) *)
  let stage_sum_p50 =
    List.fold_left (fun acc s -> acc + stage_p50 s) 0 Reqtrace.apply_stages
  in
  let publish_share =
    if stage_sum_p50 = 0 then 0.
    else float_of_int (stage_p50 "publish") /. float_of_int stage_sum_p50
  in
  Printf.printf "publish share of apply stages (p50): %.3f\n" publish_share;
  Printf.printf "protocol errors: %d\n" (errors + stats.Server.protocol_errors);
  (* the audit closes the loop: concurrent group commits kept views exact *)
  let audit_ok =
    match Vm.audit vm with
    | Ok () ->
      Printf.printf "audit: ok, views match recomputation\n";
      true
    | Error msg ->
      Printf.printf "audit: MISMATCH %s\n" msg;
      false
  in
  (if !json_out <> "" then
     let doc =
       Json.Obj
         [
           ("clients", Json.int !clients);
           ("seconds", Json.Num !seconds);
           ("readers", Json.int !readers);
           ("batch", Json.int !batch);
           ("full_publish", Json.Bool !full_publish);
           ("hold_snapshot_ms", Json.int !hold_ms);
           ("ops", Json.int ops);
           ("ops_per_s", Json.Num (float_of_int ops /. !seconds));
           ("query_p50_ns", Json.int (percentile q 0.50));
           ("query_p99_ns", Json.int (percentile q 0.99));
           ("apply_p50_ns", Json.int (percentile a 0.50));
           ("apply_p99_ns", Json.int (percentile a 0.99));
           ( "stage_p50_ns",
             Json.Obj
               (List.filter_map
                  (fun s ->
                    let p = stage_p50 s in
                    if p = 0 then None else Some (s, Json.int p))
                  bench_stages) );
           ("publish_share_of_apply", Json.Num publish_share);
           ( "publish",
             Json.Obj
               [
                 ("publishes", Json.int pub_stats.Snap_pub.publishes);
                 ("incremental", Json.int pub_stats.Snap_pub.incremental);
                 ("full_copies", Json.int pub_stats.Snap_pub.full_copies);
                 ("full_stalled", Json.int pub_stats.Snap_pub.full_stalled);
               ] );
           ( "batches_per_fsync",
             Json.Num
               (if stats.Server.group_commits = 0 then 0.
                else
                  float_of_int stats.Server.committed_batches
                  /. float_of_int stats.Server.group_commits) );
           ("errors", Json.int (errors + stats.Server.protocol_errors));
         ]
     in
     Out_channel.with_open_text !json_out (fun oc ->
         output_string oc (Json.to_string doc);
         output_char oc '\n'));
  let gate_ok =
    if !gate = "" then true
    else begin
      (* regression gate against a committed baseline: the publish stage
         must stay a comparable *share* of the apply decomposition (a
         ratio, so machine speed cancels out), and the run must be
         error-free.  Slack: 2x the baseline share + 0.05 absolute. *)
      let base = Json.of_string (In_channel.with_open_text !gate In_channel.input_all) in
      let base_share =
        match Option.bind (Json.member "publish_share_of_apply" base) Json.to_float_opt with
        | Some f -> f
        | None ->
          Printf.eprintf "gate: %s lacks publish_share_of_apply\n" !gate;
          exit 2
      in
      let ceiling = (2. *. base_share) +. 0.05 in
      let ok = publish_share <= ceiling in
      Printf.printf "gate: publish share %.3f vs baseline %.3f (ceiling %.3f): %s\n"
        publish_share base_share ceiling
        (if ok then "ok" else "REGRESSION");
      ok
    end
  in
  if (not audit_ok) || (not gate_ok) || errors + stats.Server.protocol_errors > 0
  then exit 1
