(* Long-run driver for the statecheck lifecycle harness: generate and
   run model-equivalence traces until the budget is spent, shrinking and
   dumping the first failure as a replayable trace file.

   Deterministic for a given (--seed, --traces, length bounds): QCheck
   draws from an explicit PRNG state, the harness resolves everything
   else from the trace itself.

     dune exec bench/statecheck_deep.exe -- --traces 2000 --seed 7 \
       --out shrunk.trace

   --fault K injects a deliberate bug (every K-th insert-bearing batch
   silently drops a tuple on the real side only) to demonstrate the
   harness catches and shrinks it. *)

module Cmd = Ivm_statecheck.Cmd
module Gen = Ivm_statecheck.Gen
module Interp = Ivm_statecheck.Interp
module Q = QCheck

let () =
  let traces =
    ref
      (match Sys.getenv_opt "IVM_STATECHECK_TRACES" with
      | Some s -> ( try int_of_string s with _ -> 500)
      | None -> 500)
  in
  let seed = ref 424242 in
  let min_len = ref 25 in
  let max_len = ref 45 in
  let fault = ref 0 in
  let publish = ref false in
  let out = ref "" in
  let script = ref "" in
  Arg.parse
    [
      ("--traces", Arg.Set_int traces, "N  number of traces to run");
      ("--seed", Arg.Set_int seed, "S  PRNG seed");
      ("--min-len", Arg.Set_int min_len, "N  minimum commands per trace");
      ("--max-len", Arg.Set_int max_len, "N  maximum commands per trace");
      ( "--fault",
        Arg.Set_int fault,
        "K  drop a real-side tuple every K-th insert (deliberate bug)" );
      ( "--publish",
        Arg.Set publish,
        "  run a snapshot publisher in lockstep and check publish \
         equivalence" );
      ("--out", Arg.Set_string out, "FILE  write the shrunk failing trace here");
      ( "--script",
        Arg.Set_string script,
        "FILE  print a trace file as a replayable shell script and exit" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "statecheck_deep [options]";
  if !script <> "" then begin
    print_string (Cmd.to_script (Cmd.read_file !script));
    exit 0
  end;
  let fault_opt = if !fault > 0 then Some (Interp.Drop_every !fault) else None in
  let steps_run = ref 0 in
  let steps_skipped = ref 0 in
  let crashes = ref 0 in
  let damaged = ref 0 in
  let prop trace =
    List.iter
      (function
        | Cmd.Crash d -> (
          incr crashes;
          match d with Cmd.No_damage -> () | _ -> incr damaged)
        | _ -> ())
      trace.Cmd.steps;
    match Interp.run_result ?fault:fault_opt ~publish:!publish trace with
    | Ok o ->
      steps_run := !steps_run + o.Interp.executed;
      steps_skipped := !steps_skipped + o.Interp.skipped;
      true
    | Error msg -> Q.Test.fail_report msg
  in
  let cell =
    Q.Test.make_cell ~count:!traces ~name:"statecheck lifecycle"
      (Gen.arbitrary ~min_len:!min_len ~max_len:!max_len ())
      prop
  in
  let rand = Random.State.make [| !seed |] in
  match Q.TestResult.get_state (Q.Test.check_cell ~rand cell) with
  | Q.TestResult.Success ->
    Printf.printf
      "statecheck: %d traces OK (seed %d, %d steps run, %d skipped, %d \
       crashes, %d with WAL damage)\n"
      !traces !seed !steps_run !steps_skipped !crashes !damaged
  | Q.TestResult.Failed { instances = c :: _ } ->
    let trace = c.Q.TestResult.instance in
    Printf.eprintf "statecheck: FAILED after %d shrink steps\n%s\n"
      c.Q.TestResult.shrink_steps
      (Gen.print_trace trace);
    if !out <> "" then begin
      Cmd.write_file !out trace;
      Printf.eprintf "shrunk trace written to %s\n" !out
    end;
    exit 1
  | Q.TestResult.Failed { instances = [] } ->
    prerr_endline "statecheck: FAILED (no counterexample retained)";
    exit 1
  | Q.TestResult.Failed_other { msg } ->
    Printf.eprintf "statecheck: FAILED (%s)\n" msg;
    exit 1
  | Q.TestResult.Error { instance; exn; backtrace } ->
    Printf.eprintf "statecheck: ERROR %s\n%s\n%s\n" (Printexc.to_string exn)
      backtrace
      (Gen.print_trace instance.Q.TestResult.instance);
    if !out <> "" then Cmd.write_file !out instance.Q.TestResult.instance;
    exit 1
