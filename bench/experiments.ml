(** One experiment per quantitative claim / worked example of the paper.
    Each prints a table (the rows EXPERIMENTS.md records) plus a verdict
    line stating whether the paper's claimed shape holds.  See DESIGN.md
    §4 for the experiment ↔ paper-section mapping. *)

open Harness
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Recursive_counting = Ivm.Recursive_counting
module Rule_changes = Ivm.Rule_changes
module Vm = Ivm.View_manager
module Store = Ivm_store.Store
module Recompute = Ivm_baselines.Recompute
module Pf = Ivm_baselines.Pf
module Rule_eval = Ivm_eval.Rule_eval
module Relation_view = Ivm_relation.Relation_view
module Compile = Ivm_eval.Compile

(* =================================================================== *)
(* E1 — counting vs recomputation (§1, §4)                              *)
(* =================================================================== *)

let e1 () =
  print_header "E1: counting vs full recomputation (hop & tri_hop)"
    "incremental maintenance beats recomputation; the gap grows with |base|/|Δ|";
  let rows = ref [] in
  let all_faster = ref true in
  List.iter
    (fun (edges, nodes) ->
      let db0, rng =
        graph_db ~src:Programs.hop_tri_hop ~seed:11 ~nodes ~edges ()
      in
      warm db0 `Counting;
      List.iter
        (fun n_delta ->
          let changes =
            Update_gen.mixed rng db0 "link" ~nodes ~dels:(n_delta / 2)
              ~ins:(n_delta - (n_delta / 2))
          in
          let t_inc =
            median_time ~repeat:3
              ~setup:(fun () -> Database.copy db0)
              (fun db -> ignore (Counting.maintain db changes))
          in
          let t_re =
            median_time ~repeat:3
              ~setup:(fun () -> Database.copy db0)
              (fun db -> Recompute.maintain db changes)
          in
          if t_inc >= t_re then all_faster := false;
          rows :=
            [
              fmt_int edges; fmt_int n_delta; fmt_time t_inc; fmt_time t_re;
              fmt_ratio (t_re /. t_inc);
            ]
            :: !rows)
        [ 1; 10; 100 ])
    [ (1000, 200); (4000, 800); (10000, 2000) ];
  (* heavy-tailed fan-out: hubs make hop quadratic in hub degree — the
     regime where incrementality matters most *)
  let db_sf =
    let rng = Prng.create 13 in
    let program = Program.make (Parser.parse_rules Programs.hop_tri_hop) in
    let db = Database.create program in
    Database.load db "link"
      (Graph_gen.tuples (Graph_gen.scale_free rng ~nodes:1500 ~attach:2));
    Seminaive.evaluate db;
    db
  in
  warm db_sf `Counting;
  let rng_sf = Prng.create 17 in
  List.iter
    (fun n_delta ->
      let changes =
        Update_gen.mixed rng_sf db_sf "link" ~nodes:1500 ~dels:(n_delta / 2)
          ~ins:(n_delta - (n_delta / 2))
      in
      let t_inc =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db_sf)
          (fun db -> ignore (Counting.maintain db changes))
      in
      let t_re =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db_sf)
          (fun db -> Recompute.maintain db changes)
      in
      if t_inc >= t_re then all_faster := false;
      rows :=
        [ "scale-free"; fmt_int n_delta; fmt_time t_inc; fmt_time t_re;
          fmt_ratio (t_re /. t_inc) ]
        :: !rows)
    [ 1; 10 ];
  print_table
    [ "|link|"; "|Δ|"; "counting"; "recompute"; "speedup" ]
    (List.rev !rows);
  verdict !all_faster "counting beats recomputation at every point of the sweep"

(* =================================================================== *)
(* E2 — count tracking is (almost) free (§5)                            *)
(* =================================================================== *)

(* Evaluate the hop join over the same data twice: once maintaining
   derivation counts, once discarding them (set-style emit).  Both must
   enumerate every derivation; the only difference is the count upkeep. *)
let e2 () =
  print_header "E2: overhead of computing counts"
    "\"counts can be computed at little or no cost above the cost of evaluating the view\" (§5)";
  let rows = ref [] in
  let max_ratio = ref 0. in
  List.iter
    (fun (edges, nodes) ->
      let rng = Prng.create 7 in
      let program = Program.make (Parser.parse_rules Programs.hop) in
      let db = Database.create program in
      Database.load db "link"
        (Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges));
      let rule = List.hd (Program.rules program) in
      let cr = Ivm_eval.Compile.compile rule in
      let inputs _ =
        Rule_eval.Enumerate
          (Database.view db "link", Rule_eval.identity_count)
      in
      let eval emit =
        let out = Relation.create 2 in
        Rule_eval.eval ~inputs ~emit:(emit out) cr;
        out
      in
      let with_counts () = eval (fun out tup c -> Relation.add out tup c) in
      let without_counts () = eval (fun out tup _ -> Relation.set_count out tup 1) in
      (* interleave the two variants to decorrelate GC/cache drift *)
      let samples_with = ref [] and samples_without = ref [] in
      for _ = 1 to 9 do
        let t, _ = timed (fun () -> ignore (with_counts ())) in
        samples_with := t :: !samples_with;
        let t, _ = timed (fun () -> ignore (without_counts ())) in
        samples_without := t :: !samples_without
      done;
      let median l = List.nth (List.sort compare l) (List.length l / 2) in
      let t_with = median !samples_with in
      let t_without = median !samples_without in
      let ratio = t_with /. t_without in
      if ratio > !max_ratio then max_ratio := ratio;
      rows :=
        [ fmt_int edges; fmt_time t_without; fmt_time t_with;
          Printf.sprintf "%.2fx" ratio ]
        :: !rows)
    [ (2000, 300); (8000, 800); (20000, 2000) ];
  print_table
    [ "|link|"; "eval w/o counts"; "eval with counts"; "overhead" ]
    (List.rev !rows);
  verdict (!max_ratio < 1.5)
    (Printf.sprintf "worst-case count-tracking overhead %.2fx (claim: ~1x)" !max_ratio)

(* =================================================================== *)
(* E3 — optimality: exactly the changed tuples (§1, Thm 4.1)            *)
(* =================================================================== *)

let e3 () =
  print_header "E3: optimality of the counting algorithm"
    "\"it computes exactly those view tuples that are inserted or deleted\" (§1)";
  let rows = ref [] in
  let tight = ref true in
  List.iter
    (fun n_delta ->
      let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:23 ~nodes:500 ~edges:4000 () in
      warm db0 `Counting;
      let changes =
        Update_gen.mixed rng db0 "link" ~nodes:500 ~dels:(n_delta / 2)
          ~ins:(n_delta - (n_delta / 2))
      in
      let db = Database.copy db0 in
      Stats.reset ();
      let report = Counting.maintain db changes in
      let derivs = Stats.derivations () in
      let changed =
        List.fold_left
          (fun acc (_, d) -> acc + Relation.fold (fun _ c a -> a + abs c) d 0)
          0 report.Counting.view_deltas
      in
      let ratio = float_of_int derivs /. float_of_int (max 1 changed) in
      if ratio > 2.5 then tight := false;
      rows :=
        [ fmt_int n_delta; fmt_int changed; fmt_int derivs;
          Printf.sprintf "%.2f" ratio ]
        :: !rows)
    [ 1; 10; 100; 500 ];
  print_table
    [ "|Δbase|"; "Σ|Δviews| (derivation changes)"; "derivations computed";
      "work/change" ]
    (List.rev !rows);
  verdict !tight
    "derivations computed track the number of actual view changes (small constant)"

(* =================================================================== *)
(* E4 — the set-semantics optimization stops cascades (§5.1, Ex 5.1)    *)
(* =================================================================== *)

let e4_src =
  {|
    reach2(X, Y) :- link(X, Z), link(Z, Y).
    reach4(X, Y) :- reach2(X, Z), reach2(Z, Y).
    reach8(X, Y) :- reach4(X, Z), reach4(Z, Y).
  |}

let e4 () =
  print_header "E4: boxed statement (2) — set semantics stops propagation"
    "a deletion leaving alternative derivations does not cascade to higher strata (Ex 5.1)";
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun out_degree ->
      let mk semantics =
        let db, _rng =
          layered_db ~semantics ~src:e4_src ~seed:5 ~layers:9 ~width:8
            ~out_degree ()
        in
        db
      in
      let victim db =
        (* deterministic victim: smallest stored link edge *)
        let stored = Database.relation db "link" in
        let all = Relation.fold (fun t _ acc -> t :: acc) stored [] in
        List.hd (List.sort Tuple.compare all)
      in
      let run semantics =
        let db = mk semantics in
        let changes =
          Changes.deletions (Database.program db) "link" [ victim db ]
        in
        Stats.reset ();
        let report = Counting.maintain db changes in
        let cascaded =
          List.length
            (match Database.semantics db with
            | Database.Set_semantics -> report.Counting.propagated_deltas
            | Database.Duplicate_semantics -> report.Counting.view_deltas)
        in
        (Stats.derivations (), cascaded)
      in
      let dup_derivs, dup_casc = run Database.Duplicate_semantics in
      let set_derivs, set_casc = run Database.Set_semantics in
      if out_degree >= 3 && set_derivs >= dup_derivs then ok := false;
      rows :=
        [
          fmt_int out_degree;
          fmt_int dup_derivs; fmt_int dup_casc;
          fmt_int set_derivs; fmt_int set_casc;
        ]
        :: !rows)
    [ 1; 2; 3; 4 ];
  print_table
    [ "out-degree"; "dup: derivations"; "dup: strata w/ Δ";
      "set: derivations"; "set: strata w/ Δ" ]
    (List.rev !rows);
  verdict !ok
    "with alternative derivations (degree ≥ 3) the set-mode cascade is cheaper and shallower"

(* =================================================================== *)
(* E5 — DRed vs recomputation on transitive closure (§7)                *)
(* =================================================================== *)

let e5 () =
  print_header "E5: DRed vs recomputation (transitive closure)"
    "DRed maintains recursive views far cheaper than recomputation when the \
     change's impact is bounded (§7); §1's inertia caveat applies when it is not";
  let rows = ref [] in
  let ok = ref true in
  let run_case label db0 rng ks ~expect_win =
    List.iter
      (fun k ->
        let changes = Update_gen.deletions rng db0 "link" k in
        let impact =
          let db = Database.copy db0 in
          let report = Dred.maintain db changes in
          List.fold_left
            (fun acc (_, d) -> acc + Relation.cardinal d)
            0 report.Dred.view_deltas
        in
        let t_dred =
          median_time ~repeat:3
            ~setup:(fun () -> Database.copy db0)
            (fun db -> ignore (Dred.maintain db changes))
        in
        let t_re =
          median_time ~repeat:3
            ~setup:(fun () -> Database.copy db0)
            (fun db -> Recompute.maintain db changes)
        in
        if expect_win && k <= 5 && t_dred >= t_re then ok := false;
        rows :=
          [
            label; fmt_int k; fmt_int impact; fmt_time t_dred; fmt_time t_re;
            fmt_ratio (t_re /. t_dred);
          ]
          :: !rows)
      ks
  in
  (* Controlled impact: a deep layered DAG; edges deleted from the last
     inter-layer band invalidate few paths, edges from the first band
     invalidate many — §1's heuristic of inertia made measurable. *)
  let mk_dag () =
    layered_db ~src:Programs.transitive_closure ~seed:31 ~layers:14 ~width:12
      ~out_degree:2 ()
  in
  let db_dag, _ = mk_dag () in
  warm db_dag `Dred;
  let band_edges db ~layer ~width =
    Relation.fold
      (fun t _ acc ->
        match Tuple.get t 0 with
        | Value.Int src when src / width = layer -> t :: acc
        | _ -> acc)
      (Database.relation db "link")
      []
    |> List.sort Tuple.compare
  in
  let take k xs = List.filteri (fun i _ -> i < k) xs in
  let run_band label ~layer ks =
    List.iter
      (fun (k, expect_win) ->
        let victims = take k (band_edges db_dag ~layer ~width:12) in
        let changes = Changes.deletions (Database.program db_dag) "link" victims in
        let impact =
          let db = Database.copy db_dag in
          let report = Dred.maintain db changes in
          List.fold_left
            (fun acc (_, d) -> acc + Relation.cardinal d)
            0 report.Dred.view_deltas
        in
        let t_dred =
          median_time ~repeat:3
            ~setup:(fun () -> Database.copy db_dag)
            (fun db -> ignore (Dred.maintain db changes))
        in
        let t_re =
          median_time ~repeat:3
            ~setup:(fun () -> Database.copy db_dag)
            (fun db -> Recompute.maintain db changes)
        in
        if expect_win && t_dred >= t_re then ok := false;
        rows :=
          [
            label; fmt_int k; fmt_int impact; fmt_time t_dred; fmt_time t_re;
            fmt_ratio (t_re /. t_dred);
          ]
          :: !rows)
      ks
  in
  run_band "leaf band (bounded impact)" ~layer:12
    [ (1, true); (4, true); (16, false) ];
  run_band "root band (wide impact)" ~layer:0 [ (4, false) ];
  (* worst case, reported but not claimed: a dense strongly connected graph,
     where one deletion's overestimate covers almost the whole view *)
  let db_dense, rng_dense =
    graph_db ~src:Programs.transitive_closure ~seed:35 ~nodes:100 ~edges:200 ()
  in
  warm db_dense `Dred;
  run_case "dense cyclic 100/200 (worst case)" db_dense rng_dense [ 1 ]
    ~expect_win:false;
  print_table
    [ "graph"; "|Δ⁻|"; "|Δpath|"; "DRed"; "recompute"; "speedup" ]
    (List.rev !rows);
  verdict !ok
    "DRed wins when deletions have bounded impact; on a dense SCC the \
     overestimate approaches the full view and recomputation wins (§1's caveat)"

(* =================================================================== *)
(* E6 — DRed vs PF: fragmentation costs an order of magnitude (§2)      *)
(* =================================================================== *)

let e6 () =
  print_header "E6: DRed vs Propagation/Filtration (PF)"
    "PF \"fragments computation, can rederive ... again and again, and can be worse ... by an order of magnitude\" (§2)";
  let rows = ref [] in
  let max_ratio = ref 0. in
  (* A root with [spokes] parallel 2-edge routes into a hub above a long
     chain.  Deleting the root's spoke edges one at a time (PF) overdeletes
     every root→downstream path and rederives it — per pass, since the
     surviving spokes still support them — while DRed handles the batch
     with a single overestimate + rederivation.  This is the paper's
     "can rederive changed and deleted tuples again and again". *)
  let spokes = 16 and chain_len = 120 in
  let build () =
    let program = Program.make (Parser.parse_rules Programs.transitive_closure) in
    let db = Database.create program in
    let root = 0 and hub = spokes + 1 in
    let edges =
      List.concat
        [
          List.init spokes (fun i -> (root, i + 1));
          List.init spokes (fun i -> (i + 1, hub));
          List.init chain_len (fun i -> (hub + i, hub + i + 1));
        ]
    in
    Database.load db "link" (Graph_gen.tuples edges);
    Seminaive.evaluate db;
    db
  in
  let db0 = build () in
  warm db0 `Dred;
  List.iter
    (fun k ->
      let victims = List.init k (fun i -> Tuple.of_ints [ 0; i + 1 ]) in
      let changes = Changes.deletions (Database.program db0) "link" victims in
      let t_dred, w_dred =
        time_and_work ~setup:(fun () -> Database.copy db0) (fun db ->
            ignore (Dred.maintain db changes))
      in
      let t_pf, w_pf =
        time_and_work ~setup:(fun () -> Database.copy db0) (fun db ->
            ignore (Pf.maintain db changes))
      in
      let ratio = float_of_int w_pf /. float_of_int (max 1 w_dred) in
      if ratio > !max_ratio then max_ratio := ratio;
      rows :=
        [
          fmt_int k; fmt_int w_dred; fmt_int w_pf;
          Printf.sprintf "%.1fx" ratio; fmt_time t_dred; fmt_time t_pf;
        ]
        :: !rows)
    [ 2; 4; 8; 16 ];
  print_table
    [ "|Δ⁻|"; "DRed derivations"; "PF derivations"; "work ratio"; "DRed time";
      "PF time" ]
    (List.rev !rows);
  verdict
    (!max_ratio >= 5.

)
    (Printf.sprintf
       "PF's fragmented rederivation costs up to %.0fx DRed's work (paper: order of magnitude)"
       !max_ratio)

(* =================================================================== *)
(* E7 — counting vs DRed on nonrecursive views (§7)                     *)
(* =================================================================== *)

let e7 () =
  print_header "E7: counting vs DRed on nonrecursive views"
    "\"DRed can be used for nonrecursive views also but it is less efficient than counting\" (§7/§8)";
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun k ->
      let db0, rng =
        graph_db ~src:Programs.hop_tri_hop ~seed:41 ~nodes:400 ~edges:2400 ()
      in
      warm db0 `Counting;
      warm db0 `Dred;
      let changes = Update_gen.deletions rng db0 "link" k in
      let t_cnt, w_cnt =
        time_and_work ~setup:(fun () -> Database.copy db0) (fun db ->
            ignore (Counting.maintain db changes))
      in
      let t_dred, w_dred =
        time_and_work ~setup:(fun () -> Database.copy db0) (fun db ->
            ignore (Dred.maintain db changes))
      in
      if w_cnt > w_dred then ok := false;
      rows :=
        [
          fmt_int k; fmt_time t_cnt; fmt_int w_cnt; fmt_time t_dred;
          fmt_int w_dred;
        ]
        :: !rows)
    [ 1; 10; 50 ];
  print_table
    [ "|Δ⁻|"; "counting time"; "counting derivs"; "DRed time"; "DRed derivs" ]
    (List.rev !rows);
  verdict !ok
    "counting does no more work than DRed's delete+rederive on nonrecursive views"

(* =================================================================== *)
(* E8 — aggregate views touch only changed groups (§6.2, Alg 6.1)       *)
(* =================================================================== *)

let e8 () =
  print_header "E8: aggregation — only changed groups are recomputed"
    "Algorithm 6.1 recomputes the aggregate tuple only for groups occurring in Δ(U)";
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun k ->
      let db0, rng =
        costed_graph_db ~src:Programs.min_cost_hop ~seed:53 ~nodes:200
          ~edges:2000 ~max_cost:50 ()
      in
      warm db0 `Counting;
      let total_groups = Relation.cardinal (Database.relation db0 "min_cost_hop") in
      (* k fresh costed edges *)
      let stored = Database.relation db0 "link" in
      let rec fresh k acc =
        if k = 0 then acc
        else
          let t =
            Tuple.make
              [| Value.Int (Prng.int rng 200); Value.Int (Prng.int rng 200);
                 Value.Int (1 + Prng.int rng 50) |]
          in
          if Relation.mem stored t then fresh k acc else fresh (k - 1) (t :: acc)
      in
      let changes =
        Changes.insertions (Database.program db0) "link" (fresh k [])
      in
      let t_inc =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> ignore (Counting.maintain db changes))
      in
      (* ablation: persistent per-group accumulators ([DAJ91]) *)
      let db_idx = Database.copy db0 in
      List.iter
        (fun rule ->
          List.iter
            (fun lit ->
              match lit with
              | Ivm_datalog.Ast.Lagg agg ->
                ignore
                  (Database.register_agg_index db_idx
                     (Compile.compile_agg_spec agg))
              | _ -> ())
            rule.Ivm_datalog.Ast.body)
        (Program.rules (Database.program db_idx));
      Harness.warm db_idx `Counting;
      let t_idx =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db_idx)
          (fun db -> ignore (Counting.maintain db changes))
      in
      let t_re =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> Recompute.maintain db changes)
      in
      if t_inc >= t_re then ok := false;
      rows :=
        [
          fmt_int k; fmt_int total_groups; fmt_time t_inc; fmt_time t_idx;
          fmt_time t_re; fmt_ratio (t_re /. t_inc);
        ]
        :: !rows)
    [ 1; 10; 50 ];
  print_table
    [ "|Δlink|"; "groups in view"; "incremental (probe)";
      "incremental (indexed)"; "recompute"; "speedup" ]
    (List.rev !rows);
  verdict !ok "maintaining MIN per touched group beats recomputing every group"

(* =================================================================== *)
(* E9 — the heuristic of inertia has a crossover (§1)                   *)
(* =================================================================== *)

let e9 () =
  print_header "E9: the crossover of the heuristic of inertia"
    "\"if an entire base relation is deleted, it may be cheaper to recompute the view\" (§1)";
  let db0, rng = graph_db ~src:Programs.hop ~seed:61 ~nodes:400 ~edges:4000 () in
  warm db0 `Counting;
  let all_edges =
    Relation.fold (fun t _ acc -> t :: acc) (Database.relation db0 "link") []
  in
  let n = List.length all_edges in
  let rows = ref [] in
  let crossover = ref None in
  List.iter
    (fun percent ->
      let k = max 1 (n * percent / 100) in
      let victims = Prng.sample rng k all_edges in
      let changes = Changes.deletions (Database.program db0) "link" victims in
      let t_inc =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> ignore (Counting.maintain db changes))
      in
      let t_re =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> Recompute.maintain db changes)
      in
      if t_inc > t_re && !crossover = None then crossover := Some percent;
      rows :=
        [
          Printf.sprintf "%d%%" percent; fmt_time t_inc; fmt_time t_re;
          (if t_inc < t_re then "incremental" else "recompute");
        ]
        :: !rows)
    [ 1; 5; 20; 50; 80; 100 ];
  print_table
    [ "deleted fraction"; "counting"; "recompute"; "winner" ]
    (List.rev !rows);
  match !crossover with
  | Some p ->
    verdict true
      (Printf.sprintf
         "incremental wins for small changes; recomputation takes over around %d%% deleted"
         p)
  | None ->
    verdict true
      "incremental won everywhere up to 100% on this workload (inertia very strong)"

(* =================================================================== *)
(* E10 — negation views maintained incrementally (§6.1, Ex 6.1)         *)
(* =================================================================== *)

let e10 () =
  print_header "E10: negation (only_tri_hop)"
    "Δ(¬Q) computed from Δ(Q), Q, Qν alone (Def 6.1); the delta stays first in the join order";
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun k ->
      let db0, rng =
        graph_db ~semantics:Database.Duplicate_semantics
          ~src:Programs.only_tri_hop ~seed:71 ~nodes:80 ~edges:400 ()
      in
      warm db0 `Counting;
      let changes = Update_gen.mixed rng db0 "link" ~nodes:80 ~dels:k ~ins:k in
      let t_inc =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> ignore (Counting.maintain db changes))
      in
      let t_re =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> Recompute.maintain db changes)
      in
      (* correctness spot check *)
      let db = Database.copy db0 in
      ignore (Counting.maintain db changes);
      let oracle = Database.copy db0 in
      Recompute.maintain oracle changes;
      let exact =
        Relation.equal_counted
          (Database.relation db "only_tri_hop")
          (Database.relation oracle "only_tri_hop")
      in
      if (not exact) || (k <= 5 && t_inc >= t_re) then ok := false;
      rows :=
        [
          fmt_int (2 * k); fmt_time t_inc; fmt_time t_re;
          fmt_ratio (t_re /. t_inc); (if exact then "yes" else "NO");
        ]
        :: !rows)
    [ 1; 5; 20 ];
  print_table
    [ "|Δ|"; "incremental"; "recompute"; "speedup"; "exact?" ]
    (List.rev !rows);
  verdict !ok
    "views with negation maintained exactly, cheaper than recomputation for \
     small Δ (large Δ hits §1's inertia crossover, as expected)"

(* =================================================================== *)
(* E11 — rule insertions/deletions (§1, §7)                             *)
(* =================================================================== *)

let e11 () =
  print_header "E11: view redefinition — rule insertion and deletion"
    "\"The algorithm can also be used when the view definition is itself \
     altered\" (§1): changing one view's rules must not recompute unrelated \
     views";
  (* A database with one large unrelated view (transitive closure) and one
     small union view whose definition changes.  Incremental rule change
     touches only the affected derivations; the recompute alternative must
     re-evaluate everything, the big closure included. *)
  let wire_rule = Parser.parse_rule "reach(X, Y) :- wire(X, Y)." in
  let with_wire =
    {|
      path(X, Y) :- link(X, Y).
      path(X, Y) :- path(X, Z), link(Z, Y).
      reach(X, Y) :- link(X, Y).
      reach(X, Y) :- wire(X, Y).
    |}
  in
  let without_wire =
    {|
      path(X, Y) :- link(X, Y).
      path(X, Y) :- path(X, Z), link(Z, Y).
      reach(X, Y) :- link(X, Y).
    |}
  in
  let mk src =
    let rng = Prng.create 83 in
    let program = Program.make ~extra_base:[ ("wire", 2) ] (Parser.parse_rules src) in
    let db = Database.create program in
    Database.load db "link"
      (Graph_gen.tuples (Graph_gen.layered_dag rng ~layers:12 ~width:10 ~out_degree:2));
    Database.load db "wire"
      (Graph_gen.tuples (Graph_gen.random rng ~nodes:120 ~edges:60));
    Seminaive.evaluate db;
    db
  in
  let maintain db changes = ignore (Dred.maintain db changes) in
  let recompute_with rules db =
    let program = Program.make ~extra_base:[ ("wire", 2) ] rules in
    let db' = Database.create program in
    List.iter
      (fun p ->
        Database.load db' p
          (Relation.fold (fun t _ acc -> t :: acc) (Database.relation db p) []))
      [ "link"; "wire" ];
    Seminaive.evaluate db'
  in
  let t_add =
    median_time ~repeat:3
      ~setup:(fun () -> mk without_wire)
      (fun db -> ignore (Rule_changes.add_rule db ~maintain wire_rule))
  in
  let t_add_re =
    median_time ~repeat:3
      ~setup:(fun () -> mk without_wire)
      (fun db -> recompute_with (Program.rules (Database.program db) @ [ wire_rule ]) db)
  in
  let t_del =
    median_time ~repeat:3
      ~setup:(fun () -> mk with_wire)
      (fun db -> ignore (Rule_changes.remove_rule db ~maintain wire_rule))
  in
  let t_del_re =
    median_time ~repeat:3
      ~setup:(fun () -> mk with_wire)
      (fun db ->
        recompute_with
          (List.filter
             (fun r -> not (Ivm_datalog.Ast.equal_rule r wire_rule))
             (Program.rules (Database.program db)))
          db)
  in
  print_table
    [ "operation"; "incremental (guard)"; "recompute all views"; "speedup" ]
    [
      [ "add union rule to reach"; fmt_time t_add; fmt_time t_add_re;
        fmt_ratio (t_add_re /. t_add) ];
      [ "remove union rule from reach"; fmt_time t_del; fmt_time t_del_re;
        fmt_ratio (t_del_re /. t_del) ];
    ];
  verdict (t_add < t_add_re && t_del < t_del_re)
    "incremental rule change touches only the altered view's derivations; \
     recomputation pays for every view in the database"

(* =================================================================== *)
(* E12 — counting for recursive views ([GKM92], §8)                     *)
(* =================================================================== *)

let e12 () =
  print_header "E12: recursive counting — works on DAGs, diverges on cycles"
    "\"counting may not terminate on some views\"; finite counts are maintainable (§8)";
  let mk semantics =
    let rng = Prng.create 97 in
    let program = Program.make (Parser.parse_rules Programs.transitive_closure) in
    let db = Database.create ~semantics program in
    Database.load db "link"
      (Graph_gen.tuples (Graph_gen.layered_dag rng ~layers:7 ~width:5 ~out_degree:2));
    (db, rng)
  in
  let rows = ref [] in
  List.iter
    (fun k ->
      let db0, rng = mk Database.Duplicate_semantics in
      Recursive_counting.evaluate db0;
      warm db0 `Recursive_counting;
      let changes = Update_gen.deletions rng db0 "link" k in
      let t_rc =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> ignore (Recursive_counting.maintain db changes))
      in
      let t_re =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db0)
          (fun db -> Recompute.maintain db changes)
      in
      let db_set, rng_set = mk Database.Set_semantics in
      Ivm_eval.Seminaive.evaluate db_set;
      warm db_set `Dred;
      let changes_set = Update_gen.deletions rng_set db_set "link" k in
      let t_dred =
        median_time ~repeat:3
          ~setup:(fun () -> Database.copy db_set)
          (fun db -> ignore (Dred.maintain db changes_set))
      in
      rows :=
        [ fmt_int k; fmt_time t_rc; fmt_time t_dred; fmt_time t_re;
          fmt_ratio (t_re /. t_rc) ]
        :: !rows)
    [ 1; 5 ];
  print_table
    [ "|Δ⁻|"; "recursive counting"; "DRed (sets)"; "recompute (counts)";
      "speedup vs recompute" ]
    (List.rev !rows);
  (* divergence demonstration *)
  let program = Program.make (Parser.parse_rules Programs.transitive_closure) in
  let db = Database.create ~semantics:Database.Duplicate_semantics program in
  Database.load db "link" (Graph_gen.tuples (Graph_gen.cycle 8));
  let diverged =
    try
      Recursive_counting.evaluate ~max_rounds:256 db;
      false
    with Recursive_counting.Divergence _ -> true
  in
  Printf.printf "\n  cyclic data (8-cycle): %s\n"
    (if diverged then "divergence detected and reported, as the paper predicts"
     else "UNEXPECTEDLY CONVERGED");
  verdict diverged
    "counts maintained incrementally on acyclic data; divergence detected on cycles"

(* =================================================================== *)
(* X1 — the paper's worked example, end to end (Ex 4.1/4.2/5.1)         *)
(* =================================================================== *)

let x1 () =
  print_header "X1: the paper's running example (link/hop/tri_hop)"
    "Examples 4.2 and 5.1, reproduced tuple for tuple";
  let src =
    {|
      hop(X, Y) :- link(X, Z) & link(Z, Y).
      tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).
      link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
    |}
  in
  let statements = Parser.parse_program src in
  let rules, facts = Parser.split statements in
  let mk semantics =
    let program = Program.make rules in
    let db = Database.create ~semantics program in
    List.iter (fun (p, vals) -> Database.load db p [ Tuple.of_list vals ]) facts;
    Seminaive.evaluate db;
    db
  in
  let changes db =
    Changes.of_list (Database.program db)
      [
        ( "link",
          [
            (Tuple.of_strs [ "a"; "b" ], -1);
            (Tuple.of_strs [ "d"; "f" ], 1);
            (Tuple.of_strs [ "a"; "f" ], 1);
          ] );
      ]
  in
  let db = mk Database.Duplicate_semantics in
  Printf.printf "  duplicate semantics (Example 4.2):\n";
  Printf.printf "    link     = %s\n" (Relation.to_string (Database.relation db "link"));
  Printf.printf "    hop      = %s   (paper: {ac 2, dh, bh})\n"
    (Relation.to_string (Database.relation db "hop"));
  Printf.printf "    tri_hop  = %s   (paper: {ah 2})\n"
    (Relation.to_string (Database.relation db "tri_hop"));
  let report = Counting.maintain db (changes db) in
  Printf.printf "    Δ(link)  = {ab -1, df, af}\n";
  List.iter
    (fun (p, d) -> Printf.printf "    Δ(%s) = %s\n" p (Relation.to_string d))
    report.Counting.view_deltas;
  Printf.printf "    hopν     = %s   (paper: {ac, af, ag, dg, dh, bh})\n"
    (Relation.to_string (Database.relation db "hop"));
  Printf.printf "    tri_hopν = %s   (paper: {ah, ag})\n"
    (Relation.to_string (Database.relation db "tri_hop"));
  let db = mk Database.Set_semantics in
  let report = Counting.maintain db (changes db) in
  Printf.printf "\n  set semantics with the boxed optimization (Example 5.1):\n";
  List.iter
    (fun (p, d) ->
      Printf.printf "    propagated Δ(%s) = %s\n" p (Relation.to_string d))
    report.Counting.propagated_deltas;
  Printf.printf
    "    (paper: Δ(hop) = {af, ag, dg} — the tuple ac·-1 does not cascade,\n\
    \     so (ah -1) is never derived for tri_hop)\n";
  verdict true "matches the paper's printed deltas"

(* =================================================================== *)
(* E14 — durable views: snapshot + write-ahead log (ivm_store)          *)
(* =================================================================== *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let e14 () =
  print_header
    "E14: durable views — snapshot size, log cost, recovery vs recompute"
    "restart = snapshot load + replay-Δ through the maintenance path; \
     \"too wasteful to recompute from scratch\" applies to recovery too";
  let batches = 16 in
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun (edges, nodes) ->
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_bench_e14_%d_%d" (Unix.getpid ()) edges)
      in
      rm_rf dir;
      let rng = Prng.create 41 in
      let tuples = Graph_gen.tuples (Graph_gen.random rng ~nodes ~edges) in
      let vm =
        Vm.create ~durable:dir
          ~facts:[ ("link", tuples) ]
          (Parser.parse_rules Programs.hop_tri_hop)
      in
      for _ = 1 to batches do
        let changes =
          Update_gen.mixed rng (Vm.database vm) "link" ~nodes ~dels:2 ~ins:3
        in
        ignore (Vm.apply vm changes)
      done;
      let st = Option.get (Vm.store_status vm) in
      let final_base =
        Relation.fold
          (fun t _ acc -> t :: acc)
          (Vm.relation vm "link") []
      in
      Vm.close_store vm;
      (* recovery: verify + load the snapshot (zero re-evaluation), then
         replay the [batches]-record log tail incrementally *)
      let t_recover =
        median_time ~repeat:3
          ~setup:(fun () -> ())
          (fun () ->
            let vm2, _ = Vm.open_durable dir in
            Vm.close_store vm2)
      in
      (* cold start: same final base relation, every view re-derived *)
      let t_cold =
        median_time ~repeat:3
          ~setup:(fun () -> ())
          (fun () ->
            ignore
              (Vm.create
                 ~facts:[ ("link", final_base) ]
                 (Parser.parse_rules Programs.hop_tri_hop)))
      in
      let log_per_batch = (st.Store.wal_bytes - Ivm_store.Wal.header_size) / batches in
      (* write amplification avoided: the naive durable design snapshots
         after every batch; the WAL writes [log_per_batch] instead *)
      let amp = float_of_int st.Store.snapshot_bytes /. float_of_int log_per_batch in
      if t_recover >= t_cold then ok := false;
      rows :=
        [
          fmt_int edges; fmt_bytes st.Store.snapshot_bytes;
          fmt_bytes log_per_batch; fmt_ratio amp; fmt_time t_recover;
          fmt_time t_cold; fmt_ratio (t_cold /. t_recover);
        ]
        :: !rows;
      rm_rf dir)
    [ (2000, 400); (8000, 1600) ];
  print_table
    [ "|E|"; "snapshot"; "log B/batch"; "vs snap/batch"; "recover (load+replay)";
      "cold recompute"; "speedup" ]
    (List.rev !rows);
  verdict !ok
    "per-batch logging writes a fraction of a snapshot, and recovery \
     (snapshot + 16-batch replay) beats re-deriving the views from the base \
     relations"

(* =================================================================== *)

let all : (string * (unit -> unit)) list =
  [
    ("x1", x1); ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e14", e14);
  ]
