(* Benchmark harness entry point.

     dune exec bench/main.exe                 # all experiments + micro suite
     dune exec bench/main.exe -- e1 e6        # selected experiments
     dune exec bench/main.exe -- micro        # Bechamel micro suite only
     dune exec bench/main.exe -- --metrics-json out.json
                                              # machine-readable metrics report

   Each experiment prints the table EXPERIMENTS.md records; the micro suite
   gives one Bechamel measurement per experiment's headline operation. *)

open Harness
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Recursive_counting = Ivm.Recursive_counting
module Pf = Ivm_baselines.Pf

(* ------------------------------------------------------------------ *)
(* Bechamel micro suite: one Test.make per experiment.  Maintenance
   mutates the database, so each measured function applies a change and
   its inverse — the state is identical after every run. *)
(* ------------------------------------------------------------------ *)

let flip_pair db pred tuple =
  let program = Database.program db in
  let ins = Changes.insertions program pred [ tuple ] in
  let del = Changes.deletions program pred [ tuple ] in
  (ins, del)

let fresh_edge db rng ~nodes =
  let stored = Database.relation db "link" in
  let rec go () =
    let a = Prng.int rng nodes and b = Prng.int rng nodes in
    let t = Tuple.make [| Value.Int a; Value.Int b |] in
    if a = b || Relation.mem stored t then go () else t
  in
  go ()

let micro_tests () =
  let open Bechamel in
  (* X1 / E1: counting on the hop+tri_hop views *)
  let db_cnt, rng = graph_db ~src:Programs.hop_tri_hop ~seed:3 ~nodes:400 ~edges:2000 () in
  let e = fresh_edge db_cnt rng ~nodes:400 in
  let ins, del = flip_pair db_cnt "link" e in
  let t_e1 =
    Test.make ~name:"e1.counting-flip-edge(hop,tri_hop)@2k"
      (Staged.stage (fun () ->
           ignore (Counting.maintain db_cnt ins);
           ignore (Counting.maintain db_cnt del)))
  in
  let db_re, _ = graph_db ~src:Programs.hop_tri_hop ~seed:3 ~nodes:400 ~edges:2000 () in
  let t_e1b =
    Test.make ~name:"e1.recompute(hop,tri_hop)@2k"
      (Staged.stage (fun () -> Seminaive.evaluate db_re))
  in
  (* E2: evaluation of the hop join (counts are always tracked) *)
  let db_eval, _ = graph_db ~src:Programs.hop ~seed:5 ~nodes:400 ~edges:4000 () in
  let t_e2 =
    Test.make ~name:"e2.evaluate-hop@4k"
      (Staged.stage (fun () -> Seminaive.evaluate db_eval))
  in
  (* E5: DRed on transitive closure over a layered DAG *)
  let db_tc, _ =
    layered_db ~src:Programs.transitive_closure ~seed:7 ~layers:10 ~width:8
      ~out_degree:2 ()
  in
  let e_tc = Tuple.make [| Value.Int 0; Value.Int 79 |] in
  let ins_tc, del_tc = flip_pair db_tc "link" e_tc in
  let t_e5 =
    Test.make ~name:"e5.dred-flip-edge(tc-dag)"
      (Staged.stage (fun () ->
           ignore (Dred.maintain db_tc ins_tc);
           ignore (Dred.maintain db_tc del_tc)))
  in
  (* E6: PF on the same shape *)
  let db_pf, _ =
    layered_db ~src:Programs.transitive_closure ~seed:7 ~layers:10 ~width:8
      ~out_degree:2 ()
  in
  let ins_pf, del_pf = flip_pair db_pf "link" e_tc in
  let t_e6 =
    Test.make ~name:"e6.pf-flip-edge(tc-dag)"
      (Staged.stage (fun () ->
           ignore (Pf.maintain db_pf ins_pf);
           ignore (Pf.maintain db_pf del_pf)))
  in
  (* E8: aggregation *)
  let db_agg, rng_agg =
    costed_graph_db ~src:Programs.min_cost_hop ~seed:9 ~nodes:200 ~edges:1200
      ~max_cost:50 ()
  in
  let e_agg =
    let t2 = fresh_edge db_agg rng_agg ~nodes:200 in
    Tuple.make [| Tuple.get t2 0; Tuple.get t2 1; Value.Int 7 |]
  in
  let ins_agg, del_agg = flip_pair db_agg "link" e_agg in
  let t_e8 =
    Test.make ~name:"e8.counting-flip-edge(min_cost_hop)@1200"
      (Staged.stage (fun () ->
           ignore (Counting.maintain db_agg ins_agg);
           ignore (Counting.maintain db_agg del_agg)))
  in
  (* E10: negation *)
  let db_neg, rng_neg =
    graph_db ~semantics:Database.Duplicate_semantics ~src:Programs.only_tri_hop
      ~seed:11 ~nodes:80 ~edges:320 ()
  in
  let e_neg = fresh_edge db_neg rng_neg ~nodes:80 in
  let ins_neg, del_neg = flip_pair db_neg "link" e_neg in
  let t_e10 =
    Test.make ~name:"e10.counting-flip-edge(only_tri_hop)@320"
      (Staged.stage (fun () ->
           ignore (Counting.maintain db_neg ins_neg);
           ignore (Counting.maintain db_neg del_neg)))
  in
  (* E12: recursive counting on a DAG *)
  let db_rc =
    let rng = Prng.create 13 in
    let program = Program.make (Parser.parse_rules Programs.transitive_closure) in
    let db = Database.create ~semantics:Database.Duplicate_semantics program in
    Database.load db "link"
      (Graph_gen.tuples (Graph_gen.layered_dag rng ~layers:6 ~width:5 ~out_degree:2));
    Recursive_counting.evaluate db;
    db
  in
  let e_rc = Tuple.make [| Value.Int 0; Value.Int 9 |] in
  let ins_rc, del_rc = flip_pair db_rc "link" e_rc in
  let t_e12 =
    Test.make ~name:"e12.recursive-counting-flip-edge(dag)"
      (Staged.stage (fun () ->
           ignore (Recursive_counting.maintain db_rc ins_rc);
           ignore (Recursive_counting.maintain db_rc del_rc)))
  in
  Test.make_grouped ~name:"ivm"
    [ t_e1; t_e1b; t_e2; t_e5; t_e6; t_e8; t_e10; t_e12 ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\nBechamel micro suite (ns/run, OLS estimate)\n";
  Printf.printf "===========================================\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | _ -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
        in
        (name, est, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  print_table
    [ "benchmark"; "time/run"; "r²" ]
    (List.map
       (fun (name, est, r2) ->
         [ name; fmt_time (est /. 1e9); Printf.sprintf "%.3f" r2 ])
       rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --domains N anywhere: evaluate delta rules on N domains.
     --serve PORT anywhere: expose /metrics (and friends) while the
     benches run; the monitor's at_exit handler stops it. *)
  let args =
    let rec go acc = function
      | "--domains" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> Ivm_par.set_domains n
        | _ ->
          Printf.eprintf "--domains expects a positive integer, got %s\n" n;
          exit 1);
        go acc rest
      | "--serve" :: p :: rest ->
        (match int_of_string_opt p with
        | Some port when port >= 0 && port < 65536 ->
          let srv =
            Ivm_monitor.Monitor.start
              ~config:
                {
                  Ivm_monitor.Monitor.default_config with
                  before_metrics = Stats.sync;
                }
              ~port ()
          in
          Printf.printf
            "monitoring on http://127.0.0.1:%d (/metrics /healthz /statusz \
             /trace)\n\
             %!"
            (Ivm_monitor.Monitor.port srv)
        | _ ->
          Printf.eprintf "--serve expects a port number, got %s\n" p;
          exit 1);
        go acc rest
      | x :: rest -> go (x :: acc) rest
      | [] -> List.rev acc
    in
    go [] args
  in
  (match args with
  | "--metrics-json" :: out :: _ ->
    Metrics_report.run ~out ();
    exit 0
  | "--regress" :: out :: rest ->
    (* --regress OUT [--baseline FILE] [--tolerance R]; R defaults to
       0.25 (IVM_REGRESS_TOLERANCE overrides the default). *)
    let baseline = ref None and tolerance = ref None in
    let rec opts = function
      | "--baseline" :: f :: rest ->
        baseline := Some f;
        opts rest
      | "--tolerance" :: r :: rest ->
        (match float_of_string_opt r with
        | Some r when r >= 0. -> tolerance := Some r
        | _ ->
          Printf.eprintf "--tolerance expects a non-negative float, got %s\n" r;
          exit 1);
        opts rest
      | x :: _ ->
        Printf.eprintf "unknown --regress option %s\n" x;
        exit 1
      | [] -> ()
    in
    opts rest;
    let tolerance =
      match !tolerance with
      | Some t -> t
      | None -> (
        match Sys.getenv_opt "IVM_REGRESS_TOLERANCE" with
        | Some s -> (match float_of_string_opt s with Some t -> t | None -> 0.25)
        | None -> 0.25)
    in
    Regress.run ~out ?baseline:!baseline ~tolerance ();
    exit 0
  | _ -> ());
  let args =
    match args with
    | "--csv" :: dir :: rest ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Harness.csv_dir := Some dir;
      rest
    | args -> args
  in
  let known = List.map fst Experiments.all in
  let bad = List.filter (fun a -> a <> "micro" && not (List.mem a known)) args in
  if bad <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\nknown: %s micro\n"
      (String.concat ", " bad) (String.concat " " known);
    exit 1
  end;
  let wanted name = args = [] || List.mem name args in
  Printf.printf
    "Reproduction benches — Gupta, Mumick & Subrahmanian, \"Maintaining Views \
     Incrementally\" (SIGMOD 1993)\n";
  List.iter
    (fun (name, run) -> if wanted name then run ())
    Experiments.all;
  if args = [] || List.mem "micro" args then run_micro ()
