(** [--metrics-json OUT]: machine-readable per-experiment metrics report.

    Runs every maintenance algorithm — Counting, DRed, PF, Recompute —
    against the same deterministic update streams on two workload shapes
    (the nonrecursive hop/tri_hop views of Examples 1.1/4.2 over a random
    graph, and recursive transitive closure over a layered DAG) and emits
    one JSON document with per-algorithm work counters (derivations,
    probes, tuples scanned, rule applications, DRed/PF rederivation work)
    and wall-clock latency percentiles, plus a dump of the full metrics
    registry.  Each batch runs against a fresh copy of the initial
    database so the generated deletions stay valid for every algorithm. *)

open Harness
module Json = Ivm_obs.Json
module Metrics = Ivm_obs.Metrics
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Pf = Ivm_baselines.Pf
module Recompute = Ivm_baselines.Recompute

(* Exact percentiles over the collected per-batch samples (nearest-rank). *)
let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let latency_json samples =
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n
  in
  Json.Obj
    [
      ("p50_ns", Json.Num (percentile sorted 0.5));
      ("p90_ns", Json.Num (percentile sorted 0.9));
      ("p99_ns", Json.Num (percentile sorted 0.99));
      ("max_ns", Json.Num (if n = 0 then 0. else sorted.(n - 1)));
      ("mean_ns", Json.Num mean);
    ]

(* DRed exposes its rederivation work through the registry; PF returns it
   per call.  Read the DRed counters via their (shared) handles so a
   before/after delta isolates one run. *)
let dred_rederived_c = Metrics.counter "ivm_dred_rederived_total"
let dred_overdeleted_c = Metrics.counter "ivm_dred_overdeleted_total"

type runner = {
  algo : string;
  supported : bool;
  reason : string;
  (* returns (rederived, overdeleted) for the delete/rederive family *)
  run : Database.t -> Changes.t -> int * int;
}

let counting_runner ~recursive =
  {
    algo = "counting";
    supported = not recursive;
    reason = (if recursive then "recursive program (Counting is Algorithm 4.1, nonrecursive only)" else "");
    run = (fun db c -> ignore (Counting.maintain db c); (0, 0));
  }

let dred_runner =
  {
    algo = "dred";
    supported = true;
    reason = "";
    run =
      (fun db c ->
        let r0 = dred_rederived_c.Metrics.count
        and o0 = dred_overdeleted_c.Metrics.count in
        ignore (Dred.maintain db c);
        (dred_rederived_c.Metrics.count - r0, dred_overdeleted_c.Metrics.count - o0));
  }

let pf_runner =
  {
    algo = "pf";
    supported = true;
    reason = "";
    run =
      (fun db c ->
        let s = Pf.maintain db c in
        (s.Pf.rederived, s.Pf.overdeleted));
  }

let recompute_runner =
  {
    algo = "recompute";
    supported = true;
    reason = "";
    run = (fun db c -> Recompute.maintain db c; (0, 0));
  }

(** Run [runner] over [batches], each against a fresh copy of [db0];
    report summed work counters and latency percentiles. *)
let run_algorithm db0 batches runner : Json.t =
  if not runner.supported then
    Json.Obj
      [
        ("algorithm", Json.Str runner.algo);
        ("supported", Json.Bool false);
        ("reason", Json.Str runner.reason);
      ]
  else begin
    let latencies = ref [] in
    let derivations = ref 0 and probes = ref 0 and scanned = ref 0 in
    let rule_apps = ref 0 and rederived = ref 0 and overdeleted = ref 0 in
    List.iter
      (fun changes ->
        let db = Database.copy db0 in
        let before = Stats.snapshot () in
        let t0 = Unix.gettimeofday () in
        let rd, od = runner.run db changes in
        let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        let w = Stats.since before in
        latencies := dt_ns :: !latencies;
        derivations := !derivations + w.Stats.snap_derivations;
        probes := !probes + w.Stats.snap_probes;
        scanned := !scanned + w.Stats.snap_tuples_scanned;
        rule_apps := !rule_apps + w.Stats.snap_rule_applications;
        rederived := !rederived + rd;
        overdeleted := !overdeleted + od)
      batches;
    Json.Obj
      [
        ("algorithm", Json.Str runner.algo);
        ("supported", Json.Bool true);
        ("batches", Json.int (List.length batches));
        ("derivations", Json.int !derivations);
        ("probes", Json.int !probes);
        ("tuples_scanned", Json.int !scanned);
        ("rule_applications", Json.int !rule_apps);
        ("rederived", Json.int !rederived);
        ("overdeleted", Json.int !overdeleted);
        ("latency", latency_json !latencies);
      ]
  end

let workload_json ~name ~description ~recursive db0 batches : Json.t =
  let runners =
    [ counting_runner ~recursive; dred_runner; pf_runner; recompute_runner ]
  in
  Json.Obj
    [
      ("workload", Json.Str name);
      ("description", Json.Str description);
      ("batches", Json.int (List.length batches));
      ("algorithms", Json.List (List.map (run_algorithm db0 batches) runners));
    ]

(* ------------------------------------------------------------------ *)
(* Parallel sweep: counting maintenance at 1/2/4 domains               *)
(* ------------------------------------------------------------------ *)

(** Canonical dump of every derived relation — sorted predicates, sorted
    tuples with counts — for the byte-identical cross-domain check. *)
let derived_state db =
  let program = Database.program db in
  String.concat "\n"
    (List.map
       (fun p -> p ^ " = " ^ Relation.to_string (Database.relation db p))
       (List.sort String.compare (Program.derived_preds program)))

(** Maintain the same seeded update stream with Counting at 1, 2 and 4
    domains: wall-clock per domain count, speedup vs sequential, and
    whether the final view states are byte-identical (they must be — the
    ⊎-merge runs in fixed task order whatever the domain count). *)
let parallel_sweep () : Json.t =
  let nodes = 400 and edges = 2500 and n_batches = 12 in
  let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:29 ~nodes ~edges () in
  (* The sweep applies the stream cumulatively to one database, so each
     batch must be generated against the state left by its predecessors —
     a tracking copy keeps the deletions valid. *)
  let batches =
    let tracker = Database.copy db0 in
    List.init n_batches (fun _ ->
        let c = Update_gen.mixed rng tracker "link" ~nodes ~dels:6 ~ins:6 in
        ignore (Counting.maintain tracker c);
        c)
  in
  let run_with domains =
    Ivm_par.set_domains domains;
    let db = Database.copy db0 in
    let t0 = Unix.gettimeofday () in
    List.iter (fun c -> ignore (Counting.maintain db c)) batches;
    let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    (dt_ns, derived_state db)
  in
  let prev = Ivm_par.domains () in
  let results = List.map (fun d -> (d, run_with d)) [ 1; 2; 4 ] in
  Ivm_par.set_domains prev;
  let t1, s1 = List.assoc 1 results in
  Json.Obj
    [
      ("workload", Json.Str "hop_tri_hop_large");
      ( "description",
        Printf.sprintf
          "nonrecursive hop+tri_hop views, random graph (%d nodes, %d edges), \
           %d mixed batches of 6 del + 6 ins, counting maintenance"
          nodes edges n_batches
        |> fun s -> Json.Str s );
      ("algorithm", Json.Str "counting");
      ("cores_available", Json.int (Domain.recommended_domain_count ()));
      ( "sweep",
        Json.List
          (List.map
             (fun (d, (dt_ns, state)) ->
               Json.Obj
                 [
                   ("domains", Json.int d);
                   ("total_ns", Json.Num dt_ns);
                   ("speedup_vs_1_domain", Json.Num (t1 /. dt_ns));
                   ("state_identical_to_1_domain", Json.Bool (String.equal state s1));
                 ])
             results) );
    ]

(* ------------------------------------------------------------------ *)
(* E15: cost-attribution overhead — maintenance with per-rule           *)
(* attribution on vs off, Counting and DRed on the same update stream  *)
(* ------------------------------------------------------------------ *)

(** Time one cumulative pass of [batches] over a fresh copy of [db0]
    with attribution forced to [enabled]; one warm-up pass, then the
    best of three measured passes (minimum filters scheduler noise). *)
let timed_pass db0 batches maintain enabled =
  let prev = Ivm_obs.Attribution.enabled () in
  Ivm_obs.Attribution.set_enabled enabled;
  let measure () =
    let db = Database.copy db0 in
    let t0 = Unix.gettimeofday () in
    List.iter (fun c -> ignore (maintain db c)) batches;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  ignore (measure ());
  let best = ref infinity in
  for _ = 1 to 3 do
    let dt = measure () in
    if dt < !best then best := dt
  done;
  Ivm_obs.Attribution.set_enabled prev;
  !best

(** E15: what does per-rule cost attribution cost?  The same seeded
    stream of mixed update batches is maintained with attribution off
    and on, for Counting and for DRed; the acceptance bar is ≤10%
    overhead (EXPERIMENTS.md E15). *)
let attribution_overhead () : Json.t =
  let nodes = 200 and edges = 1000 and n_batches = 40 in
  let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:31 ~nodes ~edges () in
  (* Cumulative stream: generate each batch against the state left by its
     predecessors so the deletions stay valid for every timed pass. *)
  let batches =
    let tracker = Database.copy db0 in
    List.init n_batches (fun _ ->
        let c = Update_gen.mixed rng tracker "link" ~nodes ~dels:3 ~ins:3 in
        ignore (Counting.maintain tracker c);
        c)
  in
  let algo name maintain =
    let off_ns = timed_pass db0 batches maintain false in
    let on_ns = timed_pass db0 batches maintain true in
    Json.Obj
      [
        ("algorithm", Json.Str name);
        ("off_ns", Json.Num off_ns);
        ("on_ns", Json.Num on_ns);
        ("overhead_pct", Json.Num ((on_ns -. off_ns) /. off_ns *. 100.));
      ]
  in
  Json.Obj
    [
      ("experiment", Json.Str "attribution_overhead");
      ( "description",
        Json.Str
          (Printf.sprintf
             "per-rule cost attribution on vs off: hop+tri_hop views, random \
              graph (%d nodes, %d edges), %d mixed batches of 3 del + 3 ins, \
              best of 3 passes after warm-up"
             nodes edges n_batches) );
      ("batches", Json.int n_batches);
      ( "algorithms",
        Json.List
          [
            algo "counting" (fun db c -> ignore (Counting.maintain db c));
            algo "dred" (fun db c -> ignore (Dred.maintain db c));
          ] );
    ]

(** E17: what does derivation-provenance capture cost?  Same protocol as
    E15: a seeded stream of mixed update batches maintained with capture
    off and on (the enabled passes bootstrap the support store before the
    clock starts), for Counting and for DRed.  The acceptance bar is ≤2%
    with capture off — the hooks are a single atomic load — and the
    capture-on overhead is recorded as EXPERIMENTS.md E17. *)
let provenance_overhead () : Json.t =
  let nodes = 200 and edges = 1000 and n_batches = 40 in
  let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:37 ~nodes ~edges () in
  let batches =
    let tracker = Database.copy db0 in
    List.init n_batches (fun _ ->
        let c = Update_gen.mixed rng tracker "link" ~nodes ~dels:3 ~ins:3 in
        ignore (Counting.maintain tracker c);
        c)
  in
  let timed_pass enabled maintain =
    let measure () =
      let db = Database.copy db0 in
      if enabled then begin
        Ivm_prov.Prov.reset ();
        Ivm_prov.Prov.set_enabled true;
        Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
        (* bootstrap (support store for the initial materialization) is
           setup cost, not per-batch cost: outside the clock *)
        Ivm_eval.Seminaive.replay_derivations db
      end;
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun c ->
          if enabled then Ivm_prov.Prov.batch_begin ~algorithm:"bench";
          ignore (maintain db c))
        batches;
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      if enabled then Ivm_prov.Prov.set_enabled false;
      dt
    in
    ignore (measure ());
    let best = ref infinity in
    for _ = 1 to 3 do
      let dt = measure () in
      if dt < !best then best := dt
    done;
    !best
  in
  let algo name maintain =
    let off_ns = timed_pass false maintain in
    let on_ns = timed_pass true maintain in
    Json.Obj
      [
        ("algorithm", Json.Str name);
        ("off_ns", Json.Num off_ns);
        ("on_ns", Json.Num on_ns);
        ("overhead_pct", Json.Num ((on_ns -. off_ns) /. off_ns *. 100.));
      ]
  in
  Json.Obj
    [
      ("experiment", Json.Str "provenance_overhead");
      ( "description",
        Json.Str
          (Printf.sprintf
             "derivation-provenance capture on vs off: hop+tri_hop views, \
              random graph (%d nodes, %d edges), %d mixed batches of 3 del + \
              3 ins, best of 3 passes after warm-up; enabled passes \
              bootstrap the support store before timing"
             nodes edges n_batches) );
      ("batches", Json.int n_batches);
      ( "algorithms",
        Json.List
          [
            algo "counting" (fun db c -> ignore (Counting.maintain db c));
            algo "dred" (fun db c -> ignore (Dred.maintain db c));
          ] );
    ]

(** Build the report and write it to [out]. *)
let run ~out () =
  Metrics.reset ();
  Stats.reset ();
  (* Workload 1: Example 1.1/4.2 views over a random graph, mixed updates. *)
  let w1 =
    let nodes = 200 and edges = 1000 and n_batches = 25 in
    let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:21 ~nodes ~edges () in
    let batches =
      List.init n_batches (fun _ ->
          Update_gen.mixed rng db0 "link" ~nodes ~dels:2 ~ins:2)
    in
    workload_json ~name:"hop_tri_hop"
      ~description:
        (Printf.sprintf
           "nonrecursive hop+tri_hop views, random graph (%d nodes, %d \
            edges), %d mixed batches of 2 del + 2 ins"
           nodes edges n_batches)
      ~recursive:false db0 batches
  in
  (* Workload 2: recursive transitive closure over a layered DAG. *)
  let w2 =
    let layers = 8 and width = 6 and out_degree = 2 and n_batches = 15 in
    let db0, rng =
      layered_db ~src:Programs.transitive_closure ~seed:23 ~layers ~width
        ~out_degree ()
    in
    let batches =
      List.init n_batches (fun _ -> Update_gen.deletions rng db0 "link" 1)
    in
    workload_json ~name:"transitive_closure"
      ~description:
        (Printf.sprintf
           "recursive transitive closure, layered DAG (%d layers × %d, \
            out-degree %d), %d single-deletion batches"
           layers width out_degree n_batches)
      ~recursive:true db0 batches
  in
  (* Bind before building the record: list elements evaluate right to
     left, and the registry dump must see the sweep's per-domain
     counters. *)
  let sweep = parallel_sweep () in
  let attribution = attribution_overhead () in
  let provenance = provenance_overhead () in
  (* Fold the evaluator's per-domain work cells into the registry before
     dumping it. *)
  Stats.sync ();
  let doc =
    Json.Obj
      [
        ("report", Json.Str "ivm bench metrics");
        ("workloads", Json.List [ w1; w2 ]);
        ("parallel_sweep", sweep);
        ("attribution_overhead", attribution);
        ("provenance_overhead", provenance);
        ("registry", Metrics.to_json ());
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "metrics report written to %s\n" out
