(** [--regress OUT]: the perf-regression harness behind [BENCH_5.json].

    Runs the four maintenance algorithms — Counting, DRed, PF, Recompute —
    over deterministic seeded update streams on four workload shapes
    (nonrecursive joins, negation under duplicate semantics, GROUPBY
    aggregation, recursive transitive closure) and records, per
    (workload, algorithm):

    - maintenance latency in ns/op (best of five passes after a warm-up,
      total wall time divided by batch count);
    - minor-heap allocation in words/op ([Gc.minor_words] delta — exact
      and deterministic at one domain, which the harness forces);
    - the evaluator's work counters (probes, tuples scanned, derivations)
      from {!Ivm_eval.Stats} — machine-independent;
    - an MD5 digest of the final database state (every relation, sorted
      tuples with counts) — the bit-identical safety net: any kernel
      change that alters results, not just speed, flips the digest.

    With [--baseline FILE] the run is additionally a gate: the state
    digests must match the baseline exactly, and words/op and the work
    counters — all exactly reproducible — must not regress beyond the
    tolerance (default 25%, [--tolerance R] or [IVM_REGRESS_TOLERANCE]
    to override).  Wall time is gated too, but as a backstop: it is
    normalized by a {!calibrate} ratio recorded in both reports (so a
    throttled host or different CI hardware doesn't trip it) and allowed
    a wider tolerance (max of the numeric tolerance and 50%,
    [IVM_REGRESS_TIME_TOLERANCE] to override) because even a min-of-5
    swings tens of percent between runs on shared machines.  Exit code 1
    on any violation — CI runs this against the committed [BENCH_5.json]. *)

open Harness
module Json = Ivm_obs.Json
module Counting = Ivm.Counting
module Dred = Ivm.Dred
module Pf = Ivm_baselines.Pf
module Recompute = Ivm_baselines.Recompute
module Update_gen = Ivm_workload.Update_gen

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)
(* ------------------------------------------------------------------ *)

type workload = {
  wname : string;
  wdesc : string;
  recursive : bool;
  db0 : Database.t;
  batches : Changes.t list;
}

(* Generate a cumulative batch stream: each batch is drawn against the
   state its predecessors left behind (tracked on a private copy), so a
   measured pass can apply the whole stream to a fresh copy of [db0] and
   every deletion stays valid. *)
let cumulative_batches db0 ~track ~n gen =
  let tracker = Database.copy db0 in
  List.init n (fun _ ->
      let c = gen tracker in
      track tracker c;
      c)

let track_counting tracker c = ignore (Counting.maintain tracker c)
let track_dred tracker c = ignore (Dred.maintain tracker c)

(** Mixed costed-edge batch for the 3-column [link(S, D, C)] relation of
    the aggregation workload: [dels] stored tuples out, [ins] fresh
    random costed edges in. *)
let costed_mixed rng db ~nodes ~max_cost ~dels ~ins =
  let program = Database.program db in
  let stored = Database.relation db "link" in
  let del = Update_gen.deletions rng db "link" dels in
  let rec draw k acc =
    if k = 0 then acc
    else
      let t =
        Tuple.of_list
          [
            Value.Int (Prng.int rng nodes);
            Value.Int (Prng.int rng nodes);
            Value.Int (1 + Prng.int rng max_cost);
          ]
      in
      if Relation.mem stored t then draw k acc else draw (k - 1) (t :: acc)
  in
  Changes.merge del (Changes.insertions program "link" (draw ins []))

let w_hop_tri_hop () =
  let nodes = 300 and edges = 1800 and n = 24 in
  let db0, rng = graph_db ~src:Programs.hop_tri_hop ~seed:41 ~nodes ~edges () in
  {
    wname = "hop_tri_hop";
    wdesc =
      Printf.sprintf
        "nonrecursive hop+tri_hop views, random graph (%d nodes, %d edges), \
         %d mixed batches of 3 del + 3 ins"
        nodes edges n;
    recursive = false;
    db0;
    batches =
      cumulative_batches db0 ~track:track_counting ~n (fun tracker ->
          Update_gen.mixed rng tracker "link" ~nodes ~dels:3 ~ins:3);
  }

let w_only_tri_hop () =
  let nodes = 120 and edges = 520 and n = 16 in
  let db0, rng =
    graph_db ~semantics:Database.Duplicate_semantics
      ~src:Programs.only_tri_hop ~seed:43 ~nodes ~edges ()
  in
  {
    wname = "only_tri_hop";
    wdesc =
      Printf.sprintf
        "negation (Example 6.1) under duplicate semantics, random graph \
         (%d nodes, %d edges), %d mixed batches of 2 del + 2 ins"
        nodes edges n;
    recursive = false;
    db0;
    batches =
      cumulative_batches db0 ~track:track_counting ~n (fun tracker ->
          Update_gen.mixed rng tracker "link" ~nodes ~dels:2 ~ins:2);
  }

let w_min_cost_hop () =
  let nodes = 150 and edges = 900 and max_cost = 40 and n = 16 in
  let db0, rng =
    costed_graph_db ~src:Programs.min_cost_hop ~seed:45 ~nodes ~edges
      ~max_cost ()
  in
  {
    wname = "min_cost_hop";
    wdesc =
      Printf.sprintf
        "MIN-cost aggregation (Example 6.2), costed random graph (%d nodes, \
         %d edges, cost ≤ %d), %d mixed batches of 2 del + 2 ins"
        nodes edges max_cost n;
    recursive = false;
    db0;
    batches =
      cumulative_batches db0 ~track:track_counting ~n (fun tracker ->
          costed_mixed rng tracker ~nodes ~max_cost ~dels:2 ~ins:2);
  }

let w_transitive_closure () =
  let layers = 8 and width = 6 and out_degree = 2 and n = 12 in
  let db0, rng =
    layered_db ~src:Programs.transitive_closure ~seed:47 ~layers ~width
      ~out_degree ()
  in
  {
    wname = "transitive_closure";
    wdesc =
      Printf.sprintf
        "recursive transitive closure, layered DAG (%d layers × %d, \
         out-degree %d), %d single-deletion batches"
        layers width out_degree n;
    recursive = true;
    db0;
    batches =
      cumulative_batches db0 ~track:track_dred ~n (fun tracker ->
          Update_gen.deletions rng tracker "link" 1);
  }

(* ------------------------------------------------------------------ *)
(* Algorithms                                                           *)
(* ------------------------------------------------------------------ *)

type algo = {
  aname : string;
  supports : workload -> string option;  (** [Some reason] when unsupported *)
  maintain : Database.t -> Changes.t -> unit;
}

let algos =
  [
    {
      aname = "counting";
      supports =
        (fun w ->
          if w.recursive then
            Some "recursive program (Counting is Algorithm 4.1, nonrecursive only)"
          else None);
      maintain = (fun db c -> ignore (Counting.maintain db c));
    };
    {
      aname = "dred";
      supports =
        (fun w ->
          if Database.semantics w.db0 = Database.Duplicate_semantics then
            Some "duplicate semantics (DRed is set-semantics only)"
          else None);
      maintain = (fun db c -> ignore (Dred.maintain db c));
    };
    {
      aname = "pf";
      supports =
        (fun w ->
          if Database.semantics w.db0 = Database.Duplicate_semantics then
            Some "duplicate semantics (PF delegates to DRed, set-semantics only)"
          else None);
      maintain = (fun db c -> ignore (Pf.maintain db c));
    };
    {
      aname = "recompute";
      supports = (fun _ -> None);
      maintain = (fun db c -> Recompute.maintain db c);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

(** Canonical digest of the whole database state: every relation (base
    and derived), predicates sorted, tuples sorted with counts. *)
let state_digest db =
  let program = Database.program db in
  let preds =
    List.sort String.compare
      (Program.base_preds program @ Program.derived_preds program)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.map
             (fun p -> p ^ " = " ^ Relation.to_string (Database.relation db p))
             preds)))

type sample = {
  s_algo : string;
  s_supported : bool;
  s_reason : string;
  s_ns_per_op : float;
  s_words_per_op : float;
  s_probes : int;
  s_scanned : int;
  s_derivations : int;
  s_digest : string;
}

(** One full pass: the whole batch stream applied cumulatively to a fresh
    copy of [db0].  Returns wall seconds, minor words allocated, the work
    counter deltas and the final database. *)
let one_pass w algo =
  let db = Database.copy w.db0 in
  let before = Stats.snapshot () in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  List.iter (fun c -> algo.maintain db c) w.batches;
  let dt = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  (dt, mw, Stats.since before, db)

let run_algo w algo : sample =
  match algo.supports w with
  | Some reason ->
    {
      s_algo = algo.aname;
      s_supported = false;
      s_reason = reason;
      s_ns_per_op = 0.;
      s_words_per_op = 0.;
      s_probes = 0;
      s_scanned = 0;
      s_derivations = 0;
      s_digest = "";
    }
  | None -> begin
    let nops = float_of_int (List.length w.batches) in
    ignore (one_pass w algo) (* warm-up: demand-built indexes, caches *);
    (* Start every measurement from a compacted heap: carried-over
       garbage from the previous algorithm otherwise bleeds major-GC
       time into whichever pass it falls on. *)
    Gc.compact ();
    let best_t = ref infinity and best_mw = ref infinity in
    let work = ref None and digest = ref "" in
    for _ = 1 to 5 do
      let dt, mw, wk, db = one_pass w algo in
      if dt < !best_t then best_t := dt;
      if mw < !best_mw then best_mw := mw;
      work := Some wk;
      digest := state_digest db
    done;
    let wk = Option.get !work in
    {
      s_algo = algo.aname;
      s_supported = true;
      s_reason = "";
      s_ns_per_op = !best_t *. 1e9 /. nops;
      s_words_per_op = !best_mw /. nops;
      s_probes = wk.Stats.snap_probes;
      s_scanned = wk.Stats.snap_tuples_scanned;
      s_derivations = wk.Stats.snap_derivations;
      s_digest = !digest;
    }
  end

let sample_json s : Json.t =
  if not s.s_supported then
    Json.Obj
      [
        ("algorithm", Json.Str s.s_algo);
        ("supported", Json.Bool false);
        ("reason", Json.Str s.s_reason);
      ]
  else
    Json.Obj
      [
        ("algorithm", Json.Str s.s_algo);
        ("supported", Json.Bool true);
        ("ns_per_op", Json.Num s.s_ns_per_op);
        ("minor_words_per_op", Json.Num s.s_words_per_op);
        ("probes", Json.int s.s_probes);
        ("tuples_scanned", Json.int s.s_scanned);
        ("derivations", Json.int s.s_derivations);
        ("state_digest", Json.Str s.s_digest);
      ]

(* ------------------------------------------------------------------ *)
(* Machine-speed calibration                                            *)
(* ------------------------------------------------------------------ *)

(** A fixed, deterministic mix of allocation, hashing and hashtable
    traffic — it measures the machine (and its current thermal/steal
    state), not the kernel.  The gate divides measured ns/op by the
    calibration ratio before comparing against the baseline, so a
    throttled container or a differently-provisioned CI runner trips the
    time checks only when the {e kernel} got slower relative to the
    machine, not when the machine itself did. *)
let calibrate () =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let h = Hashtbl.create 1024 in
    let acc = ref 0 in
    for i = 0 to 300_000 do
      Hashtbl.replace h (i land 8191, i * 7) i;
      (match Hashtbl.find_opt h ((i * 13) land 8191, i) with
      | Some v -> acc := !acc + v
      | None -> incr acc)
    done;
    ignore (Sys.opaque_identity !acc);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                  *)
(* ------------------------------------------------------------------ *)

type verdict = { v_what : string; v_ok : bool; v_msg : string }

let compare_num ~tol ~what ~base ~cur =
  (* A regression is only the upward direction; tiny absolute values are
     exempt from the ratio test (timer noise on sub-microsecond ops). *)
  let ok = cur <= (base *. (1. +. tol)) +. 1e-9 || cur -. base < 64. in
  {
    v_what = what;
    v_ok = ok;
    v_msg =
      Printf.sprintf "%s: baseline %.0f, current %.0f (%+.1f%%)" what base cur
        (if base > 0. then (cur -. base) /. base *. 100. else 0.);
  }

let lookup_sample json ~workload ~algo =
  match Json.member "workloads" json with
  | Some (Json.List ws) ->
    List.find_map
      (fun w ->
        match Json.member "workload" w with
        | Some (Json.Str n) when n = workload -> (
          match Json.member "algorithms" w with
          | Some (Json.List als) ->
            List.find_map
              (fun a ->
                match Json.member "algorithm" a with
                | Some (Json.Str n) when n = algo -> Some a
                | _ -> None)
              als
          | _ -> None)
        | _ -> None)
      ws
  | _ -> None

let num_field name j =
  match Json.member name j with Some (Json.Num f) -> Some f | _ -> None

let check_against_baseline ~tol ~time_tol ~time_scale baseline (w : workload)
    (s : sample) : verdict list =
  if not s.s_supported then []
  else
    match lookup_sample baseline ~workload:w.wname ~algo:s.s_algo with
    | None ->
      [
        {
          v_what = w.wname ^ "/" ^ s.s_algo;
          v_ok = true;
          v_msg = "not in baseline (new entry)";
        };
      ]
    | Some b ->
      let tag what = Printf.sprintf "%s/%s %s" w.wname s.s_algo what in
      let digest_v =
        let base_digest =
          match Json.member "state_digest" b with
          | Some (Json.Str d) -> d
          | _ -> ""
        in
        {
          v_what = tag "state_digest";
          v_ok = String.equal base_digest s.s_digest;
          v_msg =
            (if String.equal base_digest s.s_digest then
               Printf.sprintf "%s: states bit-identical (%s)"
                 (tag "state_digest") s.s_digest
             else
               Printf.sprintf
                 "%s: FINAL STATE DIVERGED (baseline %s, current %s)"
                 (tag "state_digest") base_digest s.s_digest);
        }
      in
      let nums =
        List.filter_map
          (fun (name, tol, cur) ->
            match num_field name b with
            | Some base ->
              Some (compare_num ~tol ~what:(tag name) ~base ~cur)
            | None -> None)
          [
            (* Wall time is the only nondeterministic metric: even a
               min-of-5 swings ±30% between runs on a noisy shared
               host, so it gets its own (wider) tolerance as a backstop
               against gross regressions.  Allocation, counters and
               digests are exact, so [tol] on them catches any real
               change. *)
            ("ns_per_op", time_tol, s.s_ns_per_op /. time_scale);
            ("minor_words_per_op", tol, s.s_words_per_op);
            ("probes", tol, float_of_int s.s_probes);
            ("tuples_scanned", tol, float_of_int s.s_scanned);
            ("derivations", tol, float_of_int s.s_derivations);
          ]
      in
      digest_v :: nums

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let fmt_words w =
  if w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let run ~out ?baseline ?(tolerance = 0.25) () =
  (* One domain: minor-word and counter measurements are exact and
     deterministic only without parallel fan-out. *)
  let prev_domains = Ivm_par.domains () in
  Ivm_par.set_domains 1;
  let attribution_prev = Ivm_obs.Attribution.enabled () in
  Ivm_obs.Attribution.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Ivm_par.set_domains prev_domains;
      Ivm_obs.Attribution.set_enabled attribution_prev)
    (fun () ->
      let calib = calibrate () in
      let workloads =
        [
          w_hop_tri_hop (); w_only_tri_hop (); w_min_cost_hop ();
          w_transitive_closure ();
        ]
      in
      let results =
        List.map (fun w -> (w, List.map (run_algo w) algos)) workloads
      in
      Printf.printf "\nbench --regress (1 domain, best of 5 passes)\n";
      Printf.printf "============================================\n";
      List.iter
        (fun (w, samples) ->
          Printf.printf "\n%s — %s\n" w.wname w.wdesc;
          print_table
            [ "algorithm"; "ns/op"; "minor words/op"; "probes"; "scanned";
              "state digest" ]
            (List.map
               (fun s ->
                 if not s.s_supported then
                   [ s.s_algo; "n/a"; "n/a"; "n/a"; "n/a"; "n/a" ]
                 else
                   [
                     s.s_algo;
                     fmt_time (s.s_ns_per_op /. 1e9);
                     fmt_words s.s_words_per_op;
                     string_of_int s.s_probes;
                     string_of_int s.s_scanned;
                     String.sub s.s_digest 0 12;
                   ])
               samples))
        results;
      let doc =
        Json.Obj
          [
            ("report", Json.Str "ivm bench regress");
            ("schema", Json.int 1);
            ("domains", Json.int 1);
            ("tolerance", Json.Num tolerance);
            ("calib_ns", Json.Num calib);
            ( "workloads",
              Json.List
                (List.map
                   (fun (w, samples) ->
                     Json.Obj
                       [
                         ("workload", Json.Str w.wname);
                         ("description", Json.Str w.wdesc);
                         ("batches", Json.int (List.length w.batches));
                         ( "algorithms",
                           Json.List (List.map sample_json samples) );
                       ])
                   results) );
          ]
      in
      Out_channel.with_open_text out (fun oc ->
          output_string oc (Json.to_string doc);
          output_char oc '\n');
      Printf.printf "\nregress report written to %s\n" out;
      match baseline with
      | None -> ()
      | Some file ->
        let base = Json.of_string (In_channel.with_open_text file In_channel.input_all) in
        (* Normalize time comparisons by the calibration ratio; a
           baseline without one (or a degenerate measurement) gates on
           raw wall time. *)
        let time_scale =
          match Json.member "calib_ns" base with
          | Some (Json.Num b) when b > 0. && calib > 0. ->
            let s = calib /. b in
            if s > 0.1 && s < 10. then s else 1.
          | _ -> 1.
        in
        if time_scale <> 1. then
          Printf.printf
            "\ncalibration: fixed reference loop took %.2fx the baseline's \
             time on this machine (time gates normalized by that ratio)\n"
            time_scale;
        let time_tol =
          let default = Float.max tolerance 0.5 in
          match Sys.getenv_opt "IVM_REGRESS_TIME_TOLERANCE" with
          | Some s ->
            (match float_of_string_opt s with
            | Some t when t >= 0. -> t
            | _ -> default)
          | None -> default
        in
        let verdicts =
          List.concat_map
            (fun (w, samples) ->
              List.concat_map
                (check_against_baseline ~tol:tolerance ~time_tol ~time_scale
                   base w)
                samples)
            results
        in
        let failures = List.filter (fun v -> not v.v_ok) verdicts in
        Printf.printf "\nbaseline gate vs %s (tolerance %.0f%%): %d checks, %d failed\n"
          file (tolerance *. 100.) (List.length verdicts) (List.length failures);
        List.iter
          (fun v ->
            if not v.v_ok then Printf.printf "  REGRESSION %s\n" v.v_msg)
          failures;
        if failures <> [] then exit 1;
        Printf.printf "  all within tolerance; all final states bit-identical\n")
