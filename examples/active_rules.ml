(* Active rules over maintained views — the paper's §1 application
   "active database (a rule may fire when a particular tuple is inserted
   into a view)" [SPAM91, RS93].

   A fraud-ish monitoring scenario over a payments graph:
     transfer(from, to, amount)            base relation (the stream)
     big(F, T)          — single transfers over the threshold
     relay(A, B, C)     — money moved A→B→C in two big transfers
     exposure(A, S)     — total amount leaving each account (SUM)

   Triggers subscribe to the *views*: the maintenance algorithm's output
   delta IS the event stream, so alerting costs nothing beyond maintaining
   the views.

   Run with:  dune exec examples/active_rules.exe *)

module Vm = Ivm.View_manager
module Triggers = Ivm.Triggers
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Relation = Ivm_relation.Relation

let transfer f t a = Tuple.of_list Value.[ str f; str t; int a ]

let () =
  let vm =
    Vm.of_source ~semantics:Ivm_eval.Database.Duplicate_semantics
      ~algorithm:Vm.Counting
      {|
        big(F, T) :- transfer(F, T, A), A > 900.
        relay(A, B, C) :- big(A, B), big(B, C).
        exposure(A, S) :- groupby(transfer(A, T, X), [A], S = sum(X)).
      |}
      ~extra_base:[ ("transfer", 3) ]
  in
  let tr = Triggers.create vm in

  (* rule 1: alert on every relay pattern the instant it appears *)
  let _ =
    Triggers.on_insertion tr "relay" (fun t _ ->
        Format.printf "  [ALERT] relay pattern %a@." Tuple.pp t)
  in
  (* rule 2: watch one account's exposure; the delta carries the old tuple
     out (−) and the new tuple in (+) *)
  let _ =
    Triggers.subscribe tr "exposure" (fun delta ->
        Relation.iter
          (fun t c ->
            if c > 0 && Value.equal (Tuple.get t 0) (Value.str "mallory") then
              Format.printf "  [watch] mallory's exposure is now %a@." Value.pp
                (Tuple.get t 1))
          delta)
  in
  (* rule 3: escalate when a relay is *retracted* (e.g. a corrected feed) *)
  let _ =
    Triggers.on_deletion tr "relay" (fun t _ ->
        Format.printf "  [note] relay %a retracted@." Tuple.pp t)
  in

  let feed f t a =
    Format.printf "transfer(%s, %s, %d)@." f t a;
    ignore (Triggers.insert tr "transfer" [ transfer f t a ])
  in
  feed "alice" "bob" 120;
  feed "mallory" "shell1" 1000;
  Format.printf "-- nothing big from shell1 yet --@.";
  feed "shell1" "offshore" 950;
  feed "mallory" "shell2" 990;
  feed "shell2" "offshore" 1500;

  Format.printf "@.Correcting the feed: the 950 transfer was a typo (95).@.";
  ignore
    (Triggers.update tr "transfer"
       ~old_tuple:(transfer "shell1" "offshore" 950)
       ~new_tuple:(transfer "shell1" "offshore" 95));

  Format.printf "@.Final state:@.";
  Format.printf "  relay = %a@." Relation.pp (Vm.relation vm "relay");
  Format.printf "  exposure = %a@." Relation.pp (Vm.relation vm "exposure");
  Format.printf "  %d batches recorded in the trigger history@."
    (List.length (Triggers.history tr));
  match Vm.audit vm with
  | Ok () -> Format.printf "audit: views are exact@."
  | Error msg -> Format.printf "audit FAILED:@.%s@." msg
