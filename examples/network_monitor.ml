(* Network monitoring — the scenario the paper's running example sketches,
   at a realistic scale.

   A routing daemon materializes, over a live `link(src, dst, cost)` table:
     - hop:           2-link reachability with path cost,
     - min_cost_hop:  cheapest 2-link route per node pair (Example 6.2),
     - tri_hop:       3-link reachability,
     - only_tri_hop:  pairs needing exactly three links (Example 6.1).

   Links flap (delete + insert with a new cost) continuously; the counting
   algorithm maintains all four views per event, and we compare the work
   against recomputing from scratch.

   Run with:  dune exec examples/network_monitor.exe *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Relation = Ivm_relation.Relation
module Stats = Ivm_eval.Stats
module Prng = Ivm_workload.Prng
module Graph_gen = Ivm_workload.Graph_gen

let nodes = 60
let n_links = 240
let events = 200

let () =
  let rng = Prng.create 2026 in
  let edges = Graph_gen.random rng ~nodes ~edges:n_links in
  let links = Graph_gen.costed_tuples rng ~max_cost:20 edges in
  let vm =
    Vm.create ~semantics:Ivm_eval.Database.Set_semantics ~algorithm:Vm.Counting
      ~facts:[ ("link", links) ]
      (Ivm_datalog.Parser.parse_rules
         {|
           hop(S, D, C1 + C2) :- link(S, I, C1), link(I, D, C2).
           min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
           tri_hop(S, D) :- hop(S, I, C), link(I, D, C2).
           only_tri_hop(S, D) :- tri_hop(S, D), not two_hop(S, D).
           two_hop(S, D) :- hop(S, D, C).
         |})
  in
  Format.printf "network: %d nodes, %d links@." nodes
    (Relation.cardinal (Vm.relation vm "link"));
  List.iter
    (fun v ->
      Format.printf "  |%s| = %d@." v (Relation.cardinal (Vm.relation vm v)))
    [ "hop"; "min_cost_hop"; "tri_hop"; "only_tri_hop" ];

  (* Flap links: pick a stored link, delete it, reinsert with a new cost. *)
  let program = Vm.program vm in
  Stats.reset ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to events do
    let stored = Vm.relation vm "link" in
    let all = Relation.fold (fun t _ acc -> t :: acc) stored [] in
    let victim = Prng.pick rng all in
    let newcost = Value.Int (1 + Prng.int rng 20) in
    let changes =
      Changes.update program "link" ~old_tuple:victim
        ~new_tuple:(Tuple.make [| Tuple.get victim 0; Tuple.get victim 1; newcost |])
    in
    ignore (Vm.apply vm changes)
  done;
  let incr_time = Unix.gettimeofday () -. t0 in
  let incr_work = Stats.derivations () in

  Format.printf "@.%d link flaps maintained incrementally:@." events;
  Format.printf "  time:        %.3f s (%.2f ms/event)@." incr_time
    (1000. *. incr_time /. float_of_int events);
  Format.printf "  derivations: %d (%.1f/event)@." incr_work
    (float_of_int incr_work /. float_of_int events);

  (* What would recomputation have cost per event? *)
  let db = Vm.database vm in
  Stats.reset ();
  let t0 = Unix.gettimeofday () in
  let fresh = Ivm_eval.Database.copy db in
  Ivm_eval.Seminaive.evaluate fresh;
  let re_time = Unix.gettimeofday () -. t0 in
  let re_work = Stats.derivations () in
  Format.printf "@.one full recomputation (what each event would cost):@.";
  Format.printf "  time:        %.3f s@." re_time;
  Format.printf "  derivations: %d@." re_work;
  Format.printf "  ⇒ incremental saves ~%.0fx derivations per event@."
    (float_of_int re_work /. (float_of_int incr_work /. float_of_int events));

  match Vm.audit vm with
  | Ok () -> Format.printf "@.audit: views are exact after %d events@." events
  | Error msg -> Format.printf "@.audit FAILED:@.%s@." msg
