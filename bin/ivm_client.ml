(* ivm-client: command-line client for ivm-serve (docs/PROTOCOL.md).

     $ dune exec bin/ivm_client.exe -- --port 7401
     ivm[7401]> query hop(a, X)
     ivm[7401]> apply +link(a,b); -link(b,c)
     ivm[7401]> subscribe hop
     ivm[7401]> await

   'help' works offline; the connection is only opened when the first
   command needs the server. *)

module Client = Ivm_serve.Client
module Protocol = Ivm_serve.Protocol
module Relation = Ivm_relation.Relation
module Vm = Ivm.View_manager

let help_text =
  "  query BODY       run an ad-hoc Datalog query against the server's\n\
  \                   published snapshot (e.g. query hop(a, X))\n\
  \  apply ±FACT; ±FACT; ...  submit inserts (+) and deletes (-) as one\n\
  \                   atomic batch; blocks until its group commit is\n\
  \                   durable (e.g. apply +link(a,b); -link(b,c).)\n\
  \  subscribe PRED   ask for per-batch delta pushes of a view\n\
  \  await [N]        wait for N subscribed delta pushes (default 1)\n\
  \  status           server and view-manager status (JSON)\n\
  \  ping             round-trip check\n\
  \  help             this text\n\
  \  quit             exit (closes the session politely)\n\
  \    (--timings makes apply print the server's per-stage latency\n\
  \    breakdown: decode, queue, normalize, wal_append, maintain,\n\
  \    group_wait, fsync, publish)"

(* "+link(a,b); -link(b,c)" → one batch of per-predicate signed deltas *)
let parse_batch (body : string) : Protocol.changes =
  let body = String.trim body in
  let body =
    if String.length body > 0 && body.[String.length body - 1] = '.' then
      String.sub body 0 (String.length body - 1)
    else body
  in
  let entries =
    String.split_on_char ';' body
    |> List.filter_map (fun part ->
           let part = String.trim part in
           if part = "" then None
           else if String.length part < 2 || (part.[0] <> '+' && part.[0] <> '-')
           then failwith "apply: each entry must be +fact or -fact"
           else
             let sign = if part.[0] = '+' then 1 else -1 in
             match Vm.parse_fact (String.sub part 1 (String.length part - 1)) with
             | Ok (pred, tup) -> Some (pred, (tup, sign))
             | Error msg -> failwith msg)
  in
  if entries = [] then failwith "usage: apply +fact; -fact; ...";
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun (p, e) ->
      Hashtbl.replace tbl p (e :: Option.value ~default:[] (Hashtbl.find_opt tbl p)))
    entries;
  Hashtbl.fold
    (fun pred es acc ->
      let arity =
        match es with (t, _) :: _ -> Ivm_relation.Tuple.arity t | [] -> 0
      in
      (pred, Relation.of_list arity (List.rev es)) :: acc)
    tbl []
  |> List.sort compare

let print_changes (changes : Protocol.changes) =
  if changes = [] then Format.printf "(no view changed)@."
  else
    List.iter
      (fun (view, delta) -> Format.printf "Δ%s = %a@." view Relation.pp delta)
      changes

let starts_with prefix line =
  String.length line > String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let rest prefix line =
  String.trim (String.sub line (String.length prefix)
                  (String.length line - String.length prefix))

let print_timings (timings : (string * int) list) =
  let total = List.fold_left (fun acc (_, ns) -> acc + ns) 0 timings in
  List.iter
    (fun (stage, ns) ->
      Format.printf "  %-10s %8.1f us  %4.1f%%@." stage
        (float_of_int ns /. 1e3)
        (if total = 0 then 0. else 100. *. float_of_int ns /. float_of_int total))
    timings;
  Format.printf "  %-10s %8.1f us@." "total" (float_of_int total /. 1e3)

let execute ~timings (conn : Client.t Lazy.t) line =
  let line = String.trim line in
  if line = "" then ()
  else if line = "help" then print_endline help_text
  else if line = "ping" then begin
    Client.ping (Lazy.force conn);
    Format.printf "pong@."
  end
  else if line = "status" then print_endline (Client.status (Lazy.force conn))
  else if starts_with "query " line then begin
    let columns, rows = Client.query (Lazy.force conn) (rest "query " line) in
    Format.printf "%s@." (String.concat ", " columns);
    Format.printf "%a@." Relation.pp rows
  end
  else if starts_with "apply " line then begin
    let batch = parse_batch (rest "apply " line) in
    if timings then begin
      let seq, deltas, stage_ns = Client.apply_timed (Lazy.force conn) batch in
      Format.printf "committed at seq %d@." seq;
      print_changes deltas;
      print_timings stage_ns
    end
    else begin
      let seq, deltas = Client.apply (Lazy.force conn) batch in
      Format.printf "committed at seq %d@." seq;
      print_changes deltas
    end
  end
  else if starts_with "subscribe " line then begin
    let pred = rest "subscribe " line in
    Client.subscribe (Lazy.force conn) pred;
    Format.printf "subscribed to %s@." pred
  end
  else if line = "await" || starts_with "await " line then begin
    let n =
      if line = "await" then 1
      else match int_of_string_opt (rest "await " line) with
        | Some n when n > 0 -> n
        | _ -> failwith "usage: await [N]"
    in
    for _ = 1 to n do
      match Client.next_delta ~timeout:5.0 (Lazy.force conn) with
      | Some (seq, pred, delta) ->
        Format.printf "Δ%s @@ seq %d = %a@." pred seq Relation.pp delta
      | None -> Format.printf "(no delta within 5s)@."
    done
  end
  else Format.printf "unknown command (try 'help')@."

let protect ~timings conn line =
  try execute ~timings conn line with
  | Client.Server_error (code, msg) ->
    Format.printf "server error (%s): %s@." (Protocol.error_code_name code) msg
  | Client.Unexpected msg -> Format.printf "protocol error: %s@." msg
  | Failure msg -> Format.printf "error: %s@." msg
  | Ivm_wire.Wire.Corrupt msg -> Format.printf "protocol error: %s@." msg
  | Ivm_wire.Frame.Closed -> Format.printf "error: server closed the connection@."
  | Unix.Unix_error (e, _, _) ->
    Format.printf "connection error: %s@." (Unix.error_message e)

let repl ~timings conn port interactive =
  try
    while true do
      if interactive then begin
        Printf.printf "ivm[%d]> " port;
        flush stdout
      end;
      let line = input_line stdin in
      if String.trim line = "quit" || String.trim line = "exit" then raise Exit;
      protect ~timings conn line
    done
  with End_of_file | Exit -> ()

open Cmdliner

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let port_arg =
  Arg.(
    value & opt int 7401
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let token_arg =
  Arg.(
    value & opt string ""
    & info [ "auth" ] ~docv:"TOKEN" ~doc:"Auth token for the handshake.")

let command_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "e"; "execute" ] ~docv:"CMD"
        ~doc:"Execute a client command non-interactively (repeatable); the \
              REPL is skipped.")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:
          "Attach a trace context to every apply and print the server's \
           per-stage latency breakdown (the same chain GET /requestz \
           serves).")

let run host port token commands timings =
  let conn = lazy (Client.connect ~host ~token ~port ()) in
  (try
     if commands = [] then repl ~timings conn port (Unix.isatty Unix.stdin)
     else List.iter (protect ~timings conn) commands
   with e ->
     if Lazy.is_val conn then Client.close (Lazy.force conn);
     raise e);
  if Lazy.is_val conn then Client.close (Lazy.force conn)

let cmd =
  let doc = "command-line client for ivm-serve" in
  Cmd.v
    (Cmd.info "ivm-client" ~doc)
    Term.(
      const run $ host_arg $ port_arg $ token_arg $ command_arg $ timings_arg)

let () = exit (Cmd.eval cmd)
