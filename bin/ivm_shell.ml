(* ivm-shell: an interactive materialized-view database.

   Load a Datalog program (rules + facts) or an SQL script, then stream
   updates against the base relations; every materialized view is kept
   exact by the configured maintenance algorithm.

     $ dune exec bin/ivm_shell.exe -- examples.dl
     ivm> +link(a, b).
     ivm> -link(b, c).
     ivm> show hop
     ivm> addrule far(X,Y) :- hop(X,Z), hop(Z,Y).
     ivm> audit

   Commands:
     +FACT.              insert a base fact          (e.g. +link(a,b).)
     -FACT.              delete a base fact
     show [PRED]         print one or all relations
     program             print the current rules
     addrule RULE        add a rule, maintain views incrementally
     delrule RULE        remove a rule, maintain views incrementally
     audit               compare maintained views against recomputation
     stats               cumulative evaluator work counters
     open DIR            open/create a durable store (snapshot + WAL)
     log status          durable-store status (seq, snapshot, log sizes)
     compact             fold the WAL into a fresh snapshot
     help                this text
     quit                exit *)

module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Relation = Ivm_relation.Relation
module Tuple = Ivm_relation.Tuple
module Parser = Ivm_datalog.Parser
module Program = Ivm_datalog.Program
module Stats = Ivm_eval.Stats

let help_text =
  "  +fact.           insert a base fact (e.g. +link(a,b).)\n\
  \  -fact.           delete a base fact\n\
  \  apply ±FACT; ±FACT; ...  apply several inserts (+) and deletes (-)\n\
  \                   as one atomic batch: one maintenance run, one\n\
  \                   write-ahead-log record (e.g. apply +link(a,b); -link(b,c).)\n\
  \  ?QUERY           run an ad-hoc query (e.g. ?hop(a, X), link(X, Y))\n\
  \  show [pred]      print one or all relations\n\
  \  program          print the current rules\n\
  \  addrule RULE     add a rule incrementally\n\
  \  delrule RULE     remove a rule incrementally\n\
  \  algorithm NAME   switch the maintenance algorithm in place: counting,\n\
  \                   dred, recursive-counting, recompute or auto (counts\n\
  \                   are re-derived when the target needs them)\n\
  \  audit            check views against recomputation\n\
  \  stats            evaluator work counters\n\
  \  metrics          dump the full metrics registry\n\
  \  trace on FILE    start tracing maintenance spans to FILE (Chrome\n\
  \                   trace_event JSON — load in chrome://tracing/Perfetto)\n\
  \  trace off        stop tracing and flush the file\n\
  \  trace status     is tracing on, and where\n\
  \  explain          program structure, strata, sizes\n\
  \  explain last     per-rule cost table of the most recent maintenance\n\
  \                   batch (wall time, Δ in/out, probes, index builds)\n\
  \  explain N        the same table N batches back (0 = most recent;\n\
  \                   an 8-batch history is kept)\n\
  \  provenance on/off/status  derivation-provenance capture: bounded\n\
  \                   per-tuple supports + batch lineage (backs why/lineage)\n\
  \  why FACT.        derivation tree of a view tuple down to base facts,\n\
  \                   from the captured supports (needs 'provenance on')\n\
  \  why not FACT.    candidate rule instantiations for an absent tuple,\n\
  \                   each with its first failing or missing subgoal\n\
  \  lineage FACT.    batch history of a tuple: first derived, last deleted\n\
  \  monitor start PORT  serve /metrics /healthz /statusz /trace /why on\n\
  \                   localhost:PORT (HTTP; Prometheus + JSON)\n\
  \  monitor stop     stop the monitoring endpoint\n\
  \  save FILE        dump rules+facts to a reloadable file\n\
  \  open DIR         open an existing durable store (replay its log), or\n\
  \                   turn the current database durable in a fresh DIR\n\
  \  log status       durable store status: sequence number, snapshot and\n\
  \                   write-ahead log sizes\n\
  \  compact          fold the write-ahead log into a fresh snapshot\n\
  \  close            detach the durable store (keep running in memory;\n\
  \                   the directory stays reopenable)\n\
  \  crash [truncate N | flip K]  simulate a crash: drop the store handle\n\
  \                   without snapshotting and optionally damage the WAL\n\
  \                   tail — N bytes cut off the end, or the byte at\n\
  \                   offset K bit-flipped ('open DIR' then recovers;\n\
  \                   this is the statecheck harness's fault injector)\n\
  \  help             this text\n\
  \  quit             exit"

let show_relation vm name =
  Format.printf "%s = %a@." name Relation.pp (Vm.relation vm name)

let show_all vm =
  let program = Vm.program vm in
  List.iter
    (fun p -> show_relation vm p)
    (Program.base_preds program @ Program.derived_in_stratum_order program)

let parse_fact src =
  match Parser.parse_program src with
  | [ Ivm_datalog.Ast.Sfact (pred, vals) ] -> (pred, Tuple.of_list vals)
  | _ -> failwith "expected a single ground fact, e.g. link(a,b)."

let apply_and_report vm changes =
  let deltas = Vm.apply vm changes in
  if deltas = [] then Format.printf "(no view changed)@."
  else
    List.iter
      (fun (view, delta) ->
        Format.printf "Δ%s = %a@." view Relation.pp delta)
      deltas

(* One monitoring endpoint per shell process.  The status callback reads
   through the ref so 'open DIR' (which swaps the manager) is reflected
   on /statusz without restarting the server. *)
let monitor_server : Ivm_monitor.Monitor.t option ref = ref None

let monitor_config (vmref : Vm.t ref) =
  {
    Ivm_monitor.Monitor.status = (fun () -> Vm.status_json !vmref);
    before_metrics = Stats.sync;
    explain = Some (fun q -> Vm.explain_json !vmref q);
  }

let start_monitor vmref port =
  match !monitor_server with
  | Some srv ->
    Format.printf "monitor already running on port %d ('monitor stop' first)@."
      (Ivm_monitor.Monitor.port srv)
  | None ->
    let srv = Ivm_monitor.Monitor.start ~config:(monitor_config vmref) ~port () in
    monitor_server := Some srv;
    Format.printf
      "monitoring on http://127.0.0.1:%d (/metrics /healthz /statusz /trace \
       /why)@."
      (Ivm_monitor.Monitor.port srv)

let sql_keywords = [ "select"; "insert"; "delete"; "update"; "create" ]

let looks_like_sql line =
  match String.index_opt line ' ' with
  | Some i -> List.mem (String.lowercase_ascii (String.sub line 0 i)) sql_keywords
  | None -> false

(* [vmref] because 'open DIR' on an existing store replaces the manager
   with the recovered one. *)
let execute ?sql (vmref : Vm.t ref) line =
  let vm = !vmref in
  let line = String.trim line in
  if line = "" then ()
  else if (match sql with Some _ -> looks_like_sql line | None -> false) then begin
    match sql with
    | Some session ->
      Format.printf "%a" Ivm_sql.Sql_session.pp_outcome
        (Ivm_sql.Sql_session.exec session line)
    | None -> assert false
  end
  else if line = "help" then print_endline help_text
  else if line = "program" then
    Format.printf "%a@." Ivm_datalog.Pretty.pp_program (Program.rules (Vm.program vm))
  else if line = "audit" then begin
    match Vm.audit vm with
    | Ok () -> Format.printf "ok: views match recomputation@."
    | Error msg -> Format.printf "MISMATCH:@.%s@." msg
  end
  else if line = "stats" then
    Format.printf "%a@." Stats.pp_snapshot (Stats.snapshot ())
  else if line = "metrics" then begin
    Stats.sync ();
    Format.printf "%a@." Ivm_obs.Metrics.pp ()
  end
  else if line = "trace status" then begin
    if Ivm_obs.Trace.enabled () then
      Format.printf "tracing: on%s@."
        (match Ivm_obs.Trace.file_path () with
        | Some p -> " → " ^ p
        | None -> " (ring buffer only)")
    else Format.printf "tracing: off@."
  end
  else if line = "trace off" then begin
    match Ivm_obs.Trace.disable () with
    | Some path -> Format.printf "trace written to %s@." path
    | None -> Format.printf "tracing stopped@."
  end
  else if String.length line > 9 && String.sub line 0 9 = "trace on " then begin
    let path = String.trim (String.sub line 9 (String.length line - 9)) in
    Ivm_obs.Trace.enable_file path;
    Format.printf
      "tracing to %s (Chrome trace_event format; 'trace off' to flush)@." path
  end
  else if line = "explain" then begin
    let program = Vm.program vm in
    Format.printf "algorithm: %s (resolves to %s), semantics: %s@."
      (Vm.algorithm_name (Vm.algorithm vm))
      (Vm.algorithm_name (Vm.resolve vm))
      (match Vm.semantics vm with
      | Ivm_eval.Database.Set_semantics -> "set"
      | Ivm_eval.Database.Duplicate_semantics -> "duplicate");
    List.iter
      (fun p ->
        let info = Program.pred_info program p in
        Format.printf "  %-16s stratum %d%s  |%s| = %d%s@." p
          info.Program.stratum
          (if info.Program.is_base then " (base)    "
           else if info.Program.recursive then " recursive "
           else "           ")
          p
          (Relation.cardinal (Vm.relation vm p))
          (if info.Program.is_base then ""
           else Printf.sprintf "  (%d rules)" (List.length info.Program.defining_rules)))
      (Program.base_preds program @ Program.derived_in_stratum_order program)
  end
  else if line = "explain last" then begin
    match Ivm_obs.Attribution.last () with
    | Some batch ->
      Format.printf "%a@." (fun ppf b -> Ivm_obs.Attribution.pp_batch ppf b) batch
    | None ->
      if Ivm_obs.Attribution.enabled () then
        Format.printf "no maintenance batch recorded yet@."
      else
        Format.printf
          "attribution is disabled (IVM_ATTRIBUTION=0); no batches recorded@."
  end
  else if String.length line > 8 && String.sub line 0 8 = "explain " then begin
    (* 'explain last' is handled above; here: 'explain N', N batches back *)
    let arg = String.trim (String.sub line 8 (String.length line - 8)) in
    let recent = Ivm_obs.Attribution.recent () in
    let available =
      match List.length recent with
      | 0 -> "none recorded yet"
      | 1 -> "only 0 available"
      | n -> Printf.sprintf "0..%d available" (n - 1)
    in
    match int_of_string_opt arg with
    | Some n when n >= 0 -> (
      match List.nth_opt recent n with
      | Some batch ->
        Format.printf "%a@." (fun ppf b -> Ivm_obs.Attribution.pp_batch ppf b) batch
      | None -> Format.printf "no batch %d back (%s)@." n available)
    | _ ->
      Format.printf
        "usage: explain | explain last | explain N (0 = most recent; %s)@."
        available
  end
  else if line = "provenance on" then begin
    Vm.enable_provenance vm;
    Format.printf
      "provenance capture on: supports bootstrapped for %d view tuples@."
      (Ivm_prov.Prov.tuples_tracked ())
  end
  else if line = "provenance off" then begin
    Vm.disable_provenance vm;
    Format.printf "provenance capture off (store cleared)@."
  end
  else if line = "provenance status" then
    Format.printf "%s@."
      (Ivm_obs.Json.to_string (Ivm_prov.Prov.status_json ()))
  else if String.length line > 8 && String.sub line 0 8 = "why not " then begin
    match Vm.parse_fact (String.sub line 8 (String.length line - 8)) with
    | Error e -> Format.printf "error: %s@." e
    | Ok (pred, tup) ->
      let access = Vm.provenance_access vm in
      Format.printf "%a@."
        (Ivm_prov.Prov_query.pp_whynot pred tup)
        (Ivm_prov.Prov_query.whynot access pred tup)
  end
  else if String.length line > 4 && String.sub line 0 4 = "why " then begin
    match Vm.parse_fact (String.sub line 4 (String.length line - 4)) with
    | Error e -> Format.printf "error: %s@." e
    | Ok (pred, tup) ->
      if not (Vm.provenance_enabled vm) then
        Format.printf
          "note: provenance capture is off — derivations cannot be expanded \
           ('provenance on' first)@.";
      let access = Vm.provenance_access vm in
      Format.printf "%a@." Ivm_prov.Prov_query.pp_why
        (Ivm_prov.Prov_query.why access pred tup)
  end
  else if String.length line > 8 && String.sub line 0 8 = "lineage " then begin
    match Vm.parse_fact (String.sub line 8 (String.length line - 8)) with
    | Error e -> Format.printf "error: %s@." e
    | Ok (pred, tup) ->
      let access = Vm.provenance_access vm in
      Format.printf "%a@." Ivm_prov.Prov_query.pp_lineage
        (Ivm_prov.Prov_query.lineage access pred tup)
  end
  else if String.length line > 14 && String.sub line 0 14 = "monitor start " then begin
    let port_s = String.trim (String.sub line 14 (String.length line - 14)) in
    match int_of_string_opt port_s with
    | Some port when port >= 0 && port < 65536 -> start_monitor vmref port
    | _ -> Format.printf "usage: monitor start PORT (0 picks a free port)@."
  end
  else if line = "monitor stop" then begin
    match !monitor_server with
    | Some srv ->
      Ivm_monitor.Monitor.stop srv;
      monitor_server := None;
      Format.printf "monitor stopped@."
    | None -> Format.printf "monitor is not running@."
  end
  else if String.length line > 5 && String.sub line 0 5 = "save " then begin
    let path = String.trim (String.sub line 5 (String.length line - 5)) in
    Out_channel.with_open_text path (fun oc ->
        let ppf = Format.formatter_of_out_channel oc in
        Ivm_eval.Database.dump ppf (Vm.database vm);
        Format.pp_print_flush ppf ());
    Format.printf "saved to %s@." path
  end
  else if line = "log status" then begin
    match Vm.store_status vm with
    | None -> Format.printf "not durable (use 'open DIR')@."
    | Some st -> Format.printf "%a@." Ivm_store.Store.pp_status st
  end
  else if line = "compact" then begin
    Vm.compact vm;
    match Vm.store_status vm with
    | Some st -> Format.printf "compacted: %a@." Ivm_store.Store.pp_status st
    | None -> ()
  end
  else if String.length line > 5 && String.sub line 0 5 = "open " then begin
    let dir = String.trim (String.sub line 5 (String.length line - 5)) in
    if Ivm_store.Store.exists dir then begin
      let recovered, recovery = Vm.open_durable ~algorithm:(Vm.algorithm vm) dir in
      Vm.close_store vm;
      vmref := recovered;
      Format.printf "opened %s: %a@." dir Ivm_store.Store.pp_recovery recovery
    end
    else begin
      Vm.make_durable vm ~dir;
      Format.printf "initialized store %s; changes are now write-ahead logged@." dir
    end
  end
  else if String.length line > 6 && String.sub line 0 6 = "apply " then begin
    let body = String.trim (String.sub line 6 (String.length line - 6)) in
    let body =
      (* one optional trailing period closes the whole batch *)
      if String.length body > 0 && body.[String.length body - 1] = '.' then
        String.sub body 0 (String.length body - 1)
      else body
    in
    let entries =
      String.split_on_char ';' body
      |> List.filter_map (fun part ->
             let part = String.trim part in
             if part = "" then None
             else if String.length part < 2 || (part.[0] <> '+' && part.[0] <> '-')
             then failwith "apply: each entry must be +fact or -fact"
             else begin
               let sign = if part.[0] = '+' then 1 else -1 in
               let pred, tup =
                 parse_fact (String.sub part 1 (String.length part - 1) ^ ".")
               in
               Some (pred, (tup, sign))
             end)
    in
    if entries = [] then failwith "usage: apply +fact; -fact; ..."
    else begin
      let tbl = Hashtbl.create 7 in
      List.iter
        (fun (p, e) ->
          Hashtbl.replace tbl p
            (e :: Option.value ~default:[] (Hashtbl.find_opt tbl p)))
        entries;
      let per_pred =
        Hashtbl.fold (fun p es acc -> (p, List.rev es) :: acc) tbl []
      in
      apply_and_report vm
        (Changes.of_list (Vm.program vm) (List.sort compare per_pred))
    end
  end
  else if String.length line > 10 && String.sub line 0 10 = "algorithm " then begin
    let name = String.trim (String.sub line 10 (String.length line - 10)) in
    match Vm.algorithm_of_string name with
    | Some a ->
      Vm.set_algorithm vm a;
      Format.printf "algorithm: %s (resolves to %s)@."
        (Vm.algorithm_name (Vm.algorithm vm))
        (Vm.algorithm_name (Vm.resolve vm))
    | None ->
      Format.printf
        "unknown algorithm %s (counting, dred, recursive-counting, recompute, \
         auto)@."
        name
  end
  else if line = "close" then begin
    match Vm.durable_dir vm with
    | Some dir ->
      Vm.close_store vm;
      Format.printf "store %s detached; running in memory@." dir
    | None -> Format.printf "not durable (nothing to close)@."
  end
  else if line = "crash" || (String.length line > 6 && String.sub line 0 6 = "crash ")
  then begin
    match Vm.durable_dir vm with
    | None -> Format.printf "not durable (nothing to crash out of)@."
    | Some dir ->
      let arg =
        if line = "crash" then ""
        else String.trim (String.sub line 6 (String.length line - 6))
      in
      Vm.close_store vm;
      let wal = Ivm_store.Store.wal_file dir in
      (match String.split_on_char ' ' arg |> List.filter (fun s -> s <> "") with
      | [] -> ()
      | [ "truncate"; n ] ->
        let n = int_of_string n in
        let size = (Unix.stat wal).Unix.st_size in
        Unix.truncate wal (max 0 (size - n))
      | [ "flip"; k ] ->
        let k = int_of_string k in
        let fd = Unix.openfile wal [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let b = Bytes.create 1 in
            ignore (Unix.lseek fd k Unix.SEEK_SET);
            if Unix.read fd b 0 1 = 1 then begin
              Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
              ignore (Unix.lseek fd k Unix.SEEK_SET);
              ignore (Unix.write fd b 0 1)
            end)
      | _ -> failwith "usage: crash [truncate N | flip K]");
      Format.printf "crashed: store handle dropped%s ('open %s' recovers)@."
        (if arg = "" then "" else " — " ^ arg)
        dir
  end
  else if line = "show" then show_all vm
  else if String.length line > 5 && String.sub line 0 5 = "show " then
    show_relation vm (String.trim (String.sub line 5 (String.length line - 5)))
  else if String.length line > 8 && String.sub line 0 8 = "addrule " then begin
    Vm.add_rule_text vm (String.sub line 8 (String.length line - 8));
    Format.printf "rule added; views maintained@."
  end
  else if String.length line > 8 && String.sub line 0 8 = "delrule " then begin
    Vm.remove_rule_text vm (String.sub line 8 (String.length line - 8));
    Format.printf "rule removed; views maintained@."
  end
  else if line.[0] = '?' then begin
    let q = String.sub line 1 (String.length line - 1) in
    let result = Ivm_eval.Query.run_text (Vm.database vm) q in
    Format.printf "%a@." Ivm_eval.Query.pp result
  end
  else if line.[0] = '+' then begin
    let pred, tup = parse_fact (String.sub line 1 (String.length line - 1)) in
    apply_and_report vm (Changes.insertions (Vm.program vm) pred [ tup ])
  end
  else if line.[0] = '-' then begin
    let pred, tup = parse_fact (String.sub line 1 (String.length line - 1)) in
    apply_and_report vm (Changes.deletions (Vm.program vm) pred [ tup ])
  end
  else Format.printf "unknown command (try 'help')@."

let protect ?sql vm line =
  try execute ?sql vm line with
  | Ivm_sql.Sql_session.Session_error msg -> Format.printf "sql error: %s@." msg
  | Ivm_sql.Sql_parser.Parse_error msg | Ivm_sql.Sql_translate.Translate_error msg ->
    Format.printf "sql error: %s@." msg
  | Ivm_sql.Sql_lexer.Lex_error msg -> Format.printf "sql error: %s@." msg
  | Failure msg -> Format.printf "error: %s@." msg
  | Sys_error msg -> Format.printf "error: %s@." msg
  | Parser.Parse_error msg | Ivm_datalog.Lexer.Lex_error msg ->
    Format.printf "parse error: %s@." msg
  | Changes.Invalid_changes msg -> Format.printf "invalid change: %s@." msg
  | Ivm.Counting.Recursive_program msg -> Format.printf "error: %s@." msg
  | Ivm.Rule_changes.Unknown_rule msg -> Format.printf "no such rule: %s@." msg
  | Program.Program_error msg -> Format.printf "program error: %s@." msg
  | Ivm_datalog.Safety.Unsafe msg -> Format.printf "unsafe rule: %s@." msg
  | Ivm_datalog.Depgraph.Not_stratifiable msg ->
    Format.printf "not stratifiable: %s@." msg
  | Ivm_store.Store.Corrupt msg -> Format.printf "store corrupt: %s@." msg
  | Invalid_argument msg -> Format.printf "error: %s@." msg

let repl ?sql vm interactive =
  if interactive then begin
    print_endline "ivm — incremental view maintenance shell (try 'help')";
    Format.printf "algorithm: %s, %d rules loaded@."
      (Vm.algorithm_name (Vm.algorithm !vm))
      (List.length (Program.rules (Vm.program !vm)))
  end;
  try
    while true do
      if interactive then begin
        print_string "ivm> ";
        flush stdout
      end;
      let line = input_line stdin in
      if String.trim line = "quit" || String.trim line = "exit" then raise Exit;
      protect ?sql vm line
    done
  with End_of_file | Exit -> ()

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Program to load: Datalog rules and facts, or \
                                 (with $(b,--sql)) an SQL script.")

let sql_flag =
  Arg.(value & flag & info [ "sql" ] ~doc:"Treat $(docv) as an SQL script.")

let semantics_arg =
  let enum_conv =
    Arg.enum
      [ ("set", Ivm_eval.Database.Set_semantics);
        ("duplicate", Ivm_eval.Database.Duplicate_semantics) ]
  in
  Arg.(
    value
    & opt enum_conv Ivm_eval.Database.Set_semantics
    & info [ "s"; "semantics" ] ~docv:"SEM"
        ~doc:"View semantics: $(b,set) or $(b,duplicate).")

let algorithm_arg =
  let enum_conv =
    Arg.enum
      [ ("auto", Vm.Auto); ("counting", Vm.Counting); ("dred", Vm.Dred);
        ("recursive-counting", Vm.Recursive_counting);
        ("recompute", Vm.Recompute) ]
  in
  Arg.(
    value
    & opt enum_conv Vm.Auto
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Maintenance algorithm: $(b,auto), $(b,counting), $(b,dred), \
              $(b,recursive-counting) or $(b,recompute).")

let verbose_flag =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log maintenance internals (per-stratum \
                                    delta sizes, DRed overestimates).")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "d"; "domains" ] ~docv:"N"
        ~doc:"Evaluate delta rules on $(docv) domains (OCaml multicore); \
              $(b,1) is the sequential path.  Defaults to \\$IVM_DOMAINS or 1.")

let command_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "e"; "execute" ] ~docv:"CMD"
        ~doc:"Execute a shell command non-interactively (repeatable); the \
              REPL is skipped.")

let durable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "durable" ] ~docv:"DIR"
        ~doc:"Persist the database in $(docv) (snapshot + write-ahead log). \
              An existing store is reopened — its log tail replayed, the \
              program file ignored; otherwise the loaded program is \
              snapshotted there and every change batch is logged before it \
              is applied.")

let monitor_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "monitor" ] ~docv:"PORT"
        ~doc:"Serve $(b,/metrics) (Prometheus), $(b,/healthz), $(b,/statusz) \
              and $(b,/trace) on localhost:$(docv) for the life of the \
              process ($(b,0) picks a free port).")

let run file sql semantics algorithm verbose domains durable monitor commands =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if domains > 0 then Ivm_par.set_domains domains;
  if sql && durable <> None then
    prerr_endline "warning: --durable is ignored with --sql";
  let session, vm =
    match durable with
    | Some dir when (not sql) && Ivm_store.Store.exists dir ->
      (match file with
      | Some _ ->
        Format.eprintf "note: %s is an existing store; program file ignored@." dir
      | None -> ());
      let vm, recovery = Vm.open_durable ~algorithm dir in
      Format.printf "recovered %s: %a@." dir Ivm_store.Store.pp_recovery recovery;
      (None, vm)
    | _ ->
      let durable = if sql then None else durable in
      (match file with
      | Some path ->
        let src = In_channel.with_open_text path In_channel.input_all in
        if sql then
          let session = Ivm_sql.Sql_session.of_script ~semantics ~algorithm src in
          (Some session, Ivm_sql.Sql_session.manager session)
        else (None, Vm.of_source ~semantics ~algorithm ?durable src)
      | None -> (None, Vm.of_source ~semantics ~algorithm ?durable ""))
  in
  let vm = ref vm in
  (match monitor with Some port -> start_monitor vm port | None -> ());
  if commands = [] then repl ?sql:session vm (Unix.isatty Unix.stdin)
  else List.iter (protect ?sql:session vm) commands;
  match !monitor_server with
  | Some srv ->
    Ivm_monitor.Monitor.stop srv;
    monitor_server := None
  | None -> ()

let cmd =
  let doc = "incrementally maintained materialized views (SIGMOD'93 counting + DRed)" in
  Cmd.v
    (Cmd.info "ivm-shell" ~doc)
    Term.(
      const run $ file_arg $ sql_flag $ semantics_arg $ algorithm_arg
      $ verbose_flag $ domains_arg $ durable_arg $ monitor_arg $ command_arg)

let () = exit (Cmd.eval cmd)
