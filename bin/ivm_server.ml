(* ivm-serve: the multi-client view server (docs/PROTOCOL.md).

   Load a Datalog program (or reopen a durable store), then serve it to
   concurrent clients: snapshot-consistent queries on a reader pool, a
   single writer group-committing client update batches into the
   write-ahead log with one fsync per group.

     $ dune exec bin/ivm_serve.exe -- examples.dl --durable /tmp/store --port 7401
     ivm-serve: serving on 127.0.0.1:7401 (protocol v1, 2 readers)

   Stop with SIGINT/SIGTERM: the server drains the apply queue, commits
   it, says Bye to every client and exits cleanly. *)

module Vm = Ivm.View_manager
module Server = Ivm_serve.Server

let quit = ref false

let run file algorithm semantics domains durable host port readers auth
    max_sessions max_batch_tuples monitor =
  if domains > 0 then Ivm_par.set_domains domains;
  let vm =
    match durable with
    | Some dir when Ivm_store.Store.exists dir ->
      (match file with
      | Some _ ->
        Format.eprintf "note: %s is an existing store; program file ignored@." dir
      | None -> ());
      let vm, recovery = Vm.open_durable ~algorithm dir in
      Format.printf "recovered %s: %a@." dir Ivm_store.Store.pp_recovery recovery;
      vm
    | _ ->
      let src =
        match file with
        | Some path -> In_channel.with_open_text path In_channel.input_all
        | None -> ""
      in
      Vm.of_source ~semantics ~algorithm ?durable src
  in
  let config =
    {
      Server.default_config with
      auth_token = auth;
      readers;
      max_sessions;
      max_batch_tuples;
    }
  in
  let srv = Server.start ~host ~config ~vm ~port () in
  let mon =
    match monitor with
    | None -> None
    | Some mport ->
      let m =
        Ivm_monitor.Monitor.start
          ~config:
            {
              Ivm_monitor.Monitor.status = (fun () -> Server.status_json srv);
              before_metrics =
                (fun () ->
                  Ivm_eval.Stats.sync ();
                  (* snapshot age + per-reader epoch lag, fresh per scrape *)
                  Ivm_serve.Snap_pub.refresh_gauges (Server.publisher srv));
              explain = Some (fun q -> Vm.explain_json vm q);
            }
          ~port:mport ()
      in
      Format.printf "monitoring on http://127.0.0.1:%d@."
        (Ivm_monitor.Monitor.port m);
      Some m
  in
  Format.printf "ivm-serve: serving on %s:%d (protocol v%d, %d readers)@." host
    (Server.port srv) Ivm_serve.Protocol.version readers;
  let stop_sig _ = quit := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_sig);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_sig);
  while not !quit do
    Unix.sleepf 0.2
  done;
  Format.printf "ivm-serve: shutting down@.";
  Server.stop srv;
  (match mon with Some m -> Ivm_monitor.Monitor.stop m | None -> ());
  let s = Server.stats srv in
  Format.printf
    "ivm-serve: served %d sessions, %d batches in %d group commits@."
    s.Server.accepted s.Server.committed_batches s.Server.group_commits

open Cmdliner

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Datalog program to serve (rules and facts).")

let algorithm_arg =
  let enum_conv =
    Arg.enum
      [ ("auto", Vm.Auto); ("counting", Vm.Counting); ("dred", Vm.Dred);
        ("recursive-counting", Vm.Recursive_counting);
        ("recompute", Vm.Recompute) ]
  in
  Arg.(
    value
    & opt enum_conv Vm.Auto
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Maintenance algorithm: $(b,auto), $(b,counting), $(b,dred), \
              $(b,recursive-counting) or $(b,recompute).")

let semantics_arg =
  let enum_conv =
    Arg.enum
      [ ("set", Ivm_eval.Database.Set_semantics);
        ("duplicate", Ivm_eval.Database.Duplicate_semantics) ]
  in
  Arg.(
    value
    & opt enum_conv Ivm_eval.Database.Set_semantics
    & info [ "s"; "semantics" ] ~docv:"SEM"
        ~doc:"View semantics: $(b,set) or $(b,duplicate).")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "d"; "domains" ] ~docv:"N"
        ~doc:"Evaluate delta rules on $(docv) domains (OCaml multicore).")

let durable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "durable" ] ~docv:"DIR"
        ~doc:"Persist the database in $(docv) (snapshot + write-ahead log). \
              An existing store is reopened and its log tail replayed; \
              client batches are group-committed into the log.")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 7401
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port to serve on ($(b,0) picks a free port).")

let readers_arg =
  Arg.(
    value & opt int Ivm_serve.Server.default_config.readers
    & info [ "readers" ] ~docv:"N"
        ~doc:"Reader-domain pool size: concurrent snapshot queries.")

let auth_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth" ] ~docv:"TOKEN"
        ~doc:"Require this token in the $(b,hello) handshake.")

let max_sessions_arg =
  Arg.(
    value & opt int Ivm_serve.Server.default_config.max_sessions
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Refuse connections beyond $(docv) concurrent sessions.")

let max_batch_arg =
  Arg.(
    value & opt int Ivm_serve.Server.default_config.max_batch_tuples
    & info [ "max-batch-tuples" ] ~docv:"N"
        ~doc:"Reject apply batches larger than $(docv) tuples.")

let monitor_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "monitor" ] ~docv:"PORT"
        ~doc:"Also serve $(b,/metrics), $(b,/healthz), $(b,/statusz) over \
              HTTP on localhost:$(docv).")

let cmd =
  let doc = "serve incrementally maintained views to concurrent clients" in
  Cmd.v
    (Cmd.info "ivm-serve" ~doc)
    Term.(
      const run $ file_arg $ algorithm_arg $ semantics_arg $ domains_arg
      $ durable_arg $ host_arg $ port_arg $ readers_arg $ auth_arg
      $ max_sessions_arg $ max_batch_arg $ monitor_arg)

let () = exit (Cmd.eval cmd)
