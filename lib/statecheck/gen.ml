(** Scenario generation for the statecheck harness.

    Traces are generated {e state-aware}: the generator threads the same
    {!Model} the interpreter will run, so almost every generated step's
    precondition holds at run time (the interpreter still re-checks and
    skips, which is what keeps list-shrinking sound).  Crash damage is
    bounded by a conservative WAL-extent estimate — every record frame
    is at least {!min_record_bytes} bytes, so damage generated against
    the estimate always lands inside the real log's frame region.

    The generated command vocabulary {e is} the public API surface:
    batches, rule add/remove, algorithm switches, queries, audit,
    snapshot/compact, durable close and crash-reopen with torn or
    bit-flipped WAL tails, provenance spot-checks, and the monitor. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Vm = Ivm.View_manager
module Q = QCheck

(* ------------------------------------------------------------------ *)
(* The program pool                                                     *)
(* ------------------------------------------------------------------ *)

(** Every rule the generator may add or remove.  [link] is the only base
    relation; [Interp.seed_rule] ([hop]) is permanent.  [tc] is the
    recursive pair — set semantics only (recursive duplicate maintenance
    is outside every algorithm's contract). *)
let pool : Ast.rule list =
  List.map Parser.parse_rule
    [
      "hop(X, Y) :- link(X, Y).";
      "tri(X, Y) :- hop(X, Z), link(Z, Y).";
      "only_tri(X, Y) :- tri(X, Y), not hop(X, Y).";
      "up(X, Y) :- hop(X, Y), X < Y.";
      "tc(X, Y) :- link(X, Y).";
      "tc(X, Y) :- tc(X, Z), link(Z, Y).";
      "big(X, Y) :- tc(X, Y), not link(X, Y).";
    ]

let symbols = [| "a"; "b"; "c"; "d"; "e"; "f" |]

(** Conservative lower bound on one WAL record frame (length word, CRC,
    sequence, change count — before any payload). *)
let min_record_bytes = 20

let initial_algorithms ~duplicate : Vm.algorithm list =
  if duplicate then [ Vm.Counting; Vm.Recursive_counting; Vm.Recompute; Vm.Auto ]
  else [ Vm.Counting; Vm.Dred; Vm.Recompute; Vm.Auto ]

(* ------------------------------------------------------------------ *)
(* State-aware step generation                                          *)
(* ------------------------------------------------------------------ *)

type sim = {
  model : Model.t;
  mutable prov_on : bool;
  mutable monitored : bool;
}

let pick st arr = arr.(Random.State.int st (Array.length arr))

let gen_tuple st =
  Tuple.of_list [ Value.Str (pick st symbols); Value.Str (pick st symbols) ]

let gen_present_tuple st (s : sim) : Tuple.t option =
  match Model.base_tuples s.model "link" with
  | [] -> None
  | tuples -> Some (List.nth tuples (Random.State.int st (List.length tuples)))

let gen_batch st (s : sim) : Cmd.step =
  let n = 2 + Random.State.int st 4 in
  let deleted = ref [] in
  let entries =
    List.init n (fun _ ->
        let deletable =
          List.filter
            (fun t -> not (List.exists (fun d -> Tuple.compare d t = 0) !deleted))
            (Model.base_tuples s.model "link")
        in
        if deletable <> [] && Random.State.int st 3 = 0 then begin
          let t = List.nth deletable (Random.State.int st (List.length deletable)) in
          deleted := t :: !deleted;
          (false, "link", t)
        end
        else (true, "link", gen_tuple st))
  in
  (* deleting a tuple inserted earlier in the same batch nets to zero —
     harmless — but deleting more copies than stored is invalid; keep
     only batches the model accepts *)
  if Model.batch_ok s.model entries then Cmd.Batch entries
  else Cmd.Batch (List.filter (fun (ins, _, _) -> ins) entries)

(** Candidate steps in the current simulated state, with weights. *)
let candidates st (s : sim) : (int * Cmd.step) list =
  let m = s.model in
  let durable = Model.durable m in
  let opt w cond step = if cond then [ (w, step) ] else [] in
  let insert = (5, Cmd.Insert ("link", gen_tuple st)) in
  let delete =
    match gen_present_tuple st s with
    | Some t -> [ (3, Cmd.Delete ("link", t)) ]
    | None -> []
  in
  let batch = [ (3, gen_batch st s) ] in
  let addable =
    List.filter
      (fun r ->
        Interp.precondition_pure m ~prov_on:s.prov_on ~monitored:s.monitored
          (Cmd.Add_rule r))
      pool
  in
  let add_rule =
    match addable with
    | [] -> []
    | rs -> [ (2, Cmd.Add_rule (List.nth rs (Random.State.int st (List.length rs)))) ]
  in
  let removable =
    List.filter
      (fun r ->
        Interp.precondition_pure m ~prov_on:s.prov_on ~monitored:s.monitored
          (Cmd.Del_rule r))
      m.Model.rules
  in
  let del_rule =
    match removable with
    | [] -> []
    | rs -> [ (1, Cmd.Del_rule (List.nth rs (Random.State.int st (List.length rs)))) ]
  in
  let switchable =
    List.filter
      (fun a ->
        Interp.precondition_pure m ~prov_on:s.prov_on ~monitored:s.monitored
          (Cmd.Algorithm a))
      [ Vm.Counting; Vm.Dred; Vm.Recursive_counting; Vm.Recompute; Vm.Auto ]
  in
  let algorithm =
    match switchable with
    | [] -> []
    | algos ->
      [ (1, Cmd.Algorithm (List.nth algos (Random.State.int st (List.length algos)))) ]
  in
  let query =
    match Model.head_preds m with
    | [] -> []
    | heads ->
      let p = List.nth heads (Random.State.int st (List.length heads)) in
      let arity =
        List.find_map
          (fun (r : Ast.rule) ->
            if r.Ast.head.Ast.pred = p then Some (List.length r.Ast.head.Ast.args)
            else None)
          m.Model.rules
        |> Option.value ~default:2
      in
      [ (2, Cmd.Query (p, arity)) ]
  in
  let crash =
    if not durable then []
    else
      let hi = Model.wal_end m - Model.wal_header_bytes in
      let damage =
        if hi <= 0 then Cmd.No_damage
        else
          match Random.State.int st 3 with
          | 0 -> Cmd.No_damage
          | 1 -> Cmd.Truncate (1 + Random.State.int st hi)
          | _ -> Cmd.Flip (Model.wal_header_bytes + Random.State.int st hi)
      in
      [ (2, Cmd.Crash damage) ]
  in
  let spot_fact st =
    let p =
      if Random.State.bool st then "link"
      else
        match Model.head_preds m with
        | [] -> "link"
        | hs -> List.nth hs (Random.State.int st (List.length hs))
    in
    let present =
      if p = "link" then Model.base_tuples m p else Model.derived_tuples m p
    in
    let t =
      if present <> [] && Random.State.int st 10 < 7 then
        List.nth present (Random.State.int st (List.length present))
      else gen_tuple st
    in
    (p, t)
  in
  List.concat
    [
      [ insert ];
      delete;
      batch;
      add_rule;
      del_rule;
      algorithm;
      [ (1, Cmd.Audit) ];
      query;
      opt 2 (not durable) Cmd.Open;
      opt 1 durable Cmd.Close;
      opt 1 durable Cmd.Compact;
      crash;
      opt 1 (not s.prov_on) Cmd.Prov_on;
      opt 1 s.prov_on Cmd.Prov_off;
      (if s.prov_on then
         let p, t = spot_fact st in
         [ (2, Cmd.Why (p, t)) ]
       else []);
      (let p, t = spot_fact st in
       [ (1, Cmd.Whynot (p, t)) ]);
      opt 1 (not s.monitored) Cmd.Monitor_start;
      opt 1 s.monitored Cmd.Monitor_stop;
    ]

let weighted_pick st (cands : (int * 'a) list) : 'a =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 cands in
  let n = Random.State.int st total in
  let rec go n = function
    | [] -> assert false
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n cands

(** Advance the simulation as the interpreter will (using the
    conservative WAL estimate for durable batches). *)
let sim_exec (s : sim) (step : Cmd.step) : unit =
  let m = s.model in
  match step with
  | Cmd.Insert (p, t) ->
    Model.apply_batch m [ (true, p, t) ];
    if Model.durable m then
      Model.log_record m ~wal_end:(Model.wal_end m + min_record_bytes)
  | Cmd.Delete (p, t) ->
    Model.apply_batch m [ (false, p, t) ];
    if Model.durable m then
      Model.log_record m ~wal_end:(Model.wal_end m + min_record_bytes)
  | Cmd.Batch entries ->
    Model.apply_batch m entries;
    if Model.durable m then
      Model.log_record m ~wal_end:(Model.wal_end m + min_record_bytes)
  | Cmd.Add_rule r -> Model.add_rule m r
  | Cmd.Del_rule r -> Model.remove_rule m r
  | Cmd.Algorithm a -> Model.set_algorithm m a
  | Cmd.Open -> ignore (Model.open_store m)
  | Cmd.Close -> Model.close m
  | Cmd.Compact -> Model.resnapshot m
  | Cmd.Crash damage -> Model.crash m damage
  | Cmd.Prov_on -> s.prov_on <- true
  | Cmd.Prov_off -> s.prov_on <- false
  | Cmd.Monitor_start -> s.monitored <- true
  | Cmd.Monitor_stop -> s.monitored <- false
  | Cmd.Audit | Cmd.Query _ | Cmd.Why _ | Cmd.Whynot _ -> ()

(* ------------------------------------------------------------------ *)
(* Traces                                                               *)
(* ------------------------------------------------------------------ *)

let gen_trace ?(min_len = 25) ?(max_len = 45) ?duplicate ?algorithm () :
    Cmd.trace Q.Gen.t =
 fun st ->
  let duplicate =
    match duplicate with Some d -> d | None -> Random.State.bool st
  in
  let algorithm =
    match algorithm with
    | Some a -> a
    | None -> pick st (Array.of_list (initial_algorithms ~duplicate))
  in
  let s =
    {
      model =
        Model.create ~duplicate ~algorithm ~rules:[ Interp.seed_rule ] ();
      prov_on = false;
      monitored = false;
    }
  in
  let len = min_len + Random.State.int st (max_len - min_len + 1) in
  let steps = ref [] in
  let emit step =
    steps := step :: !steps;
    sim_exec s step
  in
  while List.length !steps < len do
    let step = weighted_pick st (candidates st s) in
    if
      Interp.precondition_pure s.model ~prov_on:s.prov_on
        ~monitored:s.monitored step
    then begin
      emit step;
      (* a crash kills the process: the next thing that can happen is a
         reopen, so keep the pair adjacent *)
      match step with Cmd.Crash _ -> emit Cmd.Open | _ -> ()
    end
  done;
  { Cmd.duplicate; algorithm; steps = List.rev !steps }

let print_trace (t : Cmd.trace) : string =
  Cmd.to_string t ^ "\n" ^ Cmd.to_script t

(** Shrinking drops steps (chunks, then singletons); the interpreter's
    precondition-skip keeps any sublist well-formed. *)
let shrink_trace (t : Cmd.trace) : Cmd.trace Q.Iter.t =
  Q.Iter.map (fun steps -> { t with Cmd.steps }) (Q.Shrink.list t.Cmd.steps)

let arbitrary ?min_len ?max_len ?duplicate ?algorithm () :
    Cmd.trace Q.arbitrary =
  Q.make ~print:print_trace ~shrink:shrink_trace
    (gen_trace ?min_len ?max_len ?duplicate ?algorithm ())
