(** The model's deriver: a deliberately naive, list-based, from-scratch
    Datalog evaluator, independent of [lib/eval].

    The statecheck harness compares the real system — seminaive
    evaluation, compiled probe plans, interned values, incremental
    maintenance, WAL replay — against this module on every command.  It
    is written for obvious correctness, not speed: relations are sorted
    tuple lists, stratification is a fixpoint over rank constraints, and
    each stratum is evaluated by re-running every rule until nothing new
    appears.  It supports exactly the vocabulary the statecheck program
    pool uses: positive subgoals, stratified negation, and comparison
    filters over ground terms (no aggregation, no arithmetic heads).

    Derived relations are computed {e as sets} — the equivalence
    invariant compares tuple sets (the shared domain of all maintenance
    algorithms); derivation counts are checked by [View_manager.audit],
    which the harness also drives as a command. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Ast = Ivm_datalog.Ast

exception Unsupported of string

module Smap = Map.Make (String)

module Tset = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(** Head predicates of [rules], each exactly once, in first-definition
    order. *)
let head_preds (rules : Ast.rule list) : string list =
  List.fold_left
    (fun acc r ->
      if List.mem r.Ast.head.Ast.pred acc then acc
      else r.Ast.head.Ast.pred :: acc)
    [] rules
  |> List.rev

(** Predicates referenced anywhere but never defined: the base schema the
    rule set implies. *)
let base_preds (rules : Ast.rule list) : string list =
  let heads = head_preds rules in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc p ->
          if List.mem p heads || List.mem p acc then acc else p :: acc)
        acc (Ast.body_preds r))
    [] rules
  |> List.sort String.compare

(** Does some derived predicate transitively depend on itself?  (Mirrors
    [Program.nonrecursive], computed independently.) *)
let recursive (rules : Ast.rule list) : bool =
  let deps p =
    List.concat_map
      (fun r -> if r.Ast.head.Ast.pred = p then Ast.body_preds r else [])
      rules
  in
  let reaches start =
    let rec go seen = function
      | [] -> false
      | p :: rest ->
        if p = start then true
        else if List.mem p seen then go seen rest
        else go (p :: seen) (deps p @ rest)
    in
    go [] (deps start)
  in
  List.exists reaches (head_preds rules)

(** Stratum ranks: base predicates 0; [head ≥ body] through positive
    literals, [head ≥ body + 1] through negation.  Iterated to fixpoint —
    a rank exceeding the predicate count means the program is not
    stratifiable (the pool never produces one). *)
let strata (rules : Ast.rule list) : int Smap.t =
  let heads = head_preds rules in
  let preds = heads @ base_preds rules in
  let limit = List.length preds + 1 in
  (* base predicates live in stratum 0; every derived predicate starts in
     stratum 1 so each rule runs in [evaluate]'s stratified loop *)
  let ranks =
    ref
      (List.fold_left
         (fun m p -> Smap.add p (if List.mem p heads then 1 else 0) m)
         Smap.empty preds)
  in
  let rank p = Smap.find p !ranks in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > limit * limit then raise (Unsupported "not stratifiable");
    List.iter
      (fun r ->
        let need =
          List.fold_left
            (fun acc lit ->
              match lit with
              | Ast.Lpos a -> max acc (rank a.Ast.pred)
              | Ast.Lneg a -> max acc (rank a.Ast.pred + 1)
              | Ast.Lagg agg -> max acc (rank agg.Ast.agg_source.Ast.pred + 1)
              | Ast.Lcmp _ -> acc)
            0 r.Ast.body
        in
        let h = r.Ast.head.Ast.pred in
        if rank h < need then begin
          ranks := Smap.add h need !ranks;
          changed := true
        end)
      rules
  done;
  !ranks

(* ------------------------------------------------------------------ *)
(* Rule evaluation over an environment of variable bindings             *)
(* ------------------------------------------------------------------ *)

let term_value env = function
  | Ast.Const c -> Some c
  | Ast.Var "_" -> None
  | Ast.Var v -> Smap.find_opt v env

let expr_value env = function
  | Ast.Eterm t -> term_value env t
  | _ -> raise (Unsupported "arithmetic expressions")

(** Unify an atom's argument terms against [tup], extending [env];
    [None] on mismatch. *)
let match_atom env (a : Ast.atom) (tup : Tuple.t) : Value.t Smap.t option =
  let n = List.length a.Ast.args in
  if Tuple.arity tup <> n then None
  else
    let rec go env i = function
      | [] -> Some env
      | arg :: rest -> (
        let v = Tuple.get tup i in
        match arg with
        | Ast.Eterm (Ast.Const c) ->
          if Value.compare c v = 0 then go env (i + 1) rest else None
        | Ast.Eterm (Ast.Var "_") -> go env (i + 1) rest
        | Ast.Eterm (Ast.Var x) -> (
          match Smap.find_opt x env with
          | Some bound ->
            if Value.compare bound v = 0 then go env (i + 1) rest else None
          | None -> go (Smap.add x v env) (i + 1) rest)
        | _ -> raise (Unsupported "non-term atom argument"))
    in
    go env 0 a.Ast.args

let ground_atom env (a : Ast.atom) : Tuple.t =
  Tuple.of_list
    (List.map
       (fun arg ->
         match expr_value env arg with
         | Some v -> v
         | None -> raise (Unsupported "unbound head/negation variable"))
       a.Ast.args)

let cmp_holds op a b =
  let c = Value.compare a b in
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(** All head tuples one rule derives from [facts] (a pred → tuple-set
    map).  Positive literals are joined first (in body order); negation
    and comparisons filter the fully extended environments afterwards —
    safety guarantees their variables are bound by then. *)
let eval_rule (facts : Tset.t Smap.t) (r : Ast.rule) : Tset.t =
  let rel p = Option.value ~default:Tset.empty (Smap.find_opt p facts) in
  let positives, others =
    List.partition (function Ast.Lpos _ -> true | _ -> false) r.Ast.body
  in
  let envs =
    List.fold_left
      (fun envs lit ->
        match lit with
        | Ast.Lpos a ->
          List.concat_map
            (fun env ->
              Tset.fold
                (fun tup acc ->
                  match match_atom env a tup with
                  | Some env' -> env' :: acc
                  | None -> acc)
                (rel a.Ast.pred) [])
            envs
        | _ -> assert false)
      [ Smap.empty ] positives
  in
  let envs =
    List.filter
      (fun env ->
        List.for_all
          (fun lit ->
            match lit with
            | Ast.Lpos _ -> assert false
            | Ast.Lneg a -> not (Tset.mem (ground_atom env a) (rel a.Ast.pred))
            | Ast.Lcmp (x, op, y) -> (
              match (expr_value env x, expr_value env y) with
              | Some a, Some b -> cmp_holds op a b
              | _ -> raise (Unsupported "unbound comparison variable"))
            | Ast.Lagg _ -> raise (Unsupported "aggregation"))
          others)
      envs
  in
  List.fold_left
    (fun acc env -> Tset.add (ground_atom env r.Ast.head) acc)
    Tset.empty envs

(** Materialize every derived predicate from scratch: strata in ascending
    rank order, each iterated to fixpoint by brute force.  [base] maps
    base predicates to their current tuples.  Returns the full pred →
    tuple-set map (base included). *)
let evaluate (rules : Ast.rule list) ~(base : Tuple.t list Smap.t) :
    Tset.t Smap.t =
  let ranks = strata rules in
  let facts =
    ref
      (Smap.fold
         (fun p tuples acc -> Smap.add p (Tset.of_list tuples) acc)
         base Smap.empty)
  in
  (* derived predicates start empty, even if never derivable *)
  List.iter
    (fun p -> if not (Smap.mem p !facts) then facts := Smap.add p Tset.empty !facts)
    (head_preds rules @ base_preds rules);
  let max_rank = Smap.fold (fun _ r acc -> max r acc) ranks 0 in
  for stratum = 1 to max_rank do
    let layer =
      List.filter (fun r -> Smap.find r.Ast.head.Ast.pred ranks = stratum) rules
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun r ->
          let out = eval_rule !facts r in
          let p = r.Ast.head.Ast.pred in
          let cur = Smap.find p !facts in
          let next = Tset.union cur out in
          if not (Tset.equal cur next) then begin
            facts := Smap.add p next !facts;
            changed := true
          end)
        layer
    done
  done;
  !facts

(** Sorted tuple list of one derived predicate. *)
let tuples_of (facts : Tset.t Smap.t) (pred : string) : Tuple.t list =
  match Smap.find_opt pred facts with
  | None -> []
  | Some s -> Tset.elements s
