(** Resolved statecheck commands and their shell syntax.

    Every command the harness can execute is a [step]; every step prints
    as exactly one documented [ivm_shell] command line ({!to_line}) and
    parses back ({!of_line}), so a failing trace is a replayable script —
    feed the lines to [bin/ivm_shell.exe] (one [-e] per line, or on
    stdin) and you are driving the same API the harness drove.
    [test/test_docs.ml] checks {!vocabulary} against the shell's [help]
    output so the printed syntax cannot drift from the documentation. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Pretty = Ivm_datalog.Pretty
module Vm = Ivm.View_manager

type damage = No_damage | Truncate of int  (** bytes cut off the WAL end *)
            | Flip of int  (** absolute byte offset bit-flipped *)

type step =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t
  | Batch of (bool * string * Tuple.t) list
      (** [(insert?, pred, tuple)] entries applied as one atomic batch *)
  | Add_rule of Ast.rule
  | Del_rule of Ast.rule
  | Algorithm of Vm.algorithm
  | Audit
  | Query of string * int  (** derived predicate, arity *)
  | Open  (** [open store]: make durable, or reopen/recover the store *)
  | Close
  | Compact
  | Crash of damage
      (** drop the store handle as a kill would, optionally damaging the
          WAL tail; the next {!Open} recovers *)
  | Prov_on
  | Prov_off
  | Why of string * Tuple.t
  | Whynot of string * Tuple.t
  | Monitor_start
  | Monitor_stop

(** The store directory every trace uses, relative to the replay cwd. *)
let store_dir = "store"

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let value_str (v : Value.t) : string =
  match v with
  | Value.Int n -> string_of_int n
  | Value.Str s
    when s <> ""
         && s.[0] >= 'a'
         && s.[0] <= 'z'
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
              s -> s
  | _ -> invalid_arg "Statecheck.Cmd.value_str: not a plain symbol or int"

let fact_str pred tup =
  Printf.sprintf "%s(%s)" pred
    (String.concat "," (List.map value_str (Tuple.to_list tup)))

let to_line (s : step) : string =
  match s with
  | Insert (p, t) -> Printf.sprintf "+%s." (fact_str p t)
  | Delete (p, t) -> Printf.sprintf "-%s." (fact_str p t)
  | Batch entries ->
    Printf.sprintf "apply %s."
      (String.concat "; "
         (List.map
            (fun (ins, p, t) ->
              Printf.sprintf "%c%s" (if ins then '+' else '-') (fact_str p t))
            entries))
  | Add_rule r -> "addrule " ^ Pretty.rule_to_string r
  | Del_rule r -> "delrule " ^ Pretty.rule_to_string r
  | Algorithm a -> "algorithm " ^ Vm.algorithm_name a
  | Audit -> "audit"
  | Query (p, arity) ->
    Printf.sprintf "?%s(%s)" p
      (String.concat ", " (List.init arity (fun i -> Printf.sprintf "X%d" i)))
  | Open -> "open " ^ store_dir
  | Close -> "close"
  | Compact -> "compact"
  | Crash No_damage -> "crash"
  | Crash (Truncate n) -> Printf.sprintf "crash truncate %d" n
  | Crash (Flip k) -> Printf.sprintf "crash flip %d" k
  | Prov_on -> "provenance on"
  | Prov_off -> "provenance off"
  | Why (p, t) -> Printf.sprintf "why %s." (fact_str p t)
  | Whynot (p, t) -> Printf.sprintf "why not %s." (fact_str p t)
  | Monitor_start -> "monitor start 0"
  | Monitor_stop -> "monitor stop"

(** The shell-help phrase each printable command belongs to —
    [test_docs] checks every one appears verbatim in [ivm_shell]'s
    [help] output (and hence, transitively, in the README table). *)
let vocabulary : string list =
  [
    "+fact.";
    "-fact.";
    "apply ±FACT; ±FACT; ...";
    "addrule RULE";
    "delrule RULE";
    "algorithm NAME";
    "audit";
    "?QUERY";
    "open DIR";
    "close";
    "compact";
    "crash [truncate N | flip K]";
    "provenance on/off/status";
    "why FACT.";
    "why not FACT.";
    "monitor start PORT";
    "monitor stop";
  ]

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad_line of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_line s)) fmt

let parse_fact (txt : string) : string * Tuple.t =
  match Vm.parse_fact txt with
  | Ok (p, t) -> (p, t)
  | Error e -> bad "bad fact %S: %s" txt e

let strip_prefix prefix line =
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let of_line (line : string) : step =
  let line = String.trim line in
  if line = "" then bad "empty line"
  else if line.[0] = '+' then
    let p, t = parse_fact (String.sub line 1 (String.length line - 1)) in
    Insert (p, t)
  else if line.[0] = '-' then
    let p, t = parse_fact (String.sub line 1 (String.length line - 1)) in
    Delete (p, t)
  else if line.[0] = '?' then begin
    let body = String.sub line 1 (String.length line - 1) in
    match String.index_opt body '(' with
    | None -> bad "bad query %S" line
    | Some i ->
      let pred = String.trim (String.sub body 0 i) in
      let args = String.sub body i (String.length body - i) in
      let arity =
        1 + String.fold_left (fun n c -> if c = ',' then n + 1 else n) 0 args
      in
      Query (pred, arity)
  end
  else
    match strip_prefix "apply " line with
    | Some body ->
      let body =
        if String.length body > 0 && body.[String.length body - 1] = '.' then
          String.sub body 0 (String.length body - 1)
        else body
      in
      let entries =
        String.split_on_char ';' body
        |> List.filter_map (fun part ->
               let part = String.trim part in
               if part = "" then None
               else if part.[0] <> '+' && part.[0] <> '-' then
                 bad "apply entry %S must start with + or -" part
               else
                 let p, t =
                   parse_fact (String.sub part 1 (String.length part - 1))
                 in
                 Some (part.[0] = '+', p, t))
      in
      if entries = [] then bad "empty apply batch" else Batch entries
    | None -> (
      match strip_prefix "addrule " line with
      | Some r -> Add_rule (Parser.parse_rule r)
      | None -> (
        match strip_prefix "delrule " line with
        | Some r -> Del_rule (Parser.parse_rule r)
        | None -> (
          match strip_prefix "algorithm " line with
          | Some name -> (
            match Vm.algorithm_of_string name with
            | Some a -> Algorithm a
            | None -> bad "unknown algorithm %S" name)
          | None -> (
            match strip_prefix "why not " line with
            | Some f ->
              let p, t = parse_fact f in
              Whynot (p, t)
            | None -> (
              match strip_prefix "why " line with
              | Some f ->
                let p, t = parse_fact f in
                Why (p, t)
              | None -> (
                match strip_prefix "crash truncate " line with
                | Some n -> Crash (Truncate (int_of_string n))
                | None -> (
                  match strip_prefix "crash flip " line with
                  | Some k -> Crash (Flip (int_of_string k))
                  | None -> (
                    match strip_prefix "open " line with
                    | Some _ -> Open
                    | None -> (
                      match line with
                      | "audit" -> Audit
                      | "close" -> Close
                      | "compact" -> Compact
                      | "crash" -> Crash No_damage
                      | "provenance on" -> Prov_on
                      | "provenance off" -> Prov_off
                      | "monitor start 0" -> Monitor_start
                      | "monitor stop" -> Monitor_stop
                      | _ -> bad "unrecognized command %S" line)))))))))

(* ------------------------------------------------------------------ *)
(* Traces: a header plus one command per line                           *)
(* ------------------------------------------------------------------ *)

type trace = {
  duplicate : bool;  (** duplicate semantics? (else set) *)
  algorithm : Vm.algorithm;  (** initial maintenance algorithm *)
  steps : step list;
}

let semantics_name d = if d then "duplicate" else "set"

(** The permanent seed rule every trace starts from (the interpreter
    creates the manager with it; replay scripts add it explicitly): it
    defines the base schema ([link]) and one view, so queries and
    provenance have something to look at from step one. *)
let seed_rule_text = "hop(X, Y) :- link(X, Z), link(Z, Y)."

let to_lines (t : trace) : string list =
  ("# statecheck trace v1" :: Printf.sprintf "# semantics: %s"
     (semantics_name t.duplicate)
  :: Printf.sprintf "# algorithm: %s" (Vm.algorithm_name t.algorithm)
  :: List.map to_line t.steps)

let of_lines (lines : string list) : trace =
  let duplicate = ref false and algorithm = ref Vm.Auto and steps = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = '#' then begin
        (match strip_prefix "# semantics:" line with
        | Some "duplicate" -> duplicate := true
        | Some "set" -> duplicate := false
        | _ -> ());
        match strip_prefix "# algorithm:" line with
        | Some name -> (
          match Vm.algorithm_of_string name with
          | Some a -> algorithm := a
          | None -> bad "unknown algorithm in header: %S" name)
        | None -> ()
      end
      else steps := of_line line :: !steps)
    lines;
  { duplicate = !duplicate; algorithm = !algorithm; steps = List.rev !steps }

let to_string (t : trace) : string = String.concat "\n" (to_lines t) ^ "\n"

let of_string (s : string) : trace = of_lines (String.split_on_char '\n' s)

let write_file path t = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string t))

let read_file path : trace =
  of_string (In_channel.with_open_text path In_channel.input_all)

(** A runnable shell script for the trace: one [ivm_shell] invocation in
    a scratch directory, the steps fed on stdin (not [-e] — cmdliner
    would read a deletion like [-link(a, b).] as an option). *)
let to_script (t : trace) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "#!/bin/sh\n";
  Buffer.add_string b
    "# statecheck trace — replays through the real shell.\n\
     # Run from the repository root.\n";
  Buffer.add_string b "set -eu\nroot=\"$PWD\"\n";
  Buffer.add_string b "dune build --root \"$root\" bin/ivm_shell.exe\n";
  Buffer.add_string b "cd \"$(mktemp -d)\"\n";
  Buffer.add_string b
    (Printf.sprintf
       "exec \"$root\"/_build/default/bin/ivm_shell.exe \\\n\
       \  --semantics %s --algorithm %s <<'TRACE'\n\
        addrule %s\n"
       (semantics_name t.duplicate)
       (Vm.algorithm_name t.algorithm)
       seed_rule_text);
  List.iter
    (fun s -> Buffer.add_string b (to_line s ^ "\n"))
    t.steps;
  Buffer.add_string b "TRACE\n";
  Buffer.contents b
