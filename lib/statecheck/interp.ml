(** Trace interpreter: runs every {!Cmd.step} against the real
    {!Ivm.View_manager} and the reference {!Model} in lockstep, checking
    the equivalence invariant after each step.

    Preconditions are re-checked against the model before each step and
    violating steps are {e skipped} (on both sides), so deleting an
    arbitrary prefix or subset of a trace still yields a well-formed run
    — the property QCheck shrinking depends on.  A check failure raises
    {!Check_failed} carrying the executed prefix as a replayable trace,
    which the test layer prints as a shell script. *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Database = Ivm_eval.Database
module Query = Ivm_eval.Query
module Json = Ivm_obs.Json
module Store = Ivm_store.Store
module Prov = Ivm_prov.Prov
module Prov_query = Ivm_prov.Prov_query
module Monitor = Ivm_monitor.Monitor
module Vm = Ivm.View_manager
module Changes = Ivm.Changes
module Snap_pub = Ivm_serve.Snap_pub
module Smap = Naive.Smap

(** Deliberate-fault injection, for proving the harness catches bugs and
    shrinks them: [Drop_every k] silently drops one inserted tuple from
    every [k]-th insert-bearing real batch — the model keeps it, so the
    equivalence check must fail and shrink to a tiny trace. *)
type fault = Drop_every of int

type ctx = {
  dir : string;  (** scratch directory; the store lives in [dir/store] *)
  init_algorithm : Vm.algorithm;  (** the trace header's algorithm *)
  model : Model.t;
  mutable vm : Vm.t;
  mutable monitor : Monitor.t option;
  mutable prov_on : bool;
  mutable executed : Cmd.step list;  (** non-skipped steps, reversed *)
  fault : fault option;
  mutable inserts_seen : int;
  mutable pub : Snap_pub.t option;
      (** publish mode: an {!Ivm_serve.Snap_pub} kept in lockstep, its
          published snapshot digest-checked against the live database
          after every mutating step *)
  mutable last_track : Changes.collector option;
      (** the collector threaded through the last [real_apply], consumed
          by the publish step *)
}

exception Check_failed of { message : string; trace : Cmd.trace }

let store_path ctx = Filename.concat ctx.dir Cmd.store_dir

let executed_trace ctx : Cmd.trace =
  {
    Cmd.duplicate = ctx.model.Model.duplicate;
    algorithm = ctx.init_algorithm;
    steps = List.rev ctx.executed;
  }

let fail ctx fmt =
  Printf.ksprintf
    (fun message -> raise (Check_failed { message; trace = executed_trace ctx }))
    fmt

(* ------------------------------------------------------------------ *)
(* The equivalence check                                                *)
(* ------------------------------------------------------------------ *)

let tuple_list_str tuples =
  String.concat " " (List.map Tuple.to_string tuples)

let distinct_tuples (r : Relation.t) : Tuple.t list =
  List.map fst (Relation.to_sorted_list r)

(** Real ≡ model: base relations equal with multiplicities, every
    derived relation equal as a tuple set (counted correctness is
    [audit]'s job, which traces also drive), [status_json] well-formed
    and agreeing on the resolved algorithm, and — when durable — the
    real store's WAL extent and record count matching the model's. *)
let check ctx ~(after : Cmd.step) : unit =
  let m = ctx.model in
  let program = Vm.program ctx.vm in
  let after_s = Cmd.to_line after in
  (* base relations, with counts *)
  List.iter
    (fun pred ->
      if Ivm_datalog.Program.mem_pred program pred then begin
        let real = Relation.to_sorted_list (Vm.relation ctx.vm pred) in
        let want = Model.base_counts m pred in
        if real <> want then
          fail ctx
            "after %s: base %s diverged\n  real:  %s\n  model: %s" after_s pred
            (String.concat " "
               (List.map
                  (fun (t, c) -> Printf.sprintf "%s:%d" (Tuple.to_string t) c)
                  real))
            (String.concat " "
               (List.map
                  (fun (t, c) -> Printf.sprintf "%s:%d" (Tuple.to_string t) c)
                  want))
      end)
    (Naive.base_preds m.Model.rules);
  (* derived relations, as sets *)
  let derived = Model.derived m in
  List.iter
    (fun pred ->
      let real = distinct_tuples (Vm.relation ctx.vm pred) in
      let want = Naive.tuples_of derived pred in
      if real <> want then
        fail ctx
          "after %s: view %s diverged\n  real:  %s\n  model: %s" after_s pred
          (tuple_list_str real) (tuple_list_str want))
    (Model.head_preds m);
  (* status_json sanity: round-trips and names the resolved algorithm *)
  let status =
    try Json.of_string (Json.to_string (Vm.status_json ctx.vm))
    with e ->
      fail ctx "after %s: status_json did not round-trip: %s" after_s
        (Printexc.to_string e)
  in
  (match Option.bind (Json.member "algorithm" status) Json.to_string_opt with
  | Some name ->
    let want = Vm.algorithm_name (Model.resolve m) in
    if name <> want then
      fail ctx "after %s: status_json algorithm %S, model resolves %S" after_s
        name want
  | None -> fail ctx "after %s: status_json lacks \"algorithm\"" after_s);
  (* durable store bookkeeping *)
  match Vm.store_status ctx.vm with
  | None ->
    if Model.durable m then
      fail ctx "after %s: model durable, real manager is not" after_s
  | Some st ->
    if not (Model.durable m) then
      fail ctx "after %s: real manager durable, model is not" after_s;
    let records =
      match m.Model.store with None -> 0 | Some s -> List.length s.records
    in
    if st.Store.wal_records <> records then
      fail ctx "after %s: wal_records %d, model has %d" after_s
        st.Store.wal_records records;
    if st.Store.wal_bytes <> Model.wal_end m then
      fail ctx "after %s: wal_bytes %d, model extent %d" after_s
        st.Store.wal_bytes (Model.wal_end m)

(* ------------------------------------------------------------------ *)
(* Preconditions                                                        *)
(* ------------------------------------------------------------------ *)

let defined_ok rules =
  (* every body predicate is the base relation or some rule's head *)
  let heads = Naive.head_preds rules in
  List.for_all
    (fun (r : Ast.rule) ->
      List.for_all
        (fun p -> p = "link" || List.mem p heads)
        (Ast.body_preds r))
    rules

let algorithm_ok (m : Model.t) (a : Vm.algorithm) ~(rules : Ast.rule list) =
  let recursive = Naive.recursive rules in
  if recursive && m.Model.duplicate then
    (* recursive duplicate semantics is outside every algorithm's
       contract (the evaluator itself refuses it) *)
    false
  else
    match a with
    | Vm.Counting -> not recursive
    | Vm.Recursive_counting -> m.Model.duplicate && not recursive
    | Vm.Dred -> not m.Model.duplicate
    | Vm.Recompute | Vm.Auto -> true

let arity_of_rule (r : Ast.rule) = List.length r.Ast.head.Ast.args

(** May [step] run in the given model state?  Steps failing this are
    skipped on both sides (shrink-soundness).  Pure in the sense that it
    only reads the model and the two lifecycle flags — the generator
    uses it too, threading its own simulated state. *)
let precondition_pure (m : Model.t) ~(prov_on : bool) ~(monitored : bool)
    (step : Cmd.step) : bool =
  match step with
  | Cmd.Insert (p, _) -> p = "link"
  | Cmd.Delete (p, t) -> p = "link" && Model.count m p t > 0
  | Cmd.Batch entries ->
    entries <> []
    && List.for_all (fun (_, p, _) -> p = "link") entries
    && Model.batch_ok m entries
  | Cmd.Add_rule r ->
    let rules' = m.Model.rules @ [ r ] in
    (not (List.mem r m.Model.rules))
    && defined_ok rules'
    && algorithm_ok m m.Model.algorithm ~rules:rules'
  | Cmd.Del_rule r ->
    let rules' = List.filter (fun r' -> r' <> r) m.Model.rules in
    List.mem r m.Model.rules
    && List.length rules' > 0
    && defined_ok rules'
    && algorithm_ok m m.Model.algorithm ~rules:rules'
  | Cmd.Algorithm a ->
    a <> m.Model.algorithm && algorithm_ok m a ~rules:m.Model.rules
  | Cmd.Audit -> true
  | Cmd.Query (p, arity) ->
    List.exists
      (fun (r : Ast.rule) ->
        r.Ast.head.Ast.pred = p && arity_of_rule r = arity)
      m.Model.rules
  | Cmd.Open -> not (Model.durable m)
  | Cmd.Close | Cmd.Compact -> Model.durable m
  | Cmd.Crash damage -> (
    Model.durable m
    &&
    let hi = Model.wal_end m in
    match damage with
    | Cmd.No_damage -> true
    | Cmd.Truncate n -> n >= 1 && hi - n >= Model.wal_header_bytes
    | Cmd.Flip k -> k >= Model.wal_header_bytes && k < hi)
  | Cmd.Prov_on -> not prov_on
  | Cmd.Prov_off -> prov_on
  | Cmd.Why _ -> prov_on
  | Cmd.Whynot (p, _) -> p = "link" || List.mem p (Model.head_preds m)
  | Cmd.Monitor_start -> not monitored
  | Cmd.Monitor_stop -> monitored

let precondition (ctx : ctx) (step : Cmd.step) : bool =
  precondition_pure ctx.model ~prov_on:ctx.prov_on
    ~monitored:(ctx.monitor <> None) step

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let changes_of_entries program (entries : (bool * string * Tuple.t) list) :
    Changes.t =
  let by_pred = Hashtbl.create 4 in
  List.iter
    (fun (ins, p, t) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_pred p) in
      Hashtbl.replace by_pred p ((t, if ins then 1 else -1) :: prev))
    entries;
  Changes.of_list program
    (Hashtbl.fold (fun p l acc -> (p, List.rev l) :: acc) by_pred []
    |> List.sort compare)

(** Apply a real batch, recording the resulting WAL extent in the model
    when durable.  The fault hook mutilates only the real batch. *)
let real_apply ctx (entries : (bool * string * Tuple.t) list) : unit =
  let has_insert = List.exists (fun (ins, _, _) -> ins) entries in
  let entries_real =
    match ctx.fault with
    | Some (Drop_every k) when has_insert ->
      ctx.inserts_seen <- ctx.inserts_seen + 1;
      if ctx.inserts_seen mod k = 0 then
        let dropped = ref false in
        List.filter
          (fun (ins, _, _) ->
            if ins && not !dropped then (
              dropped := true;
              false)
            else true)
          entries
      else entries
    | _ -> entries
  in
  (if entries_real <> [] then
     let changes = changes_of_entries (Vm.program ctx.vm) entries_real in
     match ctx.pub with
     | None -> ignore (Vm.apply ctx.vm changes)
     | Some _ -> (
       (* publish mode routes through the server's group-commit path so
          the commit sites feed the net-change collector *)
       let track = Changes.collector () in
       ctx.last_track <- Some track;
       match Vm.apply_group ~track ctx.vm [ changes ] with
       | [ Ok _ ] -> ()
       | [ Error e ] -> failwith e
       | _ -> assert false));
  Model.apply_batch ctx.model entries;
  (* a durable apply appends exactly one WAL record (even when the batch
     normalizes to nothing); mirror it with the observed extent *)
  match Vm.store_status ctx.vm with
  | Some st when st.Store.wal_bytes > Model.wal_end ctx.model ->
    Model.log_record ctx.model ~wal_end:st.Store.wal_bytes
  | _ -> ()

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 = 1 then begin
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1)
      end)

let exec (ctx : ctx) (step : Cmd.step) : unit =
  let m = ctx.model in
  match step with
  | Cmd.Insert (p, t) -> real_apply ctx [ (true, p, t) ]
  | Cmd.Delete (p, t) -> real_apply ctx [ (false, p, t) ]
  | Cmd.Batch entries -> real_apply ctx entries
  | Cmd.Add_rule r ->
    Vm.add_rule ctx.vm r;
    Model.add_rule m r
  | Cmd.Del_rule r ->
    Vm.remove_rule ctx.vm r;
    Model.remove_rule m r
  | Cmd.Algorithm a ->
    Vm.set_algorithm ctx.vm a;
    Model.set_algorithm m a
  | Cmd.Audit -> (
    match Vm.audit ctx.vm with
    | Ok () -> ()
    | Error e -> fail ctx "audit failed: %s" e)
  | Cmd.Query (p, arity) ->
    let q =
      Printf.sprintf "%s(%s)" p
        (String.concat ", " (List.init arity (fun i -> Printf.sprintf "X%d" i)))
    in
    let result = Query.run_text (Vm.database ctx.vm) q in
    let real = distinct_tuples result.Query.rows in
    let want = Model.derived_tuples m p in
    if real <> want then
      fail ctx "query %s diverged\n  real:  %s\n  model: %s" q
        (tuple_list_str real) (tuple_list_str want)
  | Cmd.Open ->
    if not (Model.has_store m) then begin
      Vm.make_durable ctx.vm ~dir:(store_path ctx);
      ignore (Model.open_store m)
    end
    else begin
      (* disk wins: drop the in-memory manager, recover from the store *)
      if ctx.prov_on then begin
        Vm.disable_provenance ctx.vm;
        ctx.prov_on <- false
      end;
      Vm.close_store ctx.vm;
      let algorithm = Model.stored_algorithm m in
      let vm, recovery =
        try Vm.open_durable ~algorithm (store_path ctx)
        with e ->
          fail ctx "open_durable raised %s" (Printexc.to_string e)
      in
      ctx.vm <- vm;
      (* the old publisher wraps the dropped manager; re-seed from the
         recovered one *)
      (match ctx.pub with
      | Some _ -> ctx.pub <- Some (Snap_pub.create ~readers:1 vm)
      | None -> ());
      let expected = Model.open_store m in
      let replayed = List.length recovery.Store.replayed in
      if replayed <> expected then
        fail ctx "recovery replayed %d records, model expects %d" replayed
          expected
    end
  | Cmd.Close ->
    Vm.close_store ctx.vm;
    Model.close m
  | Cmd.Compact ->
    Vm.compact ctx.vm;
    Model.resnapshot m
  | Cmd.Crash damage ->
    (* a kill: drop the handle without compaction, lose the provenance
       store (it is process state), then damage the log on disk *)
    if ctx.prov_on then begin
      Vm.disable_provenance ctx.vm;
      ctx.prov_on <- false
    end;
    let wal = Store.wal_file (store_path ctx) in
    Vm.close_store ctx.vm;
    (match damage with
    | Cmd.No_damage -> ()
    | Cmd.Truncate n ->
      let size = (Unix.stat wal).Unix.st_size in
      Unix.truncate wal (max 0 (size - n))
    | Cmd.Flip k -> flip_byte wal k);
    Model.crash m damage
  | Cmd.Prov_on ->
    Vm.enable_provenance ctx.vm;
    ctx.prov_on <- true
  | Cmd.Prov_off ->
    Vm.disable_provenance ctx.vm;
    ctx.prov_on <- false
  | Cmd.Why (p, t) -> (
    let access = Vm.provenance_access ctx.vm in
    let present =
      List.exists
        (fun t' -> Tuple.compare t t' = 0)
        (if p = "link" then Model.base_tuples m p else Model.derived_tuples m p)
    in
    match (Prov_query.why access p t, present) with
    | Prov_query.Why_tree _, true | Prov_query.Why_absent, false -> ()
    | Prov_query.Why_tree _, false ->
      fail ctx "why %s%s: tree for a tuple the model lacks" p
        (Tuple.to_string t)
    | Prov_query.Why_absent, true ->
      fail ctx "why %s%s: absent, but the model derives it" p
        (Tuple.to_string t)
    | Prov_query.Why_unknown_pred, _ ->
      fail ctx "why %s%s: unknown predicate" p (Tuple.to_string t))
  | Cmd.Whynot (p, t) -> (
    let access = Vm.provenance_access ctx.vm in
    let present =
      List.exists
        (fun t' -> Tuple.compare t t' = 0)
        (if p = "link" then Model.base_tuples m p else Model.derived_tuples m p)
    in
    match (Prov_query.whynot access p t, present) with
    | Prov_query.Whynot_present _, false ->
      fail ctx "why not %s%s: present, but the model lacks it" p
        (Tuple.to_string t)
    | (Prov_query.Whynot_base | Prov_query.Whynot_no_rules
      | Prov_query.Whynot_failures _), true ->
      fail ctx "why not %s%s: failure report for a tuple the model derives" p
        (Tuple.to_string t)
    | _ -> ())
  | Cmd.Monitor_start ->
    let vm_ref = ctx in
    let config =
      {
        Monitor.status = (fun () -> Vm.status_json vm_ref.vm);
        before_metrics = Ivm_eval.Stats.sync;
        explain = Some (fun q -> Vm.explain_json vm_ref.vm q);
      }
    in
    ctx.monitor <- Some (Monitor.start ~config ~port:0 ())
  | Cmd.Monitor_stop -> (
    match ctx.monitor with
    | Some srv ->
      Monitor.stop srv;
      ctx.monitor <- None
    | None -> ())

(** Steps after which the server's writer would publish a snapshot. *)
let publishes_after = function
  | Cmd.Insert _ | Cmd.Delete _ | Cmd.Batch _ | Cmd.Add_rule _
  | Cmd.Del_rule _ | Cmd.Algorithm _ | Cmd.Open | Cmd.Compact -> true
  | Cmd.Audit | Cmd.Query _ | Cmd.Close | Cmd.Crash _ | Cmd.Prov_on
  | Cmd.Prov_off | Cmd.Why _ | Cmd.Whynot _ | Cmd.Monitor_start
  | Cmd.Monitor_stop -> false

(** Publish-mode postcondition: run a publish (tracked when the step was
    a batch apply, untracked — a counted full-copy fallback — otherwise)
    and require the published snapshot's canonical digest to equal the
    live database's.  This is exactly the invariant the server's readers
    depend on: an incrementally patched shadow is indistinguishable from
    a [Database.copy]. *)
let publish_check ctx ~(after : Cmd.step) : unit =
  match ctx.pub with
  | None -> ()
  | Some pub when publishes_after after ->
    let track = ctx.last_track in
    ctx.last_track <- None;
    ignore (Snap_pub.publish ?track pub : Snap_pub.mode);
    let snap = Snap_pub.acquire pub ~reader:0 in
    let got = Database.canonical_digest snap in
    Snap_pub.release pub ~reader:0;
    let want = Database.canonical_digest (Vm.database ctx.vm) in
    if got <> want then
      fail ctx
        "after %s: published snapshot diverged from live database\n\
        \  published: %s\n  live:      %s" (Cmd.to_line after) got want
  | Some _ -> ctx.last_track <- None

(* ------------------------------------------------------------------ *)
(* Running whole traces                                                 *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(** The permanent seed rule every trace starts from
    ({!Cmd.seed_rule_text}). *)
let seed_rule : Ast.rule = Parser.parse_rule Cmd.seed_rule_text

type outcome = {
  executed : int;  (** steps run (preconditions held) *)
  skipped : int;  (** steps skipped by precondition *)
}

(** Run one trace to completion.  Raises {!Check_failed} (carrying the
    executed prefix) when the real system and the model disagree; any
    other exception from the real side is wrapped the same way.

    [publish] additionally keeps an {!Ivm_serve.Snap_pub} in lockstep —
    batch applies route through {!Vm.apply_group} with a net-change
    collector, every mutating step publishes, and the published
    snapshot must digest-equal the live database ({!publish_check}). *)
let run ?fault ?(publish = false) (trace : Cmd.trace) : outcome =
  let dir = Filename.temp_dir "ivm_statecheck" "" in
  Prov.set_enabled false;
  Prov.reset ();
  let semantics =
    if trace.Cmd.duplicate then Database.Duplicate_semantics
    else Database.Set_semantics
  in
  let model =
    Model.create ~duplicate:trace.Cmd.duplicate ~algorithm:trace.Cmd.algorithm
      ~rules:[ seed_rule ] ()
  in
  let vm =
    Vm.create ~semantics ~algorithm:trace.Cmd.algorithm [ seed_rule ]
  in
  let ctx =
    {
      dir;
      init_algorithm = trace.Cmd.algorithm;
      model;
      vm;
      monitor = None;
      prov_on = false;
      executed = [];
      fault;
      inserts_seen = 0;
      pub = (if publish then Some (Snap_pub.create ~readers:1 vm) else None);
      last_track = None;
    }
  in
  let executed = ref 0 and skipped = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (match ctx.monitor with Some srv -> Monitor.stop srv | None -> ());
      if ctx.prov_on then Vm.disable_provenance ctx.vm;
      Prov.set_enabled false;
      Prov.reset ();
      Vm.close_store ctx.vm;
      rm_rf dir)
    (fun () ->
      List.iter
        (fun step ->
          if precondition ctx step then begin
            ctx.executed <- step :: ctx.executed;
            incr executed;
            (try exec ctx step with
            | Check_failed _ as e -> raise e
            | e ->
              fail ctx "step %s raised %s" (Cmd.to_line step)
                (Printexc.to_string e));
            publish_check ctx ~after:step;
            check ctx ~after:step
          end
          else incr skipped)
        trace.Cmd.steps;
      { executed = !executed; skipped = !skipped })

(** [run] as a result, with the failing prefix rendered as a replayable
    script — what the QCheck property and the corpus replayer print. *)
let run_result ?fault ?publish (trace : Cmd.trace) : (outcome, string) result =
  match run ?fault ?publish trace with
  | outcome -> Ok outcome
  | exception Check_failed { message; trace = prefix } ->
    Error
      (Printf.sprintf "%s\n\nreplay with:\n%s" message (Cmd.to_script prefix))
