(** The trivially-correct reference model the harness compares the real
    {!Ivm.View_manager} against.

    State is as plain as possible: base relations are maps from tuple to
    multiplicity, derived relations are recomputed from scratch by
    {!Naive.evaluate} whenever asked, and durability is a persisted
    snapshot plus a list of after-images — one per logged batch, each
    tagged with the WAL byte extent the interpreter {e observed} on the
    real store after the corresponding [apply].  Crash damage then
    resolves exactly: a record survives if and only if its extent fits
    inside the undamaged prefix. *)

module Tuple = Ivm_relation.Tuple
module Ast = Ivm_datalog.Ast
module Vm = Ivm.View_manager
module Smap = Naive.Smap

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(** pred → tuple → multiplicity (> 0) *)
type base = int Tmap.t Smap.t

type snapshot = {
  s_rules : Ast.rule list;
  s_base : base;
  s_algo : Vm.algorithm;  (** algorithm when the snapshot was cut *)
}

type record = {
  r_after : base;  (** base state after replaying this WAL record *)
  r_end : int;  (** observed WAL byte extent once it was logged *)
}

(** WAL header size of the real store ({!Ivm_store.Store}): damage must
    stay inside the frame region or recovery refuses the file outright. *)
let wal_header_bytes = 12

type store = { mutable snapshot : snapshot; mutable records : record list }

type t = {
  duplicate : bool;
  mutable rules : Ast.rule list;
  mutable base : base;
  mutable algorithm : Vm.algorithm;
  mutable store : store option;  (** survives close/crash once created *)
  mutable attached : bool;  (** a live handle is logging to the store *)
}

let create ~duplicate ~algorithm ~rules () =
  {
    duplicate;
    rules;
    base = Smap.empty;
    algorithm;
    store = None;
    attached = false;
  }

(* ------------------------------------------------------------------ *)
(* Views of the state                                                   *)
(* ------------------------------------------------------------------ *)

let resolve (t : t) : Vm.algorithm =
  match t.algorithm with
  | Vm.Auto -> if Naive.recursive t.rules then Vm.Dred else Vm.Counting
  | a -> a

let head_preds (t : t) = Naive.head_preds t.rules

let count (t : t) pred tup =
  match Smap.find_opt pred t.base with
  | None -> 0
  | Some m -> Option.value ~default:0 (Tmap.find_opt tup m)

(** Sorted [(tuple, multiplicity)] list of one base relation. *)
let base_counts (t : t) pred : (Tuple.t * int) list =
  match Smap.find_opt pred t.base with None -> [] | Some m -> Tmap.bindings m

let base_tuples (t : t) pred : Tuple.t list =
  List.map fst (base_counts t pred)

(** Recompute every derived relation from scratch (as sets). *)
let derived (t : t) : Naive.Tset.t Smap.t =
  let base_lists =
    Smap.map (fun m -> List.map fst (Tmap.bindings m)) t.base
  in
  Naive.evaluate t.rules ~base:base_lists

let derived_tuples (t : t) pred : Tuple.t list =
  Naive.tuples_of (derived t) pred

(* ------------------------------------------------------------------ *)
(* Batches                                                              *)
(* ------------------------------------------------------------------ *)

(** Net multiplicity change per (pred, tuple) — the model of
    [Changes.merge]: entries for the same tuple collapse before any
    semantics rule applies, so [+f; -f] in one batch is a no-op. *)
let net_of_entries (entries : (bool * string * Tuple.t) list) :
    ((string * Tuple.t) * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ins, p, tup) ->
      let key = (p, Tuple.to_string tup) in
      let prev =
        match Hashtbl.find_opt tbl key with Some (_, n) -> n | None -> 0
      in
      Hashtbl.replace tbl key ((p, tup), prev + (if ins then 1 else -1)))
    entries;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.filter (fun (_, n) -> n <> 0)
  |> List.sort compare

(** Would [Changes.normalize_base] accept this batch in the current
    state?  (Deletions must not exceed stored multiplicities; under set
    semantics a net deletion needs the tuple present.)  The interpreter
    skips steps that fail this, which keeps shrinking sound. *)
let batch_ok (t : t) (entries : (bool * string * Tuple.t) list) : bool =
  List.for_all
    (fun ((p, tup), net) ->
      let have = count t p tup in
      if t.duplicate then have + net >= 0 else net > 0 || have > 0)
    (net_of_entries entries)

let apply_batch (t : t) (entries : (bool * string * Tuple.t) list) : unit =
  List.iter
    (fun ((p, tup), net) ->
      let have = count t p tup in
      let next =
        if t.duplicate then max 0 (have + net)
        else if net > 0 then 1
        else if have > 0 then 0
        else invalid_arg "Statecheck.Model.apply_batch: invalid deletion"
      in
      let m = Option.value ~default:Tmap.empty (Smap.find_opt p t.base) in
      let m = if next = 0 then Tmap.remove tup m else Tmap.add tup next m in
      t.base <- Smap.add p m t.base)
    (net_of_entries entries)

(* ------------------------------------------------------------------ *)
(* Durability                                                           *)
(* ------------------------------------------------------------------ *)

let cut_snapshot (t : t) : snapshot =
  { s_rules = t.rules; s_base = t.base; s_algo = t.algorithm }

(** Fold everything logged so far into a fresh snapshot — what the real
    store does on [compact], rule changes, and algorithm switches. *)
let resnapshot (t : t) : unit =
  match t.store with
  | Some s when t.attached ->
    s.snapshot <- cut_snapshot t;
    s.records <- []
  | _ -> ()

(** Record one logged batch's after-image with the WAL extent the
    interpreter observed on the real store. *)
let log_record (t : t) ~(wal_end : int) : unit =
  match t.store with
  | Some s when t.attached ->
    s.records <- s.records @ [ { r_after = t.base; r_end = wal_end } ]
  | _ -> ()

(** Current WAL extent: the last record's end, or just the header. *)
let wal_end (t : t) : int =
  match t.store with
  | None -> wal_header_bytes
  | Some s -> (
    match List.rev s.records with
    | [] -> wal_header_bytes
    | last :: _ -> last.r_end)

let durable (t : t) = t.attached && t.store <> None
let has_store (t : t) = t.store <> None

let close (t : t) : unit = t.attached <- false

(** Drop the handle and damage the log: keep only the records whose
    extent fits inside the surviving prefix. *)
let crash (t : t) (damage : Cmd.damage) : unit =
  (match (t.store, damage) with
  | Some s, Cmd.Truncate n ->
    let limit = wal_end t - n in
    s.records <- List.filter (fun r -> r.r_end <= limit) s.records
  | Some s, Cmd.Flip k ->
    (* the frame containing byte [k] and everything after it is lost *)
    s.records <- List.filter (fun r -> r.r_end <= k) s.records
  | _, Cmd.No_damage | None, _ -> ());
  t.attached <- false

(** Open the store.  First time: persist the current in-memory state
    (the real [make_durable]).  Later: disk wins — restore rules,
    algorithm and base from the snapshot plus surviving records, exactly
    what recovery replays.  Returns the number of WAL records the real
    store is expected to replay. *)
let open_store (t : t) : int =
  match t.store with
  | None ->
    t.store <- Some { snapshot = cut_snapshot t; records = [] };
    t.attached <- true;
    0
  | Some s ->
    t.rules <- s.snapshot.s_rules;
    t.algorithm <- s.snapshot.s_algo;
    (t.base <-
       (match List.rev s.records with
       | [] -> s.snapshot.s_base
       | last :: _ -> last.r_after));
    t.attached <- true;
    List.length s.records

(** The algorithm recovery must run under: the one every surviving WAL
    record was logged with (switches resnapshot, so a log tail is always
    single-algorithm). *)
let stored_algorithm (t : t) : Vm.algorithm =
  match t.store with None -> t.algorithm | Some s -> s.snapshot.s_algo

(* ------------------------------------------------------------------ *)
(* Rule and algorithm changes                                           *)
(* ------------------------------------------------------------------ *)

let rule_mem rules r = List.exists (fun r' -> r' = r) rules

let add_rule (t : t) (r : Ast.rule) : unit =
  if not (rule_mem t.rules r) then t.rules <- t.rules @ [ r ];
  resnapshot t

let remove_rule (t : t) (r : Ast.rule) : unit =
  t.rules <- List.filter (fun r' -> r' <> r) t.rules;
  resnapshot t

let set_algorithm (t : t) (a : Vm.algorithm) : unit =
  if a <> t.algorithm then begin
    t.algorithm <- a;
    resnapshot t
  end
