(** Derivation provenance and batch lineage capture.

    The counting algorithm of the paper maintains, per derived tuple, the
    {e number} of derivations; this module generalizes the payload and
    records {e which} ones — a bounded set of {e supports}, each a
    (rule, immediate subgoal tuples) pair, plus a per-tuple lineage of
    batch transitions (first derived / last deleted).  Capture is opt-in
    and process-global: the rule evaluator calls {!record} at every head
    emission, and the commit loops of the maintenance algorithms call
    {!on_transition} when a tuple's stored count crosses zero.

    {b Cost discipline.}  When capture is off, every hook reduces to one
    atomic load and a predictable branch — the hooks live in the hot path
    permanently, so {!capturing} must stay that cheap.  When capture is
    on, {!record} takes a single global mutex (it is called from worker
    domains during parallel rule evaluation).

    {b Incremental correctness.}  The delta rules of Definition 4.1
    partition the derivations gained or lost by a batch so that each is
    enumerated exactly once; applying a support add (positive emission
    count, or {!set_mode}[ Add]) or remove (negative count, or
    [Remove] — DRed's deletion phase) per emission therefore keeps the
    stored supports an exact bounded subset of the current derivations.
    DRed's delete/rederive phases can enumerate a lost derivation more
    than once (once per changed subgoal); removals with no matching
    support are counted and ignored, and the rederivation phase restores
    supports for tuples that were over-deleted and put back.

    {b Bounds.}  At most {!max_supports} supports per tuple (default 8,
    override with [IVM_PROV_MAX_SUPPORTS]); overflowing supports are
    dropped and the tuple marked truncated.  Per-tuple lineage keeps the
    newest 16 events; the batch ring keeps the newest 64 batches. *)

module Tuple = Ivm_relation.Tuple

(** Ambient capture mode, set {e sequentially} by the maintenance
    algorithm before fanning rule evaluation out to worker domains:
    [Add] treats an emission of count [c] as gaining (c > 0) or losing
    (c < 0) a derivation; [Remove] — DRed's deletion phase, where
    emissions estimate {e lost} derivations regardless of sign — always
    removes. *)
type mode = Add | Remove

(** {1 Capture state} *)

(** Capture has been switched on with {!set_enabled}. *)
val enabled : unit -> bool

(** Capture is on {e and} not suspended — the hooks' fast guard. *)
val capturing : unit -> bool

(** Switching capture on or off resets the store either way: supports
    are only correct if every derivation since the reset was observed. *)
val set_enabled : bool -> unit

(** [with_suspended f] runs [f] with capture suspended (nestable) — used
    around evaluations that must not pollute the store: audits over
    database copies, ad-hoc queries, rule-redefinition maintenance. *)
val with_suspended : (unit -> 'a) -> 'a

val set_mode : mode -> unit

(** Maps the pretty-printed text of an internally rewritten rule back to
    the source rule it derives for (DRed registers the rederivation-rule
    mapping here).  Applied inside {!record}; the default is identity. *)
val set_rule_rewrite : (string -> string) -> unit

(** {1 Hooks (called by the evaluator and the algorithms)} *)

(** [record ~pred ~rule ~head ~count ~subgoals] — one derivation of
    [head] by [rule] from the listed positive subgoal tuples, in body
    order.  No-op unless {!capturing}; adds or removes a support per the
    ambient {!mode} and the sign of [count].  Pseudo-predicates (names
    starting with ['$']) are dropped: as head they suppress the record,
    as subgoals they are elided (DRed's overestimate markers). *)
val record :
  pred:string ->
  rule:string ->
  head:Tuple.t ->
  count:int ->
  subgoals:(string * Tuple.t) list ->
  unit

(** Called once per maintenance batch (when capturing); advances the
    batch sequence number and the batch ring. *)
val batch_begin : algorithm:string -> unit

(** The current batch sequence number (0 before any batch). *)
val current_batch : unit -> int

(** [on_transition ~pred t k] — [t]'s stored count crossed zero during
    commit.  [`Deleted] purges the tuple's supports (they describe
    derivations that no longer exist) but keeps its lineage. *)
val on_transition : pred:string -> Tuple.t -> [ `Derived | `Deleted ] -> unit

(** Drop every stored support (lineage survives) — called when the rule
    set changes or a recompute invalidates them wholesale; the caller is
    expected to re-bootstrap via [Seminaive.replay_derivations]. *)
val truncate_supports : reason:string -> unit

(** Clear the whole store (supports, lineage, batch ring). *)
val reset : unit -> unit

(** {1 Queries} *)

type support = {
  rule : string;  (** pretty-printed source rule *)
  subgoals : (string * Tuple.t) array;  (** positive subgoals, body order *)
  mult : int;  (** derivations sharing this instantiation (duplicate
                   semantics); 1 under set semantics *)
}

(** Supports currently stored for a tuple, in a deterministic order.
    A bounded subset of the tuple's derivations — non-empty for any
    present derived tuple captured since the last reset/truncation. *)
val supports_of : pred:string -> Tuple.t -> support list

(** The per-tuple support bound dropped at least one support. *)
val supports_truncated : pred:string -> Tuple.t -> bool

type event = { batch : int; kind : [ `Derived | `Deleted ] }

type lineage = {
  first_derived : int option;  (** batch that first derived the tuple *)
  last_deleted : int option;  (** most recent batch that deleted it *)
  events : event list;  (** newest first, bounded *)
}

(** [None] when nothing was ever recorded for the tuple (e.g. it was
    derived before capture was enabled and never transitioned since). *)
val lineage_of : pred:string -> Tuple.t -> lineage option

type batch_info = { seq : int; algorithm : string }

(** The batch ring, newest first. *)
val batches : unit -> batch_info list

(** {1 Accounting} *)

val max_supports : unit -> int

(** Override the per-tuple support bound (tests). *)
val set_max_supports : int -> unit

val supports_stored : unit -> int
val tuples_tracked : unit -> int

(** Rough store footprint in bytes (word-count model, not measured). *)
val bytes_estimate : unit -> int

(** Subsystem status for [/statusz]: enabled flag, store sizes,
    truncation and unmatched-removal counters. *)
val status_json : unit -> Ivm_obs.Json.t
