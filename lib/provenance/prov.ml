(** Provenance capture store — see the interface for the contract. *)

module Tuple = Ivm_relation.Tuple
module Json = Ivm_obs.Json
module Metrics = Ivm_obs.Metrics

type mode = Add | Remove

type support = {
  rule : string;
  subgoals : (string * Tuple.t) array;
  mult : int;
}

type event = { batch : int; kind : [ `Derived | `Deleted ] }

type lineage = {
  first_derived : int option;
  last_deleted : int option;
  events : event list;
}

type batch_info = { seq : int; algorithm : string }

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

(* Mutable twin of [support]: the mult is bumped in place as equal
   instantiations accumulate. *)
type sup = {
  s_rule : string;
  s_subgoals : (string * Tuple.t) array;
  mutable s_mult : int;
}

type entry = {
  mutable sups : sup list;  (* bounded by the per-tuple support cap *)
  mutable sup_truncated : bool;
  mutable first_derived : int option;
  mutable last_deleted : int option;
  mutable events : event list;  (* newest first, bounded *)
}

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (String.hash p * 31) + Tuple.hash t
end

module Tbl = Hashtbl.Make (Key)

let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let suspend_depth = Atomic.make 0
let mode_ref = ref Add
let rule_rewrite : (string -> string) ref = ref Fun.id
let table : entry Tbl.t = Tbl.create 4096

(* Rule strings interned so equal supports share one box and the
   membership test can start with a pointer compare. *)
let interned_rules : (string, string) Hashtbl.t = Hashtbl.create 64
let seq = ref 0
let ring : batch_info list ref = ref []
let ring_cap = 64
let max_events = 16
let last_truncate_reason : string option ref = ref None

let max_supports_v =
  ref
    (match Sys.getenv_opt "IVM_PROV_MAX_SUPPORTS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 8)
    | None -> 8)

(* Size accounting, guarded by [lock]. *)
let n_entries = ref 0
let n_supports = ref 0
let n_subgoals = ref 0
let n_events = ref 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_supports =
  Metrics.gauge ~help:"Provenance supports currently stored"
    "ivm_prov_supports_stored"

let m_tuples =
  Metrics.gauge ~help:"Tuples with a provenance entry" "ivm_prov_tuples_tracked"

let m_bytes =
  Metrics.gauge ~help:"Approximate bytes held by the provenance store"
    "ivm_prov_bytes_estimate"

let m_records =
  Metrics.counter ~help:"Provenance capture events (support add/remove)"
    "ivm_prov_records_total"

let m_truncations =
  Metrics.counter
    ~help:
      "Store-wide support truncations (rule redefinition, recompute, restore)"
    "ivm_prov_truncations_total"

let m_dropped =
  Metrics.counter ~help:"Supports dropped by the per-tuple bound"
    "ivm_prov_supports_dropped_total"

let m_unmatched =
  Metrics.counter
    ~help:
      "Support removals with no matching support (expected under DRed \
       over-deletion)"
    "ivm_prov_unmatched_removals_total"

(* Word-count model: entry ≈ 10 words (box + 5 fields + table slot),
   support ≈ 6, each subgoal reference ≈ 3, each lineage event ≈ 3. *)
let bytes_estimate () =
  8 * ((!n_entries * 10) + (!n_supports * 6) + (!n_subgoals * 3) + (!n_events * 3))

let sync_gauges () =
  Metrics.set m_supports (float_of_int !n_supports);
  Metrics.set m_tuples (float_of_int !n_entries);
  Metrics.set m_bytes (float_of_int (bytes_estimate ()))

(* ------------------------------------------------------------------ *)
(* State management                                                    *)
(* ------------------------------------------------------------------ *)

let enabled () = Atomic.get enabled_flag
let capturing () = Atomic.get enabled_flag && Atomic.get suspend_depth = 0

let with_suspended f =
  Atomic.incr suspend_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr suspend_depth) f

let set_mode m = mode_ref := m
let set_rule_rewrite f = rule_rewrite := f

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset_store () =
  Tbl.reset table;
  Hashtbl.reset interned_rules;
  n_entries := 0;
  n_supports := 0;
  n_subgoals := 0;
  n_events := 0;
  seq := 0;
  ring := [];
  last_truncate_reason := None;
  sync_gauges ()

let reset () = locked reset_store

let set_enabled b =
  locked (fun () ->
      if b <> Atomic.get enabled_flag then begin
        Atomic.set enabled_flag b;
        reset_store ()
      end)

let max_supports () = !max_supports_v
let set_max_supports n = if n > 0 then max_supports_v := n

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let entry_of key =
  match Tbl.find_opt table key with
  | Some e -> e
  | None ->
    let e =
      {
        sups = [];
        sup_truncated = false;
        first_derived = None;
        last_deleted = None;
        events = [];
      }
    in
    Tbl.add table key e;
    incr n_entries;
    e

let intern_rule r =
  match Hashtbl.find_opt interned_rules r with
  | Some r -> r
  | None ->
    Hashtbl.add interned_rules r r;
    r

let same_subgoals a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i =
    i >= n
    ||
    let p1, t1 = a.(i) and p2, t2 = b.(i) in
    String.equal p1 p2 && Tuple.equal t1 t2 && go (i + 1)
  in
  go 0

let drop_sups e =
  List.iter
    (fun s ->
      decr n_supports;
      n_subgoals := !n_subgoals - Array.length s.s_subgoals)
    e.sups;
  e.sups <- [];
  e.sup_truncated <- false

let pseudo p = String.length p > 0 && p.[0] = '$'

let record ~pred ~rule ~head ~count ~subgoals =
  if count <> 0 && capturing () && not (pseudo pred) then
    locked (fun () ->
        Metrics.inc m_records;
        let rule = intern_rule (!rule_rewrite rule) in
        let sg =
          Array.of_list (List.filter (fun (p, _) -> not (pseudo p)) subgoals)
        in
        let e = entry_of (pred, head) in
        let remove = !mode_ref = Remove || count < 0 in
        let c = abs count in
        let find () =
          List.find_opt
            (fun s ->
              (s.s_rule == rule || String.equal s.s_rule rule)
              && same_subgoals s.s_subgoals sg)
            e.sups
        in
        if remove then
          match find () with
          | Some s ->
            s.s_mult <- s.s_mult - c;
            if s.s_mult <= 0 then begin
              e.sups <- List.filter (fun s' -> s' != s) e.sups;
              decr n_supports;
              n_subgoals := !n_subgoals - Array.length sg
            end
          | None -> Metrics.inc m_unmatched
        else begin
          (match find () with
          | Some s -> s.s_mult <- s.s_mult + c
          | None ->
            if List.length e.sups >= !max_supports_v then begin
              e.sup_truncated <- true;
              Metrics.inc m_dropped
            end
            else begin
              e.sups <- { s_rule = rule; s_subgoals = sg; s_mult = c } :: e.sups;
              incr n_supports;
              n_subgoals := !n_subgoals + Array.length sg
            end);
          ()
        end;
        sync_gauges ())

let batch_begin ~algorithm =
  if capturing () then
    locked (fun () ->
        incr seq;
        ring := { seq = !seq; algorithm } :: !ring;
        if List.length !ring > ring_cap then
          ring := List.filteri (fun i _ -> i < ring_cap) !ring)

let current_batch () = !seq

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let on_transition ~pred tup kind =
  if capturing () && not (pseudo pred) then
    locked (fun () ->
        let e = entry_of (pred, tup) in
        let b = !seq in
        (match kind with
        | `Derived -> if e.first_derived = None then e.first_derived <- Some b
        | `Deleted ->
          e.last_deleted <- Some b;
          drop_sups e);
        (match e.events with
        | { batch; kind = k } :: _ when batch = b && k = kind ->
          () (* same transition already noted this batch *)
        | _ ->
          let before = List.length e.events in
          e.events <- take max_events ({ batch = b; kind } :: e.events);
          n_events := !n_events + List.length e.events - before);
        sync_gauges ())

let truncate_supports ~reason =
  if enabled () then
    locked (fun () ->
        Tbl.iter (fun _ e -> drop_sups e) table;
        last_truncate_reason := Some reason;
        Metrics.inc m_truncations;
        sync_gauges ())

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let compare_subgoal (p1, t1) (p2, t2) =
  match String.compare p1 p2 with 0 -> Tuple.compare t1 t2 | c -> c

let compare_support a b =
  match String.compare a.rule b.rule with
  | 0 ->
    (* Lexicographic on the subgoal arrays — support order must not leak
       the domain interleaving that built the store. *)
    let la = Array.length a.subgoals and lb = Array.length b.subgoals in
    let rec go i =
      if i >= la || i >= lb then Stdlib.compare la lb
      else
        match compare_subgoal a.subgoals.(i) b.subgoals.(i) with
        | 0 -> go (i + 1)
        | c -> c
    in
    go 0
  | c -> c

let supports_of ~pred tup =
  locked (fun () ->
      match Tbl.find_opt table (pred, tup) with
      | None -> []
      | Some e ->
        List.sort compare_support
          (List.map
             (fun s ->
               { rule = s.s_rule; subgoals = s.s_subgoals; mult = s.s_mult })
             e.sups))

let supports_truncated ~pred tup =
  locked (fun () ->
      match Tbl.find_opt table (pred, tup) with
      | None -> false
      | Some e -> e.sup_truncated)

let lineage_of ~pred tup =
  locked (fun () ->
      match Tbl.find_opt table (pred, tup) with
      | None -> None
      | Some e ->
        if e.first_derived = None && e.last_deleted = None && e.events = []
        then None
        else
          Some
            {
              first_derived = e.first_derived;
              last_deleted = e.last_deleted;
              events = e.events;
            })

let batches () = !ring
let supports_stored () = !n_supports
let tuples_tracked () = !n_entries

let status_json () =
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("capturing", Json.Bool (capturing ()));
      ("batches_seen", Json.int !seq);
      ("tuples_tracked", Json.int !n_entries);
      ("supports_stored", Json.int !n_supports);
      ("bytes_estimate", Json.int (bytes_estimate ()));
      ("max_supports_per_tuple", Json.int !max_supports_v);
      ("truncations", Json.int (Metrics.counter_value m_truncations));
      ("supports_dropped", Json.int (Metrics.counter_value m_dropped));
      ("unmatched_removals", Json.int (Metrics.counter_value m_unmatched));
      ( "last_truncation",
        match !last_truncate_reason with
        | None -> Json.Null
        | Some r -> Json.Str r );
    ]
