(** Query layer over the provenance store — see the interface. *)

module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value
module Ast = Ivm_datalog.Ast
module Pretty = Ivm_datalog.Pretty
module Json = Ivm_obs.Json

type db_access = {
  rules_for : string -> Ast.rule list;
  is_base : string -> bool;
  known_pred : string -> bool;
  arity : string -> int;
  holds : string -> Tuple.t -> bool;
  count : string -> Tuple.t -> int;
  probe : string -> (int * Value.t) list -> (Tuple.t -> int -> unit) -> unit;
  dup_semantics : bool;
}

(* ------------------------------------------------------------------ *)
(* Expression evaluation over partial environments                     *)
(* ------------------------------------------------------------------ *)

let rec eval_expr lookup (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Eterm (Ast.Const v) -> Some v
  | Ast.Eterm (Ast.Var x) -> lookup x
  | Ast.Eadd (a, b) -> arith2 lookup Value.add a b
  | Ast.Esub (a, b) -> arith2 lookup Value.sub a b
  | Ast.Emul (a, b) -> arith2 lookup Value.mul a b
  | Ast.Ediv (a, b) -> arith2 lookup Value.div a b
  | Ast.Eneg a -> (
    match eval_expr lookup a with
    | Some v -> ( try Some (Value.neg v) with Value.Type_error _ -> None)
    | None -> None)

and arith2 lookup f a b =
  match (eval_expr lookup a, eval_expr lookup b) with
  | Some va, Some vb -> ( try Some (f va vb) with Value.Type_error _ -> None)
  | _ -> None

(* Numeric comparison across Int/Float, the kind order otherwise —
   matching the evaluator's comparison-literal semantics. *)
let cmp_values (op : Ast.cmp_op) a b =
  let c =
    if Value.is_numeric a && Value.is_numeric b then
      Float.compare (Value.as_number a) (Value.as_number b)
    else Value.compare a b
  in
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let ground_atom lookup (a : Ast.atom) : Tuple.t option =
  let rec go acc = function
    | [] -> Some (Tuple.of_list (List.rev acc))
    | e :: rest -> (
      match eval_expr lookup e with
      | Some v -> go (v :: acc) rest
      | None -> None)
  in
  go [] a.Ast.args

let fact_to_string pred tup =
  pred ^ "("
  ^ String.concat ", " (List.map Value.to_string (Tuple.to_list tup))
  ^ ")"

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb > 0 && go 0

(* ------------------------------------------------------------------ *)
(* Support validation                                                  *)
(* ------------------------------------------------------------------ *)

(** A support is valid when its rule is still in the program, its
    recorded subgoals match the rule's positive atoms in order and all
    still hold, the rule's filters pass under the induced bindings, and
    the head expressions evaluate back to the node's tuple.  Aggregate
    literals (and anything left unbound by them) are not re-evaluated —
    validation is partial there by design. *)
let validate_support access pred tuple (s : Prov.support) =
  (not (access.is_base pred))
  &&
  match
    List.find_opt
      (fun r -> String.equal (Pretty.rule_to_string r) s.rule)
      (access.rules_for pred)
  with
  | None -> false
  | Some r ->
    let env : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
    let lookup x = Hashtbl.find_opt env x in
    let unify_arg e v =
      match e with
      | Ast.Eterm (Ast.Var x) -> (
        match lookup x with
        | Some v' -> Value.equal v' v
        | None ->
          Hashtbl.add env x v;
          true)
      | e -> (
        match eval_expr lookup e with
        | Some v' -> Value.equal v' v
        | None -> false)
    in
    let unify_atom (a : Ast.atom) tup =
      let vals = Tuple.to_list tup in
      List.length a.Ast.args = List.length vals
      && List.for_all2 unify_arg a.Ast.args vals
    in
    (* Pass 1: positive atoms consume the recorded subgoals in order. *)
    let sg = ref (Array.to_list s.subgoals) in
    let pos_ok =
      List.for_all
        (fun lit ->
          match lit with
          | Ast.Lpos a -> (
            match !sg with
            | (p, t) :: rest when String.equal p a.Ast.pred ->
              sg := rest;
              access.holds p t && unify_atom a t
            | _ -> false)
          | _ -> true)
        r.Ast.body
      && !sg = []
    in
    pos_ok
    &&
    (* Pass 2: filters to fixpoint — comparisons check or bind, ground
       negations check; aggregates are accepted unverified. *)
    let exact = ref true in
    let ok = ref true in
    let pending =
      ref
        (List.filter
           (function Ast.Lpos _ -> false | _ -> true)
           r.Ast.body)
    in
    let progress = ref true in
    while !progress && !ok do
      progress := false;
      pending :=
        List.filter
          (fun lit ->
            match lit with
            | Ast.Lpos _ -> false
            | Ast.Lcmp (l, op, rr) -> (
              match (eval_expr lookup l, eval_expr lookup rr) with
              | Some a, Some b ->
                if not (cmp_values op a b) then ok := false;
                progress := true;
                false
              | None, Some v -> (
                match (l, op) with
                | Ast.Eterm (Ast.Var x), Ast.Eq ->
                  Hashtbl.add env x v;
                  progress := true;
                  false
                | _ -> true)
              | Some v, None -> (
                match (rr, op) with
                | Ast.Eterm (Ast.Var x), Ast.Eq ->
                  Hashtbl.add env x v;
                  progress := true;
                  false
                | _ -> true)
              | None, None -> true)
            | Ast.Lneg a -> (
              match ground_atom lookup a with
              | Some tup ->
                if access.holds a.Ast.pred tup then ok := false;
                progress := true;
                false
              | None -> true)
            | Ast.Lagg _ ->
              exact := false;
              progress := true;
              false)
          !pending
    done;
    if !pending <> [] then exact := false;
    !ok
    &&
    (* Head: every evaluable argument must reproduce the tuple. *)
    let vals = Tuple.to_list tuple in
    List.length r.Ast.head.Ast.args = List.length vals
    && List.for_all2
         (fun e v ->
           match eval_expr lookup e with
           | Some v' -> Value.equal v' v
           | None -> not !exact)
         r.Ast.head.Ast.args vals

(* ------------------------------------------------------------------ *)
(* why                                                                 *)
(* ------------------------------------------------------------------ *)

type tree = { t_pred : string; t_tuple : Tuple.t; t_kind : kind }

and kind =
  | Base
  | Derived of { supports : deriv list; truncated : bool; elided : int }
  | Cycle
  | Depth_limit
  | Unsupported

and deriv = {
  d_rule : string;
  d_mult : int;
  d_note : string option;
  d_children : tree list;
}

type why_result = Why_unknown_pred | Why_absent | Why_tree of tree

let why ?(max_depth = 8) ?(max_width = 4) access pred tuple =
  if not (access.known_pred pred) then Why_unknown_pred
  else if not (access.holds pred tuple) then Why_absent
  else begin
    let rec node path depth p t =
      let mk k = { t_pred = p; t_tuple = t; t_kind = k } in
      if access.is_base p then mk Base
      else if
        List.exists
          (fun (p', t') -> String.equal p p' && Tuple.equal t t')
          path
      then mk Cycle
      else if depth >= max_depth then mk Depth_limit
      else begin
        let sups =
          List.filter (validate_support access p t) (Prov.supports_of ~pred:p t)
        in
        let truncated = Prov.supports_truncated ~pred:p t in
        match sups with
        | [] -> mk Unsupported
        | _ ->
          let shown = take max_width sups in
          let elided = List.length sups - List.length shown in
          let path = (p, t) :: path in
          let deriv (s : Prov.support) =
            {
              d_rule = s.Prov.rule;
              d_mult = s.Prov.mult;
              d_note =
                (if contains_sub s.Prov.rule "groupby(" then
                   Some "aggregate subgoal not expanded"
                 else None);
              d_children =
                List.map
                  (fun (p', t') -> node path (depth + 1) p' t')
                  (Array.to_list s.Prov.subgoals);
            }
          in
          mk (Derived { supports = List.map deriv shown; truncated; elided })
      end
    in
    Why_tree (node [] 0 pred tuple)
  end

(* ------------------------------------------------------------------ *)
(* why not                                                             *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_rule : string;
  f_progress : int;
  f_total : int;
  f_failing : string option;
  f_bindings : (string * Value.t) list;
  f_note : string;
}

type whynot_result =
  | Whynot_unknown_pred
  | Whynot_present of int
  | Whynot_base
  | Whynot_no_rules
  | Whynot_failures of failure list

let lookup_in env x = List.assoc_opt x env

(* Re-evaluate one aggregate literal under [env] (group variables must
   be bound).  A best-effort mirror of the evaluator's semantics: set
   semantics weighs each distinct source tuple once, duplicate
   semantics by its count. *)
let compute_agg access env (agg : Ast.aggregate) : (Value.t, string) result =
  let src = agg.Ast.agg_source in
  if not (access.known_pred src.Ast.pred) then
    Error ("unknown predicate " ^ src.Ast.pred)
  else begin
    let lookup = lookup_in env in
    let extend_src env tup =
      let rec go env args vals =
        match (args, vals) with
        | [], [] -> Some env
        | e :: args, v :: vals -> (
          match e with
          | Ast.Eterm (Ast.Var x) -> (
            match List.assoc_opt x env with
            | Some v' -> if Value.equal v' v then go env args vals else None
            | None -> go ((x, v) :: env) args vals)
          | e -> (
            match eval_expr (lookup_in env) e with
            | Some v' -> if Value.equal v' v then go env args vals else None
            | None -> None))
        | _ -> None
      in
      go env src.Ast.args (Tuple.to_list tup)
    in
    let bound =
      List.concat
        (List.mapi
           (fun j e ->
             match eval_expr lookup e with Some v -> [ (j, v) ] | None -> [])
           src.Ast.args)
    in
    let cnt = ref 0 and sum = ref 0.0 and all_int = ref true in
    let mn = ref None and mx = ref None and bad = ref None in
    access.probe src.Ast.pred bound (fun tup c ->
        match extend_src env tup with
        | None -> ()
        | Some env' -> (
          let w = if access.dup_semantics then c else 1 in
          cnt := !cnt + w;
          match agg.Ast.agg_fn with
          | Ast.Count -> ()
          | fn -> (
            match eval_expr (lookup_in env') agg.Ast.agg_arg with
            | None -> bad := Some "aggregated expression not evaluable"
            | Some v -> (
              match fn with
              | Ast.Count -> ()
              | Ast.Min ->
                mn :=
                  Some
                    (match !mn with
                    | None -> v
                    | Some m -> if Value.compare v m < 0 then v else m)
              | Ast.Max ->
                mx :=
                  Some
                    (match !mx with
                    | None -> v
                    | Some m -> if Value.compare v m > 0 then v else m)
              | Ast.Sum | Ast.Avg -> (
                try
                  (match v with Value.Int _ -> () | _ -> all_int := false);
                  sum := !sum +. (Value.as_number v *. float_of_int w)
                with Value.Type_error _ ->
                  bad := Some "non-numeric value under sum/avg")))));
    match !bad with
    | Some msg -> Error msg
    | None ->
      if !cnt = 0 then Error "the group is empty (no source tuples match)"
      else (
        match agg.Ast.agg_fn with
        | Ast.Count -> Ok (Value.Int !cnt)
        | Ast.Min -> (
          match !mn with Some v -> Ok v | None -> Error "no values")
        | Ast.Max -> (
          match !mx with Some v -> Ok v | None -> Error "no values")
        | Ast.Sum ->
          Ok
            (if !all_int && Float.is_integer !sum then
               Value.Int (int_of_float !sum)
             else Value.Float !sum)
        | Ast.Avg -> Ok (Value.Float (!sum /. float_of_int !cnt)))
  end

let analyze_rule ~max_nodes access tuple (r : Ast.rule) : failure =
  let rule_str = Pretty.rule_to_string r in
  let total = List.length r.Ast.body in
  let mk_fail ~progress ~failing ~env note =
    {
      f_rule = rule_str;
      f_progress = progress;
      f_total = total;
      f_failing = failing;
      f_bindings = List.rev env;
      f_note = note;
    }
  in
  (* Head unification: bind variables, check constants, defer computed
     arguments until the body binds their variables. *)
  let vals = Tuple.to_list tuple in
  if List.length r.Ast.head.Ast.args <> List.length vals then
    mk_fail ~progress:(-1) ~failing:None ~env:[] "head arity mismatch"
  else begin
    let head_fail = ref None in
    let deferred = ref [] in
    let env0 =
      List.fold_left2
        (fun env e v ->
          if !head_fail <> None then env
          else
            match e with
            | Ast.Eterm (Ast.Var x) -> (
              match List.assoc_opt x env with
              | Some v' ->
                if Value.equal v' v then env
                else begin
                  head_fail :=
                    Some
                      (Printf.sprintf
                         "head variable %s would need to be both %s and %s" x
                         (Value.to_string v') (Value.to_string v));
                  env
                end
              | None -> (x, v) :: env)
            | Ast.Eterm (Ast.Const c) ->
              if Value.equal c v then env
              else begin
                head_fail :=
                  Some
                    (Printf.sprintf "head constant %s does not match %s"
                       (Value.to_string c) (Value.to_string v));
                env
              end
            | e ->
              deferred := (e, v) :: !deferred;
              env)
        [] r.Ast.head.Ast.args vals
    in
    match !head_fail with
    | Some msg ->
      mk_fail ~progress:(-1) ~failing:None ~env:[] ("head cannot match: " ^ msg)
    | None ->
      let lits = Array.of_list r.Ast.body in
      let n = Array.length lits in
      let used = Array.make n false in
      let budget = ref max_nodes in
      let best_progress = ref (-2) in
      let best =
        ref (mk_fail ~progress:0 ~failing:None ~env:env0 "no subgoal attempted")
      in
      let succeeded = ref false in
      let record_fail env progress failing note =
        if progress > !best_progress then begin
          best_progress := progress;
          best := mk_fail ~progress ~failing ~env note
        end
      in
      let check_deferred env =
        let lookup = lookup_in env in
        let rec go = function
          | [] -> Ok ()
          | (e, v) :: rest -> (
            match eval_expr lookup e with
            | Some v' ->
              if Value.equal v' v then go rest
              else
                Error
                  (Printf.sprintf "head expression evaluates to %s, not %s"
                     (Value.to_string v') (Value.to_string v))
            | None -> Error "head expression not determined by the body")
        in
        go !deferred
      in
      let extend env (a : Ast.atom) tup =
        let rec go env args vals =
          match (args, vals) with
          | [], [] -> Some env
          | e :: args, v :: vals -> (
            match e with
            | Ast.Eterm (Ast.Var x) -> (
              match List.assoc_opt x env with
              | Some v' -> if Value.equal v' v then go env args vals else None
              | None -> go ((x, v) :: env) args vals)
            | e -> (
              match eval_expr (lookup_in env) e with
              | Some v' -> if Value.equal v' v then go env args vals else None
              | None -> None))
          | _ -> None
        in
        go env a.Ast.args (Tuple.to_list tup)
      in
      (* Pick the next literal: ready comparisons first, then binding
         comparisons, ground negations, the most-bound positive atom,
         ready aggregates; [`Stuck] when something is left but nothing
         can make progress. *)
      let pick env =
        let lookup = lookup_in env in
        let evb e = eval_expr lookup e in
        let ready_cmp = ref None and binder = ref None in
        let ready_neg = ref None and best_pos = ref None in
        let ready_agg = ref None in
        Array.iteri
          (fun i lit ->
            if not used.(i) then
              match lit with
              | Ast.Lcmp (l, op, rr) -> (
                match (evb l, evb rr) with
                | Some a, Some b ->
                  if !ready_cmp = None then ready_cmp := Some (i, op, a, b)
                | None, Some v -> (
                  match (l, op) with
                  | Ast.Eterm (Ast.Var x), Ast.Eq ->
                    if !binder = None then binder := Some (i, x, v)
                  | _ -> ())
                | Some v, None -> (
                  match (rr, op) with
                  | Ast.Eterm (Ast.Var x), Ast.Eq ->
                    if !binder = None then binder := Some (i, x, v)
                  | _ -> ())
                | None, None -> ())
              | Ast.Lneg a -> (
                match ground_atom lookup a with
                | Some tup ->
                  if !ready_neg = None then ready_neg := Some (i, a, tup)
                | None -> ())
              | Ast.Lagg agg ->
                if
                  List.for_all
                    (fun x -> lookup x <> None)
                    agg.Ast.agg_group_by
                  && !ready_agg = None
                then ready_agg := Some (i, agg)
              | Ast.Lpos a ->
                let nb =
                  List.length
                    (List.filter (fun e -> evb e <> None) a.Ast.args)
                in
                let better =
                  match !best_pos with
                  | Some (_, _, nb') -> nb > nb'
                  | None -> true
                in
                if better then best_pos := Some (i, a, nb))
          lits;
        match (!ready_cmp, !binder, !ready_neg, !best_pos, !ready_agg) with
        | Some c, _, _, _, _ -> Some (`Cmp c)
        | None, Some b, _, _, _ -> Some (`Bind b)
        | None, None, Some ng, _, _ -> Some (`Neg ng)
        | None, None, None, Some p, _ -> Some (`Pos p)
        | None, None, None, None, Some ag -> Some (`Agg ag)
        | None, None, None, None, None ->
          let stuck = ref None in
          Array.iteri
            (fun i _ -> if (not used.(i)) && !stuck = None then stuck := Some i)
            lits;
          Option.map (fun i -> `Stuck i) !stuck
      in
      let rec step env progress =
        if (not !succeeded) && !budget > 0 then begin
          decr budget;
          match pick env with
          | None -> (
            match check_deferred env with
            | Ok () -> succeeded := true
            | Error msg -> record_fail env progress None msg)
          | Some (`Cmp (i, op, a, b)) ->
            used.(i) <- true;
            if cmp_values op a b then step env (progress + 1)
            else
              record_fail env progress
                (Some (Pretty.literal_to_string lits.(i)))
                (Printf.sprintf "comparison is false (%s vs %s)"
                   (Value.to_string a) (Value.to_string b));
            used.(i) <- false
          | Some (`Bind (i, x, v)) ->
            used.(i) <- true;
            step ((x, v) :: env) (progress + 1);
            used.(i) <- false
          | Some (`Neg (i, a, tup)) ->
            used.(i) <- true;
            if access.holds a.Ast.pred tup then
              record_fail env progress
                (Some (Pretty.literal_to_string lits.(i)))
                ("negated subgoal holds: " ^ fact_to_string a.Ast.pred tup)
            else step env (progress + 1);
            used.(i) <- false
          | Some (`Pos (i, a, _)) ->
            used.(i) <- true;
            let lookup = lookup_in env in
            let bound =
              List.concat
                (List.mapi
                   (fun j e ->
                     match eval_expr lookup e with
                     | Some v -> [ (j, v) ]
                     | None -> [])
                   a.Ast.args)
            in
            let found = ref false in
            if access.known_pred a.Ast.pred then
              access.probe a.Ast.pred bound (fun tup _c ->
                  if (not !succeeded) && !budget > 0 then
                    match extend env a tup with
                    | Some env' ->
                      found := true;
                      step env' (progress + 1)
                    | None -> ());
            if (not !found) && not !succeeded then
              record_fail env progress
                (Some (Pretty.literal_to_string lits.(i)))
                (if bound = [] then
                   Printf.sprintf "no %s facts at all" a.Ast.pred
                 else
                   Printf.sprintf "no matching %s fact under these bindings"
                     a.Ast.pred);
            used.(i) <- false
          | Some (`Agg (i, agg)) ->
            used.(i) <- true;
            (match compute_agg access env agg with
            | Ok v -> (
              let x = agg.Ast.agg_result in
              match lookup_in env x with
              | Some v' ->
                if Value.equal v' v then step env (progress + 1)
                else
                  record_fail env progress
                    (Some (Pretty.literal_to_string lits.(i)))
                    (Printf.sprintf "aggregate evaluates to %s, not %s"
                       (Value.to_string v) (Value.to_string v'))
              | None -> step ((x, v) :: env) (progress + 1))
            | Error msg ->
              record_fail env progress
                (Some (Pretty.literal_to_string lits.(i)))
                msg);
            used.(i) <- false
          | Some (`Stuck i) ->
            record_fail env progress
              (Some (Pretty.literal_to_string lits.(i)))
              "subgoal cannot be instantiated (unbound variables)"
        end
      in
      step env0 0;
      if !succeeded then
        mk_fail ~progress:total ~failing:None ~env:env0
          "every subgoal is satisfiable — a derivation exists, so the \
           stored view may be stale"
      else if !budget <= 0 && !best_progress < 0 then
        mk_fail ~progress:0 ~failing:None ~env:env0
          "search budget exhausted before a definite failure was found"
      else !best
  end

let whynot ?(max_nodes = 20_000) access pred tuple =
  if not (access.known_pred pred) then Whynot_unknown_pred
  else begin
    let c = access.count pred tuple in
    if c > 0 then Whynot_present c
    else if access.is_base pred then Whynot_base
    else
      match access.rules_for pred with
      | [] -> Whynot_no_rules
      | rules ->
        Whynot_failures (List.map (analyze_rule ~max_nodes access tuple) rules)
  end

(* ------------------------------------------------------------------ *)
(* lineage                                                             *)
(* ------------------------------------------------------------------ *)

type lineage_report = {
  l_pred : string;
  l_tuple : Tuple.t;
  l_present : bool;
  l_count : int;
  l_info : Prov.lineage option;
  l_batches : Prov.batch_info list;
}

type lineage_result = Lineage_unknown_pred | Lineage of lineage_report

let lineage access pred tuple =
  if not (access.known_pred pred) then Lineage_unknown_pred
  else
    Lineage
      {
        l_pred = pred;
        l_tuple = tuple;
        l_present = access.holds pred tuple;
        l_count = access.count pred tuple;
        l_info = Prov.lineage_of ~pred tuple;
        l_batches = Prov.batches ();
      }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let rec render_tree buf indent t =
  let pad = String.make indent ' ' in
  let fact = fact_to_string t.t_pred t.t_tuple in
  match t.t_kind with
  | Base -> Buffer.add_string buf (Printf.sprintf "%s%s  [base fact]\n" pad fact)
  | Cycle ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s  [cycle: already shown above]\n" pad fact)
  | Depth_limit ->
    Buffer.add_string buf (Printf.sprintf "%s%s  [depth limit]\n" pad fact)
  | Unsupported ->
    Buffer.add_string buf
      (Printf.sprintf
         "%s%s  [present, but no stored support — derived before capture \
          was enabled, or truncated]\n"
         pad fact)
  | Derived { supports; truncated; elided } ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s  [derived%s]\n" pad fact
         (if truncated then ", support set truncated" else ""));
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "%s  via %s%s%s\n" pad d.d_rule
             (if d.d_mult > 1 then Printf.sprintf " (x%d)" d.d_mult else "")
             (match d.d_note with Some n -> "  [" ^ n ^ "]" | None -> ""));
        List.iter (render_tree buf (indent + 4)) d.d_children)
      supports;
    if elided > 0 then
      Buffer.add_string buf
        (Printf.sprintf "%s  (+%d more supports not shown)\n" pad elided)

let pp_why fmt = function
  | Why_unknown_pred -> Format.pp_print_string fmt "unknown predicate\n"
  | Why_absent ->
    Format.pp_print_string fmt
      "the tuple is not in the view — try 'why not'\n"
  | Why_tree t ->
    let buf = Buffer.create 256 in
    render_tree buf 0 t;
    Format.pp_print_string fmt (Buffer.contents buf)

let pp_bindings fmt = function
  | [] -> ()
  | bs ->
    Format.fprintf fmt " with %s"
      (String.concat ", "
         (List.map (fun (x, v) -> x ^ "=" ^ Value.to_string v) bs))

let pp_whynot pred tuple fmt = function
  | Whynot_unknown_pred -> Format.fprintf fmt "unknown predicate %s\n" pred
  | Whynot_present c ->
    Format.fprintf fmt
      "%s IS present (count %d) — use 'why' for its derivations\n"
      (fact_to_string pred tuple) c
  | Whynot_base ->
    Format.fprintf fmt
      "%s is an absent base fact — it was never inserted (or was deleted); \
       insert it with +%s.\n"
      (fact_to_string pred tuple)
      (fact_to_string pred tuple)
  | Whynot_no_rules ->
    Format.fprintf fmt "no rules derive %s\n" (fact_to_string pred tuple)
  | Whynot_failures fs ->
    Format.fprintf fmt "%s is absent; candidate rules:\n"
      (fact_to_string pred tuple);
    List.iter
      (fun f ->
        Format.fprintf fmt "  rule: %s\n" f.f_rule;
        if f.f_progress < 0 then Format.fprintf fmt "    %s\n" f.f_note
        else begin
          Format.fprintf fmt "    deepest attempt satisfied %d/%d subgoals%a\n"
            f.f_progress f.f_total pp_bindings f.f_bindings;
          match f.f_failing with
          | Some lit ->
            Format.fprintf fmt "    first failing subgoal: %s — %s\n" lit
              f.f_note
          | None -> Format.fprintf fmt "    %s\n" f.f_note
        end)
      fs

let algorithm_of batches seq =
  match List.find_opt (fun b -> b.Prov.seq = seq) batches with
  | Some b -> Some b.Prov.algorithm
  | None -> None

let batch_str batches seq =
  match algorithm_of batches seq with
  | Some a -> Printf.sprintf "batch %d (%s)" seq a
  | None -> Printf.sprintf "batch %d" seq

let pp_lineage fmt = function
  | Lineage_unknown_pred -> Format.pp_print_string fmt "unknown predicate\n"
  | Lineage r -> (
    Format.fprintf fmt "%s: %s\n"
      (fact_to_string r.l_pred r.l_tuple)
      (if r.l_present then Printf.sprintf "present (count %d)" r.l_count
       else "absent");
    match r.l_info with
    | None ->
      Format.pp_print_string fmt
        "  no lineage recorded (derived before provenance was enabled, or \
         capture is off)\n"
    | Some info ->
      (match info.Prov.first_derived with
      | Some b ->
        Format.fprintf fmt "  first derived: %s\n" (batch_str r.l_batches b)
      | None -> Format.pp_print_string fmt "  first derived: before capture\n");
      (match info.Prov.last_deleted with
      | Some b ->
        Format.fprintf fmt "  last deleted: %s\n" (batch_str r.l_batches b)
      | None -> Format.pp_print_string fmt "  last deleted: never\n");
      if info.Prov.events <> [] then begin
        Format.pp_print_string fmt "  events (newest first):\n";
        List.iter
          (fun (e : Prov.event) ->
            Format.fprintf fmt "    %s: %s\n" (batch_str r.l_batches e.batch)
              (match e.kind with `Derived -> "derived" | `Deleted -> "deleted"))
          info.Prov.events
      end)

(* ---------------- JSON ---------------- *)

let value_json = function
  | Value.Int n -> Json.int n
  | Value.Float f -> Json.Num f
  | Value.Str s -> Json.Str s
  | Value.Bool b -> Json.Bool b

let fact_json pred tup =
  Json.Obj
    [
      ("pred", Json.Str pred);
      ("args", Json.List (List.map value_json (Tuple.to_list tup)));
    ]

let rec tree_json t =
  let base k extra =
    Json.Obj
      ((("fact", fact_json t.t_pred t.t_tuple) :: ("kind", Json.Str k) :: extra))
  in
  match t.t_kind with
  | Base -> base "base" []
  | Cycle -> base "cycle" []
  | Depth_limit -> base "depth_limit" []
  | Unsupported -> base "unsupported" []
  | Derived { supports; truncated; elided } ->
    base "derived"
      [
        ("truncated", Json.Bool truncated);
        ("elided", Json.int elided);
        ("supports", Json.List (List.map deriv_json supports));
      ]

and deriv_json d =
  Json.Obj
    ([
       ("rule", Json.Str d.d_rule);
       ("mult", Json.int d.d_mult);
       ("subgoals", Json.List (List.map tree_json d.d_children));
     ]
    @ match d.d_note with Some n -> [ ("note", Json.Str n) ] | None -> [])

let why_json = function
  | Why_unknown_pred -> Json.Obj [ ("result", Json.Str "unknown_pred") ]
  | Why_absent -> Json.Obj [ ("result", Json.Str "absent") ]
  | Why_tree t ->
    Json.Obj [ ("result", Json.Str "tree"); ("tree", tree_json t) ]

let failure_json f =
  Json.Obj
    [
      ("rule", Json.Str f.f_rule);
      ("satisfied", Json.int f.f_progress);
      ("body_literals", Json.int f.f_total);
      ( "failing",
        match f.f_failing with Some l -> Json.Str l | None -> Json.Null );
      ( "bindings",
        Json.Obj (List.map (fun (x, v) -> (x, value_json v)) f.f_bindings) );
      ("note", Json.Str f.f_note);
    ]

let whynot_json = function
  | Whynot_unknown_pred -> Json.Obj [ ("result", Json.Str "unknown_pred") ]
  | Whynot_present c ->
    Json.Obj [ ("result", Json.Str "present"); ("count", Json.int c) ]
  | Whynot_base -> Json.Obj [ ("result", Json.Str "base_absent") ]
  | Whynot_no_rules -> Json.Obj [ ("result", Json.Str "no_rules") ]
  | Whynot_failures fs ->
    Json.Obj
      [
        ("result", Json.Str "failures");
        ("rules", Json.List (List.map failure_json fs));
      ]

let lineage_json = function
  | Lineage_unknown_pred -> Json.Obj [ ("result", Json.Str "unknown_pred") ]
  | Lineage r ->
    let opt_int = function Some n -> Json.int n | None -> Json.Null in
    Json.Obj
      [
        ("result", Json.Str "lineage");
        ("fact", fact_json r.l_pred r.l_tuple);
        ("present", Json.Bool r.l_present);
        ("count", Json.int r.l_count);
        ( "info",
          match r.l_info with
          | None -> Json.Null
          | Some info ->
            Json.Obj
              [
                ("first_derived", opt_int info.Prov.first_derived);
                ("last_deleted", opt_int info.Prov.last_deleted);
                ( "events",
                  Json.List
                    (List.map
                       (fun (e : Prov.event) ->
                         Json.Obj
                           [
                             ("batch", Json.int e.batch);
                             ( "kind",
                               Json.Str
                                 (match e.kind with
                                 | `Derived -> "derived"
                                 | `Deleted -> "deleted") );
                           ])
                       info.Prov.events) );
              ] );
        ( "batches",
          Json.List
            (List.map
               (fun (b : Prov.batch_info) ->
                 Json.Obj
                   [
                     ("seq", Json.int b.seq);
                     ("algorithm", Json.Str b.algorithm);
                   ])
               r.l_batches) );
      ]
