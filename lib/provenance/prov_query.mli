(** Query layer over the provenance store: [why] derivation trees,
    [why not] failure analysis, and [lineage] batch history.

    This module never touches the database directly — callers hand it a
    {!db_access} record of closures (built by [Ivm.View_manager]), which
    keeps the provenance library below the evaluator in the build graph.

    [why] {e validates at read time}: every stored support is re-checked
    against the live database (its rule still exists, its subgoals still
    hold, comparisons pass, the head expressions still evaluate to the
    node's tuple) and stale supports are dropped, so a tree edge is an
    actual current derivation even if the store lags (DRed set semantics
    can leave supports whose multiplicities drifted). *)

module Tuple = Ivm_relation.Tuple
module Value = Ivm_relation.Value

(** Database access closures.  [probe p bound f] calls [f tuple count]
    for every present tuple of [p] whose listed (column, value)
    constraints match; [bound = []] scans. *)
type db_access = {
  rules_for : string -> Ivm_datalog.Ast.rule list;
  is_base : string -> bool;
  known_pred : string -> bool;
  arity : string -> int;
  holds : string -> Tuple.t -> bool;
  count : string -> Tuple.t -> int;
  probe : string -> (int * Value.t) list -> (Tuple.t -> int -> unit) -> unit;
  dup_semantics : bool;  (** duplicate semantics: aggregate re-checks
                             weight source tuples by count *)
}

(** {1 why} *)

type tree = { t_pred : string; t_tuple : Tuple.t; t_kind : kind }

and kind =
  | Base  (** a base fact — a leaf *)
  | Derived of { supports : deriv list; truncated : bool; elided : int }
      (** validated supports; [truncated] — the capture-side bound
          dropped some; [elided] — the width bound hid some here *)
  | Cycle  (** this tuple already appears on the path to the root *)
  | Depth_limit
  | Unsupported
      (** present, but no stored support survived validation (captured
          before enablement, or truncated — re-run the bootstrap) *)

and deriv = {
  d_rule : string;  (** pretty-printed source rule *)
  d_mult : int;
  d_note : string option;  (** e.g. aggregate subgoals not expanded *)
  d_children : tree list;
}

type why_result = Why_unknown_pred | Why_absent | Why_tree of tree

(** Depth default 8, width (supports shown per node) default 4. *)
val why :
  ?max_depth:int -> ?max_width:int -> db_access -> string -> Tuple.t ->
  why_result

(** Re-validate one stored support against the live database (exposed
    for the property suite, which checks every tree edge independently). *)
val validate_support : db_access -> string -> Tuple.t -> Prov.support -> bool

(** {1 why not} *)

type failure = {
  f_rule : string;
  f_progress : int;
      (** body literals satisfied on the deepest partial instantiation;
          [-1] when the head itself cannot match *)
  f_total : int;  (** body literals in the rule *)
  f_failing : string option;  (** the first failing literal, pretty-printed *)
  f_bindings : (string * Value.t) list;  (** bindings at the failure *)
  f_note : string;
}

type whynot_result =
  | Whynot_unknown_pred
  | Whynot_present of int  (** the tuple is in the view (with this count) *)
  | Whynot_base  (** base predicate: absent because never inserted *)
  | Whynot_no_rules
  | Whynot_failures of failure list  (** one per candidate rule *)

(** Bounded backtracking search per candidate rule: unify the head,
    instantiate body literals most-bound-first, and report the deepest
    failure.  [max_nodes] (default 20000) bounds the whole search. *)
val whynot : ?max_nodes:int -> db_access -> string -> Tuple.t -> whynot_result

(** {1 lineage} *)

type lineage_report = {
  l_pred : string;
  l_tuple : Tuple.t;
  l_present : bool;
  l_count : int;
  l_info : Prov.lineage option;
  l_batches : Prov.batch_info list;  (** the batch ring, for naming *)
}

type lineage_result = Lineage_unknown_pred | Lineage of lineage_report

val lineage : db_access -> string -> Tuple.t -> lineage_result

(** {1 Rendering} *)

val fact_to_string : string -> Tuple.t -> string
val pp_why : Format.formatter -> why_result -> unit
val pp_whynot : string -> Tuple.t -> Format.formatter -> whynot_result -> unit
val pp_lineage : Format.formatter -> lineage_result -> unit
val why_json : why_result -> Ivm_obs.Json.t
val whynot_json : whynot_result -> Ivm_obs.Json.t
val lineage_json : lineage_result -> Ivm_obs.Json.t
