(** Delta-rule machinery shared by the counting algorithm and its
    recursive extension: the per-round maintenance context, Definition
    6.1's [Δ(¬Q)], Algorithm 6.1's [Δ(T)], and the wiring of one delta
    rule of Definition 4.1 (positions before the delta read new views, the
    delta position enumerates the change, positions after read old
    views). *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Database = Ivm_eval.Database
module Compile = Ivm_eval.Compile
module Rule_eval = Ivm_eval.Rule_eval

type version = Old | New

type ctx = {
  db : Database.t;
  full : (string, Relation.t) Hashtbl.t;
      (** per predicate: the full count delta of this maintenance round *)
  propagated : (string, Relation.t) Hashtbl.t;
      (** what delta positions enumerate: [full] under duplicate
          semantics, the ±1 set transition under set semantics (the boxed
          statement 2 of Algorithm 4.1) *)
  neg_deltas : (string, Relation.t) Hashtbl.t;  (** Definition 6.1 cache *)
  agg_deltas : (string, Relation.t) Hashtbl.t;  (** Algorithm 6.1 cache *)
  grouped : (string, Relation.t) Hashtbl.t;  (** old/new grouped relations *)
}

val create : Database.t -> ctx

(** The accumulated full delta of a predicate (empty if unchanged). *)
val full_delta : ctx -> string -> Relation.t

(** The delta enumerated at delta positions. *)
val propagated_delta : ctx -> string -> Relation.t

val has_delta : ctx -> string -> bool

(** Record a predicate's delta for this round; derives the propagated
    version from the database's semantics against the (uncommitted)
    stored relation. *)
val set_delta : ctx -> string -> full:Relation.t -> unit

(** The stored (pre-maintenance) relation. *)
val old_view : ctx -> string -> Relation_view.t

(** [old ⊎ Δ] as a lazy overlay; collapses to the stored relation when the
    predicate has no delta. *)
val new_view : ctx -> string -> Relation_view.t

val view : ctx -> version -> string -> Relation_view.t

(** Definition 6.1: [Δ(¬Q)] — [t] with count +1 when deleted outright from
    [Q], −1 when inserted into a previously-false slot; computable from
    [Δ(Q)], [Q], [Qν] alone, so the delta literal can stay first in the
    join order. *)
val neg_delta : ctx -> string -> Relation.t

(** The grouped relation [T] of a GROUPBY spec over the old or new version
    of its source, cached per spec signature. *)
val grouped : ctx -> version -> Compile.agg_spec -> Relation.t

(** Algorithm 6.1: [Δ(T)], touching only the groups occurring in the
    source's delta; cached. *)
val agg_delta : ctx -> Compile.agg_spec -> Relation.t

(** Is there a non-empty delta behind this body literal? *)
val lit_delta_nonempty : ctx -> Compile.clit -> bool

(** The delta relation enumerated when the literal is a seed position.
    Raises on comparison literals (they carry no delta). *)
val seed_relation : ctx -> Compile.clit -> Relation.t

(** Inputs for the delta rule seeded at body position [pos]
    (Definition 4.1, extended to negation and aggregation).
    [seed_override] replaces the delta enumerated at the seed position —
    parallel fan-out passes one {!Ivm_eval.Par_eval.split} chunk per
    task. *)
val delta_rule_inputs :
  ?seed_override:Relation.t ->
  ctx ->
  Compile.t ->
  pos:int ->
  int ->
  Rule_eval.subgoal_input

(** Evaluate every applicable delta rule of the compiled rule,
    [⊎]-accumulating into [out]. *)
val apply_delta_rules : ctx -> Compile.t -> out:Relation.t -> unit

(** Sequentially populate every lazy ctx cache a parallel evaluation of
    the rule's delta rules will read — first touch must never happen
    inside a worker thunk. *)
val prepare_rule : ctx -> Compile.t -> unit

(** The rule's delta rules as independent read-only thunks (one per seed
    position × seed chunk), each emitting into a private relation.  Run
    them with {!Ivm_par.parallel_map} and ⊎-merge in task order;
    {!prepare_rule} must have run first. *)
val delta_rule_thunks : ctx -> Compile.t -> chunks:int -> (unit -> Relation.t) array

(** Evaluate the delta rules of all compiled rules across the domain
    pool, ⊎-merging into [out] in fixed task order; the plain sequential
    loop when one domain is configured. *)
val apply_delta_rules_par : ctx -> Compile.t list -> out:Relation.t -> unit

(** Commit all accumulated deltas into the stored relations; returns the
    non-empty (predicate, delta) pairs, sorted.  [?record pred tup c]
    observes every applied per-tuple stored-count difference (the
    snapshot publisher's net-change feed).
    @raise Invalid_argument if a count would go negative (the caller
    violated Lemma 4.1's precondition). *)
val commit :
  ?record:(string -> Ivm_relation.Tuple.t -> int -> unit) ->
  ctx ->
  (string * Relation.t) list
