(** The library's front door: a materialized-view database plus an
    incremental-maintenance policy.

    A manager owns a {!Ivm_eval.Database} (program + stored relations with
    derivation counts) and routes every change batch through one of the
    paper's algorithms; [Auto] follows the paper's own recommendation —
    counting for nonrecursive programs, DRed otherwise (Section 1). *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

type algorithm =
  | Counting  (** Algorithm 4.1; nonrecursive programs, either semantics *)
  | Dred  (** Section 7; any stratified program, set semantics *)
  | Recursive_counting
      (** [GKM92]: counts through recursion, duplicate semantics; diverges
          (detected) on cyclic data *)
  | Recompute  (** the from-scratch baseline *)
  | Auto  (** counting if nonrecursive, else DRed *)

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

type t

(** Create a manager from rules and initial base facts; materializes all
    views eagerly.  [extra_base] declares base relations (name, arity) not
    otherwise mentioned.  [domains] sets the process-global domain count
    for parallel delta evaluation ({!Ivm_par.set_domains}); omitted, the
    current setting stays (1 unless [IVM_DOMAINS] or an earlier call
    changed it). *)
val create :
  ?semantics:Database.semantics ->
  ?algorithm:algorithm ->
  ?extra_base:(string * int) list ->
  ?distinct:string list ->
  ?facts:(string * Tuple.t list) list ->
  ?domains:int ->
  Ast.rule list ->
  t

(** Create from Datalog source text (rules and facts together). *)
val of_source :
  ?semantics:Database.semantics ->
  ?algorithm:algorithm ->
  ?extra_base:(string * int) list ->
  ?distinct:string list ->
  ?domains:int ->
  string ->
  t

val database : t -> Database.t
val program : t -> Program.t
val relation : t -> string -> Relation.t
val semantics : t -> Database.semantics
val algorithm : t -> algorithm

(** The algorithm [Auto] resolves to on the current program. *)
val resolve : t -> algorithm

(** Apply one batch of base-relation changes.  Returns the per-view deltas
    (set transitions under set semantics / DRed, count deltas under
    duplicate semantics); empty for [Recompute]. *)
val apply : t -> Changes.t -> (string * Relation.t) list

val insert : t -> string -> Tuple.t list -> (string * Relation.t) list
val delete : t -> string -> Tuple.t list -> (string * Relation.t) list

val update :
  t -> string -> old_tuple:Tuple.t -> new_tuple:Tuple.t ->
  (string * Relation.t) list

(** Opt every GROUPBY subgoal of the program into persistent incremental
    aggregation ([DAJ91] accumulators, {!Ivm_eval.Agg_index}): subsequent
    maintenance computes aggregate deltas from running group states
    instead of re-scanning touched groups. *)
val enable_incremental_aggregates : t -> unit

(** Add a rule to the program, incrementally maintaining all views
    (Section 7's view redefinition). *)
val add_rule : t -> Ast.rule -> unit

val add_rule_text : t -> string -> unit

(** Remove a rule (matched structurally), incrementally maintaining all
    views.  @raise Rule_changes.Unknown_rule if absent. *)
val remove_rule : t -> Ast.rule -> unit

val remove_rule_text : t -> string -> unit

(** Recompute every view from scratch and compare with the maintained
    materializations: [Ok ()] when they agree (with counts under
    count-bearing configurations, as sets under DRed/Recompute). *)
val audit : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
