(** The library's front door: a materialized-view database plus an
    incremental-maintenance policy.

    A manager owns a {!Ivm_eval.Database} (program + stored relations with
    derivation counts) and routes every change batch through one of the
    paper's algorithms; [Auto] follows the paper's own recommendation —
    counting for nonrecursive programs, DRed otherwise (Section 1). *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

type algorithm =
  | Counting  (** Algorithm 4.1; nonrecursive programs, either semantics *)
  | Dred  (** Section 7; any stratified program, set semantics *)
  | Recursive_counting
      (** [GKM92]: counts through recursion, duplicate semantics; diverges
          (detected) on cyclic data *)
  | Recompute  (** the from-scratch baseline *)
  | Auto  (** counting if nonrecursive, else DRed *)

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

type t

(** Create a manager from rules and initial base facts; materializes all
    views eagerly.  [extra_base] declares base relations (name, arity) not
    otherwise mentioned.  [domains] sets the process-global domain count
    for parallel delta evaluation ({!Ivm_par.set_domains}); omitted, the
    current setting stays (1 unless [IVM_DOMAINS] or an earlier call
    changed it).  [durable] names a store directory: if it already holds a
    store, the on-disk state wins — it is reopened through {!open_durable}
    and the given rules/facts are ignored; otherwise the fresh manager is
    snapshotted into it and subsequent batches are write-ahead logged. *)
val create :
  ?semantics:Database.semantics ->
  ?algorithm:algorithm ->
  ?extra_base:(string * int) list ->
  ?distinct:string list ->
  ?facts:(string * Tuple.t list) list ->
  ?domains:int ->
  ?durable:string ->
  Ast.rule list ->
  t

(** Create from Datalog source text (rules and facts together). *)
val of_source :
  ?semantics:Database.semantics ->
  ?algorithm:algorithm ->
  ?extra_base:(string * int) list ->
  ?distinct:string list ->
  ?domains:int ->
  ?durable:string ->
  string ->
  t

(** Wrap an already-materialized database (e.g. one loaded from a
    snapshot) without re-evaluating anything. *)
val of_database : ?algorithm:algorithm -> Database.t -> t

val database : t -> Database.t
val program : t -> Program.t
val relation : t -> string -> Relation.t
val semantics : t -> Database.semantics
val algorithm : t -> algorithm

(** The algorithm [Auto] resolves to on the current program. *)
val resolve : t -> algorithm

(** Switch the maintenance algorithm in place.  Counting requires a
    nonrecursive program (@raise Invalid_argument otherwise).  Switching
    to a count-bearing algorithm (counting / recursive counting) from a
    set-maintaining one (DRed, recompute) first re-derives every view
    from scratch — the set maintainers leave stored derivation counts
    stale.  Not WAL-logged: on a durable manager the switch folds the log
    into a fresh snapshot, like rule changes. *)
val set_algorithm : t -> algorithm -> unit

(** Apply one batch of base-relation changes.  Returns the per-view deltas
    (set transitions under set semantics / DRed, count deltas under
    duplicate semantics); empty for [Recompute].  On a durable manager the
    normalized batch is appended to the write-ahead log and fsync'd before
    maintenance runs (see {!Ivm_store.Store}). *)
val apply : t -> Changes.t -> (string * Relation.t) list

(** Stage-timing callbacks for {!apply_group}, the hook the serve path's
    request tracing hangs off ([Ivm_obs.Reqtrace]) without [lib/core]
    knowing about requests.  [batch_stage i name t0 t1] reports one
    timed stage of batch [i] ([normalize], [wal_append], [maintain]);
    [group_stage name t0 t1] reports a group-wide stage ([fsync] — once
    per group, zero-duration on a non-durable manager so every committed
    batch still carries exactly one fsync stage, ARCHITECTURE.md
    invariant 12).  Times are [Unix.gettimeofday] seconds; callbacks run
    on the applying domain and must not raise. *)
type group_hooks = {
  batch_stage : int -> string -> float -> float -> unit;
  group_stage : string -> float -> float -> unit;
}

(** Group commit: apply several batches in order with {e one} fsync.
    Each batch is normalized against the state the previous batches
    left, write-ahead logged without syncing, and maintained; one
    {!Ivm_store.Store.sync} after the last batch makes the whole group
    durable (non-durable managers skip the log entirely).  Validation
    failures are isolated to their slot ([Error msg], nothing logged or
    applied for that batch); the rest of the group proceeds.  The caller
    must not acknowledge or publish any batch of the group before this
    function returns — inside the group, maintenance runs ahead of the
    fsync (see ARCHITECTURE.md invariant 11 and [Ivm_serve.Server]).
    [hooks], when given, receives per-batch and group stage timings (a
    stage that raises reports nothing, so an [Error] slot's chain simply
    ends where the batch failed).  [track], when given, accumulates the
    group's exact net stored-count changes — base and derived — via the
    algorithms' commit-site recording ({!Changes.record}); a batch
    maintained by recomputation marks the collector incomplete instead
    (the snapshot publisher then falls back to a full copy). *)
val apply_group :
  ?hooks:group_hooks -> ?track:Changes.collector -> t -> Changes.t list ->
  ((string * Relation.t) list, string) result list

(** Out-of-band mutation counter: bumped whenever stored relations may
    have been rewritten outside tracked batch maintenance (rule
    add/remove, algorithm switch, incremental-aggregate enablement).
    Monotonic; the snapshot publisher compares it across groups. *)
val state_version : t -> int

(** {1 Durability}

    A durable manager pairs the in-memory database with an
    {!Ivm_store.Store}: a checksummed snapshot plus a write-ahead change
    log.  Every batch {!apply} validates is logged (fsync'd) before the
    maintenance algorithm touches any relation; restart replays only the
    log tail through the same maintenance path instead of re-deriving the
    views — the paper's "maintenance beats recomputation" argument applied
    to recovery. *)

(** Open an existing store directory: load the snapshot with zero
    re-evaluation, replay the surviving log tail through the normal
    maintenance path, attach the log for subsequent batches.  The returned
    {!Ivm_store.Store.recovery} says what was replayed, skipped, or
    dropped (torn/corrupt tail bytes).
    @raise Ivm_store.Store.Corrupt on an unrecoverable snapshot/log. *)
val open_durable : ?algorithm:algorithm -> string -> t * Ivm_store.Store.recovery

(** Turn an in-memory manager durable: snapshot its current state into the
    directory (created if needed) and start logging subsequent batches.
    @raise Invalid_argument if already durable or the directory already
    holds a store. *)
val make_durable : t -> dir:string -> unit

(** Fold the log into a fresh snapshot of the current state and reset it.
    Rule changes and {!enable_incremental_aggregates} — which are not
    logged — compact implicitly.
    @raise Invalid_argument on a non-durable manager. *)
val compact : t -> unit

(** [None] on a non-durable manager. *)
val store_status : t -> Ivm_store.Store.status option

val durable_dir : t -> string option

(** Close the log file descriptor and detach the store; the manager keeps
    working, in-memory only.  No-op when not durable. *)
val close_store : t -> unit

val insert : t -> string -> Tuple.t list -> (string * Relation.t) list
val delete : t -> string -> Tuple.t list -> (string * Relation.t) list

val update :
  t -> string -> old_tuple:Tuple.t -> new_tuple:Tuple.t ->
  (string * Relation.t) list

(** Opt every GROUPBY subgoal of the program into persistent incremental
    aggregation ([DAJ91] accumulators, {!Ivm_eval.Agg_index}): subsequent
    maintenance computes aggregate deltas from running group states
    instead of re-scanning touched groups. *)
val enable_incremental_aggregates : t -> unit

(** Add a rule to the program, incrementally maintaining all views
    (Section 7's view redefinition). *)
val add_rule : t -> Ast.rule -> unit

val add_rule_text : t -> string -> unit

(** Remove a rule (matched structurally), incrementally maintaining all
    views.  @raise Rule_changes.Unknown_rule if absent. *)
val remove_rule : t -> Ast.rule -> unit

val remove_rule_text : t -> string -> unit

(** Recompute every view from scratch and compare with the maintained
    materializations: [Ok ()] when they agree (with counts under
    count-bearing configurations, as sets under DRed/Recompute). *)
val audit : t -> (unit, string) result

val pp : Format.formatter -> t -> unit

(** {1 Provenance & lineage}

    Derivation-provenance capture ({!Ivm_prov.Prov}) records, per derived
    tuple, a bounded set of supports — (rule, immediate subgoal tuples) —
    kept incrementally correct by the maintenance algorithms, plus a
    batch-lineage history.  The store is process-global: with several
    managers in one process, enable capture on only one. *)

(** Switch capture on and bootstrap the store by re-enumerating every
    current derivation once ({!Ivm_eval.Seminaive.replay_derivations}). *)
val enable_provenance : t -> unit

(** Switch capture off and clear the store. *)
val disable_provenance : t -> unit

val provenance_enabled : t -> bool

(** Database-access closures for the {!Ivm_prov.Prov_query} layer
    ([why] / [why not] / [lineage]); reads through to the live database,
    surviving rule changes. *)
val provenance_access : t -> Ivm_prov.Prov_query.db_access

(** Parse ["p(v1, …)"] (trailing period optional) as one ground fact. *)
val parse_fact : string -> (string * Tuple.t, string) result

(** One-stop EXPLAIN for the monitor's [/why] endpoint: [why] (when the
    fact is present) or [why not] (when absent) bundled with its
    [lineage] as one JSON document; [Error] on a parse failure or
    unknown predicate. *)
val explain_json : t -> string -> (Ivm_obs.Json.t, string) result

(** The manager's state as JSON — the monitor's [/statusz] body (minus
    process-level fields like uptime, which the server adds): algorithm,
    semantics, domain count, per-view tuple counts (with strata),
    durable-store status ([null] when not durable), and the most recent
    batch's wall time plus its per-rule attribution
    ({!Ivm_obs.Attribution.batch_json}). *)
val status_json : t -> Ivm_obs.Json.t
