(** The counting algorithm — Algorithm 4.1 of the paper — for incremental
    maintenance of {e nonrecursive} views with negation (Section 6.1),
    aggregation (Section 6.2), union, and both duplicate and set semantics
    (Section 5).

    For every rule [p :- s1 & … & sn] and every changeable body position
    [i], the delta rule

    {v Δ(p) :- s1ν & … & s(i−1)ν & Δ(si) & s(i+1) & … & sn v}

    (Definition 4.1) is evaluated when [Δ(si)] is non-empty; all results
    are combined with [⊎] into [Δ(P)], which by Theorem 4.1 holds exactly
    [countν(t) − count(t)] for every tuple — the algorithm computes
    precisely the view tuples that change.  Under set semantics the boxed
    statement (2) propagates only [set(Pν) − set(P)] upward, so a deletion
    that leaves alternative derivations cascades nowhere (Example 5.1). *)

module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database

exception Recursive_program of string

type report = {
  base_deltas : (string * Relation.t) list;
      (** normalized base changes that were applied *)
  view_deltas : (string * Relation.t) list;
      (** per derived predicate: the full count delta [Δ(P)] *)
  propagated_deltas : (string * Relation.t) list;
      (** per derived predicate: the delta visible to dependent views —
          the ±1 set transition under set semantics, [Δ(P)] itself under
          duplicate semantics *)
}

(** Names of the views that changed. *)
val changed_views : report -> string list

(** Apply base-relation changes to [db], incrementally updating every
    materialized view; commits to the stored relations and returns what
    changed.  [?record pred tup c] observes every applied per-tuple
    stored-count difference at commit time (the snapshot publisher's
    net-change feed).
    @raise Recursive_program when the program has recursive views — use
    {!Dred} (Section 7);
    @raise Changes.Invalid_changes on malformed change sets. *)
val maintain :
  ?record:(string -> Ivm_relation.Tuple.t -> int -> unit) ->
  Database.t ->
  Changes.t ->
  report
