(** Counting for recursive views — the [GKM92] extension the paper
    discusses in Section 8: full derivation counts are maintained through
    recursive components by iterating Definition 4.1 delta rules to a
    fixpoint, each round treating the previous round's deltas as a batch
    update (Theorem 4.1 applied per batch keeps counts exact).

    On data with cyclic derivations counts are infinite; the iteration is
    capped and {!Divergence} raised — "counting may not terminate on some
    views" (Section 8).  Duplicate semantics only. *)

module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database

exception Divergence of string

val default_max_rounds : int

(** Incrementally maintain all views — recursive ones included — with
    exact derivation counts; commits and returns the applied view deltas.
    [?record pred tup c] observes every applied per-tuple stored-count
    difference at commit time (the snapshot publisher's net-change feed).
    @raise Divergence when counts cannot converge within [max_rounds];
    @raise Invalid_argument under set semantics (use {!Dred}). *)
val maintain :
  ?max_rounds:int ->
  ?record:(string -> Ivm_relation.Tuple.t -> int -> unit) ->
  Database.t ->
  Changes.t ->
  (string * Relation.t) list

(** Materialize a (possibly recursive) program with derivation counts:
    equivalent to maintaining from an empty database with every base fact
    inserted.  @raise Divergence on cyclic data. *)
val evaluate : ?max_rounds:int -> Database.t -> unit
