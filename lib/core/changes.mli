(** Change sets — the [Δ] notation of Section 3 of the paper.

    A change set maps base predicates to delta relations: insertions carry
    positive counts, deletions negative counts
    ([Δ(P) = {ab 4, mn −2}] inserts four derivations of [p(a,b)] and
    deletes two of [p(m,n)]).  Updates are modelled, as in the paper, as a
    deletion plus an insertion. *)

module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

type t = (string * Relation.t) list

exception Invalid_changes of string

(** Build a change set from per-predicate [(tuple, signed count)] lists.
    @raise Program.Program_error on unknown predicates. *)
val of_list : Program.t -> (string * (Tuple.t * int) list) list -> t

val insertions : Program.t -> string -> Tuple.t list -> t
val deletions : Program.t -> string -> Tuple.t list -> t

(** Deletion of [old_tuple] ⊎ insertion of [new_tuple]. *)
val update : Program.t -> string -> old_tuple:Tuple.t -> new_tuple:Tuple.t -> t

(** Per-predicate [⊎] of two change sets. *)
val merge : t -> t -> t

val is_empty : t -> bool

(** Total number of distinct changed tuples. *)
val total_tuples : t -> int

(** Validate against the database and normalize for its semantics:
    changed predicates must be base relations; deletions must not exceed
    stored multiplicities (the standing assumption of Lemma 4.1); under
    set semantics insert/delete collapse to ±1 transitions and re-inserts
    of present tuples are dropped.  Duplicate entries for one predicate
    are merged first.
    @raise Invalid_changes on violations. *)
val normalize_base : Database.t -> t -> t

(** {2 Net-change collectors}

    A collector accumulates the net stored-count changes a maintenance run
    actually commits — base {e and} derived predicates — as a change set.
    Algorithms call {!record} from their commit sites with the per-tuple
    applied difference (new stored count − old), making the collected set
    exact by construction: replaying it with [⊎] onto any count-identical
    database reproduces the post-maintenance database.  A run that
    rewrites stored state wholesale (recomputation, rederivation) calls
    {!mark_incomplete}; consumers such as the snapshot publisher then fall
    back to a full copy. *)

type collector

val collector : unit -> collector

(** [record col pred tup c] folds an applied count difference [c] into the
    collector ([c = 0] is a no-op). *)
val record : collector -> string -> Tuple.t -> int -> unit

(** The run mutated stored state outside per-tuple recording; {!collected}
    is no longer a faithful replay. *)
val mark_incomplete : collector -> unit

val is_complete : collector -> bool

(** The accumulated net change set, sorted by predicate, empty deltas
    dropped.  Only meaningful when {!is_complete}. *)
val collected : collector -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
