(** DRed — Delete and Rederive, Section 7 of the paper: incremental
    maintenance of (general) recursive views with stratified negation and
    aggregation, under set semantics.

    Derived predicates are processed unit by unit (one SCC of mutually
    recursive predicates at a time, in dependency order).  Per unit:

    + {b delete} an overestimate — semi-naive evaluation of the δ⁻-rules
      against the {e old} relations: a tuple is overdeleted if {e any}
      derivation of it uses a deleted tuple (or a tuple newly true under a
      negated subgoal, or a vanished group tuple of a GROUPBY subgoal);
    + {b rederive} — every overdeleted tuple with an alternative
      derivation in the new database is put back
      ([δ⁺(p) :- δ⁻(p) & s1ν & … & snν]), semi-naively within the unit;
    + {b insert} — semi-naive propagation of the insertions over the new
      relations.

    Theorem 7.1: the result contains a tuple iff it has a derivation in
    the updated database. *)

module Relation = Ivm_relation.Relation
module Database = Ivm_eval.Database

exception Duplicate_semantics_unsupported

type report = {
  base_deltas : (string * Relation.t) list;
  view_deltas : (string * Relation.t) list;
      (** per derived predicate: ±1 set transitions actually applied *)
  overdeleted : (string * int) list;
      (** per predicate: size of the step-1 overestimate *)
  rederived : (string * int) list;
      (** per predicate: tuples put back in step 2 *)
}

(** Apply base-relation changes with DRed; commits to the stored relations.
    [?record pred tup c] observes every applied per-tuple stored-count
    difference at commit time — the {e applied} difference, after DRed's
    clamp to non-negative counts, so the recorded net change is exact.
    @raise Duplicate_semantics_unsupported under duplicate semantics
    (DRed is a set-semantics algorithm, Section 7);
    @raise Changes.Invalid_changes on malformed change sets. *)
val maintain :
  ?record:(string -> Ivm_relation.Tuple.t -> int -> unit) ->
  Database.t ->
  Changes.t ->
  report
