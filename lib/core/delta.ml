(** Delta-rule machinery shared by the counting algorithm and DRed:

    - the maintenance {!ctx} tracks, per predicate, the full count delta
      accumulated this round; "old" views read the stored relations, "new"
      views read old ⊎ delta through an overlay (no copying);
    - {!neg_delta} is Definition 6.1: [Δ(¬Q)] computed from [Δ(Q)], [Q]
      and [Qν] alone — the delta literal can stay first in the join order
      without evaluating the positive subgoals of the rule;
    - {!agg_delta} caches Algorithm 6.1's [Δ(T)] per GROUPBY spec;
    - {!delta_rule_inputs} wires one delta rule of Definition 4.1:
      positions before the delta read new views, the delta position
      enumerates the change, positions after read old views. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Compile = Ivm_eval.Compile
module Rule_eval = Ivm_eval.Rule_eval
module Grouping = Ivm_eval.Grouping
module Par_eval = Ivm_eval.Par_eval

type version = Old | New

type ctx = {
  db : Database.t;
  full : (string, Relation.t) Hashtbl.t;
      (** per predicate: the count delta accumulated this maintenance round
          (base deltas at entry, derived deltas as they are computed) *)
  propagated : (string, Relation.t) Hashtbl.t;
      (** the delta enumerated at delta positions: equal to [full] under
          duplicate semantics; under set semantics the ±1 set transition
          (boxed statement 2 of Algorithm 4.1) *)
  neg_deltas : (string, Relation.t) Hashtbl.t;  (** Definition 6.1 cache *)
  agg_deltas : (string, Relation.t) Hashtbl.t;  (** Algorithm 6.1 cache *)
  grouped : (string, Relation.t) Hashtbl.t;  (** old/new grouped relations *)
}

let create (db : Database.t) : ctx =
  {
    db;
    full = Hashtbl.create 16;
    propagated = Hashtbl.create 16;
    neg_deltas = Hashtbl.create 8;
    agg_deltas = Hashtbl.create 8;
    grouped = Hashtbl.create 8;
  }

let empty_rel ctx pred =
  Relation.create (Program.arity (Database.program ctx.db) pred)

let full_delta ctx pred =
  match Hashtbl.find_opt ctx.full pred with
  | Some r -> r
  | None -> empty_rel ctx pred

let propagated_delta ctx pred =
  match Hashtbl.find_opt ctx.propagated pred with
  | Some r -> r
  | None -> empty_rel ctx pred

let has_delta ctx pred =
  match Hashtbl.find_opt ctx.propagated pred with
  | Some r -> not (Relation.is_empty r)
  | None -> false

(** [set_delta ctx pred ~full] records [pred]'s delta for this round and
    derives the propagated version per the database's semantics. *)
let set_delta ctx pred ~full =
  Hashtbl.replace ctx.full pred full;
  let stored = Database.relation ctx.db pred in
  let set_propagation =
    Database.semantics ctx.db = Database.Set_semantics
    || Database.is_distinct ctx.db pred
  in
  let prop =
    if not set_propagation then full
    else
      (* set(Pν) − set(P): only sign transitions propagate. *)
      let out = Relation.create (Relation.arity full) in
      Relation.iter
        (fun tup c ->
          let before = Relation.count stored tup in
          let after = before + c in
          if before <= 0 && after > 0 then Relation.add out tup 1
          else if before > 0 && after <= 0 then Relation.add out tup (-1))
        full;
      out
  in
  Hashtbl.replace ctx.propagated pred prop

let old_view ctx pred = Database.view ctx.db pred

let new_view ctx pred =
  match Hashtbl.find_opt ctx.full pred with
  | Some delta -> Relation_view.overlay (Database.relation ctx.db pred) delta
  | None -> Database.view ctx.db pred

let view ctx version pred =
  match version with Old -> old_view ctx pred | New -> new_view ctx pred

(** Definition 6.1.  [Δ(¬Q)] holds [t] with count +1 when [t] was deleted
    outright from [Q] (so [¬q(t)] became true) and with −1 when [t] was
    inserted into a previously-empty [Q] slot.  Only tuples of [Δ(Q)] can
    appear. *)
let neg_delta ctx pred =
  match Hashtbl.find_opt ctx.neg_deltas pred with
  | Some r -> r
  | None ->
    let out = empty_rel ctx pred in
    let stored = Database.relation ctx.db pred in
    let delta = full_delta ctx pred in
    Relation.iter
      (fun tup c ->
        let before = Relation.count stored tup in
        let after = before + c in
        if before > 0 && after <= 0 then Relation.add out tup 1
        else if before <= 0 && after > 0 then Relation.add out tup (-1))
      delta;
    Hashtbl.replace ctx.neg_deltas pred out;
    out

(** The grouped relation [T] of [spec] over the old or new version of its
    source, cached per spec signature. *)
let grouped ctx version (spec : Compile.agg_spec) =
  let tag = (match version with Old -> "old|" | New -> "new|") ^ spec.gsignature in
  match Hashtbl.find_opt ctx.grouped tag with
  | Some r -> r
  | None ->
    let mult = Database.mult_for ctx.db spec.gsource.cpred in
    let r = Grouping.compute ~mult (view ctx version spec.gsource.cpred) spec in
    Hashtbl.replace ctx.grouped tag r;
    r

(** Algorithm 6.1: [Δ(T)] for one GROUPBY spec, cached.  When the database
    carries a persistent aggregate index for the spec
    ({!Database.register_agg_index}), the delta comes from the per-group
    accumulators in [O(|Δ| log)]; otherwise touched groups are recomputed
    from the source relation (index-assisted). *)
let agg_delta ctx (spec : Compile.agg_spec) =
  match Hashtbl.find_opt ctx.agg_deltas spec.gsignature with
  | Some r -> r
  | None ->
    let pred = spec.gsource.cpred in
    let r =
      match Database.agg_index ctx.db spec with
      | Some idx ->
        (* the index consumes the propagated regime: count deltas under
           duplicates, ±1 set transitions under set semantics *)
        Ivm_eval.Agg_index.delta_preview idx (propagated_delta ctx pred)
      | None ->
        let mult = Database.mult_for ctx.db pred in
        Grouping.delta ~mult ~old_view:(old_view ctx pred)
          ~new_view:(new_view ctx pred) ~delta_u:(full_delta ctx pred) spec
    in
    Hashtbl.replace ctx.agg_deltas spec.gsignature r;
    r

(** Does the delta of the relation behind body literal [lit] warrant
    evaluating a delta rule seeded there? *)
let lit_delta_nonempty ctx (lit : Compile.clit) =
  match lit with
  | Compile.Catom a -> has_delta ctx a.cpred
  | Compile.Cneg a -> not (Relation.is_empty (neg_delta ctx a.cpred))
  | Compile.Cagg (spec, _) -> not (Relation.is_empty (agg_delta ctx spec))
  | Compile.Ccmp _ -> false

(** The delta relation enumerated when [lit] is the seed position. *)
let seed_relation ctx (lit : Compile.clit) =
  match lit with
  | Compile.Catom a -> propagated_delta ctx a.cpred
  | Compile.Cneg a -> neg_delta ctx a.cpred
  | Compile.Cagg (spec, _) -> agg_delta ctx spec
  | Compile.Ccmp _ -> assert false

(** Inputs for the [i]-th delta rule of Definition 4.1 (extended to
    negation per Section 6.1 cases 1–3 and to aggregation per
    Section 6.2).  [seed_override], when given, replaces the delta
    enumerated at the seed position — parallel fan-out passes one chunk
    of the full delta per task ({!Ivm_eval.Par_eval.split}). *)
let delta_rule_inputs ?seed_override ctx (cr : Compile.t) ~(pos : int) :
    int -> Rule_eval.subgoal_input =
 fun j ->
    let lit = cr.clits.(j) in
    if j = pos then
      match seed_override with
      | Some rel ->
        Rule_eval.Enumerate (Relation_view.concrete rel, Rule_eval.identity_count)
      | None ->
        Rule_eval.Enumerate
          (Relation_view.concrete (seed_relation ctx lit), Rule_eval.identity_count)
    else
      let version = if j < pos then New else Old in
      match lit with
      | Compile.Catom a ->
        Rule_eval.Enumerate (view ctx version a.cpred, Database.mult_for ctx.db a.cpred)
      | Compile.Cneg a -> Rule_eval.Filter_absent (view ctx version a.cpred)
      | Compile.Cagg (spec, _) ->
        Rule_eval.Enumerate
          (Relation_view.concrete (grouped ctx version spec), Rule_eval.identity_count)
      | Compile.Ccmp _ -> assert false

(** Evaluate every delta rule of [cr] (one per changeable body literal with
    a non-empty delta), accumulating into [out]. *)
let apply_delta_rules ctx (cr : Compile.t) ~(out : Relation.t) : unit =
  Array.iteri
    (fun i lit ->
      if lit_delta_nonempty ctx lit then
        let inputs = delta_rule_inputs ctx cr ~pos:i in
        Rule_eval.eval ~seed:i ~inputs ~emit:(fun tup c -> Relation.add out tup c) cr)
    cr.clits

(** Sequentially populate every lazy ctx cache a parallel evaluation of
    [cr]'s delta rules will read ([neg_deltas], [agg_deltas], [grouped]),
    touching them in the same order the sequential path would — first
    touch must never happen inside a worker thunk. *)
let prepare_rule ctx (cr : Compile.t) : unit =
  Array.iteri
    (fun i lit ->
      if lit_delta_nonempty ctx lit then begin
        let inputs = delta_rule_inputs ctx cr ~pos:i in
        Array.iteri
          (fun j l ->
            match l with Compile.Ccmp _ -> () | _ -> ignore (inputs j))
          cr.clits
      end)
    cr.clits

(** The delta rules of [cr] as independent read-only thunks, one per
    (seed position × seed chunk), each emitting into a private relation.
    Callers run them through {!Ivm_par.parallel_map} and ⊎-merge the
    results in task order; {!prepare_rule} must have run first. *)
let delta_rule_thunks ctx (cr : Compile.t) ~chunks : (unit -> Relation.t) array =
  let tasks = ref [] in
  Array.iteri
    (fun i lit ->
      if lit_delta_nonempty ctx lit then
        Array.iter
          (fun part ->
            tasks :=
              (fun () ->
                let out = Relation.create (Array.length cr.chead) in
                let inputs = delta_rule_inputs ~seed_override:part ctx cr ~pos:i in
                Rule_eval.eval ~seed:i ~inputs
                  ~emit:(fun tup c -> Relation.add out tup c)
                  cr;
                out)
              :: !tasks)
          (Par_eval.split (seed_relation ctx lit) ~chunks))
    cr.clits;
  Array.of_list (List.rev !tasks)

(** Evaluate the delta rules of every rule in [crs] across the domain
    pool, merging all per-task deltas into [out] in fixed task order.
    Falls back to the plain sequential loop when one domain is
    configured — same code path as before the pool existed. *)
let apply_delta_rules_par ctx (crs : Compile.t list) ~(out : Relation.t) : unit =
  if Ivm_par.sequential () then
    List.iter (fun cr -> apply_delta_rules ctx cr ~out) crs
  else begin
    List.iter (prepare_rule ctx) crs;
    let chunks = Par_eval.chunks_hint () in
    let thunks =
      Array.concat (List.map (fun cr -> delta_rule_thunks ctx cr ~chunks) crs)
    in
    Par_eval.merge ~into:out (Ivm_par.parallel_map thunks)
  end

(** Commit all accumulated full deltas into the stored relations.  Returns
    the sorted non-empty (pred, full delta) list.  [?record] observes
    every applied per-tuple difference (exactly [c], since this commit
    refuses to clamp) — the snapshot publisher's net-change feed.
    @raise Invalid_argument if a committed count would go negative — the
    caller violated Lemma 4.1's precondition. *)
let commit ?record ctx : (string * Relation.t) list =
  let applied = ref [] in
  let cap = Ivm_prov.Prov.capturing () in
  Hashtbl.iter
    (fun pred delta ->
      if not (Relation.is_empty delta) then begin
        let stored = Database.relation ctx.db pred in
        Relation.iter
          (fun tup c ->
            let before = Relation.count stored tup in
            let c' = before + c in
            if c' < 0 then
              invalid_arg
                (Printf.sprintf
                   "maintenance drove count of %s%s negative (%d); deletions \
                    must be a subset of the database"
                   pred (Tuple.to_string tup) c');
            if cap then
              if before <= 0 && c' > 0 then
                Ivm_prov.Prov.on_transition ~pred tup `Derived
              else if before > 0 && c' <= 0 then
                Ivm_prov.Prov.on_transition ~pred tup `Deleted;
            (match record with Some f -> f pred tup c | None -> ());
            Relation.set_count stored tup c')
          delta;
        applied := (pred, delta) :: !applied
      end)
    ctx.full;
  (* Registered aggregate indexes consume the propagated regime. *)
  let transitions =
    Hashtbl.fold (fun pred delta acc -> (pred, delta) :: acc) ctx.propagated []
  in
  Database.refresh_agg_indexes ctx.db transitions;
  List.sort (fun (p, _) (q, _) -> String.compare p q) !applied
