(** The library's front door: a materialized-view database plus an
    incremental maintenance policy.

    A manager owns a {!Ivm_eval.Database} (program + stored relations with
    counts) and routes every change batch through one of the paper's
    algorithms:

    - [Counting] — Algorithm 4.1; nonrecursive programs, set or duplicate
      semantics (Sections 4–6);
    - [Dred] — Delete/Rederive; any stratified program, set semantics
      (Section 7);
    - [Recursive_counting] — the [GKM92] extension: derivation counts
      through recursion, duplicate semantics, diverges on cyclic data
      (Section 8);
    - [Recompute] — the from-scratch baseline the paper argues against
      ("recomputing the view from scratch is too wasteful in most cases",
      Section 1);
    - [Auto] — counting when the program is nonrecursive, DRed otherwise:
      the paper's own recommendation ("we are proposing the counting
      algorithm for nonrecursive views, and the DRed algorithm for
      recursive views").

    Rule insertions/deletions (Section 7's view redefinition) go through
    {!Rule_changes} with the same policy. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Parser = Ivm_datalog.Parser
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Seminaive = Ivm_eval.Seminaive
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace

type algorithm = Counting | Dred | Recursive_counting | Recompute | Auto

let recompute_batches_c =
  Metrics.counter ~labels:[ ("algorithm", "recompute") ] "ivm_maintain_batches_total"

let algorithm_name = function
  | Counting -> "counting"
  | Dred -> "dred"
  | Recursive_counting -> "recursive-counting"
  | Recompute -> "recompute"
  | Auto -> "auto"

let algorithm_of_string = function
  | "counting" -> Some Counting
  | "dred" -> Some Dred
  | "recursive-counting" -> Some Recursive_counting
  | "recompute" -> Some Recompute
  | "auto" -> Some Auto
  | _ -> None

type t = {
  mutable db : Database.t;
  mutable algorithm : algorithm;
  mutable incremental_aggregates : bool;
  mutable store : Ivm_store.Store.t option;
      (** durable mode: every validated batch is WAL-logged (fsync'd)
          before maintenance applies it — see {!open_durable} *)
  state_version : int Atomic.t;
      (** bumped on every out-of-band state mutation (rule change,
          algorithm switch, incremental-aggregate enablement) — anything
          that rewrites stored relations outside per-tuple-tracked batch
          maintenance.  The snapshot publisher compares this across
          groups to detect that its incremental shadow is stale. *)
}

let algorithm t = t.algorithm

let resolve t =
  match t.algorithm with
  | Auto ->
    if Program.nonrecursive (Database.program t.db) then Counting else Dred
  | a -> a

(** Re-evaluate everything from scratch after applying the base changes —
    the baseline. *)
let recompute_maintain (db : Database.t) (changes : Changes.t) : unit =
  Metrics.inc recompute_batches_c;
  Trace.span "recompute.maintain" (fun () ->
      List.iter
        (fun (pred, delta) ->
          Database.invalidate_agg_indexes db pred;
          let stored = Database.relation db pred in
          Relation.iter (fun tup c -> Relation.add stored tup c) delta)
        (Changes.normalize_base db changes);
      Seminaive.evaluate db)

(** Apply one batch of base-relation changes with the configured
    algorithm.  Returns the set transitions per derived predicate.

    Durable managers log first: the batch is normalized against the
    pre-state, appended to the write-ahead log and fsync'd {e before}
    maintenance touches any relation, so after a crash a batch is either
    durable or never happened.

    Observability: the whole batch runs under a [maintain_batch] span
    (the root of the batch → stratum → rule span tree), its end-to-end
    wall clock feeds [ivm_batch_latency_ns{algorithm=...}] and the
    [ivm_last_batch_ns] gauge, per-rule cost attribution is collected
    between {!Ivm_obs.Attribution.batch_begin}/[batch_end] (backing
    [explain last], the labeled rule families on [/metrics], and the
    slow-batch log line), and the per-relation gauges are refreshed
    after commit. *)
let last_batch_g =
  Metrics.gauge "ivm_last_batch_ns"
    ~help:"Wall time of the most recent maintenance batch, nanoseconds"

let maintain_batch ?track (t : t) (changes : Changes.t) :
    (string * Relation.t) list =
  let resolved = resolve t in
  let name = algorithm_name resolved in
  (* Net-change tracking for the snapshot publisher: the incremental
     algorithms record every applied per-tuple stored-count difference at
     their commit site; recomputation rewrites relations wholesale, so
     the collector is marked incomplete and the publisher falls back to a
     full copy for this group. *)
  let record =
    match track with
    | None -> None
    | Some col -> (
      match resolved with
      | Counting | Dred | Recursive_counting -> Some (Changes.record col)
      | Recompute | Auto ->
        Changes.mark_incomplete col;
        None)
  in
  let t0 = Unix.gettimeofday () in
  Ivm_obs.Attribution.batch_begin ~algorithm:name;
  if Ivm_prov.Prov.capturing () then Ivm_prov.Prov.batch_begin ~algorithm:name;
  let finish () =
    let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    ignore (Ivm_obs.Attribution.batch_end ~total_wall_ns:wall_ns);
    Metrics.observe
      (Metrics.histogram ~labels:[ ("algorithm", name) ] "ivm_batch_latency_ns")
      wall_ns;
    Metrics.set last_batch_g (float_of_int wall_ns)
  in
  let deltas =
    Fun.protect ~finally:finish (fun () ->
        Trace.span "maintain_batch"
          ~args:(fun () -> [ ("algorithm", name) ])
          (fun () ->
            match resolved with
            | Counting ->
              let report = Counting.maintain ?record t.db changes in
              (match Database.semantics t.db with
              | Database.Set_semantics -> report.Counting.propagated_deltas
              | Database.Duplicate_semantics -> report.Counting.view_deltas)
            | Dred ->
              let report = Dred.maintain ?record t.db changes in
              report.Dred.view_deltas
            | Recursive_counting ->
              Recursive_counting.maintain ?record t.db changes
            | Recompute | Auto ->
              (* A recompute invalidates every stored support wholesale;
                 [Seminaive.evaluate] then re-records each current
                 derivation through the evaluator's capture hook.  (No
                 lineage transitions: recompute overwrites relations
                 without a commit loop.) *)
              if Ivm_prov.Prov.capturing () then
                Ivm_prov.Prov.truncate_supports ~reason:"recompute";
              recompute_maintain t.db changes;
              []))
  in
  Database.observe_gauges t.db;
  deltas

let apply (t : t) (changes : Changes.t) : (string * Relation.t) list =
  let changes =
    match t.store with
    | None -> changes
    | Some store ->
      (* normalizing first makes the log record exactly what maintenance
         will apply (and rejects invalid batches before logging them) *)
      let normalized = Changes.normalize_base t.db changes in
      Ivm_store.Store.append store normalized;
      normalized
  in
  maintain_batch t changes

(** Group commit (the [ivm_serve] writer's path): apply a whole queue of
    batches with {e one} fsync.  Each batch is normalized against the
    database state the previous batches left (so deletion validity and
    set-semantics collapsing see the right pre-state), appended to the
    WAL {e without} syncing, and maintained; after the last batch a
    single {!Ivm_store.Store.sync} makes the whole group durable.

    Per-batch validation failures are isolated: an invalid batch yields
    [Error msg] in its slot, is never logged, and leaves the database
    untouched — the rest of the group proceeds.  Callers must treat the
    group as {b unpublished} until this function returns: maintenance
    runs ahead of the fsync inside the group, so acknowledging or
    exposing a batch earlier would break the
    "no reader observes an un-fsync'd batch" invariant
    (ARCHITECTURE.md invariant 11).  A crash mid-group loses only
    un-acknowledged batches: the WAL tail is torn and truncated on
    recovery. *)
type group_hooks = {
  batch_stage : int -> string -> float -> float -> unit;
  group_stage : string -> float -> float -> unit;
}

let apply_group ?hooks ?track (t : t) (batches : Changes.t list) :
    ((string * Relation.t) list, string) result list =
  (* timestamps are taken only when a hook is installed, so the unhooked
     path is byte-for-byte the old one *)
  let batch_stage i name f =
    match hooks with
    | None -> f ()
    | Some h ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      h.batch_stage i name t0 (Unix.gettimeofday ());
      r
  in
  let group_stage name f =
    match hooks with
    | None -> f ()
    | Some h ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      h.group_stage name t0 (Unix.gettimeofday ());
      r
  in
  let results =
    List.mapi
      (fun i changes ->
        (* only validation failures are recoverable: they happen before
           the append, so an [Error] batch left no trace anywhere.  A
           maintenance exception after the append must propagate — the
           WAL and memory would otherwise silently diverge. *)
        match
          batch_stage i "normalize" (fun () ->
              Changes.normalize_base t.db changes)
        with
        | exception Changes.Invalid_changes msg -> Error msg
        | exception Program.Program_error msg -> Error msg
        | exception Invalid_argument msg -> Error msg
        | normalized ->
          (match t.store with
          | Some store ->
            batch_stage i "wal_append" (fun () ->
                Ivm_store.Store.append ~sync:false store normalized)
          | None -> ());
          Ok
            (batch_stage i "maintain" (fun () ->
                 maintain_batch ?track t normalized)))
      batches
  in
  (* one fsync per group (zero-duration without a store, so a committed
     batch's stage chain always carries exactly one fsync — invariant 12) *)
  group_stage "fsync" (fun () ->
      match t.store with
      | Some store -> Ivm_store.Store.sync store
      | None -> ());
  results

(** Wrap an already-materialized database (e.g. one loaded from a
    snapshot) without re-evaluating anything.  The incremental-aggregates
    flag is inferred from the registered indexes. *)
let of_database ?(algorithm = Auto) (db : Database.t) : t =
  {
    db;
    algorithm;
    incremental_aggregates = Database.agg_signatures db <> [];
    store = None;
    state_version = Atomic.make 0;
  }

(** Open an existing durable store: load the snapshot (no re-evaluation),
    replay the surviving log tail through the normal maintenance path,
    and attach the store so subsequent batches are logged. *)
let open_durable ?algorithm (dir : string) : t * Ivm_store.Store.recovery =
  let db, store, recovery = Ivm_store.Store.open_ ~dir in
  let t = of_database ?algorithm db in
  (* the store handle is attached only after replay, so replayed batches
     are not appended to the log a second time *)
  Trace.span "store.replay"
    ~args:(fun () ->
      [ ("records", string_of_int (List.length recovery.Ivm_store.Store.replayed)) ])
    (fun () ->
      List.iter (fun c -> ignore (apply t c)) recovery.Ivm_store.Store.replayed);
  t.store <- Some store;
  (t, recovery)

(** Turn an in-memory manager durable: snapshot its current state into
    [dir] (created if needed) and start logging subsequent batches. *)
let make_durable (t : t) ~(dir : string) : unit =
  match t.store with
  | Some s ->
    invalid_arg
      (Printf.sprintf "View_manager.make_durable: already durable in %s"
         (Ivm_store.Store.dir s))
  | None -> t.store <- Some (Ivm_store.Store.initialize ~dir t.db)

(** Create a manager from rules and initial base facts; materializes all
    views eagerly.  [domains], when given, sets the process-global domain
    count for parallel delta evaluation ({!Ivm_par.set_domains}); the
    default leaves the current setting (1 unless [IVM_DOMAINS] or an
    earlier call changed it).  With [durable], the on-disk state wins: an
    existing store is reopened (recovering through {!open_durable}, the
    given rules/facts ignored); otherwise the fresh manager is snapshotted
    into the directory. *)
let create ?(semantics = Database.Set_semantics) ?(algorithm = Auto)
    ?(extra_base : (string * int) list = []) ?(distinct : string list = [])
    ?(facts : (string * Tuple.t list) list = []) ?domains ?durable
    (rules : Ast.rule list) : t =
  (match domains with Some n -> Ivm_par.set_domains n | None -> ());
  match durable with
  | Some dir when Ivm_store.Store.exists dir -> fst (open_durable ~algorithm dir)
  | _ ->
    let program = Program.make ~extra_base rules in
    let db = Database.create ~semantics program in
    List.iter (fun v -> Database.mark_distinct db v) distinct;
    List.iter (fun (pred, tuples) -> Database.load db pred tuples) facts;
    let t =
      {
        db;
        algorithm;
        incremental_aggregates = false;
        store = None;
        state_version = Atomic.make 0;
      }
    in
    (match resolve t with
    | Recursive_counting -> Recursive_counting.evaluate db
    | Counting | Dred | Recompute | Auto -> Seminaive.evaluate db);
    (match durable with Some dir -> make_durable t ~dir | None -> ());
    t

(** Create from program text (rules and facts together, Datalog syntax). *)
let of_source ?semantics ?algorithm ?extra_base ?distinct ?domains ?durable
    (src : string) : t =
  let rules, facts = Parser.split (Parser.parse_program src) in
  let facts = List.map (fun (p, vals) -> (p, [ Tuple.of_list vals ])) facts in
  create ?semantics ?algorithm ?extra_base ?distinct ?domains ?durable ~facts
    rules

let database t = t.db
let program t = Database.program t.db
let relation t pred = Database.relation t.db pred
let semantics t = Database.semantics t.db

(** Fold the log into a fresh snapshot of the current state and reset it.
    @raise Invalid_argument on a non-durable manager. *)
let compact (t : t) : unit =
  match t.store with
  | None -> invalid_arg "View_manager.compact: manager is not durable"
  | Some s -> Ivm_store.Store.compact s t.db

let store_status (t : t) : Ivm_store.Store.status option =
  Option.map Ivm_store.Store.status t.store

let durable_dir (t : t) : string option = Option.map Ivm_store.Store.dir t.store

(** Close the log file descriptor and detach the store (the manager keeps
    working, in-memory only).  No-op when not durable. *)
let close_store (t : t) : unit =
  match t.store with
  | None -> ()
  | Some s ->
    Ivm_store.Store.close s;
    t.store <- None

(* Program and index changes are not WAL-logged; durable managers fold
   them straight into a fresh snapshot.  Every such change also rewrites
   stored state outside per-tuple-tracked maintenance, so the state
   version is bumped here — the snapshot publisher watches it. *)
let resnapshot (t : t) : unit =
  Atomic.incr t.state_version;
  match t.store with Some s -> Ivm_store.Store.compact s t.db | None -> ()

(** Out-of-band mutation counter (rule changes, algorithm switches,
    aggregate enablement).  Monotonic; a change between two reads means
    stored relations may have been rewritten outside tracked batch
    maintenance. *)
let state_version (t : t) : int = Atomic.get t.state_version

let insert t pred tuples =
  apply t (Changes.insertions (program t) pred tuples)

let delete t pred tuples =
  apply t (Changes.deletions (program t) pred tuples)

let update t pred ~old_tuple ~new_tuple =
  apply t (Changes.update (program t) pred ~old_tuple ~new_tuple)

let maintainer t : Rule_changes.maintainer =
 fun db changes ->
  (* resolve [Auto] against the database being maintained, not [t.db]:
     during a rule change the maintainer runs on the rebuilt database
     (whose program may have just turned recursive, or stopped being so)
     while [t.db] still holds the old one *)
  let resolved =
    match t.algorithm with
    | Auto ->
      if Program.nonrecursive (Database.program db) then Counting else Dred
    | a -> a
  in
  match resolved with
  | Counting -> ignore (Counting.maintain db changes)
  | Dred -> ignore (Dred.maintain db changes)
  | Recursive_counting -> ignore (Recursive_counting.maintain db changes)
  | Recompute | Auto -> recompute_maintain db changes

let register_agg_indexes (t : t) : unit =
  List.iter
    (fun rule ->
      List.iter
        (fun lit ->
          match lit with
          | Ast.Lagg agg ->
            ignore
              (Database.register_agg_index t.db
                 (Ivm_eval.Compile.compile_agg_spec agg))
          | Ast.Lpos _ | Ast.Lneg _ | Ast.Lcmp _ -> ())
        rule.Ast.body)
    (Program.rules (Database.program t.db))

(** Opt every GROUPBY subgoal of the program into persistent incremental
    aggregation ([DAJ91] accumulators; see {!Ivm_eval.Agg_index}):
    subsequent maintenance computes aggregate deltas from running group
    states instead of re-scanning touched groups. *)
let enable_incremental_aggregates (t : t) : unit =
  t.incremental_aggregates <- true;
  register_agg_indexes t;
  resnapshot t

(* After a rule change the stored supports may cite a rule that no longer
   exists (or miss derivations through a new one): drop them all and
   re-enumerate the current derivations against the rebuilt database. *)
let refresh_provenance (t : t) ~reason : unit =
  if Ivm_prov.Prov.capturing () then begin
    Ivm_prov.Prov.truncate_supports ~reason;
    Seminaive.replay_derivations t.db
  end

let counted_algorithm = function
  | Counting | Recursive_counting -> true
  | Dred | Recompute | Auto -> false

(* A rule change can flip what [Auto] resolves to.  Flipping {e into} a
   count-bearing resolution (the program stopped being recursive, so Auto
   now means counting) inherits derivation counts a set maintainer let go
   stale — re-derive from scratch, exactly as [set_algorithm] does for an
   explicit switch. *)
let rederive_if_counts_went_live (t : t) ~prev : unit =
  let now = resolve t in
  if counted_algorithm now && not (counted_algorithm prev) then
    Ivm_prov.Prov.with_suspended (fun () ->
        match now with
        | Recursive_counting -> Recursive_counting.evaluate t.db
        | Counting | Dred | Recompute | Auto -> Seminaive.evaluate t.db)

(** Add a rule to the program, incrementally maintaining all views
    (Section 7, view redefinition). *)
let add_rule (t : t) (rule : Ast.rule) : unit =
  let prev = resolve t in
  t.db <-
    Ivm_prov.Prov.with_suspended (fun () ->
        Rule_changes.add_rule t.db ~maintain:(maintainer t) rule);
  (* rebuilding the program produced a fresh database: re-register *)
  if t.incremental_aggregates then register_agg_indexes t;
  rederive_if_counts_went_live t ~prev;
  refresh_provenance t ~reason:"rule-change";
  resnapshot t

let add_rule_text (t : t) (src : string) : unit = add_rule t (Parser.parse_rule src)

(** Remove a rule (matched structurally), incrementally maintaining all
    views. *)
let remove_rule (t : t) (rule : Ast.rule) : unit =
  let prev = resolve t in
  t.db <-
    Ivm_prov.Prov.with_suspended (fun () ->
        Rule_changes.remove_rule t.db ~maintain:(maintainer t) rule);
  if t.incremental_aggregates then register_agg_indexes t;
  rederive_if_counts_went_live t ~prev;
  refresh_provenance t ~reason:"rule-change";
  resnapshot t

let remove_rule_text (t : t) (src : string) : unit =
  remove_rule t (Parser.parse_rule src)

(** Switch the maintenance algorithm in place.

    Counting maintains nonrecursive programs only — asking for it on a
    recursive program is rejected eagerly rather than at the next batch.
    Switching {e to} a count-bearing algorithm (counting / recursive
    counting) from a set-maintaining one (DRed, recomputation) re-derives
    every view from scratch first: the set maintainers keep the stored
    tuple {e sets} exact but let the derivation counts go stale, and the
    counting algorithms' deltas are only correct against true counts.
    Like rule changes, a switch is not WAL-logged: on a durable manager it
    folds the log into a fresh snapshot, so every record in any log tail
    was appended under the algorithm the snapshot was taken under. *)
let set_algorithm (t : t) (algorithm : algorithm) : unit =
  if algorithm <> t.algorithm then begin
    let prev = resolve t in
    let target =
      match algorithm with
      | Auto -> if Program.nonrecursive (program t) then Counting else Dred
      | a -> a
    in
    if target = Counting && not (Program.nonrecursive (program t)) then
      invalid_arg
        "View_manager.set_algorithm: counting maintains nonrecursive \
         programs only (use dred, recursive-counting or recompute)";
    t.algorithm <- algorithm;
    let counted = function
      | Counting | Recursive_counting -> true
      | Dred | Recompute | Auto -> false
    in
    if counted target && target <> prev then begin
      Ivm_prov.Prov.with_suspended (fun () ->
          match target with
          | Recursive_counting -> Recursive_counting.evaluate t.db
          | Counting | Dred | Recompute | Auto -> Seminaive.evaluate t.db);
      if t.incremental_aggregates then register_agg_indexes t;
      refresh_provenance t ~reason:"algorithm-switch"
    end;
    resnapshot t
  end

(** Audit: recompute every view from scratch and compare with the
    maintained materializations.  [Ok ()] when they agree (counts included
    under count-bearing configurations, sets under DRed). *)
let audit (t : t) : (unit, string) result =
  let fresh = Database.copy t.db in
  (* The audit copy's evaluation must not pollute the provenance store. *)
  Ivm_prov.Prov.with_suspended (fun () ->
      match resolve t with
      | Recursive_counting -> Recursive_counting.evaluate fresh
      | Counting | Dred | Recompute | Auto -> Seminaive.evaluate fresh);
  let compare_counts =
    match resolve t with
    | Counting | Recursive_counting -> true
    | Dred | Recompute | Auto -> false
  in
  let bad =
    List.filter_map
      (fun p ->
        let a = Database.relation t.db p and b = Database.relation fresh p in
        let same =
          if compare_counts then Relation.equal_counted a b
          else Relation.equal_sets a b
        in
        if same then None
        else
          Some
            (Printf.sprintf "%s: maintained %s <> recomputed %s" p
               (Relation.to_string a) (Relation.to_string b)))
      (Program.derived_preds (program t))
  in
  match bad with [] -> Ok () | msgs -> Error (String.concat "\n" msgs)

let pp ppf t = Database.pp ppf t.db

(* ------------------------------------------------------------------ *)
(* Provenance & lineage                                                 *)
(* ------------------------------------------------------------------ *)

(** Switch derivation-provenance capture on ({!Ivm_prov.Prov}) and
    bootstrap the support store by re-enumerating every current
    derivation once.  The store is process-global: with several managers
    in one process, enable capture on only one. *)
let enable_provenance (t : t) : unit =
  Ivm_prov.Prov.set_enabled true;
  Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
  Seminaive.replay_derivations t.db

(** Switch capture off and clear the store. *)
let disable_provenance (_t : t) : unit = Ivm_prov.Prov.set_enabled false

let provenance_enabled (_t : t) : bool = Ivm_prov.Prov.enabled ()

(** Database-access closures for {!Ivm_prov.Prov_query} — every closure
    rereads [t.db], so the record survives rule changes. *)
let provenance_access (t : t) : Ivm_prov.Prov_query.db_access =
  let prog () = Database.program t.db in
  {
    Ivm_prov.Prov_query.rules_for = (fun p -> Program.rules_for (prog ()) p);
    is_base = (fun p -> List.mem p (Program.base_preds (prog ())));
    known_pred =
      (fun p ->
        let program = prog () in
        List.mem p (Program.base_preds program)
        || List.mem p (Program.derived_preds program));
    arity = (fun p -> Program.arity (prog ()) p);
    holds = (fun p tup -> Relation.mem (Database.relation t.db p) tup);
    count = (fun p tup -> Relation.count (Database.relation t.db p) tup);
    probe =
      (fun p bound f ->
        let rel = Database.relation t.db p in
        match bound with
        | [] -> Relation.iter (fun tup c -> f tup c) rel
        | _ ->
          let cols = Array.of_list (List.map fst bound) in
          let key = Tuple.of_list (List.map snd bound) in
          Relation.probe rel cols key f);
    dup_semantics = Database.semantics t.db = Database.Duplicate_semantics;
  }

(** Parse ["p(v1, …)"] (trailing period optional) as one ground fact. *)
let parse_fact (txt : string) : (string * Tuple.t, string) result =
  let txt = String.trim txt in
  let txt =
    if String.length txt > 0 && txt.[String.length txt - 1] = '.' then txt
    else txt ^ "."
  in
  match Parser.split (Parser.parse_program txt) with
  | [], [ (p, vals) ] -> Ok (p, Tuple.of_list vals)
  | _ -> Error "expected a single ground fact, e.g. tc(1, 3)"
  | exception Parser.Parse_error msg -> Error msg

(** One-stop EXPLAIN for the monitor's [/why] endpoint: parse the fact,
    then bundle [why] (when present) or [why not] (when absent) with its
    [lineage] into one JSON document. *)
let explain_json (t : t) (q : string) : (Ivm_obs.Json.t, string) result =
  let module Json = Ivm_obs.Json in
  let module Pq = Ivm_prov.Prov_query in
  match parse_fact q with
  | Error e -> Error e
  | Ok (pred, tup) ->
    let access = provenance_access t in
    if not (access.Pq.known_pred pred) then
      Error (Printf.sprintf "unknown predicate %s" pred)
    else begin
      let present = access.Pq.holds pred tup in
      Ok
        (Json.Obj
           [
             ("fact", Json.Str (Pq.fact_to_string pred tup));
             ("present", Json.Bool present);
             ("count", Json.int (access.Pq.count pred tup));
             ("provenance_enabled", Json.Bool (Ivm_prov.Prov.enabled ()));
             ( (if present then "why" else "whynot"),
               if present then Pq.why_json (Pq.why access pred tup)
               else Pq.whynot_json (Pq.whynot access pred tup) );
             ("lineage", Pq.lineage_json (Pq.lineage access pred tup));
           ])
    end

(** The manager's state as JSON — the monitor's [/statusz] body (minus
    process-level fields like uptime, which the server adds): algorithm,
    semantics, domain count, per-view tuple counts, durable-store
    status, and the last batch's wall time.

    The monitor calls this from its accept domain, possibly while
    {!apply} is mutating relations on another.  The values are {e racy
    point-in-time reads} — the same contract as a [/metrics] scrape:
    cardinals taken mid-batch can be mutually inconsistent (each read is
    an O(1) size-field load, never a traversal, so a concurrent resize
    cannot misreport beyond staleness).  Callers wanting a consistent
    snapshot must serialize with [apply] themselves, as [apply] is
    single-writer by design and takes no lock. *)
let status_json (t : t) : Ivm_obs.Json.t =
  let module Json = Ivm_obs.Json in
  let program = program t in
  let views =
    List.map
      (fun p ->
        ( p,
          Json.Obj
            [
              ("stratum", Json.int (Program.stratum program p));
              ("tuples", Json.int (Relation.cardinal (relation t p)));
            ] ))
      (Program.derived_in_stratum_order program)
  in
  let bases =
    List.map
      (fun p -> (p, Json.int (Relation.cardinal (relation t p))))
      (List.sort String.compare (Program.base_preds program))
  in
  let store =
    match store_status t with
    | None -> Json.Null
    | Some s ->
      Json.Obj
        [
          ("dir", Json.Str s.Ivm_store.Store.dir);
          ("seq", Json.int s.Ivm_store.Store.seq);
          ("snapshot_seq", Json.int s.Ivm_store.Store.snapshot_seq);
          ("snapshot_bytes", Json.int s.Ivm_store.Store.snapshot_bytes);
          ("wal_records", Json.int s.Ivm_store.Store.wal_records);
          ("wal_bytes", Json.int s.Ivm_store.Store.wal_bytes);
        ]
  in
  Json.Obj
    [
      ("algorithm", Json.Str (algorithm_name (resolve t)));
      ( "semantics",
        Json.Str
          (match semantics t with
          | Database.Set_semantics -> "set"
          | Database.Duplicate_semantics -> "duplicate") );
      ("domains", Json.int (Ivm_par.domains ()));
      ("views", Json.Obj views);
      ("base_relations", Json.Obj bases);
      ("store", store);
      ("provenance", Ivm_prov.Prov.status_json ());
      ( "last_batch_ns",
        Json.int (int_of_float (Metrics.gauge_value last_batch_g)) );
      ( "last_batch",
        match Ivm_obs.Attribution.last () with
        | None -> Json.Null
        | Some b -> Ivm_obs.Attribution.batch_json b );
    ]
