(** DRed — Delete and Rederive (Section 7): incremental maintenance of
    (general) recursive views with stratified negation and aggregation,
    under set semantics.

    The program's derived predicates are partitioned into maintenance units
    — SCCs of mutually recursive predicates — processed in dependency
    order ("stratum by stratum").  For each unit, given the deletions
    [Del] and insertions [Add] accumulated from base changes and lower
    units:

    + {b Delete} an overestimate: semi-naive evaluation of the δ⁻-rules
      [δ⁻(p) :- s1 & … & δ⁻(si) & … & sn], where non-delta subgoals read
      the {e old} materialized relations.  A deletion reaches [δ⁻(si)]
      through a positive subgoal from [Del], through a negated subgoal from
      [Add] (a newly-true [q] falsifies [¬q]), and through a GROUPBY
      subgoal from the old tuples of changed groups (Algorithm 6.1).
    + {b Rederive}: [δ⁺(p) :- δ⁻(p) & s1ν & … & snν] — every overdeleted
      tuple that still has a derivation in the {e new} database is put
      back.  Within a recursive unit the fixpoint lets rederived tuples
      support further rederivations.
    + {b Insert}: semi-naive evaluation of the Δ⁺-rules over the new
      relations, seeded by [Add] of lower strata, by [Del] through negated
      subgoals, and by the new tuples of changed groups.

    By Theorem 7.1 the result contains a tuple iff it has a derivation in
    the updated database.  Stored counts are treated as set membership:
    deleting a tuple cancels its whole stored count, so DRed composes with
    materializations produced by either evaluation mode. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Ast = Ivm_datalog.Ast
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Compile = Ivm_eval.Compile
module Rule_eval = Ivm_eval.Rule_eval
module Grouping = Ivm_eval.Grouping

let log_src = Logs.Src.create "ivm.dred" ~doc:"DRed maintenance"

module Log = (val Logs.src_log log_src)
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace
module Stats = Ivm_eval.Stats

let batches_c =
  Metrics.counter ~labels:[ ("algorithm", "dred") ] "ivm_maintain_batches_total"

(** The paper's DRed inefficiency metrics (Section 7 / bench E5–E6):
    tuples deleted by the step-1 overestimate, candidate support checks
    performed in step 2, and overdeleted tuples actually put back
    (deleted-then-rederived — pure wasted work relative to counting). *)
let overdeleted_c = Metrics.counter "ivm_dred_overdeleted_total"

let rederive_attempts_c = Metrics.counter "ivm_dred_rederive_attempts_total"
let rederived_c = Metrics.counter "ivm_dred_rederived_total"

(** Per maintenance unit per batch: size of the deletion overestimate. *)
let overestimate_h = Metrics.histogram "ivm_dred_overestimate_size"

exception Duplicate_semantics_unsupported

type report = {
  base_deltas : (string * Relation.t) list;
  view_deltas : (string * Relation.t) list;
      (** per derived predicate: ±1 set transitions actually applied *)
  overdeleted : (string * int) list;
      (** per predicate: size of the step-1 overestimate (for the
          fragmentation benches) *)
  rederived : (string * int) list;  (** per predicate: tuples put back in step 2 *)
}

(* ------------------------------------------------------------------ *)

type ctx = {
  db : Database.t;
  delta : (string, Relation.t) Hashtbl.t;
      (** live per-predicate count delta; overlays read it as it grows *)
  trans : (string, Relation.t * Relation.t) Hashtbl.t;
      (** finalized (Del, Add) set transitions, per predicate *)
  grouped : (string, Relation.t) Hashtbl.t;
  agg_deltas : (string, Relation.t) Hashtbl.t;
}

let arity_of ctx pred = Program.arity (Database.program ctx.db) pred

(* [maintain] pre-populates a slot for every program predicate before any
   evaluation starts, so this is a pure lookup.  That matters: worker
   thunks build overlays through [new_view] concurrently, and a lazy
   insert here would be an unsynchronized Hashtbl mutation from multiple
   domains — first touch must never happen inside a thunk. *)
let delta_of ctx pred =
  match Hashtbl.find_opt ctx.delta pred with
  | Some r -> r
  | None -> invalid_arg ("Dred.delta_of: no delta slot for predicate " ^ pred)

let old_view ctx pred = Database.view ctx.db pred

(** Live overlay: reflects subsequent growth of the predicate's delta. *)
let new_view ctx pred =
  Relation_view.Overlay
    { base = Database.relation ctx.db pred; delta = delta_of ctx pred }

(** Finalize a predicate's (Del, Add) set transitions from its delta. *)
let finalize ctx pred =
  let stored = Database.relation ctx.db pred in
  let del = Relation.create (arity_of ctx pred) in
  let add = Relation.create (arity_of ctx pred) in
  Relation.iter
    (fun tup c ->
      Stats.add_scanned ();
      let before = Relation.count stored tup in
      let after = before + c in
      if before > 0 && after <= 0 then Relation.add del tup 1
      else if before <= 0 && after > 0 then Relation.add add tup 1)
    (delta_of ctx pred);
  Hashtbl.replace ctx.trans pred (del, add)

let transitions ctx pred =
  match Hashtbl.find_opt ctx.trans pred with
  | Some v -> v
  | None ->
    (* Predicates untouched by the changes have empty transitions. *)
    let e = Relation.create (arity_of ctx pred) in
    (e, e)

let del_of ctx pred = fst (transitions ctx pred)
let add_of ctx pred = snd (transitions ctx pred)

let grouped ctx ~version (spec : Compile.agg_spec) =
  let tag = version ^ "|" ^ spec.gsignature in
  match Hashtbl.find_opt ctx.grouped tag with
  | Some r -> r
  | None ->
    let view =
      match version with
      | "old" -> old_view ctx spec.gsource.cpred
      | _ -> new_view ctx spec.gsource.cpred
    in
    let r = Grouping.compute ~mult:Rule_eval.set_count view spec in
    Hashtbl.replace ctx.grouped tag r;
    r

(** Algorithm 6.1 over the finalized source delta; split by the caller into
    deleted (negative) and inserted (positive) grouped tuples. *)
let agg_delta ctx (spec : Compile.agg_spec) =
  match Hashtbl.find_opt ctx.agg_deltas spec.gsignature with
  | Some r -> r
  | None ->
    let pred = spec.gsource.cpred in
    let r =
      match Database.agg_index ctx.db spec with
      | Some idx ->
        (* feed the ±1 set transitions of the finalized source *)
        let del, add = transitions ctx pred in
        Ivm_eval.Agg_index.delta_preview idx (Relation.union (Relation.negate del) add)
      | None ->
        Grouping.delta ~mult:Rule_eval.set_count ~old_view:(old_view ctx pred)
          ~new_view:(new_view ctx pred) ~delta_u:(delta_of ctx pred) spec
    in
    Hashtbl.replace ctx.agg_deltas spec.gsignature r;
    r

(* ------------------------------------------------------------------ *)
(* Parallel fan-out plumbing                                            *)
(* ------------------------------------------------------------------ *)

(* Every DRed phase is a semi-naive fixpoint whose rounds evaluate rule
   applications against views frozen for the round, then commit the
   emissions (the commits mutate the unit deltas / pending sets the next
   round reads).  That makes each round a batch of independent read-only
   tasks: evaluate into private buffers across the domain pool, then
   commit sequentially in fixed task order.  A derivation that the
   sequential interleaving would have seen mid-round (a commit feeding a
   later evaluation of the same round) is instead picked up by the next
   round's seeds — all three phases are monotone fixpoints over unit
   predicates, so the frozen-round schedule converges to the identical
   final state.

   Shared lazy state is pre-forced before fan-out: [maintain] populates a
   [ctx.delta] slot per program predicate (so [new_view] never inserts),
   and [prepare_grouped] forces the grouped-relation cache entries a
   rule's aggregate literals read.  Thunks only read [ctx]. *)

let par_chunks () =
  if Ivm_par.sequential () then 1 else Ivm_eval.Par_eval.chunks_hint ()

(** Run the task thunks across the pool, then commit each resulting
    buffer sequentially in task order. *)
let run_batch (tasks : ('k * (unit -> Relation.t)) list)
    ~(commit : 'k -> Relation.t -> unit) =
  match tasks with
  | [] -> ()
  | tasks ->
    let tasks = Array.of_list tasks in
    let outs = Ivm_par.parallel_map (Array.map snd tasks) in
    Array.iteri (fun k buf -> commit (fst tasks.(k)) buf) outs

(** Sequentially force the grouped-relation cache entries the rule's
    aggregate literals will read — first touch must never happen inside
    a worker thunk. *)
let prepare_grouped ctx ~version (cr : Compile.t) =
  Array.iter
    (fun lit ->
      match lit with
      | Compile.Cagg (spec, _) -> ignore (grouped ctx ~version spec)
      | _ -> ())
    cr.Compile.clits

(* ------------------------------------------------------------------ *)
(* Step 1: the deletion overestimate                                    *)
(* ------------------------------------------------------------------ *)

(** One δ⁻-rule application: seed position [i] with [source], all other
    subgoals reading the {e old} database. *)
let run_deletion_rule ctx cr ~pos ~source ~emit =
  let inputs j =
    if j = pos then
      Rule_eval.Enumerate (Relation_view.concrete source, Rule_eval.set_count)
    else
      match cr.Compile.clits.(j) with
      | Compile.Catom a -> Rule_eval.Enumerate (old_view ctx a.cpred, Rule_eval.set_count)
      | Compile.Cneg a -> Rule_eval.Filter_absent (old_view ctx a.cpred)
      | Compile.Cagg (spec, _) ->
        Rule_eval.Enumerate
          (Relation_view.concrete (grouped ctx ~version:"old" spec),
           Rule_eval.identity_count)
      | Compile.Ccmp _ -> assert false
  in
  Rule_eval.eval ~seed:pos ~inputs ~emit cr

(** Step 1 for one unit: returns the overestimate δ⁻ per predicate, with
    the unit deltas already reflecting the deletions. *)
let delete_overestimate ctx unit_preds =
  let program = Database.program ctx.db in
  let in_unit p = List.mem p unit_preds in
  let dminus = Hashtbl.create 4 in
  let pending = Hashtbl.create 4 in
  List.iter
    (fun p ->
      Hashtbl.replace dminus p (Relation.create (arity_of ctx p));
      Hashtbl.replace pending p (Relation.create (arity_of ctx p)))
    unit_preds;
  let next_pending = Hashtbl.create 4 in
  List.iter
    (fun p -> Hashtbl.replace next_pending p (Relation.create (arity_of ctx p)))
    unit_preds;
  let emit_for p tup c =
    if c > 0 then begin
      let stored = Database.relation ctx.db p in
      let dm = Hashtbl.find dminus p in
      Stats.add_probe ();
      if Relation.mem stored tup && not (Relation.mem dm tup) then begin
        Relation.add dm tup 1;
        Relation.add (Hashtbl.find next_pending p) tup 1;
        (* hide the tuple from the unit's new views *)
        Relation.add (delta_of ctx p) tup (-Relation.count stored tup)
      end
    end
  in
  let chunks = par_chunks () in
  let deletion_task p cr ~pos ~source () =
    let buf = Relation.create (arity_of ctx p) in
    run_deletion_rule ctx cr ~pos ~source ~emit:(fun tup c ->
        if c > 0 then Relation.add buf tup 1);
    buf
  in
  let commit p buf = Relation.iter (fun tup c -> emit_for p tup c) buf in
  (* Round 0: seeds from outside the unit. *)
  let round0 = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun rule ->
          let cr = Database.compile ctx.db rule in
          Array.iteri
            (fun i lit ->
              let source =
                match lit with
                | Compile.Catom a when not (in_unit a.cpred) ->
                  Some (del_of ctx a.cpred)
                | Compile.Catom _ -> None
                | Compile.Cneg a -> Some (add_of ctx a.cpred)
                | Compile.Cagg (spec, _) ->
                  Some (Relation.negative_part (agg_delta ctx spec))
                | Compile.Ccmp _ -> None
              in
              match source with
              | Some src when not (Relation.is_empty src) ->
                prepare_grouped ctx ~version:"old" cr;
                Array.iter
                  (fun part ->
                    round0 := (p, deletion_task p cr ~pos:i ~source:part) :: !round0)
                  (Ivm_eval.Par_eval.split src ~chunks)
              | _ -> ())
            cr.Compile.clits)
        (Program.rules_for program p))
    unit_preds;
  run_batch (List.rev !round0) ~commit;
  (* Fixpoint rounds: seeds from the unit's own growing overestimate. *)
  let rotate () =
    let any = ref false in
    List.iter
      (fun p ->
        let np = Hashtbl.find next_pending p in
        Hashtbl.replace pending p np;
        Hashtbl.replace next_pending p (Relation.create (arity_of ctx p));
        if not (Relation.is_empty np) then any := true)
      unit_preds;
    !any
  in
  while rotate () do
    let batch = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun rule ->
            let cr = Database.compile ctx.db rule in
            Array.iteri
              (fun i lit ->
                match lit with
                | Compile.Catom a when in_unit a.cpred ->
                  let src = Hashtbl.find pending a.cpred in
                  if not (Relation.is_empty src) then begin
                    prepare_grouped ctx ~version:"old" cr;
                    Array.iter
                      (fun part ->
                        batch := (p, deletion_task p cr ~pos:i ~source:part) :: !batch)
                      (Ivm_eval.Par_eval.split src ~chunks)
                  end
                | _ -> ())
              cr.Compile.clits)
          (Program.rules_for program p))
      unit_preds;
    run_batch (List.rev !batch) ~commit
  done;
  dminus

(* ------------------------------------------------------------------ *)
(* Step 2: rederivation                                                 *)
(* ------------------------------------------------------------------ *)

let marker_pred p = "$dred_overestimate$" ^ p

(* Rederivation rules reach the evaluator's provenance hook under their
   rewritten text; map it back to the source rule so stored supports name
   the program's own rules.  Populated only from sequential task
   construction (never from worker domains). *)
let rederive_sources : (string, string) Hashtbl.t = Hashtbl.create 16

let prov_source_rule s =
  match Hashtbl.find_opt rederive_sources s with Some orig -> orig | None -> s

(** The rederivation rule [δ⁺(p) :- δ⁻(p) & s1ν & … & snν] built as an AST
    rule whose first subgoal is a pseudo-predicate enumerating the
    still-deleted overestimate.  Head arguments that are expressions get a
    fresh variable in the marker atom and an equality filter, so
    rederivation also works for heads like [hop(S,D,C1+C2)]. *)
let rederive_rule (r : Ast.rule) : Ast.rule =
  let fresh = ref 0 in
  let marker_args, filters =
    List.fold_right
      (fun e (args, filters) ->
        match e with
        | Ast.Eterm (Ast.Var _) | Ast.Eterm (Ast.Const _) -> (e :: args, filters)
        | e ->
          incr fresh;
          let v = Printf.sprintf "$rederive%d" !fresh in
          ( Ast.Eterm (Ast.Var v) :: args,
            Ast.Lcmp (Ast.Eterm (Ast.Var v), Ast.Eq, e) :: filters ))
      r.head.args ([], [])
  in
  let marker = { Ast.pred = marker_pred r.head.pred; args = marker_args } in
  let rr =
    {
      Ast.head = { r.head with args = marker_args };
      body = (Ast.Lpos marker :: r.body) @ filters;
    }
  in
  if Ivm_prov.Prov.capturing () then
    Hashtbl.replace rederive_sources
      (Ivm_datalog.Pretty.rule_to_string rr)
      (Ivm_datalog.Pretty.rule_to_string r);
  rr

(** Step 2 for one unit: puts rederivable tuples back (their hidden counts
    are restored in the unit deltas), semi-naively.  The first pass checks
    every overdeleted tuple for support in the new database; subsequent
    waves re-check only candidates joinable with the {e previous wave's}
    putbacks (a rederived tuple can support further rederivations within a
    recursive unit).  Returns per-predicate putback counts. *)
let rederive ctx unit_preds (dminus : (string, Relation.t) Hashtbl.t) =
  let program = Database.program ctx.db in
  let in_unit p = List.mem p unit_preds in
  (* pend = δ⁻ tuples not yet put back *)
  let pend = Hashtbl.create 4 in
  List.iter
    (fun p -> Hashtbl.replace pend p (Relation.copy (Hashtbl.find dminus p)))
    unit_preds;
  let putbacks = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace putbacks p 0) unit_preds;
  let wave = Hashtbl.create 4 in
  let next_wave = Hashtbl.create 4 in
  List.iter
    (fun p -> Hashtbl.replace next_wave p (Relation.create (arity_of ctx p)))
    unit_preds;
  (* [marker] / [wave_rel] override what the marker and wave positions
     enumerate — parallel fan-out passes one frozen chunk per task. *)
  let inputs_for p cr ?(wave_pos = -1) ?marker ?wave_rel () j =
    match cr.Compile.clits.(j) with
    | Compile.Catom a when a.cpred = marker_pred p ->
      let m = match marker with Some r -> r | None -> Hashtbl.find pend p in
      Rule_eval.Enumerate (Relation_view.concrete m, Rule_eval.set_count)
    | Compile.Catom a when j = wave_pos ->
      let w = match wave_rel with Some r -> r | None -> Hashtbl.find wave a.cpred in
      Rule_eval.Enumerate (Relation_view.concrete w, Rule_eval.set_count)
    | Compile.Catom a -> Rule_eval.Enumerate (new_view ctx a.cpred, Rule_eval.set_count)
    | Compile.Cneg a -> Rule_eval.Filter_absent (new_view ctx a.cpred)
    | Compile.Cagg (spec, _) ->
      Rule_eval.Enumerate
        (Relation_view.concrete (grouped ctx ~version:"new" spec),
         Rule_eval.identity_count)
    | Compile.Ccmp _ -> assert false
  in
  (* Buffer emissions: applying a putback mutates relations the evaluator
     may currently be iterating (pend, the unit deltas behind new views). *)
  let apply_buffer p buf =
    let pend_p = Hashtbl.find pend p in
    let nv = new_view ctx p in
    Relation.iter
      (fun tup _ ->
        Metrics.inc rederive_attempts_c;
        Stats.add_probe ();
        if Relation.mem pend_p tup && not (Relation_view.holds nv tup) then begin
          (* restore the hidden stored count *)
          let stored = Database.relation ctx.db p in
          Relation.add (delta_of ctx p) tup (Relation.count stored tup);
          Relation.remove pend_p tup;
          Relation.add (Hashtbl.find next_wave p) tup 1;
          Hashtbl.replace putbacks p (Hashtbl.find putbacks p + 1)
        end)
      buf
  in
  let chunks = par_chunks () in
  (* Pass 0: support check for every overdeleted tuple.  Evaluations run
     against views frozen for the pass (buffers committed afterwards in
     task order); putbacks a sequential interleaving would have seen
     mid-pass seed the wave rounds instead. *)
  let pass0 = ref [] in
  List.iter
    (fun p ->
      if not (Relation.is_empty (Hashtbl.find pend p)) then
        List.iter
          (fun rule ->
            let rr = rederive_rule rule in
            let cr = Database.compile ctx.db rr in
            prepare_grouped ctx ~version:"new" cr;
            Array.iter
              (fun part ->
                pass0 :=
                  ( p,
                    fun () ->
                      let buf = Relation.create (arity_of ctx p) in
                      Rule_eval.eval ~seed:0
                        ~inputs:(inputs_for p cr ~marker:part ())
                        ~emit:(fun tup c -> if c > 0 then Relation.add buf tup 1)
                        cr;
                      buf )
                  :: !pass0)
              (Ivm_eval.Par_eval.split (Hashtbl.find pend p) ~chunks))
          (Program.rules_for program p))
    unit_preds;
  run_batch (List.rev !pass0) ~commit:apply_buffer;
  (* Waves: only candidates supported by the previous wave's putbacks. *)
  let rotate () =
    let any = ref false in
    List.iter
      (fun p ->
        let nw = Hashtbl.find next_wave p in
        Hashtbl.replace wave p nw;
        Hashtbl.replace next_wave p (Relation.create (arity_of ctx p));
        if not (Relation.is_empty nw) then any := true)
      unit_preds;
    !any
  in
  while rotate () do
    let batch = ref [] in
    List.iter
      (fun p ->
        if not (Relation.is_empty (Hashtbl.find pend p)) then
          List.iter
            (fun rule ->
              let rr = rederive_rule rule in
              let cr = Database.compile ctx.db rr in
              (* positions 1.. of the rederive rule hold the original body;
                 seed at each occurrence of a unit predicate whose last
                 wave is non-empty *)
              Array.iteri
                (fun j lit ->
                  match lit with
                  | Compile.Catom a
                    when j > 0 && in_unit a.cpred
                         && not (Relation.is_empty (Hashtbl.find wave a.cpred)) ->
                    prepare_grouped ctx ~version:"new" cr;
                    Array.iter
                      (fun part ->
                        batch :=
                          ( p,
                            fun () ->
                              let buf = Relation.create (arity_of ctx p) in
                              Rule_eval.eval ~seed:j
                                ~inputs:(inputs_for p cr ~wave_pos:j ~wave_rel:part ())
                                ~emit:(fun tup c ->
                                  if c > 0 then Relation.add buf tup 1)
                                cr;
                              buf )
                          :: !batch)
                      (Ivm_eval.Par_eval.split (Hashtbl.find wave a.cpred) ~chunks)
                  | _ -> ())
                cr.Compile.clits)
            (Program.rules_for program p))
      unit_preds;
    run_batch (List.rev !batch) ~commit:apply_buffer
  done;
  putbacks

(* ------------------------------------------------------------------ *)
(* Step 3: insertions                                                   *)
(* ------------------------------------------------------------------ *)

let run_insertion_rule ctx cr ~pos ~source ~emit =
  let inputs j =
    if j = pos then
      Rule_eval.Enumerate (Relation_view.concrete source, Rule_eval.set_count)
    else
      match cr.Compile.clits.(j) with
      | Compile.Catom a -> Rule_eval.Enumerate (new_view ctx a.cpred, Rule_eval.set_count)
      | Compile.Cneg a -> Rule_eval.Filter_absent (new_view ctx a.cpred)
      | Compile.Cagg (spec, _) ->
        Rule_eval.Enumerate
          (Relation_view.concrete (grouped ctx ~version:"new" spec),
           Rule_eval.identity_count)
      | Compile.Ccmp _ -> assert false
  in
  Rule_eval.eval ~seed:pos ~inputs ~emit cr

let insert_new ctx unit_preds =
  let program = Database.program ctx.db in
  let in_unit p = List.mem p unit_preds in
  let pending = Hashtbl.create 4 in
  let next_pending = Hashtbl.create 4 in
  List.iter
    (fun p ->
      Hashtbl.replace pending p (Relation.create (arity_of ctx p));
      Hashtbl.replace next_pending p (Relation.create (arity_of ctx p)))
    unit_preds;
  let chunks = par_chunks () in
  let insertion_task p cr ~pos ~source () =
    let buf = Relation.create (arity_of ctx p) in
    run_insertion_rule ctx cr ~pos ~source ~emit:(fun tup c ->
        if c > 0 then Relation.add buf tup 1);
    buf
  in
  (* Committing candidate insertions mutates the unit deltas that back
     the new views the evaluators read, so buffers are committed only
     between batches, in task order. *)
  let commit p buf =
    let nv = new_view ctx p in
    Relation.iter
      (fun tup _ ->
        if not (Relation_view.holds nv tup) then begin
          Relation.add (delta_of ctx p) tup 1;
          Relation.add (Hashtbl.find next_pending p) tup 1
        end)
      buf
  in
  (* Round 0: seeds from outside the unit. *)
  let round0 = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun rule ->
          let cr = Database.compile ctx.db rule in
          Array.iteri
            (fun i lit ->
              let source =
                match lit with
                | Compile.Catom a when not (in_unit a.cpred) ->
                  Some (add_of ctx a.cpred)
                | Compile.Catom _ -> None
                | Compile.Cneg a -> Some (del_of ctx a.cpred)
                | Compile.Cagg (spec, _) ->
                  Some (Relation.positive_part (agg_delta ctx spec))
                | Compile.Ccmp _ -> None
              in
              match source with
              | Some src when not (Relation.is_empty src) ->
                prepare_grouped ctx ~version:"new" cr;
                Array.iter
                  (fun part ->
                    round0 := (p, insertion_task p cr ~pos:i ~source:part) :: !round0)
                  (Ivm_eval.Par_eval.split src ~chunks)
              | _ -> ())
            cr.Compile.clits)
        (Program.rules_for program p))
    unit_preds;
  run_batch (List.rev !round0) ~commit;
  let rotate () =
    let any = ref false in
    List.iter
      (fun p ->
        let np = Hashtbl.find next_pending p in
        Hashtbl.replace pending p np;
        Hashtbl.replace next_pending p (Relation.create (arity_of ctx p));
        if not (Relation.is_empty np) then any := true)
      unit_preds;
    !any
  in
  while rotate () do
    let batch = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun rule ->
            let cr = Database.compile ctx.db rule in
            Array.iteri
              (fun i lit ->
                match lit with
                | Compile.Catom a when in_unit a.cpred ->
                  let src = Hashtbl.find pending a.cpred in
                  if not (Relation.is_empty src) then begin
                    prepare_grouped ctx ~version:"new" cr;
                    Array.iter
                      (fun part ->
                        batch := (p, insertion_task p cr ~pos:i ~source:part) :: !batch)
                      (Ivm_eval.Par_eval.split src ~chunks)
                  end
                | _ -> ())
              cr.Compile.clits)
          (Program.rules_for program p))
      unit_preds;
    run_batch (List.rev !batch) ~commit
  done

(* ------------------------------------------------------------------ *)

(** Apply [changes] (base-relation deltas with ±1 counts) to [db],
    maintaining all views with DRed.  Set semantics only (Section 7).
    @raise Duplicate_semantics_unsupported under duplicate semantics;
    @raise Changes.Invalid_changes on malformed change sets. *)
let maintain ?record (db : Database.t) (changes : Changes.t) : report =
  if Database.semantics db = Database.Duplicate_semantics then
    raise Duplicate_semantics_unsupported;
  Metrics.inc batches_c;
  if Ivm_prov.Prov.capturing () then
    Ivm_prov.Prov.set_rule_rewrite prov_source_rule;
  let program = Database.program db in
  let normalized = Changes.normalize_base db changes in
  let ctx =
    {
      db;
      delta = Hashtbl.create 16;
      trans = Hashtbl.create 16;
      grouped = Hashtbl.create 8;
      agg_deltas = Hashtbl.create 8;
    }
  in
  (* Every predicate gets its delta slot up front, so [delta_of] — and
     hence [new_view], which worker thunks call concurrently — never
     mutates [ctx.delta] after this point. *)
  List.iter
    (fun p -> Hashtbl.replace ctx.delta p (Relation.create (arity_of ctx p)))
    (Program.base_preds program @ Program.derived_preds program);
  List.iter
    (fun (pred, delta) ->
      Hashtbl.replace ctx.delta pred (Relation.copy delta);
      finalize ctx pred)
    normalized;
  let overdeleted = ref [] and rederived = ref [] in
  Trace.span "dred.maintain"
    ~args:(fun () ->
      [ ("base_tuples", string_of_int (Changes.total_tuples normalized)) ])
    (fun () ->
      List.iter
        (fun unit_preds ->
          let unit_name = String.concat "," unit_preds in
          (* a unit's predicates share a stratum; each phase retags the
             ambient attribution context before its fan-outs *)
          let stratum = Program.stratum program (List.hd unit_preds) in
          let phase name =
            Ivm_obs.Attribution.set_context ~stratum ~phase:name;
            (* Delete-phase emissions enumerate lost derivations — their
               supports are removed regardless of sign; rederivation and
               insertion emissions add supports. *)
            if Ivm_prov.Prov.capturing () then
              Ivm_prov.Prov.set_mode
                (if String.equal name "delete" then Ivm_prov.Prov.Remove
                 else Ivm_prov.Prov.Add)
          in
          Trace.span "dred.unit"
            ~args:(fun () -> [ ("unit", unit_name) ])
            (fun () ->
              let dminus =
                Trace.span "dred.delete"
                  ~args:(fun () -> [ ("unit", unit_name) ])
                  (fun () ->
                    phase "delete";
                    delete_overestimate ctx unit_preds)
              in
              let unit_overdeleted =
                List.fold_left
                  (fun acc p -> acc + Relation.cardinal (Hashtbl.find dminus p))
                  0 unit_preds
              in
              Metrics.add overdeleted_c unit_overdeleted;
              Metrics.observe overestimate_h unit_overdeleted;
              let putbacks =
                Trace.span "dred.rederive"
                  ~args:(fun () -> [ ("unit", unit_name) ])
                  (fun () ->
                    phase "rederive";
                    rederive ctx unit_preds dminus)
              in
              Trace.span "dred.insert"
                ~args:(fun () -> [ ("unit", unit_name) ])
                (fun () ->
                  phase "insert";
                  insert_new ctx unit_preds);
              List.iter (fun p -> finalize ctx p) unit_preds;
              let unit_rederived =
                List.fold_left (fun acc p -> acc + Hashtbl.find putbacks p) 0 unit_preds
              in
              Metrics.add rederived_c unit_rederived;
              Log.debug (fun m ->
                  m "unit {%s}: overdeleted %d, rederived %d" unit_name
                    unit_overdeleted unit_rederived);
              List.iter
                (fun p ->
                  let d = Relation.cardinal (Hashtbl.find dminus p) in
                  if d > 0 then overdeleted := (p, d) :: !overdeleted;
                  let pb = Hashtbl.find putbacks p in
                  if pb > 0 then rederived := (p, pb) :: !rederived)
                unit_preds))
        (Program.recursive_units program));
  (* Commit: apply deltas to the stored relations. *)
  let view_deltas = ref [] in
  List.iter
    (fun p ->
      let del, add = transitions ctx p in
      let d = Relation.union (Relation.negate del) add in
      if not (Relation.is_empty d) then view_deltas := (p, d) :: !view_deltas)
    (Program.derived_preds program);
  let cap = Ivm_prov.Prov.capturing () in
  Hashtbl.iter
    (fun pred delta ->
      let stored = Database.relation db pred in
      Relation.iter
        (fun tup c ->
          let before = Relation.count stored tup in
          let c' = max 0 (before + c) in
          if cap then
            if before <= 0 && c' > 0 then
              Ivm_prov.Prov.on_transition ~pred tup `Derived
            else if before > 0 && c' <= 0 then
              Ivm_prov.Prov.on_transition ~pred tup `Deleted;
          (* The recorded net change is the *applied* difference — after
             the [max 0] clamp — so it stays exact even where the raw
             delta would have driven a count below zero. *)
          (match record with
          | Some f -> if c' <> before then f pred tup (c' - before)
          | None -> ());
          Relation.set_count stored tup c')
        delta)
    ctx.delta;
  (* Registered aggregate indexes consume ±1 set transitions. *)
  let all_transitions =
    Hashtbl.fold
      (fun pred _ acc ->
        let del, add = transitions ctx pred in
        (pred, Relation.union (Relation.negate del) add) :: acc)
      ctx.delta []
  in
  Database.refresh_agg_indexes db all_transitions;
  {
    base_deltas = normalized;
    view_deltas = List.sort (fun (p, _) (q, _) -> String.compare p q) !view_deltas;
    overdeleted = List.sort compare !overdeleted;
    rederived = List.sort compare !rederived;
  }
