(** Maintenance under {e rule} insertions and deletions (Sections 1 and 7:
    "The algorithm can also be used when the view denition is itself
    altered", including insertion/deletion of rules).

    Both directions reduce to ordinary base-relation maintenance through a
    {e guard predicate}: a rule [p :- body] is equivalent to
    [p :- body & g] with a 0-ary base predicate [g] holding one fact.

    - {b Adding} a rule: rebuild the program with the guarded rule and [g]
      empty — every stored materialization is still exact, since the
      guarded rule derives nothing.  Then {e insert} the fact [g()] with the
      regular maintenance algorithm (counting or DRed), which computes
      precisely the derivations the new rule contributes, at every stratum.
    - {b Removing} a rule: rebuild with the rule guarded and [g()] present
      (again a no-op on the fixpoint), then {e delete} [g()]; the
      maintenance algorithm deletes exactly the derivations that depended
      on the removed rule — with DRed's rederivation putting back tuples
      the remaining rules still support.

    Afterwards the program is rebuilt without the guard, which does not
    change any relation.  Removing the last rule of a predicate leaves it
    as an (empty) base relation in the rebuilt program. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Ast = Ivm_datalog.Ast
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

exception Unknown_rule of string

type maintainer = Database.t -> Changes.t -> unit

let guard_counter = ref 0

let fresh_guard () =
  incr guard_counter;
  Printf.sprintf "$rule_guard_%d$" !guard_counter

let guarded_rule guard (r : Ast.rule) : Ast.rule =
  { r with body = r.body @ [ Ast.Lpos { pred = guard; args = [] } ] }

(** Rebuild a database over [rules], carrying over the stored contents of
    every predicate both programs share (relations are moved, not copied —
    the old database must not be used afterwards). *)
let rebuild (db : Database.t) (rules : Ast.rule list) ~(extra_base : (string * int) list)
    : Database.t =
  let program = Program.make ~extra_base rules in
  let db' = Database.create ~semantics:(Database.semantics db) program in
  let old_program = Database.program db in
  List.iter
    (fun pred ->
      if Program.mem_pred old_program pred
         && Program.arity old_program pred = Program.arity program pred then
        Database.set_relation db' pred (Database.relation db pred))
    (Program.base_preds program @ Program.derived_preds program);
  (* carry DISTINCT marks for views that survive the rebuild *)
  List.iter
    (fun v -> if Program.is_derived program v then Database.mark_distinct db' v)
    (Database.distinct_views db);
  db'

let unit_tuple = Tuple.make [||]

(** [add_rule db ~maintain rule] returns a new database whose program has
    [rule], with all views incrementally maintained. *)
let add_rule (db : Database.t) ~(maintain : maintainer) (rule : Ast.rule) :
    Database.t =
  let program = Database.program db in
  (if Program.mem_pred program rule.head.pred
      && Program.is_base program rule.head.pred
      && not (Relation.is_empty (Database.relation db rule.head.pred)) then
     let p = rule.head.pred in
     invalid_arg
       (Printf.sprintf
          "add_rule: %s is a base relation with stored facts; derived \
           relations hold exactly their rule derivations" p));
  let rules = Program.rules (Database.program db) in
  let guard = fresh_guard () in
  let db1 = rebuild db (rules @ [ guarded_rule guard rule ]) ~extra_base:[ (guard, 0) ] in
  maintain db1
    (Changes.insertions (Database.program db1) guard [ unit_tuple ]);
  rebuild db1 (rules @ [ rule ]) ~extra_base:[]

(** [remove_rule db ~maintain rule] — [rule] is matched structurally.
    @raise Unknown_rule when the program has no such rule. *)
let remove_rule (db : Database.t) ~(maintain : maintainer) (rule : Ast.rule) :
    Database.t =
  let rules = Program.rules (Database.program db) in
  if not (List.exists (Ast.equal_rule rule) rules) then
    raise (Unknown_rule (Ivm_datalog.Pretty.rule_to_string rule));
  let rec remove_first = function
    | [] -> []
    | r :: rest -> if Ast.equal_rule rule r then rest else r :: remove_first rest
  in
  let rules_minus = remove_first rules in
  let guard = fresh_guard () in
  (* Keep the removed predicate known even if this was its last rule. *)
  let head_arity = List.length rule.head.args in
  let db1 =
    rebuild db
      (rules_minus @ [ guarded_rule guard rule ])
      ~extra_base:[ (guard, 0) ]
  in
  Database.load db1 guard [ unit_tuple ];
  maintain db1 (Changes.deletions (Database.program db1) guard [ unit_tuple ]);
  rebuild db1 rules_minus ~extra_base:[ (rule.head.pred, head_arity) ]
