(** Change sets: the [Δ] notation of Section 3.  A change set maps
    predicates to delta relations — insertions with positive counts,
    deletions with negative counts.  Updates are modelled, as in the paper,
    as a deletion plus an insertion of the modified tuple. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

type t = (string * Relation.t) list

exception Invalid_changes of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_changes s)) fmt

(** Build a change set from per-predicate [(tuple, count)] lists. *)
let of_list (program : Program.t) (specs : (string * (Tuple.t * int) list) list) : t =
  List.map
    (fun (pred, entries) ->
      let r = Relation.of_list (Program.arity program pred) entries in
      (pred, r))
    specs

let insertions program pred tuples =
  of_list program [ (pred, List.map (fun t -> (t, 1)) tuples) ]

let deletions program pred tuples =
  of_list program [ (pred, List.map (fun t -> (t, -1)) tuples) ]

(** [update program pred ~old_tuple ~new_tuple] — delete + insert. *)
let update program pred ~old_tuple ~new_tuple =
  of_list program [ (pred, [ (old_tuple, -1); (new_tuple, 1) ]) ]

(** Merge change sets with [⊎] per predicate. *)
let merge (a : t) (b : t) : t =
  let tbl = Hashtbl.create 8 in
  let absorb (pred, r) =
    match Hashtbl.find_opt tbl pred with
    | Some acc -> Relation.union_into ~into:acc r
    | None -> Hashtbl.replace tbl pred (Relation.copy r)
  in
  List.iter absorb a;
  List.iter absorb b;
  Hashtbl.fold (fun p r acc -> (p, r) :: acc) tbl []
  |> List.sort (fun (p, _) (q, _) -> String.compare p q)

let is_empty (t : t) = List.for_all (fun (_, r) -> Relation.is_empty r) t

let total_tuples (t : t) =
  List.fold_left (fun acc (_, r) -> acc + Relation.cardinal r) 0 t

(** Validate a change set against the database and normalize it for the
    database's semantics:

    - every changed predicate must be a base relation of the program;
    - deletions must not exceed stored multiplicities (the paper's standing
      assumption [Γ− ⊆ E], Lemma 4.1);
    - under set semantics, inserting an already-present tuple and deleting
      with multiplicity collapse to ±1 transitions (re-inserting a present
      tuple is dropped).

    Returns the normalized change set.
    @raise Invalid_changes on violations. *)
let normalize_base (db : Database.t) (t : t) : t =
  let program = Database.program db in
  (* Collapse duplicate entries for the same predicate with [⊎] first. *)
  let t = merge t [] in
  List.filter_map
    (fun (pred, delta) ->
      if not (Program.mem_pred program pred) then fail "unknown relation %s" pred;
      if Program.is_derived program pred then
        fail "%s is a derived relation: apply changes to base relations only"
          pred;
      if Relation.arity delta <> Program.arity program pred then
        fail "arity mismatch in changes for %s" pred;
      let stored = Database.relation db pred in
      let out = Relation.create (Relation.arity delta) in
      Relation.iter
        (fun tup c ->
          let have = Relation.count stored tup in
          match Database.semantics db with
          | Database.Duplicate_semantics ->
            if have + c < 0 then
              fail "deleting %d copies of %s%s but only %d stored" (-c) pred
                (Tuple.to_string tup) have;
            Relation.add out tup c
          | Database.Set_semantics ->
            if c > 0 && have = 0 then Relation.add out tup 1
            else if c < 0 then begin
              if have = 0 then
                fail "deleting %s%s which is not in the database" pred
                  (Tuple.to_string tup);
              Relation.add out tup (-1)
            end)
        delta;
      if Relation.is_empty out then None else Some (pred, out))
    t
  |> List.sort (fun (p, _) (q, _) -> String.compare p q)

(* ---------------- net-change collectors ---------------- *)

(* A collector accumulates the net stored-count changes a maintenance run
   actually commits — base and derived predicates alike — as a change set.
   The maintenance algorithms call [record] from their commit sites with
   the per-tuple applied difference (new stored count − old), so the
   collected set is exact by construction: replaying it with ⊎ onto any
   count-identical database yields the post-maintenance database.  A run
   that mutates stored state without per-tuple deltas (recomputation,
   rederivation) marks the collector incomplete instead, and consumers
   (the snapshot publisher) fall back to a full copy. *)
type collector = {
  net : (string, Relation.t) Hashtbl.t;
  mutable incomplete : bool;
}

let collector () = { net = Hashtbl.create 8; incomplete = false }

let record col pred tup c =
  if c <> 0 then begin
    let r =
      match Hashtbl.find_opt col.net pred with
      | Some r -> r
      | None ->
        let r = Relation.create (Tuple.arity tup) in
        Hashtbl.replace col.net pred r;
        r
    in
    Relation.add r tup c
  end

let mark_incomplete col = col.incomplete <- true
let is_complete col = not col.incomplete

let collected col : t =
  Hashtbl.fold (fun p r acc -> if Relation.is_empty r then acc else (p, r) :: acc)
    col.net []
  |> List.sort (fun (p, _) (q, _) -> String.compare p q)

let pp ppf (t : t) =
  List.iter
    (fun (pred, r) -> Format.fprintf ppf "Δ%s = %a@." pred Relation.pp r)
    t

let to_string t = Format.asprintf "%a" pp t
