(** The counting algorithm (Algorithm 4.1) for incremental maintenance of
    {e nonrecursive} views, with negation (Section 6.1), aggregation
    (Section 6.2), and both duplicate and set semantics (Section 5).

    Rules are processed in increasing rule stratum number.  For each rule
    [p :- s1 & … & sn], the [i]-th delta rule

    {v Δ(p) :- s1ν & … & s(i−1)ν & Δ(si) & s(i+1) & … & sn v}

    is evaluated only when [Δ(si)] is non-empty; the results of all delta
    rules of all rules defining [p] are combined with [⊎] into [Δ(P)], and
    [Pν = P ⊎ Δ(P)] becomes visible to higher strata through an overlay.

    Under set semantics the boxed statement (2) applies: stored counts are
    derivation counts relative to lower strata counted once, and the delta
    {e propagated} to higher strata is [set(Pν) − set(P)] — a deletion that
    leaves a tuple with alternative derivations cascades nowhere
    (Example 5.1).  By Theorem 4.1 the computed [Δ(P)] holds exactly
    [countν(t) − count(t)] for every tuple, which makes the algorithm
    optimal: it derives exactly the view tuples that change. *)

module Relation = Ivm_relation.Relation
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database

let log_src = Logs.Src.create "ivm.counting" ~doc:"counting algorithm maintenance"

module Log = (val Logs.src_log log_src)
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace

let batches_c =
  Metrics.counter ~labels:[ ("algorithm", "counting") ] "ivm_maintain_batches_total"

(** Per maintained view per batch: |Δ(P)| (Theorem 4.1 says this is
    exactly the number of changed view tuples — the optimality metric). *)
let delta_h = Metrics.histogram "ivm_counting_delta_size"

exception Recursive_program of string

type report = {
  base_deltas : (string * Relation.t) list;
      (** the normalized base changes that were applied *)
  view_deltas : (string * Relation.t) list;
      (** per derived predicate: the full count delta [Δ(P)] *)
  propagated_deltas : (string * Relation.t) list;
      (** per derived predicate: the delta visible to dependent views — the
          set transition under set semantics, [Δ(P)] itself under
          duplicates *)
}

let changed_views report = List.map fst report.view_deltas

(** Apply [changes] (base-relation deltas) to [db], incrementally updating
    every materialized view.  Returns what changed.
    @raise Recursive_program when the program has recursive views — use
    {!Dred} there (Section 7);
    @raise Changes.Invalid_changes on malformed change sets. *)
let maintain ?record (db : Database.t) (changes : Changes.t) : report =
  let program = Database.program db in
  (match
     List.find_opt (fun p -> Program.recursive program p) (Program.derived_preds program)
   with
  | Some p ->
    raise
      (Recursive_program
         (Printf.sprintf
            "predicate %s is recursive; the counting algorithm handles \
             nonrecursive views — use DRed for recursive views" p))
  | None -> ());
  Metrics.inc batches_c;
  (* Delta emissions enumerate each gained (+) / lost (−) derivation
     exactly once (Definition 4.1's partition), so sign-driven support
     capture stays exact. *)
  if Ivm_prov.Prov.capturing () then Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
  let normalized = Changes.normalize_base db changes in
  let affected =
    (* only views transitively depending on a changed base relation can
       change; the rest are not visited at all *)
    Program.affected_views program ~changed:(List.map fst normalized)
  in
  Trace.span "counting.maintain"
    ~args:(fun () ->
      [
        ("affected_views", string_of_int (List.length affected));
        ("base_tuples", string_of_int (Changes.total_tuples normalized));
      ])
    (fun () ->
      let ctx = Delta.create db in
      List.iter (fun (pred, delta) -> Delta.set_delta ctx pred ~full:delta) normalized;
      Log.debug (fun m ->
          m "maintaining %d affected views (of %d) against %d changed base tuples"
            (List.length affected)
            (List.length (Program.derived_preds program))
            (Changes.total_tuples normalized));
      List.iter
        (fun p ->
          if List.mem p affected then begin
            let out = Relation.create (Program.arity program p) in
            Ivm_obs.Attribution.set_context
              ~stratum:(Program.stratum program p) ~phase:"delta";
            Trace.span "counting.view"
              ~args:(fun () ->
                [
                  ("view", p);
                  ("stratum", string_of_int (Program.stratum program p));
                  ("delta", string_of_int (Relation.cardinal out));
                  ( "propagated",
                    string_of_int (Relation.cardinal (Delta.propagated_delta ctx p)) );
                ])
              (fun () ->
                let crs =
                  List.map (Database.compile db) (Program.rules_for program p)
                in
                Delta.apply_delta_rules_par ctx crs ~out;
                Delta.set_delta ctx p ~full:out);
            Metrics.observe delta_h (Relation.cardinal out);
            Log.debug (fun m ->
                m "stratum %d: Δ(%s) has %d tuples (%d propagated)"
                  (Program.stratum program p) p (Relation.cardinal out)
                  (Relation.cardinal (Delta.propagated_delta ctx p)))
          end)
        (Program.derived_in_stratum_order program);
      let derived = Program.derived_preds program in
      let collect table =
        List.filter_map
          (fun p ->
            match Hashtbl.find_opt table p with
            | Some r when not (Relation.is_empty r) -> Some (p, r)
            | _ -> None)
          derived
      in
      let view_deltas = collect ctx.Delta.full in
      let propagated_deltas = collect ctx.Delta.propagated in
      ignore (Delta.commit ?record ctx);
      { base_deltas = normalized; view_deltas; propagated_deltas })
