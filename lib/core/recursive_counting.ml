(** Counting for recursive views — the [GKM92] extension discussed in
    Section 8: "Counting can be used to maintain recursive views also.
    However computing counts for recursive views is expensive and
    furthermore counting may not terminate on some views."

    This module maintains full derivation counts through recursive
    components by iterating Definition 4.1 delta rules to a fixpoint:
    each round treats the previous round's deltas as a batch update, with
    "new" relations including the batch and "old" relations excluding it,
    so counts stay exact (Theorem 4.1 applied per batch).  On data over
    which a tuple has infinitely many derivations (a cycle reachable from
    and to itself), counts diverge; the iteration is capped and
    {!Divergence} raised — this is the behaviour the paper predicts, and
    finiteness detection [MS93a] is future work.

    Duplicate semantics only (derivation counting is the point); use
    {!Dred} for set-semantics recursive maintenance. *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Program = Ivm_datalog.Program
module Database = Ivm_eval.Database
module Compile = Ivm_eval.Compile
module Rule_eval = Ivm_eval.Rule_eval

module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace

exception Divergence of string

let default_max_rounds = 10_000

let batches_c =
  Metrics.counter
    ~labels:[ ("algorithm", "recursive-counting") ]
    "ivm_maintain_batches_total"

let rounds_c =
  Metrics.counter
    ~labels:[ ("engine", "recursive-counting") ]
    "ivm_fixpoint_rounds_total"

let pending_h =
  Metrics.histogram
    ~labels:[ ("engine", "recursive-counting") ]
    "ivm_fixpoint_delta_size"

(* One recursive unit: iterate batch updates until the pending deltas
   drain.  [ctx] carries the finalized deltas of lower strata; [acc]
   relations are installed as the unit predicates' deltas in [ctx] up
   front, so ctx's overlays see them grow. *)
let fix_unit ~max_rounds (ctx : Delta.ctx) unit_preds =
  let db = ctx.Delta.db in
  let program = Database.program db in
  let in_unit p = List.mem p unit_preds in
  let arity p = Program.arity program p in
  let acc = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let r = Relation.create (arity p) in
      Hashtbl.replace acc p r;
      (* live: ctx new views of unit preds read the accumulator *)
      Hashtbl.replace ctx.Delta.full p r)
    unit_preds;
  (* Round 0: seed from lower-strata deltas; unit predicates are unchanged
     in this batch, so plain Definition 4.1 rules apply. *)
  let pending = Hashtbl.create 4 in
  (* Evaluate the whole batch before touching any accumulator: all unit
     predicates must appear unchanged while round 0 runs. *)
  List.iter
    (fun p ->
      let out = Relation.create (arity p) in
      let crs = List.map (Database.compile db) (Program.rules_for program p) in
      Delta.apply_delta_rules_par ctx crs ~out;
      Hashtbl.replace pending p out)
    unit_preds;
  List.iter
    (fun p ->
      Relation.union_into ~into:(Hashtbl.find acc p) (Hashtbl.find pending p))
    unit_preds;
  let any_pending () =
    List.exists (fun p -> not (Relation.is_empty (Hashtbl.find pending p))) unit_preds
  in
  let rounds = ref 0 in
  while any_pending () do
    incr rounds;
    Metrics.inc rounds_c;
    List.iter
      (fun p -> Metrics.observe pending_h (Relation.cardinal (Hashtbl.find pending p)))
      unit_preds;
    Trace.instant "rc.round" ~args:(fun () ->
        ( "round", string_of_int !rounds )
        :: List.map
             (fun p ->
               (p, string_of_int (Relation.cardinal (Hashtbl.find pending p))))
             unit_preds);
    if !rounds > max_rounds then
      raise
        (Divergence
           (Printf.sprintf
              "counts of recursive predicate %s did not converge after %d \
               rounds — the data has cyclic derivations with infinite counts"
              (List.hd unit_preds) max_rounds));
    (* S = stored ⊎ acc already includes the pending batch; the batch-old
       state subtracts it. *)
    let old_delta = Hashtbl.create 4 in
    List.iter
      (fun q ->
        Hashtbl.replace old_delta q
          (Relation.union (Hashtbl.find acc q) (Relation.negate (Hashtbl.find pending q))))
      unit_preds;
    let next = Hashtbl.create 4 in
    List.iter (fun p -> Hashtbl.replace next p (Relation.create (arity p))) unit_preds;
    (* acc / old_delta / pending are frozen for the round, so every
       (occurrence × pending chunk) is an independent read-only task:
       fan out across the domain pool, each task emitting into a private
       relation ⊎-merged into [next] in fixed task order (inline, same
       order, with one domain). *)
    let chunks =
      if Ivm_par.sequential () then 1 else Ivm_eval.Par_eval.chunks_hint ()
    in
    let tasks = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun rule ->
            let cr = Database.compile db rule in
            Array.iteri
              (fun i lit ->
                match lit with
                | Compile.Catom a when in_unit a.cpred ->
                  let pend = Hashtbl.find pending a.cpred in
                  if not (Relation.is_empty pend) then begin
                    let inputs_with seed j =
                      if j = i then
                        Rule_eval.Enumerate
                          (Relation_view.concrete seed, Rule_eval.identity_count)
                      else
                        match cr.Compile.clits.(j) with
                        | Compile.Catom b when in_unit b.cpred ->
                          if j < i then
                            Rule_eval.Enumerate
                              ( Relation_view.Overlay
                                  {
                                    base = Database.relation db b.cpred;
                                    delta = Hashtbl.find acc b.cpred;
                                  },
                                Rule_eval.identity_count )
                          else
                            Rule_eval.Enumerate
                              ( Relation_view.Overlay
                                  {
                                    base = Database.relation db b.cpred;
                                    delta = Hashtbl.find old_delta b.cpred;
                                  },
                                Rule_eval.identity_count )
                        | Compile.Catom b ->
                          (* lower strata: unchanged within this batch *)
                          Rule_eval.Enumerate
                            (Delta.new_view ctx b.cpred, Database.mult_for db b.cpred)
                        | Compile.Cneg b ->
                          Rule_eval.Filter_absent (Delta.new_view ctx b.cpred)
                        | Compile.Cagg (spec, _) ->
                          Rule_eval.Enumerate
                            ( Relation_view.concrete (Delta.grouped ctx Delta.New spec),
                              Rule_eval.identity_count )
                        | Compile.Ccmp _ -> assert false
                    in
                    (* first-touch the grouped cache sequentially *)
                    Array.iteri
                      (fun j l ->
                        match l with
                        | Compile.Cagg _ -> ignore (inputs_with pend j)
                        | _ -> ())
                      cr.Compile.clits;
                    Array.iter
                      (fun part ->
                        tasks :=
                          ( p,
                            fun () ->
                              let out = Relation.create (arity p) in
                              Rule_eval.eval ~seed:i ~inputs:(inputs_with part)
                                ~emit:(fun tup c -> Relation.add out tup c)
                                cr;
                              out )
                          :: !tasks)
                      (Ivm_eval.Par_eval.split pend ~chunks)
                  end
                | _ -> ())
              cr.Compile.clits)
          (Program.rules_for program p))
      unit_preds;
    let tasks = Array.of_list (List.rev !tasks) in
    let outs = Ivm_par.parallel_map (Array.map snd tasks) in
    Array.iteri
      (fun k part ->
        Relation.union_into ~into:(Hashtbl.find next (fst tasks.(k))) part)
      outs;
    List.iter
      (fun p ->
        let np = Hashtbl.find next p in
        Hashtbl.replace pending p np;
        Relation.union_into ~into:(Hashtbl.find acc p) np)
      unit_preds
  done;
  (* Register final deltas (and their set transitions) with the context. *)
  List.iter (fun p -> Delta.set_delta ctx p ~full:(Hashtbl.find acc p)) unit_preds

(** Incrementally maintain all views — recursive ones included — with full
    derivation counts.  @raise Divergence when counts cannot converge;
    @raise Dred.Duplicate_semantics_unsupported never (set semantics is
    fine too: counts then follow the Section 5.1 convention). *)
let maintain ?(max_rounds = default_max_rounds) ?record (db : Database.t)
    (changes : Changes.t) : (string * Relation.t) list =
  if Database.semantics db = Database.Set_semantics then
    invalid_arg
      "Recursive_counting.maintain: derivation counting through recursion \
       needs duplicate semantics; use Dred for set semantics";
  Metrics.inc batches_c;
  (* As in [Counting.maintain]: the per-round delta partition enumerates
     each gained/lost derivation once, so sign-driven capture is exact. *)
  if Ivm_prov.Prov.capturing () then Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
  let program = Database.program db in
  let normalized = Changes.normalize_base db changes in
  Trace.span "recursive_counting.maintain"
    ~args:(fun () ->
      [ ("base_tuples", string_of_int (Changes.total_tuples normalized)) ])
    (fun () ->
      let ctx = Delta.create db in
      List.iter (fun (pred, delta) -> Delta.set_delta ctx pred ~full:delta) normalized;
      List.iter
        (fun unit_preds ->
          Ivm_obs.Attribution.set_context
            ~stratum:(Program.stratum program (List.hd unit_preds))
            ~phase:"delta";
          match unit_preds with
          | [ p ] when not (Program.recursive program p) ->
            let out = Relation.create (Program.arity program p) in
            let crs =
              List.map (Database.compile db) (Program.rules_for program p)
            in
            Delta.apply_delta_rules_par ctx crs ~out;
            Delta.set_delta ctx p ~full:out
          | unit_preds ->
            Trace.span "rc.fixpoint"
              ~args:(fun () -> [ ("unit", String.concat "," unit_preds) ])
              (fun () -> fix_unit ~max_rounds ctx unit_preds))
        (Program.recursive_units program);
      Delta.commit ?record ctx)

(** Materialize a database whose program may be recursive with full
    derivation counts: equivalent to maintaining from an empty database
    with every base fact inserted.  @raise Divergence on cyclic data. *)
let evaluate ?(max_rounds = default_max_rounds) (db : Database.t) : unit =
  let program = Database.program db in
  let base_contents =
    List.map
      (fun p ->
        let r = Database.relation db p in
        let copy = Relation.copy r in
        Relation.clear r;
        (p, copy))
      (Program.base_preds program)
  in
  List.iter
    (fun p ->
      Relation.clear (Database.relation db p))
    (Program.derived_preds program);
  ignore (maintain ~max_rounds db base_contents)
