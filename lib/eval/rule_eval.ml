(** The join engine: evaluates one compiled rule body against caller-chosen
    relation views and emits head tuples with derivation counts.

    The caller decides, per body literal, what relation stands behind it —
    this is the whole trick of the paper's rewrites.  A delta rule
    [Δ(p) :- s1ν & … & Δ(si) & … & sn] (Definition 4.1) is evaluated by
    passing the new view for literals before [i], the delta relation for
    literal [i] (the {e seed}), and the old view after; initial
    materialization passes the stored relations everywhere with no seed.

    Counts multiply across subgoals (Section 3); a per-subgoal count
    transform implements the set-semantics clamp of Section 5.1 ("we assume
    that each tuple of stratum [i] or less has a count of one").

    Join order: the seed literal first (deltas are the most restrictive
    input, as Section 6.1 notes), then remaining enumerable literals
    greedily by number of bound argument positions (ties to the smaller
    relation); negation filters, comparisons and equality binders run as
    soon as their variables are bound.

    Probes are {e compiled}: which argument positions are bound when a
    literal executes is fully determined at plan-build time (boundness only
    grows along the plan), so each join step carries its probe columns, a
    resolved access path ({!Relation_view.prepare_probe}) and a reusable
    key buffer.  The per-binding work is filling the buffer and one hash
    lookup — no column lists, no [Tuple.of_list], no index search. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation_view = Ivm_relation.Relation_view
open Compile

type count_xform = int -> int

let identity_count c = c

(** The set-semantics clamp: a true tuple counts once. *)
let set_count c = if c > 0 then 1 else 0

type subgoal_input =
  | Enumerate of Relation_view.t * count_xform
      (** join against this relation (positive atoms, grouped relations,
          or a precomputed [Δ(¬Q)] for a negated delta position) *)
  | Filter_absent of Relation_view.t
      (** negated subgoal in a non-delta position: succeeds, with count 1,
          when the bound tuple does {e not} hold in the view *)

exception Plan_error of string

(* ------------------------------------------------------------------ *)
(* Expression evaluation over a binding                                 *)
(* ------------------------------------------------------------------ *)

let term_value binding = function
  | Cconst c -> c
  | Cvar s -> (
    match binding.(s) with
    | Some v -> v
    | None -> raise (Plan_error "unbound variable in expression"))

let rec expr_value binding = function
  | Xterm t -> term_value binding t
  | Xadd (a, b) -> Value.add (expr_value binding a) (expr_value binding b)
  | Xsub (a, b) -> Value.sub (expr_value binding a) (expr_value binding b)
  | Xmul (a, b) -> Value.mul (expr_value binding a) (expr_value binding b)
  | Xdiv (a, b) -> Value.div (expr_value binding a) (expr_value binding b)
  | Xneg a -> Value.neg (expr_value binding a)

let cmp_holds op a b =
  let c = Value.compare a b in
  match op with
  | Ivm_datalog.Ast.Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* ------------------------------------------------------------------ *)
(* Pattern matching of atom argument vectors against tuples             *)
(* ------------------------------------------------------------------ *)

(** [match_pattern binding args tup undo] unifies [tup] with [args],
    extending [binding] in place.  Returns [true] on success, pushing newly
    bound slots onto [undo]; on failure the binding may be partially
    extended — the caller must still unwind [undo]. *)
let match_pattern binding (args : cterm array) (tup : Tuple.t) undo =
  let vals = Tuple.to_array tup in
  let ok = ref true in
  let i = ref 0 in
  let n = Array.length args in
  while !ok && !i < n do
    (match args.(!i) with
    | Cconst c -> if not (Value.equal c vals.(!i)) then ok := false
    | Cvar s -> (
      match binding.(s) with
      | Some v -> if not (Value.equal v vals.(!i)) then ok := false
      | None ->
        binding.(s) <- Some vals.(!i);
        undo := s :: !undo));
    incr i
  done;
  !ok

let unwind binding undo = List.iter (fun s -> binding.(s) <- None) undo

(* ------------------------------------------------------------------ *)
(* Plans                                                                *)
(* ------------------------------------------------------------------ *)

(** Where a probe-key column's value comes from at execution time. *)
type filler = Fconst of Value.t | Fslot of slot

(* One join step, probe-compiled: [j_fill.(p)] fills [j_buf.(p)] for the
   bound column [p] of the key; [j_probe] is the access path resolved at
   plan-build time.  The key tuple handed to [run_probe] wraps [j_buf]
   transiently — probes never retain the key (they hand back stored
   tuples), so the buffer is refilled for the next binding without
   reallocating. *)
type cjoin = {
  j_args : cterm array;
  j_probe : Relation_view.prepared;
  j_fill : filler array;
  j_buf : Value.t array;
  j_xform : count_xform;
}

(* A compiled negation filter: every column is bound when it runs, so the
   fill spec covers the whole tuple. *)
type cneg = {
  n_view : Relation_view.t;
  n_fill : filler array;
  n_buf : Value.t array;
}

type step =
  | Sjoin of cjoin
  | Sneg of cneg
  | Scmp of cexpr * Ivm_datalog.Ast.cmp_op * cexpr
  | Sbind of slot * cexpr

let lit_args = function
  | Catom a | Cneg a -> a.cargs
  | Cagg (_, args) -> args
  | Ccmp _ -> [||]

let cterm_slots args =
  Array.to_list args |> List.filter_map (function Cvar s -> Some s | Cconst _ -> None)

let rec cexpr_slots = function
  | Xterm (Cvar s) -> [ s ]
  | Xterm (Cconst _) -> []
  | Xadd (a, b) | Xsub (a, b) | Xmul (a, b) | Xdiv (a, b) ->
    cexpr_slots a @ cexpr_slots b
  | Xneg a -> cexpr_slots a

let buf_dummy = Value.bool false

(* Boundness at placement time is boundness at execution time (it only
   grows along the plan), so the probe columns — constants plus already
   bound variables, in position order — are known here, and the access
   path can be resolved now. *)
let compile_join bound (args : cterm array) view xform =
  let fills = ref [] in
  for i = Array.length args - 1 downto 0 do
    match args.(i) with
    | Cconst v -> fills := (i, Fconst v) :: !fills
    | Cvar s -> if bound.(s) then fills := (i, Fslot s) :: !fills
  done;
  let cols = Array.of_list (List.map fst !fills) in
  let fill = Array.of_list (List.map snd !fills) in
  {
    j_args = args;
    j_probe = Relation_view.prepare_probe view cols;
    j_fill = fill;
    j_buf = Array.make (Array.length fill) buf_dummy;
    j_xform = xform;
  }

let compile_neg (args : cterm array) view =
  let fill = Array.map (function Cconst v -> Fconst v | Cvar s -> Fslot s) args in
  { n_view = view; n_fill = fill; n_buf = Array.make (Array.length fill) buf_dummy }

let build_plan ?seed ~(inputs : int -> subgoal_input) (cr : Compile.t) : step list =
  let n = Array.length cr.clits in
  let placed = Array.make n false in
  let bound = Array.make cr.nslots false in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let bind_args args =
    List.iter (fun s -> bound.(s) <- true) (cterm_slots args)
  in
  let all_bound slots = List.for_all (fun s -> bound.(s)) slots in
  let place_join i =
    placed.(i) <- true;
    let args = lit_args cr.clits.(i) in
    (match inputs i with
    | Enumerate (view, xform) -> push (Sjoin (compile_join bound args view xform))
    | Filter_absent _ ->
      raise (Plan_error "cannot enumerate a negated subgoal without a delta"));
    bind_args args
  in
  (* Place every filter / binder whose prerequisites are met. *)
  let rec settle () =
    let progress = ref false in
    Array.iteri
      (fun i lit ->
        if not placed.(i) then
          match lit with
          | Ccmp (Xterm (Cvar s), Eq, e) when (not bound.(s)) && all_bound (cexpr_slots e) ->
            placed.(i) <- true;
            push (Sbind (s, e));
            bound.(s) <- true;
            progress := true
          | Ccmp (e, Eq, Xterm (Cvar s)) when (not bound.(s)) && all_bound (cexpr_slots e) ->
            placed.(i) <- true;
            push (Sbind (s, e));
            bound.(s) <- true;
            progress := true
          | Ccmp (a, op, b)
            when all_bound (cexpr_slots a) && all_bound (cexpr_slots b) ->
            placed.(i) <- true;
            push (Scmp (a, op, b));
            progress := true
          | Cneg a when all_bound (cterm_slots a.cargs) -> (
            match inputs i with
            | Filter_absent view ->
              placed.(i) <- true;
              push (Sneg (compile_neg a.cargs view));
              progress := true
            | Enumerate _ -> ())
          | _ -> ())
      cr.clits;
    if !progress then settle ()
  in
  (match seed with
  | Some i -> place_join i
  | None -> ());
  settle ();
  let enumerable i =
    (not placed.(i))
    &&
    match cr.clits.(i) with
    | Catom _ | Cagg _ -> true
    | Cneg _ -> ( match inputs i with Enumerate _ -> true | Filter_absent _ -> false)
    | Ccmp _ -> false
  in
  let boundness i =
    let args = lit_args cr.clits.(i) in
    Array.fold_left
      (fun acc t ->
        match t with
        | Cconst _ -> acc + 1
        | Cvar s -> if bound.(s) then acc + 1 else acc)
      0 args
  in
  let size i =
    match inputs i with
    | Enumerate (view, _) -> Relation_view.cardinal_estimate view
    | Filter_absent _ -> max_int
  in
  let rec joins () =
    let best = ref None in
    for i = 0 to n - 1 do
      if enumerable i then
        let score = (boundness i, size i) in
        match !best with
        | Some (_, (b, sz)) when (b, -sz) >= (fst score, -snd score) -> ()
        | _ -> best := Some (i, score)
    done;
    match !best with
    | Some (i, _) ->
      place_join i;
      settle ();
      joins ()
    | None -> ()
  in
  joins ();
  (* Everything must be placed now; otherwise the rule was unsafe. *)
  Array.iteri
    (fun i p ->
      if not p then
        raise
          (Plan_error
             (Printf.sprintf "literal %d of rule %s could not be planned" i
                (Ivm_datalog.Pretty.rule_to_string cr.source))))
    placed;
  List.rev !steps

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let slot_value binding s =
  match binding.(s) with
  | Some v -> v
  | None -> raise (Plan_error "unbound slot at execution")

let fill_buf binding (fill : filler array) (buf : Value.t array) =
  for p = 0 to Array.length fill - 1 do
    buf.(p) <-
      (match fill.(p) with Fconst v -> v | Fslot s -> slot_value binding s)
  done

let eval_body ?seed ~(inputs : int -> subgoal_input) ~emit (cr : Compile.t) : unit =
  (* Short-circuit: an empty enumerable input means no derivations. *)
  let empty_input = ref false in
  Array.iteri
    (fun i lit ->
      match lit with
      | Ccmp _ -> ()
      | Catom _ | Cagg _ | Cneg _ -> (
        match inputs i with
        | Enumerate (view, _) ->
          if Relation_view.cardinal_estimate view = 0 then empty_input := true
        | Filter_absent _ -> ()))
    cr.clits;
  if not !empty_input then begin
    let plan = Array.of_list (build_plan ?seed ~inputs cr) in
    let binding = Array.make cr.nslots None in
    let nsteps = Array.length plan in
    (* Provenance capture, hoisted to one load per evaluation: when off,
       the emission path below pays a single boolean test. *)
    let cap = Ivm_prov.Prov.capturing () in
    let rule_str =
      if cap then Ivm_datalog.Pretty.rule_to_string cr.source else ""
    in
    let record_support head cnt =
      let subs = ref [] in
      for j = Array.length cr.clits - 1 downto 0 do
        match cr.clits.(j) with
        | Catom a ->
          let vals =
            Array.map
              (function Cconst v -> v | Cvar s -> slot_value binding s)
              a.cargs
          in
          subs := (a.cpred, Tuple.make vals) :: !subs
        | Cneg _ | Cagg _ | Ccmp _ -> ()
      done;
      Ivm_prov.Prov.record ~pred:cr.head_pred ~rule:rule_str ~head ~count:cnt
        ~subgoals:!subs
    in
    let rec run k cnt =
      if cnt <> 0 then
        if k = nsteps then begin
          let head = Tuple.make (Array.map (expr_value binding) cr.chead) in
          Stats.add_derivation ();
          if cap then record_support head cnt;
          emit head cnt
        end
        else
          match plan.(k) with
          | Sjoin j ->
            fill_buf binding j.j_fill j.j_buf;
            (* Transient key over the reusable buffer: probes look the key
               up but only ever hand back stored tuples, so the buffer can
               be refilled for the next binding. *)
            let key = Tuple.make j.j_buf in
            Stats.add_probe ();
            Relation_view.run_probe j.j_probe key (fun tup c ->
                Stats.add_scanned ();
                let c = j.j_xform c in
                if c <> 0 then begin
                  let undo = ref [] in
                  if match_pattern binding j.j_args tup undo then
                    run (k + 1) (cnt * c);
                  unwind binding !undo
                end)
          | Sneg ng ->
            fill_buf binding ng.n_fill ng.n_buf;
            Stats.add_probe ();
            if not (Relation_view.holds ng.n_view (Tuple.make ng.n_buf)) then
              run (k + 1) cnt
          | Scmp (a, op, b) ->
            if cmp_holds op (expr_value binding a) (expr_value binding b) then
              run (k + 1) cnt
          | Sbind (s, e) ->
            binding.(s) <- Some (expr_value binding e);
            run (k + 1) cnt;
            binding.(s) <- None
    in
    run 0 1
  end

(** Δ-tuples seeding this evaluation: the cardinality of the seed
    literal's input view (0 when there is no seed — full evaluation). *)
let seed_cardinal ?seed ~(inputs : int -> subgoal_input) () =
  match seed with
  | None -> 0
  | Some i -> (
    match inputs i with
    | Enumerate (v, _) | Filter_absent v -> Relation_view.cardinal_estimate v)

(** Evaluate the body of [cr], calling [emit head_tuple count] once per
    derivation (the caller accumulates with [⊎]).  [seed], when given, is
    the body-literal index enumerated first — the delta position.  Literals
    whose input relation is empty short-circuit the whole evaluation.

    When per-rule attribution is on ({!Ivm_obs.Attribution}, the
    default), each evaluation reports its wall time, Δ-in/out and work
    counters — measured with {!Stats.local_since} so concurrent domains'
    work is never misattributed to this rule.  When tracing is on
    ({!Ivm_obs.Trace}), each evaluation is additionally one [rule] span
    carrying the same breakdown.  With both off, this is two boolean
    checks over the bare evaluation. *)
let eval ?seed ~(inputs : int -> subgoal_input) ~emit (cr : Compile.t) : unit =
  Stats.add_rule_application ();
  let traced f =
    if not (Ivm_obs.Trace.enabled ()) then f ()
    else begin
      let before = Stats.snapshot () in
      Ivm_obs.Trace.span "rule" ~cat:"rule_eval"
        ~args:(fun () ->
          let w = Stats.since before in
          [
            ("rule", Ivm_datalog.Pretty.rule_to_string cr.source);
            ("derivations", string_of_int w.Stats.snap_derivations);
            ("probes", string_of_int w.Stats.snap_probes);
            ("scanned", string_of_int w.Stats.snap_tuples_scanned);
          ])
        f
    end
  in
  if not (Ivm_obs.Attribution.enabled ()) then
    traced (fun () -> eval_body ?seed ~inputs ~emit cr)
  else begin
    let before = Stats.local_snapshot () in
    let din = seed_cardinal ?seed ~inputs () in
    let dout = ref 0 in
    let emit t c =
      incr dout;
      emit t c
    in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        let w = Stats.local_since before in
        Ivm_obs.Attribution.record
          ~rule:(Ivm_datalog.Pretty.rule_to_string cr.source)
          ~wall_ns ~din ~dout:!dout ~probes:w.Stats.snap_probes
          ~scanned:w.Stats.snap_tuples_scanned
          ~derivations:w.Stats.snap_derivations
          ~index_builds:w.Stats.snap_index_builds)
      (fun () -> traced (fun () -> eval_body ?seed ~inputs ~emit cr))
  end
