(** The database: one stored {!Ivm_relation.Relation.t} per predicate —
    base relations (edb) loaded by the user, derived relations (idb)
    materialized with their derivation counts — plus a compiled-rule cache.

    Under {e duplicate semantics} (SQL without DISTINCT; Section 5) stored
    counts are full multiplicities and join inputs keep their counts.
    Under {e set semantics} stored counts are the number of derivations
    {e assuming all tuples of lower strata have count one} (Section 5.1);
    the evaluator reads lower-stratum inputs through the {!Rule_eval.set_count}
    clamp. *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Tuple = Ivm_relation.Tuple
module Program = Ivm_datalog.Program

type semantics = Set_semantics | Duplicate_semantics

type t = {
  program : Program.t;
  semantics : semantics;
  rels : (string, Relation.t) Hashtbl.t;
  compiled : (Ivm_datalog.Ast.rule, Compile.t) Hashtbl.t;
  agg_indexes : (string, Agg_index.t) Hashtbl.t;
      (** persistent incremental aggregate indexes, keyed by GROUPBY-spec
          signature (opt-in, see {!register_agg_index}) *)
  distinct : (string, unit) Hashtbl.t;
      (** views with per-view set semantics inside a duplicate-semantics
          database — SQL's DISTINCT, §5.1 of the paper *)
}

let create ?(semantics = Set_semantics) (program : Program.t) : t =
  let rels = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace rels name (Relation.create (Program.arity program name)))
    (Program.base_preds program @ Program.derived_preds program);
  {
    program;
    semantics;
    rels;
    compiled = Hashtbl.create 16;
    agg_indexes = Hashtbl.create 4;
    distinct = Hashtbl.create 4;
  }

let program t = t.program
let semantics t = t.semantics

(** The count transform applied to non-delta subgoals: identity under
    duplicate semantics, the 0/1 clamp under set semantics. *)
let mult t =
  match t.semantics with
  | Duplicate_semantics -> Rule_eval.identity_count
  | Set_semantics -> Rule_eval.set_count

(** Mark a derived relation DISTINCT: its stored counts stay derivation
    counts, but readers see each true tuple once and only its set
    transitions propagate (§5.1: "it is possible for a query to require
    set semantics (by using the DISTINCT operator). The implementation
    issues for such queries are similar to the case of systems
    implementing set semantics").  No-op under set semantics. *)
let mark_distinct t pred =
  if not (Program.is_derived t.program pred) then
    invalid_arg ("Database.mark_distinct: " ^ pred ^ " is a base relation");
  Hashtbl.replace t.distinct pred ()

let is_distinct t pred = Hashtbl.mem t.distinct pred

let distinct_views t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.distinct [] |> List.sort String.compare

(** The count transform readers of [pred] apply: the set clamp under set
    semantics or for DISTINCT views, identity otherwise. *)
let mult_for t pred =
  match t.semantics with
  | Set_semantics -> Rule_eval.set_count
  | Duplicate_semantics ->
    if is_distinct t pred then Rule_eval.set_count else Rule_eval.identity_count

let relation t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None ->
    raise (Program.Program_error (Printf.sprintf "unknown relation %s" name))

let view t name = Relation_view.concrete (relation t name)

let compile t rule =
  match Hashtbl.find_opt t.compiled rule with
  | Some c -> c
  | None ->
    let c = Compile.compile rule in
    Hashtbl.add t.compiled rule c;
    c

(** Insert base facts, one derivation each.  Under set semantics duplicate
    loads are idempotent. *)
let load t name tuples =
  let r = relation t name in
  List.iter
    (fun tup ->
      match t.semantics with
      | Duplicate_semantics -> Relation.add r tup 1
      | Set_semantics -> if not (Relation.mem r tup) then Relation.add r tup 1)
    tuples

(* ---------------- aggregate indexes ---------------- *)

(** Opt one GROUPBY spec into persistent incremental aggregation: builds
    the per-group accumulator index from the current source relation.
    Maintenance algorithms then compute its [Δ(T)] in [O(|Δ| log)] and
    refresh it on commit. *)
let register_agg_index t (spec : Compile.agg_spec) : Agg_index.t =
  match Hashtbl.find_opt t.agg_indexes spec.Compile.gsignature with
  | Some idx -> idx
  | None ->
    let source = spec.Compile.gsource.Compile.cpred in
    let idx = Agg_index.build ~mult:(mult_for t source) (view t source) spec in
    Hashtbl.replace t.agg_indexes spec.Compile.gsignature idx;
    idx

let agg_index t (spec : Compile.agg_spec) =
  Hashtbl.find_opt t.agg_indexes spec.Compile.gsignature

(** Signatures of every registered aggregate index, sorted — the snapshot
    layer persists these so reload can re-register the same specs. *)
let agg_signatures t =
  Hashtbl.fold (fun sig_ _ acc -> sig_ :: acc) t.agg_indexes []
  |> List.sort String.compare

(** Fold committed source deltas into every registered index.  Call after
    the stored relations reflect the deltas. *)
let refresh_agg_indexes t (applied : (string * Relation.t) list) =
  Hashtbl.iter
    (fun _ idx ->
      match List.assoc_opt (Agg_index.source_pred idx) applied with
      | Some delta when not (Relation.is_empty delta) ->
        ignore (Agg_index.apply_delta idx delta)
      | _ -> ())
    t.agg_indexes

(** Drop indexes whose source is [pred] — its relation changed outside
    delta-tracked maintenance. *)
let invalidate_agg_indexes t pred =
  let stale =
    Hashtbl.fold
      (fun sig_ idx acc ->
        if Agg_index.source_pred idx = pred then sig_ :: acc else acc)
      t.agg_indexes []
  in
  List.iter (Hashtbl.remove t.agg_indexes) stale

let clear_agg_indexes t = Hashtbl.reset t.agg_indexes

(** Overwrite one relation's contents (used when committing maintenance
    results and by the recomputation baseline).  Invalidates aggregate
    indexes sourced from it. *)
let set_relation t name rel =
  if Relation.arity rel <> Program.arity t.program name then
    invalid_arg ("Database.set_relation: arity mismatch for " ^ name);
  invalidate_agg_indexes t name;
  Hashtbl.replace t.rels name rel

(** Fresh database with the same program/semantics and deep-copied
    relations — lets tests run two algorithms from the same state.
    [~with_indexes:false] skips rebuilding secondary indexes on the
    copies (the serve publish fast path; readers rebuild on demand). *)
let copy ?(with_indexes = true) t =
  let rels = Hashtbl.create (Hashtbl.length t.rels) in
  Hashtbl.iter
    (fun name r -> Hashtbl.replace rels name (Relation.copy ~with_indexes r))
    t.rels;
  let agg_indexes = Hashtbl.create (Hashtbl.length t.agg_indexes) in
  Hashtbl.iter
    (fun sig_ idx -> Hashtbl.replace agg_indexes sig_ (Agg_index.copy idx))
    t.agg_indexes;
  { t with rels; agg_indexes; distinct = Hashtbl.copy t.distinct }

(** Canonical content digest: MD5 over the semantics tag plus, for every
    predicate in sorted order, its sorted [(tuple, count)] entries.  Base
    and derived relations both contribute, counts included — two databases
    digest equal iff they are count-identical, which is exactly the
    publisher-equivalence contract (indexes and caches deliberately do not
    participate). *)
let canonical_digest t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (match t.semantics with Set_semantics -> "set;" | Duplicate_semantics -> "dup;");
  let names =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [])
  in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      List.iter
        (fun (tup, c) ->
          Buffer.add_string buf (Tuple.to_string tup);
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int c);
          Buffer.add_char buf ';')
        (Relation.to_sorted_list (relation t name));
      Buffer.add_char buf '\n')
    names;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** Do the stored relations of [a] and [b] agree?  Under set semantics
    compares sets; under duplicate semantics compares counts. *)
let agree ?(preds = []) a b =
  let preds =
    if preds <> [] then preds
    else Program.base_preds a.program @ Program.derived_preds a.program
  in
  List.for_all
    (fun p ->
      let ra = relation a p and rb = relation b p in
      match a.semantics with
      | Set_semantics -> Relation.equal_sets ra rb
      | Duplicate_semantics -> Relation.equal_counted ra rb)
    preds

(** Refresh the per-relation observability gauges
    ([ivm_relation_cardinality{relation=p}] and
    [ivm_relation_indexes{relation=p}]) from the stored relations.  One
    cheap pass over the relation table; {!Ivm.View_manager.apply} calls it
    after each committed batch so the registry tracks live sizes. *)
let observe_gauges t =
  List.iter
    (fun p ->
      let r = relation t p in
      let labels = [ ("relation", p) ] in
      Ivm_obs.Metrics.set
        (Ivm_obs.Metrics.gauge ~labels "ivm_relation_cardinality")
        (float_of_int (Relation.cardinal r));
      Ivm_obs.Metrics.set
        (Ivm_obs.Metrics.gauge ~labels "ivm_relation_indexes")
        (float_of_int (Relation.index_count r)))
    (Program.base_preds t.program @ Program.derived_preds t.program)

let pp ppf t =
  let names = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.rels []) in
  List.iter
    (fun name ->
      Format.fprintf ppf "%s = %a@." name Relation.pp (relation t name))
    names

(** Serialize the database as a re-loadable program text: the rules, then
    every base fact (repeated per multiplicity under duplicate semantics).
    Derived relations are rebuilt on load. *)
let dump ppf t =
  Ivm_datalog.Pretty.pp_program ppf (Program.rules t.program);
  Format.pp_print_newline ppf ();
  List.iter
    (fun pred ->
      List.iter
        (fun (tup, c) ->
          for _ = 1 to max 1 c do
            Format.fprintf ppf "%a@."
              Ivm_datalog.Pretty.pp_statement
              (Ivm_datalog.Ast.Sfact (pred, Tuple.to_list tup))
          done)
        (Relation.to_sorted_list (relation t pred)))
    (Program.base_preds t.program)
