(** Ad-hoc conjunctive queries against the materialized database — the
    "persistent queries" application of the paper's introduction, made
    one-shot: because every view is materialized and exact, a query is a
    single join over stored relations, never a recursive evaluation.

    A query is a rule body ([hop(a, X), link(X, Y), Y != a]); its answer
    columns are the positively-bound variables in order of first
    occurrence, and its rows carry derivation counts under duplicate
    semantics. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
open Ivm_datalog

type result = {
  columns : string list;  (** answer variables, in first-occurrence order *)
  rows : Relation.t;  (** one tuple per answer, with derivation counts *)
}

(** Variables of [body] that a bottom-up evaluation binds: those of
    positive atoms, aggregate outputs, and equality binders — the legal
    answer columns. *)
let bound_vars (body : Ast.literal list) : string list =
  (* mirror of the safety fixpoint, keeping first-occurrence order *)
  let order = ref [] in
  let seen = Hashtbl.create 8 in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order
    end
  in
  (* note an atom's variables in argument order, not set order *)
  let note_atom (a : Ast.atom) =
    List.iter
      (fun e ->
        match e with
        | Ast.Eterm (Ast.Var v) -> note v
        | _ -> Ast.Sset.iter note (Ast.expr_vars e))
      a.Ast.args
  in
  let progress = ref true in
  let consumed = Array.make (List.length body) false in
  while !progress do
    progress := false;
    List.iteri
      (fun i lit ->
        if not consumed.(i) then
          match lit with
          | Ast.Lpos a ->
            note_atom a;
            consumed.(i) <- true;
            progress := true
          | Ast.Lagg agg ->
            List.iter note agg.Ast.agg_group_by;
            note agg.Ast.agg_result;
            consumed.(i) <- true;
            progress := true
          | Ast.Lcmp (Ast.Eterm (Ast.Var v), Ast.Eq, e)
            when (not (Hashtbl.mem seen v))
                 && Ast.Sset.for_all (Hashtbl.mem seen) (Ast.expr_vars e) ->
            note v;
            consumed.(i) <- true;
            progress := true
          | Ast.Lcmp (e, Ast.Eq, Ast.Eterm (Ast.Var v))
            when (not (Hashtbl.mem seen v))
                 && Ast.Sset.for_all (Hashtbl.mem seen) (Ast.expr_vars e) ->
            note v;
            consumed.(i) <- true;
            progress := true
          | Ast.Lneg _ | Ast.Lcmp _ -> ())
      body
  done;
  List.rev !order

(** Run a query body against the database's stored relations.
    @raise Safety.Unsafe when the body is unsafe (e.g. a negated or
    comparison variable never positively bound);
    @raise Program.Program_error on unknown predicates. *)
let run (db : Database.t) (body : Ast.literal list) : result =
  let program = Database.program db in
  List.iter
    (fun lit ->
      match lit with
      | Ast.Lpos a | Ast.Lneg a -> ignore (Program.pred_info program a.Ast.pred)
      | Ast.Lagg agg -> ignore (Program.pred_info program agg.Ast.agg_source.Ast.pred)
      | Ast.Lcmp _ -> ())
    body;
  let columns = bound_vars body in
  let head =
    { Ast.pred = "$query$"; args = List.map (fun v -> Ast.Eterm (Ast.Var v)) columns }
  in
  let rule = { Ast.head; body } in
  Safety.check_rule rule;
  let cr = Compile.compile rule in
  let cache = Seminaive.Agg_cache.create () in
  let inputs =
    Seminaive.make_inputs ~resolve:(Database.view db)
      ~mult_for:(Database.mult_for db) ~cache ~version:"query" cr
  in
  let rows = Relation.create (List.length columns) in
  (* Ad-hoc queries must not pollute the provenance store. *)
  Ivm_prov.Prov.with_suspended (fun () ->
      Rule_eval.eval ~inputs ~emit:(fun tup c -> Relation.add rows tup c) cr);
  { columns; rows }

(** Run a full query rule: the head's argument expressions are the output
    columns (projection and computed columns), [columns] their display
    names.  Used by the SQL layer for ad-hoc SELECTs. *)
let run_rule (db : Database.t) (rule : Ast.rule) ~(columns : string list) : result =
  if List.length columns <> List.length rule.Ast.head.Ast.args then
    invalid_arg "Query.run_rule: column/argument count mismatch";
  Safety.check_rule rule;
  let cr = Compile.compile rule in
  let cache = Seminaive.Agg_cache.create () in
  let inputs =
    Seminaive.make_inputs ~resolve:(Database.view db)
      ~mult_for:(Database.mult_for db) ~cache ~version:"query" cr
  in
  let rows = Relation.create (List.length columns) in
  (* Ad-hoc queries must not pollute the provenance store. *)
  Ivm_prov.Prov.with_suspended (fun () ->
      Rule_eval.eval ~inputs ~emit:(fun tup c -> Relation.add rows tup c) cr);
  { columns; rows }

(** Parse and run a query text like ["hop(a, X), link(X, Y)"]. *)
let run_text (db : Database.t) (src : string) : result =
  run db (Parser.parse_body src)

(** True when the (necessarily ground) query body has at least one
    derivation — boolean queries like ["link(a, b)"]. *)
let holds (db : Database.t) (src : string) : bool =
  let r = run_text db src in
  Relation.exists (fun _ c -> c > 0) r.rows

let pp ppf (r : result) =
  if r.columns = [] then
    Format.fprintf ppf "%s"
      (if Relation.is_empty r.rows then "false" else "true")
  else begin
    Format.fprintf ppf "%s@."
      (String.concat ", " r.columns);
    List.iter
      (fun (tup, c) ->
        if c = 1 then Format.fprintf ppf "%a@." Tuple.pp tup
        else Format.fprintf ppf "%a x%d@." Tuple.pp tup c)
      (Relation.to_sorted_list r.rows)
  end
