(** Global work counters — a compatibility shim over {!Ivm_obs.Metrics}.

    The paper's optimality and fragmentation claims (Theorem 4.1; the
    PF comparison in Section 2) are about {e how many derivations} an
    algorithm computes, not just wall-clock time.  The evaluator bumps these
    counters so tests and benches can assert on work done.

    The four counters used to be ad-hoc module globals; they are now
    registered metrics ([ivm_derivations_total], [ivm_tuples_scanned_total],
    [ivm_probes_total], [ivm_rule_applications_total]) visible to the
    shell's [metrics] command and the bench [--metrics-json] report, while
    this module keeps the historical API.  A bump is still a single field
    write on a cached handle — the hot path is unchanged — and additions
    now {b saturate} at [max_int] instead of wrapping negative.

    {b Snapshot semantics.}  Counters are monotone between resets;
    [since earlier] is the work performed after [earlier] was taken.
    Nested {!measure} calls attribute the inner region's work to {e both}
    regions (the outer snapshot spans the inner one) — that is the
    intended reading, not double counting: each [measure] answers "how
    much work happened while [f] ran".  Calling {!reset} invalidates
    outstanding snapshots; [since] clamps at zero so a stale snapshot
    yields zeros rather than negative garbage. *)

module Metrics = Ivm_obs.Metrics

let derivations_c = Metrics.counter "ivm_derivations_total"
let tuples_scanned_c = Metrics.counter "ivm_tuples_scanned_total"
let probes_c = Metrics.counter "ivm_probes_total"
let rule_applications_c = Metrics.counter "ivm_rule_applications_total"

(** Reset the four work counters (only; other registered metrics keep
    their values — use {!Ivm_obs.Metrics.reset} for everything). *)
let reset () =
  derivations_c.Metrics.count <- 0;
  tuples_scanned_c.Metrics.count <- 0;
  probes_c.Metrics.count <- 0;
  rule_applications_c.Metrics.count <- 0

let derivations () = Metrics.counter_value derivations_c
let tuples_scanned () = Metrics.counter_value tuples_scanned_c
let probes () = Metrics.counter_value probes_c
let rule_applications () = Metrics.counter_value rule_applications_c

let add_derivation () = Metrics.inc derivations_c
let add_scanned () = Metrics.inc tuples_scanned_c
let add_probe () = Metrics.inc probes_c
let add_rule_application () = Metrics.inc rule_applications_c

type snapshot = {
  snap_derivations : int;
  snap_tuples_scanned : int;
  snap_probes : int;
  snap_rule_applications : int;
}

let snapshot () =
  {
    snap_derivations = derivations ();
    snap_tuples_scanned = tuples_scanned ();
    snap_probes = probes ();
    snap_rule_applications = rule_applications ();
  }

(** Work done since [earlier].  Each component clamps at zero: a snapshot
    taken before a {!reset} is stale and reports no work rather than a
    negative amount. *)
let since earlier =
  let d a b = max 0 (a - b) in
  {
    snap_derivations = d (derivations ()) earlier.snap_derivations;
    snap_tuples_scanned = d (tuples_scanned ()) earlier.snap_tuples_scanned;
    snap_probes = d (probes ()) earlier.snap_probes;
    snap_rule_applications = d (rule_applications ()) earlier.snap_rule_applications;
  }

let pp_snapshot ppf s =
  Format.fprintf ppf "derivations=%d scanned=%d probes=%d rules=%d"
    s.snap_derivations s.snap_tuples_scanned s.snap_probes
    s.snap_rule_applications

(** Run [f], returning its result and the work it performed.  Nesting is
    fine: an outer [measure] includes the work of any inner ones (see the
    module comment). *)
let measure f =
  let before = snapshot () in
  let x = f () in
  (x, since before)
