(** Global work counters — a compatibility shim over {!Ivm_obs.Metrics}.

    The paper's optimality and fragmentation claims (Theorem 4.1; the
    PF comparison in Section 2) are about {e how many derivations} an
    algorithm computes, not just wall-clock time.  The evaluator bumps these
    counters so tests and benches can assert on work done.

    {b Multi-domain exactness.}  The evaluator runs inside worker-domain
    thunks under parallel fan-out ({!Ivm_par}), so a shared mutable int
    would lose concurrent increments.  Each domain instead accumulates
    into its own cell — domain-local storage, registered under a mutex on
    the domain's first bump — and reads sum the cells, so no bump is ever
    lost and the hot path never writes a shared cache line.  A read taken
    {e while} a batch is in flight may miss another domain's most recent
    bumps (plain [int] loads can be stale, never torn); the pool's
    batch-completion join provides the happens-before edge, so counts
    observed between batches — where all the harness measurements happen —
    are exact.

    The counters remain registered metrics ([ivm_derivations_total],
    [ivm_tuples_scanned_total], [ivm_probes_total],
    [ivm_rule_applications_total]); the registered handles mirror the cell
    sums and are refreshed by {!sync}, which registry dumpers (the shell's
    [metrics] command, the bench [--metrics-json] report) call before
    reading.  Sums {b saturate} at [max_int] instead of wrapping negative.

    {b Snapshot semantics.}  Counters are monotone between resets;
    [since earlier] is the work performed after [earlier] was taken.
    Nested {!measure} calls attribute the inner region's work to {e both}
    regions (the outer snapshot spans the inner one) — that is the
    intended reading, not double counting: each [measure] answers "how
    much work happened while [f] ran".  Calling {!reset} invalidates
    outstanding snapshots; [since] clamps at zero so a stale snapshot
    yields zeros rather than negative garbage.  Like the registry it
    shims, {!reset} (and {!sync}) must run at quiescence — no parallel
    batch in flight. *)

module Metrics = Ivm_obs.Metrics

let derivations_c = Metrics.counter "ivm_derivations_total"
let tuples_scanned_c = Metrics.counter "ivm_tuples_scanned_total"
let probes_c = Metrics.counter "ivm_probes_total"
let rule_applications_c = Metrics.counter "ivm_rule_applications_total"
let index_builds_c = Metrics.counter "ivm_index_builds_total"

(* ---------------- per-domain cells ---------------- *)

type cell = {
  mutable cell_derivations : int;
  mutable cell_scanned : int;
  mutable cell_probes : int;
  mutable cell_rules : int;
  mutable cell_index_builds : int;
}

let cells_lock = Mutex.create ()

(* Cells of every domain that ever bumped a counter.  Entries of joined
   worker domains stay (their work must not vanish from the totals);
   pools rebuild rarely, so the list stays tiny. *)
let cells : cell list ref = ref []

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c =
        { cell_derivations = 0; cell_scanned = 0; cell_probes = 0;
          cell_rules = 0; cell_index_builds = 0 }
      in
      Mutex.lock cells_lock;
      cells := c :: !cells;
      Mutex.unlock cells_lock;
      c)

let add_derivation () =
  let c = Domain.DLS.get cell_key in
  c.cell_derivations <- c.cell_derivations + 1

let add_scanned () =
  let c = Domain.DLS.get cell_key in
  c.cell_scanned <- c.cell_scanned + 1

let add_probe () =
  let c = Domain.DLS.get cell_key in
  c.cell_probes <- c.cell_probes + 1

let add_rule_application () =
  let c = Domain.DLS.get cell_key in
  c.cell_rules <- c.cell_rules + 1

let add_index_build () =
  let c = Domain.DLS.get cell_key in
  c.cell_index_builds <- c.cell_index_builds + 1

(* The relation layer can't depend on this library, so it exposes a hook
   ref; installing it here makes every demand-built overlay/base index
   count toward the work totals (and per-rule attribution). *)
let () = Ivm_relation.Relation.on_index_build := add_index_build

(** Sum one field over all cells, saturating at [max_int]. *)
let sum_cells get =
  Mutex.lock cells_lock;
  let s =
    List.fold_left
      (fun acc c ->
        let v = get c in
        if acc > max_int - v then max_int else acc + v)
      0 !cells
  in
  Mutex.unlock cells_lock;
  s

let derivations () = sum_cells (fun c -> c.cell_derivations)
let tuples_scanned () = sum_cells (fun c -> c.cell_scanned)
let probes () = sum_cells (fun c -> c.cell_probes)
let rule_applications () = sum_cells (fun c -> c.cell_rules)
let index_builds () = sum_cells (fun c -> c.cell_index_builds)

(** Mirror the cell sums into the registered metrics so registry dumps
    ({!Ivm_obs.Metrics.pp} / [to_json]) show current totals.  Call at
    quiescence, right before dumping. *)
let sync () =
  derivations_c.Metrics.count <- derivations ();
  tuples_scanned_c.Metrics.count <- tuples_scanned ();
  probes_c.Metrics.count <- probes ();
  rule_applications_c.Metrics.count <- rule_applications ();
  index_builds_c.Metrics.count <- index_builds ()

(** Reset the four work counters (only; other registered metrics keep
    their values — use {!Ivm_obs.Metrics.reset} for everything, plus this
    for the per-domain cells behind these four). *)
let reset () =
  Mutex.lock cells_lock;
  List.iter
    (fun c ->
      c.cell_derivations <- 0;
      c.cell_scanned <- 0;
      c.cell_probes <- 0;
      c.cell_rules <- 0;
      c.cell_index_builds <- 0)
    !cells;
  Mutex.unlock cells_lock;
  derivations_c.Metrics.count <- 0;
  tuples_scanned_c.Metrics.count <- 0;
  probes_c.Metrics.count <- 0;
  rule_applications_c.Metrics.count <- 0;
  index_builds_c.Metrics.count <- 0

type snapshot = {
  snap_derivations : int;
  snap_tuples_scanned : int;
  snap_probes : int;
  snap_rule_applications : int;
  snap_index_builds : int;
}

let snapshot () =
  {
    snap_derivations = derivations ();
    snap_tuples_scanned = tuples_scanned ();
    snap_probes = probes ();
    snap_rule_applications = rule_applications ();
    snap_index_builds = index_builds ();
  }

(** Work done since [earlier].  Each component clamps at zero: a snapshot
    taken before a {!reset} is stale and reports no work rather than a
    negative amount. *)
let since earlier =
  let d a b = max 0 (a - b) in
  {
    snap_derivations = d (derivations ()) earlier.snap_derivations;
    snap_tuples_scanned = d (tuples_scanned ()) earlier.snap_tuples_scanned;
    snap_probes = d (probes ()) earlier.snap_probes;
    snap_rule_applications = d (rule_applications ()) earlier.snap_rule_applications;
    snap_index_builds = d (index_builds ()) earlier.snap_index_builds;
  }

(** Snapshot of the {e current domain's} cell only.  Together with
    {!local_since} this measures exactly the work this domain performed
    in a region — under parallel fan-out the global {!snapshot} would
    fold in other domains' concurrent bumps, misattributing their work
    to whichever rule this domain happens to be evaluating.  Per-rule
    cost attribution uses this pair. *)
let local_snapshot () =
  let c = Domain.DLS.get cell_key in
  {
    snap_derivations = c.cell_derivations;
    snap_tuples_scanned = c.cell_scanned;
    snap_probes = c.cell_probes;
    snap_rule_applications = c.cell_rules;
    snap_index_builds = c.cell_index_builds;
  }

(** This domain's work since [earlier] (an earlier {!local_snapshot} on
    the same domain); clamps at zero across {!reset}. *)
let local_since earlier =
  let c = Domain.DLS.get cell_key in
  let d a b = max 0 (a - b) in
  {
    snap_derivations = d c.cell_derivations earlier.snap_derivations;
    snap_tuples_scanned = d c.cell_scanned earlier.snap_tuples_scanned;
    snap_probes = d c.cell_probes earlier.snap_probes;
    snap_rule_applications = d c.cell_rules earlier.snap_rule_applications;
    snap_index_builds = d c.cell_index_builds earlier.snap_index_builds;
  }

let pp_snapshot ppf s =
  Format.fprintf ppf "derivations=%d scanned=%d probes=%d rules=%d idxbuilds=%d"
    s.snap_derivations s.snap_tuples_scanned s.snap_probes
    s.snap_rule_applications s.snap_index_builds

(** Run [f], returning its result and the work it performed.  Nesting is
    fine: an outer [measure] includes the work of any inner ones (see the
    module comment). *)
let measure f =
  let before = snapshot () in
  let x = f () in
  (x, since before)
