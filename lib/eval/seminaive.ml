(** Initial bottom-up materialization: naive single-pass for nonrecursive
    predicates (their strata are below them, so one evaluation of each rule
    suffices), semi-naive iteration [Ull89] inside recursive components.

    Counts: a nonrecursive predicate stores its derivation counts (under
    set semantics these are counts relative to lower strata counted once —
    Section 5.1; under duplicate semantics full multiplicities).  Recursive
    predicates are materialized with set semantics and count 1 per tuple —
    the paper's counting algorithm is proposed for nonrecursive views only,
    and duplicate semantics on recursion may not terminate (Section 8). *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Program = Ivm_datalog.Program
module Metrics = Ivm_obs.Metrics
module Trace = Ivm_obs.Trace
open Compile

let rounds_c = Metrics.counter ~labels:[ ("engine", "seminaive") ] "ivm_fixpoint_rounds_total"
let delta_h = Metrics.histogram ~labels:[ ("engine", "seminaive") ] "ivm_fixpoint_delta_size"

exception Recursive_duplicates of string

(** Shared per-round cache of grouped relations, keyed by spec signature
    and a caller-chosen version tag ("old"/"new"/…). *)
module Agg_cache = struct
  type t = (string, Relation.t) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let grouped (cache : t) ~version ~mult view (spec : agg_spec) =
    let key = version ^ "|" ^ spec.gsignature in
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
      let r = Grouping.compute ~mult view spec in
      Hashtbl.add cache key r;
      r
end

(** Subgoal inputs resolving every predicate through [resolve], computing
    grouped relations through [cache] under version [version]. *)
let make_inputs ~(resolve : string -> Relation_view.t)
    ~(mult_for : string -> int -> int) ~cache ~version (cr : Compile.t) :
    int -> Rule_eval.subgoal_input =
 fun i ->
  match cr.clits.(i) with
  | Catom a -> Rule_eval.Enumerate (resolve a.cpred, mult_for a.cpred)
  | Cneg a -> Rule_eval.Filter_absent (resolve a.cpred)
  | Cagg (spec, _) ->
    let t =
      Agg_cache.grouped cache ~version
        ~mult:(mult_for spec.gsource.cpred)
        (resolve spec.gsource.cpred) spec
    in
    Rule_eval.Enumerate (Relation_view.concrete t, Rule_eval.identity_count)
  | Ccmp _ -> assert false

(** Force the grouped-relation cache entries rule [cr] will read under
    [inputs], in body-literal order — the same first-touch order the
    evaluator itself would use.  Parallel fan-out calls this while
    building the task list so no worker thunk ever writes the cache. *)
let prepare_agg_inputs (cr : Compile.t) (inputs : int -> Rule_eval.subgoal_input) =
  Array.iteri
    (fun j lit -> match lit with Cagg _ -> ignore (inputs j) | _ -> ())
    cr.clits

(** Evaluate all rules of one nonrecursive predicate against the current
    database state; returns its full materialization.  Rule bodies fan
    out across the domain pool (each into a private relation, ⊎-merged in
    rule order); with one domain the tasks run inline in the same order. *)
let eval_nonrecursive db ~cache pred =
  let program = Database.program db in
  let out = Relation.create (Program.arity program pred) in
  Ivm_obs.Attribution.set_context ~stratum:(Program.stratum program pred)
    ~phase:"materialize";
  Trace.span "seminaive.materialize"
    ~args:(fun () ->
      [ ("pred", pred); ("tuples", string_of_int (Relation.cardinal out)) ])
    (fun () ->
      let tasks =
        List.map
          (fun rule ->
            let cr = Database.compile db rule in
            let inputs =
              make_inputs ~resolve:(Database.view db)
                ~mult_for:(Database.mult_for db) ~cache ~version:"cur" cr
            in
            prepare_agg_inputs cr inputs;
            fun () ->
              let part = Relation.create (Program.arity program pred) in
              Rule_eval.eval ~inputs ~emit:(fun tup c -> Relation.add part tup c) cr;
              part)
          (Program.rules_for program pred)
      in
      Par_eval.merge ~into:out (Ivm_par.parallel_map (Array.of_list tasks)));
  out

(** Semi-naive fixpoint for one recursive unit (an SCC of mutually
    recursive predicates), set semantics.  Relations outside the unit are
    read from the database (their strata are already materialized). *)
let eval_recursive_unit db ~cache (unit_preds : string list) :
    (string * Relation.t) list =
  let program = Database.program db in
  if Database.semantics db = Database.Duplicate_semantics then
    raise
      (Recursive_duplicates
         (Printf.sprintf
            "predicate %s is recursive: duplicate (counting) semantics may \
             not terminate on recursive views (Section 8); use set semantics"
            (List.hd unit_preds)));
  let in_unit p = List.mem p unit_preds in
  (* one context for the whole unit: its predicates share a stratum *)
  Ivm_obs.Attribution.set_context
    ~stratum:(Program.stratum program (List.hd unit_preds))
    ~phase:"fixpoint";
  let totals : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
  let deltas : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun p ->
      Hashtbl.replace totals p (Relation.create (Program.arity program p));
      Hashtbl.replace deltas p (Relation.create (Program.arity program p)))
    unit_preds;
  let resolve_base p =
    if in_unit p then Relation_view.concrete (Hashtbl.find totals p)
    else Database.view db
      p
  in
  let mult = Rule_eval.set_count in
  let mult_for _ = mult in
  (* Round 0: all rules against current totals (empty for unit preds). *)
  let candidates : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun p -> Hashtbl.replace candidates p (Relation.create (Program.arity program p)))
    unit_preds;
  List.iter
    (fun p ->
      let out = Hashtbl.find candidates p in
      List.iter
        (fun rule ->
          let cr = Database.compile db rule in
          let inputs =
            make_inputs ~resolve:resolve_base ~mult_for ~cache ~version:"cur" cr
          in
          Rule_eval.eval ~inputs ~emit:(fun tup c -> Relation.add out tup c) cr)
        (Program.rules_for program p))
    unit_preds;
  let absorb () =
    (* Move genuinely new tuples from candidates into deltas and totals. *)
    let changed = ref false in
    List.iter
      (fun p ->
        let total = Hashtbl.find totals p in
        let delta = Relation.create (Program.arity program p) in
        Relation.iter
          (fun tup c ->
            if c > 0 && not (Relation.mem total tup) then begin
              Relation.add delta tup 1;
              Relation.add total tup 1;
              changed := true
            end)
          (Hashtbl.find candidates p);
        Metrics.observe delta_h (Relation.cardinal delta);
        Hashtbl.replace deltas p delta;
        Relation.clear (Hashtbl.find candidates p))
      unit_preds;
    !changed
  in
  let round = ref 0 in
  let continue_ = ref (absorb ()) in
  while !continue_ do
    incr round;
    Metrics.inc rounds_c;
    Trace.instant "seminaive.round" ~args:(fun () ->
        ( "round", string_of_int !round )
        :: List.map
             (fun p ->
               (p, string_of_int (Relation.cardinal (Hashtbl.find deltas p))))
             unit_preds);
    (* Delta rules: one evaluation per occurrence of a unit predicate in a
       body, with positions before the delta reading the new totals and
       positions after reading the previous totals (totals minus delta).
       Totals and deltas are frozen for the round, so every (occurrence ×
       delta chunk) is an independent read-only task: they fan out across
       the domain pool, each emitting into a private relation ⊎-merged
       into the candidates in fixed task order (inline, same order, with
       one domain). *)
    let chunks = if Ivm_par.sequential () then 1 else Par_eval.chunks_hint () in
    let tasks = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun rule ->
            let cr = Database.compile db rule in
            Array.iteri
              (fun i lit ->
                match lit with
                | Catom a when in_unit a.cpred ->
                  let delta_rel = Hashtbl.find deltas a.cpred in
                  if not (Relation.is_empty delta_rel) then begin
                    let resolve_pos j q =
                      if not (in_unit q) then Database.view db q
                      else if j < i then Relation_view.concrete (Hashtbl.find totals q)
                      else
                        (* old totals = totals ⊎ (−delta) *)
                        Relation_view.overlay (Hashtbl.find totals q)
                          (Relation.negate (Hashtbl.find deltas q))
                    in
                    let inputs_with seed j =
                      match cr.clits.(j) with
                      | Catom _ when j = i ->
                        Rule_eval.Enumerate
                          (Relation_view.concrete seed, Rule_eval.set_count)
                      | Catom b -> Rule_eval.Enumerate (resolve_pos j b.cpred, mult)
                      | Cneg b -> Rule_eval.Filter_absent (resolve_pos j b.cpred)
                      | Cagg (spec, _) ->
                        let t =
                          Agg_cache.grouped cache ~version:"cur" ~mult
                            (resolve_pos j spec.gsource.cpred) spec
                        in
                        Rule_eval.Enumerate
                          (Relation_view.concrete t, Rule_eval.identity_count)
                      | Ccmp _ -> assert false
                    in
                    prepare_agg_inputs cr (inputs_with delta_rel);
                    Array.iter
                      (fun part ->
                        tasks :=
                          ( p,
                            fun () ->
                              let out =
                                Relation.create (Program.arity program p)
                              in
                              Rule_eval.eval ~seed:i ~inputs:(inputs_with part)
                                ~emit:(fun tup c -> Relation.add out tup c)
                                cr;
                              out )
                          :: !tasks)
                      (Par_eval.split delta_rel ~chunks)
                  end
                | _ -> ())
              cr.clits)
          (Program.rules_for program p))
      unit_preds;
    let tasks = Array.of_list (List.rev !tasks) in
    let outs = Ivm_par.parallel_map (Array.map snd tasks) in
    Array.iteri
      (fun k part ->
        Relation.union_into ~into:(Hashtbl.find candidates (fst tasks.(k))) part)
      outs;
    continue_ := absorb ()
  done;
  List.map (fun p -> (p, Hashtbl.find totals p)) unit_preds

(** Materialize every derived predicate of the database's program from its
    base relations (overwrites previous materializations). *)
let evaluate (db : Database.t) : unit =
  Trace.span "seminaive.evaluate" (fun () ->
      (* A from-scratch materialization enumerates every derivation of
         every derived tuple exactly once (round-0 rules plus the
         semi-naive delta partition), so with capture on the emissions
         rebuild the support store from nothing. *)
      if Ivm_prov.Prov.capturing () then Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
      let program = Database.program db in
      let cache = Agg_cache.create () in
      List.iter
        (fun unit_preds ->
          match unit_preds with
          | [ p ] when not (Program.recursive program p) ->
            Database.set_relation db p (eval_nonrecursive db ~cache p)
          | unit_preds ->
            List.iter
              (fun (p, rel) -> Database.set_relation db p rel)
              (Trace.span "seminaive.fixpoint"
                 ~args:(fun () -> [ ("unit", String.concat "," unit_preds) ])
                 (fun () -> eval_recursive_unit db ~cache unit_preds)))
        (Program.recursive_units program))

(** Re-enumerate every current derivation of every derived predicate —
    each rule evaluated once against the stored relations, emissions
    discarded.  The stored views are already a fixpoint, so this
    enumerates exactly the immediate derivations of each present tuple;
    with provenance capture on, the {!Rule_eval} hook repopulates the
    support store for an already-materialized database ([provenance on]
    mid-session, or after a truncation). *)
let replay_derivations (db : Database.t) : unit =
  if Ivm_prov.Prov.capturing () then begin
    Ivm_prov.Prov.set_mode Ivm_prov.Prov.Add;
    let program = Database.program db in
    let cache = Agg_cache.create () in
    List.iter
      (fun p ->
        List.iter
          (fun rule ->
            let cr = Database.compile db rule in
            let inputs =
              make_inputs ~resolve:(Database.view db)
                ~mult_for:(Database.mult_for db) ~cache ~version:"cur" cr
            in
            Rule_eval.eval ~inputs ~emit:(fun _ _ -> ()) cr)
          (Program.rules_for program p))
      (Program.derived_preds program)
  end
