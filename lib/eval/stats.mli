(** Global work counters — a compatibility shim over {!Ivm_obs.Metrics}.

    The paper's optimality and fragmentation claims (Theorem 4.1; the PF
    comparison of Section 2) concern {e how many derivations} an algorithm
    computes, not just wall-clock time.  The evaluator bumps these
    process-global counters; reset them around the region you measure.

    {b Exact under parallel evaluation}: each domain accumulates into its
    own cell (domain-local storage) and reads sum the cells, so bumps from
    worker-domain thunks ({!Ivm_par}) are never lost.  Counts read between
    parallel batches — where all measurements happen — are exact; a read
    taken mid-batch may lag other domains' most recent bumps.

    The counters are registered metrics ([ivm_derivations_total],
    [ivm_tuples_scanned_total], [ivm_probes_total],
    [ivm_rule_applications_total], [ivm_index_builds_total]), visible to the shell's [metrics]
    command and the bench [--metrics-json] report; {!sync} refreshes the
    registered handles from the cells before a registry dump.
    Sums saturate at [max_int] (no wrap-around).

    {b Snapshot semantics.}  Counters are monotone between {!reset}s.
    Nested {!measure} calls attribute inner work to both regions — each
    answers "how much work happened while [f] ran".  {!since} clamps at
    zero, so a snapshot taken before a [reset] yields zeros rather than
    negative values. *)

(** Reset the work counters to zero.  Snapshots taken earlier become
    stale: {!since} reports zeros for them, not negative work.  Other
    registered metrics keep their values ({!Ivm_obs.Metrics.reset} zeroes
    the registry but not the per-domain cells behind these four — call
    this as well).  Run at quiescence: no parallel batch in flight. *)
val reset : unit -> unit

(** Mirror the per-domain cell sums into the registered metrics so
    registry dumps ({!Ivm_obs.Metrics.pp} / [to_json]) show current
    totals.  Run at quiescence, right before dumping. *)
val sync : unit -> unit

(** Tuples emitted by rule bodies — one per successful derivation. *)
val derivations : unit -> int

(** Tuples read while scanning or probing relations. *)
val tuples_scanned : unit -> int

(** Index probe operations. *)
val probes : unit -> int

(** Rule (re-)evaluations started. *)
val rule_applications : unit -> int

(** Demand-built relation indexes (counted via the
    [Ivm_relation.Relation.on_index_build] hook this module installs at
    init). *)
val index_builds : unit -> int

val add_derivation : unit -> unit
val add_scanned : unit -> unit
val add_probe : unit -> unit
val add_rule_application : unit -> unit
val add_index_build : unit -> unit

type snapshot = {
  snap_derivations : int;
  snap_tuples_scanned : int;
  snap_probes : int;
  snap_rule_applications : int;
  snap_index_builds : int;
}

val snapshot : unit -> snapshot

(** Work done since [earlier]; each component clamps at zero (see the
    module comment on resets). *)
val since : snapshot -> snapshot

(** Snapshot of the {e current domain's} cell only — with {!local_since}
    this measures exactly the work this domain performed in a region,
    immune to concurrent bumps from other domains.  Per-rule cost
    attribution ({!Ivm_obs.Attribution}) relies on this: under parallel
    fan-out the global {!snapshot}/{!since} pair would misattribute
    other domains' work to this rule. *)
val local_snapshot : unit -> snapshot

(** This domain's work since [earlier] (an earlier {!local_snapshot}
    taken on the same domain); clamps at zero across {!reset}. *)
val local_since : snapshot -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit

(** Run [f]; return its result and the work it performed.  Nesting is
    fine: an outer [measure] includes the work of inner ones. *)
val measure : (unit -> 'a) -> 'a * snapshot
