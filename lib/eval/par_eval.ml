(** Evaluation-side conventions for parallel delta fan-out.

    The maintenance algorithms package each phase as an array of thunks
    for {!Ivm_par.parallel_map}.  Thunks follow a strict discipline:

    - {b read} shared state only — stored relations, overlays, and the
      maintenance caches, all pre-populated by a sequential prepare step
      (first touch of a lazy cache must never happen inside a thunk);
    - {b write} thunk-private relations only; the caller ⊎-merges them
      sequentially in task order ({!merge}).

    Since a batch often has fewer delta rules than domains, seed deltas
    are additionally {!split} into chunks by tuple hash.  The partition
    is deterministic for a given chunk count, but the chunk count tracks
    the configured domain count ({!chunks_hint}) — so the task list, and
    with it the merge order, is fixed only per configuration, never by
    scheduling.  Identical final states across {e different} domain
    counts rest on [⊎] alone: counts sum per tuple (commutative,
    associative), so the merged content does not depend on how the seeds
    were chunked.  That commutativity argument is what the determinism
    property suite checks. *)

module Relation = Ivm_relation.Relation
module Tuple = Ivm_relation.Tuple

(** How many chunks to split a seed delta into: twice the domain count,
    so task stealing can balance skewed chunk costs. *)
let chunks_hint () = 2 * Ivm_par.domains ()

(** Deterministically partition [r] into at most [chunks] disjoint parts
    by tuple hash (counts preserved).  Returns [[| r |]] unchanged when
    chunking cannot help; never returns empty parts. *)
let split (r : Relation.t) ~chunks : Relation.t array =
  let n = Relation.cardinal r in
  if chunks <= 1 || n <= 1 then [| r |]
  else begin
    let arity = Relation.arity r in
    let parts =
      Array.init chunks (fun _ -> Relation.create ~size:(max 4 (n / chunks)) arity)
    in
    Relation.iter
      (fun t c -> Relation.add parts.((Tuple.hash t land max_int) mod chunks) t c)
      r;
    Array.of_list
      (List.filter (fun p -> not (Relation.is_empty p)) (Array.to_list parts))
  end

(** ⊎-merge task outputs into [into], sequentially, in task order. *)
let merge ~into (outs : Relation.t array) =
  Array.iter (fun r -> Relation.union_into ~into r) outs
