(** Evaluation of GROUPBY subgoals (Section 6.2).

    A GROUPBY subgoal over a source relation [U] denotes a grouped relation
    [T] with one tuple [y ++ [agg]] per distinct grouping value [y]
    occurring in [U].  {!compute} materializes [T]; {!delta} is
    Algorithm 6.1: given [Δ(U)] it touches {e only} the groups that occur
    in [Δ(U)], recomputing each touched group's aggregate from the old and
    new versions of [U] (index-assisted, so a touched group costs its own
    size, not [|U|]), and emits [(T_y old, −1)] and [(T_y new, +1)] for the
    groups whose tuple changed. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
open Compile

(** Multiplicity regime: under duplicate semantics a tuple with count [c]
    contributes [c] times to SUM/COUNT/AVG; under set semantics once. *)
type mult = int -> int

(* Match a source tuple against the spec pattern; call [k binding] on
   success.  The binding covers the spec's local slots. *)
let with_match spec binding tup k =
  let undo = ref [] in
  if Rule_eval.match_pattern binding spec.gsource.cargs tup undo then k ();
  Rule_eval.unwind binding !undo

(* Group keys are boxed tuples so every table keyed by them shares the
   cached-hash fast path with the storage layer. *)
module Tbl = Hashtbl.Make (Tuple)

let key_of_binding spec binding =
  Tuple.make
    (Array.map
       (fun s ->
         match binding.(s) with
         | Some v -> v
         | None -> assert false (* group vars occur in the pattern: always bound *))
       spec.ggroup)

(** The grouped relation [T] of [spec] over [view], in full. *)
let compute ?(mult : mult = fun c -> c) (view : Relation_view.t) (spec : agg_spec) :
    Relation.t =
  let binding = Array.make spec.gnslots None in
  let states : Agg.state Tbl.t = Tbl.create 64 in
  Relation_view.iter
    (fun tup c ->
      let c = mult c in
      if c > 0 then
        with_match spec binding tup (fun () ->
            let key = key_of_binding spec binding in
            let st =
              match Tbl.find_opt states key with
              | Some st -> st
              | None ->
                let st = Agg.create spec.gfn in
                Tbl.add states key st;
                st
            in
            Agg.update st (Rule_eval.expr_value binding spec.garg) c))
    view;
  let out = Relation.create (spec_arity spec) in
  Tbl.iter
    (fun key st ->
      match Agg.value st with
      | Some v -> Relation.set_count out (Tuple.append key v) 1
      | None -> ())
    states;
  out

(* Probe positions for one group key: the first occurrence of each group
   variable in the pattern, plus every constant position.  Remaining
   pattern constraints (repeated variables) are re-checked per tuple. *)
let probe_spec spec =
  let group_pos =
    Array.map
      (fun g ->
        let pos = ref (-1) in
        Array.iteri
          (fun i t -> if !pos < 0 && t = Cvar g then pos := i)
          spec.gsource.cargs;
        assert (!pos >= 0);
        !pos)
      spec.ggroup
  in
  let const_pos = ref [] in
  Array.iteri
    (fun i t -> match t with Cconst c -> const_pos := (i, c) :: !const_pos | Cvar _ -> ())
    spec.gsource.cargs;
  (group_pos, !const_pos)

(** Aggregate value of the group [key] in [view]; [None] for an empty
    group. *)
let group_value ?(mult : mult = fun c -> c) view spec (key : Tuple.t) :
    Value.t option =
  let group_pos, const_pos = probe_spec spec in
  let cols = ref [] and vals = ref [] in
  List.iter
    (fun (i, c) ->
      cols := i :: !cols;
      vals := c :: !vals)
    const_pos;
  Array.iteri
    (fun k pos ->
      if not (List.mem pos !cols) then begin
        cols := pos :: !cols;
        vals := Tuple.get key k :: !vals
      end)
    group_pos;
  let paired = List.combine !cols !vals |> List.sort compare in
  let cols = Array.of_list (List.map fst paired)
  and vals = List.map snd paired in
  let st = Agg.create spec.gfn in
  let binding = Array.make spec.gnslots None in
  Relation_view.probe view cols (Tuple.of_list vals) (fun tup c ->
      Stats.add_scanned ();
      let c = mult c in
      if c > 0 then
        with_match spec binding tup (fun () ->
            if Tuple.equal (key_of_binding spec binding) key then
              Agg.update st (Rule_eval.expr_value binding spec.garg) c));
  Agg.value st

(** Distinct group keys occurring in [delta_u] (insertions or deletions). *)
let affected_keys (delta_u : Relation.t) (spec : agg_spec) : Tuple.t list =
  let binding = Array.make spec.gnslots None in
  let keys : unit Tbl.t = Tbl.create 16 in
  Relation.iter
    (fun tup _c ->
      with_match spec binding tup (fun () ->
          Tbl.replace keys (key_of_binding spec binding) ()))
    delta_u;
  Tbl.fold (fun k () acc -> k :: acc) keys []

(** Algorithm 6.1: [Δ(T)] from [Δ(U)] and the old/new versions of [U]. *)
let delta ?(mult : mult = fun c -> c) ~(old_view : Relation_view.t)
    ~(new_view : Relation_view.t) ~(delta_u : Relation.t) (spec : agg_spec) :
    Relation.t =
  let out = Relation.create (spec_arity spec) in
  List.iter
    (fun key ->
      let old_v = group_value ~mult old_view spec key in
      let new_v = group_value ~mult new_view spec key in
      let tuple v = Tuple.append key v in
      match old_v, new_v with
      | Some a, Some b when Value.equal a b -> ()
      | _ ->
        (match old_v with Some a -> Relation.add out (tuple a) (-1) | None -> ());
        (match new_v with Some b -> Relation.add out (tuple b) 1 | None -> ()))
    (affected_keys delta_u spec);
  out
