(** Initial bottom-up materialization: one naive pass per nonrecursive
    predicate (strata are evaluated in order, so a single evaluation of
    each rule suffices), semi-naive iteration [Ull89] inside recursive
    components.

    Nonrecursive predicates store derivation counts (full multiplicities
    under duplicate semantics, the Section 5.1 convention under set
    semantics); recursive predicates are materialized as sets with count 1
    — duplicate counting through recursion may not terminate (Section 8,
    see [Ivm.Recursive_counting] for the [GKM92] extension). *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Program = Ivm_datalog.Program

exception Recursive_duplicates of string

(** Per-round cache of grouped relations, keyed by GROUPBY-spec signature
    and a caller-chosen version tag. *)
module Agg_cache : sig
  type t

  val create : unit -> t

  val grouped :
    t ->
    version:string ->
    mult:(int -> int) ->
    Relation_view.t ->
    Compile.agg_spec ->
    Relation.t
end

(** Subgoal inputs resolving every predicate through [resolve]; GROUPBY
    subgoals are computed through [cache] under [version]. *)
val make_inputs :
  resolve:(string -> Relation_view.t) ->
  mult_for:(string -> int -> int) ->
  cache:Agg_cache.t ->
  version:string ->
  Compile.t ->
  int ->
  Rule_eval.subgoal_input

(** Evaluate all rules of one nonrecursive predicate against the current
    database state; returns its materialization. *)
val eval_nonrecursive : Database.t -> cache:Agg_cache.t -> string -> Relation.t

(** Semi-naive fixpoint for one recursive unit (set semantics); relations
    outside the unit are read from the database.
    @raise Recursive_duplicates under duplicate semantics. *)
val eval_recursive_unit :
  Database.t -> cache:Agg_cache.t -> string list -> (string * Relation.t) list

(** Materialize every derived predicate from the base relations
    (overwrites previous materializations). *)
val evaluate : Database.t -> unit

(** Re-enumerate every current derivation once — each rule evaluated
    against the stored relations with emissions discarded — so that,
    with provenance capture on ([Ivm_prov.Prov]), the evaluator's
    capture hook repopulates the support store for an
    already-materialized database.  No-op when capture is off. *)
val replay_derivations : Database.t -> unit
