(** Persistent incremental aggregate indexes — the fully incremental
    reading of Algorithm 6.1.

    {!Grouping.delta} recomputes each touched group from the stored source
    relation (cost: the group's size).  This index instead keeps one
    {!Agg.state} per group — running sums for COUNT/SUM/AVG, a value
    multiset for MIN/MAX, per [DAJ91] — so a touched group costs
    [O(|Δ| log)] regardless of its size.  The database registers indexes
    per GROUPBY spec; maintenance algorithms consult them for [Δ(T)] and
    refresh them when source deltas commit.  Benched as the E8 ablation. *)

module Value = Ivm_relation.Value
module Tuple = Ivm_relation.Tuple
module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view

module Tbl = Hashtbl.Make (Tuple)

(* The [mult] regime applies to the initial build only (set semantics
   clamps stored counts to one contribution per tuple).  Deltas handed to
   {!delta_preview}/{!apply_delta} must already be in the index's
   multiplicity regime: full count deltas under duplicate semantics, ±1
   set-transition deltas under set semantics — exactly what the
   maintenance algorithms propagate. *)
type t = {
  spec : Compile.agg_spec;
  mult : int -> int;
  states : Agg.state Tbl.t;  (** group key → accumulator *)
  grouped : Relation.t;  (** the materialized [T], kept in sync *)
}

let spec t = t.spec
let source_pred t = t.spec.Compile.gsource.Compile.cpred

(** The materialized grouped relation (do not mutate). *)
let grouped t = t.grouped

let group_tuple key v = Tuple.append key v

(* Fold the matching (key, aggregated value, multiplicity) triples of a
   delta or view. *)
let iter_contributions spec mult ~iter f =
  let binding = Array.make spec.Compile.gnslots None in
  iter (fun tup c ->
      let c = mult c in
      if c <> 0 then
        let undo = ref [] in
        if Rule_eval.match_pattern binding spec.Compile.gsource.Compile.cargs tup undo
        then begin
          let key =
            Tuple.make
              (Array.map
                 (fun s ->
                   match binding.(s) with Some v -> v | None -> assert false)
                 spec.Compile.ggroup)
          in
          f key (Rule_eval.expr_value binding spec.Compile.garg) c
        end;
        Rule_eval.unwind binding !undo)

(** Build from the current source relation. *)
let build ?(mult = fun c -> c) (view : Relation_view.t) (spec : Compile.agg_spec) : t
    =
  let t =
    {
      spec;
      mult;
      states = Tbl.create 64;
      grouped = Relation.create (Compile.spec_arity spec);
    }
  in
  iter_contributions spec mult
    ~iter:(fun f -> Relation_view.iter f view)
    (fun key v c ->
      let st =
        match Tbl.find_opt t.states key with
        | Some st -> st
        | None ->
          let st = Agg.create spec.Compile.gfn in
          Tbl.add t.states key st;
          st
      in
      Agg.update st v c);
  Tbl.iter
    (fun key st ->
      match Agg.value st with
      | Some v -> Relation.set_count t.grouped (group_tuple key v) 1
      | None -> ())
    t.states;
  t

(* The per-group contributions of a source delta, accumulated so each
   group is touched once. *)
let delta_by_group t (delta_u : Relation.t) : (Tuple.t * (Value.t * int) list) list =
  let acc : (Value.t * int) list ref Tbl.t = Tbl.create 16 in
  iter_contributions t.spec Rule_eval.identity_count
    ~iter:(fun f -> Relation.iter f delta_u)
    (fun key v c ->
      match Tbl.find_opt acc key with
      | Some l -> l := (v, c) :: !l
      | None -> Tbl.add acc key (ref [ (v, c) ]));
  Tbl.fold (fun key l rows -> (key, !l) :: rows) acc []

let state_value t key =
  match Tbl.find_opt t.states key with
  | Some st -> Agg.value st
  | None -> None

(** [Δ(T)] for a source delta, {e without} mutating the index: touched
    groups' states are cloned and the delta applied to the clones —
    [O(|Δ| log)] per touched group, independent of group size. *)
let delta_preview (t : t) (delta_u : Relation.t) : Relation.t =
  let out = Relation.create (Compile.spec_arity t.spec) in
  List.iter
    (fun (key, contribs) ->
      let old_v = state_value t key in
      let clone =
        match Tbl.find_opt t.states key with
        | Some st -> Agg.copy st
        | None -> Agg.create t.spec.Compile.gfn
      in
      List.iter (fun (v, c) -> Agg.update clone v c) contribs;
      let new_v = Agg.value clone in
      match old_v, new_v with
      | Some a, Some b when Value.equal a b -> ()
      | _ ->
        (match old_v with
        | Some a -> Relation.add out (group_tuple key a) (-1)
        | None -> ());
        (match new_v with
        | Some b -> Relation.add out (group_tuple key b) 1
        | None -> ()))
    (delta_by_group t delta_u);
  out

(** Fold a committed source delta into the index (states and materialized
    [T]); returns [Δ(T)].  The source relation must already reflect the
    delta — or not: the index never reads it. *)
let apply_delta (t : t) (delta_u : Relation.t) : Relation.t =
  let out = Relation.create (Compile.spec_arity t.spec) in
  List.iter
    (fun (key, contribs) ->
      let st =
        match Tbl.find_opt t.states key with
        | Some st -> st
        | None ->
          let st = Agg.create t.spec.Compile.gfn in
          Tbl.add t.states key st;
          st
      in
      let old_v = Agg.value st in
      List.iter (fun (v, c) -> Agg.update st v c) contribs;
      let new_v = Agg.value st in
      if Agg.is_empty st then Tbl.remove t.states key;
      match old_v, new_v with
      | Some a, Some b when Value.equal a b -> ()
      | _ ->
        (match old_v with
        | Some a ->
          Relation.add out (group_tuple key a) (-1);
          Relation.remove t.grouped (group_tuple key a)
        | None -> ());
        (match new_v with
        | Some b ->
          Relation.add out (group_tuple key b) 1;
          Relation.set_count t.grouped (group_tuple key b) 1
        | None -> ()))
    (delta_by_group t delta_u);
  out

(** Distinct groups currently tracked. *)
let group_count t = Tbl.length t.states

(** Deep copy (used by {!Database.copy}). *)
let copy t =
  let states = Tbl.create (Tbl.length t.states) in
  Tbl.iter (fun key st -> Tbl.add states key (Agg.copy st)) t.states;
  { t with states; grouped = Relation.copy t.grouped }
