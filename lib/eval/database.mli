(** The database: one stored counted relation per predicate — base
    relations (edb) loaded by the user, derived relations (idb)
    materialized with their derivation counts — plus a compiled-rule
    cache.

    Count regimes (Section 5 of the paper):
    - {e duplicate semantics} (SQL without DISTINCT): stored counts are
      full multiplicities and join inputs keep their counts;
    - {e set semantics}: stored counts are derivation counts {e assuming
      all tuples of lower strata count once} (Section 5.1); the evaluator
      reads lower-stratum inputs through the {!Rule_eval.set_count}
      clamp. *)

module Relation = Ivm_relation.Relation
module Relation_view = Ivm_relation.Relation_view
module Tuple = Ivm_relation.Tuple
module Program = Ivm_datalog.Program

type semantics = Set_semantics | Duplicate_semantics

type t

(** Fresh database with empty relations for every predicate of the
    program. *)
val create : ?semantics:semantics -> Program.t -> t

val program : t -> Program.t
val semantics : t -> semantics

(** The count transform for non-delta subgoals: identity under duplicate
    semantics, the 0/1 clamp under set semantics. *)
val mult : t -> int -> int

(** Mark a derived relation DISTINCT (SQL's [SELECT DISTINCT], §5.1):
    readers see each true tuple once and only its set transitions
    propagate, even inside a duplicate-semantics database.  No-op under
    set semantics.  @raise Invalid_argument on base relations. *)
val mark_distinct : t -> string -> unit

val is_distinct : t -> string -> bool

(** All views marked DISTINCT, sorted. *)
val distinct_views : t -> string list

(** The count transform readers of this predicate apply: the set clamp
    under set semantics or for DISTINCT views, identity otherwise. *)
val mult_for : t -> string -> int -> int

(** @raise Program.Program_error on unknown relations. *)
val relation : t -> string -> Relation.t

val view : t -> string -> Relation_view.t

(** Compile a rule, memoized per database. *)
val compile : t -> Ivm_datalog.Ast.rule -> Compile.t

(** Insert base facts, one derivation each; idempotent per tuple under set
    semantics. *)
val load : t -> string -> Tuple.t list -> unit

(** Overwrite one relation (commits of maintenance results, the
    recomputation baseline).  Invalidates aggregate indexes sourced from
    it.  @raise Invalid_argument on arity mismatch. *)
val set_relation : t -> string -> Relation.t -> unit

(** {2 Persistent incremental aggregate indexes}

    Opt-in [DAJ91]-style per-group accumulators (see {!Agg_index}):
    registered GROUPBY specs get their [Δ(T)] from running group states in
    [O(|Δ| log)] instead of recomputing touched groups from the source. *)

(** Build (or return) the index for a spec from the current source
    relation. *)
val register_agg_index : t -> Compile.agg_spec -> Agg_index.t

val agg_index : t -> Compile.agg_spec -> Agg_index.t option

(** Signatures of every registered aggregate index, sorted (persisted by
    the snapshot layer so reload re-registers the same specs). *)
val agg_signatures : t -> string list

(** Fold committed per-predicate deltas (in the propagated regime: count
    deltas under duplicates, ±1 set transitions under sets) into every
    registered index. *)
val refresh_agg_indexes : t -> (string * Relation.t) list -> unit

(** Drop indexes sourced from [pred]. *)
val invalidate_agg_indexes : t -> string -> unit

val clear_agg_indexes : t -> unit

(** Deep copy: same program and semantics, copied relations.  Secondary
    indexes are rebuilt on the copies by default; [~with_indexes:false]
    skips that (the serve publish fast path — readers rebuild on demand
    under the relation build lock). *)
val copy : ?with_indexes:bool -> t -> t

(** Canonical content digest (hex MD5) over every relation's sorted
    [(tuple, count)] entries, base and derived, plus the semantics tag.
    Two databases digest equal iff they are count-identical; indexes and
    caches do not participate.  This is the publisher-equivalence
    oracle. *)
val canonical_digest : t -> string

(** Do the stored relations agree (sets under set semantics, counts under
    duplicates)?  [preds] defaults to every predicate. *)
val agree : ?preds:string list -> t -> t -> bool

(** Refresh the per-relation observability gauges
    ([ivm_relation_cardinality{relation=p}],
    [ivm_relation_indexes{relation=p}]) from the stored relations.  One
    cheap pass over the relation table. *)
val observe_gauges : t -> unit

val pp : Format.formatter -> t -> unit

(** Serialize as a re-loadable program text: rules, then base facts
    (repeated per multiplicity under duplicate semantics); derived
    relations are rebuilt on load. *)
val dump : Format.formatter -> t -> unit
