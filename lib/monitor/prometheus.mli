(** Prometheus text exposition (format version 0.0.4) over the
    {!Ivm_obs.Metrics} registry: one [# HELP]/[# TYPE] header per metric
    family, then its samples; histograms expand to cumulative
    [_bucket{le="…"}] samples (inclusive log₂ upper bounds) plus
    [+Inf], [_sum], and [_count].  Help text and label values are
    escaped per the format (backslash and newline everywhere, plus the
    double quote in label values). *)

(** Render an explicit list of registered metrics — the testable core.
    Rows are stable-sorted by family name first, so every family's
    samples sit adjacent under a single [# HELP]/[# TYPE] header. *)
val render_list : Ivm_obs.Metrics.registered list -> string

(** The whole registry ({!Ivm_obs.Metrics.dump}) as one exposition
    document. *)
val render : unit -> string
