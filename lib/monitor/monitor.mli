(** The live monitoring endpoint: a small single-threaded HTTP/1.0
    server on a dedicated domain.

    One accept loop, one request per connection, [Connection: close].
    The server only {e reads} shared state — the mutex-protected metrics
    registry, the trace ring, the caller's status callback — so scraping
    never blocks maintenance.

    Endpoints: [GET /metrics] (Prometheus text exposition 0.0.4),
    [GET /healthz] (liveness JSON), [GET /statusz] (caller-supplied
    status document plus uptime/pid/trace fields), [GET /trace] (drains
    the {!Ivm_obs.Trace} ring as a Chrome [trace_event] JSON array —
    repeated GETs see disjoint batches), [GET /requestz] (the
    {!Ivm_obs.Reqtrace} ring of completed serve-path requests with
    per-stage latency breakdowns), [GET /why?q=fact] (the
    caller-supplied provenance EXPLAIN callback; 404 when none is
    configured).  Anything else is a 404. *)

type config = {
  status : unit -> Ivm_obs.Json.t;
      (** the [/statusz] document; an [Obj]'s fields are spliced after
          the process fields, any other value appears under ["status"].
          Called from the accept domain while maintenance may be
          running, so the values it reads are racy point-in-time
          observations — same contract as a [/metrics] scrape. *)
  before_metrics : unit -> unit;
      (** runs before each [/metrics] or [/statusz] render — mirror
          non-registry state into the registry here (e.g.
          [Ivm_eval.Stats.sync]) *)
  explain : (string -> (Ivm_obs.Json.t, string) result) option;
      (** serves [GET /why?q=fact]: called with the percent-decoded [q]
          value (e.g. [Ivm.View_manager.explain_json]); [Error] renders
          as a 400.  Runs on the accept domain while maintenance may be
          mutating relations — same racy-read contract as {!status}. *)
}

(** Empty status, no pre-render hook. *)
val default_config : config

type t

(** Start serving on [port] ([0] picks an ephemeral port — read it back
    with {!port}).  Binds [host], default loopback: the monitor exposes
    process internals, so binding wider is an explicit choice.  The
    accept loop runs on its own domain; every running server is
    [at_exit]-stopped so a process that forgets {!stop} still exits.
    Ignores SIGPIPE process-wide (a disconnecting scrape client must
    raise [EPIPE], not kill the process); accepted sockets get a short
    receive/send timeout so a stalled client cannot wedge the server.
    @raise Unix.Unix_error when the address is in use or not
    bindable. *)
val start : ?host:string -> ?config:config -> port:int -> unit -> t

(** The port actually bound (meaningful after [start ~port:0]). *)
val port : t -> int

(** Stop accepting, wake and join the accept domain, close the socket.
    Idempotent. *)
val stop : t -> unit
