(** The live monitoring endpoint: a deliberately small HTTP/1.0 server on
    a dedicated domain.

    One accept loop, one request per connection, [Connection: close] —
    no keep-alive, no chunking, no threads-per-connection.  A scrape or
    a [curl] during a long maintenance run is the workload; the server
    only {e reads} shared state (the mutex-protected metrics registry,
    the trace ring, the caller's status callback), so it never blocks
    maintenance.

    Endpoints:
    - [GET /metrics] — Prometheus text exposition 0.0.4 ({!Prometheus});
    - [GET /healthz] — liveness JSON (status, uptime);
    - [GET /statusz] — the caller-supplied status document plus process
      fields (uptime, pid);
    - [GET /trace] — drains the {!Ivm_obs.Trace} ring buffer as a Chrome
      [trace_event] JSON array (repeated GETs see disjoint batches);
    - [GET /requestz] — the {!Ivm_obs.Reqtrace} ring of completed serve
      requests with per-stage latency breakdowns;
    - [GET /why?q=fact] — the caller-supplied provenance EXPLAIN
      callback ([why]/[why not]/[lineage] JSON); 404 when none is
      configured.

    {b Robustness.}  {!start} ignores SIGPIPE process-wide (a scrape
    client disconnecting mid-response must surface as [EPIPE], not kill
    the process), and accepted sockets carry a receive/send timeout so a
    client that connects and stalls is dropped instead of wedging the
    single-threaded loop.

    {b Shutdown.}  The OCaml runtime joins every spawned domain at
    process exit, and on Linux [close] alone does not wake a domain
    blocked in [accept].  {!stop} therefore flips the stop flag, calls
    [shutdown] on the listening socket {e and} makes a self-connect (to
    the address actually bound, wildcard mapped to loopback) to
    guarantee the wake-up, then joins the domain.  Every running server
    is also registered for [at_exit] stop, so a process that forgets to
    stop still terminates. *)

module Json = Ivm_obs.Json
module Trace = Ivm_obs.Trace

type config = {
  status : unit -> Json.t;
      (** the [/statusz] document (process fields are added on top) *)
  before_metrics : unit -> unit;
      (** run before each [/metrics]/[/statusz] render — callers mirror
          non-registry state into the registry here (e.g.
          [Ivm_eval.Stats.sync]) *)
  explain : (string -> (Json.t, string) result) option;
      (** serves [GET /why?q=fact] — the percent-decoded [q] value is
          passed verbatim; [Error] renders as a 400 *)
}

let default_config =
  { status = (fun () -> Json.Obj []); before_metrics = ignore; explain = None }

type t = {
  sock : Unix.file_descr;
  port : int;
  wake_addr : Unix.sockaddr;
      (** where {!stop}'s self-connect reaches the listener: the bound
          address from [getsockname], wildcard mapped to loopback *)
  started_at : float;
  stopped : bool Atomic.t;
  mutable domain : unit Domain.t option;
  config : config;
}

let port t = t.port

(* ---------------- HTTP plumbing ---------------- *)

let http_status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let respond fd ~code ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      code (http_status_text code) content_type (String.length body)
  in
  write_all fd (head ^ body)

(** First line of the request; the headers that follow are read and
    discarded (HTTP/1.0, no body on GET). *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let in_first_line = ref true in
  let blank = ref 0 in
  (* read until the terminating CRLFCRLF (or EOF / oversized request) *)
  (try
     while !blank < 4 && Buffer.length buf < 8192 do
       if Unix.read fd byte 0 1 = 0 then raise Exit;
       let c = Bytes.get byte 0 in
       (match c with
       | '\r' | '\n' -> incr blank
       | _ -> blank := 0);
       if !in_first_line then
         if c = '\r' || c = '\n' then in_first_line := false
         else Buffer.add_char buf c
     done
   with Exit -> ());
  Buffer.contents buf

let uptime t = Unix.gettimeofday () -. t.started_at

(* RFC 3986 percent-decoding plus the form-encoding convention [+] = space
   (curl and browsers both produce it for query strings).  Malformed
   escapes pass through literally. *)
let percent_decode (s : string) : string =
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let query_param (query : string) (name : string) : string option =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = name ->
        Some (percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)))
      | _ -> None)
    (String.split_on_char '&' query)

let handle t fd =
  let line = read_request_line fd in
  match String.split_on_char ' ' line with
  | [ meth; target; _ ] | [ meth; target ] ->
    let path, query =
      match String.index_opt target '?' with
      | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
      | None -> (target, "")
    in
    if meth <> "GET" then
      respond fd ~code:405 ~content_type:"text/plain; charset=utf-8"
        "method not allowed\n"
    else (
      match path with
      | "/metrics" ->
        t.config.before_metrics ();
        respond fd ~code:200
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Prometheus.render ())
      | "/healthz" ->
        respond fd ~code:200 ~content_type:"application/json"
          (Json.to_string
             (Json.Obj
                [ ("status", Json.Str "ok"); ("uptime_s", Json.Num (uptime t)) ])
          ^ "\n")
      | "/statusz" ->
        t.config.before_metrics ();
        let base =
          match t.config.status () with Json.Obj kvs -> kvs | j -> [ ("status", j) ]
        in
        respond fd ~code:200 ~content_type:"application/json"
          (Json.to_string
             (Json.Obj
                (("uptime_s", Json.Num (uptime t))
                :: ("pid", Json.int (Unix.getpid ()))
                :: ("trace_enabled", Json.Bool (Trace.enabled ()))
                :: ("trace_dropped", Json.int (Trace.dropped ()))
                :: base))
          ^ "\n")
      | "/trace" ->
        respond fd ~code:200 ~content_type:"application/json"
          (Json.to_string (Trace.events_json (Trace.drain ())) ^ "\n")
      | "/requestz" ->
        (* the serve path's completed-request ring (Ivm_obs.Reqtrace):
           last N requests, each with its per-stage latency breakdown *)
        respond fd ~code:200 ~content_type:"application/json"
          (Json.to_string (Ivm_obs.Reqtrace.recent_json ()) ^ "\n")
      | "/why" -> (
        match t.config.explain with
        | None ->
          respond fd ~code:404 ~content_type:"text/plain; charset=utf-8"
            "no explain callback configured\n"
        | Some explain -> (
          match query_param query "q" with
          | None ->
            respond fd ~code:400 ~content_type:"text/plain; charset=utf-8"
              "usage: /why?q=pred(v1,...)\n"
          | Some q -> (
            match explain q with
            | Ok doc ->
              respond fd ~code:200 ~content_type:"application/json"
                (Json.to_string doc ^ "\n")
            | Error e ->
              respond fd ~code:400 ~content_type:"application/json"
                (Json.to_string (Json.Obj [ ("error", Json.Str e) ]) ^ "\n"))))
      | _ ->
        respond fd ~code:404 ~content_type:"text/plain; charset=utf-8"
          "not found: try /metrics /healthz /statusz /trace /requestz /why\n")
  | _ -> ()

(* A client that connects but never sends a request (or stops reading a
   large /metrics body) must not wedge the single-threaded server — and
   must not wedge [stop], whose self-connect only wakes a blocked
   [accept], not a blocked [read]/[write].  Kernel socket timeouts turn
   the stall into a [Unix_error (EAGAIN | EWOULDBLOCK)] that the
   per-client handler swallows. *)
let client_timeout_s = 5.0

let accept_loop t =
  while not (Atomic.get t.stopped) do
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED | EINTR), _, _)
      ->
      () (* shutdown in progress, or a client gave up: re-check the flag *)
    | client, _addr ->
      if not (Atomic.get t.stopped) then (
        try
          Fun.protect
            ~finally:(fun () -> Unix.close client)
            (fun () ->
              Unix.setsockopt_float client Unix.SO_RCVTIMEO client_timeout_s;
              Unix.setsockopt_float client Unix.SO_SNDTIMEO client_timeout_s;
              handle t client)
        with _ -> () (* a broken or stalled client must not kill the server *))
      else Unix.close client
  done

(* ---------------- lifecycle ---------------- *)

let running : t list ref = ref []
let running_lock = Mutex.create ()

let stop (t : t) =
  if not (Atomic.exchange t.stopped true) then begin
    (* wake a blocked accept: shutdown + a self-connect (Linux does not
       reliably wake accept on close/shutdown alone) *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> Unix.close s)
         (fun () -> Unix.connect s t.wake_addr)
     with Unix.Unix_error _ -> ());
    (match t.domain with
    | Some d ->
      Domain.join d;
      t.domain <- None
    | None -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Mutex.lock running_lock;
    running := List.filter (fun s -> s != t) !running;
    Mutex.unlock running_lock
  end

let at_exit_registered = ref false

(** Start serving on [port] (0 picks an ephemeral port — read it back
    with {!port}).  Binds [host] (default loopback; the monitor exposes
    process internals, so binding wider is an explicit choice).
    @raise Unix.Unix_error when the address is in use or not bindable. *)
let start ?(host = "127.0.0.1") ?(config = default_config) ~port:requested () : t
    =
  (* A scrape client that disconnects mid-response (curl ^C, Prometheus
     timeout) makes the pending write raise SIGPIPE, whose default
     action kills the whole process — the `with _` in accept_loop only
     catches exceptions, not signals.  Ignored, the write raises
     [Unix_error EPIPE] instead, which that handler swallows. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> () (* no SIGPIPE on this platform *));
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, requested) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock 16
   with e ->
     Unix.close sock;
     raise e);
  let port, wake_addr =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (bound, p) ->
      (* stop's self-connect must target the address actually bound: a
         wildcard bind is reachable via loopback, anything else only via
         itself *)
      let reach =
        if bound = Unix.inet_addr_any then Unix.inet_addr_loopback else bound
      in
      (p, Unix.ADDR_INET (reach, p))
    | Unix.ADDR_UNIX _ as a -> (requested, a)
  in
  let t =
    {
      sock;
      port;
      wake_addr;
      started_at = Unix.gettimeofday ();
      stopped = Atomic.make false;
      domain = None;
      config;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> accept_loop t));
  Mutex.lock running_lock;
  running := t :: !running;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    (* the runtime joins spawned domains at exit; without this, a process
       that exits with a server running would hang in accept *)
    at_exit (fun () -> List.iter stop !running)
  end;
  Mutex.unlock running_lock;
  t
