(** Prometheus text exposition (format version 0.0.4) over the
    {!Ivm_obs.Metrics} registry.

    One [# HELP]/[# TYPE] header per metric family (help text from
    {!Ivm_obs.Metrics.help}), then the family's samples.  Histograms
    expand to cumulative [_bucket{le="…"}] samples — upper bounds are the
    registry's inclusive log₂ bucket bounds, which matches Prometheus's
    inclusive [le] — plus the [+Inf] bucket, [_sum], and [_count].

    Escaping per the exposition format: in help text backslash and
    newline; in label values additionally the double quote.  Metric and
    label {e names} are emitted as-is (ours are all [a-z_]-safe);
    arbitrary text — rule sources in the attribution families — only
    ever appears in label {e values}, where escaping makes it legal. *)

module Metrics = Ivm_obs.Metrics

let escape_help b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let escape_label_value b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

(** [name{k="v",…}] with label values escaped; bare [name] when the label
    set is empty.  [extra] appends synthetic labels (the histogram
    [le]). *)
let sample_name b name (labels : Metrics.labels) ?(extra = []) () =
  Buffer.add_string b name;
  match labels @ extra with
  | [] -> ()
  | kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        escape_label_value b v;
        Buffer.add_char b '"')
      kvs;
    Buffer.add_char b '}'

let add_float b (f : float) =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let add_sample b name labels ?extra value =
  sample_name b name labels ?extra ();
  Buffer.add_char b ' ';
  add_float b value;
  Buffer.add_char b '\n'

let type_name = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let add_header b name metric =
  (match Metrics.help name with
  | Some h ->
    Buffer.add_string b "# HELP ";
    Buffer.add_string b name;
    Buffer.add_char b ' ';
    escape_help b h;
    Buffer.add_char b '\n'
  | None -> ());
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b name;
  Buffer.add_char b ' ';
  Buffer.add_string b (type_name metric);
  Buffer.add_char b '\n'

let add_registered b (r : Metrics.registered) =
  match r.metric with
  | Metrics.Counter c ->
    add_sample b r.name r.labels (float_of_int (Metrics.counter_value c))
  | Metrics.Gauge g -> add_sample b r.name r.labels (Metrics.gauge_value g)
  | Metrics.Histogram h ->
    List.iter
      (fun (upper, cum) ->
        add_sample b (r.name ^ "_bucket") r.labels
          ~extra:[ ("le", string_of_int upper) ]
          (float_of_int cum))
      (Metrics.cumulative_buckets h);
    add_sample b (r.name ^ "_bucket") r.labels
      ~extra:[ ("le", "+Inf") ]
      (float_of_int (Metrics.histogram_count h));
    add_sample b (r.name ^ "_sum") r.labels
      (float_of_int (Metrics.histogram_sum h));
    add_sample b (r.name ^ "_count") r.labels
      (float_of_int (Metrics.histogram_count h))

(** Render an explicit list of registered metrics (the testable core —
    property tests feed synthetic registrations here).  Rows are
    stable-sorted by family name first: the format requires one header
    per family with all its samples adjacent, and the registry's
    canonical [name{labels}] key order can interleave families whose
    names share a prefix ([_] sorts below [{]). *)
let render_list (rows : Metrics.registered list) : string =
  let rows =
    List.stable_sort
      (fun (a : Metrics.registered) (b : Metrics.registered) ->
        String.compare a.name b.name)
      rows
  in
  let b = Buffer.create 4096 in
  let last_name = ref None in
  List.iter
    (fun (r : Metrics.registered) ->
      if !last_name <> Some r.name then begin
        last_name := Some r.name;
        add_header b r.name r.metric
      end;
      add_registered b r)
    rows;
  Buffer.contents b

(** The whole registry as one exposition document. *)
let render () : string = render_list (Metrics.dump ())
