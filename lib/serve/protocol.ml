(* The ivm_serve wire protocol: framed, opcode-tagged messages over the
   shared Ivm_wire codec.  docs/PROTOCOL.md specifies every byte; this
   module is its reference implementation, and test_docs drift-checks
   the spec's opcode table against [opcodes] below. *)

module Wire = Ivm_wire.Wire
module Relation = Ivm_relation.Relation

let magic = "IVMSRV01"
let version = 1

type changes = (string * Relation.t) list

type error_code =
  | Bad_version
  | Auth_failed
  | Bad_request
  | Query_failed
  | Invalid_changes
  | Quota_exceeded
  | Shutting_down
  | Internal

let error_code_int = function
  | Bad_version -> 1
  | Auth_failed -> 2
  | Bad_request -> 3
  | Query_failed -> 4
  | Invalid_changes -> 5
  | Quota_exceeded -> 6
  | Shutting_down -> 7
  | Internal -> 8

let error_code_of_int = function
  | 1 -> Some Bad_version
  | 2 -> Some Auth_failed
  | 3 -> Some Bad_request
  | 4 -> Some Query_failed
  | 5 -> Some Invalid_changes
  | 6 -> Some Quota_exceeded
  | 7 -> Some Shutting_down
  | 8 -> Some Internal
  | _ -> None

let error_code_name = function
  | Bad_version -> "bad_version"
  | Auth_failed -> "auth_failed"
  | Bad_request -> "bad_request"
  | Query_failed -> "query_failed"
  | Invalid_changes -> "invalid_changes"
  | Quota_exceeded -> "quota_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

type request =
  | Hello of { version : int; token : string }
  | Ping
  | Query of { body : string; trace : string }
  | Apply of { changes : changes; trace : string }
  | Subscribe of string
  | Status
  | Close

type response =
  | Hello_ok of { version : int; seq : int }
  | Pong
  | Answer of { columns : string list; rows : Relation.t }
  | Applied of { seq : int; deltas : changes; timings : (string * int) list }
  | Sub_ok of string
  | Status_reply of string
  | Bye
  | Delta of { seq : int; pred : string; delta : Relation.t }
  | Error of { code : error_code; message : string }

(* ---------------- opcodes ---------------- *)

let op_hello = 0x01
let op_ping = 0x02
let op_query = 0x03
let op_apply = 0x04
let op_subscribe = 0x05
let op_status = 0x06
let op_close = 0x07
let op_hello_ok = 0x81
let op_pong = 0x82
let op_answer = 0x83
let op_applied = 0x84
let op_sub_ok = 0x85
let op_status_reply = 0x86
let op_bye = 0x87
let op_delta = 0x88
let op_error = 0x7F

(* The normative opcode table, drift-checked against docs/PROTOCOL.md
   (every row there must appear here and vice versa, and every opcode
   must round-trip through the codec — test/test_docs.ml). *)
let opcodes =
  [
    (op_hello, "hello");
    (op_ping, "ping");
    (op_query, "query");
    (op_apply, "apply");
    (op_subscribe, "subscribe");
    (op_status, "status");
    (op_close, "close");
    (op_error, "error");
    (op_hello_ok, "hello_ok");
    (op_pong, "pong");
    (op_answer, "answer");
    (op_applied, "applied");
    (op_sub_ok, "sub_ok");
    (op_status_reply, "status_reply");
    (op_bye, "bye");
    (op_delta, "delta");
  ]

let opcode_of_request = function
  | Hello _ -> op_hello
  | Ping -> op_ping
  | Query _ -> op_query
  | Apply _ -> op_apply
  | Subscribe _ -> op_subscribe
  | Status -> op_status
  | Close -> op_close

let opcode_of_response = function
  | Hello_ok _ -> op_hello_ok
  | Pong -> op_pong
  | Answer _ -> op_answer
  | Applied _ -> op_applied
  | Sub_ok _ -> op_sub_ok
  | Status_reply _ -> op_status_reply
  | Bye -> op_bye
  | Delta _ -> op_delta
  | Error _ -> op_error

(* ---------------- encoding ---------------- *)

let put_changes buf (changes : changes) =
  Wire.put_u32 buf (List.length changes);
  List.iter
    (fun (pred, delta) ->
      Wire.put_string buf pred;
      Wire.put_relation buf delta)
    changes

(* The trace-context extension (docs/PROTOCOL.md §9): an {e optional
   trailing} string on query/apply.  Decoders reject trailing bytes, so
   backward compatibility hinges on position: a v1 peer that never sends
   the field produces exactly the old bytes, and one that cannot parse
   it is never sent it (the empty context encodes as {e absence}, and
   [Applied] timings are emitted only when the request carried a
   context). *)
let put_trace buf trace = if trace <> "" then Wire.put_string buf trace

let get_trace r = if Wire.remaining r > 0 then Wire.get_string r else ""

let put_timings buf (timings : (string * int) list) =
  if timings <> [] then begin
    Wire.put_u32 buf (List.length timings);
    List.iter
      (fun (stage, ns) ->
        Wire.put_string buf stage;
        Wire.put_i64 buf ns)
      timings
  end

let get_timings r =
  if Wire.remaining r > 0 then
    List.init (Wire.get_u32 r) (fun _ ->
        let stage = Wire.get_string r in
        let ns = Wire.get_i64 r in
        (stage, ns))
  else []

let encode_request (req : request) : string =
  let buf = Buffer.create 64 in
  Wire.put_u8 buf (opcode_of_request req);
  (match req with
  | Hello { version; token } ->
    Buffer.add_string buf magic;
    Wire.put_u32 buf version;
    Wire.put_string buf token
  | Ping | Status | Close -> ()
  | Query { body; trace } ->
    Wire.put_string buf body;
    put_trace buf trace
  | Apply { changes; trace } ->
    put_changes buf changes;
    put_trace buf trace
  | Subscribe pred -> Wire.put_string buf pred);
  Buffer.contents buf

let encode_response (resp : response) : string =
  let buf = Buffer.create 64 in
  Wire.put_u8 buf (opcode_of_response resp);
  (match resp with
  | Hello_ok { version; seq } ->
    Wire.put_u32 buf version;
    Wire.put_i64 buf seq
  | Pong | Bye -> ()
  | Answer { columns; rows } ->
    Wire.put_u32 buf (List.length columns);
    List.iter (Wire.put_string buf) columns;
    Wire.put_relation buf rows
  | Applied { seq; deltas; timings } ->
    Wire.put_i64 buf seq;
    put_changes buf deltas;
    put_timings buf timings
  | Sub_ok pred -> Wire.put_string buf pred
  | Status_reply json -> Wire.put_string buf json
  | Delta { seq; pred; delta } ->
    Wire.put_i64 buf seq;
    Wire.put_string buf pred;
    Wire.put_relation buf delta
  | Error { code; message } ->
    Wire.put_u8 buf (error_code_int code);
    Wire.put_string buf message);
  Buffer.contents buf

(* ---------------- decoding ---------------- *)

let get_changes r : changes =
  List.init (Wire.get_u32 r) (fun _ ->
      let pred = Wire.get_string r in
      let delta = Wire.get_relation r in
      (pred, delta))

let get_magic r =
  let m =
    String.init (String.length magic) (fun _ -> Char.chr (Wire.get_u8 r))
  in
  if m <> magic then
    Wire.corrupt r (Printf.sprintf "bad magic %S (want %S)" m magic)

let finish r v =
  if Wire.remaining r <> 0 then
    Wire.corrupt r
      (Printf.sprintf "%d trailing bytes in message" (Wire.remaining r));
  v

let decode_request (payload : string) : request =
  let r = Wire.reader payload in
  let op = Wire.get_u8 r in
  finish r
  @@
  if op = op_hello then begin
    get_magic r;
    let version = Wire.get_u32 r in
    let token = Wire.get_string r in
    Hello { version; token }
  end
  else if op = op_ping then Ping
  else if op = op_query then begin
    let body = Wire.get_string r in
    Query { body; trace = get_trace r }
  end
  else if op = op_apply then begin
    let changes = get_changes r in
    Apply { changes; trace = get_trace r }
  end
  else if op = op_subscribe then Subscribe (Wire.get_string r)
  else if op = op_status then Status
  else if op = op_close then Close
  else Wire.corrupt r (Printf.sprintf "bad request opcode 0x%02x" op)

let decode_response (payload : string) : response =
  let r = Wire.reader payload in
  let op = Wire.get_u8 r in
  finish r
  @@
  if op = op_hello_ok then begin
    let version = Wire.get_u32 r in
    let seq = Wire.get_i64 r in
    Hello_ok { version; seq }
  end
  else if op = op_pong then Pong
  else if op = op_answer then begin
    let columns = List.init (Wire.get_u32 r) (fun _ -> Wire.get_string r) in
    let rows = Wire.get_relation r in
    Answer { columns; rows }
  end
  else if op = op_applied then begin
    let seq = Wire.get_i64 r in
    let deltas = get_changes r in
    Applied { seq; deltas; timings = get_timings r }
  end
  else if op = op_sub_ok then Sub_ok (Wire.get_string r)
  else if op = op_status_reply then Status_reply (Wire.get_string r)
  else if op = op_bye then Bye
  else if op = op_delta then begin
    let seq = Wire.get_i64 r in
    let pred = Wire.get_string r in
    let delta = Wire.get_relation r in
    Delta { seq; pred; delta }
  end
  else if op = op_error then begin
    let code =
      match error_code_of_int (Wire.get_u8 r) with
      | Some c -> c
      | None -> Wire.corrupt r "bad error code"
    in
    let message = Wire.get_string r in
    Error { code; message }
  end
  else Wire.corrupt r (Printf.sprintf "bad response opcode 0x%02x" op)
