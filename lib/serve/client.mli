(** Blocking client for the [ivm_serve] protocol ([docs/PROTOCOL.md]).

    One TCP connection, synchronous calls: each function sends one
    request and waits for its reply.  [Delta] pushes interleaved with a
    reply (the server fans deltas out per committed batch) are buffered
    internally; {!next_delta} hands them out in arrival order. *)

module Relation = Ivm_relation.Relation

(** The server answered with an [Error] response. *)
exception Server_error of Protocol.error_code * string

(** The server answered with a well-formed but out-of-protocol
    message — a bug on one side or the other. *)
exception Unexpected of string

type t

(** Connect and perform the [Hello] handshake.  [token] defaults to
    [""] (fine for a server without [auth_token]).
    @raise Server_error when the server rejects version or token;
    @raise Unix.Unix_error when nobody is listening. *)
val connect : ?host:string -> ?token:string -> port:int -> unit -> t

(** The last-durable WAL sequence the server reported at handshake. *)
val seq : t -> int

val ping : t -> unit

(** Run an ad-hoc Datalog body (e.g. ["hop(a, X)"]) against the
    server's published snapshot; returns (columns, rows).  [trace]
    (default [""] = absent on the wire) names this request in the
    server's request trace ([/requestz], Chrome trace). *)
val query : ?trace:string -> t -> string -> string list * Relation.t

(** Submit one atomic change batch; blocks until the server's group
    commit has made it durable.  Returns the commit sequence and the
    per-view deltas it caused.  [trace] as in {!query}.
    @raise Server_error with [Invalid_changes] when validation rejects
    the batch (nothing was applied). *)
val apply : ?trace:string -> t -> Protocol.changes -> int * Protocol.changes

(** {!apply} plus the server's per-stage latency breakdown
    [(stage, ns)] — queue wait, WAL append, fsync, maintain, publish —
    as carried in the [Applied] reply.  The server sends timings only
    when the request carries a trace context, so pass a non-empty
    [trace] (or accept the default, a fresh ["c-<n>"] id). *)
val apply_timed :
  ?trace:string -> t -> Protocol.changes ->
  int * Protocol.changes * (string * int) list

(** Ask for per-batch [Delta] pushes of a derived view. *)
val subscribe : t -> string -> unit

(** The server's status document (JSON text). *)
val status : t -> string

(** Next buffered or arriving delta push as [(seq, pred, delta)];
    [None] after [timeout] seconds (default 1.0) of silence, or once
    the server has said [Bye]. *)
val next_delta : ?timeout:float -> t -> (int * string * Relation.t) option

(** Polite shutdown: send [Close], wait for [Bye], close the socket.
    Idempotent; errors are swallowed. *)
val close : t -> unit
